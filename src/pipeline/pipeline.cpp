#include "pipeline/pipeline.hpp"

#include <algorithm>

#include "pipeline/partition.hpp"

namespace nfstrace {
namespace {

/// Producer-side dispatch batch per shard: push frames to the ring in
/// bursts so each shard crossing costs one release store, not one per
/// frame.
constexpr std::size_t kStageBatch = 512;
/// Worker-side pop batch.
constexpr std::size_t kWorkerBatch = 1024;
/// Merge-side pop batch per shard ring.
constexpr std::size_t kMergeBatch = 1024;

}  // namespace

ParallelPipeline::Shard::Shard(const Config& config)
    : in(config.frameRingCapacity), out(config.recordRingCapacity) {}

ParallelPipeline::ParallelPipeline(Config config, RecordCallback sink)
    : config_(config), sink_(std::move(sink)) {
  if (config_.shards < 1) config_.shards = 1;
  staged_.resize(static_cast<std::size_t>(config_.shards));
  for (auto& s : staged_) s.reserve(kStageBatch);
  for (int i = 0; i < config_.shards; ++i) {
    auto sh = std::make_unique<Shard>(config_);
    Shard* raw = sh.get();
    // Shard sniffers publish into the shared registry with their shard
    // index as the counter slot, so their increments never contend.
    Sniffer::Config snifferCfg = config_.sniffer;
    snifferCfg.metrics = config_.metrics;
    snifferCfg.metricsShard = i;
    snifferCfg.flight = config_.flight;
    // The per-shard sniffer tags every emitted record with the merge key
    // of the message being processed and hands it to the merge stage.
    sh->sniffer = std::make_unique<Sniffer>(
        snifferCfg, [this, raw](const TraceRecord& rec) {
          TaggedRecord tr;
          tr.key.seq = raw->curSeq;
          tr.key.phase = raw->curPhase;
          tr.key.sub = raw->curPhase == 0
                           ? (static_cast<std::uint64_t>(rec.client) << 32) |
                                 rec.xid
                           : raw->emitIdx++;
          tr.rec = rec;
          // Record-ring-full stall: one retroactive span per episode, not
          // one event per spin, so a long stall costs one ring slot.
          std::uint64_t stallStart = 0;
          while (!raw->out.tryPush(tr)) {
            raw->recordPushStallsC.inc();
            if (raw->flog && stallStart == 0) stallStart = raw->flog->nowNs();
            std::this_thread::yield();
          }
          if (stallStart != 0) {
            raw->flog->complete(obs::Stage::RecordRingWait, stallStart);
          }
        });
    shards_.push_back(std::move(sh));
  }
  if (config_.flight) {
    producerFlog_ = config_.flight->attachThread("pipeline.partition");
    mergeFlog_ = config_.flight->attachThread("pipeline.merge");
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      shards_[i]->flog = config_.flight->attachThread(
          "pipeline.shard" + std::to_string(i));
    }
  }
  bindMetrics();  // bind worker handles before any worker thread starts
  for (auto& sh : shards_) {
    Shard* raw = sh.get();
    raw->thread = std::thread([this, raw] { workerLoop(*raw); });
  }
  merger_ = std::thread([this] { mergeLoop(); });
}

ParallelPipeline::~ParallelPipeline() {
  finish();
  // The ring-depth gauge fns capture pointers into shards_; pull them
  // out of the registry before the rings are destroyed.
  if (config_.metrics) {
    for (const auto& name : gaugeFnNames_) {
      config_.metrics->unregisterGaugeFn(name);
    }
  }
}

void ParallelPipeline::bindMetrics() {
  if (!config_.metrics) return;
  obs::Registry& reg = *config_.metrics;
  framesDispatchedC_ = reg.counterHandle("pipeline.frames_dispatched", 0);
  pushStallsC_ = reg.counterHandle("pipeline.push_stalls", 0);
  framesShedC_ = reg.counterHandle("pipeline.frames_shed", 0);
  recordsReleasedC_ = reg.counterHandle("pipeline.records_released", 0);
  mergeLagG_ = reg.gaugeHandle("pipeline.merge_watermark_lag");
  mergeBufferedG_ = reg.gaugeHandle("pipeline.merge_buffered_records");
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard* sh = shards_[i].get();
    sh->popStallsC = reg.counterHandle("pipeline.pop_stalls", i);
    sh->recordPushStallsC = reg.counterHandle("pipeline.record_push_stalls", i);
    std::string suffix = ".s" + std::to_string(i);
    std::string framesName = "pipeline.ring.frames.depth" + suffix;
    reg.gaugeFn(framesName, [sh] {
      return static_cast<double>(sh->in.sizeApprox());
    });
    gaugeFnNames_.push_back(framesName);
    std::string recordsName = "pipeline.ring.records.depth" + suffix;
    reg.gaugeFn(recordsName, [sh] {
      return static_cast<double>(sh->out.sizeApprox());
    });
    gaugeFnNames_.push_back(recordsName);
  }
}

void ParallelPipeline::pushToShard(Shard& sh, Msg&& msg) {
  while (!sh.in.tryPush(msg)) {
    pushStallsC_.inc();
    std::this_thread::yield();
  }
}

void ParallelPipeline::drainStaged(std::size_t s) {
  auto& batch = staged_[s];
  Shard& sh = *shards_[s];
  std::size_t pushed = 0;
  int stalls = 0;
  std::uint64_t stallStart = 0;  // frame-ring-full episode, retroactive span
  std::uint64_t dispatchStart =
      (producerFlog_ && !batch.empty()) ? producerFlog_->nowNs() : 0;
  while (pushed < batch.size()) {
    std::size_t n = sh.in.tryPushBatch(
        std::span<Msg>(batch.data() + pushed, batch.size() - pushed));
    pushed += n;
    if (pushed >= batch.size()) break;
    pushStallsC_.inc();
    if (producerFlog_ && stallStart == 0) stallStart = producerFlog_->nowNs();
    if (n > 0) {
      stalls = 0;  // partial progress: the consumer is alive, keep going
    } else if (config_.shedAfterStalls > 0 &&
               ++stalls >= config_.shedAfterStalls) {
      // The ring has stayed full past the watermark: the shard cannot
      // keep up.  Drop the rest of the batch (frames only — ticks and
      // End never pass through staging) rather than stall the capture.
      std::uint64_t dropped = batch.size() - pushed;
      shed_ += dropped;
      framesShedC_.inc(dropped);
      if (producerFlog_) {
        producerFlog_->instant(obs::Stage::FrameShed, dropped,
                               static_cast<std::uint32_t>(s));
      }
      break;
    }
    std::this_thread::yield();
  }
  if (stallStart != 0) {
    producerFlog_->complete(obs::Stage::PartitionWait, stallStart,
                            static_cast<std::uint32_t>(s));
  }
  if (dispatchStart != 0) {
    producerFlog_->complete(obs::Stage::PartitionDispatch, dispatchStart,
                            static_cast<std::uint32_t>(pushed));
  }
  batch.clear();
}

void ParallelPipeline::maybeTick(MicroTime ts) {
  MicroTime boundary = ts / config_.sniffer.expiryScanInterval;
  bool heartbeat = ++framesSinceHeartbeat_ >= config_.heartbeatFrames;
  if (boundary <= lastTickBoundary_ && !heartbeat) return;
  if (boundary > lastTickBoundary_) lastTickBoundary_ = boundary;
  framesSinceHeartbeat_ = 0;
  // Staged frames precede this tick in dispatch order; drain them first
  // so per-shard ring order matches global sequence order.
  for (std::size_t s = 0; s < staged_.size(); ++s) drainStaged(s);
  for (auto& sh : shards_) {
    Msg tick;
    tick.kind = Msg::Kind::Tick;
    tick.seq = seq_ + 1;  // seq of the frame about to be dispatched
    tick.ts = ts;
    pushToShard(*sh, std::move(tick));
  }
}

void ParallelPipeline::dispatch(Msg&& msg, int shard) {
  maybeTick(msg.ts);
  msg.seq = ++seq_;
  framesDispatchedC_.inc();
  auto& batch = staged_[static_cast<std::size_t>(shard)];
  batch.push_back(std::move(msg));
  if (batch.size() >= kStageBatch) {
    drainStaged(static_cast<std::size_t>(shard));
  }
}

void ParallelPipeline::onFrame(const CapturedPacket& pkt) {
  Msg msg;
  msg.kind = Msg::Kind::FrameOwned;
  msg.ts = pkt.ts;
  msg.own = pkt;
  dispatch(std::move(msg), shardOfFrame(pkt, config_.shards));
}

void ParallelPipeline::feed(const CapturedPacket* pkt) {
  Msg msg;
  msg.kind = Msg::Kind::FrameRef;
  msg.ts = pkt->ts;
  msg.ref = pkt;
  dispatch(std::move(msg), shardOfFrame(*pkt, config_.shards));
}

void ParallelPipeline::finish() {
  if (finished_) return;
  finished_ = true;
  for (std::size_t s = 0; s < staged_.size(); ++s) drainStaged(s);
  for (auto& sh : shards_) {
    Msg end;
    end.kind = Msg::Kind::End;
    pushToShard(*sh, std::move(end));
  }
  for (auto& sh : shards_) sh->thread.join();
  merger_.join();
  for (const auto& sh : shards_) {
    const Sniffer::Stats& st = sh->sniffer->stats();
    aggregated_.framesSeen += st.framesSeen;
    aggregated_.framesUndecodable += st.framesUndecodable;
    aggregated_.rpcCalls += st.rpcCalls;
    aggregated_.rpcReplies += st.rpcReplies;
    aggregated_.nonNfsCalls += st.nonNfsCalls;
    aggregated_.orphanReplies += st.orphanReplies;
    aggregated_.expiredCalls += st.expiredCalls;
    aggregated_.fragmentsExpired += st.fragmentsExpired;
    aggregated_.evictedCalls += st.evictedCalls;
    aggregated_.evictedFlows += st.evictedFlows;
    aggregated_.flushedCalls += st.flushedCalls;
    // Peaks report the largest per-shard table, not a (meaningless) sum.
    aggregated_.pendingPeak = std::max(aggregated_.pendingPeak, st.pendingPeak);
    aggregated_.tcpFlowsPeak =
        std::max(aggregated_.tcpFlowsPeak, st.tcpFlowsPeak);
  }
}

Sniffer::Stats ParallelPipeline::stats() const { return aggregated_; }

void ParallelPipeline::workerLoop(Shard& sh) {
  std::vector<Msg> batch;
  batch.reserve(kWorkerBatch);
  std::uint64_t starveStart = 0;  // frame-ring-empty episode
  for (;;) {
    batch.clear();
    if (sh.in.tryPopBatch(batch, kWorkerBatch) == 0) {
      sh.popStallsC.inc();
      if (sh.flog && starveStart == 0) starveStart = sh.flog->nowNs();
      std::this_thread::yield();
      continue;
    }
    if (starveStart != 0) {
      sh.flog->complete(obs::Stage::FrameRingWait, starveStart);
      starveStart = 0;
    }
    // One sniff span per popped batch (up to kWorkerBatch messages), so
    // instrumentation stays off the per-frame path.
    obs::FlightSpan sniffSpan(sh.flog, obs::Stage::Sniff,
                              static_cast<std::uint32_t>(batch.size()));
    std::uint64_t watermark = 0;
    for (auto& m : batch) {
      switch (m.kind) {
        case Msg::Kind::Tick:
          sh.curSeq = m.seq;
          sh.curPhase = 0;
          sh.sniffer->advanceTime(m.ts);
          // The frame with this seq (if any) is not ours or not yet
          // processed, so we only vouch for everything strictly before.
          watermark = m.seq - 1;
          break;
        case Msg::Kind::FrameOwned:
        case Msg::Kind::FrameRef:
          sh.curSeq = m.seq;
          sh.curPhase = 1;
          sh.emitIdx = 0;
          sh.sniffer->onFrame(m.kind == Msg::Kind::FrameRef ? *m.ref : m.own);
          watermark = m.seq;
          break;
        case Msg::Kind::End:
          sh.curSeq = kFlushSeq;
          sh.curPhase = 0;
          sh.sniffer->flush();
          sh.watermark.store(kDoneSeq, std::memory_order_release);
          return;
      }
    }
    sh.watermark.store(watermark, std::memory_order_release);
  }
}

void ParallelPipeline::mergeLoop() {
  const std::size_t n = shards_.size();
  std::vector<std::deque<TaggedRecord>> buf(n);
  std::vector<std::uint64_t> wm(n, 0);
  std::vector<TaggedRecord> popBuf;
  popBuf.reserve(kMergeBatch);
  std::uint64_t idleStart = 0;  // no-releasable-record episode
  for (;;) {
    // Load watermarks first (acquire), then drain: everything a shard
    // pushed before publishing its watermark is then visible, so `wm`
    // is a sound lower bound on what may still arrive.
    for (std::size_t s = 0; s < n; ++s) {
      wm[s] = shards_[s]->watermark.load(std::memory_order_acquire);
    }
    if (config_.metrics) {
      // Watermark lag: how far the slowest live shard trails the fastest
      // — the imbalance the merge has to buffer around.  Done shards
      // (kDoneSeq) no longer bound the merge, so they are excluded.
      std::uint64_t lo = kDoneSeq, hi = 0, buffered = 0;
      for (std::size_t s = 0; s < n; ++s) {
        if (wm[s] < kFlushSeq) {
          lo = std::min(lo, wm[s]);
          hi = std::max(hi, wm[s]);
        }
        buffered += buf[s].size();
      }
      mergeLagG_.set(lo == kDoneSeq ? 0.0 : static_cast<double>(hi - lo));
      mergeBufferedG_.set(static_cast<double>(buffered));
    }
    for (std::size_t s = 0; s < n; ++s) {
      for (;;) {
        popBuf.clear();
        if (shards_[s]->out.tryPopBatch(popBuf, kMergeBatch) == 0) break;
        for (auto& tr : popBuf) buf[s].push_back(std::move(tr));
      }
    }
    bool progress = false;
    std::uint64_t released = 0;
    std::uint64_t releaseStart = 0;
    for (;;) {
      std::size_t best = n;
      for (std::size_t s = 0; s < n; ++s) {
        if (buf[s].empty()) continue;
        if (best == n || buf[s].front().key < buf[best].front().key) best = s;
      }
      if (best == n) break;
      // The record after the head is the likely next release from this
      // shard; pull its line in while the sink runs.
      if (buf[best].size() > 1) {
        __builtin_prefetch(&buf[best][1]);
      }
      const MergeKey& k = buf[best].front().key;
      // Releasable only if no other shard can still produce an earlier
      // key.  Nonempty buffers vouch for themselves (streams are sorted);
      // empty ones vouch via their watermark.
      bool safe = true;
      for (std::size_t s = 0; s < n && safe; ++s) {
        if (s == best || !buf[s].empty()) continue;
        if (wm[s] < k.seq) safe = false;
      }
      if (!safe) break;
      if (released == 0 && mergeFlog_) {
        // Progress resumed: close any idle episode, open the release run.
        if (idleStart != 0) {
          mergeFlog_->complete(obs::Stage::MergeWait, idleStart);
          idleStart = 0;
        }
        releaseStart = mergeFlog_->nowNs();
      }
      sink_(buf[best].front().rec);
      ++merged_;
      ++released;
      recordsReleasedC_.inc();
      buf[best].pop_front();
      progress = true;
    }
    if (releaseStart != 0) {
      mergeFlog_->complete(obs::Stage::MergeRelease, releaseStart,
                           static_cast<std::uint32_t>(released));
    }
    if (!progress) {
      bool done = true;
      for (std::size_t s = 0; s < n && done; ++s) {
        if (wm[s] != kDoneSeq || !buf[s].empty()) done = false;
      }
      if (done) return;
      if (mergeFlog_ && idleStart == 0) idleStart = mergeFlog_->nowNs();
      std::this_thread::yield();
    }
  }
}

}  // namespace nfstrace
