file(REMOVE_RECURSE
  "libnfstrace_workload.a"
)
