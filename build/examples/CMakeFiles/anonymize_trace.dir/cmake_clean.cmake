file(REMOVE_RECURSE
  "CMakeFiles/anonymize_trace.dir/anonymize_trace.cpp.o"
  "CMakeFiles/anonymize_trace.dir/anonymize_trace.cpp.o.d"
  "anonymize_trace"
  "anonymize_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymize_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
