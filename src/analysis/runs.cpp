#include "analysis/runs.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace nfstrace {
namespace {

struct Access {
  MicroTime ts;
  bool isWrite;
  std::uint64_t offset;
  std::uint32_t count;
  bool refsEof;
  std::uint64_t fileSize;
};

struct RunBuilder {
  std::vector<Access> accesses;
};

std::uint64_t roundDown(std::uint64_t v, std::uint32_t bs) {
  return v / bs * bs;
}
std::uint64_t roundUp(std::uint64_t v, std::uint32_t bs) {
  return (v + bs - 1) / bs * bs;
}

Run buildRun(const FileHandle& fh, std::vector<Access>& acc,
             const RunDetectorConfig& cfg) {
  Run run;
  run.fh = fh;
  run.start = acc.front().ts;
  run.end = acc.back().ts;
  run.accesses = static_cast<std::uint32_t>(acc.size());

  bool hasRead = false, hasWrite = false;
  std::uint64_t maxSize = 0;
  for (const auto& a : acc) {
    (a.isWrite ? hasWrite : hasRead) = true;
    run.bytesAccessed += a.count;
    maxSize = std::max(maxSize, a.fileSize);
  }
  run.fileSize = maxSize;
  run.type = hasRead && hasWrite ? RunType::ReadWrite
             : hasWrite          ? RunType::Write
                                 : RunType::Read;

  // Sequentiality over rounded block positions.
  std::uint32_t bs = cfg.blockSize;
  bool sequentialStrict = true;   // no jumps at all
  bool sequentialLoose = true;    // forward jumps < jumpTolerance blocks ok
  std::uint32_t consecStrict = 0, consecLoose = 0;
  for (std::size_t i = 1; i < acc.size(); ++i) {
    std::uint64_t prevEnd = roundUp(acc[i - 1].offset + acc[i - 1].count, bs);
    std::uint64_t curStart = roundDown(acc[i].offset, bs);
    bool exact = curStart == prevEnd || curStart + bs == prevEnd ||
                 curStart == roundDown(acc[i - 1].offset + acc[i - 1].count,
                                       bs);
    bool smallJump =
        curStart >= prevEnd &&
        curStart - prevEnd < static_cast<std::uint64_t>(cfg.jumpTolerance) * bs;
    // k-consecutive for the metric: within k blocks either direction of
    // the previous end.
    std::uint64_t dist = curStart >= prevEnd ? curStart - prevEnd
                                             : prevEnd - curStart;
    bool kConsec = dist <= static_cast<std::uint64_t>(cfg.kConsecutive) * bs;

    if (exact) {
      ++consecStrict;
      ++consecLoose;
    } else {
      sequentialStrict = false;
      if (kConsec) ++consecLoose;
      if (!(exact || smallJump)) sequentialLoose = false;
    }
  }
  if (acc.size() > 1) {
    auto denom = static_cast<double>(acc.size() - 1);
    run.seqMetricStrict = static_cast<double>(consecStrict) / denom;
    run.seqMetricLoose = static_cast<double>(consecLoose) / denom;
  } else {
    run.seqMetricStrict = 1.0;
    run.seqMetricLoose = 1.0;
  }

  bool sequential =
      cfg.jumpTolerance > 0 ? sequentialLoose : sequentialStrict;
  bool startsAtZero = roundDown(acc.front().offset, bs) == 0;
  bool reachesEof = acc.back().refsEof ||
                    (maxSize > 0 && roundUp(acc.back().offset +
                                                acc.back().count, bs) >=
                                        roundDown(maxSize, bs));
  // Singleton runs are sequential by definition; entire if they cover the
  // whole file (paper §5.1 note on singleton runs).
  if (acc.size() == 1) {
    bool whole = startsAtZero && acc.front().count >= maxSize && maxSize > 0;
    run.pattern = whole ? RunPattern::Entire : RunPattern::Sequential;
    return run;
  }
  if (sequential && startsAtZero && reachesEof) {
    run.pattern = RunPattern::Entire;
  } else if (sequential) {
    run.pattern = RunPattern::Sequential;
  } else {
    run.pattern = RunPattern::Random;
  }
  return run;
}

}  // namespace

std::vector<Run> detectRuns(const std::vector<TraceRecord>& records,
                            const RunDetectorConfig& cfg) {
  // Gather per-file access lists in list order.
  std::unordered_map<FileHandle, RunBuilder, FileHandleHash> perFile;
  for (const auto& rec : records) {
    if (rec.op != NfsOp::Read && rec.op != NfsOp::Write) continue;
    if (rec.fh.len == 0) continue;
    Access a;
    a.ts = rec.ts;
    a.isWrite = rec.op == NfsOp::Write;
    a.offset = rec.offset;
    a.count = rec.hasReply && rec.retCount ? rec.retCount : rec.count;
    a.fileSize = rec.hasAttrs ? rec.fileSize : 0;
    // Rule (a), applied literally to every access as the paper states:
    // reads use the reply's EOF flag (or reaching the reported size);
    // extending writes land exactly at the new EOF, so append bursts
    // fragment into singleton runs — which is precisely why the paper's
    // EECS write runs are dominated by small sequential singletons while
    // whole-small-file writes classify as 'entire' singletons.
    a.refsEof = rec.eof ||
                (a.fileSize > 0 && a.offset + a.count >= a.fileSize);
    perFile[rec.fh].accesses.push_back(a);
  }

  std::vector<Run> runs;
  for (auto& [fh, builder] : perFile) {
    std::vector<Access> current;
    // Propagate the best-known file size forward so early accesses of a
    // run know the size revealed by later replies.
    for (std::size_t i = 0; i < builder.accesses.size(); ++i) {
      const Access& a = builder.accesses[i];
      bool startNew = false;
      if (!current.empty()) {
        // Rule (a): previous access referenced EOF.
        if (current.back().refsEof) startNew = true;
        // Rule (b): previous access is old.
        if (a.ts - current.back().ts > cfg.idleBreak) startNew = true;
      }
      if (startNew) {
        runs.push_back(buildRun(fh, current, cfg));
        current.clear();
      }
      current.push_back(a);
    }
    if (!current.empty()) runs.push_back(buildRun(fh, current, cfg));
  }

  std::sort(runs.begin(), runs.end(),
            [](const Run& a, const Run& b) { return a.start < b.start; });
  return runs;
}

RunPatternSummary summarizeRunPatterns(const std::vector<Run>& runs) {
  RunPatternSummary s;
  double total = static_cast<double>(runs.size());
  if (total == 0) return s;

  std::uint64_t nRead = 0, nWrite = 0, nRw = 0;
  std::uint64_t cnt[3][3] = {};  // [type][pattern]
  for (const auto& r : runs) {
    auto t = static_cast<std::size_t>(r.type);
    auto p = static_cast<std::size_t>(r.pattern);
    ++cnt[t][p];
    if (r.type == RunType::Read) ++nRead;
    else if (r.type == RunType::Write) ++nWrite;
    else ++nRw;
  }
  s.readFrac = nRead / total;
  s.writeFrac = nWrite / total;
  s.rwFrac = nRw / total;
  auto frac = [](std::uint64_t n, std::uint64_t d) {
    return d ? static_cast<double>(n) / static_cast<double>(d) : 0.0;
  };
  auto R = static_cast<std::size_t>(RunType::Read);
  auto W = static_cast<std::size_t>(RunType::Write);
  auto X = static_cast<std::size_t>(RunType::ReadWrite);
  auto E = static_cast<std::size_t>(RunPattern::Entire);
  auto Q = static_cast<std::size_t>(RunPattern::Sequential);
  auto N = static_cast<std::size_t>(RunPattern::Random);
  s.readEntire = frac(cnt[R][E], nRead);
  s.readSeq = frac(cnt[R][Q], nRead);
  s.readRandom = frac(cnt[R][N], nRead);
  s.writeEntire = frac(cnt[W][E], nWrite);
  s.writeSeq = frac(cnt[W][Q], nWrite);
  s.writeRandom = frac(cnt[W][N], nWrite);
  s.rwEntire = frac(cnt[X][E], nRw);
  s.rwSeq = frac(cnt[X][Q], nRw);
  s.rwRandom = frac(cnt[X][N], nRw);
  return s;
}

namespace {

// Log2-spaced buckets from 1 KB to 128 MB, matching the figures' x axes.
std::vector<double> sizeBuckets() {
  std::vector<double> tops;
  for (double b = 1024.0; b <= 128.0 * 1024 * 1024; b *= 2.0) {
    tops.push_back(b);
  }
  return tops;
}

std::size_t bucketFor(const std::vector<double>& tops, double v) {
  for (std::size_t i = 0; i < tops.size(); ++i) {
    if (v <= tops[i]) return i;
  }
  return tops.size() - 1;
}

}  // namespace

SizeBucketedBytes bytesByFileSize(const std::vector<Run>& runs) {
  SizeBucketedBytes out;
  out.bucketTopBytes = sizeBuckets();
  std::size_t n = out.bucketTopBytes.size();
  std::vector<double> total(n, 0), entire(n, 0), seq(n, 0), random(n, 0);
  double grandTotal = 0;
  for (const auto& r : runs) {
    double size = static_cast<double>(r.fileSize ? r.fileSize : r.bytesAccessed);
    std::size_t b = bucketFor(out.bucketTopBytes, size);
    auto bytes = static_cast<double>(r.bytesAccessed);
    total[b] += bytes;
    grandTotal += bytes;
    switch (r.pattern) {
      case RunPattern::Entire: entire[b] += bytes; break;
      case RunPattern::Sequential: seq[b] += bytes; break;
      case RunPattern::Random: random[b] += bytes; break;
    }
  }
  // Cumulative percentages of all bytes accessed (the figure's y axis).
  double accT = 0, accE = 0, accS = 0, accR = 0;
  for (std::size_t i = 0; i < n; ++i) {
    accT += total[i];
    accE += entire[i];
    accS += seq[i];
    accR += random[i];
    double denom = grandTotal > 0 ? grandTotal : 1.0;
    out.total.push_back(100.0 * accT / denom);
    out.entire.push_back(100.0 * accE / denom);
    out.sequential.push_back(100.0 * accS / denom);
    out.random.push_back(100.0 * accR / denom);
  }
  return out;
}

SeqMetricBySize sequentialityBySize(const std::vector<Run>& runs,
                                    bool writesOnly, bool readsOnly) {
  SeqMetricBySize out;
  out.bucketTopBytes = sizeBuckets();
  std::size_t n = out.bucketTopBytes.size();
  std::vector<double> sumLoose(n, 0), sumStrict(n, 0);
  out.runCount.assign(n, 0);
  for (const auto& r : runs) {
    if (writesOnly && r.type != RunType::Write) continue;
    if (readsOnly && r.type != RunType::Read) continue;
    std::size_t b = bucketFor(out.bucketTopBytes,
                              static_cast<double>(r.bytesAccessed));
    sumLoose[b] += r.seqMetricLoose;
    sumStrict[b] += r.seqMetricStrict;
    ++out.runCount[b];
  }
  for (std::size_t i = 0; i < n; ++i) {
    double c = out.runCount[i] ? static_cast<double>(out.runCount[i]) : 1.0;
    out.meanLoose.push_back(sumLoose[i] / c);
    out.meanStrict.push_back(sumStrict[i] / c);
  }
  return out;
}

}  // namespace nfstrace
