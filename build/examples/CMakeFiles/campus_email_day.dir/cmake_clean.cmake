file(REMOVE_RECURSE
  "CMakeFiles/campus_email_day.dir/campus_email_day.cpp.o"
  "CMakeFiles/campus_email_day.dir/campus_email_day.cpp.o.d"
  "campus_email_day"
  "campus_email_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_email_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
