# Empty compiler generated dependencies file for nfstrace_analysis.
# This may be replaced when dependencies are built.
