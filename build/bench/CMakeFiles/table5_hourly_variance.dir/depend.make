# Empty dependencies file for table5_hourly_variance.
# This may be replaced when dependencies are built.
