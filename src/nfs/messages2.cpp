// NFSv2 (RFC 1094) argument/result codecs, mapped onto the shared
// (v3-shaped) structures.  v2 uses fixed 32-byte handles, 32-bit sizes and
// offsets, and attrstat-style replies that always carry full attributes on
// success.
#include "nfs/messages.hpp"

namespace nfstrace {

void encodeFh2(XdrEncoder& enc, const FileHandle& fh) {
  std::array<std::uint8_t, kFhSize2> buf{};
  std::size_t n = std::min<std::size_t>(fh.len, kFhSize2);
  std::copy_n(fh.data.begin(), n, buf.begin());
  enc.putFixedOpaque(buf);
}

FileHandle decodeFh2(XdrDecoder& dec) {
  return FileHandle::fromBytes(dec.getFixedOpaqueView(kFhSize2));
}

namespace {

constexpr std::uint32_t kNoValue = 0xffffffffu;

void encodeSattr2(XdrEncoder& enc, const Sattr& s) {
  enc.putUint32(s.setMode ? s.mode : kNoValue);
  enc.putUint32(s.setUid ? s.uid : kNoValue);
  enc.putUint32(s.setGid ? s.gid : kNoValue);
  enc.putUint32(s.setSize ? static_cast<std::uint32_t>(s.size) : kNoValue);
  enc.putUint32(s.setAtime ? s.atime.seconds : kNoValue);
  enc.putUint32(s.setAtime ? s.atime.nseconds / 1000 : kNoValue);
  enc.putUint32(s.setMtime ? s.mtime.seconds : kNoValue);
  enc.putUint32(s.setMtime ? s.mtime.nseconds / 1000 : kNoValue);
}

Sattr decodeSattr2(XdrDecoder& dec) {
  Sattr s;
  std::uint32_t v;
  if ((v = dec.getUint32()) != kNoValue) { s.setMode = true; s.mode = v; }
  if ((v = dec.getUint32()) != kNoValue) { s.setUid = true; s.uid = v; }
  if ((v = dec.getUint32()) != kNoValue) { s.setGid = true; s.gid = v; }
  if ((v = dec.getUint32()) != kNoValue) { s.setSize = true; s.size = v; }
  std::uint32_t sec = dec.getUint32(), usec = dec.getUint32();
  if (sec != kNoValue) { s.setAtime = true; s.atime = {sec, usec * 1000}; }
  sec = dec.getUint32();
  usec = dec.getUint32();
  if (sec != kNoValue) { s.setMtime = true; s.mtime = {sec, usec * 1000}; }
  return s;
}

void putSyntheticData2(XdrEncoder& enc, std::uint32_t count) {
  enc.putUint32(count);
  std::vector<std::uint8_t> zeros((count + 3) & ~3u, 0);
  enc.putRaw(zeros);
}

/// v2 attrstat-style reply tail: status, then fattr on success.
void encodeAttrstat(XdrEncoder& enc, NfsStat status, const Fattr& attrs) {
  enc.putUint32(static_cast<std::uint32_t>(status));
  if (status == NfsStat::Ok) attrs.encode2(enc);
}

[[noreturn]] void noV2(const char* what) {
  throw XdrError(std::string("no NFSv2 form for ") + what);
}

}  // namespace

void encodeCall2(XdrEncoder& enc, const NfsCallArgs& args) {
  std::visit(
      [&](const auto& a) {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, NullArgs>) {
          // no body
        } else if constexpr (std::is_same_v<T, GetattrArgs> ||
                             std::is_same_v<T, ReadlinkArgs> ||
                             std::is_same_v<T, FsstatArgs>) {
          encodeFh2(enc, a.fh);
        } else if constexpr (std::is_same_v<T, SetattrArgs>) {
          encodeFh2(enc, a.fh);
          encodeSattr2(enc, a.attrs);
        } else if constexpr (std::is_same_v<T, LookupArgs> ||
                             std::is_same_v<T, RemoveArgs> ||
                             std::is_same_v<T, RmdirArgs>) {
          encodeFh2(enc, a.dir);
          enc.putString(a.name);
        } else if constexpr (std::is_same_v<T, ReadArgs>) {
          encodeFh2(enc, a.fh);
          enc.putUint32(static_cast<std::uint32_t>(a.offset));
          enc.putUint32(a.count);
          enc.putUint32(a.count);  // totalcount (unused by servers)
        } else if constexpr (std::is_same_v<T, WriteArgs>) {
          encodeFh2(enc, a.fh);
          enc.putUint32(static_cast<std::uint32_t>(a.offset));  // beginoffset
          enc.putUint32(static_cast<std::uint32_t>(a.offset));
          enc.putUint32(a.count);  // totalcount
          putSyntheticData2(enc, a.count);
        } else if constexpr (std::is_same_v<T, CreateArgs>) {
          encodeFh2(enc, a.dir);
          enc.putString(a.name);
          encodeSattr2(enc, a.attrs);
        } else if constexpr (std::is_same_v<T, MkdirArgs>) {
          encodeFh2(enc, a.dir);
          enc.putString(a.name);
          encodeSattr2(enc, a.attrs);
        } else if constexpr (std::is_same_v<T, SymlinkArgs>) {
          encodeFh2(enc, a.dir);
          enc.putString(a.name);
          enc.putString(a.target);
          encodeSattr2(enc, a.attrs);
        } else if constexpr (std::is_same_v<T, RenameArgs>) {
          encodeFh2(enc, a.fromDir);
          enc.putString(a.fromName);
          encodeFh2(enc, a.toDir);
          enc.putString(a.toName);
        } else if constexpr (std::is_same_v<T, LinkArgs>) {
          encodeFh2(enc, a.fh);
          encodeFh2(enc, a.dir);
          enc.putString(a.name);
        } else if constexpr (std::is_same_v<T, ReaddirArgs>) {
          encodeFh2(enc, a.dir);
          enc.putUint32(static_cast<std::uint32_t>(a.cookie));
          enc.putUint32(a.count);
        } else {
          noV2("call");
        }
      },
      args);
}

NfsCallArgs decodeCall2(Proc2 proc, XdrDecoder& dec) {
  switch (proc) {
    case Proc2::Null:
      return NullArgs{};
    case Proc2::Getattr:
      return GetattrArgs{decodeFh2(dec)};
    case Proc2::Setattr: {
      SetattrArgs a;
      a.fh = decodeFh2(dec);
      a.attrs = decodeSattr2(dec);
      return a;
    }
    case Proc2::Lookup: {
      LookupArgs a;
      a.dir = decodeFh2(dec);
      a.name = dec.getString(255);
      return a;
    }
    case Proc2::Readlink:
      return ReadlinkArgs{decodeFh2(dec)};
    case Proc2::Read: {
      ReadArgs a;
      a.fh = decodeFh2(dec);
      a.offset = dec.getUint32();
      a.count = dec.getUint32();
      dec.getUint32();  // totalcount
      return a;
    }
    case Proc2::Write: {
      WriteArgs a;
      a.fh = decodeFh2(dec);
      dec.getUint32();  // beginoffset
      a.offset = dec.getUint32();
      dec.getUint32();  // totalcount
      a.count = dec.skipOpaque();
      a.stable = StableHow::FileSync;  // v2 writes are synchronous
      return a;
    }
    case Proc2::Create: {
      CreateArgs a;
      a.dir = decodeFh2(dec);
      a.name = dec.getString(255);
      a.attrs = decodeSattr2(dec);
      return a;
    }
    case Proc2::Remove: {
      RemoveArgs a;
      a.dir = decodeFh2(dec);
      a.name = dec.getString(255);
      return a;
    }
    case Proc2::Rename: {
      RenameArgs a;
      a.fromDir = decodeFh2(dec);
      a.fromName = dec.getString(255);
      a.toDir = decodeFh2(dec);
      a.toName = dec.getString(255);
      return a;
    }
    case Proc2::Link: {
      LinkArgs a;
      a.fh = decodeFh2(dec);
      a.dir = decodeFh2(dec);
      a.name = dec.getString(255);
      return a;
    }
    case Proc2::Symlink: {
      SymlinkArgs a;
      a.dir = decodeFh2(dec);
      a.name = dec.getString(255);
      a.target = dec.getString(1024);
      a.attrs = decodeSattr2(dec);
      return a;
    }
    case Proc2::Mkdir: {
      MkdirArgs a;
      a.dir = decodeFh2(dec);
      a.name = dec.getString(255);
      a.attrs = decodeSattr2(dec);
      return a;
    }
    case Proc2::Rmdir: {
      RmdirArgs a;
      a.dir = decodeFh2(dec);
      a.name = dec.getString(255);
      return a;
    }
    case Proc2::Readdir: {
      ReaddirArgs a;
      a.dir = decodeFh2(dec);
      a.cookie = dec.getUint32();
      a.count = dec.getUint32();
      return a;
    }
    case Proc2::Statfs:
      return FsstatArgs{decodeFh2(dec)};
    case Proc2::Root:
    case Proc2::Writecache:
      return NullArgs{};  // obsolete; no arguments defined
  }
  throw XdrError("unknown NFSv2 procedure");
}

void encodeReply2(XdrEncoder& enc, Proc2 proc, const NfsReplyRes& res) {
  switch (proc) {
    case Proc2::Null:
    case Proc2::Root:
    case Proc2::Writecache:
      return;
    case Proc2::Getattr: {
      const auto& r = std::get<GetattrRes>(res);
      encodeAttrstat(enc, r.status, r.attrs);
      return;
    }
    case Proc2::Setattr: {
      const auto& r = std::get<SetattrRes>(res);
      encodeAttrstat(enc, r.status, r.wcc.post);
      return;
    }
    case Proc2::Lookup: {
      const auto& r = std::get<LookupRes>(res);
      enc.putUint32(static_cast<std::uint32_t>(r.status));
      if (r.status == NfsStat::Ok) {
        encodeFh2(enc, r.fh);
        r.objAttrs.encode2(enc);
      }
      return;
    }
    case Proc2::Readlink: {
      const auto& r = std::get<ReadlinkRes>(res);
      enc.putUint32(static_cast<std::uint32_t>(r.status));
      if (r.status == NfsStat::Ok) enc.putString(r.target);
      return;
    }
    case Proc2::Read: {
      const auto& r = std::get<ReadRes>(res);
      enc.putUint32(static_cast<std::uint32_t>(r.status));
      if (r.status == NfsStat::Ok) {
        r.attrs.encode2(enc);
        putSyntheticData2(enc, r.count);
      }
      return;
    }
    case Proc2::Write: {
      const auto& r = std::get<WriteRes>(res);
      encodeAttrstat(enc, r.status, r.wcc.post);
      return;
    }
    case Proc2::Create:
    case Proc2::Mkdir: {
      const auto& r = std::get<CreateRes>(res);
      enc.putUint32(static_cast<std::uint32_t>(r.status));
      if (r.status == NfsStat::Ok) {
        encodeFh2(enc, r.fh);
        r.attrs.encode2(enc);
      }
      return;
    }
    case Proc2::Remove:
    case Proc2::Rmdir: {
      const auto& r = std::get<RemoveRes>(res);
      enc.putUint32(static_cast<std::uint32_t>(r.status));
      return;
    }
    case Proc2::Rename: {
      const auto& r = std::get<RenameRes>(res);
      enc.putUint32(static_cast<std::uint32_t>(r.status));
      return;
    }
    case Proc2::Link: {
      const auto& r = std::get<LinkRes>(res);
      enc.putUint32(static_cast<std::uint32_t>(r.status));
      return;
    }
    case Proc2::Symlink: {
      const auto& r = std::get<CreateRes>(res);
      enc.putUint32(static_cast<std::uint32_t>(r.status));
      return;
    }
    case Proc2::Readdir: {
      const auto& r = std::get<ReaddirRes>(res);
      enc.putUint32(static_cast<std::uint32_t>(r.status));
      if (r.status != NfsStat::Ok) return;
      for (const auto& e : r.entries) {
        enc.putBool(true);
        enc.putUint32(static_cast<std::uint32_t>(e.fileid));
        enc.putString(e.name);
        enc.putUint32(static_cast<std::uint32_t>(e.cookie));
      }
      enc.putBool(false);
      enc.putBool(r.eof);
      return;
    }
    case Proc2::Statfs: {
      const auto& r = std::get<FsstatRes>(res);
      enc.putUint32(static_cast<std::uint32_t>(r.status));
      if (r.status == NfsStat::Ok) {
        enc.putUint32(kNfsBlockSize);  // tsize
        enc.putUint32(kNfsBlockSize);  // bsize
        enc.putUint32(static_cast<std::uint32_t>(r.totalBytes / kNfsBlockSize));
        enc.putUint32(static_cast<std::uint32_t>(r.freeBytes / kNfsBlockSize));
        enc.putUint32(static_cast<std::uint32_t>(r.availBytes / kNfsBlockSize));
      }
      return;
    }
  }
  throw XdrError("unknown NFSv2 procedure in reply encode");
}

NfsReplyRes decodeReply2(Proc2 proc, XdrDecoder& dec) {
  auto attrstat = [&](auto makeRes) {
    auto status = static_cast<NfsStat>(dec.getUint32());
    Fattr attrs;
    if (status == NfsStat::Ok) attrs = Fattr::decode2(dec);
    return makeRes(status, attrs);
  };

  switch (proc) {
    case Proc2::Null:
    case Proc2::Root:
    case Proc2::Writecache:
      return NullRes{};
    case Proc2::Getattr:
      return attrstat([](NfsStat st, const Fattr& a) {
        GetattrRes r;
        r.status = st;
        r.attrs = a;
        return NfsReplyRes{r};
      });
    case Proc2::Setattr:
      return attrstat([](NfsStat st, const Fattr& a) {
        SetattrRes r;
        r.status = st;
        r.wcc.hasPost = st == NfsStat::Ok;
        r.wcc.post = a;
        return NfsReplyRes{r};
      });
    case Proc2::Lookup: {
      LookupRes r;
      r.status = static_cast<NfsStat>(dec.getUint32());
      if (r.status == NfsStat::Ok) {
        r.fh = decodeFh2(dec);
        r.objAttrs = Fattr::decode2(dec);
        r.hasObjAttrs = true;
      }
      return r;
    }
    case Proc2::Readlink: {
      ReadlinkRes r;
      r.status = static_cast<NfsStat>(dec.getUint32());
      if (r.status == NfsStat::Ok) r.target = dec.getString(1024);
      return r;
    }
    case Proc2::Read: {
      ReadRes r;
      r.status = static_cast<NfsStat>(dec.getUint32());
      if (r.status == NfsStat::Ok) {
        r.attrs = Fattr::decode2(dec);
        r.hasAttrs = true;
        r.count = dec.skipOpaque();
        // v2 has no EOF flag; consumers infer it from attrs.size.
      }
      return r;
    }
    case Proc2::Write:
      return attrstat([](NfsStat st, const Fattr& a) {
        WriteRes r;
        r.status = st;
        r.wcc.hasPost = st == NfsStat::Ok;
        r.wcc.post = a;
        r.committed = StableHow::FileSync;
        return NfsReplyRes{r};
      });
    case Proc2::Create:
    case Proc2::Mkdir: {
      CreateRes r;
      r.status = static_cast<NfsStat>(dec.getUint32());
      if (r.status == NfsStat::Ok) {
        r.fh = decodeFh2(dec);
        r.hasFh = true;
        r.attrs = Fattr::decode2(dec);
        r.hasAttrs = true;
      }
      return r;
    }
    case Proc2::Remove:
    case Proc2::Rmdir: {
      RemoveRes r;
      r.status = static_cast<NfsStat>(dec.getUint32());
      return r;
    }
    case Proc2::Rename: {
      RenameRes r;
      r.status = static_cast<NfsStat>(dec.getUint32());
      return r;
    }
    case Proc2::Link: {
      LinkRes r;
      r.status = static_cast<NfsStat>(dec.getUint32());
      return r;
    }
    case Proc2::Symlink: {
      CreateRes r;
      r.status = static_cast<NfsStat>(dec.getUint32());
      return r;
    }
    case Proc2::Readdir: {
      ReaddirRes r;
      r.status = static_cast<NfsStat>(dec.getUint32());
      if (r.status != NfsStat::Ok) return r;
      while (dec.getBool()) {
        DirEntry e;
        e.fileid = dec.getUint32();
        e.name = dec.getString(255);
        e.cookie = dec.getUint32();
        r.entries.push_back(std::move(e));
      }
      r.eof = dec.getBool();
      return r;
    }
    case Proc2::Statfs: {
      FsstatRes r;
      r.status = static_cast<NfsStat>(dec.getUint32());
      if (r.status == NfsStat::Ok) {
        dec.getUint32();  // tsize
        std::uint32_t bsize = dec.getUint32();
        r.totalBytes = static_cast<std::uint64_t>(dec.getUint32()) * bsize;
        r.freeBytes = static_cast<std::uint64_t>(dec.getUint32()) * bsize;
        r.availBytes = static_cast<std::uint64_t>(dec.getUint32()) * bsize;
      }
      return r;
    }
  }
  throw XdrError("unknown NFSv2 procedure in reply decode");
}

}  // namespace nfstrace
