# Empty dependencies file for nfstrace_trace.
# This may be replaced when dependencies are built.
