file(REMOVE_RECURSE
  "CMakeFiles/arrays_similarity.dir/arrays_similarity.cpp.o"
  "CMakeFiles/arrays_similarity.dir/arrays_similarity.cpp.o.d"
  "arrays_similarity"
  "arrays_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrays_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
