#include "trace/tracefile.hpp"

#include "obs/timer.hpp"

#include <charconv>
#include <cinttypes>
#include <cstring>
#include <stdexcept>

#include "util/strings.hpp"

namespace nfstrace {
namespace {

/// Flush the writer's batch buffer once it grows past this.
constexpr std::size_t kWriterFlushBytes = 64 * 1024;
/// Reader chunk size for the text format.
constexpr std::size_t kReaderChunkBytes = 64 * 1024;

constexpr char kHexDigits[] = "0123456789abcdef";

void appendEncodedField(std::string& out, const std::string& s) {
  // Percent-encode the characters that would break the line format.
  for (unsigned char c : s) {
    if (c <= ' ' || c == '%' || c == '=' || c == 0x7f) {
      out.push_back('%');
      out.push_back(kHexDigits[c >> 4]);
      out.push_back(kHexDigits[c & 0xf]);
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
}

std::string decodeField(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

void appendUint(std::string& out, std::uint64_t v) {
  char buf[24];
  auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

void appendTime(std::string& out, MicroTime t) {
  MicroTime sec = t / kMicrosPerSecond;
  MicroTime usec = t % kMicrosPerSecond;
  if (t < 0) {  // match printf semantics for negative times
    char buf[40];
    int n = std::snprintf(buf, sizeof(buf), "%" PRId64 ".%06" PRId64, sec,
                          usec);
    out.append(buf, static_cast<std::size_t>(n));
    return;
  }
  appendUint(out, static_cast<std::uint64_t>(sec));
  char frac[7] = {'.', '0', '0', '0', '0', '0', '0'};
  for (int i = 6; usec && i >= 1; --i) {
    frac[i] = static_cast<char>('0' + usec % 10);
    usec /= 10;
  }
  out.append(frac, 7);
}

void appendIp(std::string& out, IpAddr ip) {
  appendUint(out, (ip >> 24) & 0xff);
  out.push_back('.');
  appendUint(out, (ip >> 16) & 0xff);
  out.push_back('.');
  appendUint(out, (ip >> 8) & 0xff);
  out.push_back('.');
  appendUint(out, ip & 0xff);
}

void appendFhHex(std::string& out, const FileHandle& fh) {
  for (std::size_t i = 0; i < fh.len; ++i) {
    out.push_back(kHexDigits[fh.data[i] >> 4]);
    out.push_back(kHexDigits[fh.data[i] & 0xf]);
  }
}

MicroTime parseTimeField(std::string_view v) {
  auto dot = v.find('.');
  std::int64_t sec = 0, usec = 0;
  sec = std::strtoll(std::string(v.substr(0, dot)).c_str(), nullptr, 10);
  if (dot != std::string_view::npos) {
    std::string frac(v.substr(dot + 1));
    frac.resize(6, '0');
    usec = std::strtoll(frac.c_str(), nullptr, 10);
  }
  return sec * kMicrosPerSecond + usec;
}

}  // namespace

void appendRecord(std::string& out, const TraceRecord& rec) {
  out += "t=";
  appendTime(out, rec.ts);
  if (rec.hasReply) {
    out += " r=";
    appendTime(out, rec.replyTs);
  }
  out += " c=";
  appendIp(out, rec.client);
  out += " s=";
  appendIp(out, rec.server);
  out += " xid=";
  for (int shift = 28; shift >= 0; shift -= 4) {
    out.push_back(kHexDigits[(rec.xid >> shift) & 0xf]);
  }
  out += " v=";
  appendUint(out, rec.vers);
  out += rec.overTcp ? " p=tcp op=" : " p=udp op=";
  out += nfsOpName(rec.op);
  out += " uid=";
  appendUint(out, rec.uid);
  out += " gid=";
  appendUint(out, rec.gid);
  if (rec.fh.len) {
    out += " fh=";
    appendFhHex(out, rec.fh);
  }
  if (!rec.name.empty()) {
    out += " nm=";
    appendEncodedField(out, rec.name);
  }
  if (!rec.name2.empty()) {
    out += " nm2=";
    appendEncodedField(out, rec.name2);
  }
  if (rec.fh2.len) {
    out += " fh2=";
    appendFhHex(out, rec.fh2);
  }
  if (rec.op == NfsOp::Read || rec.op == NfsOp::Write ||
      rec.op == NfsOp::Commit) {
    out += " off=";
    appendUint(out, rec.offset);
    out += " cnt=";
    appendUint(out, rec.count);
  }
  if (rec.hasReply) {
    out += " st=";
    out += nfsStatName(rec.status);
    if (rec.op == NfsOp::Read || rec.op == NfsOp::Write) {
      out += " ret=";
      appendUint(out, rec.retCount);
    }
    if (rec.op == NfsOp::Read) out += rec.eof ? " eof=1" : " eof=0";
    if (rec.hasResFh) {
      out += " rfh=";
      appendFhHex(out, rec.resFh);
    }
    if (rec.hasAttrs) {
      out += " ft=";
      appendUint(out, static_cast<std::uint32_t>(rec.ftype));
      out += " sz=";
      appendUint(out, rec.fileSize);
      out += " mt=";
      appendTime(out, rec.fileMtime);
      out += " fid=";
      appendUint(out, rec.fileId);
    }
    if (rec.hasPre) {
      out += " psz=";
      appendUint(out, rec.preSize);
      out += " pmt=";
      appendTime(out, rec.preMtime);
    }
  }
}

std::string formatRecord(const TraceRecord& rec) {
  std::string out;
  out.reserve(192);
  appendRecord(out, rec);
  return out;
}

std::optional<TraceRecord> parseRecord(const std::string& line) {
  if (line.empty() || line[0] == '#') return std::nullopt;
  TraceRecord rec;
  bool sawTime = false;
  for (const auto& tok : split(line, ' ')) {
    if (tok.empty()) continue;
    auto eq = tok.find('=');
    if (eq == std::string::npos) continue;
    std::string_view key(tok.data(), eq);
    std::string_view val(tok.data() + eq + 1, tok.size() - eq - 1);
    if (key == "t") {
      rec.ts = parseTimeField(val);
      sawTime = true;
    } else if (key == "r") {
      rec.replyTs = parseTimeField(val);
      rec.hasReply = true;
    } else if (key == "c") {
      auto ip = ipFromString(val);
      if (!ip) throw std::runtime_error("trace: bad client ip");
      rec.client = *ip;
    } else if (key == "s") {
      auto ip = ipFromString(val);
      if (!ip) throw std::runtime_error("trace: bad server ip");
      rec.server = *ip;
    } else if (key == "xid") {
      rec.xid = static_cast<std::uint32_t>(
          std::strtoul(std::string(val).c_str(), nullptr, 16));
    } else if (key == "v") {
      rec.vers = static_cast<std::uint8_t>(std::strtoul(std::string(val).c_str(), nullptr, 10));
    } else if (key == "p") {
      rec.overTcp = val == "tcp";
    } else if (key == "op") {
      rec.op = nfsOpFromName(val);
    } else if (key == "uid") {
      rec.uid = static_cast<std::uint32_t>(std::strtoul(std::string(val).c_str(), nullptr, 10));
    } else if (key == "gid") {
      rec.gid = static_cast<std::uint32_t>(std::strtoul(std::string(val).c_str(), nullptr, 10));
    } else if (key == "fh") {
      rec.fh = FileHandle::fromHex(val);
    } else if (key == "nm") {
      rec.name = decodeField(val);
    } else if (key == "nm2") {
      rec.name2 = decodeField(val);
    } else if (key == "fh2") {
      rec.fh2 = FileHandle::fromHex(val);
    } else if (key == "off") {
      rec.offset = std::strtoull(std::string(val).c_str(), nullptr, 10);
    } else if (key == "cnt") {
      rec.count = static_cast<std::uint32_t>(std::strtoul(std::string(val).c_str(), nullptr, 10));
    } else if (key == "st") {
      // Match by name; unknown statuses parse as ServerFault.
      rec.status = NfsStat::ErrServerFault;
      for (auto cand : {NfsStat::Ok, NfsStat::ErrPerm, NfsStat::ErrNoEnt,
                        NfsStat::ErrIo, NfsStat::ErrAcces, NfsStat::ErrExist,
                        NfsStat::ErrNotDir, NfsStat::ErrIsDir,
                        NfsStat::ErrInval, NfsStat::ErrFBig, NfsStat::ErrNoSpc,
                        NfsStat::ErrRoFs, NfsStat::ErrNameTooLong,
                        NfsStat::ErrNotEmpty, NfsStat::ErrDQuot,
                        NfsStat::ErrStale, NfsStat::ErrNotSupp}) {
        if (val == nfsStatName(cand)) {
          rec.status = cand;
          break;
        }
      }
    } else if (key == "ret") {
      rec.retCount = static_cast<std::uint32_t>(std::strtoul(std::string(val).c_str(), nullptr, 10));
    } else if (key == "eof") {
      rec.eof = val == "1";
    } else if (key == "rfh") {
      rec.resFh = FileHandle::fromHex(val);
      rec.hasResFh = true;
    } else if (key == "ft") {
      rec.ftype = static_cast<FileType>(std::strtoul(std::string(val).c_str(), nullptr, 10));
      rec.hasAttrs = true;
    } else if (key == "sz") {
      rec.fileSize = std::strtoull(std::string(val).c_str(), nullptr, 10);
      rec.hasAttrs = true;
    } else if (key == "mt") {
      rec.fileMtime = parseTimeField(val);
      rec.hasAttrs = true;
    } else if (key == "fid") {
      rec.fileId = std::strtoull(std::string(val).c_str(), nullptr, 10);
    } else if (key == "psz") {
      rec.preSize = std::strtoull(std::string(val).c_str(), nullptr, 10);
      rec.hasPre = true;
    } else if (key == "pmt") {
      rec.preMtime = parseTimeField(val);
      rec.hasPre = true;
    }
    // Unknown keys are intentionally ignored.
  }
  if (!sawTime) throw std::runtime_error("trace: record missing timestamp");
  return rec;
}

// ------------------------------------------------------------ binary format

namespace {

constexpr char kBinMagic[6] = {'N', 'F', 'S', 'T', '1', '\n'};

void putU(std::string& b, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) b.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint64_t getU(const std::uint8_t* p, int bytes) {
  std::uint64_t v = 0;
  for (int i = bytes - 1; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

void packBinaryInto(std::string& out, const TraceRecord& r) {
  // Length-prefixed record: reserve the prefix, append the body in place,
  // then patch the length — no per-record temporary buffer.
  std::size_t lenAt = out.size();
  out.append(4, '\0');
  std::string& b = out;
  putU(b, static_cast<std::uint64_t>(r.ts), 8);
  putU(b, static_cast<std::uint64_t>(r.replyTs), 8);
  putU(b, r.client, 4);
  putU(b, r.server, 4);
  putU(b, r.xid, 4);
  std::uint8_t flags = (r.hasReply ? 1 : 0) | (r.overTcp ? 2 : 0) |
                       (r.eof ? 4 : 0) | (r.hasResFh ? 8 : 0) |
                       (r.hasAttrs ? 16 : 0) | (r.hasPre ? 32 : 0);
  putU(b, flags, 1);
  putU(b, r.vers, 1);
  putU(b, static_cast<std::uint8_t>(r.op), 1);
  putU(b, r.uid, 4);
  putU(b, r.gid, 4);
  putU(b, r.fh.len, 1);
  b.append(reinterpret_cast<const char*>(r.fh.data.data()), r.fh.len);
  putU(b, r.fh2.len, 1);
  b.append(reinterpret_cast<const char*>(r.fh2.data.data()), r.fh2.len);
  putU(b, r.resFh.len, 1);
  b.append(reinterpret_cast<const char*>(r.resFh.data.data()), r.resFh.len);
  putU(b, r.name.size(), 2);
  b += r.name;
  putU(b, r.name2.size(), 2);
  b += r.name2;
  putU(b, r.offset, 8);
  putU(b, r.count, 4);
  putU(b, static_cast<std::uint32_t>(r.status), 4);
  putU(b, r.retCount, 4);
  putU(b, static_cast<std::uint32_t>(r.ftype), 1);
  putU(b, r.fileSize, 8);
  putU(b, static_cast<std::uint64_t>(r.fileMtime), 8);
  putU(b, r.fileId, 8);
  putU(b, r.preSize, 8);
  putU(b, static_cast<std::uint64_t>(r.preMtime), 8);
  std::uint64_t bodyLen = out.size() - lenAt - 4;
  for (int i = 0; i < 4; ++i) {
    out[lenAt + static_cast<std::size_t>(i)] =
        static_cast<char>(bodyLen >> (8 * i));
  }
}

std::optional<TraceRecord> unpackBinary(std::FILE* f) {
  std::uint8_t lenBuf[4];
  std::size_t got = std::fread(lenBuf, 1, 4, f);
  if (got == 0) return std::nullopt;
  if (got != 4) throw std::runtime_error("trace: truncated binary record");
  std::size_t len = static_cast<std::size_t>(getU(lenBuf, 4));
  if (len > 1 << 20) throw std::runtime_error("trace: absurd binary record");
  std::vector<std::uint8_t> buf(len);
  if (std::fread(buf.data(), 1, len, f) != len) {
    throw std::runtime_error("trace: truncated binary record body");
  }
  const std::uint8_t* p = buf.data();
  const std::uint8_t* end = buf.data() + buf.size();
  auto need = [&](std::size_t n) {
    if (static_cast<std::size_t>(end - p) < n) {
      throw std::runtime_error("trace: binary record underrun");
    }
  };
  TraceRecord r;
  need(8 + 8 + 4 + 4 + 4 + 1 + 1 + 1 + 4 + 4);
  r.ts = static_cast<MicroTime>(getU(p, 8)); p += 8;
  r.replyTs = static_cast<MicroTime>(getU(p, 8)); p += 8;
  r.client = static_cast<IpAddr>(getU(p, 4)); p += 4;
  r.server = static_cast<IpAddr>(getU(p, 4)); p += 4;
  r.xid = static_cast<std::uint32_t>(getU(p, 4)); p += 4;
  std::uint8_t flags = *p++;
  r.hasReply = flags & 1;
  r.overTcp = flags & 2;
  r.eof = flags & 4;
  r.hasResFh = flags & 8;
  r.hasAttrs = flags & 16;
  r.hasPre = flags & 32;
  r.vers = *p++;
  r.op = static_cast<NfsOp>(*p++);
  r.uid = static_cast<std::uint32_t>(getU(p, 4)); p += 4;
  r.gid = static_cast<std::uint32_t>(getU(p, 4)); p += 4;
  auto readFh = [&](FileHandle& fh) {
    need(1);
    std::uint8_t n = *p++;
    need(n);
    fh = FileHandle::fromBytes({p, n});
    p += n;
  };
  readFh(r.fh);
  readFh(r.fh2);
  readFh(r.resFh);
  auto readStr = [&](std::string& s) {
    need(2);
    std::size_t n = static_cast<std::size_t>(getU(p, 2));
    p += 2;
    need(n);
    s.assign(reinterpret_cast<const char*>(p), n);
    p += n;
  };
  readStr(r.name);
  readStr(r.name2);
  need(8 + 4 + 4 + 4 + 1 + 8 + 8 + 8 + 8 + 8);
  r.offset = getU(p, 8); p += 8;
  r.count = static_cast<std::uint32_t>(getU(p, 4)); p += 4;
  r.status = static_cast<NfsStat>(getU(p, 4)); p += 4;
  r.retCount = static_cast<std::uint32_t>(getU(p, 4)); p += 4;
  r.ftype = static_cast<FileType>(*p++);
  r.fileSize = getU(p, 8); p += 8;
  r.fileMtime = static_cast<MicroTime>(getU(p, 8)); p += 8;
  r.fileId = getU(p, 8); p += 8;
  r.preSize = getU(p, 8); p += 8;
  r.preMtime = static_cast<MicroTime>(getU(p, 8)); p += 8;
  return r;
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path, Format format)
    : format_(format) {
  f_ = std::fopen(path.c_str(), "wb");
  if (!f_) throw std::runtime_error("trace: cannot open for write: " + path);
  buf_.reserve(kWriterFlushBytes + 4096);
  if (format_ == Format::Binary) {
    std::fwrite(kBinMagic, 1, sizeof(kBinMagic), f_);
  }
}

TraceWriter::~TraceWriter() {
  if (f_) {
    try {
      flushBuffer();
    } catch (...) {
      // Destructor must not throw; the close below still releases the fd.
    }
    std::fclose(f_);
  }
}

void TraceWriter::write(const TraceRecord& rec) {
  if (format_ == Format::Text) {
    appendRecord(buf_, rec);
    buf_.push_back('\n');
  } else {
    packBinaryInto(buf_, rec);
  }
  ++count_;
  recordsC_.inc();
  if (buf_.size() >= kWriterFlushBytes) flushBuffer();
}

void TraceWriter::attachMetrics(obs::Registry& registry) {
  recordsC_ = registry.counterHandle("trace.records_written", 0);
  bytesC_ = registry.counterHandle("trace.bytes_written", 0);
  flushNs_ = registry.histogramHandle("trace.flush_ns", 0);
}

void TraceWriter::flushBuffer() {
  if (buf_.empty()) return;
  obs::TimerSpan span(flushNs_);
  if (std::fwrite(buf_.data(), 1, buf_.size(), f_) != buf_.size()) {
    throw std::runtime_error("trace: write failed");
  }
  bytesC_.inc(buf_.size());
  buf_.clear();
}

void TraceWriter::flush() {
  flushBuffer();
  std::fflush(f_);
}

TraceReader::TraceReader(const std::string& path) {
  f_ = std::fopen(path.c_str(), "rb");
  if (!f_) throw std::runtime_error("trace: cannot open for read: " + path);
  char magic[sizeof(kBinMagic)];
  std::size_t got = std::fread(magic, 1, sizeof(magic), f_);
  if (got == sizeof(magic) && std::memcmp(magic, kBinMagic, sizeof(magic)) == 0) {
    binary_ = true;
  } else {
    std::rewind(f_);
  }
}

TraceReader::~TraceReader() {
  if (f_) std::fclose(f_);
}

bool TraceReader::refill() {
  chunk_.resize(kReaderChunkBytes);
  std::size_t got = std::fread(chunk_.data(), 1, chunk_.size(), f_);
  chunk_.resize(got);
  pos_ = 0;
  return got > 0;
}

std::optional<TraceRecord> TraceReader::next() {
  if (binary_) return unpackBinary(f_);
  for (;;) {
    if (pos_ >= chunk_.size()) {
      if (!refill()) break;
    }
    std::size_t nl = chunk_.find('\n', pos_);
    if (nl == std::string::npos) {
      carry_.append(chunk_, pos_, chunk_.size() - pos_);
      pos_ = chunk_.size();
      continue;
    }
    std::optional<TraceRecord> rec;
    if (carry_.empty()) {
      // Fast path: the whole line sits inside the current chunk.
      std::string line = chunk_.substr(pos_, nl - pos_);
      rec = parseRecord(line);
    } else {
      carry_.append(chunk_, pos_, nl - pos_);
      rec = parseRecord(carry_);
      carry_.clear();
    }
    pos_ = nl + 1;
    if (rec) return rec;
  }
  if (!carry_.empty()) {
    std::string line = std::move(carry_);
    carry_.clear();
    return parseRecord(line);
  }
  return std::nullopt;
}

std::vector<TraceRecord> TraceReader::readAll(const std::string& path) {
  TraceReader reader(path);
  std::vector<TraceRecord> out;
  while (auto rec = reader.next()) out.push_back(std::move(*rec));
  return out;
}

}  // namespace nfstrace
