// Trace file I/O.
//
// Text format: one record per line of space-separated key=value pairs,
// nfsdump-style, human-greppable:
//
//   t=0.013202 r=0.013514 c=10.1.0.5 s=10.0.0.1 xid=1a2b v=3 p=udp op=read
//   fh=0001...:  off=0 cnt=8192 st=OK ret=8192 eof=1 sz=123456 mt=999.0
//
// Unknown keys are skipped on read, so the format can grow.  A compact
// binary format (magic "NFST") is also provided for large traces.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "trace/record.hpp"

namespace nfstrace {

/// Append one record as a text line (no trailing newline) to `out`.
/// Allocation-light: everything is rendered with snprintf into the
/// destination buffer, so a writer can format thousands of records into
/// one flush buffer without a heap allocation per record.
void appendRecord(std::string& out, const TraceRecord& rec);
/// Render one record as a text line (no trailing newline).
std::string formatRecord(const TraceRecord& rec);
/// Parse a text line; nullopt for blank/comment lines; throws
/// std::runtime_error on malformed records.
std::optional<TraceRecord> parseRecord(const std::string& line);

/// Buffered trace writer: records are formatted into an in-memory batch
/// buffer and flushed to the file in large writes, so the per-record cost
/// is formatting only (no per-record heap allocation or fwrite call).
class TraceWriter {
 public:
  enum class Format { Text, Binary };

  TraceWriter(const std::string& path, Format format = Format::Text);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write(const TraceRecord& rec);
  /// Flush the batch buffer and the underlying stream.
  void flush();
  std::uint64_t recordsWritten() const { return count_; }

  /// Bind self-monitoring instruments: records/bytes written counters
  /// and a flush-latency histogram (trace.flush_ns).
  void attachMetrics(obs::Registry& registry);

 private:
  void flushBuffer();

  std::FILE* f_ = nullptr;
  Format format_;
  std::string buf_;
  std::uint64_t count_ = 0;
  obs::CounterHandle recordsC_;
  obs::CounterHandle bytesC_;
  obs::HistogramHandle flushNs_;
};

class TraceReader {
 public:
  explicit TraceReader(const std::string& path);
  ~TraceReader();
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  std::optional<TraceRecord> next();

  /// Convenience: read a whole trace file into memory.
  static std::vector<TraceRecord> readAll(const std::string& path);

 private:
  /// Refill chunk_ from the file; returns false at EOF.
  bool refill();

  std::FILE* f_ = nullptr;
  bool binary_ = false;
  // Text path: chunked read buffer (replaces the old fgetc-per-byte loop).
  std::string chunk_;
  std::size_t pos_ = 0;
  std::string carry_;  // partial line spanning chunk boundaries
};

}  // namespace nfstrace
