# Empty compiler generated dependencies file for netcap_test.
# This may be replaced when dependencies are built.
