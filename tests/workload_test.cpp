#include <gtest/gtest.h>

#include "analysis/names.hpp"
#include "analysis/summary.hpp"
#include "workload/campus.hpp"
#include "workload/eecs.hpp"
#include "workload/schedule.hpp"

namespace nfstrace {
namespace {

// ------------------------------------------------------------- schedule

TEST(Schedule, CampusPeakVsNight) {
  auto s = WeeklySchedule::campus();
  double peak = s.weight(days(2) + hours(11));   // Tuesday 11am
  double night = s.weight(days(2) + hours(3));   // Tuesday 3am
  double weekend = s.weight(days(6) + hours(11));  // Saturday 11am
  EXPECT_GT(peak, 5 * night);
  EXPECT_GT(peak, weekend);
}

TEST(Schedule, EecsEveningShoulder) {
  auto s = WeeklySchedule::eecs();
  EXPECT_GT(s.weight(days(3) + hours(22)), 0.3);  // grad students at night
}

TEST(Schedule, NextEventRespectsWeights) {
  auto s = WeeklySchedule::campus();
  Rng rng(1);
  // Count events landing in peak vs night across a simulated week.
  int peakEvents = 0, nightEvents = 0;
  MicroTime t = 0;
  while (t < kMicrosPerWeek) {
    t = s.nextEvent(rng, t, 10.0);
    int h = hourOfDay(t);
    int d = dayOfWeek(t);
    if (d >= 1 && d <= 5 && h >= 9 && h < 18) ++peakEvents;
    if (h >= 0 && h < 6) ++nightEvents;
  }
  EXPECT_GT(peakEvents, 3 * nightEvents);
}

TEST(Schedule, EventTimesStrictlyAdvance) {
  auto s = WeeklySchedule::eecs();
  Rng rng(2);
  MicroTime t = 0;
  for (int i = 0; i < 100; ++i) {
    MicroTime next = s.nextEvent(rng, t, 50.0);
    EXPECT_GT(next, t);
    t = next;
  }
}

// ------------------------------------------------- campus trace shape

class CampusShape : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SimEnvironment::Config simCfg;
    simCfg.fsConfig.fsid = 2;
    simCfg.fsConfig.defaultQuotaBytes = 50ULL << 20;
    simCfg.clientHosts = 3;
    env_ = new SimEnvironment(simCfg);
    CampusConfig cfg;
    cfg.users = 40;
    CampusWorkload wl(cfg, *env_);
    MicroTime start = days(1) + hours(10);  // Monday 10am
    wl.setup(start);
    wl.run(start, start + hours(2));
    env_->finishCapture();
  }
  static void TearDownTestSuite() {
    delete env_;
    env_ = nullptr;
  }
  static SimEnvironment* env_;
};

SimEnvironment* CampusShape::env_ = nullptr;

TEST_F(CampusShape, ReadsDominateData) {
  auto s = summarize(env_->records());
  EXPECT_GT(s.readWriteByteRatio(), 1.5);
  EXPECT_LT(s.readWriteByteRatio(), 6.0);  // paper: ~3
  EXPECT_GT(s.readWriteOpRatio(), 1.5);
}

TEST_F(CampusShape, MostCallsAreData) {
  auto s = summarize(env_->records());
  EXPECT_GT(s.dataOpFraction(), 0.5);
}

TEST_F(CampusShape, LockFilesDominateCreateDelete) {
  FileLifeCensus census;
  for (const auto& r : env_->records()) census.observe(r);
  census.finish();
  // Paper: ~96% of created-and-deleted CAMPUS files are lock files.
  EXPECT_GT(census.lockFractionOfDeleted(), 0.5);
  const auto& locks = census.byCategory().at(NameCategory::LockFile);
  EXPECT_GT(locks.deleted, 50u);
  // Locks are zero length and die fast.
  EXPECT_EQ(locks.zeroLength, locks.deleted);
  auto& lifetimes = const_cast<CategoryStats&>(locks).lifetimesSec;
  EXPECT_LT(lifetimes.quantile(0.99), 0.5);
}

TEST_F(CampusShape, MailboxBytesDominate) {
  // >95% of data bytes should involve user inboxes (mailbox category).
  PathReconstructor paths;
  std::uint64_t mailboxBytes = 0, totalBytes = 0;
  for (const auto& r : env_->records()) {
    paths.observe(r);
    if (r.op == NfsOp::Read || r.op == NfsOp::Write) {
      std::uint64_t n = r.retCount;
      totalBytes += n;
      auto name = paths.nameOf(r.fh);
      if (name && classifyName(*name) == NameCategory::Mailbox) {
        mailboxBytes += n;
      }
    }
  }
  ASSERT_GT(totalBytes, 0u);
  EXPECT_GT(static_cast<double>(mailboxBytes) /
                static_cast<double>(totalBytes),
            0.85);
}

TEST_F(CampusShape, AllCallsCaptured) {
  EXPECT_EQ(env_->records().size(), env_->server().totalCalls());
}

// --------------------------------------------------- eecs trace shape

class EecsShape : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SimEnvironment::Config simCfg;
    simCfg.fsConfig.fsid = 1;
    simCfg.clientHosts = 8;
    simCfg.useTcp = false;  // EECS clients use UDP
    simCfg.mtu = kStandardMtu;
    env_ = new SimEnvironment(simCfg);
    EecsConfig cfg;
    cfg.users = 24;
    EecsWorkload wl(cfg, *env_);
    MicroTime start = days(1) + hours(10);
    wl.setup(start);
    wl.run(start, start + hours(2));
    env_->finishCapture();
  }
  static void TearDownTestSuite() {
    delete env_;
    env_ = nullptr;
  }
  static SimEnvironment* env_;
};

SimEnvironment* EecsShape::env_ = nullptr;

TEST_F(EecsShape, MetadataDominates) {
  auto s = summarize(env_->records());
  // Paper: most EECS calls are metadata (getattr/lookup/access).
  EXPECT_GT(s.metadataOps, s.dataOps);
}

TEST_F(EecsShape, WritesOutnumberReads) {
  auto s = summarize(env_->records());
  EXPECT_LT(s.readWriteOpRatio(), 1.0);   // paper: 0.69
  EXPECT_LT(s.readWriteByteRatio(), 1.5);  // paper: 0.56
}

TEST_F(EecsShape, AppletFilesChurn) {
  FileLifeCensus census;
  for (const auto& r : env_->records()) census.observe(r);
  census.finish();
  auto it = census.byCategory().find(NameCategory::AppletFile);
  ASSERT_NE(it, census.byCategory().end());
  EXPECT_GT(it->second.deleted, 10u);
  // Unlike CAMPUS, locks are a small share of deletions here.
  EXPECT_LT(census.lockFractionOfDeleted(), 0.3);
}

TEST_F(EecsShape, CacheRevalidationTraffic) {
  auto s = summarize(env_->records());
  auto getattrs = s.opCounts[static_cast<std::size_t>(NfsOp::Getattr)];
  auto lookups = s.opCounts[static_cast<std::size_t>(NfsOp::Lookup)];
  auto accesses = s.opCounts[static_cast<std::size_t>(NfsOp::Access)];
  EXPECT_GT(getattrs + lookups + accesses, s.totalOps / 2);
}

// ------------------------------------------------------ config loading

TEST(WorkloadConfig, CampusFromFile) {
  std::string path = "/tmp/campus_test.cfg";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(
        "users = 77\n"
        "deliveries_per_user_hour = 9.5\n"
        "mailbox_median_kb = 512\n"
        "session_mean_minutes = 10\n"
        "seed = 31337\n",
        f);
    std::fclose(f);
  }
  auto cfg = CampusConfig::fromFile(path);
  EXPECT_EQ(cfg.users, 77);
  EXPECT_DOUBLE_EQ(cfg.deliveriesPerUserPeakHourly, 9.5);
  EXPECT_DOUBLE_EQ(cfg.mailboxMedianBytes, 512.0 * 1024);
  EXPECT_EQ(cfg.sessionMeanLength, minutes(10));
  EXPECT_EQ(cfg.seed, 31337u);
  // Unset keys keep the defaults.
  CampusConfig defaults;
  EXPECT_DOUBLE_EQ(cfg.popChecksPerUserPeakHourly,
                   defaults.popChecksPerUserPeakHourly);
  std::remove(path.c_str());
}

TEST(WorkloadConfig, EecsFromFile) {
  std::string path = "/tmp/eecs_test.cfg";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("users = 5\nbuilds_per_user_hour = 1.25\n", f);
    std::fclose(f);
  }
  auto cfg = EecsConfig::fromFile(path);
  EXPECT_EQ(cfg.users, 5);
  EXPECT_DOUBLE_EQ(cfg.buildsPeakHourly, 1.25);
  EecsConfig defaults;
  EXPECT_EQ(cfg.filesPerProject, defaults.filesPerProject);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nfstrace
