#include "util/rng.hpp"

#include <cmath>

namespace nfstrace {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the 256-bit state via splitmix64 as recommended by the xoshiro
  // authors; guarantees a nonzero state for any seed.
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random bits into [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

bool Rng::chance(double p) { return uniform() < p; }

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

std::uint64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's multiplicative method.
    double limit = std::exp(-mean);
    double prod = uniform();
    std::uint64_t n = 0;
    while (prod > limit) {
      ++n;
      prod *= uniform();
    }
    return n;
  }
  // Normal approximation for large means; adequate for load modelling.
  double v = normal(mean, std::sqrt(mean));
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
}

double Rng::normal() {
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return u * std::sqrt(-2.0 * std::log(s) / s);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::pareto(double xm, double alpha) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

Rng Rng::fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

ZipfSampler::ZipfSampler(std::uint64_t n, double s) : n_(n), s_(s) {
  hX1_ = h(1.5) - 1.0;
  hN_ = h(static_cast<double>(n_) + 0.5);
  base_ = 2.0 - hInv(h(2.5) - std::pow(2.0, -s_));
}

double ZipfSampler::h(double x) const {
  // Integral of x^-s; handles s == 1 via the log branch.
  if (std::abs(s_ - 1.0) < 1e-12) return std::log(x);
  return (std::pow(x, 1.0 - s_)) / (1.0 - s_);
}

double ZipfSampler::hInv(double x) const {
  if (std::abs(s_ - 1.0) < 1e-12) return std::exp(x);
  return std::pow((1.0 - s_) * x, 1.0 / (1.0 - s_));
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  // Rejection-inversion (Hörmann & Derflinger 1996).
  while (true) {
    double u = hX1_ + rng.uniform() * (hN_ - hX1_);
    double x = hInv(u);
    auto k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (k - x <= base_ ||
        u >= h(static_cast<double>(k) + 0.5) -
                 std::pow(static_cast<double>(k), -s_)) {
      return k;
    }
  }
}

}  // namespace nfstrace
