#include "daemon/manifest.hpp"

#include <algorithm>
#include <cstdio>
#include <string_view>

#include "util/atomicfile.hpp"
#include "util/crc32.hpp"

namespace nfstrace::daemon {

namespace {

void appendKv(std::string& out, const char* key, std::uint64_t v) {
  out += key;
  out += " = ";
  out += std::to_string(v);
  out += '\n';
}

/// Parse "key=value" out of one space-separated token; false on mismatch.
bool tokenValue(std::string_view token, std::string_view key,
                std::string_view& value) {
  if (token.size() <= key.size() + 1) return false;
  if (token.substr(0, key.size()) != key || token[key.size()] != '=') {
    return false;
  }
  value = token.substr(key.size() + 1);
  return true;
}

bool parseU64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = v;
  return true;
}

bool parseI64(std::string_view s, std::int64_t& out) {
  bool neg = !s.empty() && s[0] == '-';
  std::uint64_t mag = 0;
  if (!parseU64(neg ? s.substr(1) : s, mag)) return false;
  out = neg ? -static_cast<std::int64_t>(mag) : static_cast<std::int64_t>(mag);
  return true;
}

/// One "segment = ..." line body (the part after "segment = ").
bool parseSegment(std::string_view body, SegmentInfo& seg) {
  bool haveSeq = false, haveFile = false;
  std::size_t pos = 0;
  while (pos < body.size()) {
    while (pos < body.size() && body[pos] == ' ') ++pos;
    std::size_t end = body.find(' ', pos);
    if (end == std::string_view::npos) end = body.size();
    std::string_view tok = body.substr(pos, end - pos);
    pos = end;
    if (tok.empty()) continue;
    std::string_view v;
    if (tokenValue(tok, "seq", v)) {
      if (!parseU64(v, seg.seq)) return false;
      haveSeq = true;
    } else if (tokenValue(tok, "file", v)) {
      seg.file = std::string(v);
      haveFile = true;
    } else if (tokenValue(tok, "format", v)) {
      seg.format = std::string(v);
    } else if (tokenValue(tok, "records", v)) {
      if (!parseU64(v, seg.records)) return false;
    } else if (tokenValue(tok, "bytes", v)) {
      if (!parseU64(v, seg.bytes)) return false;
    } else if (tokenValue(tok, "first", v)) {
      if (!parseU64(v, seg.first)) return false;
    } else if (tokenValue(tok, "sealed_unix", v)) {
      if (!parseI64(v, seg.sealedUnix)) return false;
    }
    // Unknown tokens are skipped so the format can grow.
  }
  return haveSeq && haveFile;
}

}  // namespace

std::string Manifest::render() const {
  std::string out = "# nfstraced manifest v1\n";
  appendKv(out, "next_seq", nextSeq);
  appendKv(out, "captured", books.captured);
  appendKv(out, "sealed", books.sealed);
  appendKv(out, "recovered", books.recovered);
  appendKv(out, "lost", books.lost);
  for (const SegmentInfo& s : segments) {
    char line[512];
    std::snprintf(line, sizeof(line),
                  "segment = seq=%llu file=%s format=%s records=%llu "
                  "bytes=%llu first=%llu sealed_unix=%lld\n",
                  static_cast<unsigned long long>(s.seq), s.file.c_str(),
                  s.format.c_str(), static_cast<unsigned long long>(s.records),
                  static_cast<unsigned long long>(s.bytes),
                  static_cast<unsigned long long>(s.first),
                  static_cast<long long>(s.sealedUnix));
    out += line;
  }
  char trailer[32];
  std::snprintf(trailer, sizeof(trailer), "crc = 0x%08x\n",
                crc32(out.data(), out.size()));
  out += trailer;
  return out;
}

Manifest::LoadStatus Manifest::load(const std::string& path, Manifest& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return LoadStatus::Missing;
  std::string text;
  char chunk[1 << 14];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    text.append(chunk, n);
  }
  bool readErr = std::ferror(f) != 0;
  std::fclose(f);
  if (readErr) return LoadStatus::Damaged;

  // Locate the trailer: the last line must be "crc = 0x%08x\n" and the
  // CRC covers every byte before it.
  if (text.empty() || text.back() != '\n') return LoadStatus::Damaged;
  std::size_t lineStart = text.rfind('\n', text.size() - 2);
  lineStart = (lineStart == std::string::npos) ? 0 : lineStart + 1;
  std::string_view last(text.data() + lineStart, text.size() - lineStart);
  if (last.size() != 17 || last.substr(0, 8) != "crc = 0x") {
    return LoadStatus::Damaged;
  }
  std::uint32_t stored = 0;
  for (char c : last.substr(8, 8)) {
    std::uint32_t d;
    if (c >= '0' && c <= '9') d = static_cast<std::uint32_t>(c - '0');
    else if (c >= 'a' && c <= 'f') d = static_cast<std::uint32_t>(c - 'a') + 10;
    else return LoadStatus::Damaged;
    stored = stored << 4 | d;
  }
  if (crc32(text.data(), lineStart) != stored) return LoadStatus::Damaged;

  Manifest m;
  bool haveNextSeq = false;
  std::string_view body(text.data(), lineStart);
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t end = body.find('\n', pos);
    if (end == std::string_view::npos) end = body.size();
    std::string_view line = body.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    std::size_t eq = line.find(" = ");
    if (eq == std::string_view::npos) return LoadStatus::Damaged;
    std::string_view key = line.substr(0, eq);
    std::string_view value = line.substr(eq + 3);
    if (key == "next_seq") {
      if (!parseU64(value, m.nextSeq)) return LoadStatus::Damaged;
      haveNextSeq = true;
    } else if (key == "captured") {
      if (!parseU64(value, m.books.captured)) return LoadStatus::Damaged;
    } else if (key == "sealed") {
      if (!parseU64(value, m.books.sealed)) return LoadStatus::Damaged;
    } else if (key == "recovered") {
      if (!parseU64(value, m.books.recovered)) return LoadStatus::Damaged;
    } else if (key == "lost") {
      if (!parseU64(value, m.books.lost)) return LoadStatus::Damaged;
    } else if (key == "segment") {
      SegmentInfo seg;
      if (!parseSegment(value, seg)) return LoadStatus::Damaged;
      m.segments.push_back(std::move(seg));
    }
    // Unknown keys are skipped (format growth), same as the trace text
    // format.
  }
  if (!haveNextSeq || !m.books.balanced()) return LoadStatus::Damaged;
  std::sort(m.segments.begin(), m.segments.end(),
            [](const SegmentInfo& a, const SegmentInfo& b) {
              return a.seq < b.seq;
            });
  for (const SegmentInfo& s : m.segments) {
    if (s.seq >= m.nextSeq) return LoadStatus::Damaged;
  }
  out = std::move(m);
  return LoadStatus::Ok;
}

void Manifest::save(const std::string& path) const {
  writeFileAtomic(path, render());
}

}  // namespace nfstrace::daemon
