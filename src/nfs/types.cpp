#include "nfs/types.hpp"

#include <cstdio>

namespace nfstrace {

const char* nfsStatName(NfsStat s) {
  switch (s) {
    case NfsStat::Ok: return "OK";
    case NfsStat::ErrPerm: return "EPERM";
    case NfsStat::ErrNoEnt: return "ENOENT";
    case NfsStat::ErrIo: return "EIO";
    case NfsStat::ErrAcces: return "EACCES";
    case NfsStat::ErrExist: return "EEXIST";
    case NfsStat::ErrXDev: return "EXDEV";
    case NfsStat::ErrNoDev: return "ENODEV";
    case NfsStat::ErrNotDir: return "ENOTDIR";
    case NfsStat::ErrIsDir: return "EISDIR";
    case NfsStat::ErrInval: return "EINVAL";
    case NfsStat::ErrFBig: return "EFBIG";
    case NfsStat::ErrNoSpc: return "ENOSPC";
    case NfsStat::ErrRoFs: return "EROFS";
    case NfsStat::ErrMLink: return "EMLINK";
    case NfsStat::ErrNameTooLong: return "ENAMETOOLONG";
    case NfsStat::ErrNotEmpty: return "ENOTEMPTY";
    case NfsStat::ErrDQuot: return "EDQUOT";
    case NfsStat::ErrStale: return "ESTALE";
    case NfsStat::ErrBadHandle: return "EBADHANDLE";
    case NfsStat::ErrNotSync: return "ENOTSYNC";
    case NfsStat::ErrBadCookie: return "EBADCOOKIE";
    case NfsStat::ErrNotSupp: return "ENOTSUPP";
    case NfsStat::ErrTooSmall: return "ETOOSMALL";
    case NfsStat::ErrServerFault: return "ESERVERFAULT";
    case NfsStat::ErrBadType: return "EBADTYPE";
    case NfsStat::ErrJukebox: return "EJUKEBOX";
  }
  return "E?";
}

NfsStat nfsStatFromName(std::string_view name) {
  // Per-record on the trace decode path: dispatch on the second letter
  // ("E" prefix is shared) before the string compare.
  if (name == "OK") return NfsStat::Ok;
  if (name.size() < 2 || name[0] != 'E') return NfsStat::ErrServerFault;
  switch (name[1]) {
    case 'P':
      if (name == "EPERM") return NfsStat::ErrPerm;
      break;
    case 'N':
      if (name == "ENOENT") return NfsStat::ErrNoEnt;
      if (name == "ENOTDIR") return NfsStat::ErrNotDir;
      if (name == "ENOSPC") return NfsStat::ErrNoSpc;
      if (name == "ENOTEMPTY") return NfsStat::ErrNotEmpty;
      if (name == "ENAMETOOLONG") return NfsStat::ErrNameTooLong;
      if (name == "ENODEV") return NfsStat::ErrNoDev;
      if (name == "ENOTSYNC") return NfsStat::ErrNotSync;
      if (name == "ENOTSUPP") return NfsStat::ErrNotSupp;
      break;
    case 'I':
      if (name == "EIO") return NfsStat::ErrIo;
      if (name == "EISDIR") return NfsStat::ErrIsDir;
      if (name == "EINVAL") return NfsStat::ErrInval;
      break;
    case 'A':
      if (name == "EACCES") return NfsStat::ErrAcces;
      break;
    case 'E':
      if (name == "EEXIST") return NfsStat::ErrExist;
      break;
    case 'X':
      if (name == "EXDEV") return NfsStat::ErrXDev;
      break;
    case 'F':
      if (name == "EFBIG") return NfsStat::ErrFBig;
      break;
    case 'R':
      if (name == "EROFS") return NfsStat::ErrRoFs;
      break;
    case 'M':
      if (name == "EMLINK") return NfsStat::ErrMLink;
      break;
    case 'D':
      if (name == "EDQUOT") return NfsStat::ErrDQuot;
      break;
    case 'S':
      if (name == "ESTALE") return NfsStat::ErrStale;
      if (name == "ESERVERFAULT") return NfsStat::ErrServerFault;
      break;
    case 'B':
      if (name == "EBADHANDLE") return NfsStat::ErrBadHandle;
      if (name == "EBADCOOKIE") return NfsStat::ErrBadCookie;
      if (name == "EBADTYPE") return NfsStat::ErrBadType;
      break;
    case 'T':
      if (name == "ETOOSMALL") return NfsStat::ErrTooSmall;
      break;
    case 'J':
      if (name == "EJUKEBOX") return NfsStat::ErrJukebox;
      break;
    default:
      break;
  }
  return NfsStat::ErrServerFault;
}

FileHandle FileHandle::fromBytes(std::span<const std::uint8_t> bytes) {
  FileHandle fh;
  if (bytes.size() > kFhSize3) throw XdrError("file handle too long");
  fh.len = static_cast<std::uint8_t>(bytes.size());
  std::memcpy(fh.data.data(), bytes.data(), bytes.size());
  return fh;
}

FileHandle FileHandle::make(std::uint32_t fsid, std::uint64_t fileid,
                            std::uint32_t generation) {
  // 32-byte canonical layout (zero-padded) so the identical handle bytes
  // appear under both NFSv2 (fixed 32-byte) and NFSv3 (variable) encodings
  // and analyses see one identity per file regardless of protocol version.
  FileHandle fh;
  fh.len = kFhSize2;
  fh.data[0] = static_cast<std::uint8_t>(fsid >> 24);
  fh.data[1] = static_cast<std::uint8_t>(fsid >> 16);
  fh.data[2] = static_cast<std::uint8_t>(fsid >> 8);
  fh.data[3] = static_cast<std::uint8_t>(fsid);
  for (int i = 0; i < 8; ++i) {
    fh.data[4 + i] = static_cast<std::uint8_t>(fileid >> (56 - 8 * i));
  }
  fh.data[12] = static_cast<std::uint8_t>(generation >> 24);
  fh.data[13] = static_cast<std::uint8_t>(generation >> 16);
  fh.data[14] = static_cast<std::uint8_t>(generation >> 8);
  fh.data[15] = static_cast<std::uint8_t>(generation);
  return fh;
}

std::uint64_t FileHandle::fileid() const {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data[4 + i];
  return v;
}

std::uint32_t FileHandle::fsid() const {
  return (static_cast<std::uint32_t>(data[0]) << 24) |
         (static_cast<std::uint32_t>(data[1]) << 16) |
         (static_cast<std::uint32_t>(data[2]) << 8) |
         static_cast<std::uint32_t>(data[3]);
}

std::strong_ordering FileHandle::operator<=>(const FileHandle& o) const {
  if (auto c = len <=> o.len; c != 0) return c;
  int r = std::memcmp(data.data(), o.data.data(), len);
  if (r < 0) return std::strong_ordering::less;
  if (r > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::string FileHandle::toHex() const {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(len * 2);
  for (std::uint8_t i = 0; i < len; ++i) {
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  return out;
}

namespace {

// 256-entry nibble table: hex digit value, or 0xff for non-hex bytes.
// Branchless per-byte decode on the per-record trace parse path.
constexpr std::array<std::uint8_t, 256> makeNibbleTable() {
  std::array<std::uint8_t, 256> t{};
  for (auto& v : t) v = 0xff;
  for (int c = '0'; c <= '9'; ++c) t[static_cast<std::size_t>(c)] = static_cast<std::uint8_t>(c - '0');
  for (int c = 'a'; c <= 'f'; ++c) t[static_cast<std::size_t>(c)] = static_cast<std::uint8_t>(c - 'a' + 10);
  for (int c = 'A'; c <= 'F'; ++c) t[static_cast<std::size_t>(c)] = static_cast<std::uint8_t>(c - 'A' + 10);
  return t;
}
constexpr std::array<std::uint8_t, 256> kNibble = makeNibbleTable();

}  // namespace

FileHandle FileHandle::fromHex(std::string_view hex) {
  if (hex.size() % 2 != 0 || hex.size() / 2 > kFhSize3) {
    throw XdrError("bad file handle hex length");
  }
  FileHandle fh;
  fh.len = static_cast<std::uint8_t>(hex.size() / 2);
  unsigned bad = 0;
  for (std::uint8_t i = 0; i < fh.len; ++i) {
    unsigned hi = kNibble[static_cast<std::uint8_t>(hex[2 * i])];
    unsigned lo = kNibble[static_cast<std::uint8_t>(hex[2 * i + 1])];
    bad |= hi | lo;  // 0xff propagates into bit 7+
    fh.data[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  if (bad & 0xf0) throw XdrError("bad hex digit in file handle");
  return fh;
}

std::size_t FileHandleHash::operator()(const FileHandle& fh) const {
  // FNV-1a over the handle bytes.
  std::size_t h = 1469598103934665603ULL;
  for (std::uint8_t i = 0; i < fh.len; ++i) {
    h ^= fh.data[i];
    h *= 1099511628211ULL;
  }
  return h;
}

NfsTime NfsTime::fromMicro(MicroTime t) {
  if (t < 0) t = 0;
  return {static_cast<std::uint32_t>(t / kMicrosPerSecond),
          static_cast<std::uint32_t>((t % kMicrosPerSecond) * 1000)};
}

MicroTime NfsTime::toMicro() const {
  return static_cast<MicroTime>(seconds) * kMicrosPerSecond + nseconds / 1000;
}

void Fattr::encode3(XdrEncoder& enc) const {
  enc.putUint32(static_cast<std::uint32_t>(type));
  enc.putUint32(mode);
  enc.putUint32(nlink);
  enc.putUint32(uid);
  enc.putUint32(gid);
  enc.putUint64(size);
  enc.putUint64(used);
  enc.putUint32(0);  // rdev major
  enc.putUint32(0);  // rdev minor
  enc.putUint64(fsid);
  enc.putUint64(fileid);
  enc.putUint32(atime.seconds);
  enc.putUint32(atime.nseconds);
  enc.putUint32(mtime.seconds);
  enc.putUint32(mtime.nseconds);
  enc.putUint32(ctime.seconds);
  enc.putUint32(ctime.nseconds);
}

Fattr Fattr::decode3(XdrDecoder& dec) {
  // fattr3 is a fixed 84-byte layout: one bounds check covers all fields.
  dec.require(84);
  Fattr a;
  a.type = static_cast<FileType>(dec.getUint32U());
  a.mode = dec.getUint32U();
  a.nlink = dec.getUint32U();
  a.uid = dec.getUint32U();
  a.gid = dec.getUint32U();
  a.size = dec.getUint64U();
  a.used = dec.getUint64U();
  dec.getUint32U();  // rdev major
  dec.getUint32U();  // rdev minor
  a.fsid = static_cast<std::uint32_t>(dec.getUint64U());
  a.fileid = dec.getUint64U();
  a.atime.seconds = dec.getUint32U();
  a.atime.nseconds = dec.getUint32U();
  a.mtime.seconds = dec.getUint32U();
  a.mtime.nseconds = dec.getUint32U();
  a.ctime.seconds = dec.getUint32U();
  a.ctime.nseconds = dec.getUint32U();
  return a;
}

void Fattr::encode2(XdrEncoder& enc) const {
  // NFSv2 fattr (RFC 1094 §2.3.5): 32-bit sizes, usec times.
  enc.putUint32(static_cast<std::uint32_t>(type));
  enc.putUint32(mode);
  enc.putUint32(nlink);
  enc.putUint32(uid);
  enc.putUint32(gid);
  enc.putUint32(static_cast<std::uint32_t>(size));
  enc.putUint32(kNfsBlockSize);  // blocksize
  enc.putUint32(0);              // rdev
  enc.putUint32(static_cast<std::uint32_t>(used / 512));  // blocks
  enc.putUint32(fsid);
  enc.putUint32(static_cast<std::uint32_t>(fileid));
  enc.putUint32(atime.seconds);
  enc.putUint32(atime.nseconds / 1000);
  enc.putUint32(mtime.seconds);
  enc.putUint32(mtime.nseconds / 1000);
  enc.putUint32(ctime.seconds);
  enc.putUint32(ctime.nseconds / 1000);
}

Fattr Fattr::decode2(XdrDecoder& dec) {
  // v2 fattr is a fixed 17-word layout: one bounds check covers all fields.
  dec.require(68);
  Fattr a;
  a.type = static_cast<FileType>(dec.getUint32U());
  a.mode = dec.getUint32U();
  a.nlink = dec.getUint32U();
  a.uid = dec.getUint32U();
  a.gid = dec.getUint32U();
  a.size = dec.getUint32U();
  dec.getUint32U();  // blocksize
  dec.getUint32U();  // rdev
  a.used = static_cast<std::uint64_t>(dec.getUint32U()) * 512;
  a.fsid = dec.getUint32U();
  a.fileid = dec.getUint32U();
  a.atime.seconds = dec.getUint32U();
  a.atime.nseconds = dec.getUint32U() * 1000;
  a.mtime.seconds = dec.getUint32U();
  a.mtime.nseconds = dec.getUint32U() * 1000;
  a.ctime.seconds = dec.getUint32U();
  a.ctime.nseconds = dec.getUint32U() * 1000;
  return a;
}

void WccAttr::encode(XdrEncoder& enc) const {
  enc.putUint64(size);
  enc.putUint32(mtime.seconds);
  enc.putUint32(mtime.nseconds);
  enc.putUint32(ctime.seconds);
  enc.putUint32(ctime.nseconds);
}

WccAttr WccAttr::decode(XdrDecoder& dec) {
  WccAttr w;
  w.size = dec.getUint64();
  w.mtime.seconds = dec.getUint32();
  w.mtime.nseconds = dec.getUint32();
  w.ctime.seconds = dec.getUint32();
  w.ctime.nseconds = dec.getUint32();
  return w;
}

void WccData::encode(XdrEncoder& enc) const {
  enc.putBool(hasPre);
  if (hasPre) pre.encode(enc);
  enc.putBool(hasPost);
  if (hasPost) post.encode3(enc);
}

WccData WccData::decode(XdrDecoder& dec) {
  WccData w;
  w.hasPre = dec.getBool();
  if (w.hasPre) w.pre = WccAttr::decode(dec);
  w.hasPost = dec.getBool();
  if (w.hasPost) w.post = Fattr::decode3(dec);
  return w;
}

void Sattr::encode3(XdrEncoder& enc) const {
  enc.putBool(setMode);
  if (setMode) enc.putUint32(mode);
  enc.putBool(setUid);
  if (setUid) enc.putUint32(uid);
  enc.putBool(setGid);
  if (setGid) enc.putUint32(gid);
  enc.putBool(setSize);
  if (setSize) enc.putUint64(size);
  // time_how: 0 = DONT_CHANGE, 2 = SET_TO_CLIENT_TIME.
  enc.putUint32(setAtime ? 2 : 0);
  if (setAtime) {
    enc.putUint32(atime.seconds);
    enc.putUint32(atime.nseconds);
  }
  enc.putUint32(setMtime ? 2 : 0);
  if (setMtime) {
    enc.putUint32(mtime.seconds);
    enc.putUint32(mtime.nseconds);
  }
}

Sattr Sattr::decode3(XdrDecoder& dec) {
  Sattr s;
  s.setMode = dec.getBool();
  if (s.setMode) s.mode = dec.getUint32();
  s.setUid = dec.getBool();
  if (s.setUid) s.uid = dec.getUint32();
  s.setGid = dec.getBool();
  if (s.setGid) s.gid = dec.getUint32();
  s.setSize = dec.getBool();
  if (s.setSize) s.size = dec.getUint64();
  std::uint32_t how = dec.getUint32();
  if (how == 2) {
    s.setAtime = true;
    s.atime.seconds = dec.getUint32();
    s.atime.nseconds = dec.getUint32();
  } else if (how == 1) {
    s.setAtime = true;  // SET_TO_SERVER_TIME carries no payload
  }
  how = dec.getUint32();
  if (how == 2) {
    s.setMtime = true;
    s.mtime.seconds = dec.getUint32();
    s.mtime.nseconds = dec.getUint32();
  } else if (how == 1) {
    s.setMtime = true;
  }
  return s;
}

void encodeOptFattr(XdrEncoder& enc, const Fattr* attr) {
  enc.putBool(attr != nullptr);
  if (attr) attr->encode3(enc);
}

bool decodeOptFattr(XdrDecoder& dec, Fattr& out) {
  if (!dec.getBool()) return false;
  out = Fattr::decode3(dec);
  return true;
}

}  // namespace nfstrace
