#include <gtest/gtest.h>

#include <set>

#include "netcap/netcap.hpp"
#include "server/mountd.hpp"
#include "workload/sim.hpp"

namespace nfstrace {
namespace {

// ----------------------------------------------------------- mirror port

class CountingSink : public FrameSink {
 public:
  void onFrame(const CapturedPacket& pkt) override {
    ++frames;
    bytes += pkt.data.size();
    lastTs = pkt.ts;
  }
  std::uint64_t frames = 0;
  std::uint64_t bytes = 0;
  MicroTime lastTs = 0;
};

CapturedPacket packet(MicroTime ts, std::size_t size) {
  CapturedPacket p;
  p.ts = ts;
  p.origLen = static_cast<std::uint32_t>(size);
  p.data.assign(size, 0xab);
  return p;
}

TEST(MirrorPort, ForwardsWhenIdle) {
  CountingSink sink;
  MirrorPort mirror({1e9, 64 * 1024}, sink);
  mirror.onFrame(packet(1000, 1500));
  EXPECT_EQ(mirror.forwarded(), 1u);
  EXPECT_EQ(mirror.dropped(), 0u);
  EXPECT_EQ(sink.frames, 1u);
  // Forwarded timestamp includes serialization delay (1500B at 1Gb/s = 12us).
  EXPECT_GE(sink.lastTs, 1000 + 12);
}

TEST(MirrorPort, DropsWhenBufferOverflows) {
  CountingSink sink;
  // Tiny 10 Mb/s port with a 32 KB buffer.
  MirrorPort mirror({10e6, 32 * 1024}, sink);
  // A burst of jumbo frames at the same instant cannot all fit.
  for (int i = 0; i < 20; ++i) mirror.onFrame(packet(1000, 9000));
  EXPECT_GT(mirror.dropped(), 0u);
  EXPECT_GT(mirror.dropRate(), 0.5);
}

TEST(MirrorPort, RecoversAfterQuietPeriod) {
  CountingSink sink;
  MirrorPort mirror({10e6, 32 * 1024}, sink);
  for (int i = 0; i < 20; ++i) mirror.onFrame(packet(1000, 9000));
  auto droppedBefore = mirror.dropped();
  // Much later, the backlog has drained; a lone frame passes.
  mirror.onFrame(packet(100 * kMicrosPerSecond, 9000));
  EXPECT_EQ(mirror.dropped(), droppedBefore);
}

TEST(MirrorPort, FastPortLosesNothing) {
  // The EECS configuration: monitor as fast as the server port.
  CountingSink sink;
  MirrorPort mirror({1e9, 1 << 20}, sink);
  MicroTime ts = 0;
  for (int i = 0; i < 1000; ++i) {
    mirror.onFrame(packet(ts, 1500));
    ts += 15;  // line-rate 1 Gb/s spacing
  }
  EXPECT_EQ(mirror.dropped(), 0u);
}

TEST(FrameTee, CopiesToAllSinks) {
  CountingSink a, b;
  FrameTee tee;
  tee.addSink(&a);
  tee.addSink(&b);
  tee.onFrame(packet(0, 100));
  EXPECT_EQ(a.frames, 1u);
  EXPECT_EQ(b.frames, 1u);
}

// ------------------------------------------------------------ transport

TEST(Transport, CallEmitsFramesBothDirections) {
  InMemoryFs fs{InMemoryFs::Config{}};
  fs.mkfile("/f", 100, 1, 1, 0);
  NfsServer server(fs);
  CountingSink sink;
  NfsTransport transport({}, server, &sink, 1);

  auto node = fs.resolve("/f");
  ASSERT_TRUE(node.has_value());
  auto outcome = transport.call(seconds(1), GetattrArgs{node->fh}, 1, 1);
  EXPECT_EQ(std::get<GetattrRes>(outcome.reply).status, NfsStat::Ok);
  EXPECT_GE(sink.frames, 2u);  // call + reply
  EXPECT_GT(outcome.replyTs, seconds(1));
}

TEST(Transport, XidsAreUnique) {
  InMemoryFs fs{InMemoryFs::Config{}};
  NfsServer server(fs);
  NfsTransport transport({}, server, nullptr, 1);
  std::set<std::uint32_t> xids;
  for (int i = 0; i < 100; ++i) {
    auto outcome = transport.call(seconds(1), NullArgs{}, 0, 0);
    EXPECT_TRUE(xids.insert(outcome.xid).second);
  }
}

TEST(Transport, UdpLargeReplyFragments) {
  InMemoryFs fs{InMemoryFs::Config{}};
  fs.mkfile("/f", 64 * 1024, 1, 1, 0);
  NfsServer server(fs);
  CountingSink sink;
  NfsTransport::Config tc;
  tc.useTcp = false;
  tc.mtu = kStandardMtu;
  NfsTransport transport(tc, server, &sink, 1);
  auto node = fs.resolve("/f");
  transport.call(seconds(1), ReadArgs{node->fh, 0, 8192}, 1, 1);
  // An 8 KB read reply cannot fit one 1500-byte frame.
  EXPECT_GE(sink.frames, 1u + 6u);
}

// --------------------------------------------------------------- mountd

TEST(Mountd, MntResolvesExportedPath) {
  InMemoryFs fs{InMemoryFs::Config{}};
  fs.mkdirs("/export/home", 0, 0, 0);
  MountServer mountd(fs);
  mountd.addExport("/export/home");

  auto r = mountd.mnt("/export/home");
  EXPECT_EQ(r.status, MountStat::Ok);
  auto node = fs.resolve("/export/home");
  EXPECT_EQ(r.fh, node->fh);
  EXPECT_EQ(mountd.mountsServed(), 1u);
}

TEST(Mountd, UnexportedPathDenied) {
  InMemoryFs fs{InMemoryFs::Config{}};
  fs.mkdirs("/secret", 0, 0, 0);
  MountServer mountd(fs);
  mountd.addExport("/public");
  EXPECT_EQ(mountd.mnt("/secret").status, MountStat::ErrAcces);
}

TEST(Mountd, MissingPathIsNoEnt) {
  InMemoryFs fs{InMemoryFs::Config{}};
  MountServer mountd(fs);
  mountd.addExport("/gone");
  EXPECT_EQ(mountd.mnt("/gone").status, MountStat::ErrNoEnt);
}

TEST(Mountd, FileIsNotDir) {
  InMemoryFs fs{InMemoryFs::Config{}};
  fs.mkfile("/data.bin", 10, 0, 0, 0);
  MountServer mountd(fs);
  mountd.addExport("/data.bin");
  EXPECT_EQ(mountd.mnt("/data.bin").status, MountStat::ErrNotDir);
}

TEST(Mountd, WireMntRoundTrip) {
  InMemoryFs fs{InMemoryFs::Config{}};
  NfsServer server(fs);
  MountServer mountd(fs);
  mountd.addExport("/");
  NfsTransport transport({}, server, nullptr, 1, &mountd);
  MicroTime now = seconds(1);
  auto fh = transport.mount(now, "/", 0, 0);
  ASSERT_TRUE(fh.has_value());
  EXPECT_EQ(*fh, fs.rootHandle());
  EXPECT_GT(now, seconds(1));  // round trip took time
}

TEST(Mountd, WireMntFailureReturnsNullopt) {
  InMemoryFs fs{InMemoryFs::Config{}};
  NfsServer server(fs);
  MountServer mountd(fs);
  mountd.addExport("/only/this");
  NfsTransport transport({}, server, nullptr, 1, &mountd);
  MicroTime now = seconds(1);
  EXPECT_FALSE(transport.mount(now, "/other", 0, 0).has_value());
}

TEST(Mountd, ExportProcListsExports) {
  InMemoryFs fs{InMemoryFs::Config{}};
  MountServer mountd(fs);
  mountd.addExport("/a");
  mountd.addExport("/b");
  XdrEncoder empty;
  XdrDecoder dec(empty.bytes());
  XdrEncoder out;
  ASSERT_TRUE(mountd.handle(MountProc::Export, dec, out));
  XdrDecoder res(out.bytes());
  ASSERT_TRUE(res.getBool());
  EXPECT_EQ(res.getString(), "/a");
  EXPECT_FALSE(res.getBool());  // empty groups
  ASSERT_TRUE(res.getBool());
  EXPECT_EQ(res.getString(), "/b");
}

TEST(Mountd, MountTrafficDoesNotPolluteNfsTrace) {
  // The environment mounts over the wire at startup; the sniffer must not
  // count those replies as orphans or emit records for them.
  SimEnvironment::Config cfg;
  cfg.clientHosts = 2;
  SimEnvironment env(cfg);
  env.fs().mkfile("/f", 8192, 1, 1, 0);
  MicroTime now = seconds(1);
  auto fh = *env.client(0).lookupPath(now, "/f");
  env.client(0).readFile(now, fh);
  env.finishCapture();
  const auto& st = env.sniffer().stats();
  EXPECT_EQ(st.nonNfsCalls, 2u);  // one MNT per client host
  EXPECT_EQ(st.orphanReplies, 0u);
  for (const auto& r : env.records()) {
    EXPECT_NE(r.op, NfsOp::Unknown);
  }
}

}  // namespace
}  // namespace nfstrace
