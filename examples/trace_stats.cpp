// Trace statistics tool: run the paper's analyses over any trace file —
// the `nfsscan` counterpart to capture_to_trace's `nfsdump`.
//
//   trace_stats [--json] [--recover] [--workers N] [--decode-threads N]
//               [--from SEC] [--to SEC] [--ops a,b,...] [--uid N]
//               [--metrics] [trace-file]
//
// Prints the operation mix, data volumes, hourly activity, run pattern
// classification, block-lifetime summary, and name-category census.
// The scan is one pass through the analysis engine: every record is
// decoded once and fanned out to all eight standard passes, instead of
// the historical one-decode-per-analysis loop.  --workers N runs the
// scan on N threads; output is byte-identical at any worker count.
// With --json the summary is emitted as one JSON object on stdout for
// scripting; progress goes to stderr.
// With --recover a damaged trace is read end-to-end anyway: corrupt
// regions are skipped to the next parseable boundary (resyncs land on
// batch boundaries) and a recovery summary goes to stderr.
// With --metrics the engine's obs registry snapshot and any DEGRADED
// alert line go to stderr after the report.
// With --decode-threads N, indexed v2 input is decoded extent-parallel
// (output stays byte-identical); --from/--to/--ops/--uid build a
// pushdown predicate that filters records and prunes whole extents via
// the v2 footer zone maps before any decode.
// With no input argument it generates a demo trace first.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "analysis/engine/engine.hpp"
#include "analysis/engine/passes.hpp"
#include "analysis/engine/report.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "trace/tracefile.hpp"
#include "workload/campus.hpp"
#include "workload/sim.hpp"

#include "scan_flags.hpp"

using namespace nfstrace;

namespace {

std::string makeDemoTrace(bool toStderr) {
  std::string path = "/tmp/trace_stats_demo.trace";
  std::fprintf(toStderr ? stderr : stdout,
               "no input given; generating a demo trace at %s\n\n",
               path.c_str());
  SimEnvironment::Config cfg;
  cfg.fsConfig.fsid = 2;
  cfg.clientHosts = 3;
  SimEnvironment env(cfg);
  CampusConfig wl;
  wl.users = 12;
  CampusWorkload workload(wl, env);
  MicroTime start = days(1) + hours(9);
  workload.setup(start);
  workload.run(start, start + hours(2));
  env.finishCapture();
  TraceWriter writer(path);
  for (const auto& rec : env.records()) writer.write(rec);
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool recover = false;
  bool metrics = false;
  std::size_t workers = 1;
  ScanFlags sf;
  std::string input;
  for (int i = 1; i < argc; ++i) {
    int consumed = sf.tryParse(argc, argv, &i);
    if (consumed < 0) return 2;
    if (consumed > 0) continue;
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--recover") {
      recover = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      input = arg;
    }
  }
  if (input.empty()) input = makeDemoTrace(json);
  std::fprintf(stderr, "%s: %s format\n", input.c_str(),
               traceFormatName(detectTraceFormat(input)));

  obs::Registry registry;
  StandardAnalyses analyses;
  AnalysisEngine::Config cfg;
  cfg.workers = workers;
  cfg.decodeThreads = sf.decodeThreads;
  cfg.predicate = sf.predicate;
  AnalysisEngine engine(cfg);
  engine.addPasses(analyses.all());
  if (metrics) engine.attachMetrics(registry);

  AnalysisEngine::Stats st;
  const bool extentScan =
      !recover && (sf.decodeThreads > 1 || !sf.predicate.trivial());
  if (extentScan) {
    // runFile picks the extent-parallel scanner on indexed v2 input
    // (zone-map pruning + per-extent decode fan-out) and falls back to
    // the classic reader scan — record-level filtering still applies —
    // on v1 or index-less input.
    try {
      st = engine.runFile(input);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "%s: %s\n"
                   "rerun with --recover to skip corrupt regions with "
                   "exact loss accounting\n",
                   input.c_str(), e.what());
      return 3;
    }
  } else {
    TraceReader reader(input, recover);
    try {
      st = engine.run(reader);
    } catch (const std::exception& e) {
      // A torn or corrupt trace read without --recover: report how far
      // the scan got (the checkpoint accounting bounds the damage) and
      // exit nonzero instead of dying on a bare exception.
      const auto& rs = reader.recoverStats();
      std::fprintf(stderr,
                   "%s: %s\n"
                   "scanned %llu records before the damage "
                   "(%llu checkpoints, last checkpoint at %llu records)\n"
                   "rerun with --recover to skip corrupt regions with exact "
                   "loss accounting\n",
                   input.c_str(), e.what(),
                   static_cast<unsigned long long>(engine.stats().records),
                   static_cast<unsigned long long>(rs.checkpoints),
                   static_cast<unsigned long long>(rs.checkpointRecords));
      return 3;
    }
    if (recover) {
      const auto& rs = reader.recoverStats();
      std::fprintf(stderr,
                   "recovery: %llu records recovered, %llu skipped "
                   "(%llu resyncs, %llu checkpoints)\n",
                   static_cast<unsigned long long>(rs.recovered),
                   static_cast<unsigned long long>(rs.skipped),
                   static_cast<unsigned long long>(rs.resyncs),
                   static_cast<unsigned long long>(rs.checkpoints));
    }
  }
  sf.reportPruning(st);
  if (st.records == 0) {
    std::fprintf(stderr, "%s: no records%s\n", input.c_str(),
                 sf.predicate.trivial() ? "" : " matched the predicate");
    return 1;
  }

  std::string report = json ? renderReportJson(input, analyses)
                            : renderReportText(input, analyses);
  std::fwrite(report.data(), 1, report.size(), stdout);
  if (metrics) {
    auto snap = registry.scrape();
    std::string table = obs::SnapshotExporter::renderStatusTable(snap, 0, 0);
    table += obs::SnapshotExporter::renderAlerts(
        snap, obs::defaultAlertCounters());
    std::fwrite(table.data(), 1, table.size(), stderr);
  }
  return 0;
}
