// Shared CLI plumbing for the scan-predicate and decode-parallelism
// flags that trace_analyze and trace_stats both take:
//
//   --decode-threads N    extent-decode threads for indexed v2 input
//   --from SEC / --to SEC keep records with SEC <= timestamp <= SEC
//                         (decimal seconds, same unit the reports print)
//   --ops a,b,c           keep only the named NFS ops (read,write,...)
//   --uid N               keep only records issued by uid N
//
// The time/op/uid flags build an AnalysisEngine::Config::predicate;
// non-trivial predicates additionally prune whole extents through the
// v2 footer zone maps when the input is indexed.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/engine/engine.hpp"
#include "nfs/proc.hpp"
#include "trace/predicate.hpp"

namespace nfstrace {

struct ScanFlags {
  std::size_t decodeThreads = 1;
  ScanPredicate predicate;

  /// Parse one "a,b,c" op list into a mask; false (with a message on
  /// stderr) on an unknown name or an empty list.
  static bool parseOpsList(const std::string& list, std::uint32_t* mask) {
    std::uint32_t m = 0;
    std::size_t pos = 0;
    for (;;) {
      std::size_t comma = list.find(',', pos);
      std::string name = comma == std::string::npos
                             ? list.substr(pos)
                             : list.substr(pos, comma - pos);
      if (!name.empty()) {
        NfsOp op = nfsOpFromName(name);
        if (op == NfsOp::Unknown && name != "unknown") {
          std::fprintf(stderr, "--ops: unknown NFS op \"%s\"\n", name.c_str());
          return false;
        }
        m |= opMaskBit(op);
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (m == 0) {
      std::fprintf(stderr, "--ops: empty op list\n");
      return false;
    }
    *mask = m;
    return true;
  }

  /// Try to consume the flag at argv[*i] (advancing *i past its value).
  /// Returns 1 if consumed, 0 if the flag is not ours, -1 on a bad
  /// value (message already printed).
  int tryParse(int argc, char** argv, int* i) {
    std::string arg = argv[*i];
    auto value = [&](const char* flag) -> const char* {
      if (*i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++*i];
    };
    if (arg == "--decode-threads") {
      const char* v = value("--decode-threads");
      if (!v) return -1;
      decodeThreads = static_cast<std::size_t>(std::strtoul(v, nullptr, 10));
      if (decodeThreads == 0) decodeThreads = 1;
      return 1;
    }
    if (arg == "--from" || arg == "--to") {
      const char* v = value(arg.c_str());
      if (!v) return -1;
      char* end = nullptr;
      double sec = std::strtod(v, &end);
      if (end == v || *end != '\0') {
        std::fprintf(stderr, "%s: bad seconds value \"%s\"\n", arg.c_str(), v);
        return -1;
      }
      MicroTime t = static_cast<MicroTime>(std::llround(sec * 1e6));
      if (arg == "--from") {
        predicate.from = t;
      } else {
        predicate.to = t;
      }
      return 1;
    }
    if (arg == "--ops") {
      const char* v = value("--ops");
      if (!v) return -1;
      return parseOpsList(v, &predicate.ops) ? 1 : -1;
    }
    if (arg == "--uid") {
      const char* v = value("--uid");
      if (!v) return -1;
      predicate.uid = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
      return 1;
    }
    return 0;
  }

  /// One stderr line about what the pushdown actually did.  Quiet when
  /// no predicate was given.
  void reportPruning(const AnalysisEngine::Stats& st) const {
    if (predicate.trivial()) return;
    std::fprintf(stderr,
                 "predicate: pruned %llu of %llu extents via zone maps, "
                 "filtered %llu decoded records, kept %llu\n",
                 static_cast<unsigned long long>(st.extentsPruned),
                 static_cast<unsigned long long>(st.extentsTotal),
                 static_cast<unsigned long long>(st.recordsFiltered),
                 static_cast<unsigned long long>(st.records));
  }
};

}  // namespace nfstrace
