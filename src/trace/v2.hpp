// Trace format v2: fixed-size column-oriented extents (DataSeries-style).
//
// The v1 formats are row-oriented — every record carries every field, and
// the reader pays a full per-record parse.  v2 groups records into
// extents of a few thousand records and stores each field as its own
// contiguous column stream with a per-column encoding:
//
//   column        encoding
//   ------------  ----------------------------------------------------
//   flags, op     1 byte/record (flags packs reply/tcp/eof/attr/err bits
//                 + vers)
//   ts            zigzag varint delta vs previous record's ts
//   replyTs       [hasReply] zigzag varint (replyTs - ts)
//   who           varint id into the extent's identity-tuple dictionary
//                 — one id stands for (client, server, uid, gid)
//   xid           4 bytes little-endian
//   fh/fh2/resFh  varint id into the extent's file-handle dictionary
//   name/name2    varint id into the extent's name dictionary
//   offset        [read/write/commit] zigzag varint delta vs previous
//                 offset (sequential access decodes to 1 byte)
//   count         [read/write/commit] varint
//   status        [hasReply, err flag] varint — Ok replies store nothing
//   retCount      [hasReply, read/write] varint
//   attrs         [hasAttrs] ftype varint; size/mtime/fileId zigzag varint
//                 delta vs the previous value in the same column (polls
//                 of an unchanged file decode to 1 byte each)
//   pre-op attrs  [hasPre] size/mtime zigzag delta vs previous value
//
// Dictionaries are extent-local (id 0 is always the empty string and is
// never stored), so every extent is independently decodable — the
// property both seekable scans and extent-granular recovery rest on.
// Local dictionary order is first-appearance order within the extent,
// which makes the reader's global interned ids identical to the ids a
// v1 per-record decode would assign: the analysis engine's byte-identical
// guarantee carries over to v2 input for free.  The identity-tuple
// ("who") dictionary stores 16-byte packed little-endian
// (client, server, uid, gid) entries and is decoded into a local lookup
// table — a trace has few distinct identities, so one varint per record
// replaces four delta columns.
//
// Layout on disk:
//
//   "NFST2\n"                                     file magic
//   "NFSH" u32 len  <schema text>                 self-describing schema
//   extent*                                       (see ExtentHeader)
//   "NFIX" u32 n  n x entry  u32 crc  u64 off     footer index (optional,
//   "NFS2EOF\n"                                    written on clean close)
//
// Each extent is  "NFX2" + fixed header (with its own CRC) + payload
// (dictionaries then columns, CRC'd as a unit).  The header carries the
// cumulative record count of all prior extents, so a recovering reader
// that skips damage knows exactly how many records it lost — the v2
// generalization of the v1 checkpoint footer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "trace/record.hpp"
#include "util/interner.hpp"

namespace nfstrace {
namespace tracev2 {

inline constexpr char kFileMagic[6] = {'N', 'F', 'S', 'T', '2', '\n'};
inline constexpr char kSchemaMagic[4] = {'N', 'F', 'S', 'H'};
inline constexpr char kExtentMagic[4] = {'N', 'F', 'X', '2'};
inline constexpr char kIndexMagic[4] = {'N', 'F', 'I', 'X'};
inline constexpr char kTrailerMagic[8] = {'N', 'F', 'S', '2', 'E', 'O', 'F',
                                          '\n'};

/// Fixed extent header: magic, payloadBytes u32, records u32,
/// recordsBefore u64, tsFirst i64, payloadCrc u32, headerCrc u32.
inline constexpr std::size_t kExtentHeaderBytes = 4 + 4 + 4 + 8 + 8 + 4 + 4;

/// One footer-index entry (also what the writer tracks per sealed
/// extent): enough to skip an extent by time range, op mix, uid or
/// fileId range without touching its payload.  Schema 4 stores the full
/// 56-byte entry; schema 2/3 footers carry only the first 32 bytes
/// (offset through opMask) and load with the conservative zone-map
/// defaults below, so every pruning decision stays sound on old files.
struct ExtentInfo {
  std::uint64_t offset = 0;  // file offset of the extent magic
  std::uint32_t records = 0;
  MicroTime tsMin = 0;
  MicroTime tsMax = 0;
  /// Bit i set iff some record in the extent has op == i (ops >= 31
  /// collapse into bit 31).
  std::uint32_t opMask = 0;
  /// Zone maps (schema 4).  uid ranges over every record; fileId ranges
  /// over the value a decode would produce (0 for records without
  /// post-op attrs), so record-level predicate semantics match.
  std::uint32_t uidMin = 0;
  std::uint32_t uidMax = ~std::uint32_t{0};
  std::uint64_t fileIdMin = 0;
  std::uint64_t fileIdMax = ~std::uint64_t{0};
};

/// Footer-index entry sizes on disk: schema 4 appends uid/fileId zone
/// maps to the legacy 32-byte entry.
inline constexpr std::size_t kIndexEntryBytes = 56;
inline constexpr std::size_t kIndexEntryBytesLegacy = 32;

struct ExtentHeader {
  std::uint32_t payloadBytes = 0;
  std::uint32_t records = 0;
  std::uint64_t recordsBefore = 0;  // cumulative records in prior extents
  MicroTime tsFirst = 0;            // absolute ts of the extent's record 0
  std::uint32_t payloadCrc = 0;
};

/// Append the schema block ("NFSH" + length-prefixed text) to `out`.
void appendSchema(std::string& out);

/// Validate + skip a schema block at `data` (bytes after the file magic).
/// Returns the block's total size, or nullopt if malformed.  Accepts the
/// current schema 4 plus the legacy schema 3 (32-byte footer entries)
/// and schema 2 (ftype as raw byte); with non-null `schemaVersion`,
/// reports which one was found.
std::optional<std::size_t> parseSchema(const char* data, std::size_t n,
                                       int* schemaVersion = nullptr);

/// Parse + validate a fixed extent header (kExtentHeaderBytes bytes
/// starting at the magic).  Returns false on bad magic or header CRC.
bool parseExtentHeader(const unsigned char* p, ExtentHeader& out);

/// Append the footer index + trailer for `extents` to `out`;
/// `indexOffset` is the file offset `out` will land at.
void appendIndex(std::string& out, const std::vector<ExtentInfo>& extents,
                 std::uint64_t indexOffset);

/// Load the footer index of a v2 trace.  nullopt when the file is not
/// v2, has no footer (torn tail / still being written), or the footer
/// fails its CRC.  Legacy 32-byte entries load with conservative
/// (never-prune) uid/fileId zone maps.
std::optional<std::vector<ExtentInfo>> loadExtentIndex(
    const std::string& path);

/// One extent of a (possibly concatenated) v2 stream: its footer-index
/// entry with the offset rebased to the whole file, plus the schema
/// version of the segment it belongs to.
struct ChainedExtent {
  ExtentInfo info;
  int schema = 4;
};

/// Load the extent index of a v2 stream that may be several sealed
/// segments concatenated back to back (cat of the daemon's sealed
/// files).  Walks segments forward, chains every "NFIX" footer, and
/// cross-checks each footer entry against the extent headers actually
/// walked, so a bad or missing footer can never silently drop extents.
/// nullopt when the file is not v2 or any segment lacks a clean,
/// CRC-valid, header-consistent footer — callers fall back to the
/// sequential magic-scan reader.
std::optional<std::vector<ChainedExtent>> loadChainedIndex(
    const std::string& path);

/// Writer-side column accumulator for one extent.  Records stream in via
/// add(); seal() assembles dictionaries + columns into a CRC'd payload,
/// appends header + payload to the output buffer, and resets for the
/// next extent.
class ExtentEncoder {
 public:
  ExtentEncoder();
  ~ExtentEncoder();
  ExtentEncoder(const ExtentEncoder&) = delete;
  ExtentEncoder& operator=(const ExtentEncoder&) = delete;

  void add(const TraceRecord& rec);
  std::size_t records() const { return records_; }
  /// Encoded payload bytes buffered so far (columns + dictionary
  /// payload); used to seal early on pathological extents.
  std::size_t pendingBytes() const;

  /// Append header + payload for the buffered records to `out` and reset.
  /// Must not be called with zero records.  `fileOffset` is where the
  /// extent magic will land in the file (recorded in the returned info).
  ExtentInfo seal(std::string& out, std::uint64_t recordsBefore,
                  std::uint64_t fileOffset);

 private:
  struct Impl;
  Impl* impl_;
  std::size_t records_ = 0;
};

/// Reader-side extent decoder: validates and cursors one extent payload.
/// Dictionary entries are interned into the caller's global interners at
/// load time (a few dozen strings per extent), after which per-record
/// decode is pure varint/byte reads — no hashing, no per-record parse.
class ExtentDecoder {
 public:
  /// Global interned ids for one record's string columns.
  struct Ids {
    std::uint32_t fh = 0, fh2 = 0, resFh = 0;
    std::uint32_t name = 0, name2 = 0;
  };

  ExtentDecoder();
  ~ExtentDecoder();
  ExtentDecoder(const ExtentDecoder&) = delete;
  ExtentDecoder& operator=(const ExtentDecoder&) = delete;

  /// The payload buffer the caller freads into before load() (reused
  /// across extents).
  std::vector<std::uint8_t>& buffer();

  /// File-level schema version from parseSchema (default 4, the current
  /// schema; 3 differs only in footer-entry width so decodes the same).
  /// Schema 2 switches the ftype column to its legacy raw-byte decode;
  /// sticky across every load() on this decoder.
  void setSchema(int version);

  /// Parse dictionaries + column cursors from buffer() (which must hold
  /// hdr.payloadBytes bytes whose CRC already checked out).  Throws
  /// std::runtime_error on malformed payload.
  void load(const ExtentHeader& hdr, StringInterner& names,
            StringInterner& handles);

  std::size_t remaining() const { return remaining_; }

  /// Decode the next record (slot is reset, string capacity reused).
  /// With non-null `ids`, also emits the record's global interned ids.
  /// Must not be called with remaining() == 0.
  void next(TraceRecord& rec, Ids* ids);

  /// Destination arrays for a bulk decode: `recs` plus the five parallel
  /// id arrays of a TraceBatch, all with room for at least `max` entries.
  struct BatchOut {
    TraceRecord* recs = nullptr;
    std::uint32_t* fh = nullptr;
    std::uint32_t* fh2 = nullptr;
    std::uint32_t* resFh = nullptr;
    std::uint32_t* name = nullptr;
    std::uint32_t* name2 = nullptr;
  };

  /// Bulk decode of min(remaining(), max) records into `out` — one call
  /// per batch refill instead of one per record.  Returns the count
  /// decoded.
  std::size_t take(const BatchOut& out, std::size_t max);

 private:
  void decodeOne(TraceRecord& rec, Ids* ids);

  struct Impl;
  Impl* impl_;
  std::size_t remaining_ = 0;
};

}  // namespace tracev2
}  // namespace nfstrace
