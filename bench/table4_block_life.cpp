// Table 4: daily block life statistics — births by cause (write vs
// extension) and deaths by cause (overwrite / truncate / deletion), using
// Roselli's create-based method with a 24-hour phase 1 starting 9am and a
// 24-hour end margin, streamed over a two-day simulation.
#include "analysis/blocklife.hpp"
#include "bench_common.hpp"

using namespace nfstrace;
using namespace nfstrace::bench;

namespace {

BlockLifeStats run(bool campusSystem) {
  BlockLifeConfig cfg;
  cfg.phase1Start = days(1) + hours(9);  // Monday 9am
  cfg.phase1Length = kMicrosPerDay;
  cfg.phase2Length = kMicrosPerDay;
  BlockLifeAnalyzer analyzer(cfg);
  auto cb = [&](const TraceRecord& r) { analyzer.observe(r); };
  MicroTime start = days(1);
  MicroTime end = days(3) + hours(9);
  if (campusSystem) {
    auto s = makeCampus(24, cb);
    s.workload->setup(start);
    s.workload->run(start, end);
    s.env->finishCapture();
  } else {
    auto s = makeEecs(16, cb);
    s.workload->setup(start);
    s.workload->run(start, end);
    s.env->finishCapture();
  }
  analyzer.finish();
  return analyzer.stats();
}

std::string pctOf(std::uint64_t part, std::uint64_t whole) {
  return whole ? TextTable::fixed(100.0 * static_cast<double>(part) /
                                      static_cast<double>(whole),
                                  1) + " %"
               : "n/a";
}

}  // namespace

int main() {
  banner("Table 4 -- daily block life statistics (births/deaths by cause)");

  auto campus = run(true);
  auto eecs = run(false);

  TextTable t({"Statistic", "CAMPUS sim", "EECS sim", "CAMPUS paper",
               "EECS paper"});
  t.addRow({"Total births",
            TextTable::withCommas(campus.births),
            TextTable::withCommas(eecs.births), "28.4M", "9.8M"});
  t.addRow({"  due to writes", pctOf(campus.birthsWrite, campus.births),
            pctOf(eecs.birthsWrite, eecs.births), "99.9 %", "75.5 %"});
  t.addRow({"  due to extension",
            pctOf(campus.birthsExtension, campus.births),
            pctOf(eecs.birthsExtension, eecs.births), "<0.1 %", "24.5 %"});
  t.addRule();
  t.addRow({"Total deaths",
            TextTable::withCommas(campus.deaths),
            TextTable::withCommas(eecs.deaths), "27.5M", "9.2M"});
  t.addRow({"  due to overwrites",
            pctOf(campus.deathsOverwrite, campus.deaths),
            pctOf(eecs.deathsOverwrite, eecs.deaths), "99.1 %", "42.4 %"});
  t.addRow({"  due to truncates",
            pctOf(campus.deathsTruncate, campus.deaths),
            pctOf(eecs.deathsTruncate, eecs.deaths), "0.6 %", "5.8 %"});
  t.addRow({"  due to file deletion",
            pctOf(campus.deathsDelete, campus.deaths),
            pctOf(eecs.deathsDelete, eecs.deaths), "0.3 %", "51.8 %"});
  t.addRule();
  t.addRow({"End surplus (% of births)",
            TextTable::percent(campus.surplusFraction()),
            TextTable::percent(eecs.surplusFraction()), "2.1-5.9 %",
            "3.5-9.5 %"});
  std::fputs(t.render().c_str(), stdout);

  std::printf(
      "\nShape checks: CAMPUS deaths are almost entirely overwrites\n"
      "(mailboxes are rewritten, never deleted); EECS splits between\n"
      "overwrites and deletions (build outputs, browser caches, applet\n"
      "files); extensions matter only on EECS.\n");
  return 0;
}
