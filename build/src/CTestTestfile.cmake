# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("xdr")
subdirs("rpc")
subdirs("nfs")
subdirs("pcap")
subdirs("net")
subdirs("fs")
subdirs("server")
subdirs("client")
subdirs("netcap")
subdirs("sniffer")
subdirs("trace")
subdirs("anon")
subdirs("workload")
subdirs("analysis")
