file(REMOVE_RECURSE
  "libnfstrace_trace.a"
)
