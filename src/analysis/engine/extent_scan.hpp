// Support types for the extent-parallel scanner (see extent_scan.cpp
// for the scheduler itself; DESIGN.md "Extent-parallel scan & zone
// maps" for the contract).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

namespace nfstrace {

/// The reorder stage between out-of-order extent decoders and the
/// in-order consumer that drives sequential passes.  One instance holds
/// a fixed pool of slots; batches are keyed by the global batch
/// sequence number derived from the footer's cumulative-record
/// numbering, so the consumer pops them in exact stream order whatever
/// order the decode workers finish in.
///
/// Producers: acquire(seq) -> fill the slot -> publish(seq, slot).
/// Consumer:  popNext(out) -> observe -> recycle(out).
///
/// acquire() admits only sequence numbers inside the sliding window
/// [consumed, consumed + poolSize).  That bound is the deadlock-freedom
/// argument: if every slot is held, the holders are poolSize *distinct*
/// in-window sequence numbers — i.e. all of them, including the one the
/// consumer is waiting for, and a held slot always progresses to
/// publish without acquiring anything else.  So the consumer drains,
/// the window slides, and blocked producers wake.
template <class T>
class BatchReorderQueue {
 public:
  explicit BatchReorderQueue(std::vector<T> pool)
      : free_(std::move(pool)), window_(free_.size()) {}

  /// Block until a pool slot is free and `seq` is inside the window.
  /// Returns T{} if abort() fired.  With non-null `waited`, reports
  /// whether the call actually blocked (for stall attribution).
  T acquire(std::uint64_t seq, bool* waited = nullptr) {
    std::unique_lock<std::mutex> lk(mu_);
    if (waited) *waited = false;
    while (!abort_ && (free_.empty() || seq >= next_ + window_)) {
      if (waited) *waited = true;
      cv_.wait(lk);
    }
    if (abort_) return T{};
    T slot = std::move(free_.back());
    free_.pop_back();
    return slot;
  }

  /// Hand a filled slot to the consumer.  Every admitted seq must be
  /// published exactly once (even if the batch filtered down to empty),
  /// or the consumer stalls waiting for it.
  void publish(std::uint64_t seq, T item) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      ready_.emplace(seq, std::move(item));
    }
    cv_.notify_all();
  }

  /// Block for the next in-order batch.  False when abort() fired.
  bool popNext(T& out, bool* waited = nullptr) {
    std::unique_lock<std::mutex> lk(mu_);
    if (waited) *waited = false;
    for (;;) {
      auto it = ready_.find(next_);
      if (it != ready_.end()) {
        out = std::move(it->second);
        ready_.erase(it);
        return true;
      }
      if (abort_) return false;
      if (waited) *waited = true;
      cv_.wait(lk);
    }
  }

  /// Return a popped slot to the pool and slide the window.
  void recycle(T item) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      free_.push_back(std::move(item));
      ++next_;
    }
    cv_.notify_all();
  }

  /// Wake everyone and make further acquire()/popNext() fail — the
  /// error path when any decode worker throws.
  void abort() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      abort_ = true;
    }
    cv_.notify_all();
  }

  bool aborted() const {
    std::lock_guard<std::mutex> lk(mu_);
    return abort_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<T> free_;
  std::map<std::uint64_t, T> ready_;
  std::uint64_t next_ = 0;  // next seq popNext() will hand out
  std::size_t window_;
  bool abort_ = false;
};

}  // namespace nfstrace
