#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace nfstrace::obs {

void JsonWriter::elem() {
  if (afterKey_) {
    afterKey_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) out_.push_back(',');
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::beginObject() {
  elem();
  out_.push_back('{');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  out_.push_back('}');
  if (!first_.empty()) first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  elem();
  out_.push_back('[');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  out_.push_back(']');
  if (!first_.empty()) first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  elem();
  out_.push_back('"');
  out_ += escape(k);
  out_ += "\":";
  afterKey_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  elem();
  out_.push_back('"');
  out_ += escape(s);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return valueNull();
  elem();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  elem();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  elem();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  elem();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::valueNull() {
  elem();
  out_ += "null";
  return *this;
}

void JsonWriter::clear() {
  out_.clear();
  first_.clear();
  afterKey_ = false;
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

}  // namespace nfstrace::obs
