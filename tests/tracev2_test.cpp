// Trace format v2: columnar extent round-trips, the footer index, and
// extent-granular recovery (torn tails, CRC-corrupt payloads, corrupt
// headers) with exact recovered/skipped accounting.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "trace/tracefile.hpp"
#include "trace/v2.hpp"
#include "util/rng.hpp"

namespace nfstrace {
namespace {

class TraceV2Test : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "tracev2_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".trace";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

/// A randomized record whose field population mirrors what the sniffer
/// can actually produce (reply fields only with a reply, offsets only on
/// read/write/commit) so every format round-trips it identically.
TraceRecord randomRecord(Rng& rng, MicroTime ts) {
  static const NfsOp kOps[] = {
      NfsOp::Getattr, NfsOp::Setattr, NfsOp::Lookup, NfsOp::Access,
      NfsOp::Read,    NfsOp::Write,   NfsOp::Create, NfsOp::Remove,
      NfsOp::Rename,  NfsOp::Readdir, NfsOp::Commit, NfsOp::Fsstat,
  };
  TraceRecord r;
  r.ts = ts;
  r.client = makeIp(10, 1, 0, static_cast<int>(rng.below(20)) + 1);
  r.server = makeIp(10, 0, 0, 1);
  r.xid = static_cast<std::uint32_t>(rng.next());
  r.vers = rng.chance(0.1) ? 2 : 3;
  r.overTcp = rng.chance(0.5);
  r.op = kOps[rng.below(std::size(kOps))];
  r.uid = 2000 + static_cast<std::uint32_t>(rng.below(40));
  r.gid = 200 + static_cast<std::uint32_t>(rng.below(4));
  r.fh = FileHandle::make(2, rng.below(500), 7);
  if (r.op == NfsOp::Rename) {
    r.fh2 = FileHandle::make(2, rng.below(500), 7);
    r.name = "from" + std::to_string(rng.below(100));
    r.name2 = "to" + std::to_string(rng.below(100));
  } else if (r.hasName()) {
    r.name = "file" + std::to_string(rng.below(200)) + ".txt";
  }
  if (r.hasOffset()) {
    r.offset = rng.below(1 << 20) * 8192;
    r.count = 8192;
  }
  if (rng.chance(0.9)) {
    r.hasReply = true;
    r.replyTs = r.ts + static_cast<MicroTime>(rng.below(5000)) + 1;
    r.status = rng.chance(0.05) ? NfsStat::ErrNoEnt : NfsStat::Ok;
    if (r.op == NfsOp::Read || r.op == NfsOp::Write) {
      r.retCount = r.count;
      r.eof = r.op == NfsOp::Read && rng.chance(0.3);
    }
    if ((r.op == NfsOp::Lookup || r.op == NfsOp::Create) &&
        r.status == NfsStat::Ok) {
      r.resFh = FileHandle::make(2, rng.below(500), 7);
      r.hasResFh = true;
    }
    if (rng.chance(0.8)) {
      r.hasAttrs = true;
      // Occasionally out-of-enum: a bit-flipped wire frame can decode to
      // any 32-bit ftype, and the text format round-trips it faithfully
      // — v2 must too (it once stored ftype as a single truncating byte).
      r.ftype = rng.chance(0.02)
                    ? static_cast<FileType>(rng.below(1u << 16) + 8)
                    : rng.chance(0.2) ? FileType::Directory
                                      : FileType::Regular;
      r.fileSize = rng.below(1 << 22);
      r.fileMtime = r.ts - static_cast<MicroTime>(rng.below(kMicrosPerHour));
      r.fileId = rng.below(100000);
    }
    if (r.op == NfsOp::Write && rng.chance(0.7)) {
      r.hasPre = true;
      r.preSize = rng.below(1 << 22);
      r.preMtime = r.ts - static_cast<MicroTime>(rng.below(kMicrosPerHour));
    }
  }
  return r;
}

std::vector<TraceRecord> randomRecords(std::size_t n,
                                       std::uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<TraceRecord> out;
  out.reserve(n);
  MicroTime ts = 86400 * kMicrosPerSecond;
  for (std::size_t i = 0; i < n; ++i) {
    ts += static_cast<MicroTime>(rng.below(20000));
    out.push_back(randomRecord(rng, ts));
  }
  return out;
}

void writeV2(const std::string& path, const std::vector<TraceRecord>& recs,
             std::uint64_t extentRecords = 4096) {
  TraceWriter::Options opts;
  opts.format = TraceWriter::Format::V2;
  opts.v2ExtentRecords = extentRecords;
  TraceWriter w(path, opts);
  for (const auto& r : recs) w.write(r);
}

void expectSameRecord(const TraceRecord& a, const TraceRecord& b,
                      std::size_t at) {
  SCOPED_TRACE("record " + std::to_string(at));
  EXPECT_EQ(a.ts, b.ts);
  EXPECT_EQ(a.client, b.client);
  EXPECT_EQ(a.server, b.server);
  EXPECT_EQ(a.xid, b.xid);
  EXPECT_EQ(a.vers, b.vers);
  EXPECT_EQ(a.overTcp, b.overTcp);
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.uid, b.uid);
  EXPECT_EQ(a.gid, b.gid);
  EXPECT_EQ(a.fh, b.fh);
  EXPECT_EQ(a.fh2, b.fh2);
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.name2, b.name2);
  EXPECT_EQ(a.hasReply, b.hasReply);
  if (a.hasOffset()) {
    EXPECT_EQ(a.offset, b.offset);
    EXPECT_EQ(a.count, b.count);
  }
  if (a.hasReply) {
    EXPECT_EQ(a.replyTs, b.replyTs);
    EXPECT_EQ(a.status, b.status);
    if (a.op == NfsOp::Read || a.op == NfsOp::Write) {
      EXPECT_EQ(a.retCount, b.retCount);
    }
    if (a.op == NfsOp::Read) {
      EXPECT_EQ(a.eof, b.eof);
    }
    EXPECT_EQ(a.hasResFh, b.hasResFh);
    if (a.hasResFh) {
      EXPECT_EQ(a.resFh, b.resFh);
    }
    EXPECT_EQ(a.hasAttrs, b.hasAttrs);
    if (a.hasAttrs) {
      EXPECT_EQ(a.ftype, b.ftype);
      EXPECT_EQ(a.fileSize, b.fileSize);
      EXPECT_EQ(a.fileMtime, b.fileMtime);
      EXPECT_EQ(a.fileId, b.fileId);
    }
    EXPECT_EQ(a.hasPre, b.hasPre);
    if (a.hasPre) {
      EXPECT_EQ(a.preSize, b.preSize);
      EXPECT_EQ(a.preMtime, b.preMtime);
    }
  }
}

TEST_F(TraceV2Test, RoundTripRandomizedRecordsAcrossExtents) {
  auto recs = randomRecords(3000);
  writeV2(path_, recs, /*extentRecords=*/512);  // several extents
  auto back = TraceReader::readAll(path_);
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    expectSameRecord(recs[i], back[i], i);
  }
}

TEST_F(TraceV2Test, ReadsLegacySchema2Files) {
  // Schema 2 stored the ftype column as a raw byte where schemas 3+ use
  // a varint.  For in-enum ftypes (all < 0x80) the two encodings are
  // byte-identical, so a current-writer file with its schema line patched
  // back to "schema 2" is exactly what a pre-bump writer produced — and
  // the reader must still accept and decode it, not reject every segment
  // sealed before the upgrade.  (The schema-4 56-byte footer entries
  // still load: entry width is CRC-disambiguated, not schema-gated.)
  auto recs = randomRecords(600, /*seed=*/11);
  for (auto& r : recs) {
    if (static_cast<std::uint32_t>(r.ftype) >= 0x80) {
      r.ftype = FileType::Directory;
    }
  }
  writeV2(path_, recs, /*extentRecords=*/128);
  {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    char head[128];
    std::size_t got = std::fread(head, 1, sizeof(head), f);
    std::string h(head, got);
    std::size_t pos = h.find("schema 4");
    ASSERT_NE(pos, std::string::npos);
    ASSERT_EQ(std::fseek(f, static_cast<long>(pos + 7), SEEK_SET), 0);
    std::fputc('2', f);
    std::fclose(f);
  }
  auto back = TraceReader::readAll(path_);
  ASSERT_EQ(back.size(), recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) {
    expectSameRecord(recs[i], back[i], i);
  }
}

TEST_F(TraceV2Test, MatchesTextFormatNormalization) {
  // v2 normalizes field presence exactly like the text format (reply-only
  // fields dropped without a reply, EOF only on READ replies), so a text
  // round-trip and a v2 round-trip of the same records must agree field
  // for field — the bedrock of byte-identical analysis reports.
  auto recs = randomRecords(500, /*seed=*/7);
  std::string textPath = path_ + ".text";
  {
    TraceWriter w(textPath, TraceWriter::Format::Text);
    for (const auto& r : recs) w.write(r);
  }
  writeV2(path_, recs, /*extentRecords=*/128);
  auto viaText = TraceReader::readAll(textPath);
  auto viaV2 = TraceReader::readAll(path_);
  std::remove(textPath.c_str());
  ASSERT_EQ(viaText.size(), viaV2.size());
  for (std::size_t i = 0; i < viaText.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    EXPECT_EQ(formatRecord(viaText[i]), formatRecord(viaV2[i]));
  }
}

TEST_F(TraceV2Test, BatchIdsMatchV1Interning) {
  // The extent dictionaries must yield the same global interned id
  // sequence a v1 per-record decode produces, at any batch size.
  auto recs = randomRecords(1500, /*seed=*/11);
  std::string textPath = path_ + ".text";
  {
    TraceWriter w(textPath, TraceWriter::Format::Text);
    for (const auto& r : recs) w.write(r);
  }
  writeV2(path_, recs, /*extentRecords=*/256);

  TraceReader text(textPath);
  TraceReader v2(path_);
  TraceBatch tb, vb;
  // Mismatched batch sizes on purpose: ids must not depend on batching.
  std::vector<std::uint32_t> textIds, v2Ids;
  while (text.nextBatch(tb, 333)) {
    for (std::size_t i = 0; i < tb.n; ++i) {
      textIds.insert(textIds.end(),
                     {tb.fhId[i], tb.fh2Id[i], tb.resFhId[i], tb.nameId[i],
                      tb.name2Id[i]});
    }
  }
  while (v2.nextBatch(vb, 100)) {
    for (std::size_t i = 0; i < vb.n; ++i) {
      v2Ids.insert(v2Ids.end(),
                   {vb.fhId[i], vb.fh2Id[i], vb.resFhId[i], vb.nameId[i],
                    vb.name2Id[i]});
    }
  }
  std::remove(textPath.c_str());
  ASSERT_EQ(textIds.size(), v2Ids.size());
  EXPECT_EQ(textIds, v2Ids);
  // And the ids resolve to the same bytes.
  EXPECT_EQ(text.nameInterner().size(), v2.nameInterner().size());
  EXPECT_EQ(text.handleInterner().size(), v2.handleInterner().size());
  for (std::uint32_t id = 0; id < text.nameInterner().size(); ++id) {
    EXPECT_EQ(text.nameInterner().view(id), v2.nameInterner().view(id));
  }
}

TEST_F(TraceV2Test, FooterIndexCoversEveryExtent) {
  auto recs = randomRecords(2000, /*seed=*/3);
  writeV2(path_, recs, /*extentRecords=*/300);
  auto index = tracev2::loadExtentIndex(path_);
  ASSERT_TRUE(index.has_value());
  ASSERT_EQ(index->size(), (2000 + 299) / 300);
  std::uint64_t total = 0, prevEnd = 0;
  for (const auto& e : *index) {
    EXPECT_GT(e.offset, prevEnd);
    prevEnd = e.offset;
    EXPECT_GT(e.records, 0u);
    EXPECT_LE(e.tsMin, e.tsMax);
    EXPECT_NE(e.opMask, 0u);
    total += e.records;
  }
  EXPECT_EQ(total, recs.size());

  // The index makes extents skippable: decode only the extents whose
  // time range covers the trace's second half and check we get exactly
  // the records v1-style sequential filtering would.
  MicroTime cut = recs[recs.size() / 2].ts;
  std::size_t expected = 0;
  for (const auto& r : recs) {
    if (r.ts >= cut) ++expected;
  }
  std::size_t viaIndex = 0;
  TraceReader reader(path_);
  TraceRecord rec;
  while (reader.nextInto(rec)) {
    if (rec.ts >= cut) ++viaIndex;
  }
  EXPECT_EQ(viaIndex, expected);
  std::size_t skippableRecords = 0;
  for (const auto& e : *index) {
    if (e.tsMax < cut) skippableRecords += e.records;
  }
  EXPECT_GT(skippableRecords, 0u);  // the index genuinely prunes work
}

TEST_F(TraceV2Test, EmptyTraceHasEmptyIndex) {
  { writeV2(path_, {}); }
  EXPECT_TRUE(TraceReader::readAll(path_).empty());
  auto index = tracev2::loadExtentIndex(path_);
  ASSERT_TRUE(index.has_value());
  EXPECT_TRUE(index->empty());
}

TEST_F(TraceV2Test, DetectsFormatsByMagic) {
  auto recs = randomRecords(10);
  std::string text = path_ + ".t", bin = path_ + ".b";
  {
    TraceWriter wt(text, TraceWriter::Format::Text);
    TraceWriter wb(bin, TraceWriter::Format::Binary);
    for (const auto& r : recs) {
      wt.write(r);
      wb.write(r);
    }
    writeV2(path_, recs);
  }
  EXPECT_EQ(detectTraceFormat(text), TraceWriter::Format::Text);
  EXPECT_EQ(detectTraceFormat(bin), TraceWriter::Format::Binary);
  EXPECT_EQ(detectTraceFormat(path_), TraceWriter::Format::V2);
  std::remove(text.c_str());
  std::remove(bin.c_str());

  EXPECT_STREQ(traceFormatName(TraceWriter::Format::V2), "v2");
  EXPECT_EQ(traceFormatFromName("v2"), TraceWriter::Format::V2);
  EXPECT_EQ(traceFormatFromName("binary"), TraceWriter::Format::Binary);
  EXPECT_EQ(traceFormatFromName("bogus"), std::nullopt);
}

// --------------------------------------------------------------- recovery

TEST_F(TraceV2Test, TruncatedTailExtentIsDroppedWithExactAccounting) {
  auto recs = randomRecords(1000, /*seed=*/5);
  writeV2(path_, recs, /*extentRecords=*/256);  // 3 full + 1 tail extent
  auto index = tracev2::loadExtentIndex(path_);
  ASSERT_TRUE(index.has_value());
  ASSERT_EQ(index->size(), 4u);

  // Cut mid-way through the last extent's payload (also destroying the
  // footer index after it).
  const auto& last = index->back();
  std::filesystem::resize_file(
      path_, last.offset + tracev2::kExtentHeaderBytes + 16);
  EXPECT_FALSE(tracev2::loadExtentIndex(path_).has_value());

  TraceReader::RecoverStats stats;
  auto back = TraceReader::recoverAll(path_, &stats);
  EXPECT_EQ(back.size(), 768u);
  EXPECT_EQ(stats.recovered, 768u);
  EXPECT_EQ(stats.skipped, last.records);
  EXPECT_EQ(stats.resyncs, 1u);
  for (std::size_t i = 0; i < back.size(); ++i) {
    expectSameRecord(recs[i], back[i], i);
  }
  // Strict mode refuses the damage instead.
  EXPECT_THROW(TraceReader::readAll(path_), std::runtime_error);
}

TEST_F(TraceV2Test, CrcCorruptExtentIsSkippedToNextExtent) {
  auto recs = randomRecords(1024, /*seed=*/9);
  writeV2(path_, recs, /*extentRecords=*/256);
  auto index = tracev2::loadExtentIndex(path_);
  ASSERT_TRUE(index.has_value());
  ASSERT_EQ(index->size(), 4u);

  // Flip one byte inside extent 1's payload: its CRC fails and the
  // reader must resume cleanly at extent 2's header.
  const auto& victim = (*index)[1];
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f,
               static_cast<long>(victim.offset + tracev2::kExtentHeaderBytes +
                                 40),
               SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0x5a, f);
    std::fclose(f);
  }

  TraceReader::RecoverStats stats;
  auto back = TraceReader::recoverAll(path_, &stats);
  EXPECT_EQ(stats.skipped, victim.records);
  EXPECT_EQ(stats.recovered, recs.size() - victim.records);
  EXPECT_EQ(stats.resyncs, 1u);
  ASSERT_EQ(back.size(), recs.size() - victim.records);
  // Extent 0 then extents 2..3, in order.
  for (std::size_t i = 0; i < 256; ++i) {
    expectSameRecord(recs[i], back[i], i);
  }
  for (std::size_t i = 512; i < recs.size(); ++i) {
    expectSameRecord(recs[i], back[i - 256], i);
  }
  EXPECT_THROW(TraceReader::readAll(path_), std::runtime_error);
}

TEST_F(TraceV2Test, CorruptExtentHeaderResyncsViaByteScan) {
  auto recs = randomRecords(1024, /*seed=*/13);
  writeV2(path_, recs, /*extentRecords=*/256);
  auto index = tracev2::loadExtentIndex(path_);
  ASSERT_TRUE(index.has_value());

  // Smash extent 2's header magic: the reader cannot trust even the
  // record count, so it byte-scans for extent 3 and the checkpoint math
  // charges the gap exactly.
  const auto& victim = (*index)[2];
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, static_cast<long>(victim.offset), SEEK_SET);
    std::fputs("XXXX", f);
    std::fclose(f);
  }

  TraceReader::RecoverStats stats;
  auto back = TraceReader::recoverAll(path_, &stats);
  EXPECT_EQ(stats.skipped, victim.records);
  EXPECT_EQ(stats.recovered, recs.size() - victim.records);
  EXPECT_EQ(stats.resyncs, 1u);
  EXPECT_EQ(back.size(), recs.size() - victim.records);
}

TEST_F(TraceV2Test, BatchesNeverStraddleACorruptExtent) {
  auto recs = randomRecords(1024, /*seed=*/17);
  writeV2(path_, recs, /*extentRecords=*/256);
  auto index = tracev2::loadExtentIndex(path_);
  ASSERT_TRUE(index.has_value());
  const auto& victim = (*index)[1];
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f,
               static_cast<long>(victim.offset + tracev2::kExtentHeaderBytes +
                                 8),
               SEEK_SET);
    int c = std::fgetc(f);
    std::fseek(f, -1, SEEK_CUR);
    std::fputc(c ^ 0x5a, f);
    std::fclose(f);
  }

  // Batch capacity beyond one extent: the batch at the damage boundary
  // must be cut short with endedAtResync instead of mixing records from
  // both sides of the hole.
  TraceReader reader(path_, /*recover=*/true);
  TraceBatch batch;
  std::size_t total = 0;
  bool sawResyncCut = false;
  while (reader.nextBatch(batch, 600)) {
    if (batch.endedAtResync) {
      sawResyncCut = true;
      EXPECT_EQ(total + batch.n, 256u);  // cut exactly at extent 0's end
    }
    total += batch.n;
  }
  EXPECT_TRUE(sawResyncCut);
  EXPECT_EQ(total, recs.size() - victim.records);
}

TEST_F(TraceV2Test, RecoverModeReadsCleanTraceExactly) {
  auto recs = randomRecords(700, /*seed=*/23);
  writeV2(path_, recs, /*extentRecords=*/128);
  TraceReader::RecoverStats stats;
  auto back = TraceReader::recoverAll(path_, &stats);
  EXPECT_EQ(back.size(), recs.size());
  EXPECT_EQ(stats.recovered, recs.size());
  EXPECT_EQ(stats.skipped, 0u);
  EXPECT_EQ(stats.resyncs, 0u);
  EXPECT_EQ(stats.checkpoints, (700 + 127) / 128);
}

}  // namespace
}  // namespace nfstrace
