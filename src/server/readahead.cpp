#include "server/readahead.hpp"

#include <algorithm>
#include <cstdlib>

namespace nfstrace {

std::int64_t DiskModel::read(std::uint64_t fileKey, std::uint64_t block,
                             std::uint32_t readAheadBlocks) {
  std::int64_t cost = 0;
  std::uint64_t a = addr(fileKey, block);

  if (cached_.count(a)) {
    ++hits_;
    cost += costs_.cacheHitUs;
  } else {
    ++misses_;
    bool adjacent = head_ != ~0ULL && a >= head_ && a - head_ <= 1;
    if (!adjacent) {
      cost += costs_.seekUs;
      ++seeks_;
    }
    cost += costs_.transferUsPerBlock;
    cached_[a] = true;
    head_ = a;

    // Prefetch rides the same head position; only fetched on a miss (a
    // cached demand block means the stream was already prefetched).
    for (std::uint32_t i = 1; i <= readAheadBlocks; ++i) {
      std::uint64_t pa = addr(fileKey, block + i);
      if (!cached_.count(pa)) {
        cached_[pa] = true;
        cost += costs_.transferUsPerBlock;
        head_ = pa;
        ++prefetched_;
      }
    }
  }

  totalUs_ += cost;
  return cost;
}

std::uint32_t ReadAheadEngine::onRead(std::uint64_t fileKey,
                                      std::uint64_t block,
                                      std::uint32_t blocks) {
  FileState& st = files_[fileKey];

  if (config_.policy == ReadAheadPolicy::StrictSequential) {
    if (st.nextExpected != ~0ULL && block == st.nextExpected) {
      st.streak = std::min(st.streak + 1, config_.maxReadAheadBlocks);
    } else {
      st.streak = 0;  // one reordered call relegates the run to "random"
    }
    st.nextExpected = block + blocks;
    return st.streak;
  }

  // SequentialityMetric policy: fraction of recent accesses that land
  // within kConsecutive blocks ahead of *some* recent access.
  std::uint32_t sequentialish = 0;
  for (std::uint64_t prev : st.recent) {
    std::uint64_t prevEnd = prev + 1;
    if (block >= prev && block <= prevEnd + config_.kConsecutive) {
      ++sequentialish;
      break;
    }
  }
  st.recent.push_back(block);
  // Track a per-file running score over the window.
  if (st.recent.size() > config_.window) st.recent.pop_front();

  if (sequentialish) {
    st.streak = std::min<std::uint32_t>(
        st.streak + 1,
        config_.maxReadAheadBlocks +
            static_cast<std::uint32_t>(config_.window));
  } else if (st.streak > 0) {
    --st.streak;  // degrade gently instead of resetting
  }

  double metric =
      st.recent.size() < 4
          ? 0.0
          : static_cast<double>(std::min<std::size_t>(st.streak,
                                                      st.recent.size())) /
                static_cast<double>(st.recent.size());
  if (metric >= config_.threshold || st.streak >= 4) {
    return config_.maxReadAheadBlocks;
  }
  return 0;
}

}  // namespace nfstrace
