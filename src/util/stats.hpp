// Streaming moment accumulator (Welford) for the hourly-variance tables.
#pragma once

#include <cmath>
#include <cstdint>

namespace nfstrace {

class RunningStats {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    sum_ += x;
    if (n_ == 1 || x < min_) min_ = x;
    if (n_ == 1 || x > max_) max_ = x;
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  /// Standard deviation as a percentage of the mean — the parenthesized
  /// numbers in the paper's Table 5.
  double stddevPercentOfMean() const {
    return mean() != 0.0 ? 100.0 * stddev() / mean() : 0.0;
  }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace nfstrace
