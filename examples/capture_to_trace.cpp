// The nfsdump-equivalent tool: read raw frames from a pcap file, decode
// NFS traffic, and write a trace file.  Demonstrates the offline path of
// the pipeline (capture once, analyze forever).
//
//   capture_to_trace [--chaos plan.cfg] [--format text|binary|v2]
//                    [--flight trace.json] [input.pcap [output.trace]]
//
// With no arguments it first generates a demo capture to convert.
// --chaos runs the conversion under a deterministic fault plan (see
// configs/chaos.cfg): frames are dropped/corrupted/reordered in front of
// the sniffer and the trace writer suffers injected transient IO errors,
// demonstrating the capture path's graceful degradation end to end.
// --flight records a per-thread span timeline of the whole run (sniffer
// evictions, fault decisions, writer flushes/retries) to a Chrome
// trace-event file — open it in Perfetto — and prints the stall report.
#include <cstdio>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "obs/flight.hpp"
#include "pcap/pcap.hpp"
#include "sniffer/sniffer.hpp"
#include "trace/tracefile.hpp"
#include "workload/campus.hpp"
#include "workload/sim.hpp"

using namespace nfstrace;

namespace {

/// Record every tapped frame into a pcap file (the capture box).
class PcapSink : public FrameSink {
 public:
  explicit PcapSink(const std::string& path) : writer_(path) {}
  void onFrame(const CapturedPacket& pkt) override { writer_.write(pkt); }
  std::uint64_t frames() const { return writer_.packetsWritten(); }

 private:
  PcapWriter writer_;
};

std::string makeDemoCapture() {
  std::string path = "/tmp/capture_to_trace_demo.pcap";
  std::printf("no input given; generating a demo capture at %s\n",
              path.c_str());

  InMemoryFs fs{InMemoryFs::Config{.fsid = 2,
                                   .capacityBytes = 53ULL << 30,
                                   .defaultQuotaBytes = 50ULL << 20}};
  NfsServer server(fs);
  PcapSink sink(path);
  NfsTransport::Config tc;
  tc.useTcp = true;
  tc.mtu = kJumboMtu;
  NfsTransport transport(tc, server, &sink, 11);
  NfsClient client({}, transport, 12);
  client.setRootHandle(fs.rootHandle());

  fs.mkfile("/home02/u0001/.inbox", 600 * 1024, 2001, 2001, 0);
  MicroTime now = seconds(2);
  auto dir = *client.lookupPath(now, "/home02/u0001");
  auto inbox = *client.lookupPath(now, "/home02/u0001/.inbox");
  auto lock = client.create(now, dir, ".inbox.lock", true);
  client.readFile(now, inbox);
  client.append(now, inbox, 4096, true);
  if (lock) client.remove(now, dir, ".inbox.lock");

  std::printf("  wrote %llu frames\n",
              static_cast<unsigned long long>(sink.frames()));
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  std::string chaosPath;
  std::string flightPath;
  TraceWriter::Format format = TraceWriter::Format::Text;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--chaos" && i + 1 < argc) {
      chaosPath = argv[++i];
    } else if (arg == "--flight" && i + 1 < argc) {
      flightPath = argv[++i];
    } else if (arg == "--format" && i + 1 < argc) {
      auto f = traceFormatFromName(argv[++i]);
      if (!f) {
        std::fprintf(stderr, "unknown format '%s' (text, binary, v2)\n",
                     argv[i]);
        return 1;
      }
      format = *f;
    } else {
      positional.push_back(arg);
    }
  }
  std::string input = !positional.empty() ? positional[0] : makeDemoCapture();
  std::string output =
      positional.size() > 1 ? positional[1] : "/tmp/capture_to_trace.trace";

  FaultPlan plan;
  if (!chaosPath.empty()) {
    plan = FaultPlan::load(chaosPath);
    std::printf("chaos plan %s (seed %llu)\n", chaosPath.c_str(),
                static_cast<unsigned long long>(plan.seed));
  }

  obs::FlightRecorder flight;

  std::vector<TraceRecord> records;
  Sniffer::Config scfg;
  if (!flightPath.empty()) scfg.flight = &flight;
  Sniffer sniffer(scfg,
                  [&](const TraceRecord& rec) { records.push_back(rec); });
  FaultySink faulty(plan, sniffer);  // quiet plan = pass-through
  if (!flightPath.empty()) faulty.attachFlight(flight);
  {
    PcapReader reader(input);
    while (auto pkt = reader.next()) faulty.onFrame(*pkt);
  }
  faulty.flush();
  sniffer.flush();
  const Sniffer::Stats& stats = sniffer.stats();

  IoFaultInjector ioFaults(plan);
  TraceWriter::Options wopts;
  wopts.format = format;
  if (!chaosPath.empty()) wopts.faults = &ioFaults;
  TraceWriter::IoStats ioStats;
  {
    TraceWriter writer(output, wopts);
    if (!flightPath.empty()) writer.attachFlight(flight);
    for (const auto& rec : records) writer.write(rec);
    writer.flush();
    ioStats = writer.ioStats();
  }

  // The paper's §4.1.4 capture-loss estimate: a reply whose call was
  // never captured means the call frame was dropped at the tap, so
  // orphans / (calls + orphans) estimates the fraction of calls lost.
  double totalCalls = static_cast<double>(stats.rpcCalls) +
                      static_cast<double>(stats.orphanReplies);
  double lossEstimate =
      totalCalls > 0 ? static_cast<double>(stats.orphanReplies) / totalCalls
                     : 0.0;

  std::printf(
      "\n%s -> %s (%s format)\n"
      "frames seen:        %llu\n"
      "NFS calls decoded:  %llu\n"
      "NFS replies:        %llu\n"
      "orphan replies:     %llu   (their calls were lost -- the paper's\n"
      "                            capture-loss estimator)\n"
      "reply-less calls:   %llu   (timed out + drained at end of capture)\n"
      "est. capture loss:  %.2f%%  (orphans / (calls + orphans), sec 4.1.4)\n"
      "trace records:      %llu\n",
      input.c_str(), output.c_str(), traceFormatName(format),
      static_cast<unsigned long long>(stats.framesSeen),
      static_cast<unsigned long long>(stats.rpcCalls),
      static_cast<unsigned long long>(stats.rpcReplies),
      static_cast<unsigned long long>(stats.orphanReplies),
      static_cast<unsigned long long>(stats.expiredCalls + stats.flushedCalls),
      100.0 * lossEstimate,
      static_cast<unsigned long long>(records.size()));

  if (!chaosPath.empty()) {
    const FaultySink::Stats& fs = faulty.stats();
    std::printf(
        "\nchaos summary:\n"
        "wire: %llu frames, %llu dropped (%llu in %llu bursts), "
        "%llu dup, %llu reordered, %llu truncated, %llu bitflipped\n"
        "disk: %llu write retries, %llu short writes, %llu checkpoints\n",
        static_cast<unsigned long long>(fs.frames),
        static_cast<unsigned long long>(fs.dropped),
        static_cast<unsigned long long>(fs.burstDropped),
        static_cast<unsigned long long>(fs.bursts),
        static_cast<unsigned long long>(fs.duplicated),
        static_cast<unsigned long long>(fs.reordered),
        static_cast<unsigned long long>(fs.truncated),
        static_cast<unsigned long long>(fs.bitflipped),
        static_cast<unsigned long long>(ioStats.retries),
        static_cast<unsigned long long>(ioStats.shortWrites),
        static_cast<unsigned long long>(ioStats.checkpoints));
  }

  if (!records.empty()) {
    std::printf("\nfirst records:\n");
    for (std::size_t i = 0; i < std::min<std::size_t>(5, records.size());
         ++i) {
      std::printf("  %s\n", formatRecord(records[i]).c_str());
    }
  }

  if (!flightPath.empty()) {
    std::printf("\n%s", flight.stallReport().c_str());
    std::uint64_t rendered = 0;
    if (!flight.writeChromeTrace(flightPath, &rendered)) {
      std::fprintf(stderr, "failed to write flight trace %s\n",
                   flightPath.c_str());
      return 1;
    }
    std::printf(
        "flight timeline: %s (%llu events; load in https://ui.perfetto.dev)\n",
        flightPath.c_str(), static_cast<unsigned long long>(rendered));
  }
  return 0;
}
