# Empty compiler generated dependencies file for nfstrace_anon.
# This may be replaced when dependencies are built.
