// Scan predicate: the pushdown filter the analysis engine applies to a
// trace scan.  Two granularities share one definition:
//
//   * mayMatch(ExtentInfo) — zone-map test against a v2 footer entry;
//     false means no record in the extent can match, so the whole
//     extent is skipped before its payload is even read.
//   * matches(TraceRecord) — the exact record-level test, applied to
//     whatever survives pruning (and to every record on index-less
//     inputs, where it is the only filter).
//
// The zone-map test must never prune a matching record, so it answers
// "possibly" wherever the footer's ranges are conservative (legacy
// 32-byte entries load as never-prune ranges — see trace/v2.hpp).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "trace/record.hpp"
#include "trace/v2.hpp"
#include "util/time.hpp"

namespace nfstrace {

/// Bit for one op in an op-set mask, matching the v2 footer's per-extent
/// op bitmask convention: ops >= 31 collapse into bit 31.
inline constexpr std::uint32_t opMaskBit(NfsOp op) {
  std::uint32_t bit = static_cast<std::uint32_t>(op);
  return bit < 31 ? (1u << bit) : (1u << 31);
}

/// All ops — the mask that filters nothing.
inline constexpr std::uint32_t kAllOpsMask = ~std::uint32_t{0};

struct ScanPredicate {
  /// Inclusive request-timestamp window.
  MicroTime from = std::numeric_limits<MicroTime>::min();
  MicroTime to = std::numeric_limits<MicroTime>::max();
  /// Op set as an opMaskBit() union.
  std::uint32_t ops = kAllOpsMask;
  /// Exact uid, when present.
  std::optional<std::uint32_t> uid;

  bool trivial() const {
    return from == std::numeric_limits<MicroTime>::min() &&
           to == std::numeric_limits<MicroTime>::max() &&
           ops == kAllOpsMask && !uid.has_value();
  }

  bool matches(const TraceRecord& rec) const {
    if (rec.ts < from || rec.ts > to) return false;
    if ((ops & opMaskBit(rec.op)) == 0) return false;
    if (uid && rec.uid != *uid) return false;
    return true;
  }

  /// Zone-map test: can any record in this extent match?  Because ops
  /// >= 31 share bit 31, a bit-31 hit is "possibly" for any such op —
  /// conservative in exactly the way pruning requires.
  bool mayMatch(const tracev2::ExtentInfo& e) const {
    if (e.tsMax < from || e.tsMin > to) return false;
    if ((ops & e.opMask) == 0) return false;
    if (uid && (*uid < e.uidMin || *uid > e.uidMax)) return false;
    return true;
  }
};

}  // namespace nfstrace
