# Empty dependencies file for nfstrace_fs.
# This may be replaced when dependencies are built.
