// Ablation of §6.1.1's speculation: "the NFSv4 lease and delegation
// mechanisms could eliminate a large fraction of the NFS calls generated
// by the EECS workload by removing many of the situations where a client
// is contacting the server simply to confirm that its cached copy of a
// file is up-to-date."
//
// Same EECS day twice: stock NFSv3 clients, then clients holding
// delegations on the (single-user) files they touch, so the
// getattr/access revalidation chatter disappears.
#include "analysis/summary.hpp"
#include "bench_common.hpp"

using namespace nfstrace;
using namespace nfstrace::bench;

namespace {

struct Result {
  std::uint64_t totalOps = 0;
  std::uint64_t getattrs = 0;
  std::uint64_t accesses = 0;
  std::uint64_t lookups = 0;
  std::uint64_t dataOps = 0;
};

Result runDay(bool delegations) {
  Result out;
  auto cb = [&](const TraceRecord& r) {
    ++out.totalOps;
    switch (r.op) {
      case NfsOp::Getattr: ++out.getattrs; break;
      case NfsOp::Access: ++out.accesses; break;
      case NfsOp::Lookup: ++out.lookups; break;
      case NfsOp::Read:
      case NfsOp::Write: ++out.dataOps; break;
      default: break;
    }
  };
  auto s = makeEecs(20, cb, 4004, [&](SimEnvironment::Config& cfg) {
    cfg.clientConfig.nfsv4Delegations = delegations;
  });
  MicroTime start = days(1);
  s.workload->setup(start);
  s.workload->run(start, start + days(1));
  s.env->finishCapture();
  return out;
}

}  // namespace

int main() {
  banner("Ablation (§6.1.1) -- NFSv4-style delegations on the EECS workload");

  auto stock = runDay(false);
  auto delegated = runDay(true);

  TextTable t({"Calls/day", "NFSv3 (stock)", "with delegations", "change"});
  auto pct = [](std::uint64_t a, std::uint64_t b) {
    return a ? TextTable::percent(1.0 - static_cast<double>(b) /
                                            static_cast<double>(a))
             : std::string("-");
  };
  t.addRow({"GETATTR", TextTable::withCommas(stock.getattrs),
            TextTable::withCommas(delegated.getattrs),
            "-" + pct(stock.getattrs, delegated.getattrs)});
  t.addRow({"ACCESS", TextTable::withCommas(stock.accesses),
            TextTable::withCommas(delegated.accesses),
            "-" + pct(stock.accesses, delegated.accesses)});
  t.addRow({"LOOKUP", TextTable::withCommas(stock.lookups),
            TextTable::withCommas(delegated.lookups),
            "-" + pct(stock.lookups, delegated.lookups)});
  t.addRow({"READ+WRITE", TextTable::withCommas(stock.dataOps),
            TextTable::withCommas(delegated.dataOps),
            "-" + pct(stock.dataOps, delegated.dataOps)});
  t.addRule();
  t.addRow({"ALL CALLS", TextTable::withCommas(stock.totalOps),
            TextTable::withCommas(delegated.totalOps),
            "-" + pct(stock.totalOps, delegated.totalOps)});
  std::fputs(t.render().c_str(), stdout);

  std::printf(
      "\nThe revalidation calls (getattr/access) collapse while data ops\n"
      "stay put — confirming the paper's conjecture that delegations\n"
      "would eliminate 'a large fraction' of EECS's metadata-dominated\n"
      "call stream.  (Our workstations are single-user, the best case\n"
      "for delegations, exactly the situation §6.1.1 describes.)\n");
  return 0;
}
