#include <gtest/gtest.h>

#include "fs/fs.hpp"

namespace nfstrace {
namespace {

InMemoryFs::Config smallFs(std::uint64_t quota = 0) {
  InMemoryFs::Config c;
  c.fsid = 3;
  c.capacityBytes = 1ULL << 30;
  c.defaultQuotaBytes = quota;
  return c;
}

class FsTest : public ::testing::Test {
 protected:
  InMemoryFs fs_{smallFs()};
  MicroTime t_ = seconds(100);

  FsNode mustCreate(const FileHandle& dir, const std::string& name,
                    std::uint64_t size = 0) {
    Sattr attrs;
    attrs.setSize = size > 0;
    attrs.size = size;
    FsNode node;
    EXPECT_EQ(fs_.create(dir, name, attrs, false, 10, 10, t_, node),
              NfsStat::Ok);
    return node;
  }
};

TEST_F(FsTest, RootExists) {
  Fattr attrs;
  ASSERT_EQ(fs_.getattr(fs_.rootHandle(), attrs), NfsStat::Ok);
  EXPECT_EQ(attrs.type, FileType::Directory);
  EXPECT_EQ(attrs.fileid, 1u);
}

TEST_F(FsTest, CreateAndLookup) {
  auto node = mustCreate(fs_.rootHandle(), "hello.txt", 1000);
  EXPECT_EQ(node.attrs.size, 1000u);
  EXPECT_EQ(node.attrs.uid, 10u);

  FsNode found;
  ASSERT_EQ(fs_.lookup(fs_.rootHandle(), "hello.txt", found), NfsStat::Ok);
  EXPECT_EQ(found.fh, node.fh);
}

TEST_F(FsTest, LookupMissing) {
  FsNode node;
  EXPECT_EQ(fs_.lookup(fs_.rootHandle(), "nope", node), NfsStat::ErrNoEnt);
}

TEST_F(FsTest, LookupDotAndDotDot) {
  FileHandle dir = fs_.mkdirs("/a/b", 0, 0, t_);
  FsNode dot, dotdot;
  ASSERT_EQ(fs_.lookup(dir, ".", dot), NfsStat::Ok);
  EXPECT_EQ(dot.fh, dir);
  ASSERT_EQ(fs_.lookup(dir, "..", dotdot), NfsStat::Ok);
  auto a = fs_.resolve("/a");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(dotdot.fh, a->fh);
}

TEST_F(FsTest, ExclusiveCreateFailsIfExists) {
  mustCreate(fs_.rootHandle(), "lockfile");
  Sattr attrs;
  FsNode node;
  EXPECT_EQ(fs_.create(fs_.rootHandle(), "lockfile", attrs, true, 0, 0, t_,
                       node),
            NfsStat::ErrExist);
}

TEST_F(FsTest, UncheckedCreateTruncatesExisting) {
  auto orig = mustCreate(fs_.rootHandle(), "f", 5000);
  Sattr attrs;
  attrs.setSize = true;
  attrs.size = 0;
  FsNode node;
  ASSERT_EQ(fs_.create(fs_.rootHandle(), "f", attrs, false, 0, 0, t_, node),
            NfsStat::Ok);
  EXPECT_EQ(node.fh, orig.fh);  // same file
  EXPECT_EQ(node.attrs.size, 0u);
}

TEST_F(FsTest, WriteExtendsAndUpdatesTimes) {
  auto node = mustCreate(fs_.rootHandle(), "f");
  Fattr pre, post;
  MicroTime later = t_ + seconds(5);
  ASSERT_EQ(fs_.write(node.fh, 0, 4096, later, pre, post), NfsStat::Ok);
  EXPECT_EQ(pre.size, 0u);
  EXPECT_EQ(post.size, 4096u);
  EXPECT_EQ(post.mtime.toMicro(), later);

  // Write past EOF creates a hole.
  ASSERT_EQ(fs_.write(node.fh, 100000, 100, later + 1, pre, post),
            NfsStat::Ok);
  EXPECT_EQ(post.size, 100100u);
}

TEST_F(FsTest, ReadRespectsEof) {
  auto node = mustCreate(fs_.rootHandle(), "f", 10000);
  std::uint32_t got;
  bool eof;
  Fattr attrs;
  ASSERT_EQ(fs_.read(node.fh, 0, 8192, t_, got, eof, attrs), NfsStat::Ok);
  EXPECT_EQ(got, 8192u);
  EXPECT_FALSE(eof);
  ASSERT_EQ(fs_.read(node.fh, 8192, 8192, t_, got, eof, attrs), NfsStat::Ok);
  EXPECT_EQ(got, 10000u - 8192u);
  EXPECT_TRUE(eof);
  ASSERT_EQ(fs_.read(node.fh, 20000, 100, t_, got, eof, attrs), NfsStat::Ok);
  EXPECT_EQ(got, 0u);
  EXPECT_TRUE(eof);
}

TEST_F(FsTest, RemoveMakesHandleStale) {
  auto node = mustCreate(fs_.rootHandle(), "f", 100);
  ASSERT_EQ(fs_.remove(fs_.rootHandle(), "f", t_), NfsStat::Ok);
  Fattr attrs;
  EXPECT_EQ(fs_.getattr(node.fh, attrs), NfsStat::ErrStale);
  EXPECT_EQ(fs_.remove(fs_.rootHandle(), "f", t_), NfsStat::ErrNoEnt);
}

TEST_F(FsTest, RemoveDirectoryFails) {
  Sattr attrs;
  FsNode node;
  ASSERT_EQ(fs_.mkdir(fs_.rootHandle(), "d", attrs, 0, 0, t_, node),
            NfsStat::Ok);
  EXPECT_EQ(fs_.remove(fs_.rootHandle(), "d", t_), NfsStat::ErrIsDir);
  EXPECT_EQ(fs_.rmdir(fs_.rootHandle(), "d", t_), NfsStat::Ok);
}

TEST_F(FsTest, RmdirNonEmptyFails) {
  FileHandle dir = fs_.mkdirs("/d", 0, 0, t_);
  mustCreate(dir, "child");
  EXPECT_EQ(fs_.rmdir(fs_.rootHandle(), "d", t_), NfsStat::ErrNotEmpty);
}

TEST_F(FsTest, RenameMovesFile) {
  FileHandle d1 = fs_.mkdirs("/d1", 0, 0, t_);
  FileHandle d2 = fs_.mkdirs("/d2", 0, 0, t_);
  auto node = mustCreate(d1, "f", 100);
  ASSERT_EQ(fs_.rename(d1, "f", d2, "g", t_), NfsStat::Ok);
  FsNode found;
  EXPECT_EQ(fs_.lookup(d1, "f", found), NfsStat::ErrNoEnt);
  ASSERT_EQ(fs_.lookup(d2, "g", found), NfsStat::Ok);
  EXPECT_EQ(found.fh, node.fh);  // same object, same handle
}

TEST_F(FsTest, RenameReplacesTarget) {
  auto victim = mustCreate(fs_.rootHandle(), "b", 100);
  mustCreate(fs_.rootHandle(), "a", 50);
  ASSERT_EQ(fs_.rename(fs_.rootHandle(), "a", fs_.rootHandle(), "b", t_),
            NfsStat::Ok);
  Fattr attrs;
  EXPECT_EQ(fs_.getattr(victim.fh, attrs), NfsStat::ErrStale);
  FsNode found;
  ASSERT_EQ(fs_.lookup(fs_.rootHandle(), "b", found), NfsStat::Ok);
  EXPECT_EQ(found.attrs.size, 50u);
}

TEST_F(FsTest, HardLinkSharesInode) {
  auto node = mustCreate(fs_.rootHandle(), "orig", 77);
  ASSERT_EQ(fs_.link(node.fh, fs_.rootHandle(), "alias", t_), NfsStat::Ok);
  FsNode found;
  ASSERT_EQ(fs_.lookup(fs_.rootHandle(), "alias", found), NfsStat::Ok);
  EXPECT_EQ(found.fh, node.fh);
  EXPECT_EQ(found.attrs.nlink, 2u);
  // Removing one name keeps the file alive.
  ASSERT_EQ(fs_.remove(fs_.rootHandle(), "orig", t_), NfsStat::Ok);
  Fattr attrs;
  EXPECT_EQ(fs_.getattr(node.fh, attrs), NfsStat::Ok);
  EXPECT_EQ(attrs.nlink, 1u);
}

TEST_F(FsTest, SymlinkAndReadlink) {
  FsNode node;
  ASSERT_EQ(fs_.symlink(fs_.rootHandle(), "sl", "/target/path", 0, 0, t_,
                        node),
            NfsStat::Ok);
  std::string target;
  ASSERT_EQ(fs_.readlink(node.fh, target), NfsStat::Ok);
  EXPECT_EQ(target, "/target/path");
  // readlink on a regular file fails.
  auto reg = mustCreate(fs_.rootHandle(), "reg");
  EXPECT_EQ(fs_.readlink(reg.fh, target), NfsStat::ErrInval);
}

TEST_F(FsTest, SetattrTruncate) {
  auto node = mustCreate(fs_.rootHandle(), "f", 100000);
  Sattr sattr;
  sattr.setSize = true;
  sattr.size = 1000;
  Fattr out;
  ASSERT_EQ(fs_.setattr(node.fh, sattr, t_ + 1, out), NfsStat::Ok);
  EXPECT_EQ(out.size, 1000u);
}

TEST_F(FsTest, ReaddirPagination) {
  FileHandle dir = fs_.mkdirs("/big", 0, 0, t_);
  for (int i = 0; i < 10; ++i) {
    mustCreate(dir, "f" + std::to_string(i));
  }
  std::vector<DirEntry> all;
  std::uint64_t cookie = 0;
  bool eof = false;
  int pages = 0;
  while (!eof) {
    std::vector<DirEntry> page;
    ASSERT_EQ(fs_.readdir(dir, cookie, 4, page, eof), NfsStat::Ok);
    for (const auto& e : page) {
      all.push_back(e);
      cookie = e.cookie;
    }
    ASSERT_LT(++pages, 10);
  }
  // 10 files + . and ..
  EXPECT_EQ(all.size(), 12u);
  EXPECT_EQ(all[0].name, ".");
  EXPECT_EQ(all[1].name, "..");
}

TEST_F(FsTest, QuotaEnforced) {
  InMemoryFs fs(smallFs(/*quota=*/64 * 1024));
  FileHandle fh = fs.mkfile("/u/f", 0, 42, 42, t_);
  ASSERT_NE(fh.len, 0);
  Fattr pre, post;
  EXPECT_EQ(fs.write(fh, 0, 60 * 1024, t_, pre, post), NfsStat::Ok);
  // Next write exceeds the 64 KB quota.
  EXPECT_EQ(fs.write(fh, 60 * 1024, 16 * 1024, t_, pre, post),
            NfsStat::ErrDQuot);
  // Shrinking releases quota.
  Sattr sattr;
  sattr.setSize = true;
  sattr.size = 0;
  Fattr out;
  ASSERT_EQ(fs.setattr(fh, sattr, t_, out), NfsStat::Ok);
  EXPECT_EQ(fs.quotaUsed(42), 0u);
  EXPECT_EQ(fs.write(fh, 0, 16 * 1024, t_, pre, post), NfsStat::Ok);
}

TEST_F(FsTest, QuotaIsPerUid) {
  InMemoryFs fs(smallFs(/*quota=*/32 * 1024));
  FileHandle f1 = fs.mkfile("/u1/f", 0, 1, 1, t_);
  FileHandle f2 = fs.mkfile("/u2/f", 0, 2, 2, t_);
  Fattr pre, post;
  EXPECT_EQ(fs.write(f1, 0, 30 * 1024, t_, pre, post), NfsStat::Ok);
  // A different user still has full quota.
  EXPECT_EQ(fs.write(f2, 0, 30 * 1024, t_, pre, post), NfsStat::Ok);
}

TEST_F(FsTest, MkdirsAndResolve) {
  FileHandle leaf = fs_.mkdirs("/a/b/c", 5, 5, t_);
  ASSERT_NE(leaf.len, 0);
  auto resolved = fs_.resolve("/a/b/c");
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->fh, leaf);
  EXPECT_EQ(fs_.pathOf(leaf), "/a/b/c");
  // mkdirs is idempotent.
  EXPECT_EQ(fs_.mkdirs("/a/b/c", 5, 5, t_), leaf);
}

TEST_F(FsTest, MkfileCreatesParents) {
  FileHandle fh = fs_.mkfile("/x/y/z.txt", 500, 9, 9, t_);
  ASSERT_NE(fh.len, 0);
  auto node = fs_.resolve("/x/y/z.txt");
  ASSERT_TRUE(node.has_value());
  EXPECT_EQ(node->attrs.size, 500u);
  EXPECT_EQ(node->attrs.uid, 9u);
}

TEST_F(FsTest, StaleHandleAfterRecycle) {
  auto node = mustCreate(fs_.rootHandle(), "f");
  ASSERT_EQ(fs_.remove(fs_.rootHandle(), "f", t_), NfsStat::Ok);
  // New files get new generations; the old handle must stay stale.
  mustCreate(fs_.rootHandle(), "g");
  Fattr attrs;
  EXPECT_EQ(fs_.getattr(node.fh, attrs), NfsStat::ErrStale);
}

TEST_F(FsTest, WrongFsidIsStale) {
  auto node = mustCreate(fs_.rootHandle(), "f");
  FileHandle other = FileHandle::make(99, node.fh.fileid(), 1);
  Fattr attrs;
  EXPECT_EQ(fs_.getattr(other, attrs), NfsStat::ErrStale);
}

TEST_F(FsTest, FsstatTracksUsage) {
  mustCreate(fs_.rootHandle(), "f", 1 << 20);
  FsstatRes st;
  ASSERT_EQ(fs_.fsstat(st), NfsStat::Ok);
  EXPECT_EQ(st.totalBytes, 1ULL << 30);
  EXPECT_EQ(st.totalBytes - st.freeBytes, 1ULL << 20);
}

TEST_F(FsTest, BytesUsedAccounting) {
  EXPECT_EQ(fs_.bytesUsed(), 0u);
  auto node = mustCreate(fs_.rootHandle(), "f", 10000);
  // Charged in 8 KB blocks: 10000 -> 16384.
  EXPECT_EQ(fs_.bytesUsed(), 16384u);
  ASSERT_EQ(fs_.remove(fs_.rootHandle(), "f", t_), NfsStat::Ok);
  EXPECT_EQ(fs_.bytesUsed(), 0u);
  (void)node;
}

}  // namespace
}  // namespace nfstrace
