#include "daemon/daemon.hpp"

#include <algorithm>
#include <cstdio>
#include <ctime>
#include <filesystem>
#include <stdexcept>

#include "analysis/engine/engine.hpp"
#include "analysis/engine/passes.hpp"
#include "analysis/engine/report.hpp"
#include "util/atomicfile.hpp"

namespace nfstrace::daemon {

namespace fs = std::filesystem;

namespace {

constexpr std::uint64_t kUnknown = ~0ull;

std::string segmentBasename(const std::string& prefix, std::uint64_t seq,
                            const char* ext) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "-%06llu%s",
                static_cast<unsigned long long>(seq), ext);
  return prefix + buf;
}

/// Parse "<prefix>-NNNNNN<ext>" -> seq; false when `name` is not ours.
bool parseSegmentName(const std::string& name, const std::string& prefix,
                      const char* ext, std::uint64_t& seqOut) {
  std::string_view n = name;
  if (n.size() <= prefix.size() + 1 || n.substr(0, prefix.size()) != prefix ||
      n[prefix.size()] != '-') {
    return false;
  }
  n.remove_prefix(prefix.size() + 1);
  std::string_view extv = ext;
  if (n.size() <= extv.size() || n.substr(n.size() - extv.size()) != extv) {
    return false;
  }
  n.remove_suffix(extv.size());
  if (n.empty()) return false;
  std::uint64_t seq = 0;
  for (char c : n) {
    if (c < '0' || c > '9') return false;
    seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
  }
  seqOut = seq;
  return true;
}

void removeQuiet(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);
}

std::uint64_t fileBytes(const std::string& path) {
  std::error_code ec;
  auto n = fs::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(n);
}

}  // namespace

TraceDaemon::TraceDaemon(Config config) : cfg_(std::move(config)) {
  if (cfg_.dir.empty()) {
    throw std::runtime_error("daemon: empty directory");
  }
  fs::create_directories(cfg_.dir);
  manifestPath_ = manifestPathFor(cfg_.dir, cfg_.prefix);
  if (cfg_.metrics) {
    rotationsC_ = cfg_.metrics->counterHandle("daemon.rotations", 0);
    shedC_ = cfg_.metrics->counterHandle("daemon.records_shed", 0);
    recoveredSegC_ = cfg_.metrics->counterHandle("daemon.segments_recovered", 0);
    retiredSegC_ = cfg_.metrics->counterHandle("daemon.segments_retired", 0);
    compactionsC_ = cfg_.metrics->counterHandle("daemon.compactions", 0);
    compactFailC_ = cfg_.metrics->counterHandle("daemon.compact_failures", 0);
  }
  if (cfg_.flight) flog_ = cfg_.flight->attachThread("daemon");
  recoverDirectory();
  // A dead trace disk at startup (header write fails) is not fatal: come
  // up degraded and shed with exact accounting until a probe succeeds.
  try {
    openActive();
  } catch (...) {
    enterDegraded();
  }
}

TraceDaemon::~TraceDaemon() {
  try {
    stop();
  } catch (...) {
  }
}

std::string TraceDaemon::manifestPathFor(const std::string& dir,
                                         const std::string& prefix) {
  return dir + "/" + prefix + ".manifest";
}

std::string TraceDaemon::manifestPath() const { return manifestPath_; }

std::string TraceDaemon::sealedPath(std::uint64_t seq) const {
  return cfg_.dir + "/" + segmentBasename(cfg_.prefix, seq, ".trace");
}

std::string TraceDaemon::partPath(std::uint64_t seq) const {
  return cfg_.dir + "/" + segmentBasename(cfg_.prefix, seq, ".part");
}

std::int64_t TraceDaemon::now() const {
  if (cfg_.wallClock) return cfg_.wallClock();
  return static_cast<std::int64_t>(std::time(nullptr));
}

std::vector<std::string> TraceDaemon::segmentPaths() const {
  std::vector<std::string> out;
  out.reserve(manifest_.segments.size());
  for (const SegmentInfo& s : manifest_.segments) {
    out.push_back(cfg_.dir + "/" + s.file);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Startup recovery.

void TraceDaemon::recoverDirectory() {
  obs::FlightSpan span(flog_, obs::Stage::DaemonRecover);

  recovery_.manifestStatus = Manifest::load(manifestPath_, manifest_);
  if (recovery_.manifestStatus == Manifest::LoadStatus::Damaged) {
    // The atomic-save idiom means a torn manifest never comes from a
    // crash — only real corruption.  Rebuild from the directory: the
    // loss history is gone, but the state is always resumable.
    manifest_ = Manifest{};
    recovery_.rebuiltFromScan = true;
  }

  // Inventory the directory: sealed segments, torn parts, stale temps.
  std::vector<std::pair<std::uint64_t, std::string>> sealed;
  std::vector<std::uint64_t> parts;
  for (const auto& entry : fs::directory_iterator(cfg_.dir)) {
    if (!entry.is_regular_file()) continue;
    std::string name = entry.path().filename().string();
    std::uint64_t seq = 0;
    if (parseSegmentName(name, cfg_.prefix, ".trace", seq)) {
      sealed.emplace_back(seq, name);
    } else if (parseSegmentName(name, cfg_.prefix, ".part", seq)) {
      parts.push_back(seq);
    } else if (parseSegmentName(name, cfg_.prefix, ".recov", seq) ||
               parseSegmentName(name, cfg_.prefix, ".trace.compact", seq) ||
               name == cfg_.prefix + ".manifest.tmp") {
      // Interrupted salvage/compaction/save: the protocol re-creates
      // these from scratch, so leftovers are just noise.
      removeQuiet(entry.path().string());
      ++recovery_.staleFilesRemoved;
    }
  }
  std::sort(sealed.begin(), sealed.end());
  std::sort(parts.begin(), parts.end());

  // Drop manifest entries whose segment file vanished (a crash between
  // retention's unlink and the manifest save, or external deletion).
  // The books are untouched: those records had a durable disposition.
  std::erase_if(manifest_.segments, [&](const SegmentInfo& s) {
    return !std::binary_search(
        sealed.begin(), sealed.end(), std::pair{s.seq, s.file},
        [](const auto& a, const auto& b) { return a.first < b.first; });
  });

  // Adopt sealed segments the manifest does not know about (crash after
  // the seal rename but before the journal append).
  for (const auto& [seq, name] : sealed) {
    bool listed = std::any_of(
        manifest_.segments.begin(), manifest_.segments.end(),
        [seq = seq](const SegmentInfo& s) { return s.seq == seq; });
    if (listed) continue;
    SegmentInfo seg;
    seg.seq = seq;
    seg.file = name;
    std::string path = cfg_.dir + "/" + name;
    seg.records = countSegmentRecords(path, seg.format);
    seg.bytes = fileBytes(path);
    seg.first = manifest_.streamPos();
    seg.sealedUnix = now();
    manifest_.segments.push_back(seg);
    std::sort(manifest_.segments.begin(), manifest_.segments.end(),
              [](const SegmentInfo& a, const SegmentInfo& b) {
                return a.seq < b.seq;
              });
    manifest_.books.captured += seg.records;
    manifest_.books.sealed += seg.records;
    manifest_.nextSeq = std::max(manifest_.nextSeq, seq + 1);
    ++recovery_.adoptedSegments;
  }

  // Recover torn active segments.  A part whose seq already has a sealed
  // file is stale (crash between the seal rename and the part unlink
  // during a previous salvage): its records are already in the sealed
  // segment, so it is removed, not recovered.
  for (std::uint64_t seq : parts) {
    bool sealedExists = std::any_of(
        sealed.begin(), sealed.end(),
        [seq](const auto& p) { return p.first == seq; });
    if (sealedExists) {
      removeQuiet(partPath(seq));
      ++recovery_.staleFilesRemoved;
      continue;
    }
    ++recovery_.tornSegments;
    recoverPart(seq, kUnknown, /*useFaults=*/false);
  }

  manifest_.save(manifestPath_);
}

std::uint64_t TraceDaemon::countSegmentRecords(const std::string& path,
                                               std::string& formatOut) const {
  formatOut = traceFormatName(detectTraceFormat(path));
  TraceReader reader(path, /*recover=*/true);
  TraceRecord rec;
  std::uint64_t n = 0;
  while (reader.nextInto(rec)) ++n;
  return n;
}

void TraceDaemon::recoverPart(std::uint64_t seq, std::uint64_t submittedToPart,
                              bool useFaults) {
  std::string part = partPath(seq);
  std::string recov = part;
  recov.replace(recov.size() - 5, 5, ".recov");

  // Phase 1 — pure I/O, no book mutation: a throw here leaves the part
  // untouched and the books exactly as they were, so salvage can be
  // retried (probe path) or inherited by the next incarnation.
  std::vector<TraceRecord> records;
  TraceReader::RecoverStats rstats;
  try {
    TraceReader reader(part, /*recover=*/true);
    TraceRecord rec;
    while (reader.nextInto(rec)) records.push_back(rec);
    rstats = reader.recoverStats();
  } catch (...) {
    // Unreadable beyond salvage (e.g. truncated before any framing):
    // nothing recoverable, no checkpoint evidence.
    records.clear();
    rstats = {};
  }
  std::uint64_t recovered = records.size();

  std::uint64_t bytes = 0;
  if (recovered > 0) {
    TraceWriter::Options wopts;
    wopts.format = cfg_.format;
    wopts.checkpointEveryRecords = cfg_.checkpointEveryRecords;
    wopts.v2ExtentRecords = cfg_.v2ExtentRecords;
    wopts.maxRetries = cfg_.maxRetries;
    wopts.backoffInitialUs = cfg_.backoffInitialUs;
    wopts.backoffMaxUs = cfg_.backoffMaxUs;
    wopts.faults = useFaults ? cfg_.faults : nullptr;
    TraceWriter writer(recov, wopts);
    for (const TraceRecord& rec : records) writer.write(rec);
    writer.finalize(cfg_.fsyncOnSeal);
    bytes = fileBytes(recov);
    renameDurable(recov, sealedPath(seq));
  }

  // Phase 2 — mutation.  The sequence number is consumed only when a
  // segment was actually sealed under it; an empty/unsalvageable part is
  // discarded and its seq reused, keeping the sealed sequence gap-free.
  if (recovered > 0) manifest_.nextSeq = std::max(manifest_.nextSeq, seq + 1);
  removeQuiet(part);

  // Evidence of loss: on the probe path the daemon knows exactly how
  // many records it submitted to this part; at startup the torn file's
  // own checkpoint/extent evidence (skipped) is the best bound —
  // records that died in the in-process buffer left no trace and are
  // simply re-fed by a resuming source.  `recovered` can exceed
  // `submittedToPart`: the record whose write threw never made it into
  // activeRecords_, but its bytes may still have reached disk (the
  // throw can come from the post-write fflush/fsync), so clamp rather
  // than underflow the books.
  std::uint64_t lost = (submittedToPart == kUnknown)
                           ? rstats.skipped
                           : (recovered >= submittedToPart
                                  ? 0
                                  : submittedToPart - recovered);
  if (recovered > 0) {
    SegmentInfo seg;
    seg.seq = seq;
    seg.file = segmentBasename(cfg_.prefix, seq, ".trace");
    seg.format = traceFormatName(cfg_.format);
    seg.records = recovered;
    seg.bytes = bytes;
    seg.first = manifest_.streamPos();
    seg.sealedUnix = now();
    manifest_.segments.push_back(seg);
    std::sort(manifest_.segments.begin(), manifest_.segments.end(),
              [](const SegmentInfo& a, const SegmentInfo& b) {
                return a.seq < b.seq;
              });
    recoveredSegC_.inc();
  }
  manifest_.books.captured += recovered + lost;
  manifest_.books.recovered += recovered;
  manifest_.books.lost += lost;
  recovery_.recoveredRecords += recovered;
  recovery_.lostRecords += lost;
}

// ---------------------------------------------------------------------------
// Capture loop: submit / rotate / degrade.

void TraceDaemon::openActive() {
  activeSeq_ = manifest_.nextSeq;
  TraceWriter::Options wopts;
  wopts.format = cfg_.format;
  wopts.checkpointEveryRecords = cfg_.checkpointEveryRecords;
  wopts.v2ExtentRecords = cfg_.v2ExtentRecords;
  wopts.maxRetries = cfg_.maxRetries;
  wopts.backoffInitialUs = cfg_.backoffInitialUs;
  wopts.backoffMaxUs = cfg_.backoffMaxUs;
  wopts.faults = cfg_.faults;
  writer_ = std::make_unique<TraceWriter>(partPath(activeSeq_), wopts);
  if (cfg_.metrics) writer_->attachMetrics(*cfg_.metrics);
  activeRecords_ = 0;
  activeOpened_ = std::chrono::steady_clock::now();
}

void TraceDaemon::submit(const TraceRecord& rec) {
  ++submitted_;
  if (degraded_) {
    shedOne();
    if (shedSinceProbe_ >= cfg_.reopenAfterSheds) probeDisk();
    return;
  }
  try {
    writer_->write(rec);
  } catch (...) {
    enterDegraded();
    shedOne();
    return;
  }
  ++activeRecords_;

  bool due = (cfg_.rotateRecords > 0 && activeRecords_ >= cfg_.rotateRecords) ||
             (cfg_.rotateBytes > 0 &&
              writer_->bytesWritten() >= cfg_.rotateBytes);
  if (!due && cfg_.rotateIntervalUs > 0) {
    auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - activeOpened_)
                       .count();
    due = elapsed >= cfg_.rotateIntervalUs;
  }
  if (due) rotate();
}

void TraceDaemon::rotate() {
  try {
    sealActive();
    // The next segment's header write can fail too (the seal may have
    // consumed the last free blocks); that degrades rather than throws
    // out of submit() — the sealed segment is already journaled.
    openActive();
  } catch (...) {
    enterDegraded();
    return;
  }
  if (cfg_.autoMaintain) maintain();
}

void TraceDaemon::rotateNow() {
  if (degraded_ || !writer_ || activeRecords_ == 0) return;
  rotate();
}

void TraceDaemon::sealActive() {
  obs::FlightSpan span(flog_, obs::Stage::DaemonRotate);
  if (activeRecords_ == 0) {
    // Nothing captured: discard the empty part instead of sealing an
    // empty segment.
    writer_.reset();
    removeQuiet(partPath(activeSeq_));
    return;
  }
  // Checkpoint-aligned seal: tail extent / final checkpoint + footer,
  // flush, fsync — finalize() throws if any step fails, which is the
  // signal to degrade rather than journal an unsealed segment.
  writer_->finalize(cfg_.fsyncOnSeal);
  std::uint64_t records = writer_->recordsWritten();
  std::uint64_t bytes = writer_->bytesWritten();
  writer_.reset();
  renameDurable(partPath(activeSeq_), sealedPath(activeSeq_));

  SegmentInfo seg;
  seg.seq = activeSeq_;
  seg.file = segmentBasename(cfg_.prefix, activeSeq_, ".trace");
  seg.format = traceFormatName(cfg_.format);
  seg.records = records;
  seg.bytes = bytes;
  seg.first = manifest_.streamPos();
  seg.sealedUnix = now();
  manifest_.segments.push_back(seg);
  manifest_.books.captured += records;
  manifest_.books.sealed += records;
  manifest_.nextSeq = activeSeq_ + 1;
  manifest_.save(manifestPath_);
  rotationsC_.inc();
  activeRecords_ = 0;
}

void TraceDaemon::enterDegraded() {
  degraded_ = true;
  shedSinceProbe_ = 0;
  // Abandon the active writer; the part file keeps whatever was flushed
  // and is salvaged by the next successful probe (or the next
  // incarnation's startup recovery).  The destructor swallows errors —
  // the disk is already known bad.
  writer_.reset();
}

void TraceDaemon::shedOne() {
  ++shedTotal_;
  ++shedSinceProbe_;
  shedC_.inc();
  if (flog_) flog_->instant(obs::Stage::DaemonShed, shedTotal_);
  // A shed record's disposition is immediate and exact: captured, lost.
  manifest_.books.captured += 1;
  manifest_.books.lost += 1;
}

void TraceDaemon::probeDisk() {
  shedSinceProbe_ = 0;
  try {
    if (fs::exists(partPath(activeSeq_))) {
      recoverPart(activeSeq_, activeRecords_, /*useFaults=*/true);
    } else {
      // The part vanished (or a previous probe sealed it and died before
      // clearing degraded): the sequence number is still consumed.
      manifest_.nextSeq = std::max(manifest_.nextSeq, activeSeq_ + 1);
      manifest_.books.captured += activeRecords_;
      manifest_.books.lost += activeRecords_;
    }
    activeRecords_ = 0;
    openActive();
    // Leave degraded mode only once the whole probe — salvage, reopen,
    // manifest save — has succeeded; a save failure must not hand
    // submit() a half-initialized (or reset) writer.
    manifest_.save(manifestPath_);
    degraded_ = false;
  } catch (...) {
    // Disk still bad: stay degraded, keep shedding with exact counts.
    degraded_ = true;
    writer_.reset();
  }
}

void TraceDaemon::stop() {
  if (stopped_) return;
  if (!degraded_ && writer_) {
    try {
      sealActive();
    } catch (...) {
      enterDegraded();
    }
  }
  if (degraded_) {
    // Final salvage attempt, so even a drain that ends on a bad disk
    // leaves every submitted record with a durable disposition.
    try {
      if (fs::exists(partPath(activeSeq_))) {
        recoverPart(activeSeq_, activeRecords_, /*useFaults=*/true);
        activeRecords_ = 0;
      } else if (activeRecords_ > 0) {
        manifest_.books.captured += activeRecords_;
        manifest_.books.lost += activeRecords_;
        activeRecords_ = 0;
      }
    } catch (...) {
      // Leave the part for the next incarnation's startup recovery.
    }
  }
  try {
    maintain();
  } catch (...) {
  }
  try {
    manifest_.save(manifestPath_);
  } catch (...) {
  }
  stopped_ = true;
}

// ---------------------------------------------------------------------------
// Retention & compaction.

void TraceDaemon::maintain() {
  applyRetention();
  if (cfg_.retention.compactAfterSec >= 0) {
    obs::FlightSpan span(flog_, obs::Stage::DaemonCompact);
    compactOneSegment();
  }
}

void TraceDaemon::applyRetention() {
  const Retention& r = cfg_.retention;
  bool changed = false;
  auto overBudget = [&]() -> bool {
    if (manifest_.segments.empty()) return false;
    if (r.maxSegments > 0 && manifest_.segments.size() > r.maxSegments) {
      return true;
    }
    if (r.maxTotalBytes > 0) {
      std::uint64_t total = 0;
      for (const SegmentInfo& s : manifest_.segments) total += s.bytes;
      if (total > r.maxTotalBytes) return true;
    }
    if (r.maxAgeSec > 0 &&
        now() - manifest_.segments.front().sealedUnix > r.maxAgeSec) {
      return true;
    }
    return false;
  };
  while (overBudget()) {
    // Oldest first.  Unlink before journaling: a crash in between is
    // healed at startup (missing-file entries are dropped, books kept).
    const SegmentInfo& victim = manifest_.segments.front();
    removeQuiet(cfg_.dir + "/" + victim.file);
    manifest_.segments.erase(manifest_.segments.begin());
    retiredSegC_.inc();
    changed = true;
  }
  if (changed) manifest_.save(manifestPath_);
}

std::string TraceDaemon::engineReport(const std::string& path,
                                      std::uint64_t& recordsOut) const {
  StandardAnalyses analyses;
  AnalysisEngine::Config ecfg;
  ecfg.decodeThreads = cfg_.decodeThreads;
  AnalysisEngine engine(ecfg);
  engine.addPasses(analyses.all());
  // runFile: indexed v2 segments decode extent-parallel when
  // decodeThreads > 1; v1 and index-less input takes the classic
  // reader path.  Either way the report is byte-identical.
  recordsOut = engine.runFile(path).records;
  // The input label must match on both sides of the comparison, so the
  // report is rendered with a neutral one.
  return renderReportText("segment", analyses);
}

bool TraceDaemon::compactOneSegment() {
  SegmentInfo* victim = nullptr;
  for (SegmentInfo& s : manifest_.segments) {
    if (s.format == "v2") continue;
    if (now() - s.sealedUnix < cfg_.retention.compactAfterSec) continue;
    if (std::find(failedCompactSeqs_.begin(), failedCompactSeqs_.end(),
                  s.seq) != failedCompactSeqs_.end()) {
      continue;
    }
    victim = &s;
    break;
  }
  if (!victim) return false;

  std::string src = cfg_.dir + "/" + victim->file;
  std::string tmp = src + ".compact";
  try {
    std::uint64_t srcRecords = 0;
    std::string srcReport = engineReport(src, srcRecords);
    {
      TraceWriter::Options wopts;
      wopts.format = TraceWriter::Format::V2;
      wopts.v2ExtentRecords = cfg_.v2ExtentRecords;
      wopts.maxRetries = cfg_.maxRetries;
      wopts.backoffInitialUs = cfg_.backoffInitialUs;
      wopts.backoffMaxUs = cfg_.backoffMaxUs;
      wopts.faults = cfg_.faults;
      TraceWriter writer(tmp, wopts);
      TraceReader reader(src);
      TraceRecord rec;
      while (reader.nextInto(rec)) writer.write(rec);
      writer.finalize(cfg_.fsyncOnSeal);
    }
    // Verification gate: the original is only replaced once the standard
    // 8-pass report over the compacted copy is byte-identical.
    std::uint64_t outRecords = 0;
    std::string outReport = engineReport(tmp, outRecords);
    if (outRecords != srcRecords || outReport != srcReport) {
      throw std::runtime_error("daemon: compaction verification mismatch");
    }
    renameDurable(tmp, src);  // same name: the magic self-describes
  } catch (...) {
    removeQuiet(tmp);
    failedCompactSeqs_.push_back(victim->seq);
    compactFailC_.inc();
    return false;
  }
  victim->format = "v2";
  victim->bytes = fileBytes(src);
  manifest_.save(manifestPath_);
  compactionsC_.inc();
  return true;
}

}  // namespace nfstrace::daemon
