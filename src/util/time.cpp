#include "util/time.hpp"

#include <cstdio>

namespace nfstrace {

const char* weekdayName(int dow) {
  static const char* kNames[7] = {"Sun", "Mon", "Tue", "Wed",
                                  "Thu", "Fri", "Sat"};
  return kNames[((dow % 7) + 7) % 7];
}

std::string formatTime(MicroTime t) {
  MicroTime inDay = ((t % kMicrosPerDay) + kMicrosPerDay) % kMicrosPerDay;
  int h = static_cast<int>(inDay / kMicrosPerHour);
  int m = static_cast<int>((inDay / kMicrosPerMinute) % 60);
  int s = static_cast<int>((inDay / kMicrosPerSecond) % 60);
  int us = static_cast<int>(inDay % kMicrosPerSecond);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s %02d:%02d:%02d.%06d",
                weekdayName(dayOfWeek(t)), h, m, s, us);
  return buf;
}

}  // namespace nfstrace
