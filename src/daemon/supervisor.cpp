#include "daemon/supervisor.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>

namespace nfstrace::daemon {

namespace {

void auditManifest(const std::string& path, Supervisor::Result& result) {
  if (path.empty()) return;
  Manifest m;
  switch (Manifest::load(path, m)) {
    case Manifest::LoadStatus::Ok:
      result.finalBooks = m.books;
      if (!m.books.balanced()) result.booksBalanced = false;
      break;
    case Manifest::LoadStatus::Missing:
      // The child died before its first save; nothing to audit yet.
      break;
    case Manifest::LoadStatus::Damaged:
      // Atomic saves make a torn manifest impossible from a crash alone;
      // a Damaged file here means the invariant machinery is broken.
      result.booksBalanced = false;
      break;
  }
}

}  // namespace

Supervisor::Result Supervisor::run(const Config& cfg,
                                   const std::function<int(int)>& body) {
  Result result;
  MicroTime backoff = cfg.backoffInitialUs;
  for (;;) {
    pid_t pid = ::fork();
    if (pid < 0) {
      result.cleanExit = false;
      return result;
    }
    if (pid == 0) {
      // Child: run the capture loop and exit without unwinding the
      // parent's state (no atexit handlers, no stream flushes).
      ::_exit(body(result.incarnations));
    }
    ++result.incarnations;
    int status = 0;
    bool reaped = true;
    while (::waitpid(pid, &status, 0) < 0) {
      // EINTR only; any other error means the child is unreachable.
      if (errno != EINTR) {
        reaped = false;
        break;
      }
    }
    result.lastStatus = status;
    if (!reaped) {
      // The child's fate is unknown (waitpid failed outright): status
      // still holds 0, which must not be read as a clean exit-0, and
      // restarting could double-run a still-live child.  Audit what the
      // books say and bail out abnormally.
      result.cleanExit = false;
      auditManifest(cfg.manifestPath, result);
      return result;
    }
    if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
      result.cleanExit = true;
      auditManifest(cfg.manifestPath, result);
      return result;
    }
    // Abnormal exit (crash, SIGKILL, nonzero): audit the durable books
    // before restarting — the whole point of the recovery protocol is
    // that they balance at every instant.
    auditManifest(cfg.manifestPath, result);
    if (result.restarts >= cfg.maxRestarts) {
      result.cleanExit = false;
      return result;
    }
    ++result.restarts;
    ::usleep(static_cast<useconds_t>(backoff));
    backoff = std::min<MicroTime>(backoff * 2, cfg.backoffMaxUs);
  }
}

}  // namespace nfstrace::daemon
