// Single-pass analysis driver: every table and figure from one scan.
//
//   trace_analyze [--workers N] [--decode-threads N] [--json] [--recover]
//                 [--batch N] [--from SEC] [--to SEC] [--ops a,b,...]
//                 [--uid N] [--metrics] [--flight trace.json] [trace-file]
//
// Where trace_stats grew up one analysis at a time (one full decode of
// the trace per table), trace_analyze decodes each record exactly once
// and fans the batches out to all eight standard analysis passes.  With
// --workers N the scan runs on N threads; the output is byte-identical
// to the serial run at any worker count.
//
//   --workers N   worker threads for the scan (default 1 = serial)
//   --decode-threads N
//                 extent-decode threads for indexed v2 input: workers
//                 claim whole extents from the footer index and decode
//                 in parallel; output stays byte-identical
//   --from/--to SEC, --ops LIST, --uid N
//                 pushdown predicate: filters records and, on indexed
//                 v2 input, prunes whole extents via footer zone maps
//                 before any decode
//   --json        emit the report as one JSON object on stdout
//   --recover     read a damaged trace end-to-end (resyncs land on
//                 batch boundaries; summary goes to stderr)
//   --batch N     records per batch (default 4096)
//   --metrics     print the engine's self-monitoring snapshot (batch and
//                 record counters, intern-table sizes, per-pass observe
//                 timings) and any DEGRADED alert line to stderr
//   --flight F    record a per-thread span timeline of the scan (reader
//                 decode, per-pass observe, pool/ring stalls) to Chrome
//                 trace-event file F (open in Perfetto) and print the
//                 stall-attribution report to stderr
//
// With no input argument it generates a demo trace first.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "analysis/engine/engine.hpp"
#include "analysis/engine/passes.hpp"
#include "analysis/engine/report.hpp"
#include "obs/exporter.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "trace/tracefile.hpp"
#include "workload/campus.hpp"
#include "workload/sim.hpp"

#include "scan_flags.hpp"

using namespace nfstrace;

namespace {

std::string makeDemoTrace() {
  std::string path = "/tmp/trace_analyze_demo.trace";
  std::fprintf(stderr, "no input given; generating a demo trace at %s\n",
               path.c_str());
  SimEnvironment::Config cfg;
  cfg.fsConfig.fsid = 2;
  cfg.clientHosts = 3;
  SimEnvironment env(cfg);
  CampusConfig wl;
  wl.users = 12;
  CampusWorkload workload(wl, env);
  MicroTime start = days(1) + hours(9);
  workload.setup(start);
  workload.run(start, start + hours(2));
  env.finishCapture();
  TraceWriter writer(path);
  for (const auto& rec : env.records()) writer.write(rec);
  return path;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workers N] [--decode-threads N] [--json] "
               "[--recover] [--batch N] [--from SEC] [--to SEC] "
               "[--ops a,b,...] [--uid N] [--metrics] "
               "[--flight trace.json] [trace-file]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool recover = false;
  bool metrics = false;
  std::string flightPath;
  std::size_t workers = 1;
  std::size_t batchRecords = TraceBatch::kDefaultCapacity;
  ScanFlags sf;
  std::string input;
  for (int i = 1; i < argc; ++i) {
    int consumed = sf.tryParse(argc, argv, &i);
    if (consumed < 0) return usage(argv[0]);
    if (consumed > 0) continue;
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--recover") {
      recover = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--flight" && i + 1 < argc) {
      flightPath = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--batch" && i + 1 < argc) {
      batchRecords =
          static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      if (batchRecords == 0) batchRecords = 1;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      input = arg;
    }
  }
  if (input.empty()) input = makeDemoTrace();
  std::fprintf(stderr, "%s: %s format\n", input.c_str(),
               traceFormatName(detectTraceFormat(input)));

  obs::Registry registry;
  StandardAnalyses analyses;
  AnalysisEngine::Config cfg;
  cfg.workers = workers;
  cfg.batchRecords = batchRecords;
  cfg.decodeThreads = sf.decodeThreads;
  cfg.predicate = sf.predicate;
  AnalysisEngine engine(cfg);
  engine.addPasses(analyses.all());
  engine.attachMetrics(registry);
  obs::FlightRecorder flight;
  if (!flightPath.empty()) engine.attachFlight(flight);

  AnalysisEngine::Stats st;
  const bool extentScan =
      !recover && (sf.decodeThreads > 1 || !sf.predicate.trivial());
  if (extentScan) {
    // runFile picks the extent-parallel scanner on indexed v2 input
    // (zone-map pruning + per-extent decode fan-out) and falls back to
    // the classic reader scan — record-level filtering still applies —
    // on v1 or index-less input.
    try {
      st = engine.runFile(input);
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "%s: %s\n"
                   "rerun with --recover to skip corrupt regions with "
                   "exact loss accounting\n",
                   input.c_str(), e.what());
      return 3;
    }
  } else {
    TraceReader reader(input, recover);
    try {
      st = engine.run(reader);
    } catch (const std::exception& e) {
      // A torn or corrupt trace read without --recover: report how far
      // the scan got (the checkpoint accounting bounds the damage) and
      // exit nonzero instead of dying on a bare exception.
      const auto& rs = reader.recoverStats();
      std::fprintf(stderr,
                   "%s: %s\n"
                   "scanned %llu records before the damage "
                   "(%llu checkpoints, last checkpoint at %llu records)\n"
                   "rerun with --recover to skip corrupt regions with exact "
                   "loss accounting\n",
                   input.c_str(), e.what(),
                   static_cast<unsigned long long>(engine.stats().records),
                   static_cast<unsigned long long>(rs.checkpoints),
                   static_cast<unsigned long long>(rs.checkpointRecords));
      return 3;
    }
    if (recover) {
      const auto& rs = reader.recoverStats();
      std::fprintf(stderr,
                   "recovery: %llu records recovered, %llu skipped "
                   "(%llu resyncs, %llu checkpoints, %llu batch cuts)\n",
                   static_cast<unsigned long long>(rs.recovered),
                   static_cast<unsigned long long>(rs.skipped),
                   static_cast<unsigned long long>(rs.resyncs),
                   static_cast<unsigned long long>(rs.checkpoints),
                   static_cast<unsigned long long>(st.resyncCuts));
    }
  }
  sf.reportPruning(st);
  if (st.records == 0) {
    std::fprintf(stderr, "%s: no records%s\n", input.c_str(),
                 sf.predicate.trivial() ? "" : " matched the predicate");
    return 1;
  }

  std::string report = json ? renderReportJson(input, analyses)
                            : renderReportText(input, analyses);
  std::fwrite(report.data(), 1, report.size(), stdout);

  if (metrics) {
    auto snap = registry.scrape();
    std::string table = obs::SnapshotExporter::renderStatusTable(snap, 0, 0);
    table += obs::SnapshotExporter::renderAlerts(
        snap, obs::defaultAlertCounters());
    std::fwrite(table.data(), 1, table.size(), stderr);
  }
  if (!flightPath.empty()) {
    std::string stall = flight.stallReport();
    std::fwrite(stall.data(), 1, stall.size(), stderr);
    std::uint64_t rendered = 0;
    if (!flight.writeChromeTrace(flightPath, &rendered)) {
      std::fprintf(stderr, "failed to write flight trace %s\n",
                   flightPath.c_str());
      return 1;
    }
    std::fprintf(
        stderr,
        "flight timeline: %s (%llu events; load in https://ui.perfetto.dev)\n",
        flightPath.c_str(), static_cast<unsigned long long>(rendered));
  }
  return 0;
}
