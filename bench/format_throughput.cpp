// Trace format shoot-out: v1 text vs v1 binary vs v2 columnar extents on
// the same multi-day synthetic EECS trace.
//
// Measures what the format migration is for: bytes on disk (the paper's
// traces ran to hundreds of GB; compression ratio decides what a capture
// host can keep) and batch-scan throughput (the analysis engine decodes
// the trace once per report; scan records/sec decides how fast a report
// comes back).  The v2 columns decode almost directly into the batch
// arena — extent dictionaries land in the reader's interners at load
// time, so the per-record parse and per-record hash of v1 disappear.
//
// A pruned-scan phase times a time-windowed query two ways over the v2
// file: the classic reader scan with record-level filtering (the
// oracle) vs the extent scanner with zone-map pushdown, which skips
// whole extents whose footer [tsMin,tsMax] misses the window before any
// decode.  pruned_scan_rps is total file records over elapsed time —
// effective throughput, where pruning is the win.
//
// Correctness gate: the full 8-pass analysis report must be
// byte-identical across all three formats at 1 and 4 workers, and the
// pruned query report byte-identical to its unpruned oracle.  Results
// land in BENCH_format.json; non-smoke exit is nonzero unless v2 scans
// >= 3x faster than v1 binary, is >= 2x smaller on disk with identical
// reports, and the windowed query prunes >= 50% of extents with an
// identical report.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/engine/engine.hpp"
#include "analysis/engine/passes.hpp"
#include "analysis/engine/report.hpp"
#include "bench_common.hpp"
#include "trace/tracefile.hpp"
#include "trace/v2.hpp"

namespace nfstrace {
namespace {

using bench::kWeekStart;
using bench::makeEecs;

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

template <typename Fn>
double bestRps(std::uint64_t records, Fn&& run, int reps) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    run();
    double dt = secondsSince(t0);
    double rps = static_cast<double>(records) / dt;
    if (rps > best) best = rps;
  }
  return best;
}

/// The engine's input path: drain the trace through nextBatch, touching
/// every decoded record the way a pass would.
std::uint64_t scanBatches(const std::string& path) {
  TraceReader reader(path);
  TraceBatch batch;
  std::uint64_t n = 0;
  while (reader.nextBatch(batch)) n += batch.n;
  return n;
}

std::string runEngine(const std::string& path, std::size_t workers) {
  StandardAnalyses analyses;
  AnalysisEngine::Config cfg;
  cfg.workers = workers;
  AnalysisEngine engine(cfg);
  engine.addPasses(analyses.all());
  TraceReader reader(path);
  engine.run(reader);
  // Constant label: the report must compare equal across format files.
  return renderReportText("trace", analyses);
}

/// The same predicate two ways: pushdown=false is the oracle (classic
/// reader scan, record-level filtering only); pushdown=true goes
/// through runFile's extent scanner, which prunes via zone maps first.
std::string runEngineFiltered(const std::string& path,
                              const ScanPredicate& pred, bool pushdown,
                              AnalysisEngine::Stats* statsOut) {
  StandardAnalyses analyses;
  AnalysisEngine::Config cfg;
  cfg.predicate = pred;
  AnalysisEngine engine(cfg);
  engine.addPasses(analyses.all());
  if (pushdown) {
    engine.runFile(path);
  } else {
    TraceReader reader(path);
    engine.run(reader);
  }
  if (statsOut) *statsOut = engine.stats();
  return renderReportText("trace", analyses);
}

}  // namespace
}  // namespace nfstrace

int main(int argc, char** argv) {
  using namespace nfstrace;
  const std::string jsonPath = argc > 1 ? argv[1] : "BENCH_format.json";
  const bool smoke = bench::smokeMode();
  const double simDays = smoke ? 0.05 : 2.0;
  const int users = smoke ? 6 : 16;
  const int reps = smoke ? 1 : 3;

  struct Variant {
    const char* name;
    TraceWriter::Format format;
    std::string path;
  };
  Variant variants[3] = {
      {"text", TraceWriter::Format::Text, "bench_format_text.trace"},
      {"binary", TraceWriter::Format::Binary, "bench_format_bin.trace"},
      {"v2", TraceWriter::Format::V2, "bench_format_v2.trace"},
  };

  std::printf("generating synthetic EECS trace (%.2f days, %d users)...\n",
              simDays, users);
  std::uint64_t records = 0;
  {
    TraceWriter writer(variants[0].path);
    auto eecs = makeEecs(users, [&](const TraceRecord& r) {
      writer.write(r);
      ++records;
    });
    eecs.workload->setup(kWeekStart);
    eecs.workload->run(kWeekStart, kWeekStart + days(simDays));
    eecs.env->finishCapture();
  }
  // Re-encode the canonical text trace into the other two formats.
  {
    auto all = TraceReader::readAll(variants[0].path);
    for (int v = 1; v < 3; ++v) {
      TraceWriter::Options opts;
      opts.format = variants[v].format;
      // Smoke traces are tiny; shrink extents so the v2 path still
      // exercises multi-extent scans and the footer index.
      if (smoke) opts.v2ExtentRecords = 256;
      TraceWriter w(variants[v].path, opts);
      for (const auto& r : all) w.write(r);
    }
  }
  std::printf("  %llu records\n", static_cast<unsigned long long>(records));

  std::uint64_t bytes[3] = {0, 0, 0};
  double scanRps[3] = {0, 0, 0};
  for (int v = 0; v < 3; ++v) {
    bytes[v] = std::filesystem::file_size(variants[v].path);
    scanBatches(variants[v].path);  // warm-up: page cache + allocator
    scanRps[v] = bestRps(
        records, [&] { scanBatches(variants[v].path); }, reps);
    std::printf("%-7s: %9.2f MB  %10.0f rec/s scan  (%5.1f B/rec)\n",
                variants[v].name, static_cast<double>(bytes[v]) / 1e6,
                scanRps[v],
                records ? static_cast<double>(bytes[v]) / records : 0.0);
  }

  // The report oracle: text input, serial engine.  Every other
  // format/worker combination must render the identical bytes.
  bool identical = true;
  std::string oracle = runEngine(variants[0].path, 1);
  for (int v = 0; v < 3; ++v) {
    for (std::size_t workers : {std::size_t{1}, std::size_t{4}}) {
      if (v == 0 && workers == 1) continue;
      if (runEngine(variants[v].path, workers) != oracle) {
        identical = false;
        std::printf("REPORT MISMATCH: %s at %zu workers\n", variants[v].name,
                    workers);
      }
    }
  }
  identical = identical && !oracle.empty();

  auto index = tracev2::loadExtentIndex(variants[2].path);
  std::size_t extents = index ? index->size() : 0;

  // Pruned scan: a time-windowed query over the middle of the trace.
  // The window edges come from the footer zone maps themselves, so the
  // phase is self-calibrating whatever the simulated time span.
  double prunedRps = 0;
  bool prunedIdentical = false;
  std::uint64_t prunedExtents = 0;
  if (index && !index->empty()) {
    MicroTime tsMin = (*index)[0].tsMin, tsMax = (*index)[0].tsMax;
    for (const auto& e : *index) {
      tsMin = std::min(tsMin, e.tsMin);
      tsMax = std::max(tsMax, e.tsMax);
    }
    MicroTime span = tsMax - tsMin;
    ScanPredicate pred;
    pred.from = tsMin + static_cast<MicroTime>(span * 0.60);
    pred.to = tsMin + static_cast<MicroTime>(span * 0.85);
    std::string prunedOracle =
        runEngineFiltered(variants[2].path, pred, false, nullptr);
    AnalysisEngine::Stats pstats;
    std::string prunedReport;
    prunedRps = bestRps(
        records,
        [&] {
          prunedReport =
              runEngineFiltered(variants[2].path, pred, true, &pstats);
        },
        reps);
    prunedIdentical = prunedReport == prunedOracle && !prunedOracle.empty();
    prunedExtents = pstats.extentsPruned;
    std::printf(
        "pruned scan     : %10.0f rec/s effective  (%llu/%zu extents "
        "pruned, %llu records kept, identical=%s)\n",
        prunedRps, static_cast<unsigned long long>(prunedExtents), extents,
        static_cast<unsigned long long>(pstats.records),
        prunedIdentical ? "yes" : "NO");
  }
  double prunedFrac =
      extents ? static_cast<double>(prunedExtents) / extents : 0;

  double v2VsBinScan = scanRps[1] > 0 ? scanRps[2] / scanRps[1] : 0;
  double v2VsTextScan = scanRps[0] > 0 ? scanRps[2] / scanRps[0] : 0;
  double binOverV2 =
      bytes[2] > 0 ? static_cast<double>(bytes[1]) / bytes[2] : 0;
  double textOverV2 =
      bytes[2] > 0 ? static_cast<double>(bytes[0]) / bytes[2] : 0;
  std::printf("\nv2 scan speedup : %.2fx vs binary, %.2fx vs text\n",
              v2VsBinScan, v2VsTextScan);
  std::printf("v2 size ratio   : %.2fx smaller than binary, %.2fx than text\n",
              binOverV2, textOverV2);
  std::printf("extents indexed : %zu\n", extents);
  std::printf("reports byte-identical across formats and workers: %s\n",
              identical ? "true" : "false");

  for (const auto& v : variants) std::remove(v.path.c_str());

  std::FILE* j = std::fopen(jsonPath.c_str(), "w");
  if (!j) {
    std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
    return 1;
  }
  std::fprintf(
      j,
      "{\"bench\":\"format_throughput\",\"records\":%llu,"
      "\"text_bytes\":%llu,\"binary_bytes\":%llu,\"v2_bytes\":%llu,"
      "\"v2_extents\":%zu,"
      "\"text_scan_rps\":%.0f,\"binary_scan_rps\":%.0f,\"v2_scan_rps\":%.0f,"
      "\"v2_scan_vs_binary\":%.5g,\"v2_scan_vs_text\":%.5g,"
      "\"binary_size_over_v2\":%.5g,\"text_size_over_v2\":%.5g,"
      "\"pruned_scan_rps\":%.0f,\"pruned_extents\":%llu,"
      "\"pruned_extents_frac\":%.5g,\"pruned_report_identical\":%s,"
      "\"report_identical\":%s}\n",
      static_cast<unsigned long long>(records),
      static_cast<unsigned long long>(bytes[0]),
      static_cast<unsigned long long>(bytes[1]),
      static_cast<unsigned long long>(bytes[2]), extents, scanRps[0],
      scanRps[1], scanRps[2], v2VsBinScan, v2VsTextScan, binOverV2,
      textOverV2, prunedRps, static_cast<unsigned long long>(prunedExtents),
      prunedFrac, prunedIdentical ? "true" : "false",
      identical ? "true" : "false");
  std::fclose(j);
  std::printf("wrote %s\n", jsonPath.c_str());

  if (smoke) {
    // Under ctest -L perf the smoke run doubles as a pruned-scan sanity
    // check: byte-identical pruned report plus a conservative effective
    // records/sec floor (far below steady state, so a real pushdown
    // regression trips it but scheduler noise cannot).
    bool ok = identical && prunedIdentical;
    if (const char* floorEnv = std::getenv("NFSTRACE_SMOKE_PRUNED_RPS_FLOOR")) {
      double floor = std::atof(floorEnv);
      bool rpsOk = prunedRps >= floor;
      std::printf("smoke sanity: pruned scan %.0f rec/s effective "
                  "(floor %.0f), identical=%s -> %s\n",
                  prunedRps, floor, prunedIdentical ? "true" : "false",
                  ok && rpsOk ? "PASS" : "FAIL");
      ok = ok && rpsOk;
    }
    return ok ? 0 : 1;
  }
  return identical && v2VsBinScan >= 3.0 && binOverV2 >= 2.0 &&
                 prunedIdentical && prunedFrac >= 0.5
             ? 0
             : 1;
}
