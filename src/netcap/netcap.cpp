#include "netcap/netcap.hpp"

namespace nfstrace {

void MirrorPort::onFrame(const CapturedPacket& pkt) {
  // Backlog currently in the port's buffer, expressed in bytes that will
  // still be transmitting at pkt.ts.
  double txSecondsPerByte = 8.0 / config_.bandwidthBitsPerSec;
  if (pkt.ts >= busyUntil_) {
    queuedBytes_ = 0;
  } else {
    double backlogSeconds = toSeconds(busyUntil_ - pkt.ts);
    queuedBytes_ = static_cast<std::size_t>(backlogSeconds / txSecondsPerByte);
  }

  if (queuedBytes_ + pkt.data.size() > config_.bufferBytes) {
    ++dropped_;
    droppedC_.inc();
    dropRateG_.set(dropRate());
    return;
  }

  auto txUs = static_cast<MicroTime>(
      static_cast<double>(pkt.data.size()) * txSecondsPerByte *
      static_cast<double>(kMicrosPerSecond));
  MicroTime start = std::max(busyUntil_, pkt.ts);
  busyUntil_ = start + std::max<MicroTime>(txUs, 1);

  CapturedPacket forwardedPkt = pkt;
  forwardedPkt.ts = busyUntil_;  // timestamped when it leaves the mirror
  downstream_.onFrame(forwardedPkt);
  ++forwarded_;
  forwardedC_.inc();
}

NfsTransport::NfsTransport(Config config, NfsServer& server, FrameSink* tap,
                           std::uint64_t seed, MountServer* mountd,
                           Portmapper* portmap)
    : config_(config), server_(server), mountd_(mountd), portmap_(portmap),
      tap_(tap), rng_(seed) {
  nextXid_ = static_cast<std::uint32_t>(rng_.next());
}

std::uint32_t NfsTransport::getport(MicroTime& sendTs, std::uint32_t prog,
                                    std::uint32_t vers, std::uint32_t proto) {
  if (!portmap_) return 0;
  std::uint32_t xid = nextXid_++;

  // Portmap runs on its own well-known port; the tap sees the frames but
  // the NFS sniffer rightly ignores them.
  auto emitPortmapFrame = [&](MicroTime ts,
                              std::span<const std::uint8_t> body,
                              bool fromClient) {
    if (!tap_) return;
    IpAddr src = fromClient ? config_.clientIp : config_.serverIp;
    IpAddr dst = fromClient ? config_.serverIp : config_.clientIp;
    std::uint16_t sport = fromClient ? config_.clientPort : kPortmapPort;
    std::uint16_t dport = fromClient ? kPortmapPort : config_.clientPort;
    auto frame = buildUdpFrame(src, sport, dst, dport, body);
    CapturedPacket pkt;
    pkt.ts = ts;
    pkt.origLen = static_cast<std::uint32_t>(frame.size());
    pkt.data = std::move(frame);
    tap_->onFrame(pkt);
  };

  XdrEncoder callEnc;
  encodeRpcCall(callEnc, xid, kPortmapProgram, kPortmapVersion,
                static_cast<std::uint32_t>(PortmapProc::Getport),
                std::nullopt);
  callEnc.putUint32(prog);
  callEnc.putUint32(vers);
  callEnc.putUint32(proto);
  callEnc.putUint32(0);
  emitPortmapFrame(sendTs, callEnc.bytes(), true);

  MicroTime serverNow = sendTs + config_.oneWayDelay +
                        config_.serverCpuPerCall;
  XdrEncoder replyEnc;
  encodeRpcReplySuccess(replyEnc, xid);
  XdrEncoder body;
  {
    XdrEncoder argsEnc;
    argsEnc.putUint32(prog);
    argsEnc.putUint32(vers);
    argsEnc.putUint32(proto);
    argsEnc.putUint32(0);
    XdrDecoder dec(argsEnc.bytes());
    portmap_->handle(PortmapProc::Getport, dec, body);
  }
  replyEnc.putRaw(body.bytes());
  emitPortmapFrame(serverNow, replyEnc.bytes(), false);
  sendTs = serverNow + config_.oneWayDelay;

  XdrDecoder res(body.bytes());
  return res.getUint32();
}

std::optional<FileHandle> NfsTransport::mount(MicroTime& sendTs,
                                              const std::string& path,
                                              std::uint32_t uid,
                                              std::uint32_t gid) {
  if (!mountd_) return std::nullopt;
  std::uint32_t xid = nextXid_++;
  AuthUnix cred;
  cred.machineName = config_.machineName;
  cred.uid = uid;
  cred.gid = gid;

  XdrEncoder callEnc;
  encodeRpcCall(callEnc, xid, kMountProgram, kMountVersion,
                static_cast<std::uint32_t>(MountProc::Mnt), cred);
  callEnc.putString(path);
  emitFrames(sendTs, callEnc.bytes(), true);

  MicroTime serverNow = sendTs + config_.oneWayDelay +
                        config_.serverCpuPerCall;
  XdrEncoder replyEnc;
  encodeRpcReplySuccess(replyEnc, xid);
  XdrEncoder body;
  {
    XdrEncoder pathEnc;
    pathEnc.putString(path);
    XdrDecoder dec(pathEnc.bytes());
    mountd_->handle(MountProc::Mnt, dec, body);
  }
  replyEnc.putRaw(body.bytes());
  emitFrames(serverNow, replyEnc.bytes(), false);
  sendTs = serverNow + config_.oneWayDelay;

  XdrDecoder res(body.bytes());
  auto status = static_cast<MountStat>(res.getUint32());
  if (status != MountStat::Ok) return std::nullopt;
  auto fhBytes = res.getOpaque(kFhSize3);
  return FileHandle::fromBytes(fhBytes);
}

void NfsTransport::emitFrames(MicroTime ts,
                              std::span<const std::uint8_t> rpcBody,
                              bool fromClient) {
  if (!tap_) return;
  IpAddr src = fromClient ? config_.clientIp : config_.serverIp;
  IpAddr dst = fromClient ? config_.serverIp : config_.clientIp;
  std::uint16_t srcPort = fromClient ? config_.clientPort : std::uint16_t{2049};
  std::uint16_t dstPort = fromClient ? std::uint16_t{2049} : config_.clientPort;

  std::vector<std::vector<std::uint8_t>> frames;
  if (config_.useTcp) {
    auto marked = recordMark(rpcBody);
    std::uint32_t& seq = fromClient ? tcpSeqClient_ : tcpSeqServer_;
    frames = segmentTcpStream(src, srcPort, dst, dstPort, seq, marked,
                              config_.mtu - 40);
  } else {
    static std::uint16_t ipId = 1;
    frames = buildUdpFrames(src, srcPort, dst, dstPort, ipId++, rpcBody,
                            config_.mtu);
  }

  MicroTime t = ts;
  for (auto& f : frames) {
    CapturedPacket pkt;
    pkt.ts = t;
    pkt.origLen = static_cast<std::uint32_t>(f.size());
    pkt.data = std::move(f);
    tap_->onFrame(pkt);
    t += 1 + static_cast<MicroTime>(pkt.origLen / 125);  // ~1Gb/s pacing
  }
}

NfsTransport::Outcome NfsTransport::call(MicroTime sendTs,
                                         const NfsCallArgs& args,
                                         std::uint32_t uid,
                                         std::uint32_t gid) {
  Outcome out;
  out.xid = nextXid_++;
  out.sentTs = sendTs;
  ++callsSent_;

  AuthUnix cred;
  cred.stamp = static_cast<std::uint32_t>(sendTs / kMicrosPerSecond);
  cred.machineName = config_.machineName;
  cred.uid = uid;
  cred.gid = gid;
  cred.gids = {gid};

  // Encode and emit the call.
  XdrEncoder callEnc;
  NfsOp op = opOf(args);
  if (config_.nfsVers == 3) {
    Proc3 proc;
    if (!procForOp3(op, proc)) throw XdrError("op not encodable as v3");
    encodeRpcCall(callEnc, out.xid, kNfsProgram, 3,
                  static_cast<std::uint32_t>(proc), cred);
    encodeCall3(callEnc, args);
  } else {
    Proc2 proc;
    if (!procForOp2(op, proc)) throw XdrError("op not encodable as v2");
    encodeRpcCall(callEnc, out.xid, kNfsProgram, 2,
                  static_cast<std::uint32_t>(proc), cred);
    encodeCall2(callEnc, args);
  }
  emitFrames(sendTs, callEnc.bytes(), true);

  // Server executes after the one-way delay plus some think time.
  MicroTime arrive = sendTs + config_.oneWayDelay;
  MicroTime cpu = config_.serverCpuPerCall +
                  static_cast<MicroTime>(rng_.exponential(
                      static_cast<double>(config_.serverCpuPerCall)));
  MicroTime serverNow = arrive + cpu;
  out.reply = server_.handle(args, uid, gid, serverNow);

  // Encode and emit the reply.
  XdrEncoder replyEnc;
  encodeRpcReplySuccess(replyEnc, out.xid);
  if (config_.nfsVers == 3) {
    Proc3 proc;
    procForOp3(op, proc);
    encodeReply3(replyEnc, proc, out.reply);
  } else {
    Proc2 proc;
    procForOp2(op, proc);
    encodeReply2(replyEnc, proc, out.reply);
  }
  emitFrames(serverNow, replyEnc.bytes(), false);

  out.replyTs = serverNow + config_.oneWayDelay;
  return out;
}

}  // namespace nfstrace
