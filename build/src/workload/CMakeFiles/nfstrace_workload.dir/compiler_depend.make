# Empty compiler generated dependencies file for nfstrace_workload.
# This may be replaced when dependencies are built.
