# Empty compiler generated dependencies file for ablation_delegation.
# This may be replaced when dependencies are built.
