// NFS procedure numbers for versions 2 and 3, plus a version-independent
// operation taxonomy used by the trace format and the analyses.
#pragma once

#include <cstdint>
#include <string_view>

namespace nfstrace {

/// NFSv3 procedures (RFC 1813 §3).
enum class Proc3 : std::uint32_t {
  Null = 0,
  Getattr = 1,
  Setattr = 2,
  Lookup = 3,
  Access = 4,
  Readlink = 5,
  Read = 6,
  Write = 7,
  Create = 8,
  Mkdir = 9,
  Symlink = 10,
  Mknod = 11,
  Remove = 12,
  Rmdir = 13,
  Rename = 14,
  Link = 15,
  Readdir = 16,
  Readdirplus = 17,
  Fsstat = 18,
  Fsinfo = 19,
  Pathconf = 20,
  Commit = 21,
};
inline constexpr std::uint32_t kProc3Count = 22;

/// NFSv2 procedures (RFC 1094 §2.2).
enum class Proc2 : std::uint32_t {
  Null = 0,
  Getattr = 1,
  Setattr = 2,
  Root = 3,  // obsolete
  Lookup = 4,
  Readlink = 5,
  Read = 6,
  Writecache = 7,  // obsolete
  Write = 8,
  Create = 9,
  Remove = 10,
  Rename = 11,
  Link = 12,
  Symlink = 13,
  Mkdir = 14,
  Rmdir = 15,
  Readdir = 16,
  Statfs = 17,
};
inline constexpr std::uint32_t kProc2Count = 18;

/// Version-independent operation kind; both v2 and v3 procedures map here,
/// and the trace records / analyses use only this.
enum class NfsOp : std::uint8_t {
  Null,
  Getattr,
  Setattr,
  Lookup,
  Access,      // v3 only
  Readlink,
  Read,
  Write,
  Create,
  Mkdir,
  Symlink,
  Mknod,       // v3 only
  Remove,
  Rmdir,
  Rename,
  Link,
  Readdir,
  Readdirplus, // v3 only
  Fsstat,
  Fsinfo,      // v3 only
  Pathconf,    // v3 only
  Commit,      // v3 only
  Unknown,
};
inline constexpr std::size_t kNfsOpCount =
    static_cast<std::size_t>(NfsOp::Unknown) + 1;

std::string_view nfsOpName(NfsOp op);
NfsOp nfsOpFromName(std::string_view name);

NfsOp opFromProc3(Proc3 p);
NfsOp opFromProc2(Proc2 p);
/// Inverse mappings; ops with no equivalent in a version return false.
bool procForOp3(NfsOp op, Proc3& out);
bool procForOp2(NfsOp op, Proc2& out);

/// Operation classification used by the summary statistics: the paper
/// groups calls into data operations (read/write) and metadata operations
/// (everything else, dominated by getattr/lookup/access).
constexpr bool isDataOp(NfsOp op) {
  return op == NfsOp::Read || op == NfsOp::Write;
}
constexpr bool isMetadataQueryOp(NfsOp op) {
  return op == NfsOp::Getattr || op == NfsOp::Lookup || op == NfsOp::Access;
}
constexpr bool isDirectoryModOp(NfsOp op) {
  return op == NfsOp::Create || op == NfsOp::Mkdir || op == NfsOp::Symlink ||
         op == NfsOp::Mknod || op == NfsOp::Remove || op == NfsOp::Rmdir ||
         op == NfsOp::Rename || op == NfsOp::Link;
}

}  // namespace nfstrace
