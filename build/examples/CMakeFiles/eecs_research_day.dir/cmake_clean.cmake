file(REMOVE_RECURSE
  "CMakeFiles/eecs_research_day.dir/eecs_research_day.cpp.o"
  "CMakeFiles/eecs_research_day.dir/eecs_research_day.cpp.o.d"
  "eecs_research_day"
  "eecs_research_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eecs_research_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
