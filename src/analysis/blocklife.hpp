// Block birth/death accounting with Roselli's create-based method
// (§5.2, Table 4, Figure 3).
//
// Phase 1 records both block births and deaths; Phase 2 (the "end margin")
// records only deaths, so blocks born late in Phase 1 get a fair chance to
// die.  Lifespans longer than the Phase 2 length are censored into the
// "end surplus" to remove sampling bias.
//
// Births happen when a write or truncate-up allocates a block:
//   * Write     — the block's bytes were actually written;
//   * Extension — the block appeared because the file grew past it without
//     it being written (lseek-past-EOF; the paper notes this category is
//     mildly exaggerated because a gapped write attributes every new block
//     to extension).
// Deaths:
//   * Overwrite — a live block is written again (new version born);
//   * Truncate  — setattr shrank the file over it;
//   * Delete    — the file was removed.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "analysis/pathrec.hpp"
#include "trace/record.hpp"
#include "util/histogram.hpp"

namespace nfstrace {

struct BlockLifeConfig {
  MicroTime phase1Start = 0;
  MicroTime phase1Length = kMicrosPerDay;
  MicroTime phase2Length = kMicrosPerDay;  // end margin
  std::uint32_t blockSize = kNfsBlockSize;
};

struct BlockLifeStats {
  std::uint64_t births = 0;
  std::uint64_t birthsWrite = 0;
  std::uint64_t birthsExtension = 0;
  std::uint64_t deaths = 0;  // deaths of phase-1-born blocks within margin
  std::uint64_t deathsOverwrite = 0;
  std::uint64_t deathsTruncate = 0;
  std::uint64_t deathsDelete = 0;
  std::uint64_t endSurplus = 0;  // born in phase 1, outlived the margin

  double surplusFraction() const {
    return births ? static_cast<double>(endSurplus) /
                        static_cast<double>(births)
                  : 0.0;
  }
};

class BlockLifeAnalyzer {
 public:
  explicit BlockLifeAnalyzer(const BlockLifeConfig& config);

  /// Feed records in time order.  The analyzer maintains its own
  /// hierarchy reconstruction so REMOVE records can be resolved to the
  /// handle whose blocks die.
  void observe(const TraceRecord& rec);

  /// Close the analysis: everything still alive that was born in phase 1
  /// becomes end surplus.
  void finish();

  const BlockLifeStats& stats() const { return stats_; }
  /// Lifetimes (seconds) of phase-1-born blocks that died within the
  /// margin — the Figure 3 CDF.
  EmpiricalCdf& lifetimes() { return lifetimes_; }

 private:
  struct FileState {
    std::uint64_t sizeBytes = 0;
    /// Birth time per block; kUntracked for blocks born outside phase 1.
    std::vector<MicroTime> birth;
  };
  static constexpr MicroTime kUntracked = -1;

  void ensureSize(FileState& st, std::uint64_t newSize, MicroTime now,
                  bool writtenNotExtended, std::uint64_t writeFromBlock);
  void killBlock(FileState& st, std::size_t block, MicroTime now,
                 std::uint64_t* deathCounter);
  void recordBirth(FileState& st, std::size_t block, MicroTime now,
                   bool isWrite);
  bool inPhase1(MicroTime t) const {
    return t >= config_.phase1Start &&
           t < config_.phase1Start + config_.phase1Length;
  }
  bool beforeEnd(MicroTime t) const {
    return t < config_.phase1Start + config_.phase1Length +
                   config_.phase2Length;
  }

  BlockLifeConfig config_;
  BlockLifeStats stats_;
  EmpiricalCdf lifetimes_;
  PathReconstructor pathrec_;
  std::unordered_map<FileHandle, FileState, FileHandleHash> files_;
  bool finished_ = false;
};

/// Run the analyzer over a full trace.
BlockLifeStats analyzeBlockLife(const std::vector<TraceRecord>& records,
                                const BlockLifeConfig& config,
                                EmpiricalCdf* lifetimesOut = nullptr);

}  // namespace nfstrace
