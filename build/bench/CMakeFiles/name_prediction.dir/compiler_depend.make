# Empty compiler generated dependencies file for name_prediction.
# This may be replaced when dependencies are built.
