file(REMOVE_RECURSE
  "CMakeFiles/anon_test.dir/anon_test.cpp.o"
  "CMakeFiles/anon_test.dir/anon_test.cpp.o.d"
  "anon_test"
  "anon_test.pdb"
  "anon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
