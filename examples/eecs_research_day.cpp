// Simulate a day of the EECS research workload and reproduce its
// signature: metadata-dominated traffic from cache revalidation, writes
// outnumbering reads, and sub-second block lifetimes from unbuffered logs.
#include <cstdio>

#include "analysis/blocklife.hpp"
#include "analysis/summary.hpp"
#include "workload/eecs.hpp"
#include "workload/sim.hpp"

using namespace nfstrace;

int main() {
  SimEnvironment::Config simCfg;
  simCfg.fsConfig.fsid = 1;
  simCfg.clientHosts = 8;      // individual workstations
  simCfg.useTcp = false;       // EECS clients use UDP
  simCfg.mtu = kStandardMtu;
  SimEnvironment env(simCfg);

  EecsConfig wlCfg;
  wlCfg.users = 20;
  EecsWorkload workload(wlCfg, env);

  MicroTime start = days(1);
  std::printf("simulating one EECS weekday (20 users)...\n");
  workload.setup(start);
  workload.run(start, start + days(1));
  env.finishCapture();

  auto& records = env.records();
  auto s = summarize(records);

  std::printf("\n%llu NFS calls captured\n",
              static_cast<unsigned long long>(s.totalOps));
  std::printf("operation mix:\n");
  for (NfsOp op : {NfsOp::Getattr, NfsOp::Lookup, NfsOp::Access, NfsOp::Read,
                   NfsOp::Write, NfsOp::Create, NfsOp::Remove,
                   NfsOp::Commit}) {
    auto n = s.opCounts[static_cast<std::size_t>(op)];
    std::printf("  %-8s %8llu  (%.1f%%)\n",
                std::string(nfsOpName(op)).c_str(),
                static_cast<unsigned long long>(n),
                s.totalOps ? 100.0 * static_cast<double>(n) /
                                 static_cast<double>(s.totalOps)
                           : 0.0);
  }
  std::printf(
      "\nmetadata ops %.1f%% of calls (paper: EECS is predominantly file\n"
      "attribute calls -- clients checking whether cached copies are still\n"
      "valid); R/W op ratio %.2f, byte ratio %.2f (paper: 0.69 / 0.56 --\n"
      "writes outnumber reads, unlike every earlier research trace)\n",
      100.0 * (1.0 - s.dataOpFraction()), s.readWriteOpRatio(),
      s.readWriteByteRatio());

  BlockLifeConfig blCfg;
  blCfg.phase1Start = start + hours(6);
  blCfg.phase1Length = hours(9);
  blCfg.phase2Length = hours(9);
  EmpiricalCdf lifetimes;
  auto bl = analyzeBlockLife(records, blCfg, &lifetimes);
  if (!lifetimes.empty()) {
    std::printf(
        "\nblock lifetimes: %.1f%% die within one second (paper: >50%%,\n"
        "mostly unbuffered log/index files); deaths split %.0f%%/%.0f%%\n"
        "between overwrites and deletions (paper: 42%%/52%%)\n",
        100.0 * lifetimes.fractionAtOrBelow(1.0),
        bl.deaths ? 100.0 * static_cast<double>(bl.deathsOverwrite) /
                        static_cast<double>(bl.deaths)
                  : 0.0,
        bl.deaths ? 100.0 * static_cast<double>(bl.deathsDelete) /
                        static_cast<double>(bl.deaths)
                  : 0.0);
  }
  std::printf(
      "\nThe paper's take: if EECS is the typical departmental server,\n"
      "not much has changed since Ousterhout's 1985 prediction -- caches\n"
      "absorb reads, writes become the bottleneck, and NFSv4-style\n"
      "delegations could eliminate most of the validation traffic.\n");
  return 0;
}
