// Quickstart: simulate one hour of the CAMPUS email system, capture its
// NFS traffic with the passive sniffer, anonymize it, and print summary
// statistics — the whole pipeline in ~60 lines.
#include <cstdio>

#include "analysis/summary.hpp"
#include "anon/anon.hpp"
#include "trace/tracefile.hpp"
#include "workload/campus.hpp"
#include "workload/sim.hpp"

using namespace nfstrace;

int main() {
  // 1. Build the simulated environment: one NFS server (a 53 GB CAMPUS
  //    disk array with 50 MB user quotas) and three client hosts (SMTP,
  //    POP, login), captured by a lossless tap.
  SimEnvironment::Config simCfg;
  simCfg.fsConfig.fsid = 2;
  simCfg.fsConfig.defaultQuotaBytes = 50ULL << 20;
  simCfg.clientHosts = 3;
  simCfg.useTcp = true;         // CAMPUS uses NFSv3 over TCP
  simCfg.mtu = kJumboMtu;       // ... on jumbo-frame gigabit Ethernet
  SimEnvironment env(simCfg);

  // 2. Populate 40 users and run one peak hour (Monday 10am-11am).
  CampusConfig wlCfg;
  wlCfg.users = 40;
  CampusWorkload workload(wlCfg, env);
  MicroTime start = days(1) + hours(10);
  workload.setup(start);
  workload.run(start, start + hours(1));
  env.finishCapture();

  // 3. The sniffer produced trace records; anonymize and save them.
  auto& records = env.records();
  Anonymizer anon{Anonymizer::Config{}};
  TraceWriter writer("/tmp/quickstart.trace");
  for (const auto& rec : records) writer.write(anon.anonymize(rec));

  // 4. Report.
  TraceSummary s = summarize(records);
  std::printf("captured %llu NFS calls (%llu without replies)\n",
              static_cast<unsigned long long>(s.totalOps),
              static_cast<unsigned long long>(s.repliesMissing));
  std::printf("  reads:  %8llu ops  %10.1f MB\n",
              static_cast<unsigned long long>(s.readOps),
              static_cast<double>(s.bytesRead) / 1e6);
  std::printf("  writes: %8llu ops  %10.1f MB\n",
              static_cast<unsigned long long>(s.writeOps),
              static_cast<double>(s.bytesWritten) / 1e6);
  std::printf("  read/write byte ratio: %.2f   op ratio: %.2f\n",
              s.readWriteByteRatio(), s.readWriteOpRatio());
  std::printf("  data ops: %.1f%%   metadata ops: %.1f%%\n",
              100.0 * s.dataOpFraction(), 100.0 * (1 - s.dataOpFraction()));
  std::printf("  deliveries=%llu popChecks=%llu sessions=%llu\n",
              static_cast<unsigned long long>(workload.deliveries()),
              static_cast<unsigned long long>(workload.popChecks()),
              static_cast<unsigned long long>(workload.sessions()));
  std::printf("anonymized trace written to /tmp/quickstart.trace\n");
  return 0;
}
