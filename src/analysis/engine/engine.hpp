// Single-pass, multi-consumer, parallel analysis driver.
//
// Legacy analysis tooling scanned the trace once per analysis — eight
// decodes of the same bytes for the standard table set.  The engine
// decodes each batch exactly once and fans it out to every registered
// AnalysisPass:
//
//   reader thread:  TraceReader::nextBatch -> refcounted batch slot
//                   -> one pointer push per worker SPSC ring
//   worker w:       mergeable passes   — observe(batch, w) iff
//                                        batch.seq % workers == w
//                   sequential passes  — pass p is pinned to worker
//                                        p % workers and sees every batch
//                                        in stream order
//   finalize:       passes finalize in parallel; mergeable passes fold
//                   their shards with exact (integer/min-max/union)
//                   merges
//
// Determinism: batches are numbered by the reader, shard assignment is
// seq % workers, and every merge is exact — so results are byte-identical
// to the serial path at any worker count (pinned in tests/engine_test).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/engine/pass.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "trace/tracefile.hpp"

namespace nfstrace {

class AnalysisEngine {
 public:
  struct Config {
    /// Worker threads; 0 or 1 runs the scan inline (no threads).
    std::size_t workers = 1;
    /// Records per batch.
    std::size_t batchRecords = TraceBatch::kDefaultCapacity;
    /// In-flight batches per worker ring; the pool holds
    /// workers * queueBatches + 1 slots.
    std::size_t queueBatches = 8;
    /// Alert when the interners grow past this many ids combined
    /// (engine.intern_high_water) — a runaway namespace or a corrupt
    /// trace interning garbage.
    std::size_t internHighWater = 1u << 20;
    /// Alert (engine.merge_skew) when the busiest mergeable shard saw
    /// more than this factor times the records of the laziest: the
    /// deterministic seq % workers deal went pathological.
    double mergeSkewFactor = 8.0;
    /// Decode threads for the extent-parallel scan runFile() takes on
    /// indexed v2 input; 0 or 1 decodes inline.  Independent of
    /// `workers`: on the extent path the decode threads *are* the
    /// observers (mergeable passes run on them, sequential passes on
    /// the in-order consumer), so `workers` is not used there.
    std::size_t decodeThreads = 1;
    /// Pushdown filter.  Non-trivial predicates filter record-by-record
    /// on every path, and additionally prune whole extents via the v2
    /// footer zone maps on runFile()'s extent path.
    ScanPredicate predicate;
  };

  struct Stats {
    std::uint64_t batches = 0;
    std::uint64_t records = 0;
    std::uint64_t resyncCuts = 0;  // batches cut at a recovery resync
    std::size_t internedNames = 0;
    std::size_t internedHandles = 0;
    std::uint64_t mergeSkewAlerts = 0;
    std::uint64_t internHighWaterAlerts = 0;
    /// Extent path only: footer entries seen / skipped by zone maps.
    std::uint64_t extentsTotal = 0;
    std::uint64_t extentsPruned = 0;
    /// Records decoded but rejected by the record-level predicate.
    std::uint64_t recordsFiltered = 0;
  };

  AnalysisEngine();
  explicit AnalysisEngine(const Config& config);

  /// Register a pass (not owned; must outlive run()).
  void addPass(AnalysisPass* pass);
  void addPasses(const std::vector<AnalysisPass*>& passes);

  /// Bind self-monitoring: batch/record counters, intern-table gauges,
  /// per-pass observe-ns histograms, and the two alert counters.  Call
  /// after the passes are registered.
  void attachMetrics(obs::Registry& registry);

  /// Bind a flight recorder: decode/pass-observe spans, pool- and
  /// ring-wait stall episodes, and recovery-cut instants land on
  /// "engine.reader" / "engine.worker<w>" tracks.
  void attachFlight(obs::FlightRecorder& flight);

  /// Drive every pass over the reader's stream in one scan (prepare ->
  /// observe* -> finalize).  Reusable: each call re-prepares the passes.
  const Stats& run(TraceReader& reader);

  /// Scan a trace file, picking the fastest applicable path: indexed v2
  /// input with decodeThreads > 1 or a non-trivial predicate goes
  /// through the extent-parallel scanner (zone-map pruning + per-extent
  /// decode fan-out); everything else — v1 formats, index-less or torn
  /// v2, recover mode — falls back to the classic reader scan.  Reports
  /// are byte-identical across paths and thread counts.
  const Stats& runFile(const std::string& path, bool recover = false);

  const Stats& stats() const { return stats_; }

 private:
  void runSerial(TraceReader& reader);
  void runParallel(TraceReader& reader);
  /// The extent scheduler (src/analysis/engine/extent_scan.cpp).  The
  /// caller owns the global interners so they outlive the scan into
  /// finalize (passes hold pointers into them).
  void runExtentParallel(const std::string& path,
                         const std::vector<tracev2::ChainedExtent>& extents,
                         StringInterner& names, StringInterner& handles);
  /// Drop records failing config_.predicate, compacting the batch in
  /// place; returns how many were dropped.
  std::size_t applyPredicate(TraceBatch& batch) const;
  void finalizeAll(std::size_t parallelism);
  void noteScanDone(const std::vector<std::uint64_t>& shardRecords,
                    std::size_t internedNames, std::size_t internedHandles);

  Config config_;
  std::vector<AnalysisPass*> passes_;
  Stats stats_;
  obs::CounterHandle batchesC_;
  obs::CounterHandle recordsC_;
  obs::CounterHandle resyncC_;
  obs::CounterHandle mergeSkewC_;
  obs::CounterHandle internHighC_;
  obs::GaugeHandle internNamesG_;
  obs::GaugeHandle internHandlesG_;
  std::vector<obs::Histogram*> passHist_;  // parallel to passes_
  obs::FlightRecorder* flight_ = nullptr;
  obs::ThreadLog* readerFlog_ = nullptr;
};

}  // namespace nfstrace
