# Empty compiler generated dependencies file for fig4_weekly_pattern.
# This may be replaced when dependencies are built.
