// Flow-hash partitioning for the parallel trace pipeline.
//
// The shard key is the *unordered* pair of IPv4 endpoint addresses.  That
// single choice makes every stateful decode structure shard-local:
//
//  * XID call/reply pairing — a call (client -> server) and its reply
//    (server -> client) carry the same address pair, so the sniffer that
//    saw the call also sees the reply.  With one server this is exactly
//    "shard by RPC client address".
//  * IPv4 fragment reassembly — fragments are keyed (src, dst, ipId) and
//    carry the addresses in every fragment, even when the transport ports
//    are only present in the first one.
//  * TCP stream reassembly — both directions of a connection map to the
//    same shard, so record-mark scanning never splits across workers.
//
// The frame peek reads the addresses straight out of the IPv4 header
// without a full parse: the partitioner runs once per frame on the
// capture thread and must cost nanoseconds, not a protocol decode.
#pragma once

#include <cstdint>
#include <span>

#include "net/packet.hpp"
#include "pcap/pcap.hpp"
#include "util/hash.hpp"

namespace nfstrace {

/// Direction-independent hash of an address pair: both directions of a
/// conversation land on the same value.
constexpr std::uint64_t flowHash(IpAddr a, IpAddr b) {
  IpAddr lo = a < b ? a : b;
  IpAddr hi = a < b ? b : a;
  return mix64((static_cast<std::uint64_t>(hi) << 32) | lo);
}

/// Extract src/dst from an Ethernet/IPv4 frame without a full parse.
/// Returns false for frames that are not plain IPv4 (they are routed to
/// shard 0, where the sniffer counts them as undecodable, exactly as the
/// serial sniffer would).
inline bool peekIpPair(std::span<const std::uint8_t> frame, IpAddr& src,
                       IpAddr& dst) {
  // Ethernet header (14) + the IPv4 header through the destination
  // address (20) must be present.
  if (frame.size() < kEthHeaderLen + 20) return false;
  if (frame[12] != 0x08 || frame[13] != 0x00) return false;  // not IPv4
  if ((frame[kEthHeaderLen] >> 4) != 4) return false;
  auto rd32 = [&](std::size_t off) {
    return (static_cast<std::uint32_t>(frame[off]) << 24) |
           (static_cast<std::uint32_t>(frame[off + 1]) << 16) |
           (static_cast<std::uint32_t>(frame[off + 2]) << 8) |
           static_cast<std::uint32_t>(frame[off + 3]);
  };
  src = rd32(kEthHeaderLen + 12);
  dst = rd32(kEthHeaderLen + 16);
  return true;
}

/// Shard index for a captured frame.
inline int shardOfFrame(const CapturedPacket& pkt, int shards) {
  if (shards <= 1) return 0;
  IpAddr src = 0, dst = 0;
  if (!peekIpPair(pkt.data, src, dst)) return 0;
  return static_cast<int>(flowHash(src, dst) %
                          static_cast<std::uint64_t>(shards));
}

}  // namespace nfstrace
