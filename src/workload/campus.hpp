// The CAMPUS workload: the central email system (§3.2, §6.1.2).
//
// ~All traffic is email.  Three NFS client hosts stand in for the SMTP,
// POP, and general-login servers.  Per user and day (modulated by the
// weekly schedule): message deliveries (lock, sync append, unlock), POP
// polls (lock, fresh getattr, whole-inbox re-read if the mtime moved,
// unlock), and interactive mail sessions (read dot files, scan the inbox,
// periodic rescans, composer temp files, periodic expunges that rewrite
// the mailbox in place, exit rewrite).
//
// The numbers are scaled-down per-array equivalents; the *shape* targets
// are the paper's: R/W byte ratio ~3, >95% of data bytes in mailboxes,
// ~50% of accessed files being locks, 96% of created+deleted files being
// zero-length locks living <0.4s, block half-life 10-15 minutes with >99%
// of deaths by overwrite.
#pragma once

#include <queue>
#include <string>
#include <vector>

#include "workload/schedule.hpp"
#include "workload/sim.hpp"

namespace nfstrace {

struct CampusConfig {
  int users = 120;
  /// Lognormal inbox size: median ~2 MB as the paper reports.
  double mailboxMedianBytes = 2.0 * 1024 * 1024;
  double mailboxSigma = 0.9;
  /// Peak-hour Poisson rates per user (thinned by the weekly schedule).
  double deliveriesPerUserPeakHourly = 1.9;
  double popChecksPerUserPeakHourly = 3.8;
  double sessionsPerUserPeakHourly = 0.45;
  /// Message size: lognormal, median ~4 KB, heavy tail.
  double messageMedianBytes = 4096;
  double messageSigma = 1.2;
  MicroTime sessionMeanLength = minutes(25);
  MicroTime rescanInterval = minutes(3);
  MicroTime expungeInterval = minutes(15);
  double composePerSession = 0.8;
  std::uint64_t seed = 2001;

  /// Load rates from a key=value file (users, deliveries_per_user_hour,
  /// pop_checks_per_user_hour, sessions_per_user_hour, mailbox_median_kb,
  /// message_median_bytes, session_mean_minutes, expunge_minutes, seed);
  /// unset keys keep the defaults above.
  static CampusConfig fromFile(const std::string& path);
};

class CampusWorkload {
 public:
  CampusWorkload(CampusConfig config, SimEnvironment& env);

  /// Populate home directories, inboxes, and dot files (pre-trace state).
  void setup(MicroTime t0);
  /// Generate events from `start` to `end`.
  void run(MicroTime start, MicroTime end);

  std::uint64_t deliveries() const { return deliveries_; }
  std::uint64_t popChecks() const { return popChecks_; }
  std::uint64_t sessions() const { return sessions_; }

 private:
  enum class EventType : std::uint8_t {
    Delivery,
    PopCheck,
    SessionStart,
    SessionStep,
  };
  struct Event {
    MicroTime t;
    EventType type;
    int user;
    bool operator>(const Event& o) const { return t > o.t; }
  };
  struct Session {
    bool active = false;
    MicroTime endTime = 0;
    MicroTime nextRescan = 0;
    MicroTime nextExpunge = 0;
    MicroTime lastSeenMtime = -1;
    int composePending = 0;
  };
  struct User {
    std::string home;       // absolute path of the home directory
    FileHandle homeFh;      // resolved lazily via the login client
    FileHandle inboxFh;
    FileHandle folderFh;    // mail/saved.mbox
    std::uint64_t folderSize = 0;
    MicroTime popLastMtime = -1;
    Session session;
  };

  // Client hosts.
  NfsClient& smtp() { return env_.client(0); }
  NfsClient& pop() { return env_.client(1); }
  NfsClient& login() { return env_.client(2 + 0); }

  bool ensureHandles(NfsClient& client, MicroTime& now, User& u);
  bool withLock(NfsClient& client, MicroTime& now, User& u,
                const std::function<void(MicroTime&)>& body);
  void doDelivery(MicroTime t, int user);
  void doPopCheck(MicroTime t, int user);
  void doSessionStart(MicroTime t, int user);
  void doSessionStep(MicroTime t, int user);
  void rescanInbox(NfsClient& client, MicroTime& now, User& u,
                   MicroTime* mtimeSlot);
  void expungeInbox(NfsClient& client, MicroTime& now, User& u);
  void composeMessage(NfsClient& client, MicroTime& now, User& u);
  /// Browse a message inside a saved-mail folder: a partial sequential
  /// read somewhere in a large file (the paper's sequential sub-runs).
  void readFolderMessage(NfsClient& client, MicroTime& now, User& u);
  /// Rewrite small config files at logout (.pinerc, .addressbook).
  void saveDotFiles(NfsClient& client, MicroTime& now, User& u);
  void scheduleNext(EventType type, int user, MicroTime after, double rate);

  CampusConfig config_;
  SimEnvironment& env_;
  WeeklySchedule schedule_;
  Rng rng_;
  std::vector<User> users_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  MicroTime endTime_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t popChecks_ = 0;
  std::uint64_t sessions_ = 0;
  std::uint64_t lockContention_ = 0;
  int composeCounter_ = 0;
  int lockCounter_ = 0;
};

}  // namespace nfstrace
