#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace nfstrace {

LogHistogram::LogHistogram(double base, double ratio, std::size_t buckets)
    : base_(base), logRatio_(std::log(ratio)), counts_(buckets, 0.0) {}

std::size_t LogHistogram::bucketFor(double value) const {
  if (value < base_) return counts_.size();  // signals underflow
  auto i = static_cast<std::size_t>(std::log(value / base_) / logRatio_);
  return std::min(i, counts_.size() - 1);
}

void LogHistogram::add(double value, double weight) {
  total_ += weight;
  std::size_t i = bucketFor(value);
  if (i >= counts_.size()) {
    underflow_ += weight;
  } else {
    counts_[i] += weight;
  }
}

double LogHistogram::bucketLow(std::size_t i) const {
  return base_ * std::exp(logRatio_ * static_cast<double>(i));
}

double LogHistogram::cumulativeAt(double x) const {
  if (total_ <= 0.0) return 0.0;
  double acc = underflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (bucketHigh(i) <= x) {
      acc += counts_[i];
    } else if (bucketLow(i) < x) {
      // Partial bucket: interpolate linearly in log-space position.
      double frac = (std::log(x) - std::log(bucketLow(i))) / logRatio_;
      acc += counts_[i] * std::clamp(frac, 0.0, 1.0);
    }
  }
  return acc / total_;
}

double LogHistogram::quantile(double fraction) const {
  if (total_ <= 0.0) return 0.0;
  double target = fraction * total_;
  double acc = underflow_;
  if (acc >= target) return base_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (acc + counts_[i] >= target && counts_[i] > 0.0) {
      double frac = (target - acc) / counts_[i];
      return bucketLow(i) * std::exp(logRatio_ * frac);
    }
    acc += counts_[i];
  }
  return bucketHigh(counts_.size() - 1);
}

void EmpiricalCdf::ensureSorted() {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::fractionAtOrBelow(double x) {
  if (values_.empty()) return 0.0;
  ensureSorted();
  auto it = std::upper_bound(values_.begin(), values_.end(), x);
  return static_cast<double>(it - values_.begin()) /
         static_cast<double>(values_.size());
}

double EmpiricalCdf::quantile(double q) {
  if (values_.empty()) return 0.0;
  ensureSorted();
  q = std::clamp(q, 0.0, 1.0);
  auto idx = static_cast<std::size_t>(q * static_cast<double>(values_.size() - 1));
  return values_[idx];
}

double EmpiricalCdf::mean() const {
  if (values_.empty()) return 0.0;
  return std::accumulate(values_.begin(), values_.end(), 0.0) /
         static_cast<double>(values_.size());
}

}  // namespace nfstrace
