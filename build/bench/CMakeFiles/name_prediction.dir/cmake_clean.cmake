file(REMOVE_RECURSE
  "CMakeFiles/name_prediction.dir/name_prediction.cpp.o"
  "CMakeFiles/name_prediction.dir/name_prediction.cpp.o.d"
  "name_prediction"
  "name_prediction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/name_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
