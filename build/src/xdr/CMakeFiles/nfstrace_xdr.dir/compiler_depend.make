# Empty compiler generated dependencies file for nfstrace_xdr.
# This may be replaced when dependencies are built.
