// Plain-text table rendering for the bench binaries, which reprint the
// paper's tables from regenerated data.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nfstrace {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void addRow(std::vector<std::string> cells);
  /// Insert a horizontal rule before the next row.
  void addRule();

  std::string render() const;

  /// Number formatting helpers shared by the benches.
  static std::string fixed(double v, int decimals);
  static std::string percent(double fraction, int decimals = 1);
  static std::string withCommas(std::uint64_t v);

 private:
  std::vector<std::string> header_;
  struct Row {
    std::vector<std::string> cells;
    bool rule_before = false;
  };
  std::vector<Row> rows_;
  bool pending_rule_ = false;
};

}  // namespace nfstrace
