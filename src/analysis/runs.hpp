// Run detection and access-pattern classification (§4.2) plus the
// sequentiality metric (§6.4).
//
// NFS has no open/close, so accesses to a file are split into "runs" with
// two break rules: the previous access referenced end-of-file, or the
// previous access is older than 30 seconds.  Each run is then classified:
//
//   sequential — every access begins where the previous one ended
//                (offsets/counts rounded to 8 KB blocks; in "processed"
//                mode forward jumps of < 10 blocks are tolerated);
//   entire     — sequential and covering offset 0 through EOF;
//   random     — everything else;
//
// and typed read / write / read-write by the operations it contains.
//
// The sequentiality metric is the fraction of a run's block accesses that
// are k-consecutive (within k blocks of the preceding access) — Keith
// Smith's layout score adapted to access streams.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace nfstrace {

enum class RunType : std::uint8_t { Read, Write, ReadWrite };
enum class RunPattern : std::uint8_t { Entire, Sequential, Random };

struct Run {
  FileHandle fh;
  RunType type = RunType::Read;
  RunPattern pattern = RunPattern::Sequential;
  MicroTime start = 0;
  MicroTime end = 0;
  std::uint64_t bytesAccessed = 0;  // sum of access counts
  std::uint64_t fileSize = 0;       // best-known size during the run
  std::uint32_t accesses = 0;
  double seqMetricStrict = 0.0;  // k = 0 (small jumps not allowed)
  double seqMetricLoose = 0.0;   // k = 10 blocks (small jumps allowed)
};

struct RunDetectorConfig {
  /// Break a run when the previous access is older than this.
  MicroTime idleBreak = 30 * kMicrosPerSecond;
  /// Block size used for rounding offsets/counts.
  std::uint32_t blockSize = kNfsBlockSize;
  /// Small-jump tolerance in blocks for the *classification* ("processed"
  /// mode of Table 3).  Zero reproduces the raw columns.
  std::uint32_t jumpTolerance = 10;
  /// k for the loose sequentiality metric.
  std::uint32_t kConsecutive = 10;
};

/// Split trace records (in list order — apply the reorder-window sort
/// first) into runs.
std::vector<Run> detectRuns(const std::vector<TraceRecord>& records,
                            const RunDetectorConfig& config = {});

/// Aggregate of Table 3: percentages by type and pattern.
struct RunPatternSummary {
  // Fractions of all runs by type:
  double readFrac = 0, writeFrac = 0, rwFrac = 0;
  // Within each type, fractions by pattern (entire/sequential/random):
  double readEntire = 0, readSeq = 0, readRandom = 0;
  double writeEntire = 0, writeSeq = 0, writeRandom = 0;
  double rwEntire = 0, rwSeq = 0, rwRandom = 0;
};

RunPatternSummary summarizeRunPatterns(const std::vector<Run>& runs);

/// Figure 2: bytes accessed by category, bucketed by file size.
struct SizeBucketedBytes {
  std::vector<double> bucketTopBytes;  // bucket upper edges (log scale)
  std::vector<double> total;           // cumulative % of bytes accessed
  std::vector<double> entire;
  std::vector<double> sequential;
  std::vector<double> random;
};

SizeBucketedBytes bytesByFileSize(const std::vector<Run>& runs);

/// Figure 5 (top): average sequentiality metric bucketed by run size.
struct SeqMetricBySize {
  std::vector<double> bucketTopBytes;
  std::vector<double> meanLoose;   // small jumps allowed (k = 10)
  std::vector<double> meanStrict;  // small jumps not allowed (k = 0)
  std::vector<std::uint64_t> runCount;
};

SeqMetricBySize sequentialityBySize(const std::vector<Run>& runs,
                                    bool writesOnly, bool readsOnly);

}  // namespace nfstrace
