// Extent-parallel scan: the v2 decode stage, parallelized across the
// footer index.
//
// The classic engine paths funnel every byte through one reader thread;
// BENCH_format pins a raw v2 extent scan near 12M rec/s while the
// 8-pass engine sits at ~300k — the decode is the serialized stage.
// Here the footer index turns the file into a bag of independently
// decodable extents:
//
//   scheduler:  zone-map pruning (ScanPredicate vs per-extent
//               ts/uid/fileId ranges + op bitmask) selects surviving
//               extents; batch sequence numbers are precomputed from
//               the footer's cumulative record counts, so numbering is
//               identical at any thread count
//   worker w:   claims extents off an atomic cursor, freads + CRC-checks
//               the payload on its own FILE* (I/O overlaps), then takes
//               a *dictionary ticket* — global interner writes happen
//               in extent order, so interned ids match a serial scan
//               exactly — and decodes batches into pooled slots.
//               Mergeable passes observe right here (shard w; their
//               folds are exact, so the nondeterministic partition
//               cannot show in results).
//   consumer:   the calling thread pops batches from a bounded reorder
//               queue in sequence order and drives the sequential
//               passes — the same every-batch-in-stream-order contract
//               the classic paths give them.
//
// Strict-mode only: any damaged extent throws (like a strict classic
// scan); recover-mode scans take the classic path in runFile().
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/engine/engine.hpp"
#include "analysis/engine/extent_scan.hpp"
#include "obs/timer.hpp"
#include "util/crc32.hpp"

namespace nfstrace {
namespace {

/// One surviving extent, with its precomputed global batch numbering.
struct ExtentTask {
  tracev2::ExtentInfo info;
  int schema = 4;
  std::uint64_t firstSeq = 0;   // global seq of this extent's first batch
  std::uint32_t batches = 0;    // ceil(records / batchRecords)
};

/// A pooled batch plus the op bitmask of the extent it came from (lets
/// the consumer skip sequential passes whose opMask() cannot overlap).
struct ScanSlot {
  TraceBatch batch;
  std::uint32_t opMask = 0;
};

struct FileCloser {
  std::FILE* f;
  ~FileCloser() {
    if (f) std::fclose(f);
  }
};

void ensureCapacity(TraceBatch& batch, std::size_t n) {
  if (batch.records.size() < n) {
    batch.records.resize(n);
    batch.fhId.resize(n);
    batch.fh2Id.resize(n);
    batch.resFhId.resize(n);
    batch.nameId.resize(n);
    batch.name2Id.resize(n);
  }
}

/// fread + validate one extent (header, payload, CRC) into the
/// decoder's buffer.  Throws on any mismatch — on this path the footer
/// already promised the extent, so damage is corruption, not a tail.
tracev2::ExtentHeader readExtent(std::FILE* f, const ExtentTask& task,
                                 tracev2::ExtentDecoder& dec) {
  unsigned char hdrBuf[tracev2::kExtentHeaderBytes];
  tracev2::ExtentHeader hdr;
  if (std::fseek(f, static_cast<long>(task.info.offset), SEEK_SET) != 0 ||
      std::fread(hdrBuf, 1, sizeof(hdrBuf), f) != sizeof(hdrBuf) ||
      !tracev2::parseExtentHeader(hdrBuf, hdr) ||
      hdr.records != task.info.records) {
    throw std::runtime_error("extent scan: bad extent header");
  }
  auto& buf = dec.buffer();
  if (buf.size() < hdr.payloadBytes) buf.resize(hdr.payloadBytes);
  if (std::fread(buf.data(), 1, hdr.payloadBytes, f) != hdr.payloadBytes) {
    throw std::runtime_error("extent scan: truncated extent payload");
  }
  if (crc32(buf.data(), hdr.payloadBytes) != hdr.payloadCrc) {
    throw std::runtime_error("extent scan: extent payload CRC mismatch");
  }
  return hdr;
}

}  // namespace

void AnalysisEngine::runExtentParallel(
    const std::string& path,
    const std::vector<tracev2::ChainedExtent>& extents, StringInterner& names,
    StringInterner& handles) {
  const std::size_t decodeWorkers =
      std::max<std::size_t>(config_.decodeThreads, 1);
  const std::size_t batchRecords =
      std::max<std::size_t>(config_.batchRecords, 1);
  const ScanPredicate& pred = config_.predicate;
  const bool havePred = !pred.trivial();

  // Zone-map pruning + batch numbering.  Sequence numbers derive from
  // the footer's cumulative record counts over *surviving* extents, so
  // they are a pure function of (index, predicate) — identical at any
  // thread count, which is what keeps sequential passes byte-identical.
  std::vector<ExtentTask> tasks;
  tasks.reserve(extents.size());
  std::uint64_t seq = 0;
  stats_.extentsTotal = extents.size();
  for (const tracev2::ChainedExtent& ce : extents) {
    if (ce.info.records == 0) continue;
    if (havePred && !pred.mayMatch(ce.info)) {
      ++stats_.extentsPruned;
      continue;
    }
    ExtentTask t;
    t.info = ce.info;
    t.schema = ce.schema;
    t.firstSeq = seq;
    t.batches = static_cast<std::uint32_t>(
        (ce.info.records + batchRecords - 1) / batchRecords);
    seq += t.batches;
    tasks.push_back(t);
  }
  const std::uint64_t totalBatches = seq;

  std::vector<std::uint64_t> shardRecords(decodeWorkers, 0);

  if (decodeWorkers <= 1 || tasks.size() <= 1) {
    // Inline path: prune + filter without thread or reorder machinery
    // (also what a single surviving extent degenerates to).
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) throw std::runtime_error("extent scan: cannot open " + path);
    FileCloser closer{f};
    tracev2::ExtentDecoder dec;
    int curSchema = -1;
    TraceBatch batch;
    ensureCapacity(batch, batchRecords);
    batch.nameInterner = &names;
    batch.handleInterner = &handles;
    for (const ExtentTask& task : tasks) {
      std::uint64_t decodeStart = readerFlog_ ? readerFlog_->nowNs() : 0;
      tracev2::ExtentHeader hdr = readExtent(f, task, dec);
      if (task.schema != curSchema) {
        dec.setSchema(task.schema);
        curSchema = task.schema;
      }
      dec.load(hdr, names, handles);
      if (readerFlog_) {
        readerFlog_->complete(obs::Stage::ExtentDecode, decodeStart,
                              task.info.records);
      }
      for (std::uint32_t b = 0; b < task.batches; ++b) {
        tracev2::ExtentDecoder::BatchOut out;
        out.recs = batch.records.data();
        out.fh = batch.fhId.data();
        out.fh2 = batch.fh2Id.data();
        out.resFh = batch.resFhId.data();
        out.name = batch.nameId.data();
        out.name2 = batch.name2Id.data();
        batch.n = dec.take(out, batchRecords);
        batch.seq = task.firstSeq + b;
        batch.endedAtResync = false;
        if (havePred) stats_.recordsFiltered += applyPredicate(batch);
        if (batch.n == 0) continue;
        ++stats_.batches;
        stats_.records += batch.n;
        shardRecords[0] += batch.n;
        batchesC_.inc();
        recordsC_.inc(batch.n);
        for (std::size_t i = 0; i < passes_.size(); ++i) {
          AnalysisPass* pass = passes_[i];
          if ((pass->opMask() & task.info.opMask) == 0) continue;
          obs::TimerSpan span(passHist_[i]
                                  ? obs::HistogramHandle(*passHist_[i], 0)
                                  : obs::HistogramHandle());
          obs::FlightSpan fspan(readerFlog_, obs::Stage::PassObserve,
                                static_cast<std::uint32_t>(i));
          pass->observe(batch, 0);
        }
      }
    }
    noteScanDone(shardRecords, names.size(), handles.size());
    return;
  }

  // Threaded path.
  const std::size_t poolSize = decodeWorkers * config_.queueBatches + 1;
  std::vector<std::unique_ptr<ScanSlot>> pool;
  pool.reserve(poolSize);
  std::vector<ScanSlot*> freeSlots;
  freeSlots.reserve(poolSize);
  for (std::size_t i = 0; i < poolSize; ++i) {
    pool.push_back(std::make_unique<ScanSlot>());
    ensureCapacity(pool.back()->batch, batchRecords);
    pool.back()->batch.nameInterner = &names;
    pool.back()->batch.handleInterner = &handles;
    freeSlots.push_back(pool.back().get());
  }
  BatchReorderQueue<ScanSlot*> queue(std::move(freeSlots));

  std::atomic<std::size_t> cursor{0};
  std::atomic<std::uint64_t> dictTurn{0};
  std::atomic<bool> abortFlag{false};
  std::mutex errMu;
  std::exception_ptr error;
  std::vector<std::uint64_t> workerFiltered(decodeWorkers, 0);

  std::vector<obs::ThreadLog*> workerFlogs(decodeWorkers, nullptr);
  if (flight_) {
    for (std::size_t w = 0; w < decodeWorkers; ++w) {
      workerFlogs[w] =
          flight_->attachThread("engine.decode" + std::to_string(w));
    }
  }

  auto workerFn = [&](std::size_t w) {
    obs::ThreadLog* flog = workerFlogs[w];
    std::FILE* f = std::fopen(path.c_str(), "rb");
    FileCloser closer{f};
    try {
      if (!f) throw std::runtime_error("extent scan: cannot open " + path);
      tracev2::ExtentDecoder dec;
      int curSchema = -1;
      for (;;) {
        if (abortFlag.load(std::memory_order_acquire)) return;
        std::size_t t = cursor.fetch_add(1, std::memory_order_relaxed);
        if (t >= tasks.size()) return;
        const ExtentTask& task = tasks[t];
        if (flog) {
          flog->instant(obs::Stage::ExtentClaim, t, task.info.records);
        }
        // I/O + validation before the dictionary ticket, so extent
        // reads and CRC checks overlap across workers.
        std::uint64_t decodeStart = flog ? flog->nowNs() : 0;
        tracev2::ExtentHeader hdr = readExtent(f, task, dec);
        // Dictionary ticket: interner writes must land in extent order
        // for global ids to match a serial scan byte for byte.
        if (dictTurn.load(std::memory_order_acquire) != t) {
          std::uint64_t waitStart = flog ? flog->nowNs() : 0;
          while (dictTurn.load(std::memory_order_acquire) != t) {
            if (abortFlag.load(std::memory_order_acquire)) return;
            std::this_thread::yield();
          }
          if (flog) {
            flog->complete(obs::Stage::ExtentDictWait, waitStart,
                           static_cast<std::uint32_t>(t));
          }
        }
        if (task.schema != curSchema) {
          dec.setSchema(task.schema);
          curSchema = task.schema;
        }
        dec.load(hdr, names, handles);
        dictTurn.store(t + 1, std::memory_order_release);
        if (flog) {
          flog->complete(obs::Stage::ExtentDecode, decodeStart,
                         task.info.records);
        }
        for (std::uint32_t b = 0; b < task.batches; ++b) {
          std::uint64_t bseq = task.firstSeq + b;
          bool waited = false;
          std::uint64_t poolStart = flog ? flog->nowNs() : 0;
          ScanSlot* slot = queue.acquire(bseq, &waited);
          if (!slot) return;  // aborted
          if (waited && flog) {
            flog->complete(obs::Stage::BatchPoolWait, poolStart);
          }
          std::uint64_t takeStart = flog ? flog->nowNs() : 0;
          TraceBatch& batch = slot->batch;
          tracev2::ExtentDecoder::BatchOut out;
          out.recs = batch.records.data();
          out.fh = batch.fhId.data();
          out.fh2 = batch.fh2Id.data();
          out.resFh = batch.resFhId.data();
          out.name = batch.nameId.data();
          out.name2 = batch.name2Id.data();
          batch.n = dec.take(out, batchRecords);
          batch.seq = bseq;
          batch.endedAtResync = false;
          slot->opMask = task.info.opMask;
          if (flog) {
            flog->complete(obs::Stage::ExtentDecode, takeStart,
                           static_cast<std::uint32_t>(batch.n));
          }
          if (havePred) workerFiltered[w] += applyPredicate(batch);
          if (batch.n != 0) {
            shardRecords[w] += batch.n;
            for (std::size_t i = 0; i < passes_.size(); ++i) {
              AnalysisPass* pass = passes_[i];
              if (!pass->mergeable()) continue;
              if ((pass->opMask() & task.info.opMask) == 0) continue;
              obs::TimerSpan span(
                  passHist_[i] ? obs::HistogramHandle(*passHist_[i], w)
                               : obs::HistogramHandle());
              obs::FlightSpan fspan(flog, obs::Stage::PassObserve,
                                    static_cast<std::uint32_t>(i));
              pass->observe(batch, w);
            }
          }
          // Published even when empty: the consumer pops every admitted
          // seq, filtered or not, to keep the reorder window sliding.
          queue.publish(bseq, slot);
        }
      }
    } catch (...) {
      {
        std::lock_guard<std::mutex> lk(errMu);
        if (!error) error = std::current_exception();
      }
      abortFlag.store(true, std::memory_order_release);
      queue.abort();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(decodeWorkers);
  for (std::size_t w = 0; w < decodeWorkers; ++w) {
    threads.emplace_back(workerFn, w);
  }

  // In-order consumer: sequential passes see exactly the serial batch
  // stream (same numbering, same order, same contents).
  std::uint64_t consumed = 0;
  while (consumed < totalBatches) {
    bool waited = false;
    std::uint64_t waitStart = readerFlog_ ? readerFlog_->nowNs() : 0;
    ScanSlot* slot = nullptr;
    if (!queue.popNext(slot, &waited)) break;  // aborted
    if (waited && readerFlog_) {
      readerFlog_->complete(obs::Stage::ReorderWait, waitStart,
                            static_cast<std::uint32_t>(consumed));
    }
    TraceBatch& batch = slot->batch;
    if (batch.n != 0) {
      ++stats_.batches;
      stats_.records += batch.n;
      batchesC_.inc();
      recordsC_.inc(batch.n);
      for (std::size_t i = 0; i < passes_.size(); ++i) {
        AnalysisPass* pass = passes_[i];
        if (pass->mergeable()) continue;
        if ((pass->opMask() & slot->opMask) == 0) continue;
        obs::TimerSpan span(passHist_[i]
                                ? obs::HistogramHandle(*passHist_[i], 0)
                                : obs::HistogramHandle());
        obs::FlightSpan fspan(readerFlog_, obs::Stage::PassObserve,
                              static_cast<std::uint32_t>(i));
        pass->observe(batch, 0);
      }
    }
    queue.recycle(slot);
    ++consumed;
  }
  for (auto& th : threads) th.join();
  if (error) std::rethrow_exception(error);
  for (std::uint64_t n : workerFiltered) stats_.recordsFiltered += n;
  noteScanDone(shardRecords, names.size(), handles.size());
}

}  // namespace nfstrace
