#include "rpc/rpc.hpp"

namespace nfstrace {

void AuthUnix::encode(XdrEncoder& enc) const {
  XdrEncoder body;
  body.putUint32(stamp);
  body.putString(machineName);
  body.putUint32(uid);
  body.putUint32(gid);
  body.putUint32(static_cast<std::uint32_t>(gids.size()));
  for (auto g : gids) body.putUint32(g);
  enc.putUint32(static_cast<std::uint32_t>(AuthFlavor::Unix));
  enc.putOpaque(body.bytes());
}

AuthUnix AuthUnix::decode(XdrDecoder& dec) {
  AuthUnix a;
  a.stamp = dec.getUint32();
  a.machineName = dec.getString(255);
  a.uid = dec.getUint32();
  a.gid = dec.getUint32();
  std::uint32_t n = dec.getUint32();
  if (n > 16) throw XdrError("AUTH_UNIX gid list too long");
  a.gids.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) a.gids.push_back(dec.getUint32());
  return a;
}

namespace {

void encodeAuthNone(XdrEncoder& enc) {
  enc.putUint32(static_cast<std::uint32_t>(AuthFlavor::None));
  enc.putUint32(0);  // zero-length body
}

}  // namespace

void encodeRpcCall(XdrEncoder& enc, std::uint32_t xid, std::uint32_t prog,
                   std::uint32_t vers, std::uint32_t proc,
                   const std::optional<AuthUnix>& cred) {
  enc.putUint32(xid);
  enc.putUint32(static_cast<std::uint32_t>(RpcMsgType::Call));
  enc.putUint32(kRpcVersion);
  enc.putUint32(prog);
  enc.putUint32(vers);
  enc.putUint32(proc);
  if (cred) {
    cred->encode(enc);
  } else {
    encodeAuthNone(enc);
  }
  encodeAuthNone(enc);  // verifier
}

void encodeRpcReplySuccess(XdrEncoder& enc, std::uint32_t xid) {
  enc.putUint32(xid);
  enc.putUint32(static_cast<std::uint32_t>(RpcMsgType::Reply));
  enc.putUint32(static_cast<std::uint32_t>(RpcReplyStat::Accepted));
  encodeAuthNone(enc);  // verifier
  enc.putUint32(static_cast<std::uint32_t>(RpcAcceptStat::Success));
}

void encodeRpcReplyError(XdrEncoder& enc, std::uint32_t xid,
                         RpcAcceptStat stat) {
  enc.putUint32(xid);
  enc.putUint32(static_cast<std::uint32_t>(RpcMsgType::Reply));
  enc.putUint32(static_cast<std::uint32_t>(RpcReplyStat::Accepted));
  encodeAuthNone(enc);  // verifier
  enc.putUint32(static_cast<std::uint32_t>(stat));
}

RpcMessage decodeRpcMessage(std::span<const std::uint8_t> body) {
  XdrDecoder dec(body);
  RpcMessage msg;
  std::uint32_t xid = dec.getUint32();
  auto type = dec.getUint32();
  if (type == static_cast<std::uint32_t>(RpcMsgType::Call)) {
    msg.type = RpcMsgType::Call;
    msg.call.xid = xid;
    std::uint32_t rpcvers = dec.getUint32();
    if (rpcvers != kRpcVersion) throw XdrError("bad RPC version");
    msg.call.prog = dec.getUint32();
    msg.call.vers = dec.getUint32();
    msg.call.proc = dec.getUint32();
    // Credential.
    std::uint32_t flavor = dec.getUint32();
    auto credBody = dec.getOpaqueView(400);
    if (flavor == static_cast<std::uint32_t>(AuthFlavor::Unix)) {
      XdrDecoder cd(credBody);
      msg.call.cred = AuthUnix::decode(cd);
    }
    // Verifier.
    dec.getUint32();
    dec.skipOpaque(400);
    msg.call.argsOffset = dec.position();
  } else if (type == static_cast<std::uint32_t>(RpcMsgType::Reply)) {
    msg.type = RpcMsgType::Reply;
    msg.reply.xid = xid;
    auto stat = dec.getUint32();
    msg.reply.replyStat = static_cast<RpcReplyStat>(stat);
    if (msg.reply.replyStat == RpcReplyStat::Accepted) {
      // Verifier.
      dec.getUint32();
      dec.skipOpaque(400);
      msg.reply.acceptStat = static_cast<RpcAcceptStat>(dec.getUint32());
      msg.reply.resultsOffset = dec.position();
    } else {
      throw XdrError("RPC reply denied");
    }
  } else {
    throw XdrError("bad RPC message type");
  }
  return msg;
}

RpcMessageLite decodeRpcMessageLite(std::span<const std::uint8_t> body) {
  XdrDecoder dec(body);
  RpcMessageLite msg;
  std::uint32_t xid = dec.getUint32();
  auto type = dec.getUint32();
  if (type == static_cast<std::uint32_t>(RpcMsgType::Call)) {
    msg.type = RpcMsgType::Call;
    msg.call.xid = xid;
    std::uint32_t rpcvers = dec.getUint32();
    if (rpcvers != kRpcVersion) throw XdrError("bad RPC version");
    msg.call.prog = dec.getUint32();
    msg.call.vers = dec.getUint32();
    msg.call.proc = dec.getUint32();
    // Credential: same validation as the full decode, but only uid/gid
    // survive — no string/vector allocation.
    std::uint32_t flavor = dec.getUint32();
    auto credBody = dec.getOpaqueView(400);
    if (flavor == static_cast<std::uint32_t>(AuthFlavor::Unix)) {
      XdrDecoder cd(credBody);
      cd.getUint32();      // stamp
      cd.skipOpaque(255);  // machine name
      msg.call.uid = cd.getUint32();
      msg.call.gid = cd.getUint32();
      std::uint32_t n = cd.getUint32();
      if (n > 16) throw XdrError("AUTH_UNIX gid list too long");
      cd.require(std::size_t{4} * n);
      msg.call.hasUnixCred = true;
    }
    // Verifier.
    dec.getUint32();
    dec.skipOpaque(400);
    msg.call.argsOffset = dec.position();
  } else if (type == static_cast<std::uint32_t>(RpcMsgType::Reply)) {
    msg.type = RpcMsgType::Reply;
    msg.reply.xid = xid;
    auto stat = dec.getUint32();
    msg.reply.replyStat = static_cast<RpcReplyStat>(stat);
    if (msg.reply.replyStat == RpcReplyStat::Accepted) {
      // Verifier.
      dec.getUint32();
      dec.skipOpaque(400);
      msg.reply.acceptStat = static_cast<RpcAcceptStat>(dec.getUint32());
      msg.reply.resultsOffset = dec.position();
    } else {
      throw XdrError("RPC reply denied");
    }
  } else {
    throw XdrError("bad RPC message type");
  }
  return msg;
}

std::vector<std::uint8_t> recordMark(std::span<const std::uint8_t> body) {
  std::vector<std::uint8_t> out;
  out.reserve(body.size() + 4);
  auto len = static_cast<std::uint32_t>(body.size()) | 0x80000000u;
  out.push_back(static_cast<std::uint8_t>(len >> 24));
  out.push_back(static_cast<std::uint8_t>(len >> 16));
  out.push_back(static_cast<std::uint8_t>(len >> 8));
  out.push_back(static_cast<std::uint8_t>(len));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

void RecordMarkReader::feed(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
  // Consume as many complete fragments as are available, tracking a read
  // offset so the buffer is compacted once per feed, not once per record.
  std::size_t off = 0;
  while (buf_.size() - off >= 4) {
    std::uint32_t hdr = detail::loadBe32(buf_.data() + off);
    bool last = (hdr & 0x80000000u) != 0;
    std::uint32_t fragLen = hdr & 0x7fffffffu;
    if (buf_.size() - off < 4 + static_cast<std::size_t>(fragLen)) break;
    assembly_.insert(assembly_.end(), buf_.begin() + static_cast<std::ptrdiff_t>(off) + 4,
                     buf_.begin() + static_cast<std::ptrdiff_t>(off + 4 + fragLen));
    off += 4 + fragLen;
    if (last) {
      ready_.push_back(std::move(assembly_));
      assembly_.clear();
    }
  }
  if (off > 0) buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off));
}

std::optional<std::vector<std::uint8_t>> RecordMarkReader::next() {
  if (ready_.empty()) return std::nullopt;
  auto out = std::move(ready_.front());
  ready_.erase(ready_.begin());
  return out;
}

void RecordMarkReader::reset() {
  buf_.clear();
  assembly_.clear();
  ready_.clear();
}

}  // namespace nfstrace
