file(REMOVE_RECURSE
  "libnfstrace_client.a"
)
