// Simulated NFS client.
//
// Models the two client behaviours the paper's findings hinge on:
//
//  * Weak-consistency caching (§4.1.3): attributes are cached with a
//    timeout and revalidated with GETATTR/ACCESS; file data is cached per
//    file and invalidated wholesale when the server mtime moves — which is
//    why delivering one message to a CAMPUS inbox forces the mail client
//    to re-read megabytes.
//
//  * The nfsiod pool (§4.1.5): calls are dispatched to the pool in order,
//    but the per-iod scheduler jitter reorders what actually reaches the
//    wire.  One nfsiod never reorders; more reorder up to ~10% of calls
//    and can delay a call by as much as a second.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netcap/netcap.hpp"
#include "nfs/messages.hpp"
#include "util/rng.hpp"

namespace nfstrace {

/// How the client invalidates cached file data when the server mtime
/// moves (§6.1.2).
enum class CacheGranularity : std::uint8_t {
  /// Standard NFS close-to-open behaviour: any mtime change discards the
  /// whole cached file — the source of the CAMPUS mailbox read storm.
  WholeFile,
  /// The paper's speculation: block/message-granularity consistency.  An
  /// append-only change keeps the cached prefix valid and only the new
  /// tail is fetched; shrinks and rewrites still discard everything.
  BlockBased,
};

class NfsClient {
 public:
  struct Config {
    int nfsiods = 4;
    /// Attribute-cache timeouts (regular files / directories).
    MicroTime acFileTimeout = 30 * kMicrosPerSecond;
    MicroTime acDirTimeout = 60 * kMicrosPerSecond;
    std::uint32_t rsize = 8192;
    std::uint32_t wsize = 8192;
    /// Mean per-call scheduling jitter applied by an nfsiod.
    MicroTime iodJitterMean = 120;
    /// A small fraction of calls hit a longer scheduler delay (preempted
    /// iod); this tail is what the reorder-window knee (Fig. 1) measures.
    double iodJitterTailChance = 0.08;
    MicroTime iodJitterTailMean = 2500;
    /// Service time an nfsiod is busy per call (serialization on one iod).
    MicroTime iodServiceTime = 120;
    /// Gap between successive submissions to the pool: the client CPU
    /// hands requests to nfsiods one at a time, not instantaneously.
    MicroTime iodSubmitGap = 80;
    /// Probability an nfsiod gets descheduled mid-burst, and for how long.
    /// (The §4.1.5 bench raises these to reproduce the 1-second delays.)
    double iodStallChance = 0.0002;
    MicroTime iodStallMax = 500'000;
    bool enableDataCache = true;
    CacheGranularity cacheGranularity = CacheGranularity::WholeFile;
    /// Emulate NFSv4-style leases/delegations (§6.1.1): on a single-user
    /// workstation the server would delegate files to the client, so the
    /// getattr/access revalidation chatter disappears until another
    /// client writes.  Our simulated workstations are single-user, so
    /// this is modelled as revalidation-free attribute caching for files
    /// this client has seen, invalidated by its own writes only.
    bool nfsv4Delegations = false;
    /// Client RAM devoted to cached file data; least-recently-used files
    /// are evicted when exceeded (login servers juggling many users'
    /// mailboxes evict constantly, workstations rarely).
    std::uint64_t dataCacheCapacityBytes = 256ULL << 20;
  };

  struct IoStats {
    std::uint64_t callsIssued = 0;
    std::uint64_t bytesRead = 0;      // over the wire
    std::uint64_t bytesWritten = 0;
    std::uint64_t cacheHitsData = 0;  // reads absorbed by the data cache
    std::uint64_t cacheHitsAttr = 0;
    std::uint64_t delegationHits = 0; // revalidations a delegation absorbed
    std::uint64_t reorderedCalls = 0; // departures that leapfrogged
    MicroTime maxIodDelay = 0;        // worst scheduling delay observed
  };

  NfsClient(Config config, NfsTransport& transport, std::uint64_t seed);

  void setIdentity(std::uint32_t uid, std::uint32_t gid) {
    uid_ = uid;
    gid_ = gid;
  }
  std::uint32_t uid() const { return uid_; }

  /// The exported root handle; either mount it over the wire (the real
  /// protocol) or hand it over directly for tests.
  bool mountRoot(MicroTime& now, const std::string& exportPath);
  void setRootHandle(const FileHandle& root) { root_ = root; }
  const FileHandle& rootHandle() const { return root_; }

  // --- namespace operations (synchronous; advance `now` to completion)
  std::optional<FileHandle> lookupPath(MicroTime& now, const std::string& path);
  std::optional<Fattr> getattr(MicroTime& now, const FileHandle& fh,
                               bool forceFresh = false);
  bool access(MicroTime& now, const FileHandle& fh);
  std::optional<FileHandle> create(MicroTime& now, const FileHandle& dir,
                                   const std::string& name, bool exclusive,
                                   std::uint64_t truncateTo = 0);
  bool remove(MicroTime& now, const FileHandle& dir, const std::string& name);
  std::optional<FileHandle> mkdir(MicroTime& now, const FileHandle& dir,
                                  const std::string& name);
  bool rmdir(MicroTime& now, const FileHandle& dir, const std::string& name);
  bool rename(MicroTime& now, const FileHandle& fromDir,
              const std::string& fromName, const FileHandle& toDir,
              const std::string& toName);
  std::optional<FileHandle> symlink(MicroTime& now, const FileHandle& dir,
                                    const std::string& name,
                                    const std::string& target);
  /// Hard link `target` at (dir, name); the basis of the NFS-safe
  /// hitching-post mailbox locking protocol.
  bool link(MicroTime& now, const FileHandle& target, const FileHandle& dir,
            const std::string& name);
  std::optional<std::string> readlink(MicroTime& now, const FileHandle& fh);
  std::vector<DirEntry> readdir(MicroTime& now, const FileHandle& dir,
                                bool plus = false);
  bool truncate(MicroTime& now, const FileHandle& fh, std::uint64_t size);
  bool setMtime(MicroTime& now, const FileHandle& fh, MicroTime mtime);

  // --- data operations (issued through the nfsiod pool)
  /// Read the whole file sequentially through the cache; returns bytes
  /// that actually crossed the wire (0 on a warm cache).
  std::uint64_t readFile(MicroTime& now, const FileHandle& fh);
  std::uint64_t readRange(MicroTime& now, const FileHandle& fh,
                          std::uint64_t offset, std::uint64_t len);
  /// Write [offset, offset+len); UNSTABLE+COMMIT on v3, sync on v2.
  std::uint64_t writeRange(MicroTime& now, const FileHandle& fh,
                           std::uint64_t offset, std::uint64_t len,
                           bool stable = false);
  /// Append to the file at its currently-known size.
  std::uint64_t append(MicroTime& now, const FileHandle& fh, std::uint64_t len,
                       bool stable = false);

  /// A (offset, length) extent of a file.
  struct Extent {
    std::uint64_t offset;
    std::uint64_t length;
  };
  /// Read a list of extents through the nfsiod pool in one burst — how a
  /// mail client scans a mailbox (headers read, bodies skipped).  Extents
  /// are clipped to the file size; the file is treated as cached up to
  /// the end of the last extent afterwards.  Returns wire bytes.
  std::uint64_t readSegments(MicroTime& now, const FileHandle& fh,
                             const std::vector<Extent>& extents);
  /// Write a list of extents in one burst with a single COMMIT — how a
  /// mail client rewrites a mailbox (sequential stretches separated by
  /// seeks).  Returns wire bytes.
  std::uint64_t writeSegments(MicroTime& now, const FileHandle& fh,
                              const std::vector<Extent>& extents,
                              bool stable = false);

  const IoStats& stats() const { return stats_; }
  /// Drop all cached state (e.g. client reboot).
  void dropCaches();

 private:
  struct CachedAttrs {
    Fattr attrs;
    MicroTime fetched = 0;
  };
  struct CachedData {
    MicroTime mtime = 0;      // server mtime when cached
    std::uint64_t validBytes = 0;
    MicroTime lastUse = 0;
  };
  struct QueuedIo {
    NfsCallArgs args;
    std::uint64_t submitIndex = 0;
  };

  NfsReplyRes callNow(MicroTime& now, const NfsCallArgs& args);
  /// Queue a call on the nfsiod pool; flushPool() sends the batch.
  void queueIo(NfsCallArgs args);
  /// Dispatch queued calls through the nfsiods; returns when all replies
  /// are in and advances `now` to the last reply.
  void flushPool(MicroTime& now);
  void noteAttrs(MicroTime now, const FileHandle& fh, const Fattr& attrs);
  /// Enforce the data-cache capacity by LRU eviction.
  void evictDataCache();
  const Fattr* cachedAttrs(MicroTime now, const FileHandle& fh) const;
  void invalidateIfModified(const FileHandle& fh, const Fattr& attrs);

  Config config_;
  NfsTransport& transport_;
  Rng rng_;
  FileHandle root_;
  std::uint32_t uid_ = 0;
  std::uint32_t gid_ = 0;
  IoStats stats_;
  std::unordered_map<FileHandle, CachedAttrs, FileHandleHash> attrCache_;
  std::unordered_map<FileHandle, CachedData, FileHandleHash> dataCache_;
  /// Directory-entry cache: (dir, name) -> handle.
  std::unordered_map<std::string, std::pair<FileHandle, MicroTime>> dnlc_;
  std::vector<QueuedIo> ioQueue_;
  std::uint64_t submitCounter_ = 0;
};

}  // namespace nfstrace
