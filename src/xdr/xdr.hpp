// XDR (External Data Representation, RFC 4506) encoding and decoding.
//
// This is the wire substrate for ONC RPC and the NFS protocol codecs.  All
// quantities are big-endian; opaque and string data are padded to 4-byte
// boundaries.  The decoder never reads past its buffer: all accessors
// either succeed or throw XdrError, so callers (the sniffer in particular,
// which decodes possibly-truncated packets) can treat a throw as "not
// decodable" without undefined behaviour.
//
// The decoder is a flat pointer cursor.  Hot accessors are inline, read
// words with unaligned loads + byte-swap instead of byte-at-a-time shifts,
// and keep the bounds check down to one pointer comparison.  For
// fixed-layout regions (e.g. fattr bodies) callers can hoist that check
// too: `require(n)` validates a whole region once and the *U
// ("unchecked") accessors then read without further tests.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace nfstrace {

class XdrError : public std::runtime_error {
 public:
  explicit XdrError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
inline std::uint32_t loadBe32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  if constexpr (std::endian::native == std::endian::little) {
    v = __builtin_bswap32(v);
  }
  return v;
}

inline std::uint64_t loadBe64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  if constexpr (std::endian::native == std::endian::little) {
    v = __builtin_bswap64(v);
  }
  return v;
}
}  // namespace detail

class XdrEncoder {
 public:
  void putUint32(std::uint32_t v);
  void putInt32(std::int32_t v) { putUint32(static_cast<std::uint32_t>(v)); }
  void putUint64(std::uint64_t v);
  void putInt64(std::int64_t v) { putUint64(static_cast<std::uint64_t>(v)); }
  void putBool(bool v) { putUint32(v ? 1 : 0); }
  /// Variable-length opaque: length word then padded bytes.
  void putOpaque(std::span<const std::uint8_t> data);
  /// Fixed-length opaque: padded bytes, no length word.
  void putFixedOpaque(std::span<const std::uint8_t> data);
  void putString(std::string_view s);

  /// Raw access for embedding pre-encoded bodies.
  void putRaw(std::span<const std::uint8_t> data);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void pad();
  std::vector<std::uint8_t> buf_;
};

class XdrDecoder {
 public:
  explicit XdrDecoder(std::span<const std::uint8_t> data)
      : begin_(data.data()), p_(data.data()), end_(data.data() + data.size()) {}

  std::uint32_t getUint32() {
    if (static_cast<std::size_t>(end_ - p_) < 4) [[unlikely]] underrun(4);
    std::uint32_t v = detail::loadBe32(p_);
    p_ += 4;
    return v;
  }
  std::int32_t getInt32() { return static_cast<std::int32_t>(getUint32()); }
  std::uint64_t getUint64() {
    if (static_cast<std::size_t>(end_ - p_) < 8) [[unlikely]] underrun(8);
    std::uint64_t v = detail::loadBe64(p_);
    p_ += 8;
    return v;
  }
  std::int64_t getInt64() { return static_cast<std::int64_t>(getUint64()); }
  bool getBool() { return getUint32() != 0; }

  /// Validate that at least `n` bytes remain.  Pair with the *U accessors
  /// to bounds-check an entire fixed-layout region with one test.
  void require(std::size_t n) const {
    if (static_cast<std::size_t>(end_ - p_) < n) [[unlikely]] underrun(n);
  }
  /// Unchecked reads: the caller must have called require() covering them.
  std::uint32_t getUint32U() {
    std::uint32_t v = detail::loadBe32(p_);
    p_ += 4;
    return v;
  }
  std::uint64_t getUint64U() {
    std::uint64_t v = detail::loadBe64(p_);
    p_ += 8;
    return v;
  }

  /// Variable-length opaque with a sanity cap on the length word.
  std::vector<std::uint8_t> getOpaque(std::uint32_t maxLen = 1 << 22) {
    auto v = getOpaqueView(maxLen);
    return {v.begin(), v.end()};
  }
  std::vector<std::uint8_t> getFixedOpaque(std::size_t len) {
    auto v = getFixedOpaqueView(len);
    return {v.begin(), v.end()};
  }
  std::string getString(std::uint32_t maxLen = 1 << 16) {
    auto v = getStringView(maxLen);
    return {v.begin(), v.end()};
  }

  /// Zero-copy accessors: the returned view aliases the decode buffer and
  /// is valid only while that buffer lives.
  std::span<const std::uint8_t> getOpaqueView(std::uint32_t maxLen = 1 << 22) {
    std::uint32_t len = getUint32();
    if (len > maxLen) [[unlikely]] tooLong(len);
    return getFixedOpaqueView(len);
  }
  std::span<const std::uint8_t> getFixedOpaqueView(std::size_t len) {
    std::size_t n = padded(len);
    if (static_cast<std::size_t>(end_ - p_) < n) [[unlikely]] underrun(n);
    std::span<const std::uint8_t> v{p_, len};
    p_ += n;
    return v;
  }
  std::string_view getStringView(std::uint32_t maxLen = 1 << 16) {
    auto v = getOpaqueView(maxLen);
    return {reinterpret_cast<const char*>(v.data()), v.size()};
  }

  /// Skip a variable-length opaque without copying (e.g. WRITE payloads).
  std::uint32_t skipOpaque(std::uint32_t maxLen = 1 << 22) {
    std::uint32_t len = getUint32();
    if (len > maxLen) [[unlikely]] tooLong(len);
    std::size_t n = padded(len);
    if (static_cast<std::size_t>(end_ - p_) < n) [[unlikely]] underrun(n);
    p_ += n;
    return len;
  }

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  std::size_t position() const { return static_cast<std::size_t>(p_ - begin_); }
  bool atEnd() const { return p_ == end_; }

 private:
  [[noreturn]] void underrun(std::size_t n) const;
  [[noreturn]] static void tooLong(std::uint32_t len);
  static std::size_t padded(std::size_t n) { return (n + 3) & ~std::size_t{3}; }

  const std::uint8_t* begin_;
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

}  // namespace nfstrace
