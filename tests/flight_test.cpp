// Flight recorder tests: ring wraparound with exact drop accounting,
// span nesting and retroactive-span tallies, concurrent emitters racing
// a live drainer (run these under the `tsan` preset; they carry its
// ctest label), and an end-to-end chaos-style run — faulty wire in front
// of the sharded pipeline, trace writer, then the analysis engine — that
// must cover at least five distinct stages, render a valid Chrome-trace
// document, and reconcile its books exactly:
//
//     eventsEmitted == eventsWritten + eventsDropped
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "analysis/engine/engine.hpp"
#include "analysis/engine/passes.hpp"
#include "fault/fault.hpp"
#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "pipeline/pipeline.hpp"
#include "trace/tracefile.hpp"
#include "workload/sim.hpp"

namespace nfstrace {
namespace {

std::size_t idx(obs::Stage s) { return static_cast<std::size_t>(s); }

/// Collects raw frames off the simulation tap for later replay.
struct FrameCollector : FrameSink {
  std::vector<CapturedPacket> frames;
  void onFrame(const CapturedPacket& pkt) override { frames.push_back(pkt); }
};

std::vector<CapturedPacket> simulatedCapture() {
  SimEnvironment::Config cfg;
  cfg.clientHosts = 4;
  cfg.useTcp = true;
  cfg.mtu = kJumboMtu;
  SimEnvironment env(cfg);
  FrameCollector collector;
  env.addTapSink(&collector);
  for (int host = 0; host < 4; ++host) {
    env.fs().mkfile("/home/u" + std::to_string(host) + "/inbox",
                    40 * 1024 + host * 7777, 100 + host, 100, 0);
  }
  MicroTime now = seconds(1);
  for (int host = 0; host < 4; ++host) {
    NfsClient& c = env.client(host);
    c.setIdentity(100 + static_cast<std::uint32_t>(host), 100);
    std::string dir = "/home/u" + std::to_string(host);
    auto dirFh = *c.lookupPath(now, dir);
    auto fh = *c.lookupPath(now, dir + "/inbox");
    c.readFile(now, fh);
    c.append(now, fh, 4096, true);
    c.readdir(now, dirFh);
    auto lock = c.create(now, dirFh, ".lock", true);
    if (lock) c.remove(now, dirFh, ".lock");
    now += seconds(1);
  }
  env.finishCapture();
  return collector.frames;
}

TEST(FlightRing, WraparoundDropsAndReconcilesExactly) {
  obs::FlightRecorder rec(obs::FlightRecorder::Config{8});
  obs::ThreadLog* log = rec.attachThread("t0");
  for (std::uint64_t i = 0; i < 100; ++i) {
    log->instant(obs::Stage::FaultDrop, i);
  }
  // The ring holds 8 events; the other 92 are dropped, never blocking.
  EXPECT_EQ(log->eventsEmitted(), 100u);
  EXPECT_EQ(log->eventsWritten(), 8u);
  EXPECT_EQ(log->eventsDropped(), 92u);
  obs::FlightRecorder::Totals t = rec.totals();
  EXPECT_EQ(t.emitted, t.written + t.dropped);

  // Draining frees the ring: new events fit again and the books still
  // balance (drops are permanent, not retroactively recovered).
  rec.drain();
  for (std::uint64_t i = 0; i < 4; ++i) {
    log->instant(obs::Stage::FaultDrop, i);
  }
  EXPECT_EQ(log->eventsWritten(), 12u);
  EXPECT_EQ(log->eventsDropped(), 92u);
  t = rec.totals();
  EXPECT_EQ(t.emitted, 104u);
  EXPECT_EQ(t.emitted, t.written + t.dropped);
}

TEST(FlightRing, RingCapacityRoundsUpToPowerOfTwo) {
  obs::FlightRecorder rec(obs::FlightRecorder::Config{5});  // rounds to 8
  obs::ThreadLog* log = rec.attachThread("t0");
  for (std::uint64_t i = 0; i < 9; ++i) log->instant(obs::Stage::FrameShed);
  EXPECT_EQ(log->eventsWritten(), 8u);
  EXPECT_EQ(log->eventsDropped(), 1u);
}

TEST(FlightSpans, NestingAndRetroactiveTallies) {
  obs::FlightRecorder rec;
  obs::ThreadLog* log = rec.attachThread("worker");
  {
    obs::FlightSpan outer(log, obs::Stage::Sniff, 64);
    obs::FlightSpan inner(log, obs::Stage::WriterFlush, 4096);
  }
  // Retroactive span: one event covering a loop episode that already
  // happened (the stall-loop idiom used by the pipeline).
  std::uint64_t start = log->nowNs();
  log->complete(obs::Stage::MergeWait, start, 7);
  log->instant(obs::Stage::CallEvicted, 42);

  std::vector<obs::StageTally> tallies = rec.stageTallies();
  ASSERT_EQ(tallies.size(), obs::kStageCount);
  EXPECT_EQ(tallies[idx(obs::Stage::Sniff)].spans, 1u);
  EXPECT_EQ(tallies[idx(obs::Stage::WriterFlush)].spans, 1u);
  EXPECT_EQ(tallies[idx(obs::Stage::MergeWait)].spans, 1u);
  EXPECT_EQ(tallies[idx(obs::Stage::CallEvicted)].spans, 1u);
  // The outer span strictly contains the inner one.
  EXPECT_GE(tallies[idx(obs::Stage::Sniff)].totalNs,
            tallies[idx(obs::Stage::WriterFlush)].totalNs);

  // The same structure renders as a valid Chrome-trace document with
  // B/E pairs for the nested spans and an X event for the episode.
  std::string json = rec.chromeTraceJson();
  EXPECT_TRUE(obs::isValidJson(json));
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("pipeline.sniff"), std::string::npos);
}

TEST(FlightSpans, StallReportAttributesWaitToBlocker) {
  obs::FlightRecorder rec;
  obs::ThreadLog* log = rec.attachThread("shard0");
  {
    obs::FlightSpan work(log, obs::Stage::Sniff);
  }
  std::uint64_t start = log->nowNs();
  log->complete(obs::Stage::RecordRingWait, start);
  std::string report = rec.stallReport();
  // The wait stage names its waiter and blocker work stages.
  EXPECT_NE(report.find("pipeline.record_ring_wait"), std::string::npos);
  EXPECT_NE(report.find("pipeline.sniff"), std::string::npos);
  EXPECT_NE(report.find("pipeline.merge"), std::string::npos);
  EXPECT_NE(report.find("emitted"), std::string::npos);
}

TEST(FlightCounters, CounterTrackRendersNamedSeries) {
  obs::FlightRecorder rec;
  obs::ThreadLog* log = rec.attachThread("exporter");
  std::uint16_t track = rec.counterTrack("pipeline.ring.depth");
  EXPECT_EQ(rec.counterTrack("pipeline.ring.depth"), track);  // idempotent
  log->counterSample(track, 3.5);
  log->counterSample(track, 7.0);
  std::string json = rec.chromeTraceJson();
  EXPECT_TRUE(obs::isValidJson(json));
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("pipeline.ring.depth"), std::string::npos);
  EXPECT_NE(json.find("3.5"), std::string::npos);
}

TEST(FlightConcurrency, EmittersAndDrainerReconcile) {
  constexpr int kThreads = 4;
  constexpr std::uint64_t kIters = 20'000;
  obs::FlightRecorder rec(obs::FlightRecorder::Config{1 << 10});
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      obs::ThreadLog* log =
          rec.attachThread("w" + std::to_string(t));
      for (std::uint64_t i = 0; i < kIters; ++i) {
        obs::FlightSpan span(log, obs::Stage::Sniff,
                             static_cast<std::uint32_t>(i));
        log->instant(obs::Stage::FrameShed, i);
      }
    });
  }
  // Drain concurrently with the emitters: the consumer side must never
  // tear an event or double-count (this is the race ThreadSanitizer
  // watches when the suite runs under the tsan preset).
  for (int i = 0; i < 100; ++i) rec.drain();
  for (auto& t : threads) t.join();

  obs::FlightRecorder::Totals totals = rec.totals();
  EXPECT_EQ(totals.emitted, kThreads * kIters * 3);  // begin + instant + end
  EXPECT_EQ(totals.emitted, totals.written + totals.dropped);

  std::uint64_t rendered = 0;
  std::string json = rec.chromeTraceJson(&rendered);
  EXPECT_TRUE(obs::isValidJson(json));
  // Producers have quiesced, so everything written is rendered.
  EXPECT_EQ(rendered, totals.written);
}

TEST(FlightChaos, EndToEndCoversStagesAndRendersValidChromeTrace) {
  auto frames = simulatedCapture();
  ASSERT_FALSE(frames.empty());

  obs::FlightRecorder flight;
  FaultPlan plan;
  plan.seed = 7;
  plan.dropRate = 0.05;
  plan.bitflipRate = 0.01;
  const std::string path = "/tmp/flight_test_chaos.trace";
  {
    TraceWriter writer(path);
    writer.attachFlight(flight);
    ParallelPipeline::Config pc;
    pc.shards = 2;
    pc.flight = &flight;
    ParallelPipeline pipe(pc,
                          [&](const TraceRecord& r) { writer.write(r); });
    FaultySink faulty(plan, pipe);
    faulty.attachFlight(flight);
    for (const auto& f : frames) faulty.onFrame(f);
    faulty.flush();
    pipe.finish();
    writer.flush();
  }

  // Same recorder through the analysis side, as trace_analyze --flight
  // wires it: reader decode, per-pass observe, finalize.
  StandardAnalyses analyses;
  AnalysisEngine::Config ecfg;
  ecfg.workers = 2;
  AnalysisEngine engine(ecfg);
  engine.addPasses(analyses.all());
  engine.attachFlight(flight);
  TraceReader reader(path);
  const AnalysisEngine::Stats& st = engine.run(reader);
  EXPECT_GT(st.records, 0u);

  // Distinct stages covered: the acceptance bar is five; this run must
  // hit capture, write, and analysis stages at minimum.
  std::vector<obs::StageTally> tallies = flight.stageTallies();
  std::set<std::string> active;
  for (std::size_t s = 0; s < tallies.size(); ++s) {
    if (tallies[s].spans > 0) {
      active.insert(obs::stageName(static_cast<obs::Stage>(s)));
    }
  }
  EXPECT_GE(active.size(), 5u) << [&] {
    std::string got;
    for (const auto& n : active) got += n + " ";
    return got;
  }();
  EXPECT_TRUE(active.count("pipeline.partition"));
  EXPECT_TRUE(active.count("pipeline.sniff"));
  EXPECT_TRUE(active.count("pipeline.merge"));
  EXPECT_TRUE(active.count("trace.flush"));
  EXPECT_TRUE(active.count("engine.reader_decode"));
  EXPECT_TRUE(active.count("engine.pass_observe"));
  EXPECT_TRUE(active.count("engine.finalize"));

  // The Chrome-trace document validates and the books balance exactly.
  std::uint64_t rendered = 0;
  std::string json = flight.chromeTraceJson(&rendered);
  EXPECT_TRUE(obs::isValidJson(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  obs::FlightRecorder::Totals totals = flight.totals();
  EXPECT_GT(totals.emitted, 0u);
  EXPECT_EQ(totals.emitted, totals.written + totals.dropped);
  EXPECT_EQ(rendered, totals.written);

  // writeChromeTrace produces the same document on disk.
  std::uint64_t renderedFile = 0;
  EXPECT_TRUE(flight.writeChromeTrace(path + ".json", &renderedFile));
  EXPECT_EQ(renderedFile, rendered);
  std::remove((path + ".json").c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nfstrace
