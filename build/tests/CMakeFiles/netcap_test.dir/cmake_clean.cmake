file(REMOVE_RECURSE
  "CMakeFiles/netcap_test.dir/netcap_test.cpp.o"
  "CMakeFiles/netcap_test.dir/netcap_test.cpp.o.d"
  "netcap_test"
  "netcap_test.pdb"
  "netcap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netcap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
