#include "analysis/users.hpp"

#include <algorithm>

namespace nfstrace {

void UserStats::observe(const TraceRecord& rec) {
  auto [it, inserted] = users_.try_emplace(rec.uid);
  State& st = it->second;
  UserActivity& a = st.activity;
  if (inserted) {
    a.uid = rec.uid;
    a.firstSeen = rec.ts;
  }
  a.lastSeen = std::max(a.lastSeen, rec.ts);
  a.firstSeen = std::min(a.firstSeen, rec.ts);
  ++a.totalOps;
  ++totalOps_;
  if (rec.op == NfsOp::Read) {
    ++a.readOps;
    a.bytesRead += rec.hasReply ? rec.retCount : rec.count;
  } else if (rec.op == NfsOp::Write) {
    ++a.writeOps;
    a.bytesWritten += rec.hasReply && rec.retCount ? rec.retCount : rec.count;
  }
  std::int64_t hour = rec.ts / kMicrosPerHour;
  if (st.hoursSeen.emplace(hour, true).second) {
    ++a.activeHours;
  }
}

void UserStats::merge(const UserStats& other) {
  for (const auto& [uid, ost] : other.users_) {
    auto [it, inserted] = users_.try_emplace(uid);
    State& st = it->second;
    if (inserted) {
      st = ost;
      continue;
    }
    UserActivity& a = st.activity;
    const UserActivity& b = ost.activity;
    a.totalOps += b.totalOps;
    a.readOps += b.readOps;
    a.writeOps += b.writeOps;
    a.bytesRead += b.bytesRead;
    a.bytesWritten += b.bytesWritten;
    a.firstSeen = std::min(a.firstSeen, b.firstSeen);
    a.lastSeen = std::max(a.lastSeen, b.lastSeen);
    for (const auto& [hour, seen] : ost.hoursSeen) {
      st.hoursSeen.emplace(hour, seen);
    }
    a.activeHours = static_cast<std::uint32_t>(st.hoursSeen.size());
  }
  totalOps_ += other.totalOps_;
}

std::vector<UserActivity> UserStats::byActivity() const {
  std::vector<UserActivity> out;
  out.reserve(users_.size());
  for (const auto& [uid, st] : users_) out.push_back(st.activity);
  std::sort(out.begin(), out.end(),
            [](const UserActivity& a, const UserActivity& b) {
              return a.totalOps > b.totalOps;
            });
  return out;
}

double UserStats::topUserShare(double fraction) const {
  if (users_.empty() || totalOps_ == 0) return 0.0;
  auto sorted = byActivity();
  auto take = static_cast<std::size_t>(
      std::max(1.0, fraction * static_cast<double>(sorted.size()) + 0.999999));
  take = std::min(take, sorted.size());
  std::uint64_t ops = 0;
  for (std::size_t i = 0; i < take; ++i) ops += sorted[i].totalOps;
  return static_cast<double>(ops) / static_cast<double>(totalOps_);
}

double UserStats::imbalance() const {
  // Gini coefficient over per-user op counts.
  if (users_.size() < 2 || totalOps_ == 0) return 0.0;
  std::vector<std::uint64_t> ops;
  ops.reserve(users_.size());
  for (const auto& [uid, st] : users_) ops.push_back(st.activity.totalOps);
  std::sort(ops.begin(), ops.end());
  double n = static_cast<double>(ops.size());
  double weighted = 0.0;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    weighted += (2.0 * static_cast<double>(i + 1) - n - 1.0) *
                static_cast<double>(ops[i]);
  }
  return weighted / (n * static_cast<double>(totalOps_));
}

}  // namespace nfstrace
