# Empty dependencies file for nfstrace_server.
# This may be replaced when dependencies are built.
