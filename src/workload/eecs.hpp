// The EECS workload: the CS-department home-directory filer (§3.1, §6.1.1).
//
// A mix of research, software development, and coursework from many
// single-user workstations.  The signature behaviours:
//   * metadata dominance — clients continually revalidate their caches
//     (getattr/lookup/access) and rarely need to transfer data;
//   * writes outnumber reads — browser caches written into home
//     directories, window-manager Applet_*_Extern files, editor/build
//     output, and unbuffered log/index appends whose tail blocks die in
//     under a second;
//   * unpredictable interactive load with predictable background activity
//     (night cron jobs: builds, experiments, data processing).
#pragma once

#include <queue>
#include <string>
#include <vector>

#include "workload/schedule.hpp"
#include "workload/sim.hpp"

namespace nfstrace {

struct EecsConfig {
  int users = 60;
  /// Peak-hour Poisson rates per user.
  double revalidationBurstsPeakHourly = 14.0;  // cache-check sweeps
  double editSavesPeakHourly = 2.4;
  double buildsPeakHourly = 0.35;
  double browsePeakHourly = 1.8;   // web pages cached to the home dir
  double appletChurnPeakHourly = 4.0;
  double logBurstsPeakHourly = 0.8;
  /// Night cron jobs for a subset of users (experiments, data crunching).
  double cronJobsPerNightPerUser = 0.25;
  int filesPerProject = 24;
  std::uint64_t seed = 4004;

  /// Load rates from a key=value file (users, revalidations_per_user_hour,
  /// edits_per_user_hour, builds_per_user_hour, browse_per_user_hour,
  /// applet_per_user_hour, log_bursts_per_user_hour, cron_per_user_night,
  /// files_per_project, seed); unset keys keep the defaults above.
  static EecsConfig fromFile(const std::string& path);
};

class EecsWorkload {
 public:
  EecsWorkload(EecsConfig config, SimEnvironment& env);

  void setup(MicroTime t0);
  void run(MicroTime start, MicroTime end);

 private:
  enum class EventType : std::uint8_t {
    Revalidate,
    EditSave,
    Build,
    Browse,
    AppletChurn,
    LogBurst,
    CronJob,
  };
  struct Event {
    MicroTime t;
    EventType type;
    int user;
    bool operator>(const Event& o) const { return t > o.t; }
  };
  struct User {
    std::string home;
    FileHandle homeFh;
    FileHandle srcDirFh;
    FileHandle cacheDirFh;
    std::vector<std::string> sourceFiles;
    std::vector<std::string> cacheFiles;  // browser cache LRU
    FileHandle logFh;
    std::uint64_t logSize = 0;
    int appletCounter = 0;
    int cacheCounter = 0;
  };

  NfsClient& clientFor(int user) {
    return env_.client(user % env_.clientHostCount());
  }
  bool ensureHandles(NfsClient& client, MicroTime& now, User& u);
  void doRevalidate(MicroTime t, int user);
  void doEditSave(MicroTime t, int user);
  void doBuild(MicroTime t, int user);
  void doBrowse(MicroTime t, int user);
  void doAppletChurn(MicroTime t, int user);
  void doLogBurst(MicroTime t, int user);
  void doCronJob(MicroTime t, int user);
  void scheduleNext(EventType type, int user, MicroTime after, double rate);
  void scheduleCron(int user, MicroTime after);

  EecsConfig config_;
  SimEnvironment& env_;
  WeeklySchedule schedule_;
  Rng rng_;
  std::vector<User> users_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  MicroTime endTime_ = 0;
};

}  // namespace nfstrace
