file(REMOVE_RECURSE
  "libnfstrace_fs.a"
)
