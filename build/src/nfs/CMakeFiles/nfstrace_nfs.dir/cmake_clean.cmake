file(REMOVE_RECURSE
  "CMakeFiles/nfstrace_nfs.dir/messages2.cpp.o"
  "CMakeFiles/nfstrace_nfs.dir/messages2.cpp.o.d"
  "CMakeFiles/nfstrace_nfs.dir/messages3.cpp.o"
  "CMakeFiles/nfstrace_nfs.dir/messages3.cpp.o.d"
  "CMakeFiles/nfstrace_nfs.dir/proc.cpp.o"
  "CMakeFiles/nfstrace_nfs.dir/proc.cpp.o.d"
  "CMakeFiles/nfstrace_nfs.dir/types.cpp.o"
  "CMakeFiles/nfstrace_nfs.dir/types.cpp.o.d"
  "libnfstrace_nfs.a"
  "libnfstrace_nfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfstrace_nfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
