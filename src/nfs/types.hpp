// Shared NFS wire types (RFC 1094 for v2, RFC 1813 for v3).
//
// The simulated server hands out 16-byte file handles (fsid + fileid +
// generation), but the codecs accept any handle up to the v3 maximum of 64
// bytes, since the sniffer must decode whatever appears on the wire.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <string>

#include "util/time.hpp"
#include "xdr/xdr.hpp"

namespace nfstrace {

inline constexpr std::size_t kFhSize3 = 64;  // NFSv3 maximum
inline constexpr std::size_t kFhSize2 = 32;  // NFSv2 fixed size
inline constexpr std::uint32_t kNfsBlockSize = 8192;  // analysis block unit

enum class NfsStat : std::uint32_t {
  Ok = 0,
  ErrPerm = 1,
  ErrNoEnt = 2,
  ErrIo = 5,
  ErrAcces = 13,
  ErrExist = 17,
  ErrXDev = 18,
  ErrNoDev = 19,
  ErrNotDir = 20,
  ErrIsDir = 21,
  ErrInval = 22,
  ErrFBig = 27,
  ErrNoSpc = 28,
  ErrRoFs = 30,
  ErrMLink = 31,
  ErrNameTooLong = 63,
  ErrNotEmpty = 66,
  ErrDQuot = 69,
  ErrStale = 70,
  ErrBadHandle = 10001,
  ErrNotSync = 10002,
  ErrBadCookie = 10003,
  ErrNotSupp = 10004,
  ErrTooSmall = 10005,
  ErrServerFault = 10006,
  ErrBadType = 10007,
  ErrJukebox = 10008,
};

const char* nfsStatName(NfsStat s);
/// Inverse of nfsStatName; unknown names map to ErrServerFault.
NfsStat nfsStatFromName(std::string_view name);

enum class FileType : std::uint32_t {
  Regular = 1,
  Directory = 2,
  BlockDev = 3,
  CharDev = 4,
  Symlink = 5,
  Socket = 6,
  Fifo = 7,
};

/// Opaque NFS file handle.  Comparable and hashable so it can key maps in
/// the server, client cache, sniffer, and analyses.
struct FileHandle {
  std::uint8_t len = 0;
  std::array<std::uint8_t, kFhSize3> data{};

  static FileHandle fromBytes(std::span<const std::uint8_t> bytes);
  /// The simulator's canonical handle layout.
  static FileHandle make(std::uint32_t fsid, std::uint64_t fileid,
                         std::uint32_t generation);

  std::span<const std::uint8_t> bytes() const { return {data.data(), len}; }
  std::uint64_t fileid() const;  // decodes the simulator layout
  std::uint32_t fsid() const;

  bool operator==(const FileHandle& o) const {
    return len == o.len && std::memcmp(data.data(), o.data.data(), len) == 0;
  }
  std::strong_ordering operator<=>(const FileHandle& o) const;

  std::string toHex() const;
  static FileHandle fromHex(std::string_view hex);
};

struct FileHandleHash {
  std::size_t operator()(const FileHandle& fh) const;
};

/// NFS time: seconds + nanoseconds.  Converted from/to simulation
/// MicroTime at the boundary.
struct NfsTime {
  std::uint32_t seconds = 0;
  std::uint32_t nseconds = 0;

  static NfsTime fromMicro(MicroTime t);
  MicroTime toMicro() const;
  bool operator==(const NfsTime&) const = default;
};

/// v3 fattr3 (v2 attributes are converted to/from this superset).
struct Fattr {
  FileType type = FileType::Regular;
  std::uint32_t mode = 0644;
  std::uint32_t nlink = 1;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;
  std::uint64_t size = 0;
  std::uint64_t used = 0;
  std::uint32_t fsid = 0;
  std::uint64_t fileid = 0;
  NfsTime atime;
  NfsTime mtime;
  NfsTime ctime;

  void encode3(XdrEncoder& enc) const;
  static Fattr decode3(XdrDecoder& dec);
  void encode2(XdrEncoder& enc) const;
  static Fattr decode2(XdrDecoder& dec);
  bool operator==(const Fattr&) const = default;
};

/// v3 wcc_attr: the pre-operation attributes in weak cache consistency
/// data.  Size + times are what clients use to detect concurrent change.
struct WccAttr {
  std::uint64_t size = 0;
  NfsTime mtime;
  NfsTime ctime;

  void encode(XdrEncoder& enc) const;
  static WccAttr decode(XdrDecoder& dec);
  static WccAttr fromFattr(const Fattr& a) {
    return {a.size, a.mtime, a.ctime};
  }
  bool operator==(const WccAttr&) const = default;
};

/// Optional pre/post attribute pair attached to v3 modifying replies.
struct WccData {
  bool hasPre = false;
  WccAttr pre;
  bool hasPost = false;
  Fattr post;

  void encode(XdrEncoder& enc) const;
  static WccData decode(XdrDecoder& dec);
};

/// Settable attributes (sattr3); each field is optional.
struct Sattr {
  bool setMode = false;
  std::uint32_t mode = 0;
  bool setUid = false;
  std::uint32_t uid = 0;
  bool setGid = false;
  std::uint32_t gid = 0;
  bool setSize = false;
  std::uint64_t size = 0;
  bool setAtime = false;  // set-to-client-time only (the common case)
  NfsTime atime;
  bool setMtime = false;
  NfsTime mtime;

  void encode3(XdrEncoder& enc) const;
  static Sattr decode3(XdrDecoder& dec);
};

void encodeOptFattr(XdrEncoder& enc, const Fattr* attr);
bool decodeOptFattr(XdrDecoder& dec, Fattr& out);

}  // namespace nfstrace
