file(REMOVE_RECURSE
  "CMakeFiles/table1_characteristics.dir/table1_characteristics.cpp.o"
  "CMakeFiles/table1_characteristics.dir/table1_characteristics.cpp.o.d"
  "table1_characteristics"
  "table1_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
