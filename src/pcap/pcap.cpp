#include "pcap/pcap.hpp"

#include <cstdio>
#include <stdexcept>

namespace nfstrace {
namespace {

void put32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  // pcap headers are host-endian in real files; we write little-endian and
  // the reader handles either order.
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v >> 16));
  b.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}

}  // namespace

struct PcapWriter::Impl {
  std::FILE* f = nullptr;
};

PcapWriter::PcapWriter(const std::string& path, std::uint32_t snaplen,
                       bool nanosecond)
    : impl_(new Impl), snaplen_(snaplen), nano_(nanosecond) {
  impl_->f = std::fopen(path.c_str(), "wb");
  if (!impl_->f) {
    delete impl_;
    throw std::runtime_error("pcap: cannot open for write: " + path);
  }
  std::vector<std::uint8_t> hdr;
  put32(hdr, nano_ ? kPcapMagicNano : kPcapMagicMicro);
  put16(hdr, 2);   // version major
  put16(hdr, 4);   // version minor
  put32(hdr, 0);   // thiszone
  put32(hdr, 0);   // sigfigs
  put32(hdr, snaplen_);
  put32(hdr, kLinktypeEthernet);
  if (std::fwrite(hdr.data(), 1, hdr.size(), impl_->f) != hdr.size()) {
    std::fclose(impl_->f);
    delete impl_;
    throw std::runtime_error("pcap: header write failed");
  }
}

PcapWriter::~PcapWriter() {
  if (impl_->f) std::fclose(impl_->f);
  delete impl_;
}

void PcapWriter::write(const CapturedPacket& pkt) {
  std::uint32_t incl =
      std::min(static_cast<std::uint32_t>(pkt.data.size()), snaplen_);
  std::vector<std::uint8_t> hdr;
  auto sec = static_cast<std::uint32_t>(pkt.ts / kMicrosPerSecond);
  auto frac = static_cast<std::uint32_t>(pkt.ts % kMicrosPerSecond);
  if (nano_) frac *= 1000;
  put32(hdr, sec);
  put32(hdr, frac);
  put32(hdr, incl);
  put32(hdr, pkt.origLen ? pkt.origLen
                         : static_cast<std::uint32_t>(pkt.data.size()));
  if (std::fwrite(hdr.data(), 1, hdr.size(), impl_->f) != hdr.size() ||
      std::fwrite(pkt.data.data(), 1, incl, impl_->f) != incl) {
    throw std::runtime_error("pcap: packet write failed");
  }
  ++count_;
}

void PcapWriter::flush() { std::fflush(impl_->f); }

struct PcapReader::Impl {
  std::FILE* f = nullptr;

  bool readExact(void* buf, std::size_t n) {
    return std::fread(buf, 1, n, f) == n;
  }
};

namespace {

std::uint32_t get32(const std::uint8_t* p, bool swapped) {
  std::uint32_t v = static_cast<std::uint32_t>(p[0]) |
                    (static_cast<std::uint32_t>(p[1]) << 8) |
                    (static_cast<std::uint32_t>(p[2]) << 16) |
                    (static_cast<std::uint32_t>(p[3]) << 24);
  if (swapped) {
    v = ((v & 0xff) << 24) | ((v & 0xff00) << 8) | ((v >> 8) & 0xff00) |
        (v >> 24);
  }
  return v;
}

}  // namespace

PcapReader::PcapReader(const std::string& path) : impl_(new Impl) {
  impl_->f = std::fopen(path.c_str(), "rb");
  if (!impl_->f) {
    delete impl_;
    throw std::runtime_error("pcap: cannot open for read: " + path);
  }
  std::uint8_t hdr[24];
  if (!impl_->readExact(hdr, sizeof(hdr))) {
    std::fclose(impl_->f);
    delete impl_;
    throw std::runtime_error("pcap: short global header");
  }
  std::uint32_t magic = get32(hdr, false);
  if (magic == kPcapMagicMicro) {
    swapped_ = false;
    nano_ = false;
  } else if (magic == kPcapMagicNano) {
    swapped_ = false;
    nano_ = true;
  } else {
    std::uint32_t sw = get32(hdr, true);
    if (sw == kPcapMagicMicro) {
      swapped_ = true;
      nano_ = false;
    } else if (sw == kPcapMagicNano) {
      swapped_ = true;
      nano_ = true;
    } else {
      std::fclose(impl_->f);
      delete impl_;
      throw std::runtime_error("pcap: bad magic");
    }
  }
  snaplen_ = get32(hdr + 16, swapped_);
  linktype_ = get32(hdr + 20, swapped_);
}

PcapReader::~PcapReader() {
  if (impl_->f) std::fclose(impl_->f);
  delete impl_;
}

std::optional<CapturedPacket> PcapReader::next() {
  std::uint8_t hdr[16];
  std::size_t got = std::fread(hdr, 1, sizeof(hdr), impl_->f);
  if (got == 0) return std::nullopt;  // clean EOF
  if (got != sizeof(hdr)) throw std::runtime_error("pcap: truncated record header");

  CapturedPacket pkt;
  std::uint32_t sec = get32(hdr, swapped_);
  std::uint32_t frac = get32(hdr + 4, swapped_);
  std::uint32_t incl = get32(hdr + 8, swapped_);
  pkt.origLen = get32(hdr + 12, swapped_);
  pkt.ts = static_cast<MicroTime>(sec) * kMicrosPerSecond +
           (nano_ ? frac / 1000 : frac);
  if (incl > 256 * 1024 * 1024) throw std::runtime_error("pcap: absurd record size");
  pkt.data.resize(incl);
  if (!impl_->readExact(pkt.data.data(), incl)) {
    throw std::runtime_error("pcap: truncated packet body");
  }
  return pkt;
}

}  // namespace nfstrace
