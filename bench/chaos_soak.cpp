// Chaos soak: a lossy simulated day end to end, with every robustness
// mechanism engaged and every invariant checked.
//
// The paper's tracer survived months on a live mirror port: burst loss,
// malformed traffic, and full trace disks were routine, not exceptional.
// This soak replays that life deterministically (configs/chaos.cfg rates,
// fixed seed) across five phases:
//
//   A  clean control    — serial and sharded runs byte-identical, no loss
//   B  wire chaos       — FaultySink + MirrorPort in front of the sniffer
//                         and the 4-shard pipeline: identical fault
//                         sequence (digest), identical merged trace, and a
//                         §4.1.4 loss estimate that tracks injected loss
//   C  bounded tables   — tiny pending/flow bounds under chaos: evictions
//                         happen, peaks never exceed the bounds
//   D  disk chaos       — trace writer under injected EIO/short writes is
//                         byte-identical to a clean write; deterministic
//                         corruption is then recovered with exact
//                         record accounting via checkpoints
//   E  overload shed    — tiny rings + shedding: finish() returns and
//                         framesSeen + framesShed == framesDispatched
//   F  v2 disk chaos    — the columnar v2 writer under the same injected
//                         IO faults is byte-identical to a clean write; a
//                         CRC-corrupted extent is skipped with exact
//                         record accounting and the analysis engine's
//                         report over the damaged file is byte-identical
//                         at any worker count
//   G  kill/restart     — the continuous-capture daemon, SIGKILLed ≥3
//                         times (twice genuinely mid-rotation, in the
//                         rename-sealed-but-unjournaled window) under the
//                         same wire+disk faults, completes a multi-
//                         rotation day: captured == sealed + recovered +
//                         lost at every audit, the concatenated sealed
//                         segments are byte-identical to an uninterrupted
//                         run (zero duplicates, zero gaps), and the
//                         engine's 8-pass report over them matches
//
// Any violated invariant makes the bench exit nonzero; results land in
// BENCH_chaos.json.  Phase G's invariants are exact (byte-identity,
// balanced books) and sample-size independent, so they stay enforced
// even under NFSTRACE_SMOKE=1 — that is what lets the tier-1 ctest loop
// run the kill/restart path as a real gate.
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/engine/engine.hpp"
#include "analysis/engine/passes.hpp"
#include "analysis/engine/report.hpp"
#include "bench_common.hpp"
#include "daemon/daemon.hpp"
#include "daemon/supervisor.hpp"
#include "fault/fault.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "pipeline/pipeline.hpp"
#include "sniffer/sniffer.hpp"
#include "trace/tracefile.hpp"
#include "trace/v2.hpp"

namespace nfstrace {
namespace {

using bench::kWeekStart;
using bench::makeCampus;
using bench::makeEecs;

struct FrameCollector : FrameSink {
  std::vector<CapturedPacket> frames;
  void onFrame(const CapturedPacket& pkt) override { frames.push_back(pkt); }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string renderAll(const std::vector<TraceRecord>& recs) {
  std::string out;
  for (const auto& r : recs) {
    appendRecord(out, r);
    out.push_back('\n');
  }
  return out;
}

/// The committed chaos plan, inlined so the soak is self-contained (the
/// same rates as configs/chaos.cfg).
FaultPlan chaosPlan() {
  return FaultPlan::fromConfig(ConfigFile::parse(
      "seed = 20031\n"
      "drop_rate = 0.01\n"
      "burst_rate = 0.0002\n"
      "burst_min = 8\n"
      "burst_max = 48\n"
      "truncate_rate = 0.001\n"
      "bitflip_rate = 0.001\n"
      "dup_rate = 0.002\n"
      "reorder_rate = 0.005\n"
      "io_short_write_rate = 0.05\n"
      "io_eio_rate = 0.01\n"
      "io_enospc_rate = 0.002\n"
      "io_enospc_streak = 3\n"));
}

constexpr int kShards = 4;
constexpr MicroTime kPendingTimeout = 120 * kMicrosPerSecond;

Sniffer::Config soakSnifferConfig() {
  Sniffer::Config cfg;
  cfg.pendingTimeout = kPendingTimeout;
  return cfg;
}

struct ChainResult {
  std::vector<TraceRecord> records;
  Sniffer::Stats stats;
  std::uint64_t faultDigest = 0;
  double wireLoss = 0;  // fraction of offered frames that never arrived
};

/// Replay `frames` through FaultySink -> MirrorPort -> serial Sniffer.
ChainResult runSerialChaos(const std::vector<CapturedPacket>& frames,
                           const FaultPlan& plan,
                           const MirrorPort::Config& mc) {
  ChainResult res;
  Sniffer sniffer(soakSnifferConfig(),
                  [&](const TraceRecord& r) { res.records.push_back(r); });
  MirrorPort mirror(mc, sniffer);
  FaultySink faulty(plan, mirror);
  for (const auto& f : frames) faulty.onFrame(f);
  faulty.flush();
  sniffer.flush();
  res.stats = sniffer.stats();
  res.faultDigest = faulty.decisionDigest();
  std::uint64_t offered = faulty.stats().frames;
  std::uint64_t lost = faulty.stats().dropped + mirror.dropped();
  res.wireLoss = offered ? static_cast<double>(lost) /
                               static_cast<double>(offered)
                         : 0.0;
  return res;
}

/// Same chain, with the sharded pipeline in place of the serial sniffer.
ChainResult runShardedChaos(const std::vector<CapturedPacket>& frames,
                            const FaultPlan& plan,
                            const MirrorPort::Config& mc) {
  ChainResult res;
  ParallelPipeline::Config pc;
  pc.shards = kShards;
  pc.sniffer = soakSnifferConfig();
  ParallelPipeline pipe(pc,
                        [&](const TraceRecord& r) { res.records.push_back(r); });
  MirrorPort mirror(mc, pipe);
  FaultySink faulty(plan, mirror);
  for (const auto& f : frames) faulty.onFrame(f);
  faulty.flush();
  pipe.finish();
  res.stats = pipe.stats();
  res.faultDigest = faulty.decisionDigest();
  return res;
}

int failures = 0;
// Phase G failures are tracked separately: exact invariants that must
// hold even in smoke mode (see the exit logic in main).
int gFailures = 0;
bool inPhaseG = false;

void check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  if (!ok) {
    ++failures;
    if (inPhaseG) ++gFailures;
  }
}

/// Write `recs` to a fresh v2 trace and run the standard 8-pass engine
/// report over it — the oracle phase G compares daemon streams with.
std::string engineReportOver(const std::vector<TraceRecord>& recs,
                             const std::string& tmpPath) {
  {
    TraceWriter::Options o;
    o.format = TraceWriter::Format::V2;
    TraceWriter w(tmpPath, o);
    for (const auto& r : recs) w.write(r);
  }
  StandardAnalyses analyses;
  AnalysisEngine engine(AnalysisEngine::Config{});
  engine.addPasses(analyses.all());
  TraceReader reader(tmpPath);
  engine.run(reader);
  std::remove(tmpPath.c_str());
  return renderReportText("daemon", analyses);
}

/// All records physically present in the listed segments, in seq order.
std::vector<TraceRecord> readSegments(const std::vector<std::string>& paths) {
  std::vector<TraceRecord> out;
  for (const std::string& p : paths) {
    for (const TraceRecord& r : TraceReader::readAll(p)) out.push_back(r);
  }
  return out;
}

}  // namespace
}  // namespace nfstrace

int main(int argc, char** argv) {
  using namespace nfstrace;
  const std::string jsonPath = argc > 1 ? argv[1] : "BENCH_chaos.json";
  const bool smoke = bench::smokeMode();
  const double simDays = smoke ? 0.1 : 1.0;

  std::printf("generating synthetic EECS capture (%.2f day)...\n", simDays);
  FrameCollector capture;
  {
    auto eecs = makeEecs(smoke ? 6 : 12, [](const TraceRecord&) {});
    eecs.env->addTapSink(&capture);
    eecs.workload->setup(kWeekStart);
    eecs.workload->run(kWeekStart, kWeekStart + days(simDays));
    eecs.env->finishCapture();
  }
  // The sim tap emits frames in generation order, which carries the
  // nfsiod-style millisecond inversions the paper studies.  A physical
  // mirror port sees arrival order by definition, so replay the stream
  // time-sorted (the MirrorPort queue model assumes monotone arrivals).
  std::stable_sort(capture.frames.begin(), capture.frames.end(),
                   [](const CapturedPacket& a, const CapturedPacket& b) {
                     return a.ts < b.ts;
                   });
  const auto& frames = capture.frames;
  std::printf("  %zu frames\n", frames.size());

  FaultPlan plan = chaosPlan();
  FaultPlan quiet;  // phase A control: no injected faults
  // A mirror port fast enough that it never drops on its own: the only
  // wire loss in phase B is then the loss the plan injects, which is
  // what the §4.1.4 estimate is checked against.
  MirrorPort::Config fastMirror;
  fastMirror.bandwidthBitsPerSec = 10e9;
  fastMirror.bufferBytes = 4 * 1024 * 1024;

  // Phase A: clean control.  Byte-identical serial/sharded, zero loss.
  std::printf("\nphase A: clean control (serial vs %d shards)\n", kShards);
  auto cleanSerial = runSerialChaos(frames, quiet, fastMirror);
  auto cleanSharded = runShardedChaos(frames, quiet, fastMirror);
  std::string cleanBytes = renderAll(cleanSerial.records);
  bool aIdentical = renderAll(cleanSharded.records) == cleanBytes;
  check(aIdentical, "sharded trace byte-identical to serial");
  check(cleanSerial.stats.orphanReplies == 0, "no orphan replies");
  check(!cleanSerial.records.empty(), "records produced");

  // Phase B: wire chaos.  Same plan in front of both topologies.
  std::printf("\nphase B: wire chaos (drops/bursts/corruption/reorder)\n");
  auto chaosSerial = runSerialChaos(frames, plan, fastMirror);
  auto chaosSharded = runShardedChaos(frames, plan, fastMirror);
  check(chaosSerial.faultDigest == chaosSharded.faultDigest,
        "fault decision stream independent of sharding");
  bool bIdentical =
      renderAll(chaosSharded.records) == renderAll(chaosSerial.records);
  check(bIdentical, "sharded chaos trace byte-identical to serial");
  double wireLoss = chaosSerial.wireLoss;
  const Sniffer::Stats& cs = chaosSerial.stats;
  double calls = static_cast<double>(cs.rpcCalls);
  double orphans = static_cast<double>(cs.orphanReplies);
  double lossEstimate = calls + orphans > 0 ? orphans / (calls + orphans) : 0;
  std::printf("  wire loss injected: %.3f%%   estimated (sec 4.1.4): %.3f%%\n",
              100 * wireLoss, 100 * lossEstimate);
  check(wireLoss > 0, "faults actually injected");
  check(lossEstimate > 0, "loss estimate nonzero under loss");
  // Dropping any fragment of a multi-frame UDP datagram loses the whole
  // call, so the call-level estimate runs above frame-level loss; it must
  // still track it within an order of magnitude.
  check(lossEstimate >= 0.25 * wireLoss && lossEstimate <= 8 * wireLoss + 0.01,
        "loss estimate tracks injected loss");

  // Phase C: graceful degradation under tiny table bounds (CAMPUS/TCP so
  // the flow table is exercised too).
  std::printf("\nphase C: bounded state tables under chaos\n");
  FrameCollector campusCapture;
  {
    auto campus = makeCampus(smoke ? 6 : 12, [](const TraceRecord&) {});
    campus.env->addTapSink(&campusCapture);
    campus.workload->setup(kWeekStart);
    campus.workload->run(kWeekStart, kWeekStart + days(smoke ? 0.1 : 0.25));
    campus.env->finishCapture();
  }
  std::printf("  %zu CAMPUS frames\n", campusCapture.frames.size());
  Sniffer::Config bounded = soakSnifferConfig();
  bounded.pendingTimeout = 7200 * kMicrosPerSecond;  // replies only
  bounded.maxPendingCalls = 2;
  bounded.maxTcpFlows = 2;
  std::uint64_t boundedRecords = 0;
  Sniffer boundedSniffer(bounded,
                         [&](const TraceRecord&) { ++boundedRecords; });
  FaultySink campusFaulty(plan, boundedSniffer);
  for (const auto& f : campusCapture.frames) campusFaulty.onFrame(f);
  campusFaulty.flush();
  boundedSniffer.flush();
  const Sniffer::Stats& bs = boundedSniffer.stats();
  std::printf("  evicted calls %llu (peak %llu <= 2)   "
              "evicted flows %llu (peak %llu <= 2)\n",
              static_cast<unsigned long long>(bs.evictedCalls),
              static_cast<unsigned long long>(bs.pendingPeak),
              static_cast<unsigned long long>(bs.evictedFlows),
              static_cast<unsigned long long>(bs.tcpFlowsPeak));
  check(bs.evictedCalls > 0, "pending-call evictions occurred");
  check(bs.evictedFlows > 0, "TCP-flow evictions occurred");
  check(bs.pendingPeak <= 2, "pending table stayed within its bound");
  check(bs.tcpFlowsPeak <= 2, "flow table stayed within its bound");
  check(boundedRecords > 0, "bounded sniffer still produced records");

  // Phase D: disk chaos.  The writer must ride out transient faults with
  // byte-identical output, and the recovering reader must account for a
  // deterministically corrupted file exactly.
  std::printf("\nphase D: trace disk chaos + recovery\n");
  const std::string cleanPath = "bench_chaos_clean.trace";
  const std::string faultyPath = "bench_chaos_faulty.trace";
  const std::string corruptPath = "bench_chaos_corrupt.trace";
  TraceWriter::Options wopts;
  wopts.checkpointEveryRecords = 512;
  {
    TraceWriter w(cleanPath, wopts);
    for (const auto& r : chaosSerial.records) w.write(r);
  }
  IoFaultInjector inj(plan);
  TraceWriter::IoStats io;
  {
    TraceWriter::Options fo = wopts;
    fo.faults = &inj;
    fo.backoffInitialUs = 1;
    fo.backoffMaxUs = 50;
    TraceWriter w(faultyPath, fo);
    for (const auto& r : chaosSerial.records) w.write(r);
    w.flush();
    io = w.ioStats();
  }
  std::printf("  %llu retries, %llu short writes, %llu checkpoints\n",
              static_cast<unsigned long long>(io.retries),
              static_cast<unsigned long long>(io.shortWrites),
              static_cast<unsigned long long>(io.checkpoints));
  check(io.retries + io.shortWrites > 0, "disk faults actually injected");
  check(slurp(faultyPath) == slurp(cleanPath),
        "faulty-disk trace byte-identical to clean write");

  // Deterministic corruption: damage three record lines spread across the
  // file (never the checkpoint comments), then recover.
  std::string bytes = slurp(cleanPath);
  std::istringstream in(bytes);
  std::vector<std::string> lines;
  std::string line;
  std::vector<std::size_t> recordLineIdx;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') recordLineIdx.push_back(lines.size());
    lines.push_back(line);
  }
  std::size_t nRecords = recordLineIdx.size();
  for (std::size_t frac : {4, 2, 1}) {  // 25%, 50%, ~100% through the file
    std::size_t idx = recordLineIdx[nRecords / frac - 1];
    lines[idx] = "x#!corrupt line, neither comment nor parseable record";
  }
  std::string corrupted;
  for (const auto& l : lines) {
    corrupted += l;
    corrupted.push_back('\n');
  }
  spew(corruptPath, corrupted);
  TraceReader::RecoverStats rs;
  auto recovered = TraceReader::recoverAll(corruptPath, &rs);
  std::printf("  recovery: %llu recovered, %llu skipped, %llu resyncs, "
              "%llu checkpoints\n",
              static_cast<unsigned long long>(rs.recovered),
              static_cast<unsigned long long>(rs.skipped),
              static_cast<unsigned long long>(rs.resyncs),
              static_cast<unsigned long long>(rs.checkpoints));
  check(rs.skipped == 3, "exactly the three damaged records skipped");
  check(rs.recovered == nRecords - 3, "every undamaged record recovered");
  check(rs.recovered + rs.skipped == nRecords,
        "recovered + skipped account for every record");
  check(recovered.size() == rs.recovered, "recovered records returned");

  // The analysis engine over the damaged trace, recover mode: the full
  // report must be byte-identical serial vs sharded, every recovered
  // record must be analyzed, and the resync cuts must surface as a
  // DEGRADED alert through the standard watch-list.
  obs::Registry engineReg;
  std::string serialReport, shardedReport;
  AnalysisEngine::Stats engineStats;
  for (int workers : {1, kShards}) {
    StandardAnalyses analyses;
    AnalysisEngine::Config ec;
    ec.workers = static_cast<std::size_t>(workers);
    AnalysisEngine engine(ec);
    engine.addPasses(analyses.all());
    if (workers != 1) engine.attachMetrics(engineReg);
    TraceReader reader(corruptPath, /*recover=*/true);
    engineStats = engine.run(reader);
    (workers == 1 ? serialReport : shardedReport) =
        renderReportText("chaos", analyses);
  }
  std::printf("  engine: %llu records in %llu batches, %llu resync cuts\n",
              static_cast<unsigned long long>(engineStats.records),
              static_cast<unsigned long long>(engineStats.batches),
              static_cast<unsigned long long>(engineStats.resyncCuts));
  check(engineStats.records == rs.recovered,
        "engine analyzed every recovered record");
  check(engineStats.resyncCuts > 0, "resyncs landed on batch boundaries");
  check(!serialReport.empty() && serialReport == shardedReport,
        "engine report byte-identical serial vs sharded");
  std::string alerts = obs::SnapshotExporter::renderAlerts(
      engineReg.scrape(), obs::defaultAlertCounters());
  check(alerts.find("engine.resync_cuts") != std::string::npos,
        "resync cuts raised a DEGRADED alert");

  // Phase E: overload shedding.  Rings far too small for the burst: the
  // producer must shed rather than deadlock, and the books must balance.
  std::printf("\nphase E: overload shedding on tiny rings\n");
  ParallelPipeline::Config shedCfg;
  shedCfg.shards = kShards;
  shedCfg.sniffer = soakSnifferConfig();
  shedCfg.frameRingCapacity = 8;
  shedCfg.shedAfterStalls = 1;
  std::uint64_t shedRecords = 0;
  std::uint64_t shed = 0, dispatched = 0, seen = 0;
  {
    ParallelPipeline pipe(shedCfg,
                          [&](const TraceRecord&) { ++shedRecords; });
    for (const auto& f : frames) pipe.feed(&f);
    pipe.finish();
    shed = pipe.framesShed();
    dispatched = pipe.framesDispatched();
    seen = pipe.stats().framesSeen;
  }
  std::printf("  %llu dispatched, %llu shed, %llu records\n",
              static_cast<unsigned long long>(dispatched),
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(shedRecords));
  check(seen + shed == dispatched,
        "framesSeen + framesShed == framesDispatched");
  check(shed > 0, "overload actually forced shedding");
  check(shedRecords > 0, "pipeline still produced records while shedding");

  // Phase F: the v2 columnar format through the same disk-chaos story as
  // phase D — fault-riddled write byte-identical, then extent-granular
  // recovery of a deterministically corrupted file with exact accounting.
  std::printf("\nphase F: v2 extents under disk chaos + recovery\n");
  const std::string v2CleanPath = "bench_chaos_v2_clean.trace";
  const std::string v2FaultyPath = "bench_chaos_v2_faulty.trace";
  const std::string v2CorruptPath = "bench_chaos_v2_corrupt.trace";
  TraceWriter::Options v2opts;
  v2opts.format = TraceWriter::Format::V2;
  v2opts.v2ExtentRecords = 512;
  {
    TraceWriter w(v2CleanPath, v2opts);
    for (const auto& r : chaosSerial.records) w.write(r);
  }
  IoFaultInjector v2inj(plan);
  TraceWriter::IoStats v2io;
  {
    TraceWriter::Options fo = v2opts;
    fo.faults = &v2inj;
    fo.backoffInitialUs = 1;
    fo.backoffMaxUs = 50;
    TraceWriter w(v2FaultyPath, fo);
    for (const auto& r : chaosSerial.records) w.write(r);
    w.flush();
    v2io = w.ioStats();
  }
  std::printf("  %llu retries, %llu short writes\n",
              static_cast<unsigned long long>(v2io.retries),
              static_cast<unsigned long long>(v2io.shortWrites));
  check(v2io.retries + v2io.shortWrites > 0,
        "v2 disk faults actually injected");
  bool fIdentical = slurp(v2FaultyPath) == slurp(v2CleanPath);
  check(fIdentical, "faulty-disk v2 trace byte-identical to clean write");

  // Corrupt one mid-file extent payload: its header still parses, its
  // CRC fails, and the reader must skip exactly that extent's records.
  auto v2Index = tracev2::loadExtentIndex(v2CleanPath);
  check(v2Index.has_value() && v2Index->size() >= 2,
        "v2 footer index present with multiple extents");
  std::uint64_t v2Damaged = 0;
  std::uint64_t v2Total = chaosSerial.records.size();
  if (v2Index && v2Index->size() >= 2) {
    const tracev2::ExtentInfo& victim = (*v2Index)[v2Index->size() / 2];
    std::string v2bytes = slurp(v2CleanPath);
    std::size_t at = static_cast<std::size_t>(victim.offset) +
                     tracev2::kExtentHeaderBytes + 64;
    v2bytes[at] = static_cast<char>(v2bytes[at] ^ 0x5A);
    v2Damaged = victim.records;
    spew(v2CorruptPath, v2bytes);
  }
  TraceReader::RecoverStats v2rs;
  auto v2Recovered = TraceReader::recoverAll(v2CorruptPath, &v2rs);
  std::printf("  recovery: %llu recovered, %llu skipped, %llu resyncs "
              "(extent of %llu records corrupted)\n",
              static_cast<unsigned long long>(v2rs.recovered),
              static_cast<unsigned long long>(v2rs.skipped),
              static_cast<unsigned long long>(v2rs.resyncs),
              static_cast<unsigned long long>(v2Damaged));
  check(v2rs.skipped == v2Damaged,
        "exactly the corrupt extent's records skipped");
  check(v2rs.recovered == v2Total - v2Damaged,
        "every record outside the corrupt extent recovered");
  check(v2rs.recovered + v2rs.skipped == v2Total,
        "recovered + skipped account for every record");
  check(v2Recovered.size() == v2rs.recovered, "recovered records returned");

  // The engine over the damaged v2 file must behave exactly like phase D
  // over damaged text: identical reports at any worker count.
  std::string v2SerialReport, v2ShardedReport;
  AnalysisEngine::Stats v2EngineStats;
  for (int workers : {1, kShards}) {
    StandardAnalyses analyses;
    AnalysisEngine::Config ec;
    ec.workers = static_cast<std::size_t>(workers);
    AnalysisEngine engine(ec);
    engine.addPasses(analyses.all());
    TraceReader reader(v2CorruptPath, /*recover=*/true);
    v2EngineStats = engine.run(reader);
    (workers == 1 ? v2SerialReport : v2ShardedReport) =
        renderReportText("chaos", analyses);
  }
  check(v2EngineStats.records == v2rs.recovered,
        "engine analyzed every recovered v2 record");
  bool fEngineIdentical =
      !v2SerialReport.empty() && v2SerialReport == v2ShardedReport;
  check(fEngineIdentical,
        "engine report over damaged v2 byte-identical serial vs sharded");

  // Phase G: the continuous-capture daemon killed and restarted
  // mid-rotation.  The record stream is phase B's wire-chaos output, the
  // disk runs the same injected fault plan (inside the retry budget, so
  // no shedding), and the supervisor SIGKILLs the child three times:
  //
  //   incarnation 0  dies inside sealActive() of segment 3 — after the
  //                  .part was renamed sealed, before the manifest
  //                  journaled it (the adopt-on-restart crash window);
  //                  the kill is raised from the daemon's wall-clock
  //                  hook, which sealActive() reads exactly there
  //   incarnation 1  dies mid-segment, half a rotation past a seal —
  //                  the torn .part is salvaged by startup recovery
  //   incarnation 2  dies in the seal window again, two rotations later
  //   incarnation 3  completes the day and drains cleanly
  //
  // The invariant audited between every restart and at the end:
  // records_captured == records_sealed + records_recovered +
  // records_lost_accounted, plus the concatenated sealed segments
  // byte-identical to an uninterrupted run (zero duplicates, zero gaps).
  std::printf("\nphase G: daemon SIGKILL storm mid-rotation\n");
  inPhaseG = true;
  namespace fs = std::filesystem;
  const std::vector<TraceRecord>& gRecs = chaosSerial.records;
  const std::uint64_t gTotal = gRecs.size();
  const std::uint64_t gRotate = std::max<std::uint64_t>(64, gTotal / 12);
  const std::uint64_t gExtent = std::max<std::uint64_t>(16, gRotate / 8);
  const std::string ctrlDir = "bench_chaos_daemon_ctrl";
  const std::string killDir = "bench_chaos_daemon_kill";
  fs::remove_all(ctrlDir);
  fs::remove_all(killDir);

  auto daemonCfg = [&](const std::string& dir, IoFaultInjector* inj) {
    daemon::TraceDaemon::Config dc;
    dc.dir = dir;
    dc.prefix = "day";
    dc.format = TraceWriter::Format::V2;
    dc.rotateRecords = gRotate;
    dc.v2ExtentRecords = gExtent;
    dc.checkpointEveryRecords = gExtent;
    // Ride out the injected disk faults inside the retry budget: byte
    // identity requires zero sheds (the shedding path is daemon_test's
    // territory).
    dc.maxRetries = 64;
    dc.backoffInitialUs = 1;
    dc.backoffMaxUs = 4;
    dc.faults = inj;
    return dc;
  };

  // Control: one uninterrupted run over the same stream and fault plan.
  IoFaultInjector ctrlInj(plan);
  daemon::Books ctrlBooks;
  std::vector<TraceRecord> ctrlStream;
  std::size_t ctrlSegments = 0;
  {
    daemon::TraceDaemon d(daemonCfg(ctrlDir, &ctrlInj));
    for (const auto& r : gRecs) d.submit(r);
    d.stop();
    ctrlBooks = d.books();
    ctrlSegments = d.segmentPaths().size();
    ctrlStream = readSegments(d.segmentPaths());
  }
  std::printf("  control: %llu records in %zu segments "
              "(%llu disk faults ridden out)\n",
              static_cast<unsigned long long>(ctrlBooks.sealed), ctrlSegments,
              static_cast<unsigned long long>(ctrlInj.stats().shortWrites +
                                              ctrlInj.stats().eio +
                                              ctrlInj.stats().enospc));
  check(ctrlBooks.balanced() && ctrlBooks.sealed == gTotal &&
            ctrlBooks.lost == 0,
        "uninterrupted daemon sealed the full stream");
  check(ctrlInj.stats().shortWrites + ctrlInj.stats().eio +
                ctrlInj.stats().enospc >
            0,
        "disk faults actually injected into the daemon writer");

  // Chaos: supervised run, three SIGKILLs at deterministic points.
  daemon::Supervisor::Config scfg;
  scfg.manifestPath = daemon::TraceDaemon::manifestPathFor(killDir, "day");
  scfg.maxRestarts = 8;
  scfg.backoffInitialUs = 100;
  scfg.backoffMaxUs = 1000;
  auto body = [&](int incarnation) -> int {
    IoFaultInjector inj(plan);  // fresh, deterministic per incarnation
    daemon::TraceDaemon::Config dc = daemonCfg(killDir, &inj);
    // Seal-window kill: sealActive() reads the wall clock after the
    // rename and before the manifest save; arming only after the ctor
    // keeps startup recovery (which also stamps seal times) safe.
    long seals = 0;
    bool armed = false;
    long killOnSeal = incarnation == 0 ? 3 : incarnation == 2 ? 2 : 0;
    dc.wallClock = [&]() -> std::int64_t {
      if (armed && killOnSeal > 0 && ++seals == killOnSeal) {
        ::raise(SIGKILL);
      }
      return 1754650000 + seals;
    };
    daemon::TraceDaemon d(dc);
    armed = true;
    if (!d.books().balanced()) return 2;
    // Deterministic source: resume exactly where the sealed stream ends.
    std::uint64_t fed = 0;
    std::uint64_t killAtRel = incarnation == 1 ? gRotate + gRotate / 2 : 0;
    for (std::uint64_t i = d.streamPos(); i < gTotal; ++i) {
      if (killAtRel > 0 && fed == killAtRel) ::raise(SIGKILL);
      d.submit(gRecs[static_cast<std::size_t>(i)]);
      ++fed;
    }
    d.stop();
    return d.books().balanced() ? 0 : 3;
  };
  daemon::Supervisor::Result gRes = daemon::Supervisor::run(scfg, body);
  std::printf("  %d incarnations, %d kills; books: captured %llu = "
              "sealed %llu + recovered %llu + lost %llu\n",
              gRes.incarnations, gRes.restarts,
              static_cast<unsigned long long>(gRes.finalBooks.captured),
              static_cast<unsigned long long>(gRes.finalBooks.sealed),
              static_cast<unsigned long long>(gRes.finalBooks.recovered),
              static_cast<unsigned long long>(gRes.finalBooks.lost));
  check(gRes.restarts >= 3, "daemon SIGKILLed at least 3 times");
  check(gRes.cleanExit, "final incarnation drained cleanly");
  check(gRes.booksBalanced, "books balanced at every between-restart audit");
  check(gRes.finalBooks.captured == gRes.finalBooks.sealed +
                                        gRes.finalBooks.recovered +
                                        gRes.finalBooks.lost,
        "records_captured == records_sealed + records_recovered + "
        "records_lost_accounted");
  check(gRes.finalBooks.recovered > 0,
        "torn active segments were actually salvaged");

  // The surviving on-disk state, read back cold.
  daemon::Manifest gMan;
  bool gManifestOk = daemon::Manifest::load(scfg.manifestPath, gMan) ==
                     daemon::Manifest::LoadStatus::Ok;
  check(gManifestOk, "manifest loads clean after the storm");
  bool gSeqContiguous = true;
  for (std::size_t i = 1; i < gMan.segments.size(); ++i) {
    if (gMan.segments[i].seq != gMan.segments[i - 1].seq + 1 ||
        gMan.segments[i].first != gMan.segments[i - 1].first +
                                      gMan.segments[i - 1].records) {
      gSeqContiguous = false;
    }
  }
  check(gSeqContiguous, "sealed sequence gap-free with cumulative firsts");

  std::vector<std::string> gPaths;
  for (const auto& s : gMan.segments) gPaths.push_back(killDir + "/" + s.file);
  std::vector<TraceRecord> gStream = readSegments(gPaths);
  std::printf("  %zu sealed segments, %zu records across them\n",
              gPaths.size(), gStream.size());
  bool gStreamIdentical = renderAll(gStream) == renderAll(gRecs);
  check(gStream.size() == gTotal,
        "zero duplicate records across segment boundaries");
  check(gStreamIdentical,
        "concatenated sealed segments byte-identical to the input stream");
  check(renderAll(ctrlStream) == renderAll(gRecs),
        "uninterrupted control stream matches the input stream");
  std::string gCtrlReport =
      engineReportOver(ctrlStream, "bench_chaos_g_ctrl.trace");
  std::string gKillReport =
      engineReportOver(gStream, "bench_chaos_g_kill.trace");
  bool gEngineIdentical = !gKillReport.empty() && gKillReport == gCtrlReport;
  check(gEngineIdentical,
        "engine 8-pass report byte-identical to the uninterrupted run");
  inPhaseG = false;

  fs::remove_all(ctrlDir);
  fs::remove_all(killDir);
  std::remove(cleanPath.c_str());
  std::remove(faultyPath.c_str());
  std::remove(corruptPath.c_str());
  std::remove(v2CleanPath.c_str());
  std::remove(v2FaultyPath.c_str());
  std::remove(v2CorruptPath.c_str());

  std::FILE* j = std::fopen(jsonPath.c_str(), "w");
  if (!j) {
    std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
    return 1;
  }
  std::fprintf(
      j,
      "{\"bench\":\"chaos_soak\",\"sim_days\":%.1f,\"frames\":%zu,"
      "\"shards\":%d,\"clean_identical\":%s,\"chaos_identical\":%s,"
      "\"wire_loss\":%.5f,\"loss_estimate\":%.5f,"
      "\"evicted_calls\":%llu,\"evicted_flows\":%llu,"
      "\"pending_peak\":%llu,\"flow_peak\":%llu,"
      "\"io_retries\":%llu,\"io_short_writes\":%llu,\"checkpoints\":%llu,"
      "\"records\":%zu,\"recovered\":%llu,\"skipped\":%llu,\"resyncs\":%llu,"
      "\"frames_shed\":%llu,\"shed_invariant\":%s,"
      "\"engine_records\":%llu,\"engine_resync_cuts\":%llu,"
      "\"engine_identical\":%s,"
      "\"v2_io_retries\":%llu,\"v2_io_short_writes\":%llu,"
      "\"v2_write_identical\":%s,\"v2_extents\":%zu,"
      "\"v2_recovered\":%llu,\"v2_skipped\":%llu,\"v2_resyncs\":%llu,"
      "\"v2_engine_identical\":%s,"
      "\"g_records\":%llu,\"g_rotate_records\":%llu,\"g_segments\":%zu,"
      "\"g_incarnations\":%d,\"g_kills\":%d,"
      "\"g_captured\":%llu,\"g_sealed\":%llu,\"g_recovered\":%llu,"
      "\"g_lost\":%llu,\"g_books_balanced\":%s,"
      "\"g_stream_identical\":%s,\"g_engine_identical\":%s,"
      "\"failures\":%d}\n",
      simDays, frames.size(), kShards, aIdentical ? "true" : "false",
      bIdentical ? "true" : "false", wireLoss, lossEstimate,
      static_cast<unsigned long long>(bs.evictedCalls),
      static_cast<unsigned long long>(bs.evictedFlows),
      static_cast<unsigned long long>(bs.pendingPeak),
      static_cast<unsigned long long>(bs.tcpFlowsPeak),
      static_cast<unsigned long long>(io.retries),
      static_cast<unsigned long long>(io.shortWrites),
      static_cast<unsigned long long>(io.checkpoints),
      chaosSerial.records.size(),
      static_cast<unsigned long long>(rs.recovered),
      static_cast<unsigned long long>(rs.skipped),
      static_cast<unsigned long long>(rs.resyncs),
      static_cast<unsigned long long>(shed),
      seen + shed == dispatched ? "true" : "false",
      static_cast<unsigned long long>(engineStats.records),
      static_cast<unsigned long long>(engineStats.resyncCuts),
      serialReport == shardedReport ? "true" : "false",
      static_cast<unsigned long long>(v2io.retries),
      static_cast<unsigned long long>(v2io.shortWrites),
      fIdentical ? "true" : "false", v2Index ? v2Index->size() : 0,
      static_cast<unsigned long long>(v2rs.recovered),
      static_cast<unsigned long long>(v2rs.skipped),
      static_cast<unsigned long long>(v2rs.resyncs),
      fEngineIdentical ? "true" : "false",
      static_cast<unsigned long long>(gTotal),
      static_cast<unsigned long long>(gRotate), gPaths.size(),
      gRes.incarnations, gRes.restarts,
      static_cast<unsigned long long>(gRes.finalBooks.captured),
      static_cast<unsigned long long>(gRes.finalBooks.sealed),
      static_cast<unsigned long long>(gRes.finalBooks.recovered),
      static_cast<unsigned long long>(gRes.finalBooks.lost),
      gRes.booksBalanced && gRes.finalBooks.balanced() ? "true" : "false",
      gStreamIdentical ? "true" : "false", gEngineIdentical ? "true" : "false",
      failures);
  std::fclose(j);
  std::printf("\nwrote %s\n", jsonPath.c_str());

  if (failures) {
    std::printf("%d invariant(s) violated\n", failures);
    // Phases A-F tolerate smoke mode's tiny samples; phase G's
    // invariants are exact at any scale and stay enforced, so the
    // daemon-labelled ctest smoke entry is a real crash-recovery gate.
    return smoke ? (gFailures ? 1 : 0) : 1;
  }
  std::printf("all invariants held\n");
  return 0;
}
