
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/blocklife.cpp" "src/analysis/CMakeFiles/nfstrace_analysis.dir/blocklife.cpp.o" "gcc" "src/analysis/CMakeFiles/nfstrace_analysis.dir/blocklife.cpp.o.d"
  "/root/repo/src/analysis/hourly.cpp" "src/analysis/CMakeFiles/nfstrace_analysis.dir/hourly.cpp.o" "gcc" "src/analysis/CMakeFiles/nfstrace_analysis.dir/hourly.cpp.o.d"
  "/root/repo/src/analysis/names.cpp" "src/analysis/CMakeFiles/nfstrace_analysis.dir/names.cpp.o" "gcc" "src/analysis/CMakeFiles/nfstrace_analysis.dir/names.cpp.o.d"
  "/root/repo/src/analysis/pathrec.cpp" "src/analysis/CMakeFiles/nfstrace_analysis.dir/pathrec.cpp.o" "gcc" "src/analysis/CMakeFiles/nfstrace_analysis.dir/pathrec.cpp.o.d"
  "/root/repo/src/analysis/reorder.cpp" "src/analysis/CMakeFiles/nfstrace_analysis.dir/reorder.cpp.o" "gcc" "src/analysis/CMakeFiles/nfstrace_analysis.dir/reorder.cpp.o.d"
  "/root/repo/src/analysis/runs.cpp" "src/analysis/CMakeFiles/nfstrace_analysis.dir/runs.cpp.o" "gcc" "src/analysis/CMakeFiles/nfstrace_analysis.dir/runs.cpp.o.d"
  "/root/repo/src/analysis/summary.cpp" "src/analysis/CMakeFiles/nfstrace_analysis.dir/summary.cpp.o" "gcc" "src/analysis/CMakeFiles/nfstrace_analysis.dir/summary.cpp.o.d"
  "/root/repo/src/analysis/users.cpp" "src/analysis/CMakeFiles/nfstrace_analysis.dir/users.cpp.o" "gcc" "src/analysis/CMakeFiles/nfstrace_analysis.dir/users.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/nfstrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nfstrace_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nfs/CMakeFiles/nfstrace_nfs.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/nfstrace_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nfstrace_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
