#include "workload/eecs.hpp"

#include <algorithm>
#include <cmath>

#include "util/config.hpp"

namespace nfstrace {

EecsConfig EecsConfig::fromFile(const std::string& path) {
  ConfigFile file = ConfigFile::load(path);
  EecsConfig cfg;
  cfg.users = static_cast<int>(file.getInt("users", cfg.users));
  cfg.revalidationBurstsPeakHourly = file.getDouble(
      "revalidations_per_user_hour", cfg.revalidationBurstsPeakHourly);
  cfg.editSavesPeakHourly =
      file.getDouble("edits_per_user_hour", cfg.editSavesPeakHourly);
  cfg.buildsPeakHourly =
      file.getDouble("builds_per_user_hour", cfg.buildsPeakHourly);
  cfg.browsePeakHourly =
      file.getDouble("browse_per_user_hour", cfg.browsePeakHourly);
  cfg.appletChurnPeakHourly =
      file.getDouble("applet_per_user_hour", cfg.appletChurnPeakHourly);
  cfg.logBurstsPeakHourly =
      file.getDouble("log_bursts_per_user_hour", cfg.logBurstsPeakHourly);
  cfg.cronJobsPerNightPerUser =
      file.getDouble("cron_per_user_night", cfg.cronJobsPerNightPerUser);
  cfg.filesPerProject = static_cast<int>(
      file.getInt("files_per_project", cfg.filesPerProject));
  cfg.seed = static_cast<std::uint64_t>(
      file.getInt("seed", static_cast<std::int64_t>(cfg.seed)));
  return cfg;
}

EecsWorkload::EecsWorkload(EecsConfig config, SimEnvironment& env)
    : config_(config),
      env_(env),
      schedule_(WeeklySchedule::eecs()),
      rng_(config_.seed) {}

void EecsWorkload::setup(MicroTime t0) {
  users_.resize(static_cast<std::size_t>(config_.users));
  InMemoryFs& fs = env_.fs();
  static const char* kSrcSuffixes[] = {".c", ".h", ".cc", ".tex", ".py"};
  for (int i = 0; i < config_.users; ++i) {
    User& u = users_[static_cast<std::size_t>(i)];
    std::uint32_t uid = 3000 + static_cast<std::uint32_t>(i);
    char name[32];
    std::snprintf(name, sizeof(name), "grad%03d", i);
    u.home = std::string("/eecs/") + name;
    fs.mkdirs(u.home, uid, uid, t0 - days(400));
    fs.mkfile(u.home + "/.cshrc", 1200, uid, uid, t0 - days(300));
    fs.mkfile(u.home + "/.emacs", 8 * 1024, uid, uid, t0 - days(100));

    fs.mkdirs(u.home + "/project", uid, uid, t0 - days(120));
    for (int f = 0; f < config_.filesPerProject; ++f) {
      char fname[48];
      std::snprintf(fname, sizeof(fname), "mod%02d%s", f,
                    kSrcSuffixes[f % 5]);
      u.sourceFiles.emplace_back(fname);
      fs.mkfile(u.home + "/project/" + fname,
                500 + rng_.below(40 * 1024), uid, uid,
                t0 - days(1) - static_cast<MicroTime>(rng_.below(100)) *
                                   kMicrosPerDay / 10);
    }
    fs.mkdirs(u.home + "/.netscape/cache", uid, uid, t0 - days(60));
    fs.mkfile(u.home + "/project/run.log", 20 * 1024, uid, uid, t0 - days(2));
    u.logSize = 20 * 1024;
    // Shared research data read by cron experiments.
    fs.mkfile(u.home + "/project/dataset.db",
              (4 + rng_.below(60)) * 1024 * 1024, uid, uid, t0 - days(15));
  }
}

void EecsWorkload::scheduleNext(EventType type, int user, MicroTime after,
                                double rate) {
  MicroTime t = schedule_.nextEvent(rng_, after, rate);
  if (t < endTime_) queue_.push({t, type, user});
}

void EecsWorkload::scheduleCron(int user, MicroTime after) {
  // Cron jobs fire in the small hours (2am-5am) with per-user probability.
  MicroTime nextNight = (after / kMicrosPerDay) * kMicrosPerDay +
                        kMicrosPerDay + hours(2);
  nextNight += static_cast<MicroTime>(rng_.uniform(0.0, 3.0) *
                                      static_cast<double>(kMicrosPerHour));
  if (nextNight < endTime_ && rng_.chance(config_.cronJobsPerNightPerUser)) {
    queue_.push({nextNight, EventType::CronJob, user});
  } else if (nextNight < endTime_) {
    queue_.push({nextNight, EventType::CronJob, -user - 1});  // skip marker
  }
}

void EecsWorkload::run(MicroTime start, MicroTime end) {
  endTime_ = end;
  for (int i = 0; i < config_.users; ++i) {
    scheduleNext(EventType::Revalidate, i, start,
                 config_.revalidationBurstsPeakHourly);
    scheduleNext(EventType::EditSave, i, start, config_.editSavesPeakHourly);
    scheduleNext(EventType::Build, i, start, config_.buildsPeakHourly);
    scheduleNext(EventType::Browse, i, start, config_.browsePeakHourly);
    scheduleNext(EventType::AppletChurn, i, start,
                 config_.appletChurnPeakHourly);
    scheduleNext(EventType::LogBurst, i, start, config_.logBurstsPeakHourly);
    scheduleCron(i, start);
  }
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    switch (ev.type) {
      case EventType::Revalidate:
        doRevalidate(ev.t, ev.user);
        scheduleNext(EventType::Revalidate, ev.user, ev.t,
                     config_.revalidationBurstsPeakHourly);
        break;
      case EventType::EditSave:
        doEditSave(ev.t, ev.user);
        scheduleNext(EventType::EditSave, ev.user, ev.t,
                     config_.editSavesPeakHourly);
        break;
      case EventType::Build:
        doBuild(ev.t, ev.user);
        scheduleNext(EventType::Build, ev.user, ev.t,
                     config_.buildsPeakHourly);
        break;
      case EventType::Browse:
        doBrowse(ev.t, ev.user);
        scheduleNext(EventType::Browse, ev.user, ev.t,
                     config_.browsePeakHourly);
        break;
      case EventType::AppletChurn:
        doAppletChurn(ev.t, ev.user);
        scheduleNext(EventType::AppletChurn, ev.user, ev.t,
                     config_.appletChurnPeakHourly);
        break;
      case EventType::LogBurst:
        doLogBurst(ev.t, ev.user);
        scheduleNext(EventType::LogBurst, ev.user, ev.t,
                     config_.logBurstsPeakHourly);
        break;
      case EventType::CronJob: {
        int user = ev.user < 0 ? -ev.user - 1 : ev.user;
        if (ev.user >= 0) doCronJob(ev.t, ev.user);
        scheduleCron(user, ev.t);
        break;
      }
    }
  }
}

bool EecsWorkload::ensureHandles(NfsClient& client, MicroTime& now, User& u) {
  if (u.homeFh.len == 0) {
    auto fh = client.lookupPath(now, u.home);
    if (!fh) return false;
    u.homeFh = *fh;
  }
  if (u.srcDirFh.len == 0) {
    auto fh = client.lookupPath(now, u.home + "/project");
    if (!fh) return false;
    u.srcDirFh = *fh;
  }
  if (u.cacheDirFh.len == 0) {
    auto fh = client.lookupPath(now, u.home + "/.netscape/cache");
    if (!fh) return false;
    u.cacheDirFh = *fh;
  }
  if (u.logFh.len == 0) {
    auto fh = client.lookupPath(now, u.home + "/project/run.log");
    if (!fh) return false;
    u.logFh = *fh;
  }
  return true;
}

void EecsWorkload::doRevalidate(MicroTime t, int user) {
  // The desktop sweeps its working set checking whether cached copies are
  // still valid: lookup + getattr + access, almost never any data.
  User& u = users_[static_cast<std::size_t>(user)];
  MicroTime now = t;
  NfsClient& client = clientFor(user);
  client.setIdentity(3000 + static_cast<std::uint32_t>(user),
                     3000 + static_cast<std::uint32_t>(user));
  if (!ensureHandles(client, now, u)) return;

  // An `ls -l` of the project directory now and then (READDIRPLUS on
  // v3 clients, READDIR on v2).
  if (rng_.chance(0.2)) {
    client.readdir(now, u.srcDirFh, /*plus=*/true);
  }
  std::size_t sweep = 6 + rng_.below(16);
  for (std::size_t i = 0; i < sweep; ++i) {
    const auto& name = u.sourceFiles[rng_.below(u.sourceFiles.size())];
    auto fh = client.lookupPath(now, u.home + "/project/" + name);
    if (!fh) continue;
    auto attrs = client.getattr(now, *fh, rng_.chance(0.7));
    if (attrs) client.access(now, *fh);
    // Cache almost always valid: data read only occasionally.
    if (attrs && rng_.chance(0.03)) {
      client.readFile(now, *fh);
    }
  }
  // Research code over the shared dataset, two access shapes:
  //  * scans: a slice read sequentially with small record-skips;
  //  * queries: index-driven point lookups scattered across the file —
  //    the genuinely random accesses that put EECS near Roselli's NT
  //    workload (~60% of bytes accessed randomly, paper §5.1/Fig. 2).
  if (rng_.chance(0.16)) {
    if (auto dfh = client.lookupPath(now, u.home + "/project/dataset.db")) {
      auto dattrs = client.getattr(now, *dfh);
      if (dattrs && dattrs->size > (1 << 20)) {
        std::vector<NfsClient::Extent> extents;
        std::uint64_t fileBlocks = dattrs->size / kNfsBlockSize;
        if (rng_.chance(0.72)) {
          // Query pattern: scattered point reads.
          int lookups = 6 + static_cast<int>(rng_.below(14));
          for (int q = 0; q < lookups; ++q) {
            std::uint64_t block = rng_.below(fileBlocks);
            std::uint64_t len =
                (1 + rng_.below(3)) * static_cast<std::uint64_t>(
                                          kNfsBlockSize);
            extents.push_back({block * kNfsBlockSize, len});
          }
        } else {
          // Scan pattern: one slice with small skips.
          auto len = static_cast<std::uint64_t>(
              (64 + rng_.below(448)) * 1024);
          std::uint64_t maxStart =
              dattrs->size - std::min(dattrs->size, len);
          std::uint64_t pos =
              rng_.below(maxStart / kNfsBlockSize + 1) * kNfsBlockSize;
          std::uint64_t remaining = len;
          while (remaining > 0) {
            std::uint64_t chunk = std::min<std::uint64_t>(
                (1 + rng_.below(6)) * kNfsBlockSize, remaining);
            extents.push_back({pos, chunk});
            pos += chunk;
            remaining -= chunk;
            if (rng_.chance(0.3)) {
              pos += (1 + rng_.below(4)) * static_cast<std::uint64_t>(
                                               kNfsBlockSize);
            }
          }
        }
        client.readSegments(now, *dfh, extents);
      }
    }
  }
}

void EecsWorkload::doEditSave(MicroTime t, int user) {
  User& u = users_[static_cast<std::size_t>(user)];
  MicroTime now = t;
  NfsClient& client = clientFor(user);
  client.setIdentity(3000 + static_cast<std::uint32_t>(user),
                     3000 + static_cast<std::uint32_t>(user));
  if (!ensureHandles(client, now, u)) return;

  const auto& name = u.sourceFiles[rng_.below(u.sourceFiles.size())];
  auto fh = client.lookupPath(now, u.home + "/project/" + name);
  if (!fh) return;
  auto attrs = client.getattr(now, *fh, true);
  if (!attrs) return;
  client.readFile(now, *fh);

  // Editor autosave (#name#), then save-in-place and remove the autosave.
  std::string autosave = "#" + name + "#";
  if (auto afh = client.create(now, u.srcDirFh, autosave, false)) {
    client.writeRange(now, *afh, 0, std::max<std::uint64_t>(attrs->size, 512));
  }
  now += seconds(rng_.uniform(10.0, 120.0));
  auto newSize = static_cast<std::uint64_t>(
      std::max(300.0, static_cast<double>(attrs->size) *
                          rng_.uniform(0.95, 1.12)));
  client.writeRange(now, *fh, 0, newSize);
  if (newSize < attrs->size) client.truncate(now, *fh, newSize);
  client.remove(now, u.srcDirFh, autosave);
}

void EecsWorkload::doBuild(MicroTime t, int user) {
  User& u = users_[static_cast<std::size_t>(user)];
  MicroTime now = t;
  NfsClient& client = clientFor(user);
  client.setIdentity(3000 + static_cast<std::uint32_t>(user),
                     3000 + static_cast<std::uint32_t>(user));
  if (!ensureHandles(client, now, u)) return;

  // make: stat everything, recompile a subset, relink.
  std::uint64_t binSize = 0;
  for (const auto& name : u.sourceFiles) {
    auto fh = client.lookupPath(now, u.home + "/project/" + name);
    if (!fh) continue;
    auto attrs = client.getattr(now, *fh, true);
    if (!attrs) continue;
    if (!rng_.chance(0.35)) continue;  // up to date
    client.readFile(now, *fh);
    // Object file is created fresh each time (unlink + create), so its
    // blocks die by deletion on the next build.
    std::string obj = name.substr(0, name.rfind('.')) + ".o";
    client.remove(now, u.srcDirFh, obj);  // may fail: first build
    if (auto ofh = client.create(now, u.srcDirFh, obj, false)) {
      std::uint64_t osize = attrs->size * 2 + 2048;
      client.writeRange(now, *ofh, 0, osize);
      binSize += osize;
    }
    now += seconds(rng_.uniform(0.3, 3.0));
  }
  if (binSize > 0) {
    client.remove(now, u.srcDirFh, "prog");
    if (auto bfh = client.create(now, u.srcDirFh, "prog", false)) {
      client.writeRange(now, *bfh, 0, binSize);
    }
  }
}

void EecsWorkload::doBrowse(MicroTime t, int user) {
  User& u = users_[static_cast<std::size_t>(user)];
  MicroTime now = t;
  NfsClient& client = clientFor(user);
  client.setIdentity(3000 + static_cast<std::uint32_t>(user),
                     3000 + static_cast<std::uint32_t>(user));
  if (!ensureHandles(client, now, u)) return;

  // A browsing burst writes a handful of pages + assets into the cache
  // directory in the user's home (the paper's "somewhat perverse" default).
  std::size_t objects = 2 + rng_.below(8);
  for (std::size_t i = 0; i < objects; ++i) {
    char cname[32];
    std::snprintf(cname, sizeof(cname), "cache%08x",
                  0x10000 * user + ++u.cacheCounter);
    if (auto cfh = client.create(now, u.cacheDirFh, cname, false)) {
      auto size = static_cast<std::uint64_t>(std::clamp(
          rng_.lognormal(std::log(12.0 * 1024), 1.1), 400.0,
          512.0 * 1024));
      client.writeRange(now, *cfh, 0, size);
      u.cacheFiles.emplace_back(cname);
    }
    now += seconds(rng_.uniform(0.5, 6.0));
    // Revisits hit the cache: read an old object occasionally.
    if (!u.cacheFiles.empty() && rng_.chance(0.15)) {
      const auto& old = u.cacheFiles[rng_.below(u.cacheFiles.size())];
      if (auto ofh = client.lookupPath(now, u.home + "/.netscape/cache/" + old)) {
        client.readFile(now, *ofh);
      }
    }
  }
  // LRU eviction keeps the cache bounded.
  while (u.cacheFiles.size() > 80) {
    client.remove(now, u.cacheDirFh, u.cacheFiles.front());
    u.cacheFiles.erase(u.cacheFiles.begin());
  }
}

void EecsWorkload::doAppletChurn(MicroTime t, int user) {
  // Window managers/desktops create and delete small Applet_*_Extern
  // files constantly (~10,000/day across EECS in the paper).
  User& u = users_[static_cast<std::size_t>(user)];
  MicroTime now = t;
  NfsClient& client = clientFor(user);
  client.setIdentity(3000 + static_cast<std::uint32_t>(user),
                     3000 + static_cast<std::uint32_t>(user));
  if (!ensureHandles(client, now, u)) return;

  int churn = 1 + static_cast<int>(rng_.below(3));
  for (int i = 0; i < churn; ++i) {
    char aname[48];
    std::snprintf(aname, sizeof(aname), "Applet_%d_Extern",
                  1000 * user + ++u.appletCounter);
    if (auto afh = client.create(now, u.homeFh, aname, false)) {
      client.writeRange(now, *afh, 0, 200 + rng_.below(2000));
      now += seconds(rng_.uniform(1.0, 30.0));
      client.remove(now, u.homeFh, aname);
    }
  }
}

void EecsWorkload::doLogBurst(MicroTime t, int user) {
  // Unbuffered log/index appends: the tail block is rewritten by every
  // small append, so most of these blocks die in well under a second —
  // the source of EECS's sub-second block-lifetime mode.
  User& u = users_[static_cast<std::size_t>(user)];
  MicroTime now = t;
  NfsClient& client = clientFor(user);
  client.setIdentity(3000 + static_cast<std::uint32_t>(user),
                     3000 + static_cast<std::uint32_t>(user));
  if (!ensureHandles(client, now, u)) return;

  std::size_t appends = 15 + rng_.below(60);
  for (std::size_t i = 0; i < appends; ++i) {
    auto rec = 80 + rng_.below(700);
    client.writeRange(now, u.logFh, u.logSize, rec, /*stable=*/true);
    u.logSize += rec;
    now += static_cast<MicroTime>(rng_.exponential(120'000.0));  // ~0.12 s
  }
  // Monitoring tools tail the log: a short read at the end of the file.
  if (rng_.chance(0.25) && u.logSize > 16 * 1024) {
    client.readRange(now, u.logFh, u.logSize - 16 * 1024, 16 * 1024);
  }
  if (u.logSize > 6 * 1024 * 1024) {
    client.truncate(now, u.logFh, 0);
    u.logSize = 0;
  }
}

void EecsWorkload::doCronJob(MicroTime t, int user) {
  // Night batch work: scan the dataset sequentially, write a processed
  // copy, delete the previous output.
  User& u = users_[static_cast<std::size_t>(user)];
  MicroTime now = t;
  NfsClient& client = clientFor(user);
  client.setIdentity(3000 + static_cast<std::uint32_t>(user),
                     3000 + static_cast<std::uint32_t>(user));
  if (!ensureHandles(client, now, u)) return;

  auto dfh = client.lookupPath(now, u.home + "/project/dataset.db");
  if (!dfh) return;
  auto attrs = client.getattr(now, *dfh, true);
  if (!attrs) return;
  client.readFile(now, *dfh);

  client.remove(now, u.srcDirFh, "results.out");
  if (auto rfh = client.create(now, u.srcDirFh, "results.out", false)) {
    // Data processing emits records bucket-by-bucket: bursts of
    // sequential output separated by seeks across the output file — the
    // most seek-prone writes in the trace (paper Fig. 5, EECS writes).
    std::uint64_t total = attrs->size / 2 + 4096;
    std::vector<NfsClient::Extent> extents;
    std::uint64_t written = 0;
    std::uint64_t pos = 0;
    while (written < total) {
      std::uint64_t stretch = std::min<std::uint64_t>(
          (1 + rng_.below(4)) * kNfsBlockSize, total - written);
      extents.push_back({pos, stretch});
      written += stretch;
      if (rng_.chance(0.8)) {
        pos = rng_.below(total / kNfsBlockSize + 1) * kNfsBlockSize;
      } else {
        pos += stretch;
      }
    }
    client.writeSegments(now, *rfh, extents);
  }
}

}  // namespace nfstrace
