// Simulated wire, mirror port, and NFS transport.
//
// Frames exchanged between the simulated client and server are copied to a
// mirror port (as on the real switch hosting the CAMPUS arrays).  The
// mirror port has finite bandwidth: during bursts it cannot forward
// everything and drops frames — the §4.1.4 effect that cost the authors up
// to 10% of packets on CAMPUS, while the EECS monitor port (as fast as the
// server port) lost nothing.
#pragma once

#include <cstdint>
#include <memory>

#include "net/packet.hpp"
#include "nfs/messages.hpp"
#include "obs/metrics.hpp"
#include "pcap/pcap.hpp"
#include "rpc/rpc.hpp"
#include "server/mountd.hpp"
#include "server/portmap.hpp"
#include "server/server.hpp"
#include "util/rng.hpp"

namespace nfstrace {

/// Anything that consumes captured frames (the sniffer, a pcap writer, a
/// mirror port in front of either).
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void onFrame(const CapturedPacket& pkt) = 0;
};

/// Tee: copy frames to several sinks.
class FrameTee : public FrameSink {
 public:
  void addSink(FrameSink* sink) { sinks_.push_back(sink); }
  void onFrame(const CapturedPacket& pkt) override {
    for (auto* s : sinks_) s->onFrame(pkt);
  }

 private:
  std::vector<FrameSink*> sinks_;
};

/// Bandwidth-limited mirror port with a drop-tail buffer.  Forwarding a
/// frame occupies the port for size*8/bandwidth seconds; frames that would
/// overflow the buffer while the port is busy are dropped.
class MirrorPort : public FrameSink {
 public:
  struct Config {
    double bandwidthBitsPerSec = 1e9;
    std::size_t bufferBytes = 256 * 1024;
  };

  MirrorPort(Config config, FrameSink& downstream)
      : config_(config), downstream_(downstream) {}

  void onFrame(const CapturedPacket& pkt) override;

  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t dropped() const { return dropped_; }
  double dropRate() const {
    auto total = forwarded_ + dropped_;
    return total ? static_cast<double>(dropped_) / static_cast<double>(total)
                 : 0.0;
  }

  /// Publish forwarded/dropped counters and a drop-rate gauge
  /// (netcap.mirror_*).  Plain handles updated inline — no captured
  /// state, so the port may be destroyed before the registry.
  void attachMetrics(obs::Registry& registry) {
    forwardedC_ = registry.counterHandle("netcap.mirror_forwarded", 0);
    droppedC_ = registry.counterHandle("netcap.mirror_dropped", 0);
    dropRateG_ = registry.gaugeHandle("netcap.mirror_drop_rate");
  }

 private:
  Config config_;
  FrameSink& downstream_;
  MicroTime busyUntil_ = 0;
  std::size_t queuedBytes_ = 0;
  std::uint64_t forwarded_ = 0;
  std::uint64_t dropped_ = 0;
  obs::CounterHandle forwardedC_;
  obs::CounterHandle droppedC_;
  obs::GaugeHandle dropRateG_;
};

/// Network + server round trip for one client host.  Encodes calls to real
/// frames (UDP datagrams or record-marked TCP segments), offers every frame
/// to the tap, runs the server, and returns the decoded reply with its
/// observed timestamp.
class NfsTransport {
 public:
  struct Config {
    IpAddr clientIp = makeIp(10, 1, 0, 2);
    IpAddr serverIp = makeIp(10, 0, 0, 1);
    std::uint8_t nfsVers = 3;
    bool useTcp = true;
    std::size_t mtu = kJumboMtu;       // CAMPUS: jumbo; EECS/UDP: 1500
    MicroTime oneWayDelay = 60;        // switch + stack latency, usec
    MicroTime serverCpuPerCall = 40;   // usec of server think time
    std::uint16_t clientPort = 1023;   // reserved port, as real clients use
    std::string machineName = "client";
  };

  NfsTransport(Config config, NfsServer& server, FrameSink* tap,
               std::uint64_t seed = 1, MountServer* mountd = nullptr,
               Portmapper* portmap = nullptr);

  struct Outcome {
    NfsReplyRes reply;
    MicroTime sentTs = 0;     // when the call hit the wire
    MicroTime replyTs = 0;    // when the reply was observable at the tap
    std::uint32_t xid = 0;
  };

  /// Send one call at `sendTs` with the given AUTH_UNIX identity.
  Outcome call(MicroTime sendTs, const NfsCallArgs& args, std::uint32_t uid,
               std::uint32_t gid);

  /// MOUNT protocol MNT: resolve an export path to its root handle over
  /// the wire (requires a MountServer).  Returns nullopt on failure.
  std::optional<FileHandle> mount(MicroTime& sendTs, const std::string& path,
                                  std::uint32_t uid, std::uint32_t gid);

  /// Portmap GETPORT over the wire (requires a Portmapper); 0 = not
  /// registered / no portmapper.
  std::uint32_t getport(MicroTime& sendTs, std::uint32_t prog,
                        std::uint32_t vers, std::uint32_t proto);

  const Config& config() const { return config_; }
  std::uint64_t callsSent() const { return callsSent_; }

 private:
  void emitFrames(MicroTime ts, std::span<const std::uint8_t> rpcBody,
                  bool fromClient);

  Config config_;
  NfsServer& server_;
  MountServer* mountd_;
  Portmapper* portmap_;
  FrameSink* tap_;
  Rng rng_;
  std::uint32_t nextXid_;
  std::uint32_t tcpSeqClient_ = 1;
  std::uint32_t tcpSeqServer_ = 1;
  std::uint64_t callsSent_ = 0;
};

}  // namespace nfstrace
