file(REMOVE_RECURSE
  "CMakeFiles/nfs_test.dir/nfs_test.cpp.o"
  "CMakeFiles/nfs_test.dir/nfs_test.cpp.o.d"
  "nfs_test"
  "nfs_test.pdb"
  "nfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
