// File-system hierarchy reconstruction from passive traces (§4.1.1).
//
// The tracer never sees the server's namespace directly, but LOOKUP,
// CREATE, MKDIR, RENAME and READDIRPLUS traffic reveals (parent handle,
// name) -> child handle edges.  After a few minutes of trace the active
// part of the hierarchy is almost fully known — the paper reports the
// probability of meeting a file whose parent is unknown becomes very
// small.  This class learns the edges and answers path queries.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>

#include "nfs/types.hpp"
#include "trace/record.hpp"

namespace nfstrace {

class PathReconstructor {
 public:
  /// Learn from one record (call + reply as available).
  void observe(const TraceRecord& rec);

  /// Last-known name (final path component) of a handle.
  std::optional<std::string> nameOf(const FileHandle& fh) const;
  /// Full path if every ancestor edge is known; nullopt otherwise.
  std::optional<std::string> pathOf(const FileHandle& fh) const;
  /// Child handle for (dir, name), if that edge has been observed.
  std::optional<FileHandle> childOf(const FileHandle& dir,
                                    const std::string& name) const;
  /// Parent handle, if known.
  std::optional<FileHandle> parentOf(const FileHandle& fh) const;

  std::size_t knownFiles() const { return up_.size(); }

  /// Fraction of queried records whose handle had a known parent when the
  /// query was made (the paper's coverage measure).
  double parentCoverage() const {
    auto total = coverageHits_ + coverageMisses_;
    return total ? static_cast<double>(coverageHits_) /
                       static_cast<double>(total)
                 : 0.0;
  }

 private:
  struct Edge {
    FileHandle parent;
    std::string name;
  };
  void learn(const FileHandle& parent, const std::string& name,
             const FileHandle& child);

  std::unordered_map<FileHandle, Edge, FileHandleHash> up_;
  std::unordered_map<std::string, FileHandle> down_;  // dirhex/name -> child
  std::uint64_t coverageHits_ = 0;
  std::uint64_t coverageMisses_ = 0;
};

}  // namespace nfstrace
