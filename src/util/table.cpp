#include "util/table.hpp"

#include <cstdint>
#include <cstdio>
#include <sstream>

namespace nfstrace {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::addRow(std::vector<std::string> cells) {
  rows_.push_back({std::move(cells), pending_rule_});
  pending_rule_ = false;
}

void TextTable::addRule() { pending_rule_ = true; }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.cells.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  auto renderRule = [&](std::ostringstream& out) {
    out << '+';
    for (auto w : widths) {
      out << std::string(w + 2, '-') << '+';
    }
    out << '\n';
  };
  auto renderCells = [&](std::ostringstream& out,
                         const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      out << ' ' << cell << std::string(widths[c] - cell.size() + 1, ' ') << '|';
    }
    out << '\n';
  };

  std::ostringstream out;
  renderRule(out);
  renderCells(out, header_);
  renderRule(out);
  for (const auto& row : rows_) {
    if (row.rule_before) renderRule(out);
    renderCells(out, row.cells);
  }
  renderRule(out);
  return out.str();
}

std::string TextTable::fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string TextTable::percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, 100.0 * fraction);
  return buf;
}

std::string TextTable::withCommas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

}  // namespace nfstrace
