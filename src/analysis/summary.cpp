#include "analysis/summary.hpp"

namespace nfstrace {

void summaryObserve(TraceSummary& s, const TraceRecord& rec) {
  if (s.totalOps == 0) {
    s.firstTs = s.lastTs = rec.ts;
  } else {
    s.firstTs = std::min(s.firstTs, rec.ts);
    s.lastTs = std::max(s.lastTs, rec.ts);
  }
  ++s.totalOps;
  s.opCounts[static_cast<std::size_t>(rec.op)]++;
  if (!rec.hasReply) ++s.repliesMissing;
  if (rec.op == NfsOp::Read) {
    ++s.readOps;
    ++s.dataOps;
    s.bytesRead += rec.hasReply ? rec.retCount : rec.count;
  } else if (rec.op == NfsOp::Write) {
    ++s.writeOps;
    ++s.dataOps;
    s.bytesWritten += rec.hasReply && rec.retCount ? rec.retCount
                                                   : rec.count;
  } else {
    ++s.metadataOps;
  }
}

void summaryMerge(TraceSummary& into, const TraceSummary& from) {
  if (from.totalOps == 0) return;
  if (into.totalOps == 0) {
    into = from;
    return;
  }
  into.firstTs = std::min(into.firstTs, from.firstTs);
  into.lastTs = std::max(into.lastTs, from.lastTs);
  into.totalOps += from.totalOps;
  for (std::size_t i = 0; i < kNfsOpCount; ++i) {
    into.opCounts[i] += from.opCounts[i];
  }
  into.readOps += from.readOps;
  into.writeOps += from.writeOps;
  into.bytesRead += from.bytesRead;
  into.bytesWritten += from.bytesWritten;
  into.dataOps += from.dataOps;
  into.metadataOps += from.metadataOps;
  into.repliesMissing += from.repliesMissing;
}

TraceSummary summarize(const std::vector<TraceRecord>& records) {
  TraceSummary s;
  for (const auto& rec : records) summaryObserve(s, rec);
  return s;
}

}  // namespace nfstrace
