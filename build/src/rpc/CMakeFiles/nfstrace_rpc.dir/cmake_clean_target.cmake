file(REMOVE_RECURSE
  "libnfstrace_rpc.a"
)
