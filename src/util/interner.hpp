// String interning for the analysis engine's batched trace decode.
//
// A trace touches the same paths and file handles millions of times; the
// batch reader interns each distinct byte string once and hands analyses a
// dense 32-bit id instead of a freshly heap-allocated std::string per
// record.  Ids are assigned in first-appearance order, so for the same
// input they are identical regardless of batch size or worker count — the
// determinism the engine's byte-identical guarantee leans on.
//
// Concurrency contract (single-writer / many-reader): only one thread may
// call intern(); view()/size() may be called from other threads for ids
// that were published to them through a synchronizing handoff (the
// engine's batch queues).  Storage blocks never move once allocated and
// already-written entries are never touched again, so readers need no
// locks — the happens-before edge of the queue push/pop is enough.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

namespace nfstrace {

class StringInterner {
 public:
  /// Id 0 is always the empty string.
  static constexpr std::uint32_t kEmptyId = 0;

  StringInterner();

  /// Create-or-get the id for `s`.  Single writer thread only.
  std::uint32_t intern(std::string_view s);

  /// The bytes behind an id previously returned by intern().
  std::string_view view(std::uint32_t id) const {
    return blocks_[id >> kBlockShift]->items[id & (kBlockEntries - 1)];
  }

  /// Distinct strings interned (including the reserved empty string).
  std::size_t size() const { return next_; }
  /// Total payload bytes held.
  std::size_t bytes() const { return bytes_; }

 private:
  static constexpr std::uint32_t kBlockShift = 12;
  static constexpr std::uint32_t kBlockEntries = 1u << kBlockShift;
  static constexpr std::uint32_t kMaxBlocks = 1u << 12;  // 16.7M strings

  struct Block {
    std::array<std::string, kBlockEntries> items;
  };

  // Fixed table of stable block pointers: view() never walks a container
  // that intern() might be reorganizing.
  std::array<std::unique_ptr<Block>, kMaxBlocks> blocks_;
  std::unordered_map<std::string_view, std::uint32_t> ids_;
  std::uint32_t next_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace nfstrace
