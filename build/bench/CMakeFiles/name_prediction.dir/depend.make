# Empty dependencies file for name_prediction.
# This may be replaced when dependencies are built.
