# Empty compiler generated dependencies file for nfstrace_netcap.
# This may be replaced when dependencies are built.
