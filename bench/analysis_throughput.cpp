// Throughput of the analysis side: legacy one-scan-per-analysis vs the
// single-pass engine at 1/2/4 workers.
//
// The legacy model is what the repo's tooling did before the engine
// existed: each of the eight standard analyses re-read the trace file
// from disk and decoded every record again — eight decodes of the same
// bytes to produce one report.  The engine decodes each batch exactly
// once (strings interned to 32-bit ids, record slots reused) and fans it
// out to all eight passes, optionally across worker threads.
//
// A fourth phase re-encodes the trace as columnar v2 and scans it with
// the engine's extent-parallel decoder (engine.runFile, 4 decode
// threads): workers claim whole extents from the footer index instead
// of sharing one reader thread, which is where the remaining gap to raw
// v2 scan speed lives.
//
// The engine's report text is the identity oracle: the run at every
// worker count — and the extent-parallel run — must render byte-identical
// output to the serial run, or the bench fails.  Results land in
// BENCH_analysis.json; exit is nonzero unless the 4-worker engine beats
// the legacy baseline by >= 3x with identical output (skipped in
// NFSTRACE_SMOKE=1 mode).  The extent-decode scaling gate
// (engine4_rps_parallel_decode >= 3x engine1_rps) applies only when the
// host has >= 4 hardware threads; fewer cores report
// scaling_gate_applied:false and time multi-worker phases single-rep.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "analysis/blocklife.hpp"
#include "analysis/engine/engine.hpp"
#include "analysis/engine/passes.hpp"
#include "analysis/engine/report.hpp"
#include "analysis/hourly.hpp"
#include "analysis/names.hpp"
#include "analysis/pathrec.hpp"
#include "analysis/reorder.hpp"
#include "analysis/runs.hpp"
#include "analysis/summary.hpp"
#include "analysis/users.hpp"
#include "bench_common.hpp"
#include "trace/tracefile.hpp"

namespace nfstrace {
namespace {

using bench::kWeekStart;
using bench::makeEecs;

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

constexpr int kReps = 3;

template <typename Fn>
double bestRps(std::uint64_t records, Fn&& run, int reps) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    run();
    double dt = secondsSince(t0);
    double rps = static_cast<double>(records) / dt;
    if (rps > best) best = rps;
  }
  return best;
}

/// One full report's worth of work, the pre-engine way: every analysis
/// re-reads and re-decodes the trace file for itself.
void runLegacy(const std::string& path) {
  {  // summary
    auto records = TraceReader::readAll(path);
    summarize(records);
  }
  {  // hourly
    auto records = TraceReader::readAll(path);
    HourlyStats hs;
    for (const auto& r : records) hs.observe(r);
    hs.allHours();
    hs.peakHours();
    hs.findLeastVarianceWindow();
  }
  {  // users
    auto records = TraceReader::readAll(path);
    UserStats us;
    for (const auto& r : records) us.observe(r);
  }
  {  // reorder sweep
    auto records = TraceReader::readAll(path);
    sweepReorderWindows(records, {0, 1'000, 5'000, 10'000, 50'000, 100'000,
                                  1'000'000});
  }
  {  // runs
    auto records = TraceReader::readAll(path);
    auto sorted = sortWithReorderWindow(records, 10'000);
    auto runs = detectRuns(sorted.records);
    summarizeRunPatterns(runs);
    bytesByFileSize(runs);
    sequentialityBySize(runs, false, true);
    sequentialityBySize(runs, true, false);
  }
  {  // block life
    auto records = TraceReader::readAll(path);
    auto s = summarize(records);
    BlockLifeConfig cfg;
    cfg.phase1Start = s.firstTs;
    cfg.phase1Length = std::max<MicroTime>((s.lastTs - s.firstTs) / 2, 1);
    cfg.phase2Length = cfg.phase1Length;
    EmpiricalCdf lifetimes;
    analyzeBlockLife(records, cfg, &lifetimes);
  }
  {  // names
    auto records = TraceReader::readAll(path);
    FileLifeCensus census;
    for (const auto& r : records) census.observe(r);
    census.finish();
  }
  {  // pathrec
    auto records = TraceReader::readAll(path);
    PathReconstructor pr;
    for (const auto& r : records) pr.observe(r);
  }
}

// The report label is a constant so runs over different encodings of
// the same records (v1 file vs its v2 re-encode) stay comparable.
std::string runEngine(const std::string& path, std::size_t workers,
                      std::size_t decodeThreads = 1) {
  StandardAnalyses analyses;
  AnalysisEngine::Config cfg;
  cfg.workers = workers;
  cfg.decodeThreads = decodeThreads;
  AnalysisEngine engine(cfg);
  engine.addPasses(analyses.all());
  if (decodeThreads > 1) {
    engine.runFile(path);
  } else {
    TraceReader reader(path);
    engine.run(reader);
  }
  return renderReportText("trace", analyses);
}

}  // namespace
}  // namespace nfstrace

int main(int argc, char** argv) {
  using namespace nfstrace;
  const std::string jsonPath = argc > 1 ? argv[1] : "BENCH_analysis.json";
  const bool smoke = bench::smokeMode();
  const double simDays = smoke ? 0.05 : 1.0;
  const int users = smoke ? 6 : 16;
  const int reps = smoke ? 1 : kReps;
  const std::string tracePath = "bench_analysis.trace";

  std::printf("generating synthetic EECS trace (%.2f days, %d users)...\n",
              simDays, users);
  std::uint64_t records = 0;
  {
    TraceWriter writer(tracePath);
    auto eecs = makeEecs(users, [&](const TraceRecord& r) {
      writer.write(r);
      ++records;
    });
    eecs.workload->setup(kWeekStart);
    eecs.workload->run(kWeekStart, kWeekStart + days(simDays));
    eecs.env->finishCapture();
  }
  std::printf("  %llu records\n", static_cast<unsigned long long>(records));

  // Warm-up: one decode so page cache and allocator state are comparable.
  TraceReader::readAll(tracePath);

  const unsigned hwThreads =
      std::max(1u, std::thread::hardware_concurrency());
  // On a single hardware thread, multi-worker timings only measure
  // scheduler overhead: run those phases once (the identity oracle
  // still applies) and skip the scaling gates.
  const int multiReps = hwThreads > 1 ? reps : 1;
  if (hwThreads == 1) {
    std::printf("single hardware thread: multi-worker phases run 1 rep, "
                "scaling gates skipped\n");
  }

  double legacyRps =
      bestRps(records, [&] { runLegacy(tracePath); }, reps);
  std::printf("legacy 8-scan   : %10.0f rec/s\n", legacyRps);

  std::string serialReport;
  double engineRps[3] = {0, 0, 0};
  const std::size_t workerCounts[3] = {1, 2, 4};
  bool identical = true;
  for (int i = 0; i < 3; ++i) {
    std::string report;
    engineRps[i] = bestRps(
        records, [&] { report = runEngine(tracePath, workerCounts[i]); },
        i == 0 ? reps : multiReps);
    if (i == 0) {
      serialReport = report;
    } else if (report != serialReport) {
      identical = false;
    }
    std::printf("engine x%zu       : %10.0f rec/s  (identical=%s)\n",
                workerCounts[i], engineRps[i],
                i == 0 || report == serialReport ? "yes" : "NO");
  }
  identical = identical && !serialReport.empty();

  // Extent-parallel decode: re-encode as columnar v2 (the extent
  // scheduler needs a footer index) and scan with 4 decode threads.
  const std::string v2Path = "bench_analysis_v2.trace";
  {
    TraceWriter::Options wopts;
    wopts.format = TraceWriter::Format::V2;
    TraceWriter writer(v2Path, wopts);
    TraceReader reader(tracePath);
    TraceRecord rec;
    while (reader.nextInto(rec)) writer.write(rec);
    writer.finalize();
  }
  std::string parReport;
  double parRps = bestRps(
      records, [&] { parReport = runEngine(v2Path, 1, 4); }, multiReps);
  bool parIdentical = parReport == serialReport;
  std::printf("engine x4 decode: %10.0f rec/s  (identical=%s)\n", parRps,
              parIdentical ? "yes" : "NO");
  identical = identical && parIdentical;

  double speedup4 = legacyRps > 0 ? engineRps[2] / legacyRps : 0;
  double decodeSpeedup = engineRps[0] > 0 ? parRps / engineRps[0] : 0;
  std::printf("\nspeedup at 4 workers over legacy: %.2fx\n", speedup4);
  std::printf("extent-parallel decode over serial engine: %.2fx\n",
              decodeSpeedup);
  std::printf("engine output identical on every path: %s\n",
              identical ? "true" : "false");

  std::remove(tracePath.c_str());
  std::remove(v2Path.c_str());

  std::FILE* j = std::fopen(jsonPath.c_str(), "w");
  if (!j) {
    std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
    return 1;
  }
  const bool scalingGate = hwThreads >= 4;
  std::fprintf(j,
               "{\"bench\":\"analysis_throughput\",\"records\":%llu,"
               "\"hw_threads\":%u,"
               "\"legacy_rps\":%.0f,\"engine1_rps\":%.0f,"
               "\"engine2_rps\":%.0f,\"engine4_rps\":%.0f,"
               "\"engine4_rps_parallel_decode\":%.0f,"
               "\"speedup_4worker\":%.5g,"
               "\"decode_speedup_4thread\":%.5g,"
               "\"output_identical\":%s,"
               "\"scaling_gate_applied\":%s",
               static_cast<unsigned long long>(records), hwThreads, legacyRps,
               engineRps[0], engineRps[1], engineRps[2], parRps, speedup4,
               decodeSpeedup, identical ? "true" : "false",
               scalingGate && !smoke ? "true" : "false");
  if (hwThreads == 1) {
    std::fprintf(j,
                 ",\"skipped_reason\":\"hw_threads==1: multi-worker phases "
                 "single-rep, scaling gates skipped\"");
  }
  std::fprintf(j, "}\n");
  std::fclose(j);
  std::printf("wrote %s\n", jsonPath.c_str());

  if (smoke) return 0;
  bool ok = identical && speedup4 >= 3.0;
  // The extent-decode scaling gate needs real cores to mean anything.
  if (scalingGate) ok = ok && parRps >= 3.0 * engineRps[0];
  return ok ? 0 : 1;
}
