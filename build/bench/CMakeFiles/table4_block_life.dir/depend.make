# Empty dependencies file for table4_block_life.
# This may be replaced when dependencies are built.
