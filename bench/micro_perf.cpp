// Throughput microbenchmarks (google-benchmark) for the tracing pipeline
// components: XDR codecs, frame building/parsing, RPC record marking, the
// sniffer's full decode path, the anonymizer, and the analyses.  These
// bound how fast a capture can be processed — the tracer had to keep up
// with a gigabit mirror port.
#include <benchmark/benchmark.h>

#include "analysis/reorder.hpp"
#include "analysis/runs.hpp"
#include "anon/anon.hpp"
#include "net/packet.hpp"
#include "nfs/messages.hpp"
#include "rpc/rpc.hpp"
#include "sniffer/sniffer.hpp"
#include "trace/tracefile.hpp"
#include "util/rng.hpp"

namespace nfstrace {
namespace {

void BM_XdrEncodeRead(benchmark::State& state) {
  auto fh = FileHandle::make(1, 42, 7);
  for (auto _ : state) {
    XdrEncoder enc;
    encodeCall3(enc, ReadArgs{fh, 8192, 8192});
    benchmark::DoNotOptimize(enc.bytes().data());
  }
}
BENCHMARK(BM_XdrEncodeRead);

void BM_XdrDecodeRead(benchmark::State& state) {
  XdrEncoder enc;
  encodeCall3(enc, ReadArgs{FileHandle::make(1, 42, 7), 8192, 8192});
  for (auto _ : state) {
    XdrDecoder dec(enc.bytes());
    auto args = decodeCall3(Proc3::Read, dec);
    benchmark::DoNotOptimize(&args);
  }
}
BENCHMARK(BM_XdrDecodeRead);

void BM_Fattr3RoundTrip(benchmark::State& state) {
  Fattr a;
  a.size = 123456;
  for (auto _ : state) {
    XdrEncoder enc;
    a.encode3(enc);
    XdrDecoder dec(enc.bytes());
    auto back = Fattr::decode3(dec);
    benchmark::DoNotOptimize(&back);
  }
}
BENCHMARK(BM_Fattr3RoundTrip);

void BM_BuildUdpFrame(benchmark::State& state) {
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto f = buildUdpFrame(makeIp(10, 0, 0, 1), 1023, makeIp(10, 0, 0, 2),
                           2049, payload);
    benchmark::DoNotOptimize(f.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildUdpFrame)->Arg(128)->Arg(8192);

void BM_ParseFrame(benchmark::State& state) {
  std::vector<std::uint8_t> payload(8192, 0xab);
  auto frame = buildUdpFrame(makeIp(10, 0, 0, 1), 1023, makeIp(10, 0, 0, 2),
                             2049, payload);
  for (auto _ : state) {
    auto parsed = parseFrame(frame);
    benchmark::DoNotOptimize(&parsed);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(frame.size()));
}
BENCHMARK(BM_ParseFrame);

void BM_RecordMarkReader(benchmark::State& state) {
  std::vector<std::uint8_t> body(1024, 0x55);
  auto marked = recordMark(body);
  for (auto _ : state) {
    RecordMarkReader reader;
    reader.feed(marked);
    auto out = reader.next();
    benchmark::DoNotOptimize(&out);
  }
}
BENCHMARK(BM_RecordMarkReader);

/// Full sniffer decode: one READ call frame + one reply frame.
void BM_SnifferDecodePair(benchmark::State& state) {
  auto fh = FileHandle::make(1, 42, 7);
  AuthUnix cred;
  cred.uid = 100;
  cred.gid = 100;

  XdrEncoder callEnc;
  encodeRpcCall(callEnc, 1, kNfsProgram, 3,
                static_cast<std::uint32_t>(Proc3::Read), cred);
  encodeCall3(callEnc, ReadArgs{fh, 0, 8192});
  auto callFrame = buildUdpFrame(makeIp(10, 1, 0, 2), 1023,
                                 makeIp(10, 0, 0, 1), 2049, callEnc.bytes());

  ReadRes res;
  res.status = NfsStat::Ok;
  res.count = 8192;
  res.eof = false;
  XdrEncoder replyEnc;
  encodeRpcReplySuccess(replyEnc, 1);
  encodeReply3(replyEnc, Proc3::Read, res);
  auto replyFrames =
      buildUdpFrames(makeIp(10, 0, 0, 1), 2049, makeIp(10, 1, 0, 2), 1023, 1,
                     replyEnc.bytes(), kJumboMtu);

  std::uint64_t emitted = 0;
  Sniffer sniffer({}, [&](const TraceRecord&) { ++emitted; });
  CapturedPacket callPkt{0, 0, callFrame};
  std::int64_t bytes = 0;
  for (auto _ : state) {
    sniffer.onFrame(callPkt);
    bytes += static_cast<std::int64_t>(callFrame.size());
    for (const auto& f : replyFrames) {
      CapturedPacket pkt{1, 0, f};
      sniffer.onFrame(pkt);
      bytes += static_cast<std::int64_t>(f.size());
    }
  }
  benchmark::DoNotOptimize(emitted);
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_SnifferDecodePair);

void BM_AnonymizeRecord(benchmark::State& state) {
  Anonymizer anon{Anonymizer::Config{}};
  Rng rng(1);
  std::vector<TraceRecord> recs;
  for (int i = 0; i < 256; ++i) {
    TraceRecord r;
    r.ts = i;
    r.op = NfsOp::Lookup;
    r.uid = 100 + static_cast<std::uint32_t>(rng.below(50));
    r.client = makeIp(10, 1, 0, static_cast<int>(rng.below(20)) + 2);
    r.fh = FileHandle::make(1, rng.below(500), 1);
    r.name = "file" + std::to_string(rng.below(200)) + ".c";
    recs.push_back(r);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto out = anon.anonymize(recs[i++ % recs.size()]);
    benchmark::DoNotOptimize(&out);
  }
}
BENCHMARK(BM_AnonymizeRecord);

std::vector<TraceRecord> syntheticDataRecords(std::size_t n) {
  Rng rng(7);
  std::vector<TraceRecord> recs;
  recs.reserve(n);
  MicroTime ts = 0;
  for (std::size_t i = 0; i < n; ++i) {
    TraceRecord r;
    ts += 500 + static_cast<MicroTime>(rng.below(1500));
    r.ts = ts;
    r.op = rng.chance(0.7) ? NfsOp::Read : NfsOp::Write;
    r.fh = FileHandle::make(1, rng.below(64), 1);
    r.offset = rng.below(256) * 8192;
    r.count = 8192;
    r.hasReply = true;
    r.retCount = 8192;
    r.hasAttrs = true;
    r.fileSize = 2 << 20;
    recs.push_back(r);
  }
  return recs;
}

TraceRecord sampleTraceRecord() {
  TraceRecord r;
  r.ts = 123456789;
  r.replyTs = 123457000;
  r.hasReply = true;
  r.client = makeIp(10, 1, 0, 5);
  r.server = makeIp(10, 0, 0, 1);
  r.xid = 0xabcd1234;
  r.op = NfsOp::Read;
  r.uid = 2042;
  r.gid = 2042;
  r.fh = FileHandle::make(2, 998877, 3);
  r.offset = 1 << 20;
  r.count = 8192;
  r.retCount = 8192;
  r.hasAttrs = true;
  r.fileSize = 2 << 20;
  r.fileMtime = 123000000;
  r.fileId = 998877;
  return r;
}

void BM_TraceTextFormat(benchmark::State& state) {
  auto rec = sampleTraceRecord();
  for (auto _ : state) {
    auto line = formatRecord(rec);
    benchmark::DoNotOptimize(line.data());
  }
}
BENCHMARK(BM_TraceTextFormat);

void BM_TraceTextParse(benchmark::State& state) {
  auto line = formatRecord(sampleTraceRecord());
  for (auto _ : state) {
    auto rec = parseRecord(line);
    benchmark::DoNotOptimize(&rec);
  }
}
BENCHMARK(BM_TraceTextParse);

void BM_ReorderWindowSort(benchmark::State& state) {
  auto recs = syntheticDataRecords(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = sortWithReorderWindow(recs, 10'000);
    benchmark::DoNotOptimize(&result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReorderWindowSort)->Arg(1000)->Arg(10000);

void BM_DetectRuns(benchmark::State& state) {
  auto recs = syntheticDataRecords(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto runs = detectRuns(recs);
    benchmark::DoNotOptimize(&runs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DetectRuns)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace nfstrace

BENCHMARK_MAIN();
