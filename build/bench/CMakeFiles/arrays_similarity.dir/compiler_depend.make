# Empty compiler generated dependencies file for arrays_similarity.
# This may be replaced when dependencies are built.
