file(REMOVE_RECURSE
  "CMakeFiles/nfstrace_server.dir/mountd.cpp.o"
  "CMakeFiles/nfstrace_server.dir/mountd.cpp.o.d"
  "CMakeFiles/nfstrace_server.dir/portmap.cpp.o"
  "CMakeFiles/nfstrace_server.dir/portmap.cpp.o.d"
  "CMakeFiles/nfstrace_server.dir/readahead.cpp.o"
  "CMakeFiles/nfstrace_server.dir/readahead.cpp.o.d"
  "CMakeFiles/nfstrace_server.dir/server.cpp.o"
  "CMakeFiles/nfstrace_server.dir/server.cpp.o.d"
  "libnfstrace_server.a"
  "libnfstrace_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfstrace_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
