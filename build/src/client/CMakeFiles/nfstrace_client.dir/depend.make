# Empty dependencies file for nfstrace_client.
# This may be replaced when dependencies are built.
