#include "analysis/engine/passes.hpp"

#include <algorithm>

namespace nfstrace {
namespace {

/// The only records the reorder/runs analyses derive anything from
/// (everything else passes through their legacy implementations
/// untouched, so buffering just these reproduces their results exactly).
bool isDataAccess(const TraceRecord& rec) {
  return (rec.op == NfsOp::Read || rec.op == NfsOp::Write) && rec.fh.len > 0;
}

}  // namespace

// ----------------------------------------------------------- mergeable

void SummaryPass::prepare(std::size_t shards) {
  shards_.assign(shards ? shards : 1, {});
  result_ = {};
}

void SummaryPass::observe(const TraceBatch& batch, std::size_t shard) {
  TraceSummary& s = shards_[shard].s;
  for (std::size_t i = 0; i < batch.n; ++i) {
    summaryObserve(s, batch.records[i]);
  }
}

void SummaryPass::finalize() {
  result_ = {};
  for (const Shard& sh : shards_) summaryMerge(result_, sh.s);
}

void HourlyPass::prepare(std::size_t shards) {
  shards_.assign(shards ? shards : 1, {});
  result_ = {};
}

void HourlyPass::observe(const TraceBatch& batch, std::size_t shard) {
  HourlyStats& s = shards_[shard].s;
  for (std::size_t i = 0; i < batch.n; ++i) s.observe(batch.records[i]);
}

void HourlyPass::finalize() {
  result_ = {};
  for (const Shard& sh : shards_) result_.merge(sh.s);
}

void UsersPass::prepare(std::size_t shards) {
  shards_.assign(shards ? shards : 1, {});
  result_ = {};
}

void UsersPass::observe(const TraceBatch& batch, std::size_t shard) {
  UserStats& s = shards_[shard].s;
  for (std::size_t i = 0; i < batch.n; ++i) s.observe(batch.records[i]);
}

void UsersPass::finalize() {
  result_ = {};
  for (const Shard& sh : shards_) result_.merge(sh.s);
}

// ---------------------------------------------------------- sequential

ReorderPass::ReorderPass(std::vector<MicroTime> sweepWindows)
    : sweepWindows_(std::move(sweepWindows)) {}

void ReorderPass::prepare(std::size_t) {
  accesses_.clear();
  sweep_.clear();
}

void ReorderPass::observe(const TraceBatch& batch, std::size_t) {
  for (std::size_t i = 0; i < batch.n; ++i) {
    if (isDataAccess(batch.records[i])) {
      accesses_.push_back(batch.records[i]);
    }
  }
}

void ReorderPass::finalize() {
  sweep_ = sweepReorderWindows(accesses_, sweepWindows_);
  accesses_.clear();
  accesses_.shrink_to_fit();
}

RunsPass::RunsPass(MicroTime reorderWindowUs)
    : reorderWindowUs_(reorderWindowUs) {}

void RunsPass::prepare(std::size_t) {
  accesses_.clear();
  runs_.clear();
}

void RunsPass::observe(const TraceBatch& batch, std::size_t) {
  for (std::size_t i = 0; i < batch.n; ++i) {
    if (isDataAccess(batch.records[i])) {
      accesses_.push_back(batch.records[i]);
    }
  }
}

void RunsPass::finalize() {
  // Identical to the legacy whole-trace path: stable-sorting and
  // window-rotating the data-access subsequence yields the same relative
  // order those records have after sorting the full trace (stable sort
  // preserves subsequence order; non-accesses never move relative to
  // them in any way detectRuns can see, since it skips them).
  auto sorted = sortWithReorderWindow(accesses_, reorderWindowUs_);
  swappedFraction_ = sorted.swappedFraction();
  runs_ = detectRuns(sorted.records);
  patterns_ = summarizeRunPatterns(runs_);
  bytesBySize_ = bytesByFileSize(runs_);
  readSeq_ = sequentialityBySize(runs_, /*writesOnly=*/false,
                                 /*readsOnly=*/true);
  writeSeq_ = sequentialityBySize(runs_, /*writesOnly=*/true,
                                  /*readsOnly=*/false);
  accesses_.clear();
  accesses_.shrink_to_fit();
}

void BlockLifePass::prepare(std::size_t) {
  compact_.clear();
  names_ = nullptr;
  handles_ = nullptr;
  sawAny_ = false;
  stats_ = {};
  lifetimes_ = {};
}

void BlockLifePass::observe(const TraceBatch& batch, std::size_t) {
  names_ = batch.nameInterner;
  handles_ = batch.handleInterner;
  for (std::size_t i = 0; i < batch.n; ++i) {
    const TraceRecord& r = batch.records[i];
    if (!sawAny_) {
      firstTs_ = lastTs_ = r.ts;
      sawAny_ = true;
    } else {
      firstTs_ = std::min(firstTs_, r.ts);
      lastTs_ = std::max(lastTs_, r.ts);
    }
    CompactRecord c;
    c.ts = r.ts;
    c.replyTs = r.replyTs;
    c.client = r.client;
    c.server = r.server;
    c.xid = r.xid;
    c.offset = r.offset;
    c.fileSize = r.fileSize;
    c.fileId = r.fileId;
    c.preSize = r.preSize;
    c.fileMtime = r.fileMtime;
    c.preMtime = r.preMtime;
    c.uid = r.uid;
    c.gid = r.gid;
    c.count = r.count;
    c.retCount = r.retCount;
    c.fhId = batch.fhId[i];
    c.fh2Id = batch.fh2Id[i];
    c.resFhId = batch.resFhId[i];
    c.nameId = batch.nameId[i];
    c.name2Id = batch.name2Id[i];
    c.op = r.op;
    c.status = r.status;
    c.ftype = r.ftype;
    c.vers = r.vers;
    c.overTcp = r.overTcp;
    c.hasReply = r.hasReply;
    c.eof = r.eof;
    c.hasResFh = r.hasResFh;
    c.hasAttrs = r.hasAttrs;
    c.hasPre = r.hasPre;
    compact_.push_back(c);
  }
}

void BlockLifePass::finalize() {
  if (!sawAny_) {
    stats_ = {};
    return;
  }
  // The same phase split trace_stats always used: phase 1 is the first
  // half of the trace span, phase 2 (the end margin) the second half.
  BlockLifeConfig cfg;
  cfg.phase1Start = firstTs_;
  cfg.phase1Length = std::max<MicroTime>((lastTs_ - firstTs_) / 2, 1);
  cfg.phase2Length = cfg.phase1Length;
  BlockLifeAnalyzer analyzer(cfg);

  auto fhFromId = [&](std::uint32_t id) {
    std::string_view v = handles_->view(id);
    return FileHandle::fromBytes(
        {reinterpret_cast<const std::uint8_t*>(v.data()), v.size()});
  };
  // Replay through one reused record; the string fields keep their
  // capacity, so the whole replay allocates nothing per record.
  TraceRecord r;
  for (const CompactRecord& c : compact_) {
    r.ts = c.ts;
    r.replyTs = c.replyTs;
    r.client = c.client;
    r.server = c.server;
    r.xid = c.xid;
    r.vers = c.vers;
    r.overTcp = c.overTcp;
    r.op = c.op;
    r.uid = c.uid;
    r.gid = c.gid;
    r.fh = fhFromId(c.fhId);
    r.name.assign(names_->view(c.nameId));
    r.name2.assign(names_->view(c.name2Id));
    r.fh2 = fhFromId(c.fh2Id);
    r.offset = c.offset;
    r.count = c.count;
    r.hasReply = c.hasReply;
    r.status = c.status;
    r.retCount = c.retCount;
    r.eof = c.eof;
    r.resFh = fhFromId(c.resFhId);
    r.hasResFh = c.hasResFh;
    r.hasAttrs = c.hasAttrs;
    r.ftype = c.ftype;
    r.fileSize = c.fileSize;
    r.fileMtime = c.fileMtime;
    r.fileId = c.fileId;
    r.hasPre = c.hasPre;
    r.preSize = c.preSize;
    r.preMtime = c.preMtime;
    analyzer.observe(r);
  }
  analyzer.finish();
  stats_ = analyzer.stats();
  lifetimes_ = analyzer.lifetimes();
  compact_.clear();
  compact_.shrink_to_fit();
}

void NamesPass::prepare(std::size_t) { census_ = {}; }

void NamesPass::observe(const TraceBatch& batch, std::size_t) {
  for (std::size_t i = 0; i < batch.n; ++i) census_.observe(batch.records[i]);
}

void NamesPass::finalize() { census_.finish(); }

void PathRecPass::prepare(std::size_t) { pathrec_ = {}; }

void PathRecPass::observe(const TraceBatch& batch, std::size_t) {
  for (std::size_t i = 0; i < batch.n; ++i) {
    pathrec_.observe(batch.records[i]);
  }
}

void PathRecPass::finalize() {}

}  // namespace nfstrace
