file(REMOVE_RECURSE
  "CMakeFiles/nfstrace_analysis.dir/blocklife.cpp.o"
  "CMakeFiles/nfstrace_analysis.dir/blocklife.cpp.o.d"
  "CMakeFiles/nfstrace_analysis.dir/hourly.cpp.o"
  "CMakeFiles/nfstrace_analysis.dir/hourly.cpp.o.d"
  "CMakeFiles/nfstrace_analysis.dir/names.cpp.o"
  "CMakeFiles/nfstrace_analysis.dir/names.cpp.o.d"
  "CMakeFiles/nfstrace_analysis.dir/pathrec.cpp.o"
  "CMakeFiles/nfstrace_analysis.dir/pathrec.cpp.o.d"
  "CMakeFiles/nfstrace_analysis.dir/reorder.cpp.o"
  "CMakeFiles/nfstrace_analysis.dir/reorder.cpp.o.d"
  "CMakeFiles/nfstrace_analysis.dir/runs.cpp.o"
  "CMakeFiles/nfstrace_analysis.dir/runs.cpp.o.d"
  "CMakeFiles/nfstrace_analysis.dir/summary.cpp.o"
  "CMakeFiles/nfstrace_analysis.dir/summary.cpp.o.d"
  "CMakeFiles/nfstrace_analysis.dir/users.cpp.o"
  "CMakeFiles/nfstrace_analysis.dir/users.cpp.o.d"
  "libnfstrace_analysis.a"
  "libnfstrace_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfstrace_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
