// Figure 3: cumulative distribution of block lifetimes for CAMPUS and
// EECS (create-based method, 24-hour phase with a 24-hour end margin).
#include "analysis/blocklife.hpp"
#include "bench_common.hpp"

using namespace nfstrace;
using namespace nfstrace::bench;

namespace {

EmpiricalCdf runSystem(bool campusSystem) {
  BlockLifeConfig cfg;
  cfg.phase1Start = days(1) + hours(9);
  cfg.phase1Length = kMicrosPerDay;
  cfg.phase2Length = kMicrosPerDay;
  BlockLifeAnalyzer analyzer(cfg);
  auto cb = [&](const TraceRecord& r) { analyzer.observe(r); };
  MicroTime start = days(1);
  MicroTime end = days(3) + hours(9);
  if (campusSystem) {
    auto s = makeCampus(24, cb);
    s.workload->setup(start);
    s.workload->run(start, end);
    s.env->finishCapture();
  } else {
    auto s = makeEecs(16, cb);
    s.workload->setup(start);
    s.workload->run(start, end);
    s.env->finishCapture();
  }
  analyzer.finish();
  return analyzer.lifetimes();
}

}  // namespace

int main() {
  banner("Figure 3 -- cumulative distribution of block lifetimes");

  auto campus = runSystem(true);
  auto eecs = runSystem(false);

  struct Point {
    const char* label;
    double seconds;
    const char* paperCampus;
    const char* paperEecs;
  };
  // Paper curve landmarks read off Figure 3.
  const Point points[] = {
      {"1 sec", 1.0, "~2%", "~50%"},
      {"30 sec", 30.0, "~8%", "~62%"},
      {"5 min", 300.0, "~25%", "~72%"},
      {"15 min", 900.0, "~50%", "~78%"},
      {"1 hour", 3600.0, "~70%", "~85%"},
      {"1 day", 86400.0, "100% (of margin)", "100% (of margin)"},
  };

  TextTable t({"Lifetime <=", "CAMPUS sim", "EECS sim", "CAMPUS paper",
               "EECS paper"});
  for (const auto& p : points) {
    t.addRow({p.label,
              TextTable::percent(campus.fractionAtOrBelow(p.seconds)),
              TextTable::percent(eecs.fractionAtOrBelow(p.seconds)),
              p.paperCampus, p.paperEecs});
  }
  std::fputs(t.render().c_str(), stdout);

  std::printf("\nMedians: CAMPUS %.1f min, EECS %.2f s\n",
              campus.quantile(0.5) / 60.0, eecs.quantile(0.5));
  std::printf(
      "\nShape checks (paper Figure 3 + §5.2.3): on EECS over half the\n"
      "blocks die within one second (unbuffered log/index files); on\n"
      "CAMPUS few blocks die that fast and about half live longer than\n"
      "10-15 minutes — roughly the length of a mail-reading session.\n");
  return 0;
}
