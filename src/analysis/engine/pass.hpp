// The analysis engine's consumer interface (DESIGN.md, "Analysis
// engine").
//
// A pass receives the trace as a stream of TraceBatches and must produce
// results *identical* to running its legacy whole-vector analysis over
// the same records.  Two contracts are offered:
//
//  * mergeable() == true — the pass keeps one state shard per worker;
//    observe(batch, shard) accumulates into that shard only, and
//    finalize() folds the shards together.  Legal only when the fold is
//    exact (integer sums, min/max, unions), so the merged result is
//    byte-identical to serial accumulation at any worker count.
//  * mergeable() == false — the pass keeps a single state; the engine
//    pins it to one worker and guarantees observe() sees every batch in
//    stream order (shard is always 0).  Order-dependent analyses
//    (run detection, hierarchy reconstruction) use this contract.
#pragma once

#include <cstddef>
#include <string_view>

#include "trace/batch.hpp"
#include "trace/predicate.hpp"

namespace nfstrace {

class AnalysisPass {
 public:
  virtual ~AnalysisPass() = default;

  /// Stable identifier, used for metric names (`engine.pass.<name>.*`).
  virtual std::string_view name() const = 0;
  /// See the contracts above.
  virtual bool mergeable() const = 0;
  /// Ops this pass derives anything from, as an opMaskBit() union.  The
  /// extent-parallel scanner skips observe() for extents whose footer
  /// op bitmask has no overlap — legal only when the pass provably
  /// ignores every record of the masked-out ops, so the default is
  /// all ops.  Results must stay identical whether or not the skip
  /// fires (pinned by the pruning differential tests).
  virtual std::uint32_t opMask() const { return kAllOpsMask; }
  /// Called once before the scan with the worker count; mergeable passes
  /// allocate `shards` independent states, sequential passes one.
  virtual void prepare(std::size_t shards) = 0;
  /// Consume one batch.  `shard` is the state index for mergeable
  /// passes; always 0 for sequential passes.
  virtual void observe(const TraceBatch& batch, std::size_t shard) = 0;
  /// Close the analysis: merge shards, replay deferred work, compute
  /// derived tables.  Called once after the scan completes.
  virtual void finalize() = 0;
};

}  // namespace nfstrace
