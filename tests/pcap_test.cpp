#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "pcap/pcap.hpp"

namespace nfstrace {
namespace {

class PcapTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       ("pcap_test_" + std::to_string(::getpid()) + ".pcap"))
                          .string();
  void TearDown() override { std::remove(path_.c_str()); }
};

CapturedPacket makePkt(MicroTime ts, std::size_t len, std::uint8_t fill) {
  CapturedPacket p;
  p.ts = ts;
  p.origLen = static_cast<std::uint32_t>(len);
  p.data.assign(len, fill);
  return p;
}

TEST_F(PcapTest, WriteReadRoundTrip) {
  {
    PcapWriter w(path_);
    w.write(makePkt(1'000'123, 60, 0xaa));
    w.write(makePkt(2'000'456, 1500, 0xbb));
    EXPECT_EQ(w.packetsWritten(), 2u);
  }
  PcapReader r(path_);
  EXPECT_EQ(r.linktype(), kLinktypeEthernet);
  EXPECT_FALSE(r.nanosecond());

  auto p1 = r.next();
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(p1->ts, 1'000'123);
  EXPECT_EQ(p1->data.size(), 60u);
  EXPECT_EQ(p1->data[0], 0xaa);

  auto p2 = r.next();
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(p2->ts, 2'000'456);
  EXPECT_EQ(p2->data.size(), 1500u);

  EXPECT_FALSE(r.next().has_value());
}

TEST_F(PcapTest, NanosecondVariant) {
  {
    PcapWriter w(path_, 65535, /*nanosecond=*/true);
    w.write(makePkt(5'000'042, 100, 1));
  }
  PcapReader r(path_);
  EXPECT_TRUE(r.nanosecond());
  auto p = r.next();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ts, 5'000'042);
}

TEST_F(PcapTest, SnaplenTruncation) {
  {
    PcapWriter w(path_, /*snaplen=*/64);
    w.write(makePkt(0, 9000, 7));  // jumbo frame, truncated on write
  }
  PcapReader r(path_);
  EXPECT_EQ(r.snaplen(), 64u);
  auto p = r.next();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->data.size(), 64u);
  EXPECT_EQ(p->origLen, 9000u);  // original length preserved in the header
}

TEST_F(PcapTest, SwappedByteOrder) {
  // Hand-craft a big-endian pcap file; the reader must detect the
  // byte order from the magic.
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  auto be32 = [&](std::uint32_t v) {
    std::uint8_t b[4] = {static_cast<std::uint8_t>(v >> 24),
                         static_cast<std::uint8_t>(v >> 16),
                         static_cast<std::uint8_t>(v >> 8),
                         static_cast<std::uint8_t>(v)};
    std::fwrite(b, 1, 4, f);
  };
  auto be16 = [&](std::uint16_t v) {
    std::uint8_t b[2] = {static_cast<std::uint8_t>(v >> 8),
                         static_cast<std::uint8_t>(v)};
    std::fwrite(b, 1, 2, f);
  };
  be32(kPcapMagicMicro);
  be16(2);
  be16(4);
  be32(0);
  be32(0);
  be32(65535);
  be32(kLinktypeEthernet);
  // One packet: ts=3s+9us, 4 bytes.
  be32(3);
  be32(9);
  be32(4);
  be32(4);
  std::uint8_t body[4] = {1, 2, 3, 4};
  std::fwrite(body, 1, 4, f);
  std::fclose(f);

  PcapReader r(path_);
  EXPECT_TRUE(r.swapped());
  EXPECT_EQ(r.snaplen(), 65535u);
  auto p = r.next();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->ts, 3 * kMicrosPerSecond + 9);
  EXPECT_EQ(p->data, (std::vector<std::uint8_t>{1, 2, 3, 4}));
}

TEST_F(PcapTest, BadMagicThrows) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::uint8_t junk[24] = {1, 2, 3};
  std::fwrite(junk, 1, sizeof(junk), f);
  std::fclose(f);
  EXPECT_THROW(PcapReader r(path_), std::runtime_error);
}

TEST_F(PcapTest, TruncatedRecordThrows) {
  {
    PcapWriter w(path_);
    w.write(makePkt(0, 100, 5));
  }
  // Chop the last 10 bytes off.
  std::filesystem::resize_file(path_,
                               std::filesystem::file_size(path_) - 10);
  PcapReader r(path_);
  EXPECT_THROW(r.next(), std::runtime_error);
}

TEST_F(PcapTest, MissingFileThrows) {
  EXPECT_THROW(PcapReader r("/nonexistent/nope.pcap"), std::runtime_error);
}

TEST_F(PcapTest, EmptyFileJustHeader) {
  { PcapWriter w(path_); }
  PcapReader r(path_);
  EXPECT_FALSE(r.next().has_value());
}

}  // namespace
}  // namespace nfstrace
