// Deterministic fault injection for the capture→trace path.
//
// The paper's tracer ran unattended for months on a live mirror port and
// had to survive burst loss (§4.1.4), coalesced and malformed traffic,
// and full trace disks.  This module makes those scenarios *injectable
// and reproducible*: a FaultPlan (parsed from a config file such as
// configs/chaos.cfg) drives
//
//  * FaultySink — a FrameSink decorator on the wire path that drops,
//    duplicates, reorders, truncates, bit-flips, and burst-drops frames
//    (composing with MirrorPort: wire → FaultySink → mirror → sniffer),
//    and
//  * IoFaultInjector — a hook in the trace writer that simulates short
//    writes, transient EIO, and ENOSPC episodes on the output disk.
//
// Determinism.  Every per-event decision is drawn from an Rng seeded by
// mix(plan.seed, event index), so the fault sequence is a pure function
// of (seed, index): byte-identical across runs, shard counts, and
// unrelated code changes that would perturb a single shared generator.
// Both injectors fold each decision into a running digest so tests can
// assert two runs injected the identical sequence.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "netcap/netcap.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "util/config.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace nfstrace {

/// All fault probabilities and shapes, normally parsed from a config
/// file.  Rates are per-event probabilities in [0, 1]; everything
/// defaults to 0 (a no-op plan).
struct FaultPlan {
  std::uint64_t seed = 1;

  // Wire faults (per captured frame).  Evaluated in this order; at most
  // one of drop/truncate/bitflip applies to a frame, then duplication
  // and reordering are considered for frames that still forward.
  double dropRate = 0.0;      ///< drop the frame outright
  double burstRate = 0.0;     ///< start a drop burst at this frame
  std::uint32_t burstMin = 4;   ///< burst length lower bound (frames)
  std::uint32_t burstMax = 64;  ///< burst length upper bound (inclusive)
  double truncateRate = 0.0;  ///< cut the frame's tail (TCP coalesce/snap)
  double bitflipRate = 0.0;   ///< flip one bit somewhere in the frame
  double dupRate = 0.0;       ///< deliver the frame twice
  double reorderRate = 0.0;   ///< swap the frame with its successor

  // Trace-disk faults (per write attempt in the trace writer).
  double ioShortWriteRate = 0.0;  ///< write only a prefix of the buffer
  double ioEioRate = 0.0;         ///< one transient EIO
  double ioEnospcRate = 0.0;      ///< start an ENOSPC episode
  std::uint32_t ioEnospcStreak = 2;  ///< attempts per ENOSPC episode

  /// True when every rate is zero (the sink/injector pass through).
  bool quiet() const;

  /// Keys: seed, drop_rate, burst_rate, burst_min, burst_max,
  /// truncate_rate, bitflip_rate, dup_rate, reorder_rate,
  /// io_short_write_rate, io_eio_rate, io_enospc_rate, io_enospc_streak.
  /// Unknown keys are ignored; rates outside [0,1] throw.
  static FaultPlan fromConfig(const ConfigFile& cfg);
  static FaultPlan load(const std::string& path);
};

/// Wire-path fault injector: forwards frames to `downstream` after
/// applying the plan's frame faults.  Single-threaded (sits on the
/// capture/producer thread, upstream of any sharding, which is what
/// makes the fault sequence independent of shard count).
class FaultySink : public FrameSink {
 public:
  struct Stats {
    std::uint64_t frames = 0;       ///< frames offered
    std::uint64_t forwarded = 0;    ///< frames delivered downstream
    std::uint64_t dropped = 0;      ///< all drops (incl. burst)
    std::uint64_t burstDropped = 0; ///< drops attributable to bursts
    std::uint64_t bursts = 0;       ///< burst episodes started
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;    ///< adjacent pairs swapped
    std::uint64_t truncated = 0;
    std::uint64_t bitflipped = 0;

    /// Fraction of offered frames that never reached downstream.
    double lossFraction() const {
      return frames ? static_cast<double>(dropped) /
                          static_cast<double>(frames)
                    : 0.0;
    }
  };

  FaultySink(const FaultPlan& plan, FrameSink& downstream);

  void onFrame(const CapturedPacket& pkt) override;

  /// Deliver a held reordered frame (end of capture).  Idempotent.
  void flush();

  const Stats& stats() const { return stats_; }
  /// Running digest over (frame index, decision) pairs; equal digests
  /// mean byte-identical fault sequences.
  std::uint64_t decisionDigest() const { return digest_; }

  /// Publish fault counters (fault.frames, fault.dropped, ...) so a live
  /// run's degradation is visible in snapshots.
  void attachMetrics(obs::Registry& registry);

  /// Bind a "fault.wire" flight track: every drop/burst lands as a
  /// fault.drop instant and every truncate/bit-flip as a fault.corrupt
  /// instant (arg = frame index), so chaos decisions line up on the
  /// timeline next to the stalls and sheds they cause.
  void attachFlight(obs::FlightRecorder& flight);

 private:
  void forward(const CapturedPacket& pkt);
  void note(std::uint64_t decision) {
    digest_ = hashCombine(digest_, hashCombine(index_, decision));
  }

  FaultPlan plan_;
  FrameSink& downstream_;
  Stats stats_;
  std::uint64_t index_ = 0;          ///< frames seen (decision stream pos)
  std::uint64_t digest_ = 0;
  std::uint32_t burstRemaining_ = 0;
  std::optional<CapturedPacket> held_;  ///< frame awaiting a reorder swap
  obs::CounterHandle framesC_;
  obs::CounterHandle droppedC_;
  obs::CounterHandle dupC_;
  obs::CounterHandle reorderC_;
  obs::CounterHandle corruptC_;
  obs::ThreadLog* flog_ = nullptr;
};

/// Trace-disk fault source: the trace writer asks it, once per write
/// attempt, whether that attempt short-writes, fails with a transient
/// EIO, or hits an ENOSPC episode (which then fails `ioEnospcStreak`
/// consecutive attempts, modelling a briefly full disk).
class IoFaultInjector {
 public:
  enum class Kind : std::uint8_t { None, ShortWrite, Eio, Enospc };
  struct Fault {
    Kind kind = Kind::None;
    std::size_t shortLen = 0;  ///< bytes that land when kind==ShortWrite
  };

  struct Stats {
    std::uint64_t attempts = 0;
    std::uint64_t shortWrites = 0;
    std::uint64_t eio = 0;
    std::uint64_t enospc = 0;  ///< failing attempts (not episodes)
    std::uint64_t enospcEpisodes = 0;
  };

  explicit IoFaultInjector(const FaultPlan& plan) : plan_(plan) {}

  /// Decide the fate of the next write attempt of `len` bytes.
  Fault nextWrite(std::size_t len);

  const Stats& stats() const { return stats_; }
  std::uint64_t decisionDigest() const { return digest_; }

 private:
  FaultPlan plan_;
  Stats stats_;
  std::uint64_t index_ = 0;
  std::uint64_t digest_ = 0;
  std::uint32_t enospcRemaining_ = 0;
};

}  // namespace nfstrace
