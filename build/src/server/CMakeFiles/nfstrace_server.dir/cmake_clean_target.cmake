file(REMOVE_RECURSE
  "libnfstrace_server.a"
)
