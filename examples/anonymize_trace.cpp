// The trace anonymizer tool (paper §2): read a trace file, anonymize it
// with consistent random mappings, save the mapping table, and show what
// the transformation preserves and hides.
//
//   anonymize_trace [--metrics]
//                   [input.trace [output.trace [map-file [policy.cfg]]]]
//
// The optional policy.cfg is a key=value file (see util/config.hpp):
//   keep_name = CVS
//   keep_suffix = .lock
//   omit_identities = false
//   seed = 12345
//
// --metrics prints the obs registry snapshot (records anonymized, trace
// writer flush/retry counters, mapping-table size) and any DEGRADED
// alert line to stderr, same as trace_analyze.
//
// With no arguments it generates a demo trace first.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/summary.hpp"
#include "anon/anon.hpp"
#include "obs/exporter.hpp"
#include "obs/metrics.hpp"
#include "trace/tracefile.hpp"
#include "workload/campus.hpp"
#include "workload/sim.hpp"

using namespace nfstrace;

namespace {

std::string makeDemoTrace() {
  std::string path = "/tmp/anonymize_demo.trace";
  std::printf("no input given; generating a demo trace at %s\n",
              path.c_str());
  SimEnvironment::Config cfg;
  cfg.fsConfig.fsid = 2;
  cfg.clientHosts = 3;
  SimEnvironment env(cfg);
  CampusConfig wl;
  wl.users = 8;
  CampusWorkload workload(wl, env);
  MicroTime start = days(1) + hours(10);
  workload.setup(start);
  workload.run(start, start + minutes(30));
  env.finishCapture();
  TraceWriter writer(path);
  for (const auto& rec : env.records()) writer.write(rec);
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  bool metrics = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--metrics") {
      metrics = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: %s [--metrics] [input.trace [output.trace "
                   "[map-file [policy.cfg]]]]\n",
                   argv[0]);
      return 2;
    } else {
      positional.push_back(arg);
    }
  }
  std::string input =
      !positional.empty() ? positional[0] : makeDemoTrace();
  std::string output =
      positional.size() > 1 ? positional[1] : "/tmp/anonymized.trace";
  std::string mapFile =
      positional.size() > 2 ? positional[2] : "/tmp/anonymized.map";

  obs::Registry registry;
  obs::CounterHandle recordsC = registry.counterHandle("anon.records", 0);
  obs::GaugeHandle mappingsG = registry.gaugeHandle("anon.name_mappings");

  // The anonymized trace keeps the input's format: a site anonymizing a
  // v2 archive for publication gets a v2 archive back.
  TraceWriter::Format format = detectTraceFormat(input);
  auto records = TraceReader::readAll(input);
  std::printf("read %llu records from %s (%s format)\n",
              static_cast<unsigned long long>(records.size()), input.c_str(),
              traceFormatName(format));

  // The default configuration keeps the names the paper kept (CVS,
  // .inbox, .pinerc, lock components) and root/daemon UIDs; a policy
  // file overrides it.
  Anonymizer::Config cfg;
  if (positional.size() > 3) {
    cfg = Anonymizer::Config::fromFile(positional[3]);
    std::printf("loaded anonymization policy from %s\n",
                positional[3].c_str());
  }
  Anonymizer anon{cfg};
  TraceWriter writer(output, format);
  if (metrics) writer.attachMetrics(registry);
  std::vector<TraceRecord> anonymized;
  anonymized.reserve(records.size());
  for (const auto& rec : records) {
    anonymized.push_back(anon.anonymize(rec));
    writer.write(anonymized.back());
    recordsC.inc();
  }
  writer.flush();
  anon.saveMap(mapFile);
  mappingsG.set(static_cast<double>(anon.mappedNames()));

  std::printf("wrote %s and mapping table %s (%zu name mappings)\n",
              output.c_str(), mapFile.c_str(), anon.mappedNames());

  // Show a before/after pair.
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (!records[i].name.empty() && records[i].name != ".inbox.lock") {
      std::printf("\nbefore: %s\nafter:  %s\n",
                  formatRecord(records[i]).c_str(),
                  formatRecord(anonymized[i]).c_str());
      break;
    }
  }

  // What survives: every analysis.  What doesn't: identities.
  auto s1 = summarize(records);
  auto s2 = summarize(anonymized);
  std::printf(
      "\nanalysis invariance: totalOps %llu == %llu, bytesRead %llu == %llu\n",
      static_cast<unsigned long long>(s1.totalOps),
      static_cast<unsigned long long>(s2.totalOps),
      static_cast<unsigned long long>(s1.bytesRead),
      static_cast<unsigned long long>(s2.bytesRead));
  std::printf(
      "\nwhy not a hash? a deterministic hash would let an outsider test\n"
      "guessed filenames against the published trace and compare traces\n"
      "from different sites; the random table (kept by the trace owner)\n"
      "permits neither.\n");

  if (metrics) {
    auto snap = registry.scrape();
    std::string table = obs::SnapshotExporter::renderStatusTable(snap, 0, 0);
    table += obs::SnapshotExporter::renderAlerts(
        snap, obs::defaultAlertCounters());
    std::fwrite(table.data(), 1, table.size(), stderr);
  }
  return 0;
}
