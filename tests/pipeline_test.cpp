// The parallel pipeline's contract is brutal: for any shard count, the
// merged record stream must be byte-identical to what one serial Sniffer
// emits over the same capture — including records born from call expiry
// and end-of-capture flush.  These tests hold it to that, and exercise
// the SPSC ring with real producer/consumer threads (run them under the
// `tsan` preset; they carry the ctest label for it).
#include <gtest/gtest.h>

#include <numeric>
#include <thread>

#include "pipeline/partition.hpp"
#include "pipeline/pipeline.hpp"
#include "pipeline/spsc_ring.hpp"
#include "trace/tracefile.hpp"
#include "workload/sim.hpp"

namespace nfstrace {
namespace {

TEST(SpscRing, SingleThreadedWrapAround) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  int out = 0;
  EXPECT_FALSE(ring.tryPop(out));
  // Cycle several times around the ring so the cursors wrap.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 4; ++i) {
      int v = round * 10 + i;
      EXPECT_TRUE(ring.tryPush(v));
    }
    int overflow = 99;
    EXPECT_FALSE(ring.tryPush(overflow));  // full
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(ring.tryPop(out));
      EXPECT_EQ(out, round * 10 + i);
    }
    EXPECT_FALSE(ring.tryPop(out));  // empty again
  }
}

TEST(SpscRing, BatchedPushPop) {
  SpscRing<std::uint64_t> ring(8);
  std::vector<std::uint64_t> in(13);
  std::iota(in.begin(), in.end(), 0);
  // Only 8 fit.
  EXPECT_EQ(ring.tryPushBatch(std::span<std::uint64_t>(in)), 8u);
  std::vector<std::uint64_t> out;
  EXPECT_EQ(ring.tryPopBatch(out, 5), 5u);
  EXPECT_EQ(ring.tryPopBatch(out, 100), 3u);
  ASSERT_EQ(out.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_EQ(out[i], i);
}

TEST(SpscRing, ProducerConsumerThreadsPreserveOrder) {
  constexpr std::uint64_t kCount = 1'000'000;
  SpscRing<std::uint64_t> ring(1024);
  std::thread producer([&] {
    std::vector<std::uint64_t> batch;
    std::uint64_t next = 0;
    while (next < kCount) {
      batch.clear();
      for (int i = 0; i < 64 && next < kCount; ++i) batch.push_back(next++);
      std::span<std::uint64_t> rest(batch);
      while (!rest.empty()) {
        std::size_t pushed = ring.tryPushBatch(rest);
        rest = rest.subspan(pushed);
        if (!rest.empty()) std::this_thread::yield();
      }
    }
  });
  std::uint64_t expected = 0;
  std::vector<std::uint64_t> out;
  while (expected < kCount) {
    out.clear();
    if (ring.tryPopBatch(out, 128) == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::uint64_t v : out) {
      ASSERT_EQ(v, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_EQ(expected, kCount);
}

TEST(Partition, FlowHashIsDirectionIndependent) {
  IpAddr a = makeIp(10, 1, 0, 7), b = makeIp(10, 0, 0, 1);
  EXPECT_EQ(flowHash(a, b), flowHash(b, a));
  EXPECT_NE(flowHash(a, b), flowHash(a, makeIp(10, 0, 0, 2)));
}

TEST(Partition, CallAndReplyFramesShareAShard) {
  // A call (client->server) and its reply (server->client) must land on
  // the same shard for every shard count, or XID pairing would break.
  auto call = buildUdpFrame(makeIp(10, 1, 0, 9), 1023, makeIp(10, 0, 0, 1),
                            2049, std::vector<std::uint8_t>(32, 1));
  auto reply = buildUdpFrame(makeIp(10, 0, 0, 1), 2049, makeIp(10, 1, 0, 9),
                             1023, std::vector<std::uint8_t>(32, 2));
  CapturedPacket c, r;
  c.data = call;
  r.data = reply;
  for (int shards = 1; shards <= 9; ++shards) {
    EXPECT_EQ(shardOfFrame(c, shards), shardOfFrame(r, shards)) << shards;
  }
}

TEST(Partition, ClientsSpreadAcrossShards) {
  std::set<int> used;
  for (int host = 0; host < 64; ++host) {
    auto f = buildUdpFrame(makeIp(10, 1, 0, host), 1023, makeIp(10, 0, 0, 1),
                           2049, std::vector<std::uint8_t>(16, 0));
    CapturedPacket p;
    p.data = f;
    used.insert(shardOfFrame(p, 4));
  }
  // 64 distinct clients into 4 shards: every shard should see traffic.
  EXPECT_EQ(used.size(), 4u);
}

/// Collects raw frames off the simulation tap for later replay.
struct FrameCollector : FrameSink {
  std::vector<CapturedPacket> frames;
  void onFrame(const CapturedPacket& pkt) override { frames.push_back(pkt); }
};

std::string renderAll(const std::vector<TraceRecord>& recs) {
  std::string out;
  for (const auto& r : recs) {
    appendRecord(out, r);
    out.push_back('\n');
  }
  return out;
}

/// Serial reference: one Sniffer over the frames, records in emission
/// order (exactly what the pipeline promises to reproduce).
std::vector<TraceRecord> runSerial(const std::vector<CapturedPacket>& frames,
                                   Sniffer::Config cfg,
                                   Sniffer::Stats* stats = nullptr) {
  std::vector<TraceRecord> out;
  Sniffer sniffer(cfg, [&](const TraceRecord& r) { out.push_back(r); });
  for (const auto& f : frames) sniffer.onFrame(f);
  sniffer.flush();
  if (stats) *stats = sniffer.stats();
  return out;
}

std::vector<TraceRecord> runSharded(const std::vector<CapturedPacket>& frames,
                                    int shards, Sniffer::Config cfg,
                                    Sniffer::Stats* stats = nullptr,
                                    bool copyPath = false) {
  std::vector<TraceRecord> out;
  ParallelPipeline::Config pc;
  pc.shards = shards;
  pc.sniffer = cfg;
  pc.heartbeatFrames = 512;  // exercise heartbeats in small captures
  ParallelPipeline pipe(pc, [&](const TraceRecord& r) { out.push_back(r); });
  for (const auto& f : frames) {
    if (copyPath) {
      pipe.onFrame(f);
    } else {
      pipe.feed(&f);
    }
  }
  pipe.finish();
  if (stats) *stats = pipe.stats();
  return out;
}

std::vector<CapturedPacket> simulatedCapture() {
  SimEnvironment::Config cfg;
  cfg.clientHosts = 4;
  // Mixed protocol versions and transports stress every decode path:
  // hosts 0-1 run v3, host 2-3 run v2; TCP on jumbo frames.
  cfg.hostVersions = {3, 3, 2, 2};
  cfg.useTcp = true;
  cfg.mtu = kJumboMtu;
  SimEnvironment env(cfg);
  FrameCollector collector;
  env.addTapSink(&collector);
  for (int host = 0; host < 4; ++host) {
    env.fs().mkfile("/home/u" + std::to_string(host) + "/inbox",
                    40 * 1024 + host * 7777, 100 + host, 100, 0);
  }
  MicroTime now = seconds(1);
  for (int host = 0; host < 4; ++host) {
    NfsClient& c = env.client(host);
    c.setIdentity(100 + static_cast<std::uint32_t>(host), 100);
    std::string dir = "/home/u" + std::to_string(host);
    auto dirFh = *c.lookupPath(now, dir);
    auto fh = *c.lookupPath(now, dir + "/inbox");
    c.readFile(now, fh);
    c.append(now, fh, 4096, true);
    c.readdir(now, dirFh);
    c.getattr(now, fh, true);
    auto lock = c.create(now, dirFh, ".lock", true);
    if (lock) c.remove(now, dirFh, ".lock");
    now += seconds(2);
  }
  return collector.frames;
}

TEST(PipelineDeterminism, ShardedOutputMatchesSerialBytes) {
  auto frames = simulatedCapture();
  ASSERT_GT(frames.size(), 100u);

  Sniffer::Config cfg;
  Sniffer::Stats serialStats;
  auto serial = runSerial(frames, cfg, &serialStats);
  ASSERT_FALSE(serial.empty());
  std::string serialBytes = renderAll(serial);

  for (int shards : {1, 2, 3, 4}) {
    Sniffer::Stats stats;
    auto merged = runSharded(frames, shards, cfg, &stats);
    EXPECT_EQ(renderAll(merged), serialBytes) << "shards=" << shards;
    EXPECT_EQ(stats.framesSeen, serialStats.framesSeen);
    EXPECT_EQ(stats.rpcCalls, serialStats.rpcCalls);
    EXPECT_EQ(stats.rpcReplies, serialStats.rpcReplies);
    EXPECT_EQ(stats.orphanReplies, serialStats.orphanReplies);
    EXPECT_EQ(stats.expiredCalls, serialStats.expiredCalls);
    EXPECT_EQ(stats.nonNfsCalls, serialStats.nonNfsCalls);
  }
}

TEST(PipelineDeterminism, CopyingFramePathMatchesToo) {
  auto frames = simulatedCapture();
  Sniffer::Config cfg;
  auto serial = renderAll(runSerial(frames, cfg));
  auto merged = renderAll(runSharded(frames, 3, cfg, nullptr,
                                     /*copyPath=*/true));
  EXPECT_EQ(merged, serial);
}

std::vector<std::uint8_t> udpCallFrame(IpAddr client, std::uint32_t xid) {
  XdrEncoder enc;
  AuthUnix cred;
  cred.uid = 1;
  cred.gid = 1;
  encodeRpcCall(enc, xid, kNfsProgram, 3,
                static_cast<std::uint32_t>(Proc3::Getattr), cred);
  encodeCall3(enc, GetattrArgs{FileHandle::make(1, xid, 1)});
  return buildUdpFrame(client, 1023, makeIp(10, 0, 0, 1), 2049, enc.bytes());
}

TEST(PipelineDeterminism, ExpiredCallsEmergeIdentically) {
  // Calls that never get replies must expire at the same points and in
  // the same order for every shard layout: expiry in one shard is
  // triggered by the broadcast time ticks, not by that shard's frames.
  Sniffer::Config cfg;
  cfg.pendingTimeout = seconds(5);
  std::vector<CapturedPacket> frames;
  std::uint32_t xid = 1;
  for (int burst = 0; burst < 6; ++burst) {
    for (int host = 0; host < 8; ++host) {
      CapturedPacket p;
      p.ts = seconds(burst * 3) + host * 100;
      p.data = udpCallFrame(makeIp(10, 1, 0, 10 + host), xid++);
      p.origLen = static_cast<std::uint32_t>(p.data.size());
      frames.push_back(std::move(p));
    }
  }
  Sniffer::Stats serialStats;
  auto serialBytes = renderAll(runSerial(frames, cfg, &serialStats));
  EXPECT_GT(serialStats.expiredCalls, 0u);

  for (int shards : {1, 2, 4, 5}) {
    Sniffer::Stats stats;
    auto merged = renderAll(runSharded(frames, shards, cfg, &stats));
    EXPECT_EQ(merged, serialBytes) << "shards=" << shards;
    EXPECT_EQ(stats.expiredCalls, serialStats.expiredCalls);
  }
}

}  // namespace
}  // namespace nfstrace
