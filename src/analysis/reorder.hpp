// Reorder-window sorting (§4.2, Figure 1).
//
// nfsiod scheduling delivers calls to the server out of application order;
// analyzed naively this makes genuinely sequential streams look random.
// The fix: within each file's access stream, look ahead a small temporal
// window and swap requests that are out of offset order.  The window must
// be just large enough to undo scheduler jitter — an infinite window would
// make *any* access pattern that touches every block look sequential.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace nfstrace {

struct ReorderResult {
  std::vector<TraceRecord> records;  // time-sorted output
  std::uint64_t accessesSwapped = 0;
  std::uint64_t accessesTotal = 0;   // read/write accesses considered
  double swappedFraction() const {
    return accessesTotal ? static_cast<double>(accessesSwapped) /
                               static_cast<double>(accessesTotal)
                         : 0.0;
  }
};

/// Apply the reorder-window sort with the given window (microseconds).
/// Only READ/WRITE records participate; other records pass through.  A
/// window of zero returns the input order and counts nothing swapped.
ReorderResult sortWithReorderWindow(const std::vector<TraceRecord>& input,
                                    MicroTime windowUs);

/// Figure 1 helper: fraction of accesses swapped for each window size.
std::vector<std::pair<MicroTime, double>> sweepReorderWindows(
    const std::vector<TraceRecord>& input,
    const std::vector<MicroTime>& windows);

}  // namespace nfstrace
