# Empty compiler generated dependencies file for fig1_reorder_window.
# This may be replaced when dependencies are built.
