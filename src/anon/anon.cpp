#include "anon/anon.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace nfstrace {
namespace {

constexpr char kTokenAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";

}  // namespace

Anonymizer::Config Anonymizer::Config::fromFile(const std::string& path) {
  return fromConfig(ConfigFile::load(path));
}

Anonymizer::Config Anonymizer::Config::fromConfig(const ConfigFile& file) {
  Config cfg;
  if (file.has("keep_name")) cfg.keepNames = file.getAll("keep_name");
  if (file.has("keep_suffix")) cfg.keepSuffixes = file.getAll("keep_suffix");
  if (file.has("keep_uid")) {
    cfg.keepUids.clear();
    for (const auto& v : file.getAll("keep_uid")) {
      cfg.keepUids.push_back(static_cast<std::uint32_t>(std::stoul(v)));
    }
  }
  if (file.has("keep_gid")) {
    cfg.keepGids.clear();
    for (const auto& v : file.getAll("keep_gid")) {
      cfg.keepGids.push_back(static_cast<std::uint32_t>(std::stoul(v)));
    }
  }
  cfg.omitIdentities = file.getBool("omit_identities", cfg.omitIdentities);
  cfg.anonymizeHandles =
      file.getBool("anonymize_handles", cfg.anonymizeHandles);
  cfg.seed = static_cast<std::uint64_t>(file.getInt(
      "seed", static_cast<std::int64_t>(cfg.seed)));
  return cfg;
}

Anonymizer::Anonymizer(Config config)
    : config_(std::move(config)), rng_(config_.seed) {
  keepNames_.insert(config_.keepNames.begin(), config_.keepNames.end());
  keepSuffixes_.insert(config_.keepSuffixes.begin(),
                       config_.keepSuffixes.end());
  keepUids_.insert(config_.keepUids.begin(), config_.keepUids.end());
  keepGids_.insert(config_.keepGids.begin(), config_.keepGids.end());
}

std::string Anonymizer::mapToken(
    std::unordered_map<std::string, std::string>& table,
    const std::string& original, char tag) {
  auto it = table.find(original);
  if (it != table.end()) return it->second;

  // Arbitrary token of similar length (min 4), drawn from the RNG; retry
  // on the (unlikely) collision so distinct names stay distinct.
  std::size_t len = std::max<std::size_t>(4, std::min<std::size_t>(
                                                 original.size(), 12));
  std::string token;
  do {
    token.clear();
    token.push_back(tag);
    for (std::size_t i = 0; i < len; ++i) {
      token.push_back(kTokenAlphabet[rng_.below(sizeof(kTokenAlphabet) - 1)]);
    }
  } while (!usedTokens_.insert(token).second);
  table.emplace(original, token);
  return token;
}

std::string Anonymizer::anonymizeComponent(const std::string& name) {
  if (name.empty() || name == "." || name == "..") return name;
  if (keepNames_.count(name)) return name;

  // Detach special prefixes/suffixes so the relationship between a file
  // and its derived names ("foo" vs "foo~", "#foo#", "foo,v") survives.
  std::string core = name;
  std::string prefix, special;
  if (core.size() >= 2 && core.front() == '#' && core.back() == '#') {
    prefix = "#";
    special = "#";
    core = core.substr(1, core.size() - 2);
  } else if (endsWith(core, "~")) {
    special = "~";
    core.pop_back();
  } else if (endsWith(core, ",v")) {
    special = ",v";
    core.resize(core.size() - 2);
  }
  if (core.empty()) return name;
  if (keepNames_.count(core)) return prefix + core + special;

  // Leading-dot files keep the dot so "dot file" remains recognizable as a
  // category (the paper's name-based analyses rely on it).
  std::string dot;
  if (core.size() > 1 && core.front() == '.') {
    dot = ".";
    core = core.substr(1);
  }

  std::string suffix(filenameSuffix(core));
  std::string stem = core.substr(0, core.size() - suffix.size());

  std::string anonSuffix;
  if (!suffix.empty()) {
    if (keepSuffixes_.count(suffix)) {
      anonSuffix = suffix;
    } else {
      anonSuffix = "." + mapToken(suffixMap_, suffix, 's');
    }
  }
  std::string anonStem = stem.empty() ? "" : mapToken(stemMap_, stem, 'f');
  return prefix + dot + anonStem + anonSuffix + special;
}

std::uint32_t Anonymizer::anonymizeUid(std::uint32_t uid) {
  if (keepUids_.count(uid)) return uid;
  auto it = uidMap_.find(uid);
  if (it != uidMap_.end()) return it->second;
  std::uint32_t mapped;
  do {
    mapped = 10000 + static_cast<std::uint32_t>(rng_.below(1u << 20));
  } while (!usedUids_.insert(mapped).second || keepUids_.count(mapped));
  uidMap_.emplace(uid, mapped);
  return mapped;
}

std::uint32_t Anonymizer::anonymizeGid(std::uint32_t gid) {
  if (keepGids_.count(gid)) return gid;
  auto it = gidMap_.find(gid);
  if (it != gidMap_.end()) return it->second;
  std::uint32_t mapped;
  do {
    mapped = 10000 + static_cast<std::uint32_t>(rng_.below(1u << 20));
  } while (!usedGids_.insert(mapped).second || keepGids_.count(mapped));
  gidMap_.emplace(gid, mapped);
  return mapped;
}

IpAddr Anonymizer::anonymizeIp(IpAddr ip) {
  auto it = ipMap_.find(ip);
  if (it != ipMap_.end()) return it->second;
  IpAddr mapped;
  do {
    // Keep anonymized addresses inside 10/8 so they are recognizably
    // private and cannot collide with a real public host.
    mapped = makeIp(10, static_cast<int>(rng_.below(256)),
                    static_cast<int>(rng_.below(256)),
                    static_cast<int>(rng_.below(254)) + 1);
  } while (!usedIps_.insert(mapped).second);
  ipMap_.emplace(ip, mapped);
  return mapped;
}

FileHandle Anonymizer::anonymizeHandle(const FileHandle& fh) {
  if (fh.len == 0) return fh;
  std::string hex = fh.toHex();
  auto it = fhMap_.find(hex);
  if (it != fhMap_.end()) return FileHandle::fromHex(it->second);
  FileHandle mapped;
  std::string mappedHex;
  do {
    mapped.len = fh.len;
    for (std::uint8_t i = 0; i < fh.len; ++i) {
      mapped.data[i] = static_cast<std::uint8_t>(rng_.below(256));
    }
    mappedHex = mapped.toHex();
  } while (!usedFhs_.insert(mappedHex).second);
  fhMap_.emplace(hex, mappedHex);
  return mapped;
}

TraceRecord Anonymizer::anonymize(const TraceRecord& rec) {
  TraceRecord out = rec;
  if (config_.omitIdentities) {
    out.uid = 0;
    out.gid = 0;
    out.client = 0;
    out.server = 0;
    out.name.clear();
    out.name2.clear();
    return out;
  }
  out.uid = anonymizeUid(rec.uid);
  out.gid = anonymizeGid(rec.gid);
  out.client = anonymizeIp(rec.client);
  out.server = anonymizeIp(rec.server);
  if (!rec.name.empty()) out.name = anonymizeComponent(rec.name);
  if (!rec.name2.empty()) {
    if (rec.op == NfsOp::Symlink) {
      // Symlink targets are paths: anonymize per component.
      auto parts = split(rec.name2, '/');
      for (auto& p : parts) p = anonymizeComponent(p);
      out.name2 = join(parts, '/');
    } else {
      out.name2 = anonymizeComponent(rec.name2);
    }
  }
  if (config_.anonymizeHandles) {
    out.fh = anonymizeHandle(rec.fh);
    out.fh2 = anonymizeHandle(rec.fh2);
    if (rec.hasResFh) out.resFh = anonymizeHandle(rec.resFh);
    // fileids are handle-derived; remap them consistently with a narrow
    // token so they stay useful as identities without leaking inumbers.
    if (out.fileId) {
      out.fileId = FileHandleHash{}(out.fh) & 0xffffffff;
    }
  }
  return out;
}

void Anonymizer::saveMap(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("anon: cannot write map: " + path);
  for (const auto& [k, v] : stemMap_) out << "stem " << k << ' ' << v << '\n';
  for (const auto& [k, v] : suffixMap_) out << "sufx " << k << ' ' << v << '\n';
  for (const auto& [k, v] : uidMap_) out << "uid " << k << ' ' << v << '\n';
  for (const auto& [k, v] : gidMap_) out << "gid " << k << ' ' << v << '\n';
  for (const auto& [k, v] : ipMap_) out << "ip " << k << ' ' << v << '\n';
  for (const auto& [k, v] : fhMap_) out << "fh " << k << ' ' << v << '\n';
}

void Anonymizer::loadMap(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("anon: cannot read map: " + path);
  std::string kind, k, v;
  while (in >> kind >> k >> v) {
    if (kind == "stem") {
      stemMap_[k] = v;
      usedTokens_.insert(v);
    } else if (kind == "sufx") {
      suffixMap_[k] = v;
      usedTokens_.insert(v);
    } else if (kind == "uid") {
      auto uid = static_cast<std::uint32_t>(std::stoul(k));
      auto mapped = static_cast<std::uint32_t>(std::stoul(v));
      uidMap_[uid] = mapped;
      usedUids_.insert(mapped);
    } else if (kind == "gid") {
      auto gid = static_cast<std::uint32_t>(std::stoul(k));
      auto mapped = static_cast<std::uint32_t>(std::stoul(v));
      gidMap_[gid] = mapped;
      usedGids_.insert(mapped);
    } else if (kind == "ip") {
      ipMap_[static_cast<IpAddr>(std::stoul(k))] =
          static_cast<IpAddr>(std::stoul(v));
      usedIps_.insert(static_cast<IpAddr>(std::stoul(v)));
    } else if (kind == "fh") {
      fhMap_[k] = v;
      usedFhs_.insert(v);
    }
  }
}

}  // namespace nfstrace
