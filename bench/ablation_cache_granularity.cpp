// Ablation of §6.1.2's speculation: "if client caching of mailboxes was
// done on a block or message basis instead of a file basis, the amount of
// data read per day would shrink to a fraction of the current size."
//
// We run the same CAMPUS day twice: once with standard NFS whole-file
// invalidation (any mtime change discards the cached copy) and once with
// block/message-granularity consistency (an appended mailbox keeps its
// cached prefix; only the new tail is fetched).  The paper could only
// speculate; the simulator can measure.
#include "analysis/summary.hpp"
#include "bench_common.hpp"

using namespace nfstrace;
using namespace nfstrace::bench;

namespace {

TraceSummary runDay(CacheGranularity granularity) {
  TraceSummary out;
  auto cb = [&](const TraceRecord& r) {
    ++out.totalOps;
    if (r.op == NfsOp::Read) {
      ++out.readOps;
      out.bytesRead += r.hasReply ? r.retCount : r.count;
    } else if (r.op == NfsOp::Write) {
      ++out.writeOps;
      out.bytesWritten += r.hasReply && r.retCount ? r.retCount : r.count;
    } else {
      ++out.metadataOps;
    }
  };
  auto s = makeCampus(30, cb, 2001, [&](SimEnvironment::Config& cfg) {
    cfg.clientConfig.cacheGranularity = granularity;
    // Ample client RAM on both runs, so the comparison isolates the
    // consistency-granularity effect from capacity evictions.
    cfg.clientConfig.dataCacheCapacityBytes = 512ULL << 20;
  });
  MicroTime start = days(1);
  s.workload->setup(start);
  s.workload->run(start, start + days(1));
  s.env->finishCapture();
  return out;
}

}  // namespace

int main() {
  banner("Ablation (§6.1.2) -- whole-file vs block-granularity client caching");

  auto wholeFile = runDay(CacheGranularity::WholeFile);
  auto blockBased = runDay(CacheGranularity::BlockBased);

  TextTable t({"Metric", "whole-file (NFS)", "block/message basis",
               "reduction"});
  auto pct = [](std::uint64_t a, std::uint64_t b) {
    return a ? TextTable::percent(1.0 - static_cast<double>(b) /
                                            static_cast<double>(a))
             : std::string("-");
  };
  t.addRow({"Data read (MB/day)",
            TextTable::fixed(static_cast<double>(wholeFile.bytesRead) / 1e6, 1),
            TextTable::fixed(static_cast<double>(blockBased.bytesRead) / 1e6, 1),
            pct(wholeFile.bytesRead, blockBased.bytesRead)});
  t.addRow({"Read ops/day", TextTable::withCommas(wholeFile.readOps),
            TextTable::withCommas(blockBased.readOps),
            pct(wholeFile.readOps, blockBased.readOps)});
  t.addRow({"Total NFS calls/day", TextTable::withCommas(wholeFile.totalOps),
            TextTable::withCommas(blockBased.totalOps),
            pct(wholeFile.totalOps, blockBased.totalOps)});
  t.addRow({"Data written (MB/day)",
            TextTable::fixed(static_cast<double>(wholeFile.bytesWritten) / 1e6, 1),
            TextTable::fixed(static_cast<double>(blockBased.bytesWritten) / 1e6, 1),
            pct(wholeFile.bytesWritten, blockBased.bytesWritten)});
  std::fputs(t.render().c_str(), stdout);

  std::printf(
      "\nThe paper (§6.1.2): each delivery updates the inbox mtime, NFS\n"
      "invalidates the whole cached file, and the client immediately\n"
      "re-reads on average >2 MB — 'the majority of all reads on CAMPUS'.\n"
      "With message-basis consistency only the appended tail is fetched,\n"
      "so the read volume collapses while the write path is untouched —\n"
      "quantifying the speculation the authors could not test.\n");
  return 0;
}
