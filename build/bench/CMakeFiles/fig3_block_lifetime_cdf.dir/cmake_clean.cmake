file(REMOVE_RECURSE
  "CMakeFiles/fig3_block_lifetime_cdf.dir/fig3_block_lifetime_cdf.cpp.o"
  "CMakeFiles/fig3_block_lifetime_cdf.dir/fig3_block_lifetime_cdf.cpp.o.d"
  "fig3_block_lifetime_cdf"
  "fig3_block_lifetime_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_block_lifetime_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
