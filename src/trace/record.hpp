// The trace record: one NFS call/reply pair as observed by the passive
// tracer.  This is the unit all analyses operate on, and the unit the
// anonymizer transforms.  Field presence mirrors what is actually
// decodable from the wire (e.g. a lost reply leaves the reply fields
// unset, exactly as in the paper's CAMPUS captures).
#pragma once

#include <cstdint>
#include <string>

#include "net/packet.hpp"
#include "nfs/proc.hpp"
#include "nfs/types.hpp"
#include "util/time.hpp"

namespace nfstrace {

struct TraceRecord {
  // --- call side
  MicroTime ts = 0;        // when the call crossed the tap
  IpAddr client = 0;
  IpAddr server = 0;
  std::uint32_t xid = 0;
  std::uint8_t vers = 3;   // NFS protocol version (2 or 3)
  bool overTcp = false;
  NfsOp op = NfsOp::Unknown;
  std::uint32_t uid = 0;
  std::uint32_t gid = 0;
  FileHandle fh;           // primary handle (target file, or directory)
  std::string name;        // directory-op filename (lookup/create/remove/...)
  std::string name2;       // rename destination name / symlink target
  FileHandle fh2;          // secondary handle (rename to-dir, link dir)
  std::uint64_t offset = 0;
  std::uint32_t count = 0; // requested bytes (read/write)

  // --- reply side (valid iff hasReply)
  bool hasReply = false;
  MicroTime replyTs = 0;
  NfsStat status = NfsStat::Ok;
  std::uint32_t retCount = 0;  // bytes actually read/written
  bool eof = false;            // READ reply EOF flag
  FileHandle resFh;            // handle returned by lookup/create/mkdir
  bool hasResFh = false;
  bool hasAttrs = false;       // post-op attributes seen in the reply
  FileType ftype = FileType::Regular;
  std::uint64_t fileSize = 0;  // post-op size
  MicroTime fileMtime = 0;     // post-op mtime
  std::uint64_t fileId = 0;    // post-op fileid
  bool hasPre = false;         // WCC pre-op attributes (v3 writes etc.)
  std::uint64_t preSize = 0;
  MicroTime preMtime = 0;

  /// True for operations whose `offset`/`count` fields are meaningful
  /// (the set the text and v2 formats serialize them for).
  bool hasOffset() const {
    return op == NfsOp::Read || op == NfsOp::Write || op == NfsOp::Commit;
  }

  /// True for operations whose `name` field is meaningful.
  bool hasName() const {
    return op == NfsOp::Lookup || op == NfsOp::Create || op == NfsOp::Mkdir ||
           op == NfsOp::Symlink || op == NfsOp::Mknod || op == NfsOp::Remove ||
           op == NfsOp::Rmdir || op == NfsOp::Rename || op == NfsOp::Link ||
           op == NfsOp::Readdir || op == NfsOp::Readdirplus;
  }
};

/// Reset a record to default values while keeping the heap capacity of
/// its string fields, so a reused decode slot allocates nothing.
inline void resetRecordKeepCapacity(TraceRecord& rec) {
  std::string name = std::move(rec.name);
  std::string name2 = std::move(rec.name2);
  name.clear();
  name2.clear();
  rec = TraceRecord{};
  rec.name = std::move(name);
  rec.name2 = std::move(name2);
}

}  // namespace nfstrace
