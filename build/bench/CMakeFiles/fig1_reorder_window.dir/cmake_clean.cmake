file(REMOVE_RECURSE
  "CMakeFiles/fig1_reorder_window.dir/fig1_reorder_window.cpp.o"
  "CMakeFiles/fig1_reorder_window.dir/fig1_reorder_window.cpp.o.d"
  "fig1_reorder_window"
  "fig1_reorder_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_reorder_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
