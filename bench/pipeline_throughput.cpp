// Throughput of capture -> decode -> trace-write, serial vs sharded.
//
// The baseline is the frozen seed hot path (legacy_baseline.hpp):
// std::map flow tables, per-frame O(pending) expiry scans, ostringstream
// formatting, one fwrite per record.  Against it we measure the reworked
// serial path (hashed tables, quantized expiry, allocation-free
// formatting, buffered writes) and the sharded ParallelPipeline at
// 1/2/4/8 shards, asserting the sharded trace files stay byte-identical
// to the serial one.  Results land in BENCH_pipeline.json.
//
// The capture is replayed through a bandwidth-limited MirrorPort before
// tracing, reproducing the paper's lossy CAMPUS span-port setup (§4.1.4:
// loss shows up as replies whose calls were dropped, and calls that never
// see a reply).  Loss is what makes the pending-call table grow, and a
// grown pending table is precisely what the seed's per-frame expiry scan
// cannot afford — the tracer must keep up at the moment it matters most.
// The mirror drop pattern is deterministic (buffer overflow, no RNG), so
// the byte-identical check still holds across shard counts.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "legacy_baseline.hpp"
#include "pipeline/pipeline.hpp"
#include "sniffer/sniffer.hpp"
#include "trace/tracefile.hpp"

namespace nfstrace {
namespace {

using bench::kWeekStart;
using bench::makeEecs;

struct FrameCollector : FrameSink {
  std::vector<CapturedPacket> frames;
  void onFrame(const CapturedPacket& pkt) override { frames.push_back(pkt); }
};

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

struct RunResult {
  double rps = 0;        // trace records per wall-clock second
  std::uint64_t records = 0;
};

/// The shared box this runs on is noisy; report the best of `kReps`
/// timed repetitions of each variant (same treatment for every variant,
/// including the baseline).
inline int reps() { return bench::smokeMode() ? 1 : 5; }

template <typename Fn>
RunResult bestOf(Fn&& run, int n = 0) {
  RunResult best;
  if (n <= 0) n = reps();
  for (int i = 0; i < n; ++i) {
    RunResult r = run();
    if (r.rps > best.rps) best = r;
  }
  return best;
}

/// Replies under bursty load can take a while to show up at the tap; a
/// short timeout would misclassify them as lost.  Used by every variant.
constexpr MicroTime kPendingTimeout = 7200 * kMicrosPerSecond;
/// With a two-hour timeout, sub-minute precision on expiry emission is
/// pointless; scan the pending table at most once per 30 simulated
/// seconds (the reworked paths; the legacy baseline scans every frame).
constexpr MicroTime kScanInterval = 30 * kMicrosPerSecond;

RunResult runLegacy(const std::vector<CapturedPacket>& frames,
                    const std::string& path) {
  auto t0 = std::chrono::steady_clock::now();
  legacy::TraceWriter writer(path);
  std::uint64_t n = 0;
  legacy::Sniffer::Config cfg;
  cfg.pendingTimeout = kPendingTimeout;
  legacy::Sniffer sniffer(cfg, [&](const TraceRecord& r) {
    writer.write(r);
    ++n;
  });
  for (const auto& f : frames) sniffer.onFrame(f);
  sniffer.flush();
  double dt = secondsSince(t0);
  return {static_cast<double>(n) / dt, n};
}

RunResult runSerial(const std::vector<CapturedPacket>& frames,
                    const std::string& path) {
  auto t0 = std::chrono::steady_clock::now();
  std::uint64_t n = 0;
  {
    TraceWriter writer(path, TraceWriter::Format::Text);
    Sniffer::Config cfg;
    cfg.pendingTimeout = kPendingTimeout;
    cfg.expiryScanInterval = kScanInterval;
    Sniffer sniffer(cfg, [&](const TraceRecord& r) {
      writer.write(r);
      ++n;
    });
    for (const auto& f : frames) sniffer.onFrame(f);
    sniffer.flush();
  }
  double dt = secondsSince(t0);
  return {static_cast<double>(n) / dt, n};
}

RunResult runSharded(const std::vector<CapturedPacket>& frames, int shards,
                     const std::string& path) {
  auto t0 = std::chrono::steady_clock::now();
  std::uint64_t n = 0;
  {
    TraceWriter writer(path, TraceWriter::Format::Text);
    ParallelPipeline::Config pc;
    pc.shards = shards;
    pc.sniffer.pendingTimeout = kPendingTimeout;
    pc.sniffer.expiryScanInterval = kScanInterval;
    ParallelPipeline pipe(pc, [&](const TraceRecord& r) {
      writer.write(r);
      ++n;
    });
    for (const auto& f : frames) pipe.feed(&f);
    pipe.finish();
  }
  double dt = secondsSince(t0);
  return {static_cast<double>(n) / dt, n};
}

}  // namespace
}  // namespace nfstrace

int main(int argc, char** argv) {
  using namespace nfstrace;
  const std::string jsonPath = argc > 1 ? argv[1] : "BENCH_pipeline.json";
  const bool smoke = bench::smokeMode();
  const double simDays = smoke ? 0.05 : 1.5;

  std::printf("generating synthetic EECS capture (%.2f days)...\n", simDays);
  FrameCollector lossless;
  {
    auto eecs = makeEecs(smoke ? 6 : 24, [](const TraceRecord&) {});
    eecs.env->addTapSink(&lossless);
    eecs.workload->setup(kWeekStart);
    eecs.workload->run(kWeekStart, kWeekStart + days(simDays));
    eecs.env->finishCapture();
  }

  // Replay through a constrained span port: peak bursts overflow its
  // buffer and drop frames, like the paper's CAMPUS mirror.
  FrameCollector mirrored;
  {
    MirrorPort::Config mc;
    mc.bandwidthBitsPerSec = 40e6;
    mc.bufferBytes = 64 * 1024;
    MirrorPort mirror(mc, mirrored);
    for (const auto& f : lossless.frames) mirror.onFrame(f);
    std::printf("mirror: %zu of %zu frames survived (%.2f%% loss)\n",
                mirrored.frames.size(), lossless.frames.size(),
                100.0 * mirror.dropRate());
  }
  const auto& frames = mirrored.frames;

  // Warm-up pass so page cache / allocator state is comparable across
  // the timed runs.
  runSerial(frames, "bench_warmup.trace");

  auto baseline =
      bestOf([&] { return runLegacy(frames, "bench_legacy.trace"); });
  std::printf("legacy baseline : %10.0f rec/s  (%llu records)\n", baseline.rps,
              static_cast<unsigned long long>(baseline.records));

  auto serial = bestOf([&] { return runSerial(frames, "bench_serial.trace"); });
  std::printf("serial reworked : %10.0f rec/s\n", serial.rps);

  // Cross-shard scaling is only a meaningful expectation when the shards
  // can actually run in parallel; on one hardware thread the multi-shard
  // variants time-slice the same core, so they run a single rep (the
  // byte-identical check still applies) and the scaling gate is skipped.
  unsigned hwThreads = std::thread::hardware_concurrency();
  if (hwThreads <= 1) {
    std::printf("single hardware thread: multi-shard variants run 1 rep, "
                "scaling gate skipped\n");
  }

  std::string serialBytes = slurp("bench_serial.trace");
  bool identical = !serialBytes.empty();
  double shardRps[4] = {0, 0, 0, 0};
  const int shardCounts[4] = {1, 2, 4, 8};
  for (int i = 0; i < 4; ++i) {
    std::string path = "bench_shard" + std::to_string(shardCounts[i]) + ".trace";
    const int shardReps =
        (shardCounts[i] > 1 && hwThreads <= 1) ? 1 : reps();
    auto r = bestOf([&] { return runSharded(frames, shardCounts[i], path); },
                    shardReps);
    shardRps[i] = r.rps;
    bool same = slurp(path) == serialBytes;
    identical = identical && same;
    std::printf("pipeline x%d     : %10.0f rec/s  (identical=%s)\n",
                shardCounts[i], r.rps, same ? "yes" : "NO");
  }

  double speedup4 = shardRps[2] / baseline.rps;
  // The honest scaling number: 4 shards against the reworked serial path
  // on the same build, not against the frozen seed baseline.
  double speedup4Serial = shardRps[2] / serial.rps;
  // Only a >=4-thread box can be expected to show cross-shard scaling;
  // elsewhere only the byte-identical property is enforceable.
  bool expectScaling = hwThreads >= 4;
  std::printf("\nspeedup at 4 shards over baseline: %.2fx\n", speedup4);
  std::printf("speedup at 4 shards over reworked serial: %.2fx\n",
              speedup4Serial);
  std::printf("hardware threads: %u%s\n", hwThreads,
              expectScaling ? "" : "  (< 4: scaling gate skipped)");
  std::printf("sharded output identical to serial: %s\n",
              identical ? "true" : "false");

  std::remove("bench_warmup.trace");
  std::remove("bench_legacy.trace");
  std::remove("bench_serial.trace");
  for (int c : shardCounts) {
    std::remove(("bench_shard" + std::to_string(c) + ".trace").c_str());
  }

  std::FILE* j = std::fopen(jsonPath.c_str(), "w");
  if (!j) {
    std::fprintf(stderr, "cannot write %s\n", jsonPath.c_str());
    return 1;
  }
  std::fprintf(j,
               "{\"bench\":\"pipeline_throughput\",\"frames\":%zu,"
               "\"records\":%llu,\"hw_threads\":%u,"
               "\"baseline_rps\":%.0f,\"serial_rps\":%.0f,"
               "\"shard1_rps\":%.0f,\"shard2_rps\":%.0f,\"shard4_rps\":%.0f,"
               "\"shard8_rps\":%.0f,\"speedup_4shard\":%.5g,"
               "\"speedup_4shard_vs_serial\":%.5g,"
               "\"scaling_gate_applied\":%s,"
               "\"output_identical\":%s",
               frames.size(), static_cast<unsigned long long>(serial.records),
               hwThreads, baseline.rps, serial.rps, shardRps[0], shardRps[1],
               shardRps[2], shardRps[3], speedup4, speedup4Serial,
               expectScaling ? "true" : "false",
               identical ? "true" : "false");
  if (hwThreads <= 1) {
    std::fprintf(j,
                 ",\"skipped_reason\":\"hw_threads==1: multi-shard variants "
                 "single-rep, scaling gate skipped\"");
  }
  std::fprintf(j, "}\n");
  std::fclose(j);
  std::printf("wrote %s\n", jsonPath.c_str());
  if (smoke) {
    // Under ctest -L perf the smoke run doubles as a throughput sanity
    // check: byte-identical output and a conservative records/sec floor
    // (far below steady-state, so scheduler noise cannot flake it).
    if (const char* floorEnv = std::getenv("NFSTRACE_SMOKE_RPS_FLOOR")) {
      double floor = std::atof(floorEnv);
      bool ok = identical && serial.rps >= floor;
      std::printf("smoke sanity: serial %.0f rec/s (floor %.0f), "
                  "identical=%s -> %s\n",
                  serial.rps, floor, identical ? "true" : "false",
                  ok ? "PASS" : "FAIL");
      return ok ? 0 : 1;
    }
    return 0;
  }
  return identical && (!expectScaling || speedup4 >= 2.5) ? 0 : 1;
}
