# Empty compiler generated dependencies file for nfstrace_util.
# This may be replaced when dependencies are built.
