file(REMOVE_RECURSE
  "CMakeFiles/nfstrace_xdr.dir/xdr.cpp.o"
  "CMakeFiles/nfstrace_xdr.dir/xdr.cpp.o.d"
  "libnfstrace_xdr.a"
  "libnfstrace_xdr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfstrace_xdr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
