#include "obs/metrics.hpp"

#include <algorithm>

namespace nfstrace::obs {

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets[i] == 0) continue;
    double next = cum + static_cast<double>(buckets[i]);
    if (next >= target) {
      if (i == 0) return 0.0;
      // Geometric interpolation inside the bucket: log-scale buckets make
      // the geometric midpoint the unbiased choice.
      double frac = (target - cum) / static_cast<double>(buckets[i]);
      double lo = bucketLow(i), hi = bucketHigh(i);
      return lo * std::pow(hi / lo, frac);
    }
    cum = next;
  }
  return max();
}

double HistogramSnapshot::max() const {
  for (std::size_t i = kBuckets; i-- > 0;) {
    if (buckets[i]) return bucketHigh(i);
  }
  return 0.0;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets[i] += other.buckets[i];
  count += other.count;
  sum += other.sum;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  for (const auto& slot : slots_) {
    for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      std::uint64_t n = slot.buckets[i].load(std::memory_order_relaxed);
      out.buckets[i] += n;
      out.count += n;
    }
    out.sum += slot.sum.load(std::memory_order_relaxed);
  }
  return out;
}

namespace {

template <typename Map>
auto& createOrGet(Map& map, std::string_view name) {
  auto it = map.find(name);
  if (it == map.end()) {
    using Metric = typename Map::mapped_type::element_type;
    it = map.emplace(std::string(name), std::make_unique<Metric>()).first;
  }
  return *it->second;
}

}  // namespace

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mu_);
  return createOrGet(counters_, name);
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mu_);
  return createOrGet(gauges_, name);
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mu_);
  return createOrGet(histograms_, name);
}

void Registry::gaugeFn(std::string_view name, std::function<double()> fn) {
  std::lock_guard lock(mu_);
  gaugeFns_.emplace(std::string(name), std::move(fn));  // keep-first
}

void Registry::unregisterGaugeFn(std::string_view name) {
  std::lock_guard lock(mu_);
  auto it = gaugeFns_.find(name);
  if (it != gaugeFns_.end()) gaugeFns_.erase(it);
}

Snapshot Registry::scrape() const {
  std::lock_guard lock(mu_);
  Snapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->total());
  }
  snap.gauges.reserve(gauges_.size() + gaugeFns_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  for (const auto& [name, fn] : gaugeFns_) {
    snap.gauges.emplace_back(name, fn());
  }
  // Set and sampled gauges come from two maps; restore one sorted order.
  std::sort(snap.gauges.begin(), snap.gauges.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->snapshot());
  }
  return snap;
}

}  // namespace nfstrace::obs
