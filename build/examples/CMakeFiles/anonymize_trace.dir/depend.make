# Empty dependencies file for anonymize_trace.
# This may be replaced when dependencies are built.
