// Small string helpers shared by the anonymizer, trace codec, and name
// classifier.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace nfstrace {

/// Split on a delimiter; empty fields are preserved ("a//b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char delim);

/// Join with a delimiter.
std::string join(const std::vector<std::string>& parts, char delim);

bool startsWith(std::string_view s, std::string_view prefix);
bool endsWith(std::string_view s, std::string_view suffix);

/// The extension-like suffix of a filename: everything from the last '.'
/// (inclusive) if one exists past position 0; otherwise empty.  Matches the
/// anonymizer's rule that "all files that share the same suffix will have
/// anonymized names that end in the anonymized form of that suffix".
std::string_view filenameSuffix(std::string_view name);

/// Lowercase ASCII copy.
std::string toLower(std::string_view s);

}  // namespace nfstrace
