// Analysis-engine pins: batch decoding equivalence, intern-id stability,
// recovery on batch boundaries, and the determinism guarantee (output
// byte-identical to serial at any worker count).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "analysis/blocklife.hpp"
#include "analysis/engine/engine.hpp"
#include "analysis/engine/passes.hpp"
#include "analysis/engine/report.hpp"
#include "analysis/names.hpp"
#include "analysis/pathrec.hpp"
#include "analysis/reorder.hpp"
#include "analysis/runs.hpp"
#include "analysis/summary.hpp"
#include "analysis/users.hpp"
#include "trace/tracefile.hpp"
#include "workload/campus.hpp"
#include "workload/sim.hpp"

namespace nfstrace {
namespace {

/// One shared demo trace per test binary run: a two-hour CAMPUS morning,
/// rich enough to exercise every pass (reads, writes, creates, removes,
/// lock files, renames).
class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    records_ = new std::vector<TraceRecord>();
    SimEnvironment::Config cfg;
    cfg.fsConfig.fsid = 2;
    cfg.clientHosts = 3;
    SimEnvironment env(cfg);
    CampusConfig wl;
    wl.users = 8;
    CampusWorkload workload(wl, env);
    MicroTime start = days(1) + hours(9);
    workload.setup(start);
    workload.run(start, start + hours(1));
    env.finishCapture();
    *records_ = env.records();

    // Per-process names: gtest_discover_tests runs each case as its own
    // ctest entry, so concurrent processes would race on a fixed path.
    std::string pid = std::to_string(::getpid());
    textPath_ = new std::string("/tmp/engine_test_" + pid + "_text.trace");
    binPath_ = new std::string("/tmp/engine_test_" + pid + "_bin.trace");
    {
      TraceWriter w(*textPath_, TraceWriter::Format::Text);
      for (const auto& r : *records_) w.write(r);
    }
    {
      TraceWriter w(*binPath_, TraceWriter::Format::Binary);
      for (const auto& r : *records_) w.write(r);
    }
  }

  static void TearDownTestSuite() {
    std::remove(textPath_->c_str());
    std::remove(binPath_->c_str());
    delete records_;
    delete textPath_;
    delete binPath_;
    records_ = nullptr;
    textPath_ = nullptr;
    binPath_ = nullptr;
  }

  static std::vector<TraceRecord>* records_;
  static std::string* textPath_;
  static std::string* binPath_;
};

std::vector<TraceRecord>* EngineTest::records_ = nullptr;
std::string* EngineTest::textPath_ = nullptr;
std::string* EngineTest::binPath_ = nullptr;

std::string runEngineReport(const std::string& path, std::size_t workers,
                            bool recover = false) {
  StandardAnalyses analyses;
  AnalysisEngine::Config cfg;
  cfg.workers = workers;
  AnalysisEngine engine(cfg);
  engine.addPasses(analyses.all());
  TraceReader reader(path, recover);
  engine.run(reader);
  return renderReportText(path, analyses);
}

// -------------------------------------------- batch reader equivalence

void checkBatchMatchesNext(const std::string& path) {
  TraceReader one(path);
  TraceReader batched(path);
  TraceBatch batch;
  std::size_t total = 0;
  while (batched.nextBatch(batch, 57)) {  // odd size: batches straddle
    ASSERT_GT(batch.n, 0u);
    for (std::size_t i = 0; i < batch.n; ++i) {
      auto expect = one.next();
      ASSERT_TRUE(expect.has_value()) << "batch reader produced extras";
      EXPECT_EQ(formatRecord(batch.records[i]), formatRecord(*expect));
      // Interned ids decode back to exactly the record's own fields.
      const TraceRecord& r = batch.records[i];
      EXPECT_EQ(batch.nameInterner->view(batch.nameId[i]), r.name);
      EXPECT_EQ(batch.nameInterner->view(batch.name2Id[i]), r.name2);
      std::string_view fhBytes = batch.handleInterner->view(batch.fhId[i]);
      EXPECT_EQ(fhBytes,
                std::string_view(reinterpret_cast<const char*>(r.fh.data.data()),
                                 r.fh.len));
      ++total;
    }
  }
  EXPECT_FALSE(one.next().has_value()) << "batch reader lost records";
  EXPECT_GT(total, 0u);
}

TEST_F(EngineTest, BatchReaderMatchesNextText) {
  checkBatchMatchesNext(*textPath_);
}

TEST_F(EngineTest, BatchReaderMatchesNextBinary) {
  checkBatchMatchesNext(*binPath_);
}

TEST_F(EngineTest, NextShimStillWorks) {
  TraceReader reader(*textPath_);
  std::size_t n = 0;
  while (auto rec = reader.next()) {
    EXPECT_EQ(formatRecord(*rec), formatRecord((*records_)[n]));
    ++n;
  }
  EXPECT_EQ(n, records_->size());
}

TEST_F(EngineTest, ReadAllMatchesRecords) {
  auto all = TraceReader::readAll(*textPath_);
  ASSERT_EQ(all.size(), records_->size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(formatRecord(all[i]), formatRecord((*records_)[i]));
  }
}

// ------------------------------------------------- intern-id stability

TEST_F(EngineTest, InternIdsStableAcrossBatches) {
  TraceReader reader(*textPath_);
  TraceBatch batch;
  std::map<std::string, std::uint32_t> nameIds, fhIds;
  while (reader.nextBatch(batch, 43)) {
    for (std::size_t i = 0; i < batch.n; ++i) {
      const TraceRecord& r = batch.records[i];
      auto [it, inserted] = nameIds.try_emplace(r.name, batch.nameId[i]);
      EXPECT_EQ(it->second, batch.nameId[i])
          << "name '" << r.name << "' re-interned under a different id";
      std::string fhKey(reinterpret_cast<const char*>(r.fh.data.data()),
                        r.fh.len);
      auto [fit, finserted] = fhIds.try_emplace(fhKey, batch.fhId[i]);
      EXPECT_EQ(fit->second, batch.fhId[i]);
    }
  }
  // Empty string is always id 0 (the shared sentinel for absent fields).
  EXPECT_EQ(reader.nameInterner().view(0), "");
  EXPECT_EQ(reader.nameInterner().size(),
            nameIds.count("") ? nameIds.size() : nameIds.size() + 1);
}

// ------------------------------------------------------- recovery path

TEST_F(EngineTest, RecoverResyncsLandOnBatchBoundaries) {
  // Corrupt one record line in the middle of the text trace.
  std::string corruptPath =
      "/tmp/engine_test_" + std::to_string(::getpid()) + "_corrupt.trace";
  {
    std::FILE* in = std::fopen(textPath_->c_str(), "rb");
    ASSERT_NE(in, nullptr);
    std::string bytes;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) bytes.append(buf, n);
    std::fclose(in);
    std::vector<std::string> lines;
    std::size_t pos = 0;
    while (pos < bytes.size()) {
      std::size_t nl = bytes.find('\n', pos);
      if (nl == std::string::npos) nl = bytes.size();
      lines.push_back(bytes.substr(pos, nl - pos));
      pos = nl + 1;
    }
    std::size_t mid = lines.size() / 2;
    while (mid < lines.size() && (lines[mid].empty() || lines[mid][0] == '#'))
      ++mid;
    ASSERT_LT(mid, lines.size());
    lines[mid] = "x#!neither comment nor parseable";
    std::FILE* out = std::fopen(corruptPath.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    for (const auto& l : lines) {
      std::fwrite(l.data(), 1, l.size(), out);
      std::fputc('\n', out);
    }
    std::fclose(out);
  }

  TraceReader::RecoverStats rs;
  auto expected = TraceReader::recoverAll(corruptPath, &rs);
  EXPECT_EQ(rs.skipped, 1u);
  EXPECT_EQ(rs.resyncs, 1u);

  // The batch path recovers the identical record sequence, and the batch
  // in flight when the resync happened is cut at the boundary.
  TraceReader reader(corruptPath, /*recover=*/true);
  TraceBatch batch;
  std::vector<std::string> got;
  std::size_t resyncCuts = 0;
  while (reader.nextBatch(batch, 64)) {
    if (batch.endedAtResync) {
      ++resyncCuts;
      EXPECT_LT(batch.n, 64u) << "a cut batch cannot be full";
    }
    for (std::size_t i = 0; i < batch.n; ++i) {
      got.push_back(formatRecord(batch.records[i]));
    }
  }
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], formatRecord(expected[i]));
  }
  EXPECT_EQ(resyncCuts, 1u);

  // The full engine runs over the damaged trace and stays deterministic.
  std::string serial = runEngineReport(corruptPath, 1, true);
  std::string parallel = runEngineReport(corruptPath, 4, true);
  EXPECT_EQ(serial, parallel);
  std::remove(corruptPath.c_str());
}

// -------------------------------------------------------- determinism

TEST_F(EngineTest, ReportByteIdenticalAtAnyWorkerCount) {
  std::string serial = runEngineReport(*textPath_, 1);
  EXPECT_FALSE(serial.empty());
  for (std::size_t workers : {2u, 4u, 7u}) {
    EXPECT_EQ(runEngineReport(*textPath_, workers), serial)
        << "report diverged at " << workers << " workers";
  }
  // Small batches force many seq%workers handoffs; still identical.
  StandardAnalyses analyses;
  AnalysisEngine::Config cfg;
  cfg.workers = 3;
  cfg.batchRecords = 19;
  AnalysisEngine engine(cfg);
  engine.addPasses(analyses.all());
  TraceReader reader(*textPath_);
  engine.run(reader);
  EXPECT_EQ(renderReportText(*textPath_, analyses), serial);
}

TEST_F(EngineTest, JsonReportDeterministicToo) {
  auto runJson = [&](std::size_t workers) {
    StandardAnalyses analyses;
    AnalysisEngine::Config cfg;
    cfg.workers = workers;
    AnalysisEngine engine(cfg);
    engine.addPasses(analyses.all());
    TraceReader reader(*textPath_);
    engine.run(reader);
    return renderReportJson(*textPath_, analyses);
  };
  std::string j1 = runJson(1);
  EXPECT_FALSE(j1.empty());
  EXPECT_EQ(j1.front(), '{');
  EXPECT_EQ(runJson(4), j1);
}

// --------------------------------------------- legacy-result equality

TEST_F(EngineTest, PassResultsMatchLegacyFunctions) {
  const auto& records = *records_;

  StandardAnalyses analyses;
  AnalysisEngine engine;
  engine.addPasses(analyses.all());
  TraceReader reader(*textPath_);
  const auto& st = engine.run(reader);
  EXPECT_EQ(st.records, records.size());

  // summary
  TraceSummary legacy = summarize(records);
  const TraceSummary& s = analyses.summary.result();
  EXPECT_EQ(s.totalOps, legacy.totalOps);
  EXPECT_EQ(s.opCounts, legacy.opCounts);
  EXPECT_EQ(s.bytesRead, legacy.bytesRead);
  EXPECT_EQ(s.bytesWritten, legacy.bytesWritten);
  EXPECT_EQ(s.readOps, legacy.readOps);
  EXPECT_EQ(s.writeOps, legacy.writeOps);
  EXPECT_EQ(s.dataOps, legacy.dataOps);
  EXPECT_EQ(s.metadataOps, legacy.metadataOps);
  EXPECT_EQ(s.repliesMissing, legacy.repliesMissing);
  EXPECT_EQ(s.firstTs, legacy.firstTs);
  EXPECT_EQ(s.lastTs, legacy.lastTs);

  // hourly
  HourlyStats hs;
  for (const auto& r : records) hs.observe(r);
  ASSERT_EQ(analyses.hourly.result().hours().size(), hs.hours().size());
  for (std::size_t i = 0; i < hs.hours().size(); ++i) {
    EXPECT_EQ(analyses.hourly.result().hours()[i].totalOps,
              hs.hours()[i].totalOps);
    EXPECT_EQ(analyses.hourly.result().hours()[i].bytesRead,
              hs.hours()[i].bytesRead);
  }

  // users
  UserStats us;
  for (const auto& r : records) us.observe(r);
  EXPECT_EQ(analyses.users.result().userCount(), us.userCount());
  EXPECT_DOUBLE_EQ(analyses.users.result().imbalance(), us.imbalance());
  auto top = us.byActivity();
  auto etop = analyses.users.result().byActivity();
  ASSERT_EQ(etop.size(), top.size());
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(etop[i].uid, top[i].uid);
    EXPECT_EQ(etop[i].totalOps, top[i].totalOps);
    EXPECT_EQ(etop[i].activeHours, top[i].activeHours);
  }

  // reorder sweep
  auto sweep = sweepReorderWindows(
      records, {0, 1'000, 5'000, 10'000, 50'000, 100'000, 1'000'000});
  ASSERT_EQ(analyses.reorder.sweep().size(), sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_EQ(analyses.reorder.sweep()[i].first, sweep[i].first);
    EXPECT_DOUBLE_EQ(analyses.reorder.sweep()[i].second, sweep[i].second);
  }

  // runs
  auto sorted = sortWithReorderWindow(records, 10'000);
  auto runs = detectRuns(sorted.records);
  EXPECT_EQ(analyses.runs.runs().size(), runs.size());
  EXPECT_DOUBLE_EQ(analyses.runs.reorderSwappedFraction(),
                   sorted.swappedFraction());
  auto rp = summarizeRunPatterns(runs);
  EXPECT_DOUBLE_EQ(analyses.runs.patterns().readFrac, rp.readFrac);
  EXPECT_DOUBLE_EQ(analyses.runs.patterns().writeSeq, rp.writeSeq);
  EXPECT_DOUBLE_EQ(analyses.runs.patterns().rwRandom, rp.rwRandom);

  // block life
  BlockLifeConfig cfg;
  cfg.phase1Start = legacy.firstTs;
  cfg.phase1Length =
      std::max<MicroTime>((legacy.lastTs - legacy.firstTs) / 2, 1);
  cfg.phase2Length = cfg.phase1Length;
  EmpiricalCdf lifetimes;
  auto bl = analyzeBlockLife(records, cfg, &lifetimes);
  EXPECT_EQ(analyses.blocklife.stats().births, bl.births);
  EXPECT_EQ(analyses.blocklife.stats().deaths, bl.deaths);
  EXPECT_EQ(analyses.blocklife.stats().birthsWrite, bl.birthsWrite);
  EXPECT_EQ(analyses.blocklife.stats().deathsOverwrite, bl.deathsOverwrite);
  EXPECT_EQ(analyses.blocklife.lifetimes().size(), lifetimes.size());

  // names
  FileLifeCensus census;
  for (const auto& r : records) census.observe(r);
  census.finish();
  EXPECT_EQ(analyses.names.census().totalCreated(), census.totalCreated());
  EXPECT_EQ(analyses.names.census().totalDeleted(), census.totalDeleted());
  EXPECT_DOUBLE_EQ(analyses.names.census().lockFractionOfDeleted(),
                   census.lockFractionOfDeleted());

  // pathrec
  PathReconstructor pr;
  for (const auto& r : records) pr.observe(r);
  EXPECT_EQ(analyses.pathrec.reconstructor().knownFiles(), pr.knownFiles());
  EXPECT_DOUBLE_EQ(analyses.pathrec.reconstructor().parentCoverage(),
                   pr.parentCoverage());
}

// --------------------------------------------------- engine mechanics

TEST_F(EngineTest, StatsAndRerunReuse) {
  StandardAnalyses analyses;
  AnalysisEngine engine;
  engine.addPasses(analyses.all());
  {
    TraceReader reader(*textPath_);
    const auto& st = engine.run(reader);
    EXPECT_EQ(st.records, records_->size());
    EXPECT_GT(st.batches, 0u);
    EXPECT_GT(st.internedNames + st.internedHandles, 0u);
    EXPECT_EQ(st.resyncCuts, 0u);
  }
  std::string first = renderReportText("x", analyses);
  {
    // A second run() re-prepares every pass: same input, same output.
    TraceReader reader(*textPath_);
    engine.run(reader);
  }
  EXPECT_EQ(renderReportText("x", analyses), first);
}

TEST(EngineStandalone, EmptyTraceYieldsNoRecords) {
  std::string path =
      "/tmp/engine_test_" + std::to_string(::getpid()) + "_empty.trace";
  { TraceWriter w(path, TraceWriter::Format::Text); }
  StandardAnalyses analyses;
  AnalysisEngine engine;
  engine.addPasses(analyses.all());
  TraceReader reader(path);
  const auto& st = engine.run(reader);
  EXPECT_EQ(st.records, 0u);
  EXPECT_EQ(st.batches, 0u);
  EXPECT_EQ(analyses.summary.result().totalOps, 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nfstrace
