# Empty dependencies file for table3_access_patterns.
# This may be replaced when dependencies are built.
