# Empty compiler generated dependencies file for fig5_sequentiality.
# This may be replaced when dependencies are built.
