file(REMOVE_RECURSE
  "CMakeFiles/ablation_cache_granularity.dir/ablation_cache_granularity.cpp.o"
  "CMakeFiles/ablation_cache_granularity.dir/ablation_cache_granularity.cpp.o.d"
  "ablation_cache_granularity"
  "ablation_cache_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
