#include "util/config.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace nfstrace {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return {};
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

ConfigFile ConfigFile::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("config: cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

ConfigFile ConfigFile::parse(const std::string& text) {
  ConfigFile cfg;
  int lineNo = 0;
  for (const auto& rawLine : split(text, '\n')) {
    ++lineNo;
    std::string line = rawLine;
    // Strip comments ('#' anywhere outside a value is fine; we keep it
    // simple and strip from the first '#').
    auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;
    auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("config: malformed line " +
                               std::to_string(lineNo) + ": " + rawLine);
    }
    std::string key = trim(line.substr(0, eq));
    std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error("config: empty key on line " +
                               std::to_string(lineNo));
    }
    cfg.values_[key].push_back(value);
  }
  return cfg;
}

bool ConfigFile::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::optional<std::string> ConfigFile::get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::string ConfigFile::get(const std::string& key,
                            const std::string& fallback) const {
  auto v = get(key);
  return v ? *v : fallback;
}

std::vector<std::string> ConfigFile::getAll(const std::string& key) const {
  auto it = values_.find(key);
  return it == values_.end() ? std::vector<std::string>{} : it->second;
}

std::int64_t ConfigFile::getInt(const std::string& key,
                                std::int64_t fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  try {
    std::size_t used = 0;
    auto out = std::stoll(*v, &used);
    if (used != v->size()) throw std::invalid_argument(*v);
    return out;
  } catch (const std::exception&) {
    throw std::runtime_error("config: bad integer for " + key + ": " + *v);
  }
}

double ConfigFile::getDouble(const std::string& key, double fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  try {
    std::size_t used = 0;
    auto out = std::stod(*v, &used);
    if (used != v->size()) throw std::invalid_argument(*v);
    return out;
  } catch (const std::exception&) {
    throw std::runtime_error("config: bad number for " + key + ": " + *v);
  }
}

bool ConfigFile::getBool(const std::string& key, bool fallback) const {
  auto v = get(key);
  if (!v) return fallback;
  std::string lower = toLower(*v);
  if (lower == "true" || lower == "yes" || lower == "1" || lower == "on") {
    return true;
  }
  if (lower == "false" || lower == "no" || lower == "0" || lower == "off") {
    return false;
  }
  throw std::runtime_error("config: bad boolean for " + key + ": " + *v);
}

std::vector<std::string> ConfigFile::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

}  // namespace nfstrace
