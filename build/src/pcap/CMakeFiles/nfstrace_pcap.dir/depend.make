# Empty dependencies file for nfstrace_pcap.
# This may be replaced when dependencies are built.
