file(REMOVE_RECURSE
  "CMakeFiles/fig2_filesize_access.dir/fig2_filesize_access.cpp.o"
  "CMakeFiles/fig2_filesize_access.dir/fig2_filesize_access.cpp.o.d"
  "fig2_filesize_access"
  "fig2_filesize_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_filesize_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
