# Empty dependencies file for nfstrace_sniffer.
# This may be replaced when dependencies are built.
