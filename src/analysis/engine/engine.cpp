#include "analysis/engine/engine.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "obs/timer.hpp"
#include "pipeline/spsc_ring.hpp"

namespace nfstrace {
namespace {

/// A pooled batch plus its fan-out refcount.  The reader only reuses a
/// slot after every worker's release-decrement has landed (acquire scan),
/// so slot reuse never races a worker still reading the batch.
struct BatchSlot {
  TraceBatch batch;
  std::atomic<std::uint32_t> refs{0};
};

}  // namespace

AnalysisEngine::AnalysisEngine() : AnalysisEngine(Config()) {}

AnalysisEngine::AnalysisEngine(const Config& config) : config_(config) {}

void AnalysisEngine::addPass(AnalysisPass* pass) {
  passes_.push_back(pass);
  passHist_.push_back(nullptr);
}

void AnalysisEngine::addPasses(const std::vector<AnalysisPass*>& passes) {
  for (AnalysisPass* p : passes) addPass(p);
}

void AnalysisEngine::attachMetrics(obs::Registry& registry) {
  batchesC_ = registry.counterHandle("engine.batches", 0);
  recordsC_ = registry.counterHandle("engine.records", 0);
  resyncC_ = registry.counterHandle("engine.resync_cuts", 0);
  mergeSkewC_ = registry.counterHandle("engine.merge_skew", 0);
  internHighC_ = registry.counterHandle("engine.intern_high_water", 0);
  internNamesG_ = registry.gaugeHandle("engine.intern_names");
  internHandlesG_ = registry.gaugeHandle("engine.intern_handles");
  for (std::size_t i = 0; i < passes_.size(); ++i) {
    std::string name = "engine.pass.";
    name += passes_[i]->name();
    name += ".observe_ns";
    passHist_[i] = &registry.histogram(name);
  }
}

void AnalysisEngine::attachFlight(obs::FlightRecorder& flight) {
  flight_ = &flight;
  readerFlog_ = flight.attachThread("engine.reader");
}

const AnalysisEngine::Stats& AnalysisEngine::run(TraceReader& reader) {
  stats_ = {};
  std::size_t workers = std::max<std::size_t>(config_.workers, 1);
  for (AnalysisPass* p : passes_) p->prepare(workers);
  if (workers <= 1) {
    runSerial(reader);
  } else {
    runParallel(reader);
  }
  {
    obs::FlightSpan span(readerFlog_, obs::Stage::Finalize,
                         static_cast<std::uint32_t>(passes_.size()));
    finalizeAll(workers);
  }
  return stats_;
}

const AnalysisEngine::Stats& AnalysisEngine::runFile(const std::string& path,
                                                     bool recover) {
  // The extent path needs a complete, CRC-valid chained index (its
  // extent hops trust the footer) and strict-mode semantics; anything
  // it cannot serve falls back to the classic reader scan, which
  // produces the byte-identical report.
  if (!recover &&
      (config_.decodeThreads > 1 || !config_.predicate.trivial()) &&
      detectTraceFormat(path) == TraceWriter::Format::V2) {
    if (auto chained = tracev2::loadChainedIndex(path)) {
      stats_ = {};
      std::size_t shards = std::max<std::size_t>(config_.decodeThreads, 1);
      for (AnalysisPass* p : passes_) p->prepare(shards);
      // Scan-lifetime interners, owned here so pass finalize (which
      // resolves interned ids) runs against live tables.
      StringInterner names, handles;
      runExtentParallel(path, *chained, names, handles);
      {
        obs::FlightSpan span(readerFlog_, obs::Stage::Finalize,
                             static_cast<std::uint32_t>(passes_.size()));
        finalizeAll(std::max(shards, config_.workers));
      }
      return stats_;
    }
  }
  TraceReader reader(path, recover);
  return run(reader);
}

std::size_t AnalysisEngine::applyPredicate(TraceBatch& batch) const {
  const ScanPredicate& pred = config_.predicate;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < batch.n; ++i) {
    if (!pred.matches(batch.records[i])) continue;
    if (kept != i) {
      // swap, not copy: both slots stay capacity-reusable for refills.
      std::swap(batch.records[kept], batch.records[i]);
      batch.fhId[kept] = batch.fhId[i];
      batch.fh2Id[kept] = batch.fh2Id[i];
      batch.resFhId[kept] = batch.resFhId[i];
      batch.nameId[kept] = batch.nameId[i];
      batch.name2Id[kept] = batch.name2Id[i];
    }
    ++kept;
  }
  std::size_t dropped = batch.n - kept;
  batch.n = kept;
  return dropped;
}

void AnalysisEngine::runSerial(TraceReader& reader) {
  TraceBatch batch;
  const bool havePred = !config_.predicate.trivial();
  std::vector<std::uint64_t> shardRecords(1, 0);
  for (;;) {
    std::uint64_t decodeStart = readerFlog_ ? readerFlog_->nowNs() : 0;
    if (!reader.nextBatch(batch, config_.batchRecords)) break;
    if (readerFlog_) {
      readerFlog_->complete(obs::Stage::ReaderDecode, decodeStart,
                            static_cast<std::uint32_t>(batch.n));
    }
    if (batch.endedAtResync) {
      ++stats_.resyncCuts;
      resyncC_.inc();
      if (readerFlog_) {
        readerFlog_->instant(obs::Stage::RecoveryCut, stats_.batches);
      }
    }
    if (havePred) stats_.recordsFiltered += applyPredicate(batch);
    if (batch.n == 0) continue;  // fully filtered
    ++stats_.batches;
    stats_.records += batch.n;
    shardRecords[0] += batch.n;
    batchesC_.inc();
    recordsC_.inc(batch.n);
    for (std::size_t i = 0; i < passes_.size(); ++i) {
      obs::TimerSpan span(passHist_[i]
                              ? obs::HistogramHandle(*passHist_[i], 0)
                              : obs::HistogramHandle());
      obs::FlightSpan fspan(readerFlog_, obs::Stage::PassObserve,
                            static_cast<std::uint32_t>(i));
      passes_[i]->observe(batch, 0);
    }
  }
  noteScanDone(shardRecords, reader.nameInterner().size(),
               reader.handleInterner().size());
}

void AnalysisEngine::runParallel(TraceReader& reader) {
  const std::size_t workers = config_.workers;
  const std::size_t poolSize = workers * config_.queueBatches + 1;
  const bool havePred = !config_.predicate.trivial();

  std::vector<std::unique_ptr<BatchSlot>> pool;
  pool.reserve(poolSize);
  for (std::size_t i = 0; i < poolSize; ++i) {
    pool.push_back(std::make_unique<BatchSlot>());
  }
  std::vector<std::unique_ptr<SpscRing<BatchSlot*>>> rings;
  rings.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    rings.push_back(
        std::make_unique<SpscRing<BatchSlot*>>(config_.queueBatches));
  }

  std::vector<std::uint64_t> shardRecords(workers, 0);
  std::vector<obs::ThreadLog*> workerFlogs(workers, nullptr);
  if (flight_) {
    for (std::size_t w = 0; w < workers; ++w) {
      workerFlogs[w] =
          flight_->attachThread("engine.worker" + std::to_string(w));
    }
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([this, w, workers, &rings, &workerFlogs] {
      SpscRing<BatchSlot*>& ring = *rings[w];
      obs::ThreadLog* flog = workerFlogs[w];
      for (;;) {
        BatchSlot* slot = nullptr;
        std::uint64_t starveStart = 0;  // batch-ring-empty episode
        while (!ring.tryPop(slot)) {
          if (flog && starveStart == 0) starveStart = flog->nowNs();
          std::this_thread::yield();
        }
        if (starveStart != 0) {
          flog->complete(obs::Stage::WorkerBatchWait, starveStart);
        }
        if (!slot) break;  // EOF sentinel
        const TraceBatch& batch = slot->batch;
        for (std::size_t i = 0; i < passes_.size(); ++i) {
          AnalysisPass* pass = passes_[i];
          bool mine = pass->mergeable()
                          ? batch.seq % workers == w
                          : i % workers == w;
          if (!mine) continue;
          obs::TimerSpan span(passHist_[i]
                                  ? obs::HistogramHandle(*passHist_[i], w)
                                  : obs::HistogramHandle());
          obs::FlightSpan fspan(flog, obs::Stage::PassObserve,
                                static_cast<std::uint32_t>(i));
          pass->observe(batch, pass->mergeable() ? w : 0);
        }
        slot->refs.fetch_sub(1, std::memory_order_release);
      }
    });
  }

  // Reader loop: decode into a free pooled slot, then hand the same
  // pointer to every worker (refcount = workers).
  std::size_t scan = 0;
  for (;;) {
    BatchSlot* slot = nullptr;
    std::uint64_t poolWaitStart = 0;  // every-slot-referenced episode
    for (;;) {
      for (std::size_t tries = 0; tries < poolSize; ++tries) {
        BatchSlot* cand = pool[scan].get();
        scan = (scan + 1) % poolSize;
        if (cand->refs.load(std::memory_order_acquire) == 0) {
          slot = cand;
          break;
        }
      }
      if (slot) break;
      if (readerFlog_ && poolWaitStart == 0) {
        poolWaitStart = readerFlog_->nowNs();
      }
      std::this_thread::yield();
    }
    if (poolWaitStart != 0) {
      readerFlog_->complete(obs::Stage::BatchPoolWait, poolWaitStart);
    }
    std::uint64_t decodeStart = readerFlog_ ? readerFlog_->nowNs() : 0;
    if (!reader.nextBatch(slot->batch, config_.batchRecords)) break;
    if (readerFlog_) {
      readerFlog_->complete(obs::Stage::ReaderDecode, decodeStart,
                            static_cast<std::uint32_t>(slot->batch.n));
    }
    if (slot->batch.endedAtResync) {
      ++stats_.resyncCuts;
      resyncC_.inc();
      if (readerFlog_) {
        readerFlog_->instant(obs::Stage::RecoveryCut, stats_.batches);
      }
    }
    if (havePred) stats_.recordsFiltered += applyPredicate(slot->batch);
    if (slot->batch.n == 0) continue;  // fully filtered; slot stays free
    ++stats_.batches;
    stats_.records += slot->batch.n;
    shardRecords[slot->batch.seq % workers] += slot->batch.n;
    batchesC_.inc();
    recordsC_.inc(slot->batch.n);
    slot->refs.store(static_cast<std::uint32_t>(workers),
                     std::memory_order_relaxed);
    for (std::size_t w = 0; w < workers; ++w) {
      BatchSlot* p = slot;
      while (!rings[w]->tryPush(p)) {
        std::this_thread::yield();
        p = slot;  // tryPush moves from its argument
      }
    }
  }
  for (std::size_t w = 0; w < workers; ++w) {
    BatchSlot* sentinel = nullptr;
    while (!rings[w]->tryPush(sentinel)) {
      std::this_thread::yield();
      sentinel = nullptr;
    }
  }
  for (auto& t : threads) t.join();
  noteScanDone(shardRecords, reader.nameInterner().size(),
               reader.handleInterner().size());
}

void AnalysisEngine::noteScanDone(
    const std::vector<std::uint64_t>& shardRecords, std::size_t internedNames,
    std::size_t internedHandles) {
  stats_.internedNames = internedNames;
  stats_.internedHandles = internedHandles;
  internNamesG_.set(static_cast<double>(stats_.internedNames));
  internHandlesG_.set(static_cast<double>(stats_.internedHandles));
  if (stats_.internedNames + stats_.internedHandles >
      config_.internHighWater) {
    ++stats_.internHighWaterAlerts;
    internHighC_.inc();
  }
  if (shardRecords.size() > 1) {
    auto [mn, mx] = std::minmax_element(shardRecords.begin(),
                                        shardRecords.end());
    double low = static_cast<double>(std::max<std::uint64_t>(*mn, 1));
    if (static_cast<double>(*mx) > config_.mergeSkewFactor * low) {
      ++stats_.mergeSkewAlerts;
      mergeSkewC_.inc();
    }
  }
}

void AnalysisEngine::finalizeAll(std::size_t parallelism) {
  std::size_t workers = std::max<std::size_t>(parallelism, 1);
  if (workers <= 1 || passes_.size() <= 1) {
    for (AnalysisPass* p : passes_) p->finalize();
    return;
  }
  // Passes are independent after the scan; finalize them concurrently
  // (work-stealing over an atomic index).
  std::atomic<std::size_t> next{0};
  auto drain = [this, &next] {
    for (;;) {
      std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= passes_.size()) break;
      passes_[i]->finalize();
    }
  };
  std::size_t n = std::min(workers, passes_.size());
  std::vector<std::thread> threads;
  threads.reserve(n - 1);
  for (std::size_t i = 1; i < n; ++i) threads.emplace_back(drain);
  drain();
  for (auto& t : threads) t.join();
}

}  // namespace nfstrace
