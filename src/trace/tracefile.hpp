// Trace file I/O.
//
// Text format: one record per line of space-separated key=value pairs,
// nfsdump-style, human-greppable:
//
//   t=0.013202 r=0.013514 c=10.1.0.5 s=10.0.0.1 xid=1a2b v=3 p=udp op=read
//   fh=0001...:  off=0 cnt=8192 st=OK ret=8192 eof=1 sz=123456 mt=999.0
//
// Unknown keys are skipped on read, so the format can grow.  A compact
// binary format (magic "NFST") is also provided for large traces.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "trace/batch.hpp"
#include "trace/record.hpp"
#include "trace/v2.hpp"
#include "util/interner.hpp"
#include "util/time.hpp"

namespace nfstrace {

class IoFaultInjector;  // src/fault — optional write-fault hook

/// Append one record as a text line (no trailing newline) to `out`.
/// Allocation-light: everything is rendered with snprintf into the
/// destination buffer, so a writer can format thousands of records into
/// one flush buffer without a heap allocation per record.
void appendRecord(std::string& out, const TraceRecord& rec);
/// Render one record as a text line (no trailing newline).
std::string formatRecord(const TraceRecord& rec);
/// Parse a text line; nullopt for blank/comment lines; throws
/// std::runtime_error on malformed records.
std::optional<TraceRecord> parseRecord(const std::string& line);
/// Allocation-reusing parse: fills `rec` in place (string fields keep
/// their capacity across calls).  Returns false for blank/comment lines;
/// throws std::runtime_error on malformed records.
bool parseRecordInto(std::string_view line, TraceRecord& rec);

/// Buffered trace writer: records are formatted into an in-memory batch
/// buffer and flushed to the file in large writes, so the per-record cost
/// is formatting only (no per-record heap allocation or fwrite call).
class TraceWriter {
 public:
  enum class Format { Text, Binary, V2 };

  /// Durability knobs.  Defaults match the historical writer except for
  /// checkpoints, which are cheap (a comment line / sentinel record every
  /// few thousand records) and make crash/corruption recovery exact.
  struct Options {
    Format format = Format::Text;
    /// Append a checkpoint footer every N records (0 disables).  The
    /// footer records the cumulative record count, so a recovering
    /// reader can compute exactly how many records a corrupt region ate.
    /// Ignored for V2, where every extent header carries the cumulative
    /// count — extents *are* the checkpoints.
    std::uint64_t checkpointEveryRecords = 4096;
    /// V2 only: seal an extent after this many records...  (8K rather
    /// than the 4K checkpoint interval: the reader re-interns each
    /// extent's dictionaries, and doubling the extent halves that
    /// amortized per-record cost while staying well under the payload
    /// byte cap.)
    std::uint64_t v2ExtentRecords = 8192;
    /// ...or when its encoded payload reaches this size, whichever first.
    std::size_t v2ExtentMaxBytes = 1 << 20;
    /// Transient write errors (EIO, ENOSPC) are retried with exponential
    /// backoff this many times before the writer gives up and throws.
    int maxRetries = 8;
    MicroTime backoffInitialUs = 50;
    MicroTime backoffMaxUs = 10'000;
    /// Optional deterministic fault hook consulted before each physical
    /// write attempt (not owned; may be nullptr).
    IoFaultInjector* faults = nullptr;
  };

  /// Write-path robustness stats.
  struct IoStats {
    std::uint64_t retries = 0;      // failed attempts that were retried
    std::uint64_t shortWrites = 0;  // attempts that made partial progress
    std::uint64_t checkpoints = 0;  // checkpoint footers appended
  };

  TraceWriter(const std::string& path, Format format = Format::Text);
  TraceWriter(const std::string& path, const Options& opts);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write(const TraceRecord& rec);
  /// Flush the batch buffer and the underlying stream.
  void flush();
  /// Seal the file completely (V2: tail extent + footer index + trailer;
  /// v1: final checkpoint), flush, optionally fsync, and close.  Unlike
  /// the destructor — which does the same work but must swallow errors —
  /// finalize() throws on failure, so a caller that needs to *know* the
  /// segment is durable (the rotation path in src/daemon) can react.
  /// After finalize() the writer accepts no more records; the destructor
  /// becomes a no-op.
  void finalize(bool syncToDisk = false);
  std::uint64_t recordsWritten() const { return count_; }
  /// Bytes on the file plus bytes still in the batch buffer — the size
  /// the file will have after the next flush (size-based rotation).
  std::uint64_t bytesWritten() const { return fileBytes_ + buf_.size(); }
  const IoStats& ioStats() const { return ioStats_; }

  /// Bind self-monitoring instruments: records/bytes written counters,
  /// a flush-latency histogram (trace.flush_ns), and write-path
  /// robustness counters (trace.write_retries / short_writes /
  /// checkpoints).
  void attachMetrics(obs::Registry& registry);

  /// Bind a flight-recorder track ("trace.writer"): flush spans with
  /// byte counts, retry instants, checkpoint/extent-seal instants.  Call
  /// before the first write; events are emitted by whichever single
  /// thread drives this writer.
  void attachFlight(obs::FlightRecorder& flight);

 private:
  void flushBuffer();
  /// Write [p, p+n) fully, retrying transient failures with backoff.
  void writeAll(const char* p, std::size_t n);
  void appendCheckpoint();
  /// V2: encode the buffered records as one extent (header + CRC'd
  /// payload), record it for the footer index, and flush.
  void sealV2Extent();

  std::FILE* f_ = nullptr;
  Format format_;
  Options opts_;
  std::string buf_;
  std::uint64_t count_ = 0;
  std::uint64_t lastCkptCount_ = 0;
  /// Bytes physically written to the file so far; extent offsets for the
  /// v2 footer index are fileBytes_ + buf_.size() at seal time.
  std::uint64_t fileBytes_ = 0;
  std::unique_ptr<tracev2::ExtentEncoder> v2enc_;
  std::vector<tracev2::ExtentInfo> v2extents_;
  /// Records already pushed to trace.records_written; the counter is
  /// published per buffer flush, not per record, to keep a single atomic
  /// add off the per-record path.
  std::uint64_t publishedCount_ = 0;
  IoStats ioStats_;
  obs::CounterHandle recordsC_;
  obs::CounterHandle bytesC_;
  obs::CounterHandle retriesC_;
  obs::CounterHandle shortWritesC_;
  obs::CounterHandle ckptC_;
  obs::HistogramHandle flushNs_;
  obs::ThreadLog* flog_ = nullptr;
};

class TraceReader {
 public:
  /// Recovery bookkeeping (populated in recover mode; checkpoints are
  /// counted in both modes).
  struct RecoverStats {
    std::uint64_t recovered = 0;          // records successfully returned
    std::uint64_t skipped = 0;            // records lost to corruption
    std::uint64_t resyncs = 0;            // distinct corrupt regions crossed
    std::uint64_t checkpoints = 0;        // checkpoint footers seen
    std::uint64_t checkpointRecords = 0;  // count in the last footer seen
  };

  /// `recover == false` (the default) preserves historical behaviour:
  /// corruption throws.  `recover == true` skips corrupt bytes forward to
  /// the next parseable boundary (text: next well-formed line; binary:
  /// next checkpoint sentinel) and keeps going, tallying RecoverStats.
  explicit TraceReader(const std::string& path, bool recover = false);
  ~TraceReader();
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  /// Compatibility shim over nextInto(): one freshly constructed record.
  std::optional<TraceRecord> next();
  /// Decode the next record into `rec`, reusing its string capacity.
  /// Returns false at EOF.
  bool nextInto(TraceRecord& rec);
  /// Decode up to `maxRecords` records into `batch` (slots reused fill to
  /// fill, paths/handles interned into 32-bit ids — see trace/batch.hpp).
  /// Returns false when the batch came back empty (EOF).  In recover
  /// mode a batch never straddles a corrupt region: the reader resyncs
  /// and the next good record opens the following batch.
  bool nextBatch(TraceBatch& batch,
                 std::size_t maxRecords = TraceBatch::kDefaultCapacity);
  const RecoverStats& recoverStats() const { return rstats_; }

  /// Interners shared by every batch this reader fills.
  const StringInterner& nameInterner() const { return names_; }
  const StringInterner& handleInterner() const { return handles_; }

  /// Convenience: read a whole trace file into memory.  Reserves from the
  /// file size and decodes into the vector's own slots, so no record is
  /// parsed into a temporary and copied.
  static std::vector<TraceRecord> readAll(const std::string& path);
  /// Read a possibly-corrupt trace end-to-end, skipping bad regions.
  static std::vector<TraceRecord> recoverAll(const std::string& path,
                                             RecoverStats* stats = nullptr);

 private:
  /// Refill chunk_ from the file; returns false at EOF.
  bool refill();
  bool nextTextInto(TraceRecord& rec);
  bool nextBinaryInto(TraceRecord& rec);
  bool nextV2Into(TraceRecord& rec);
  bool nextBatchV2(TraceBatch& batch, std::size_t maxRecords);
  /// V2: read + validate the next extent header and CRC'd payload into
  /// the decoder.  In recover mode damage is skipped with exact
  /// accounting (the header's cumulative count is a checkpoint); returns
  /// false at EOF / footer index.
  bool loadNextV2Extent();
  /// V2: the stream hit a footer index at `footerStart`.  If another
  /// sealed segment follows (concatenated daemon output), position the
  /// stream at its first extent, adopt its schema, and return true;
  /// otherwise leave the position unspecified and return false (the
  /// caller seeks back to the footer).
  bool chainNextV2Segment(long footerStart);
  /// V2 recover mode: byte-scan forward for the next valid extent
  /// header; on success `hdr` is filled and the stream sits at its
  /// payload.  Returns false at EOF.
  bool scanToV2Extent(tracev2::ExtentHeader& hdr);
  /// Handle a "#ckpt n=<count>" comment line (text format).
  void noteTextCheckpoint(std::string_view line);
  void reconcileCheckpoint(std::uint64_t count);
  /// Binary recover mode: byte-scan forward for the next checkpoint
  /// sentinel magic; returns false at EOF.
  bool scanToBinaryCheckpoint();

  std::FILE* f_ = nullptr;
  bool binary_ = false;
  bool v2_ = false;
  /// Schema version from the current segment's schema block (4 unless
  /// the segment is legacy schema 2/3; also 4 when recover mode
  /// tolerates a damaged block).  Re-read per segment on concatenated
  /// input.
  int v2Schema_ = 4;
  std::unique_ptr<tracev2::ExtentDecoder> v2dec_;
  bool recover_ = false;
  bool inBadRun_ = false;  // inside a run of consecutive corrupt lines
  RecoverStats rstats_;
  // Text path: chunked read buffer (replaces the old fgetc-per-byte loop).
  std::string chunk_;
  std::size_t pos_ = 0;
  std::string carry_;  // partial line spanning chunk boundaries
  // Binary path: reusable record-body buffer.
  std::vector<std::uint8_t> binBuf_;
  // Batch path: interners, sequence counter, and the one-record stash
  // used to cut batches at recovery resync points.
  StringInterner names_;
  StringInterner handles_;
  std::uint64_t batchSeq_ = 0;
  TraceRecord pending_;
  bool pendingValid_ = false;
};

/// Identify a trace file's format by its magic (files without a known
/// magic are the text format).  Throws if the file cannot be opened.
TraceWriter::Format detectTraceFormat(const std::string& path);

/// "text" / "binary" / "v2" — for CLI flags and status output.
const char* traceFormatName(TraceWriter::Format format);

/// Inverse of traceFormatName; nullopt for unknown names.
std::optional<TraceWriter::Format> traceFormatFromName(std::string_view name);

}  // namespace nfstrace
