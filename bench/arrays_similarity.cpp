// §3.2: "We gathered long-term traces for two arrays and short-term traces
// for seven others.  We computed summary statistics and general usage
// patterns for all nine of the traced arrays and found them to be similar.
// We chose to use the array named home02 for our in-depth analysis."
//
// Each CAMPUS disk array hosts a different (random) slice of the user
// population.  This bench simulates several arrays with different seeds —
// different users, mailbox sizes, and event timings — and shows the
// summary statistics line up, which is what justifies the paper's use of
// home02 as representative.
#include "analysis/summary.hpp"
#include "bench_common.hpp"

using namespace nfstrace;
using namespace nfstrace::bench;

int main() {
  banner("Section 3.2 -- per-array similarity across CAMPUS disk arrays");

  TextTable t({"Array", "ops/day (k)", "read MB", "written MB", "R/W bytes",
               "R/W ops", "data-op %"});
  const char* names[] = {"home02", "home03", "home05", "home09"};
  for (int array = 0; array < 4; ++array) {
    TraceSummary s;
    auto cb = [&](const TraceRecord& r) {
      ++s.totalOps;
      if (r.op == NfsOp::Read) {
        ++s.readOps;
        ++s.dataOps;
        s.bytesRead += r.hasReply ? r.retCount : r.count;
      } else if (r.op == NfsOp::Write) {
        ++s.writeOps;
        ++s.dataOps;
        s.bytesWritten += r.hasReply && r.retCount ? r.retCount : r.count;
      } else {
        ++s.metadataOps;
      }
    };
    auto setup = makeCampus(24, cb, 9000 + static_cast<std::uint64_t>(array) * 131);
    MicroTime start = days(1);
    setup.workload->setup(start);
    setup.workload->run(start, start + days(1));
    setup.env->finishCapture();

    t.addRow({names[array],
              TextTable::fixed(static_cast<double>(s.totalOps) / 1e3, 1),
              TextTable::fixed(static_cast<double>(s.bytesRead) / 1e6, 0),
              TextTable::fixed(static_cast<double>(s.bytesWritten) / 1e6, 0),
              TextTable::fixed(s.readWriteByteRatio(), 2),
              TextTable::fixed(s.readWriteOpRatio(), 2),
              TextTable::fixed(100.0 * s.dataOpFraction(), 1)});
  }
  std::fputs(t.render().c_str(), stdout);

  std::printf(
      "\nEach array serves a different random user slice, yet the shape\n"
      "statistics agree closely — the property that let the paper analyze\n"
      "one array (home02) and speak for the system.\n");
  return 0;
}
