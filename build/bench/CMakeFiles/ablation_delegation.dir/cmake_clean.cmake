file(REMOVE_RECURSE
  "CMakeFiles/ablation_delegation.dir/ablation_delegation.cpp.o"
  "CMakeFiles/ablation_delegation.dir/ablation_delegation.cpp.o.d"
  "ablation_delegation"
  "ablation_delegation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delegation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
