file(REMOVE_RECURSE
  "libnfstrace_nfs.a"
)
