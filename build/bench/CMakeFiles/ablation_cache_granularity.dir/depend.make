# Empty dependencies file for ablation_cache_granularity.
# This may be replaced when dependencies are built.
