#include <gtest/gtest.h>

#include "workload/sim.hpp"

namespace nfstrace {
namespace {

// End-to-end: client ops -> frames -> sniffer -> trace records.
class SnifferE2E : public ::testing::TestWithParam<std::pair<int, bool>> {
 protected:
  SimEnvironment::Config config() {
    SimEnvironment::Config c;
    c.clientHosts = 1;
    c.nfsVers = static_cast<std::uint8_t>(GetParam().first);
    c.useTcp = GetParam().second;
    c.mtu = GetParam().second ? kJumboMtu : kStandardMtu;
    return c;
  }
};

TEST_P(SnifferE2E, ReadPipeline) {
  SimEnvironment env(config());
  env.fs().mkfile("/data/file.bin", 50 * 1024, 7, 7, 0);
  MicroTime now = seconds(5);
  NfsClient& c = env.client(0);
  auto fh = *c.lookupPath(now, "/data/file.bin");
  c.readFile(now, fh);
  env.finishCapture();

  auto& recs = env.records();
  ASSERT_FALSE(recs.empty());

  std::uint64_t lookups = 0, reads = 0, bytesRead = 0;
  for (const auto& r : recs) {
    EXPECT_TRUE(r.hasReply);
    EXPECT_EQ(r.status, NfsStat::Ok);
    EXPECT_EQ(r.vers, GetParam().first);
    EXPECT_EQ(r.overTcp, GetParam().second);
    if (r.op == NfsOp::Lookup) {
      ++lookups;
      EXPECT_TRUE(r.hasResFh);
      EXPECT_FALSE(r.name.empty());
    }
    if (r.op == NfsOp::Read) {
      ++reads;
      bytesRead += r.retCount;
      EXPECT_TRUE(r.hasAttrs);
      EXPECT_EQ(r.fileSize, 50 * 1024u);
    }
  }
  EXPECT_EQ(lookups, 2u);  // data, file.bin
  EXPECT_EQ(reads, (50 * 1024 + 8191) / 8192);
  EXPECT_EQ(bytesRead, 50 * 1024u);
  EXPECT_EQ(env.sniffer().stats().orphanReplies, 0u);
}

TEST_P(SnifferE2E, WriteAndUidCapture) {
  SimEnvironment env(config());
  env.fs().mkfile("/data/out.bin", 0, 7, 7, 0);
  MicroTime now = seconds(5);
  NfsClient& c = env.client(0);
  c.setIdentity(4242, 99);
  auto fh = *c.lookupPath(now, "/data/out.bin");
  c.writeRange(now, fh, 0, 20000);
  env.finishCapture();

  bool sawWrite = false;
  for (const auto& r : env.records()) {
    EXPECT_EQ(r.uid, 4242u);  // decoded from AUTH_UNIX
    EXPECT_EQ(r.gid, 99u);
    if (r.op == NfsOp::Write) {
      sawWrite = true;
      EXPECT_EQ(r.retCount, r.count);
      // v3 writes carry wcc pre-op attributes; v2 has no equivalent.
      EXPECT_EQ(r.hasPre, GetParam().first == 3);
    }
  }
  EXPECT_TRUE(sawWrite);
}

INSTANTIATE_TEST_SUITE_P(
    Versions, SnifferE2E,
    ::testing::Values(std::pair{3, true},    // CAMPUS: v3/TCP jumbo
                      std::pair{3, false},   // v3/UDP with fragmentation
                      std::pair{2, false}),  // EECS-style v2/UDP
    [](const auto& info) {
      return "v" + std::to_string(info.param.first) +
             (info.param.second ? "_tcp" : "_udp");
    });

TEST(SnifferE2E, V2WriteHasNoPre) {
  SimEnvironment::Config cfg;
  cfg.clientHosts = 1;
  cfg.nfsVers = 2;
  cfg.useTcp = false;
  cfg.mtu = kStandardMtu;
  SimEnvironment env(cfg);
  env.fs().mkfile("/f", 0, 1, 1, 0);
  MicroTime now = seconds(1);
  auto fh = *env.client(0).lookupPath(now, "/f");
  env.client(0).writeRange(now, fh, 0, 8192);
  env.finishCapture();
  for (const auto& r : env.records()) {
    if (r.op == NfsOp::Write) {
      EXPECT_FALSE(r.hasPre);
    }
  }
}

TEST(Sniffer, MirrorPortLossProducesOrphans) {
  SimEnvironment::Config cfg;
  cfg.clientHosts = 1;
  cfg.useMirror = true;
  // Starve the mirror so bursts overflow it.
  cfg.mirrorConfig.bandwidthBitsPerSec = 20e6;
  cfg.mirrorConfig.bufferBytes = 16 * 1024;
  SimEnvironment env(cfg);
  env.fs().mkfile("/big", 4 << 20, 1, 1, 0);
  MicroTime now = seconds(1);
  NfsClient& c = env.client(0);
  auto fh = *c.lookupPath(now, "/big");
  c.readFile(now, fh);
  env.finishCapture();

  ASSERT_NE(env.mirror(), nullptr);
  EXPECT_GT(env.mirror()->dropped(), 0u);
  const auto& st = env.sniffer().stats();
  // Losing calls produces orphan replies; losing replies produces
  // reply-less records.  Under heavy loss we must see at least one.
  EXPECT_GT(st.orphanReplies + st.expiredCalls + st.flushedCalls, 0u);
  // And the extracted trace must be smaller than the lossless op count.
  EXPECT_LT(env.records().size(), env.server().totalCalls());
}

TEST(Sniffer, LosslessTapSeesEverything) {
  SimEnvironment::Config cfg;
  cfg.clientHosts = 1;
  SimEnvironment env(cfg);
  env.fs().mkfile("/big", 1 << 20, 1, 1, 0);
  MicroTime now = seconds(1);
  NfsClient& c = env.client(0);
  auto fh = *c.lookupPath(now, "/big");
  c.readFile(now, fh);
  env.finishCapture();
  EXPECT_EQ(env.records().size(), env.server().totalCalls());
  EXPECT_EQ(env.sniffer().stats().orphanReplies, 0u);
  EXPECT_EQ(env.sniffer().stats().expiredCalls, 0u);
}

TEST(Sniffer, MultipleClientsDistinguishedByIp) {
  SimEnvironment::Config cfg;
  cfg.clientHosts = 2;
  SimEnvironment env(cfg);
  env.fs().mkfile("/f", 8192, 1, 1, 0);
  MicroTime now = seconds(1);
  auto fh0 = *env.client(0).lookupPath(now, "/f");
  env.client(0).readFile(now, fh0);
  auto fh1 = *env.client(1).lookupPath(now, "/f");
  env.client(1).readFile(now, fh1);
  env.finishCapture();

  std::set<IpAddr> clients;
  for (const auto& r : env.records()) clients.insert(r.client);
  EXPECT_EQ(clients.size(), 2u);
}

TEST(Sniffer, IgnoresNonNfsTraffic) {
  Sniffer sniffer({}, [](const TraceRecord&) { FAIL(); });
  // A UDP frame on an unrelated port.
  auto frame = buildUdpFrame(makeIp(1, 1, 1, 1), 53, makeIp(2, 2, 2, 2), 53,
                             std::vector<std::uint8_t>(64, 0));
  CapturedPacket pkt;
  pkt.ts = 0;
  pkt.data = frame;
  sniffer.onFrame(pkt);
  EXPECT_EQ(sniffer.stats().rpcCalls, 0u);
}

TEST(Sniffer, FlushEmitsPendingCalls) {
  std::vector<TraceRecord> out;
  Sniffer sniffer({}, [&](const TraceRecord& r) { out.push_back(r); });

  // Encode a lone NFS call with no reply.
  XdrEncoder enc;
  AuthUnix cred;
  cred.uid = 1;
  cred.gid = 1;
  encodeRpcCall(enc, 0x1234, kNfsProgram, 3,
                static_cast<std::uint32_t>(Proc3::Getattr), cred);
  encodeCall3(enc, GetattrArgs{FileHandle::make(1, 5, 1)});
  auto frame = buildUdpFrame(makeIp(1, 1, 1, 1), 900, makeIp(2, 2, 2, 2),
                             2049, enc.bytes());
  CapturedPacket pkt;
  pkt.ts = 77;
  pkt.data = frame;
  sniffer.onFrame(pkt);
  EXPECT_TRUE(out.empty());
  sniffer.flush();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].hasReply);
  EXPECT_EQ(out[0].op, NfsOp::Getattr);
  EXPECT_EQ(out[0].xid, 0x1234u);
}

TEST(Sniffer, PcapRoundTrip) {
  // Record frames to a pcap file, then extract the trace offline — the
  // capture_to_trace tool path.
  std::string path = "/tmp/sniffer_pcap_test.pcap";
  {
    SimEnvironment::Config cfg;
    cfg.clientHosts = 1;
    SimEnvironment env(cfg);

    // Tee frames into a pcap file via a small adapter.
    struct PcapSink : FrameSink {
      PcapWriter writer{"/tmp/sniffer_pcap_test.pcap"};
      void onFrame(const CapturedPacket& pkt) override { writer.write(pkt); }
    };
    // Rebuild environment manually: use fs/server/transport directly.
    InMemoryFs fs{InMemoryFs::Config{}};
    fs.mkfile("/f", 30000, 1, 1, 0);
    NfsServer server(fs);
    PcapSink sink;
    NfsTransport::Config tc;
    NfsTransport transport(tc, server, &sink, 1);
    NfsClient::Config cc;
    NfsClient client(cc, transport, 2);
    client.setRootHandle(fs.rootHandle());
    MicroTime now = seconds(1);
    auto fh = *client.lookupPath(now, "/f");
    client.readFile(now, fh);
  }
  Sniffer::Stats stats;
  auto records = sniffPcap(path, &stats);
  EXPECT_GT(records.size(), 4u);
  EXPECT_EQ(stats.orphanReplies, 0u);
  std::uint64_t reads = 0;
  for (const auto& r : records) {
    if (r.op == NfsOp::Read) ++reads;
  }
  EXPECT_EQ(reads, 4u);  // ceil(30000/8192)
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nfstrace
