// Simulation time: microseconds since an arbitrary epoch.
//
// The traces in the paper cover the week of Sunday 2001-10-21 through
// Saturday 2001-10-27.  We anchor the simulation epoch at local midnight at
// the start of that Sunday so that day-of-week / hour-of-day arithmetic is
// trivial and matches the paper's figures.
#pragma once

#include <cstdint>
#include <string>

namespace nfstrace {

/// Microseconds since the simulation epoch (midnight, Sunday 2001-10-21).
using MicroTime = std::int64_t;

inline constexpr MicroTime kMicrosPerSecond = 1'000'000;
inline constexpr MicroTime kMicrosPerMinute = 60 * kMicrosPerSecond;
inline constexpr MicroTime kMicrosPerHour = 60 * kMicrosPerMinute;
inline constexpr MicroTime kMicrosPerDay = 24 * kMicrosPerHour;
inline constexpr MicroTime kMicrosPerWeek = 7 * kMicrosPerDay;

constexpr MicroTime seconds(double s) {
  return static_cast<MicroTime>(s * static_cast<double>(kMicrosPerSecond));
}
constexpr MicroTime minutes(double m) { return seconds(m * 60.0); }
constexpr MicroTime hours(double h) { return minutes(h * 60.0); }
constexpr MicroTime days(double d) { return hours(d * 24.0); }

constexpr double toSeconds(MicroTime t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosPerSecond);
}

/// Day of week for a timestamp: 0 = Sunday ... 6 = Saturday.
constexpr int dayOfWeek(MicroTime t) {
  auto d = (t / kMicrosPerDay) % 7;
  if (d < 0) d += 7;
  return static_cast<int>(d);
}

/// Hour of day, 0..23.
constexpr int hourOfDay(MicroTime t) {
  auto h = (t / kMicrosPerHour) % 24;
  if (h < 0) h += 24;
  return static_cast<int>(h);
}

/// Hour index within the week, 0..167 (0 = Sunday midnight-1am).
constexpr int hourOfWeek(MicroTime t) {
  auto h = (t / kMicrosPerHour) % 168;
  if (h < 0) h += 168;
  return static_cast<int>(h);
}

/// Peak hours per the paper: 9am-6pm, Monday through Friday.
constexpr bool isPeakHour(MicroTime t) {
  int dow = dayOfWeek(t);
  int hod = hourOfDay(t);
  return dow >= 1 && dow <= 5 && hod >= 9 && hod < 18;
}

/// "Tue 14:05:09.123456" style rendering for logs and trace files.
std::string formatTime(MicroTime t);

/// Short weekday name for a day index 0..6.
const char* weekdayName(int dow);

}  // namespace nfstrace
