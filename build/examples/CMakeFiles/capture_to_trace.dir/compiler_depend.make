# Empty compiler generated dependencies file for capture_to_trace.
# This may be replaced when dependencies are built.
