
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anon/anon.cpp" "src/anon/CMakeFiles/nfstrace_anon.dir/anon.cpp.o" "gcc" "src/anon/CMakeFiles/nfstrace_anon.dir/anon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/nfstrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nfstrace_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nfs/CMakeFiles/nfstrace_nfs.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/nfstrace_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nfstrace_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
