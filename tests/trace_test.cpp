#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "trace/tracefile.hpp"

namespace nfstrace {
namespace {

TraceRecord sampleRecord(NfsOp op) {
  TraceRecord r;
  r.ts = 86400 * kMicrosPerSecond + 123456;
  r.client = makeIp(10, 1, 0, 5);
  r.server = makeIp(10, 0, 0, 1);
  r.xid = 0xdeadbeef;
  r.vers = 3;
  r.overTcp = true;
  r.op = op;
  r.uid = 2042;
  r.gid = 200;
  r.fh = FileHandle::make(2, 1234, 9);
  r.hasReply = true;
  r.replyTs = r.ts + 450;
  r.status = NfsStat::Ok;
  if (op == NfsOp::Read || op == NfsOp::Write) {
    r.offset = 32768;
    r.count = 8192;
    r.retCount = 8192;
    r.eof = op == NfsOp::Read;
  }
  if (op == NfsOp::Lookup || op == NfsOp::Create || op == NfsOp::Remove) {
    r.name = ".inbox";
  }
  if (op == NfsOp::Rename) {
    r.name = "from name";  // space exercises field encoding
    r.name2 = "to=name";   // '=' does too
    r.fh2 = FileHandle::make(2, 777, 3);
  }
  if (op == NfsOp::Lookup || op == NfsOp::Create) {
    r.resFh = FileHandle::make(2, 555, 4);
    r.hasResFh = true;
  }
  r.hasAttrs = true;
  r.ftype = FileType::Regular;
  r.fileSize = 2 * 1024 * 1024;
  r.fileMtime = r.ts - kMicrosPerHour;
  r.fileId = 1234;
  if (op == NfsOp::Write) {
    r.hasPre = true;
    r.preSize = 2 * 1024 * 1024 - 8192;
    r.preMtime = r.ts - 2 * kMicrosPerHour;
  }
  return r;
}

void expectEqualRecords(const TraceRecord& a, const TraceRecord& b) {
  EXPECT_EQ(a.ts, b.ts);
  EXPECT_EQ(a.replyTs, b.replyTs);
  EXPECT_EQ(a.client, b.client);
  EXPECT_EQ(a.server, b.server);
  EXPECT_EQ(a.xid, b.xid);
  EXPECT_EQ(a.vers, b.vers);
  EXPECT_EQ(a.overTcp, b.overTcp);
  EXPECT_EQ(a.op, b.op);
  EXPECT_EQ(a.uid, b.uid);
  EXPECT_EQ(a.gid, b.gid);
  EXPECT_EQ(a.fh, b.fh);
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.name2, b.name2);
  EXPECT_EQ(a.fh2, b.fh2);
  if (a.op == NfsOp::Read || a.op == NfsOp::Write) {
    EXPECT_EQ(a.offset, b.offset);
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.retCount, b.retCount);
    EXPECT_EQ(a.eof, b.eof);
  }
  EXPECT_EQ(a.hasReply, b.hasReply);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.hasResFh, b.hasResFh);
  if (a.hasResFh) EXPECT_EQ(a.resFh, b.resFh);
  EXPECT_EQ(a.hasAttrs, b.hasAttrs);
  if (a.hasAttrs) {
    EXPECT_EQ(a.fileSize, b.fileSize);
    EXPECT_EQ(a.fileMtime, b.fileMtime);
  }
  EXPECT_EQ(a.hasPre, b.hasPre);
  if (a.hasPre) {
    EXPECT_EQ(a.preSize, b.preSize);
    EXPECT_EQ(a.preMtime, b.preMtime);
  }
}

class TextRoundTrip : public ::testing::TestWithParam<NfsOp> {};

TEST_P(TextRoundTrip, FormatParse) {
  TraceRecord rec = sampleRecord(GetParam());
  auto parsed = parseRecord(formatRecord(rec));
  ASSERT_TRUE(parsed.has_value());
  expectEqualRecords(rec, *parsed);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, TextRoundTrip,
    ::testing::Values(NfsOp::Getattr, NfsOp::Setattr, NfsOp::Lookup,
                      NfsOp::Access, NfsOp::Read, NfsOp::Write,
                      NfsOp::Create, NfsOp::Remove, NfsOp::Rename,
                      NfsOp::Readdir, NfsOp::Commit, NfsOp::Fsstat),
    [](const auto& info) {
      return std::string(nfsOpName(info.param));
    });

TEST(TraceText, CommentsAndBlanksSkipped) {
  EXPECT_FALSE(parseRecord("").has_value());
  EXPECT_FALSE(parseRecord("# comment").has_value());
}

TEST(TraceText, MissingTimestampThrows) {
  EXPECT_THROW(parseRecord("op=read c=1.2.3.4"), std::runtime_error);
}

TEST(TraceText, UnknownKeysIgnored) {
  TraceRecord rec = sampleRecord(NfsOp::Read);
  std::string line = formatRecord(rec) + " futurefield=xyz";
  auto parsed = parseRecord(line);
  ASSERT_TRUE(parsed.has_value());
  expectEqualRecords(rec, *parsed);
}

TEST(TraceText, FieldEscaping) {
  TraceRecord rec = sampleRecord(NfsOp::Create);
  rec.name = "weird name=with%stuff";
  auto parsed = parseRecord(formatRecord(rec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->name, rec.name);
}

TEST(TraceText, CallOnlyRecord) {
  TraceRecord rec = sampleRecord(NfsOp::Read);
  rec.hasReply = false;  // lost reply
  auto parsed = parseRecord(formatRecord(rec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->hasReply);
}

class TraceFileTest : public ::testing::Test {
 protected:
  std::string path_ = (std::filesystem::temp_directory_path() /
                       ("trace_test_" + std::to_string(::getpid())))
                          .string();
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(TraceFileTest, TextFileRoundTrip) {
  std::vector<TraceRecord> recs = {sampleRecord(NfsOp::Read),
                                   sampleRecord(NfsOp::Write),
                                   sampleRecord(NfsOp::Lookup)};
  {
    TraceWriter w(path_);
    for (const auto& r : recs) w.write(r);
    EXPECT_EQ(w.recordsWritten(), 3u);
  }
  auto back = TraceReader::readAll(path_);
  ASSERT_EQ(back.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) expectEqualRecords(recs[i], back[i]);
}

TEST_F(TraceFileTest, BinaryFileRoundTrip) {
  std::vector<TraceRecord> recs = {sampleRecord(NfsOp::Read),
                                   sampleRecord(NfsOp::Rename),
                                   sampleRecord(NfsOp::Create)};
  {
    TraceWriter w(path_, TraceWriter::Format::Binary);
    for (const auto& r : recs) w.write(r);
  }
  auto back = TraceReader::readAll(path_);
  ASSERT_EQ(back.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) expectEqualRecords(recs[i], back[i]);
}

TEST_F(TraceFileTest, BinaryDetectedByMagic) {
  {
    TraceWriter w(path_, TraceWriter::Format::Binary);
    w.write(sampleRecord(NfsOp::Read));
  }
  TraceReader r(path_);
  auto rec = r.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->op, NfsOp::Read);
}

TEST_F(TraceFileTest, MissingFileThrows) {
  EXPECT_THROW(TraceReader r("/no/such/trace"), std::runtime_error);
}

TEST_F(TraceFileTest, CheckpointFootersInvisibleToPlainReaders) {
  // Checkpoint footers (written for crash/corruption recovery) must be
  // format-compatible: a reader that knows nothing about recovery sees
  // only the records, in both text and binary form.
  for (auto format :
       {TraceWriter::Format::Text, TraceWriter::Format::Binary}) {
    TraceWriter::Options opts;
    opts.format = format;
    opts.checkpointEveryRecords = 1;  // footer after every record
    {
      TraceWriter w(path_, opts);
      w.write(sampleRecord(NfsOp::Read));
      w.write(sampleRecord(NfsOp::Write));
      w.write(sampleRecord(NfsOp::Lookup));
    }
    auto back = TraceReader::readAll(path_);
    ASSERT_EQ(back.size(), 3u);
    EXPECT_EQ(back[1].op, NfsOp::Write);
  }
}

}  // namespace
}  // namespace nfstrace
