// Shared setup for the paper-reproduction benches.
//
// Each bench regenerates one table or figure of Ellard et al. (FAST 2003)
// from a freshly simulated capture.  The simulated populations are
// scaled-down (the paper's CAMPUS array served ~700 users and 26.7M
// ops/day; we default to tens of users) — every bench reports shape
// (ratios, percentages, distributions), which is what survives scaling,
// and prints the paper's numbers alongside for comparison.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>

#include "util/table.hpp"
#include "util/time.hpp"
#include "workload/campus.hpp"
#include "workload/eecs.hpp"
#include "workload/sim.hpp"

namespace nfstrace::bench {

/// The analysis week: Sunday 2001-10-21 .. Saturday 2001-10-27 maps to
/// simulation days 0..6.
inline constexpr MicroTime kWeekStart = 0;

struct CampusSetup {
  std::unique_ptr<SimEnvironment> env;
  std::unique_ptr<CampusWorkload> workload;
};

struct EecsSetup {
  std::unique_ptr<SimEnvironment> env;
  std::unique_ptr<EecsWorkload> workload;
};

/// CAMPUS: NFSv3/TCP on jumbo frames, 50 MB quotas, three client hosts
/// (SMTP, POP, login).  Pass a callback to stream records (for long runs);
/// otherwise they collect in env->records().
inline CampusSetup makeCampus(int users, SimEnvironment::RecordCallback cb,
                              std::uint64_t seed = 2001,
                              const std::function<void(SimEnvironment::Config&)>&
                                  tweak = nullptr) {
  SimEnvironment::Config cfg;
  cfg.fsConfig.fsid = 2;
  cfg.fsConfig.defaultQuotaBytes = 50ULL << 20;
  cfg.clientHosts = 3;
  cfg.nfsVers = 3;
  cfg.useTcp = true;
  cfg.mtu = kJumboMtu;
  // The shared POP/login servers juggle every user's mailbox in limited
  // RAM, so cached file data gets evicted under load.
  cfg.clientConfig.dataCacheCapacityBytes = 48ULL << 20;
  cfg.seed = seed;
  if (tweak) tweak(cfg);
  CampusSetup s;
  s.env = std::make_unique<SimEnvironment>(cfg, std::move(cb));
  CampusConfig wl;
  wl.users = users;
  wl.seed = seed + 1;
  s.workload = std::make_unique<CampusWorkload>(wl, *s.env);
  return s;
}

/// EECS: NFSv3 (some v2) over UDP, per-user workstations, no quotas.
inline EecsSetup makeEecs(int users, SimEnvironment::RecordCallback cb,
                          std::uint64_t seed = 4004,
                          const std::function<void(SimEnvironment::Config&)>&
                              tweak = nullptr) {
  SimEnvironment::Config cfg;
  cfg.fsConfig.fsid = 1;
  cfg.clientHosts = 8;
  cfg.nfsVers = 3;
  // "Most of the EECS clients use NFSv3, but many use NFSv2."
  cfg.hostVersions = {3, 3, 3, 3, 3, 3, 2, 2};
  cfg.useTcp = false;
  cfg.mtu = kStandardMtu;
  cfg.seed = seed;
  if (tweak) tweak(cfg);
  EecsSetup s;
  s.env = std::make_unique<SimEnvironment>(cfg, std::move(cb));
  EecsConfig wl;
  wl.users = users;
  wl.seed = seed + 1;
  s.workload = std::make_unique<EecsWorkload>(wl, *s.env);
  return s;
}

/// Smoke mode (NFSTRACE_SMOKE=1, the `bench-smoke` CMake target): run
/// each bench with a tiny record budget and without exit-code
/// enforcement, so the full bench suite can be exercised as a quick
/// everything-still-runs check on any machine.
inline bool smokeMode() {
  const char* v = std::getenv("NFSTRACE_SMOKE");
  return v && *v && *v != '0';
}

inline void banner(const std::string& what) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", what.c_str());
  std::printf("  (regenerated from a scaled-down synthetic capture; compare\n");
  std::printf("   shape against the paper values shown alongside)\n");
  std::printf("================================================================\n\n");
}

}  // namespace nfstrace::bench
