// Crash supervision for nfstraced: fork the capture loop as a child
// process, restart it on abnormal exit with exponential backoff, and
// audit the manifest's §4.1.4 loss accounting between incarnations.
//
// The supervisor is deliberately dumb: all crash-consistency lives in
// TraceDaemon's recovery protocol, so the parent only has to (a) decide
// whether the exit was clean, (b) re-check the durable invariant
// captured == sealed + recovered + lost from the manifest, and (c) pace
// restarts so a persistently broken environment does not spin.  This is
// also the harness bench/chaos_soak phase G uses to SIGKILL the daemon
// mid-rotation and prove the books still balance.
#pragma once

#include <functional>
#include <string>

#include "daemon/manifest.hpp"
#include "util/time.hpp"

namespace nfstrace::daemon {

class Supervisor {
 public:
  struct Config {
    /// Manifest audited between restarts; empty skips the audit.
    std::string manifestPath;
    /// Give up after this many restarts (abnormal exits).
    int maxRestarts = 8;
    /// Exponential restart backoff: initial delay, doubling per
    /// consecutive abnormal exit, capped at the max.
    MicroTime backoffInitialUs = 2'000;
    MicroTime backoffMaxUs = 500'000;
  };

  struct Result {
    int incarnations = 0;   ///< child processes started
    int restarts = 0;       ///< abnormal exits that triggered a restart
    int lastStatus = 0;     ///< raw waitpid status of the last child
    bool cleanExit = false; ///< last child exited 0
    /// False if any between-restart audit found unbalanced books or an
    /// unreadable-but-present manifest.
    bool booksBalanced = true;
    Books finalBooks;       ///< from the last successful manifest audit
  };

  /// Run `body(incarnation)` in a forked child until it exits cleanly or
  /// the restart budget is spent.  `body`'s return value is the child
  /// exit status; the child may also die by signal (SIGKILL chaos), which
  /// counts as an abnormal exit.  Never throws; fork failure is reported
  /// as a non-clean Result.
  static Result run(const Config& cfg, const std::function<int(int)>& body);
};

}  // namespace nfstrace::daemon
