#include "analysis/pathrec.hpp"

namespace nfstrace {
namespace {

std::string edgeKey(const FileHandle& dir, const std::string& name) {
  return dir.toHex() + "/" + name;
}

}  // namespace

void PathReconstructor::learn(const FileHandle& parent,
                              const std::string& name,
                              const FileHandle& child) {
  if (child.len == 0 || parent.len == 0 || name.empty()) return;
  if (name == "." || name == "..") return;
  up_[child] = {parent, name};
  down_[edgeKey(parent, name)] = child;
}

void PathReconstructor::observe(const TraceRecord& rec) {
  switch (rec.op) {
    case NfsOp::Lookup:
    case NfsOp::Create:
    case NfsOp::Mkdir:
    case NfsOp::Symlink:
    case NfsOp::Mknod:
      if (rec.hasReply && rec.hasResFh && rec.status == NfsStat::Ok) {
        learn(rec.fh, rec.name, rec.resFh);
      }
      break;
    case NfsOp::Rename:
      if (rec.hasReply && rec.status == NfsStat::Ok) {
        // Move the edge: the object formerly at (fh, name) is now at
        // (fh2, name2).
        auto it = down_.find(edgeKey(rec.fh, rec.name));
        if (it != down_.end()) {
          FileHandle child = it->second;
          down_.erase(it);
          learn(rec.fh2, rec.name2, child);
        }
      }
      break;
    case NfsOp::Remove:
    case NfsOp::Rmdir:
      if (rec.hasReply && rec.status == NfsStat::Ok) {
        auto it = down_.find(edgeKey(rec.fh, rec.name));
        if (it != down_.end()) {
          up_.erase(it->second);
          down_.erase(it);
        }
      }
      break;
    default:
      break;
  }

  // Coverage accounting: for data ops, did we already know the parent?
  if (rec.op == NfsOp::Read || rec.op == NfsOp::Write) {
    if (up_.count(rec.fh)) {
      ++coverageHits_;
    } else {
      ++coverageMisses_;
    }
  }
}

std::optional<std::string> PathReconstructor::nameOf(
    const FileHandle& fh) const {
  auto it = up_.find(fh);
  if (it == up_.end()) return std::nullopt;
  return it->second.name;
}

std::optional<FileHandle> PathReconstructor::parentOf(
    const FileHandle& fh) const {
  auto it = up_.find(fh);
  if (it == up_.end()) return std::nullopt;
  return it->second.parent;
}

std::optional<FileHandle> PathReconstructor::childOf(
    const FileHandle& dir, const std::string& name) const {
  auto it = down_.find(edgeKey(dir, name));
  if (it == down_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> PathReconstructor::pathOf(
    const FileHandle& fh) const {
  std::vector<std::string> parts;
  FileHandle cur = fh;
  for (int depth = 0; depth < 256; ++depth) {
    auto it = up_.find(cur);
    if (it == up_.end()) {
      if (depth == 0) return std::nullopt;
      // Reached a handle with no known parent: treat it as the root of
      // the known subtree.
      break;
    }
    parts.push_back(it->second.name);
    cur = it->second.parent;
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) out += "/" + *it;
  return out;
}

}  // namespace nfstrace
