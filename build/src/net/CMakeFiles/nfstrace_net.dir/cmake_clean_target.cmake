file(REMOVE_RECURSE
  "libnfstrace_net.a"
)
