// §6.4 experiment: modifying the server's read-ahead heuristic to use the
// sequentiality metric instead of the classic strictly-sequential trigger.
// The paper modified FreeBSD 4.4 and saw, on a loaded system where ~10% of
// requests arrived reordered, end-to-end large sequential transfers
// improve by more than 5%.  Here the same comparison runs against the disk
// service-time model: sequential per-file request streams, a configurable
// fraction of adjacent requests swapped, both policies timed.
#include "server/readahead.hpp"
#include "bench_common.hpp"

using namespace nfstrace;
using namespace nfstrace::bench;

namespace {

struct Request {
  std::uint64_t file;
  std::uint64_t block;
};

std::vector<Request> makeWorkload(double reorderFraction, std::uint64_t seed) {
  // 150 files of 512 blocks (4 MB at 8 KB/block) read sequentially, with
  // file streams interleaved as a loaded server sees them.
  Rng rng(seed);
  constexpr int kFiles = 150;
  constexpr std::uint64_t kBlocks = 512;
  std::vector<std::uint64_t> nextBlock(kFiles, 0);
  std::vector<Request> reqs;
  reqs.reserve(kFiles * kBlocks);
  std::vector<int> active;
  for (int f = 0; f < kFiles; ++f) active.push_back(f);
  while (!active.empty()) {
    std::size_t pick = static_cast<std::size_t>(rng.below(active.size()));
    int f = active[pick];
    reqs.push_back({static_cast<std::uint64_t>(f), nextBlock[f]});
    if (++nextBlock[f] == kBlocks) {
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  // Swap a fraction of *same-file* adjacent request pairs: nfsiod
  // reordering happens within one client's stream for one file, and only
  // those swaps break the per-file sequentiality a read-ahead engine sees.
  std::vector<std::vector<std::size_t>> byFile(kFiles);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    byFile[reqs[i].file].push_back(i);
  }
  std::size_t swaps = static_cast<std::size_t>(
      reorderFraction * static_cast<double>(reqs.size()));
  for (std::size_t s = 0; s < swaps; ++s) {
    const auto& positions = byFile[rng.below(kFiles)];
    if (positions.size() < 2) continue;
    std::size_t k = static_cast<std::size_t>(rng.below(positions.size() - 1));
    std::swap(reqs[positions[k]], reqs[positions[k + 1]]);
  }
  return reqs;
}

std::int64_t timePolicy(const std::vector<Request>& reqs,
                        ReadAheadPolicy policy) {
  ReadAheadEngine::Config cfg;
  cfg.policy = policy;
  cfg.maxReadAheadBlocks = 4;
  ReadAheadEngine engine(cfg);
  // Short seeks within the home-directory region; the stream is network-
  // paced as well, so seeks are not the only cost.
  DiskModel disk({2500, 300, 20});
  for (const auto& r : reqs) {
    std::uint32_t ra = engine.onRead(r.file, r.block, 1);
    disk.read(r.file, r.block, ra);
  }
  return disk.totalServiceUs();
}

}  // namespace

int main() {
  banner("Section 6.4 -- sequentiality-metric read-ahead vs strict trigger");

  TextTable t({"% reordered", "strict (ms)", "metric (ms)", "improvement"});
  for (double frac : {0.0, 0.02, 0.05, 0.10, 0.15, 0.20}) {
    auto reqs = makeWorkload(frac, 42);
    auto strict = timePolicy(reqs, ReadAheadPolicy::StrictSequential);
    auto metric = timePolicy(reqs, ReadAheadPolicy::SequentialityMetric);
    double gain = 100.0 * (1.0 - static_cast<double>(metric) /
                                     static_cast<double>(strict));
    std::string mark = frac == 0.10 ? "  <- paper's operating point" : "";
    t.addRow({TextTable::fixed(100.0 * frac, 0),
              TextTable::fixed(static_cast<double>(strict) / 1000.0, 1),
              TextTable::fixed(static_cast<double>(metric) / 1000.0, 1),
              TextTable::fixed(gain, 1) + "%" + mark});
  }
  std::fputs(t.render().c_str(), stdout);

  std::printf(
      "\nShape checks (paper §6.4): with no reordering the two policies\n"
      "are comparable; at ~10%% reordering the metric-driven read-ahead\n"
      "beats the strict trigger (paper: >5%% end-to-end on FreeBSD 4.4).\n"
      "Our model times disk service only — no network or client overhead\n"
      "dilutes the effect — so the measured improvement is larger than\n"
      "the paper's end-to-end figure; the shape (metric policy flat under\n"
      "reordering, strict policy degrading steadily) is the result.\n");
  return 0;
}
