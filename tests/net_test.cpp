#include <gtest/gtest.h>

#include "net/packet.hpp"

namespace nfstrace {
namespace {

std::vector<std::uint8_t> payloadOf(std::size_t n, std::uint8_t seed = 0) {
  std::vector<std::uint8_t> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::uint8_t>(seed + i);
  }
  return p;
}

TEST(Ip, StringConversions) {
  IpAddr ip = makeIp(10, 1, 2, 3);
  EXPECT_EQ(ipToString(ip), "10.1.2.3");
  EXPECT_EQ(ipFromString("10.1.2.3"), ip);
  EXPECT_FALSE(ipFromString("999.1.1.1").has_value());
  EXPECT_FALSE(ipFromString("banana").has_value());
  EXPECT_FALSE(ipFromString("1.2.3").has_value());
}

TEST(Checksum, KnownVector) {
  // RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  std::vector<std::uint8_t> data{0x00, 0x01, 0xf2, 0x03,
                                 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internetChecksum(data), 0x220d);
}

TEST(Checksum, OddLength) {
  std::vector<std::uint8_t> data{0xab};
  // 0xab00 summed; complement.
  EXPECT_EQ(internetChecksum(data), static_cast<std::uint16_t>(~0xab00));
}

TEST(Udp, BuildParseRoundTrip) {
  auto payload = payloadOf(100);
  auto frame = buildUdpFrame(makeIp(10, 0, 0, 1), 1023, makeIp(10, 0, 0, 2),
                             2049, payload);
  auto parsed = parseFrame(frame);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->proto, IpProto::Udp);
  EXPECT_EQ(parsed->src, makeIp(10, 0, 0, 1));
  EXPECT_EQ(parsed->dst, makeIp(10, 0, 0, 2));
  EXPECT_EQ(parsed->srcPort, 1023);
  EXPECT_EQ(parsed->dstPort, 2049);
  EXPECT_FALSE(parsed->isFragment());
  ASSERT_EQ(parsed->payload.size(), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         parsed->payload.begin()));
}

TEST(Udp, IpHeaderChecksumValid) {
  auto frame = buildUdpFrame(makeIp(1, 2, 3, 4), 5, makeIp(6, 7, 8, 9), 10,
                             payloadOf(8));
  // Verify the IP header checksums to zero.
  std::span<const std::uint8_t> ipHdr(frame.data() + kEthHeaderLen, 20);
  EXPECT_EQ(internetChecksum(ipHdr), 0);
}

TEST(Udp, FragmentationRoundTrip) {
  // 8 KB NFS read over a 1500-byte segment: must fragment.
  auto payload = payloadOf(8192, 3);
  auto frames = buildUdpFrames(makeIp(10, 0, 0, 1), 1023, makeIp(10, 0, 0, 2),
                               2049, /*ipId=*/42, payload, kStandardMtu);
  ASSERT_GT(frames.size(), 1u);

  IpReassembler reasm;
  std::optional<std::vector<std::uint8_t>> result;
  for (const auto& f : frames) {
    auto parsed = parseFrame(f);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_TRUE(parsed->isFragment());
    auto out = reasm.feed(*parsed, 0);
    if (out) result.emplace(out->begin(), out->end());
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, payload);
}

TEST(Udp, FragmentsOutOfOrderStillReassemble) {
  auto payload = payloadOf(5000, 9);
  auto frames = buildUdpFrames(makeIp(1, 1, 1, 1), 7, makeIp(2, 2, 2, 2), 8,
                               7, payload, kStandardMtu);
  ASSERT_GE(frames.size(), 2u);
  std::swap(frames.front(), frames.back());
  IpReassembler reasm;
  std::optional<std::vector<std::uint8_t>> result;
  for (const auto& f : frames) {
    auto parsed = parseFrame(f);
    ASSERT_TRUE(parsed);
    if (auto out = reasm.feed(*parsed, 0)) result.emplace(out->begin(), out->end());
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, payload);
}

TEST(Udp, LostFragmentLosesDatagram) {
  auto payload = payloadOf(8000);
  auto frames = buildUdpFrames(makeIp(1, 1, 1, 1), 7, makeIp(2, 2, 2, 2), 8,
                               9, payload, kStandardMtu);
  ASSERT_GE(frames.size(), 3u);
  frames.erase(frames.begin() + 1);  // drop a middle fragment
  IpReassembler reasm;
  for (const auto& f : frames) {
    auto parsed = parseFrame(f);
    ASSERT_TRUE(parsed);
    EXPECT_FALSE(reasm.feed(*parsed, 0).has_value());
  }
}

TEST(Udp, ReassemblyTimeoutExpiresState) {
  auto payload = payloadOf(4000);
  auto frames = buildUdpFrames(makeIp(1, 1, 1, 1), 7, makeIp(2, 2, 2, 2), 8,
                               11, payload, kStandardMtu);
  IpReassembler reasm(/*timeoutUs=*/1000);
  auto p0 = parseFrame(frames[0]);
  reasm.feed(*p0, 0);
  // A much later unrelated fragment triggers expiry of the stale state.
  auto frames2 = buildUdpFrames(makeIp(1, 1, 1, 1), 7, makeIp(2, 2, 2, 2), 8,
                                12, payload, kStandardMtu);
  auto p1 = parseFrame(frames2[0]);
  reasm.feed(*p1, 10'000'000);
  EXPECT_GE(reasm.expired(), 1u);
}

TEST(Udp, JumboFrameNoFragmentation) {
  auto payload = payloadOf(8192);
  auto frames = buildUdpFrames(makeIp(1, 1, 1, 1), 7, makeIp(2, 2, 2, 2), 8,
                               1, payload, kJumboMtu);
  EXPECT_EQ(frames.size(), 1u);
  auto parsed = parseFrame(frames[0]);
  ASSERT_TRUE(parsed);
  EXPECT_FALSE(parsed->isFragment());
  EXPECT_EQ(parsed->payload.size(), payload.size());
}

TEST(Tcp, BuildParseRoundTrip) {
  auto payload = payloadOf(500);
  auto frame = buildTcpFrame(makeIp(10, 0, 0, 1), 1023, makeIp(10, 0, 0, 2),
                             2049, 1000, 2000, false, false, true, payload);
  auto parsed = parseFrame(frame);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->proto, IpProto::Tcp);
  EXPECT_EQ(parsed->tcpSeq, 1000u);
  EXPECT_EQ(parsed->tcpAck, 2000u);
  EXPECT_TRUE(parsed->tcpAckFlag);
  EXPECT_FALSE(parsed->tcpSyn);
  EXPECT_EQ(parsed->payload.size(), 500u);
}

TEST(Tcp, FlagsParse) {
  auto syn = buildTcpFrame(1, 2, 3, 4, 0, 0, true, false, false, {});
  auto fin = buildTcpFrame(1, 2, 3, 4, 0, 0, false, true, true, {});
  EXPECT_TRUE(parseFrame(syn)->tcpSyn);
  EXPECT_TRUE(parseFrame(fin)->tcpFin);
}

TEST(Tcp, SegmentationAdvancesSeq) {
  auto data = payloadOf(10'000);
  std::uint32_t seq = 100;
  auto frames = segmentTcpStream(1, 2, 3, 4, seq, data, 1460);
  EXPECT_EQ(frames.size(), 7u);  // ceil(10000/1460)
  EXPECT_EQ(seq, 100u + 10'000u);
  EXPECT_EQ(parseFrame(frames[0])->tcpSeq, 100u);
  EXPECT_EQ(parseFrame(frames[1])->tcpSeq, 1560u);
}

TEST(Tcp, ReassemblerInOrder) {
  TcpReassembler r;
  auto out1 = r.feed(0, payloadOf(10, 1), false);
  EXPECT_EQ(out1.size(), 10u);
  auto out2 = r.feed(10, payloadOf(5, 11), false);
  EXPECT_EQ(out2.size(), 5u);
  EXPECT_EQ(r.bytesDelivered(), 15u);
}

TEST(Tcp, ReassemblerBuffersOutOfOrder) {
  TcpReassembler r;
  r.feed(0, payloadOf(4, 0), false);
  auto gap = r.feed(8, payloadOf(4, 8), false);  // leaves hole [4,8)
  EXPECT_TRUE(gap.empty());
  EXPECT_TRUE(r.hasGap());
  auto out = r.feed(4, payloadOf(4, 4), false);  // fills the hole
  EXPECT_EQ(out.size(), 8u);
  EXPECT_EQ(out[0], 4);
  EXPECT_EQ(out[4], 8);
  EXPECT_FALSE(r.hasGap());
}

TEST(Tcp, ReassemblerDiscardsRetransmission) {
  TcpReassembler r;
  r.feed(0, payloadOf(10), false);
  auto dup = r.feed(0, payloadOf(10), false);
  EXPECT_TRUE(dup.empty());
  // Partial overlap: only the new tail comes out.
  auto tail = r.feed(5, payloadOf(10, 5), false);
  EXPECT_EQ(tail.size(), 5u);
}

TEST(Tcp, SynInitializesSequence) {
  TcpReassembler r;
  r.feed(999, {}, /*syn=*/true);
  auto out = r.feed(1000, payloadOf(3), false);
  EXPECT_EQ(out.size(), 3u);
}

TEST(Tcp, ResyncAfterLoss) {
  TcpReassembler r;
  r.feed(0, payloadOf(10), false);
  r.feed(100, payloadOf(10), false);  // big gap (dropped segments)
  EXPECT_TRUE(r.hasGap());
  EXPECT_TRUE(r.resyncTo(110));
  auto out = r.feed(110, payloadOf(4), false);
  EXPECT_EQ(out.size(), 4u);
}

TEST(ParseFrame, RejectsGarbage) {
  EXPECT_FALSE(parseFrame(payloadOf(10)).has_value());
  EXPECT_FALSE(parseFrame({}).has_value());
  // Valid Ethernet but non-IP ethertype.
  std::vector<std::uint8_t> arp(60, 0);
  arp[12] = 0x08;
  arp[13] = 0x06;
  EXPECT_FALSE(parseFrame(arp).has_value());
}

TEST(ParseFrame, RejectsTruncatedIp) {
  auto frame = buildUdpFrame(1, 2, 3, 4, payloadOf(100));
  frame.resize(kEthHeaderLen + 10);
  EXPECT_FALSE(parseFrame(frame).has_value());
}

}  // namespace
}  // namespace nfstrace
