// nfstraced core: a crash-recoverable continuous-capture trace daemon.
//
// The paper's tracer ran unattended for months, rotating trace files on
// the hour and surviving full disks and machine reboots.  TraceDaemon is
// that run loop's durable heart: it owns the active trace segment and
// the manifest (daemon/manifest.hpp), and guarantees that at *every*
// instant — including mid-rotation SIGKILL — the on-disk state is
// resumable with exact accounting:
//
//   captured == sealed + recovered + lost          (Books::balanced)
//
// Rotation is checkpoint-aligned: the active `<prefix>-NNNNNN.part`
// segment is finalized (v2: tail extent + footer index; v1: final
// checkpoint), flushed, fsync'd, renamed to `<prefix>-NNNNNN.trace`
// (rename is atomic), and only then journaled in the manifest, which is
// itself replaced atomically.  The crash matrix (see DESIGN.md):
//
//   crash before rename      -> torn .part; startup recovery salvages
//                               whole extents/checkpoint runs, seals
//                               them as the segment, folds the evidenced
//                               remainder into `lost`
//   after rename, pre-journal-> sealed segment not in manifest; startup
//                               adopts it (scan + count) into the books
//   mid-manifest             -> impossible to observe: saves are
//                               tmp+fsync+rename, a reader sees old or
//                               new, never torn (Damaged only from real
//                               disk corruption, answered by a directory
//                               rescan)
//
// A restarted source resumes feeding at streamPos() = sealed + recovered
// — the records physically present in segments — so the concatenation of
// sealed segments across any number of crashes is byte-identical to an
// uninterrupted run, with zero duplicates and zero gaps (enforced by
// bench/chaos_soak phase G).
//
// Disk-fault degradation: when the writer exhausts its retry budget
// (injected or real ENOSPC/EIO), the daemon does not die — it abandons
// the active segment, sheds records with exact loss accounting
// (daemon.records_shed, a DEGRADED alert), and periodically probes the
// disk by recovering the abandoned segment and reopening a fresh one.
//
// Retention runs incrementally after each rotation: oldest segments are
// retired when count/bytes/age budgets are exceeded (the books are NOT
// rewound — retirement is policy, not loss), and v1 segments past a
// configurable age are compacted to columnar v2, verified byte-identical
// via the standard 8-pass engine report before the original is unlinked.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "daemon/manifest.hpp"
#include "fault/fault.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "trace/tracefile.hpp"
#include "util/time.hpp"

namespace nfstrace::daemon {

/// Size/age-tiered retention policy (0 disables each bound).
struct Retention {
  std::size_t maxSegments = 0;      ///< keep at most this many segments
  std::uint64_t maxTotalBytes = 0;  ///< total sealed bytes budget
  std::int64_t maxAgeSec = 0;       ///< retire segments sealed longer ago
  /// Compact non-v2 segments to columnar v2 once they are this old (in
  /// seconds; < 0 disables compaction).  0 compacts as soon as the
  /// segment seals — the "cold tier starts immediately" setting.
  std::int64_t compactAfterSec = -1;
};

class TraceDaemon {
 public:
  struct Config {
    std::string dir;              ///< segment + manifest directory
    std::string prefix = "trace"; ///< segment file prefix
    TraceWriter::Format format = TraceWriter::Format::V2;

    // Rotation thresholds (0 disables each; rotateNow() always works).
    std::uint64_t rotateRecords = 0;  ///< seal after N records
    std::uint64_t rotateBytes = 0;    ///< seal after N bytes (incl. buffer)
    MicroTime rotateIntervalUs = 0;   ///< seal after elapsed wall time

    // Writer durability knobs, passed through to TraceWriter::Options.
    std::uint64_t checkpointEveryRecords = 4096;
    std::uint64_t v2ExtentRecords = 8192;
    int maxRetries = 8;
    MicroTime backoffInitialUs = 50;
    MicroTime backoffMaxUs = 10'000;
    /// Deterministic disk-fault hook shared by every writer the daemon
    /// opens (active segments, recovery, compaction); not owned.
    IoFaultInjector* faults = nullptr;

    /// fsync each segment before renaming it sealed.  On by default —
    /// that is the whole point — but tests that crash on purpose at
    /// every byte offset can turn it off for speed.
    bool fsyncOnSeal = true;

    Retention retention;
    /// Run retention + one compaction step automatically after each
    /// rotation (maintain() can always be called explicitly).
    bool autoMaintain = true;

    /// Degraded mode: after this many consecutive shed records, probe
    /// the disk (recover the abandoned segment, reopen a fresh one).
    std::uint64_t reopenAfterSheds = 256;

    /// Decode threads for the compaction verification scans: indexed v2
    /// input goes through the engine's extent-parallel scanner (reports
    /// stay byte-identical, so the verification gate is unchanged).
    std::size_t decodeThreads = 1;

    /// Wall clock (unix seconds) for seal stamps and age retention;
    /// injectable so tests can age segments deterministically.  Null
    /// uses the real clock.
    std::function<std::int64_t()> wallClock;

    obs::Registry* metrics = nullptr;
    obs::FlightRecorder* flight = nullptr;
  };

  /// What startup recovery found and did (for logs, tests, and the
  /// chaos soak's cross-restart assertions).
  struct RecoveryReport {
    Manifest::LoadStatus manifestStatus = Manifest::LoadStatus::Missing;
    bool rebuiltFromScan = false;     ///< manifest Missing/Damaged path
    std::uint64_t adoptedSegments = 0; ///< sealed but unjournaled segments
    std::uint64_t tornSegments = 0;    ///< .part files recovered
    std::uint64_t recoveredRecords = 0;
    std::uint64_t lostRecords = 0;     ///< evidenced torn-tail records
    std::uint64_t staleFilesRemoved = 0;  ///< stale .part/.recov/.tmp
  };

  /// Opens (and if necessary recovers) the daemon state in `config.dir`
  /// and opens a fresh active segment.  Throws std::runtime_error when
  /// the directory is unusable.
  explicit TraceDaemon(Config config);
  ~TraceDaemon();
  TraceDaemon(const TraceDaemon&) = delete;
  TraceDaemon& operator=(const TraceDaemon&) = delete;

  /// Append one record to the active segment (rotating when a threshold
  /// trips).  Never throws on disk faults: exhausted retries flip the
  /// daemon into degraded shedding instead.
  void submit(const TraceRecord& rec);

  /// Seal the active segment now (SIGHUP).  No-op when the active
  /// segment is empty or the daemon is degraded.
  void rotateNow();

  /// Graceful drain (SIGTERM): seal the active segment, run a final
  /// maintenance pass, save the manifest.  Idempotent; the destructor
  /// calls it too (swallowing errors).
  void stop();

  /// One incremental maintenance step: apply retention, then compact at
  /// most one eligible segment (bounded work, so the capture loop can
  /// interleave it like a background task).
  void maintain();

  const Manifest& manifest() const { return manifest_; }
  const Books& books() const { return manifest_.books; }
  const RecoveryReport& recovery() const { return recovery_; }

  /// Stream position a restarted source should resume from: records
  /// durable in (or retired from) sealed segments.
  std::uint64_t streamPos() const { return manifest_.streamPos(); }
  /// Records in the active segment (submitted, not yet sealed).
  std::uint64_t activeRecords() const { return activeRecords_; }
  /// Records accepted over this daemon's lifetime (sealed + active +
  /// shed; excludes recovery folds from previous incarnations).
  std::uint64_t recordsSubmitted() const { return submitted_; }

  bool degraded() const { return degraded_; }
  std::uint64_t recordsShed() const { return shedTotal_; }

  std::string manifestPath() const;
  /// Absolute paths of the sealed segments, ascending seq.
  std::vector<std::string> segmentPaths() const;

  static std::string manifestPathFor(const std::string& dir,
                                     const std::string& prefix);

 private:
  std::string sealedPath(std::uint64_t seq) const;
  std::string partPath(std::uint64_t seq) const;
  std::int64_t now() const;

  /// Startup: load or rebuild the manifest, adopt unjournaled sealed
  /// segments, recover torn parts, remove stale temporaries.
  void recoverDirectory();
  /// Salvage one torn `.part` (startup or degraded probe): recover its
  /// records into `.recov`, seal what survived, fold the books.
  /// `submittedToPart` is the exact record count this process wrote to
  /// the part (degraded probe), or ~0ull when unknown (startup, where
  /// the torn file's own checkpoint evidence is the best bound).
  /// `useFaults` routes the salvage writes through the injector (probe
  /// path) or bypasses it (startup, where a fresh process deserves a
  /// clean salvage and real disk errors propagate to the supervisor).
  void recoverPart(std::uint64_t seq, std::uint64_t submittedToPart,
                   bool useFaults);
  /// Count the records of an already-sealed segment (manifest adoption).
  std::uint64_t countSegmentRecords(const std::string& path,
                                    std::string& formatOut) const;

  void openActive();
  /// Seal the active part as a segment and journal it; throws on disk
  /// failure (caller degrades).
  void sealActive();
  void rotate();
  void enterDegraded();
  void shedOne();
  /// Degraded-mode probe: try to salvage the abandoned part and reopen.
  void probeDisk();

  void applyRetention();
  /// Compact at most one eligible non-v2 segment to v2, verified
  /// byte-identical via the standard engine report before the original
  /// is replaced.  Returns true when a segment was compacted.
  bool compactOneSegment();
  /// Standard 8-pass engine report over one trace file (the compaction
  /// verification oracle).  Also returns the record count.
  std::string engineReport(const std::string& path,
                           std::uint64_t& recordsOut) const;

  Config cfg_;
  std::string manifestPath_;
  Manifest manifest_;
  RecoveryReport recovery_;

  std::unique_ptr<TraceWriter> writer_;
  std::uint64_t activeSeq_ = 0;
  std::uint64_t activeRecords_ = 0;
  std::uint64_t submitted_ = 0;
  std::chrono::steady_clock::time_point activeOpened_{};

  bool degraded_ = false;
  bool stopped_ = false;
  std::uint64_t shedTotal_ = 0;
  std::uint64_t shedSinceProbe_ = 0;
  /// Segments whose compaction failed verification this run (skipped on
  /// later maintain() calls instead of retrying forever).
  std::vector<std::uint64_t> failedCompactSeqs_;

  obs::CounterHandle rotationsC_;
  obs::CounterHandle shedC_;
  obs::CounterHandle recoveredSegC_;
  obs::CounterHandle retiredSegC_;
  obs::CounterHandle compactionsC_;
  obs::CounterHandle compactFailC_;
  obs::ThreadLog* flog_ = nullptr;
};

}  // namespace nfstrace::daemon
