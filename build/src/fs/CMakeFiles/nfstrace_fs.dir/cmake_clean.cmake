file(REMOVE_RECURSE
  "CMakeFiles/nfstrace_fs.dir/fs.cpp.o"
  "CMakeFiles/nfstrace_fs.dir/fs.cpp.o.d"
  "libnfstrace_fs.a"
  "libnfstrace_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfstrace_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
