
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/mountd.cpp" "src/server/CMakeFiles/nfstrace_server.dir/mountd.cpp.o" "gcc" "src/server/CMakeFiles/nfstrace_server.dir/mountd.cpp.o.d"
  "/root/repo/src/server/portmap.cpp" "src/server/CMakeFiles/nfstrace_server.dir/portmap.cpp.o" "gcc" "src/server/CMakeFiles/nfstrace_server.dir/portmap.cpp.o.d"
  "/root/repo/src/server/readahead.cpp" "src/server/CMakeFiles/nfstrace_server.dir/readahead.cpp.o" "gcc" "src/server/CMakeFiles/nfstrace_server.dir/readahead.cpp.o.d"
  "/root/repo/src/server/server.cpp" "src/server/CMakeFiles/nfstrace_server.dir/server.cpp.o" "gcc" "src/server/CMakeFiles/nfstrace_server.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fs/CMakeFiles/nfstrace_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/nfs/CMakeFiles/nfstrace_nfs.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/nfstrace_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nfstrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
