# Empty dependencies file for nfstrace_rpc.
# This may be replaced when dependencies are built.
