#include "obs/exporter.hpp"

#include "obs/json.hpp"
#include "util/atomicfile.hpp"
#include "util/table.hpp"

namespace nfstrace::obs {

std::vector<std::string> defaultAlertCounters() {
  return {
      "netcap.mirror_dropped",
      "sniffer.evicted_calls",
      "sniffer.evicted_flows",
      "sniffer.malformed_rpc",
      "sniffer.orphan_replies",
      "pipeline.frames_shed",
      "pipeline.pop_stalls",
      "pipeline.push_stalls",
      "pipeline.record_push_stalls",
      "trace.write_retries",
      "trace.short_writes",
      "engine.resync_cuts",
      "engine.merge_skew",
      "engine.intern_high_water",
      "daemon.records_shed",
      "daemon.segments_recovered",
      "daemon.compact_failures",
  };
}

SnapshotExporter::SnapshotExporter(Registry& registry, Config config)
    : registry_(registry),
      config_(std::move(config)),
      start_(std::chrono::steady_clock::now()) {
  if (!config_.jsonlPath.empty()) {
    // Append mode, held open for the exporter's lifetime: a restarted
    // daemon accumulates history, and each emit costs one line of I/O
    // regardless of how long the run has been going.  Open failure
    // degrades to best-effort off.
    jsonlFile_ = std::fopen(config_.jsonlPath.c_str(), "ab");
  }
  if (config_.intervalUs > 0) {
    thread_ = std::thread([this] { threadLoop(); });
  }
}

SnapshotExporter::~SnapshotExporter() { stop(); }

void SnapshotExporter::threadLoop() {
  std::unique_lock lock(stopMu_);
  for (;;) {
    if (stopCv_.wait_for(lock, std::chrono::microseconds(config_.intervalUs),
                         [this] { return stopping_; })) {
      return;  // final snapshot is emitted by stop()
    }
    lock.unlock();
    emit();
    lock.lock();
  }
}

void SnapshotExporter::exportOnce() { emit(); }

void SnapshotExporter::stop() {
  {
    std::lock_guard lock(stopMu_);
    if (stopped_) return;
    stopping_ = true;
  }
  stopCv_.notify_all();
  if (thread_.joinable()) thread_.join();
  emit();  // end-of-run snapshot: final counter totals always land
  {
    std::lock_guard lock(emitMu_);
    if (jsonlFile_) {
      std::fclose(jsonlFile_);
      jsonlFile_ = nullptr;
    }
  }
  {
    std::lock_guard lock(stopMu_);
    stopped_ = true;
  }
}

void SnapshotExporter::emit() {
  Snapshot snap = registry_.scrape();
  auto uptime = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
  std::lock_guard lock(emitMu_);
  std::uint64_t seqNo = seq_++;
  if (config_.statusStream) {
    std::string table = renderStatusTable(snap, seqNo, uptime);
    table += renderAlerts(snap, config_.alertCounters);
    std::fwrite(table.data(), 1, table.size(), config_.statusStream);
    std::fflush(config_.statusStream);
  }
  if (jsonlFile_) {
    std::string line = renderJsonLine(snap, seqNo, uptime);
    line.push_back('\n');
    // One buffered fwrite of the whole line, flushed per emit: the only
    // incomplete line a reader (or a crash) can ever see is the last one,
    // which JSONL consumers skip.
    std::fwrite(line.data(), 1, line.size(), jsonlFile_);
    std::fflush(jsonlFile_);
  }
  if (!config_.promPath.empty()) {
    // Atomic whole-file rewrite, so a textfile collector always reads a
    // complete exposition (never a half-written scrape).
    try {
      writeFileAtomic(config_.promPath, renderPrometheus(snap));
    } catch (...) {
    }
  }
  if (config_.flight) sampleFlight(snap);
  written_.fetch_add(1, std::memory_order_relaxed);
}

void SnapshotExporter::sampleFlight(const Snapshot& snap) {
  // Called under emitMu_, so this thread is the track's sole producer
  // even when exportOnce() races the scrape thread.
  if (!flog_) flog_ = config_.flight->attachThread("obs.exporter");
  auto trackOf = [this](const std::string& name) {
    for (const auto& [n, id] : flightTracks_) {
      if (n == name) return id;
    }
    std::uint16_t id = config_.flight->counterTrack(name);
    flightTracks_.emplace_back(name, id);
    return id;
  };
  for (const auto& [name, v] : snap.counters) {
    flog_->counterSample(trackOf(name), static_cast<double>(v));
  }
  for (const auto& [name, v] : snap.gauges) {
    flog_->counterSample(trackOf(name), v);
  }
}

std::string SnapshotExporter::renderStatusTable(const Snapshot& snap,
                                                std::uint64_t seqNo,
                                                std::int64_t uptimeUs) {
  std::string out;
  char head[96];
  std::snprintf(head, sizeof(head),
                "---- obs snapshot #%llu  (uptime %.3f s) ----\n",
                static_cast<unsigned long long>(seqNo),
                static_cast<double>(uptimeUs) / 1e6);
  out += head;

  if (!snap.counters.empty() || !snap.gauges.empty()) {
    TextTable t({"metric", "value"});
    for (const auto& [name, v] : snap.counters) {
      t.addRow({name, TextTable::withCommas(v)});
    }
    if (!snap.counters.empty() && !snap.gauges.empty()) t.addRule();
    for (const auto& [name, v] : snap.gauges) {
      t.addRow({name, TextTable::fixed(v, 3)});
    }
    out += t.render();
  }
  if (!snap.histograms.empty()) {
    TextTable t({"histogram", "count", "mean", "p50", "p95", "p99", "max"});
    for (const auto& [name, h] : snap.histograms) {
      t.addRow({name, TextTable::withCommas(h.count),
                TextTable::fixed(h.mean(), 1), TextTable::fixed(h.quantile(0.5), 1),
                TextTable::fixed(h.quantile(0.95), 1),
                TextTable::fixed(h.quantile(0.99), 1),
                TextTable::fixed(h.max(), 0)});
    }
    out += t.render();
  }
  return out;
}

std::string SnapshotExporter::renderAlerts(
    const Snapshot& snap, const std::vector<std::string>& names) {
  std::string out;
  for (const auto& name : names) {
    for (const auto& [counter, v] : snap.counters) {
      if (counter != name || v == 0) continue;
      out += out.empty() ? "DEGRADED:" : "";
      out += ' ';
      out += name;
      out += '=';
      out += TextTable::withCommas(v);
    }
  }
  if (!out.empty()) out += '\n';
  return out;
}

namespace {

/// Prometheus metric name: [a-zA-Z0-9_] only, under the nfstrace_ prefix.
std::string promName(const std::string& name) {
  std::string out = "nfstrace_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

void promNumber(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out += buf;
}

}  // namespace

std::string SnapshotExporter::renderPrometheus(const Snapshot& snap) {
  std::string out;
  for (const auto& [name, v] : snap.counters) {
    std::string n = promName(name) + "_total";
    out += "# TYPE " + n + " counter\n";
    out += n;
    out += ' ';
    out += std::to_string(v);
    out += '\n';
  }
  for (const auto& [name, v] : snap.gauges) {
    std::string n = promName(name);
    out += "# TYPE " + n + " gauge\n";
    out += n;
    out += ' ';
    promNumber(out, v);
    out += '\n';
  }
  for (const auto& [name, h] : snap.histograms) {
    // Summaries, not native histograms: the log2 buckets reduce to the
    // interpolated quantiles the status table already shows.
    std::string n = promName(name);
    out += "# TYPE " + n + " summary\n";
    for (double q : {0.5, 0.95, 0.99}) {
      out += n;
      out += "{quantile=\"";
      promNumber(out, q);
      out += "\"} ";
      promNumber(out, h.quantile(q));
      out += '\n';
    }
    out += n + "_sum " + std::to_string(h.sum) + '\n';
    out += n + "_count " + std::to_string(h.count) + '\n';
  }
  return out;
}

std::string SnapshotExporter::renderJsonLine(const Snapshot& snap,
                                             std::uint64_t seqNo,
                                             std::int64_t uptimeUs) {
  JsonWriter w;
  w.beginObject();
  w.field("snapshot", seqNo);
  w.field("uptime_us", static_cast<std::int64_t>(uptimeUs));
  w.key("counters").beginObject();
  for (const auto& [name, v] : snap.counters) w.field(name, v);
  w.endObject();
  w.key("gauges").beginObject();
  for (const auto& [name, v] : snap.gauges) w.field(name, v);
  w.endObject();
  w.key("histograms").beginObject();
  for (const auto& [name, h] : snap.histograms) {
    w.key(name).beginObject();
    w.field("count", h.count);
    w.field("sum", h.sum);
    w.field("mean", h.mean());
    w.field("p50", h.quantile(0.5));
    w.field("p95", h.quantile(0.95));
    w.field("p99", h.quantile(0.99));
    w.field("max", h.max());
    // Sparse buckets: [low_edge, high_edge, count] triples, non-empty only.
    w.key("buckets").beginArray();
    for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      w.beginArray();
      w.value(HistogramSnapshot::bucketLow(i));
      w.value(HistogramSnapshot::bucketHigh(i));
      w.value(h.buckets[i]);
      w.endArray();
    }
    w.endArray();
    w.endObject();
  }
  w.endObject();
  w.endObject();
  return w.str();
}

}  // namespace nfstrace::obs
