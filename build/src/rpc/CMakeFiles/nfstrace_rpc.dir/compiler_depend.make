# Empty compiler generated dependencies file for nfstrace_rpc.
# This may be replaced when dependencies are built.
