# Empty compiler generated dependencies file for nfstrace_net.
# This may be replaced when dependencies are built.
