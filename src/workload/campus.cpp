#include "workload/campus.hpp"

#include <algorithm>
#include <cmath>

#include "util/config.hpp"

namespace nfstrace {

CampusConfig CampusConfig::fromFile(const std::string& path) {
  ConfigFile file = ConfigFile::load(path);
  CampusConfig cfg;
  cfg.users = static_cast<int>(file.getInt("users", cfg.users));
  cfg.deliveriesPerUserPeakHourly = file.getDouble(
      "deliveries_per_user_hour", cfg.deliveriesPerUserPeakHourly);
  cfg.popChecksPerUserPeakHourly = file.getDouble(
      "pop_checks_per_user_hour", cfg.popChecksPerUserPeakHourly);
  cfg.sessionsPerUserPeakHourly = file.getDouble(
      "sessions_per_user_hour", cfg.sessionsPerUserPeakHourly);
  cfg.mailboxMedianBytes =
      file.getDouble("mailbox_median_kb",
                     cfg.mailboxMedianBytes / 1024.0) * 1024.0;
  cfg.messageMedianBytes =
      file.getDouble("message_median_bytes", cfg.messageMedianBytes);
  cfg.sessionMeanLength = minutes(file.getDouble(
      "session_mean_minutes",
      toSeconds(cfg.sessionMeanLength) / 60.0));
  cfg.expungeInterval = minutes(file.getDouble(
      "expunge_minutes", toSeconds(cfg.expungeInterval) / 60.0));
  cfg.seed = static_cast<std::uint64_t>(
      file.getInt("seed", static_cast<std::int64_t>(cfg.seed)));
  return cfg;
}

CampusWorkload::CampusWorkload(CampusConfig config, SimEnvironment& env)
    : config_(config),
      env_(env),
      schedule_(WeeklySchedule::campus()),
      rng_(config_.seed) {}

void CampusWorkload::setup(MicroTime t0) {
  users_.resize(static_cast<std::size_t>(config_.users));
  InMemoryFs& fs = env_.fs();
  for (int i = 0; i < config_.users; ++i) {
    User& u = users_[static_cast<std::size_t>(i)];
    std::uint32_t uid = 2000 + static_cast<std::uint32_t>(i);
    char name[32];
    std::snprintf(name, sizeof(name), "u%04d", i);
    u.home = std::string("/home02/") + name;

    // Setup state is written directly to the file system (it predates the
    // capture); only subsequent activity appears in the trace.
    fs.mkdirs(u.home, uid, uid, t0 - days(30));
    auto inboxSize = static_cast<std::uint64_t>(std::min(
        rng_.lognormal(std::log(config_.mailboxMedianBytes),
                       config_.mailboxSigma),
        30.0 * 1024 * 1024));
    fs.mkfile(u.home + "/.inbox", inboxSize, uid, uid, t0 - days(1));
    fs.mkfile(u.home + "/.cshrc", 900, uid, uid, t0 - days(200));
    fs.mkfile(u.home + "/.login", 700, uid, uid, t0 - days(200));
    fs.mkfile(u.home + "/.pinerc",
              11 * 1024 + rng_.below(15 * 1024), uid, uid, t0 - days(40));
    fs.mkfile(u.home + "/.addressbook", 2048, uid, uid, t0 - days(60));
    fs.mkfile(u.home + "/.signature", 256, uid, uid, t0 - days(300));
    // A couple of saved-mail folders.
    fs.mkdirs(u.home + "/mail", uid, uid, t0 - days(90));
    u.folderSize = static_cast<std::uint64_t>(
        rng_.lognormal(std::log(500.0 * 1024), 1.0));
    fs.mkfile(u.home + "/mail/saved.mbox", u.folderSize, uid, uid,
              t0 - days(10));
  }
}

void CampusWorkload::scheduleNext(EventType type, int user, MicroTime after,
                                  double rate) {
  MicroTime t = schedule_.nextEvent(rng_, after, rate);
  if (t < endTime_) queue_.push({t, type, user});
}

void CampusWorkload::run(MicroTime start, MicroTime end) {
  endTime_ = end;
  for (int i = 0; i < config_.users; ++i) {
    scheduleNext(EventType::Delivery, i, start,
                 config_.deliveriesPerUserPeakHourly);
    scheduleNext(EventType::PopCheck, i, start,
                 config_.popChecksPerUserPeakHourly);
    scheduleNext(EventType::SessionStart, i, start,
                 config_.sessionsPerUserPeakHourly);
  }
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    switch (ev.type) {
      case EventType::Delivery:
        doDelivery(ev.t, ev.user);
        scheduleNext(EventType::Delivery, ev.user, ev.t,
                     config_.deliveriesPerUserPeakHourly);
        break;
      case EventType::PopCheck:
        doPopCheck(ev.t, ev.user);
        scheduleNext(EventType::PopCheck, ev.user, ev.t,
                     config_.popChecksPerUserPeakHourly);
        break;
      case EventType::SessionStart:
        doSessionStart(ev.t, ev.user);
        scheduleNext(EventType::SessionStart, ev.user, ev.t,
                     config_.sessionsPerUserPeakHourly);
        break;
      case EventType::SessionStep:
        doSessionStep(ev.t, ev.user);
        break;
    }
  }
}

bool CampusWorkload::ensureHandles(NfsClient& client, MicroTime& now,
                                   User& u) {
  // Handles are server-global; any client may resolve them.  The LOOKUP
  // traffic this generates is part of the workload.
  if (u.homeFh.len == 0) {
    auto fh = client.lookupPath(now, u.home);
    if (!fh) return false;
    u.homeFh = *fh;
  }
  if (u.inboxFh.len == 0) {
    auto fh = client.lookupPath(now, u.home + "/.inbox");
    if (!fh) return false;
    u.inboxFh = *fh;
  }
  if (u.folderFh.len == 0) {
    auto fh = client.lookupPath(now, u.home + "/mail/saved.mbox");
    if (!fh) return false;
    u.folderFh = *fh;
  }
  return true;
}

bool CampusWorkload::withLock(NfsClient& client, MicroTime& now, User& u,
                              const std::function<void(MicroTime&)>& body) {
  auto lock = client.create(now, u.homeFh, ".inbox.lock", /*exclusive=*/true);
  if (!lock) return false;  // somebody else holds it; skip this round
  body(now);
  client.remove(now, u.homeFh, ".inbox.lock");
  return true;
}

void CampusWorkload::doDelivery(MicroTime t, int user) {
  User& u = users_[static_cast<std::size_t>(user)];
  MicroTime now = t;
  NfsClient& client = smtp();
  client.setIdentity(2000 + static_cast<std::uint32_t>(user),
                     2000 + static_cast<std::uint32_t>(user));
  if (!ensureHandles(client, now, u)) return;
  auto msgSize = static_cast<std::uint64_t>(std::clamp(
      rng_.lognormal(std::log(config_.messageMedianBytes),
                     config_.messageSigma),
      300.0, 2.0 * 1024 * 1024));

  // Sendmail's NFS-safe hitching-post lock: create a uniquely-named
  // zero-length file, hard-link it to the dotlock name, and delete the
  // hitching post.  The unique names are why lock files make up half the
  // files referenced on CAMPUS.
  // The MTA cycles through a small set of per-user hitching names (its
  // queue-runner pids), so each user accumulates a handful of distinct
  // lock names -- about half of all files referenced on CAMPUS.
  char hitch[40];
  std::snprintf(hitch, sizeof(hitch), "lk%04d.%d.lock", user,
                ++lockCounter_ % 4);
  auto hfh = client.create(now, u.homeFh, hitch, /*exclusive=*/true);
  if (!hfh) return;
  bool locked = client.link(now, *hfh, u.homeFh, ".inbox.lock");
  client.remove(now, u.homeFh, hitch);
  if (!locked) {
    ++lockContention_;
    return;  // retried by the MTA queue on a later event
  }
  // Sendmail appends synchronously so the message is durable.
  client.append(now, u.inboxFh, msgSize, /*stable=*/true);
  client.remove(now, u.homeFh, ".inbox.lock");
  ++deliveries_;
}

void CampusWorkload::doPopCheck(MicroTime t, int user) {
  User& u = users_[static_cast<std::size_t>(user)];
  MicroTime now = t;
  NfsClient& client = pop();
  client.setIdentity(2000 + static_cast<std::uint32_t>(user),
                     2000 + static_cast<std::uint32_t>(user));
  if (!ensureHandles(client, now, u)) return;
  withLock(client, now, u, [&](MicroTime& inner) {
    rescanInbox(client, inner, u, &u.popLastMtime);
  });
  ++popChecks_;
}

void CampusWorkload::rescanInbox(NfsClient& client, MicroTime& now, User& u,
                                 MicroTime* mtimeSlot) {
  auto attrs = client.getattr(now, u.inboxFh, /*forceFresh=*/true);
  if (!attrs) return;
  MicroTime mtime = attrs->mtime.toMicro();
  if (*mtimeSlot == mtime) return;  // nothing new
  // The flat-file inbox was modified: NFS's file-granularity caching
  // invalidates the whole cached copy, and the mail client re-scans the
  // file front to back.  The scan is mostly sequential but hops over the
  // occasional already-parsed message body: short forward skips of a few
  // blocks — the paper's "sequential sub-runs separated by small seeks",
  // invisible to the loose (k=10) metric but not the strict one.
  std::vector<NfsClient::Extent> extents;
  std::uint64_t off = 0;
  while (off < attrs->size) {
    std::uint64_t chunk =
        (2 + rng_.below(9)) * static_cast<std::uint64_t>(kNfsBlockSize);
    chunk = std::min(chunk, attrs->size - off);
    extents.push_back({off, chunk});
    off += chunk;
    if (rng_.chance(0.35)) {
      off += (1 + rng_.below(3)) * static_cast<std::uint64_t>(kNfsBlockSize);
    }
  }
  client.readSegments(now, u.inboxFh, extents);
  *mtimeSlot = mtime;
}

void CampusWorkload::expungeInbox(NfsClient& client, MicroTime& now,
                                  User& u) {
  auto attrs = client.getattr(now, u.inboxFh, /*forceFresh=*/true);
  if (!attrs || attrs->size == 0) return;
  // Batch message removal: the client rewrites the surviving mailbox
  // contents in place and truncates the thin tail (>99% of CAMPUS block
  // deaths are overwrites).  The rewrite is not one smooth stream: the
  // client copies a stretch of surviving messages, then seeks — forward
  // or backward — to the next region it is compacting, so long write
  // runs average a sequentiality metric around 0.6 (paper Fig. 5).
  auto newSize = static_cast<std::uint64_t>(
      static_cast<double>(attrs->size) * rng_.uniform(0.96, 1.0));
  // Partition the surviving bytes into short stretches and write each
  // exactly once, but in a locally-shuffled order: the client copies a
  // few sequential blocks, then seeks forward or backward to the next
  // region it is compacting.  Every block is written once per expunge
  // (no intra-burst overwrites), which keeps block lifetimes tied to the
  // *inter*-expunge interval, as the paper observes.
  std::vector<NfsClient::Extent> extents;
  std::uint64_t pos = 0;
  while (pos < newSize) {
    std::uint64_t stretch =
        (2 + rng_.below(4)) * static_cast<std::uint64_t>(kNfsBlockSize);
    stretch = std::min(stretch, newSize - pos);
    extents.push_back({pos, stretch});
    pos += stretch;
  }
  // Bounded shuffle: displace stretches, creating seeks of tens of
  // blocks in both directions without double-writing any block.
  for (std::size_t i = 0; i + 1 < extents.size(); ++i) {
    std::size_t j = i + rng_.below(std::min<std::uint64_t>(
                            12, extents.size() - i));
    std::swap(extents[i], extents[j]);
  }
  // The rewrite is paced by the mail client parsing and the disk, not by
  // the wire: it dribbles out in bursts over hundreds of milliseconds,
  // so its seeks span any reasonable reorder window.
  for (std::size_t g = 0; g < extents.size(); g += 8) {
    std::vector<NfsClient::Extent> group(
        extents.begin() + static_cast<std::ptrdiff_t>(g),
        extents.begin() + static_cast<std::ptrdiff_t>(
                              std::min(g + 8, extents.size())));
    client.writeSegments(now, u.inboxFh, group);
    now += 6'000 + static_cast<MicroTime>(rng_.below(8'000));
  }
  if (newSize < attrs->size) client.truncate(now, u.inboxFh, newSize);
  u.session.lastSeenMtime = -1;  // our own write moved the mtime
}

void CampusWorkload::readFolderMessage(NfsClient& client, MicroTime& now,
                                        User& u) {
  if (u.folderSize < 64 * 1024) return;
  // Browse a few saved messages in one sitting: each message is read
  // sequentially, but the messages sit at scattered offsets, so the
  // bursts form runs the entire/sequential/random taxonomy calls random —
  // while actually being "long, completely sequential sub-runs separated
  // by seeks" (§5.1, §6.4).
  std::vector<NfsClient::Extent> extents;
  int messages = 1 + static_cast<int>(rng_.below(5));
  for (int m = 0; m < messages; ++m) {
    auto msgLen = static_cast<std::uint64_t>(std::clamp(
        rng_.lognormal(std::log(12.0 * 1024), 0.8), 2048.0, 128.0 * 1024));
    std::uint64_t maxStart = u.folderSize - std::min(u.folderSize, msgLen);
    std::uint64_t start = rng_.below(maxStart / kNfsBlockSize + 1) *
                          kNfsBlockSize;
    extents.push_back({start, msgLen});
  }
  client.readSegments(now, u.folderFh, extents);
}

void CampusWorkload::saveDotFiles(NfsClient& client, MicroTime& now,
                                  User& u) {
  // Pine rewrites its config and addressbook at exit: small whole-file
  // writes (the paper's 'entire' write runs).
  if (rng_.chance(0.45)) {
    if (auto fh = client.lookupPath(now, u.home + "/.pinerc")) {
      auto attrs = client.getattr(now, *fh);
      std::uint64_t size = attrs ? attrs->size : 12 * 1024;
      client.writeRange(now, *fh, 0, size);
    }
  }
  if (rng_.chance(0.25)) {
    if (auto fh = client.lookupPath(now, u.home + "/.addressbook")) {
      client.writeRange(now, *fh, 0, 2048);
    }
  }
}

void CampusWorkload::composeMessage(NfsClient& client, MicroTime& now,
                                    User& u) {
  char name[32];
  std::snprintf(name, sizeof(name), "pico.%06d", ++composeCounter_);
  auto fh = client.create(now, u.homeFh, name, /*exclusive=*/false);
  if (!fh) return;
  auto size = static_cast<std::uint64_t>(std::clamp(
      rng_.lognormal(std::log(2000.0), 0.9), 100.0, 64.0 * 1024));
  // The composer saves the draft a few times as the user types.
  int saves = 1 + static_cast<int>(rng_.below(3));
  for (int i = 0; i < saves; ++i) {
    auto part = size * static_cast<std::uint64_t>(i + 1) /
                static_cast<std::uint64_t>(saves);
    client.writeRange(now, *fh, 0, std::max<std::uint64_t>(part, 100));
    now += seconds(rng_.uniform(5.0, 40.0));
  }
  client.readFile(now, *fh);  // the mailer reads the draft to send it
  client.remove(now, u.homeFh, name);
}

void CampusWorkload::doSessionStart(MicroTime t, int user) {
  User& u = users_[static_cast<std::size_t>(user)];
  if (u.session.active) return;  // already logged in
  MicroTime now = t;
  NfsClient& client = login();
  client.setIdentity(2000 + static_cast<std::uint32_t>(user),
                     2000 + static_cast<std::uint32_t>(user));
  if (!ensureHandles(client, now, u)) return;

  // Login: shell dot files.
  for (const char* dot : {".cshrc", ".login"}) {
    if (auto fh = client.lookupPath(now, u.home + "/" + dot)) {
      client.readFile(now, *fh);
    }
  }
  // Pine startup: config, then a locked scan of the inbox.
  if (auto fh = client.lookupPath(now, u.home + "/.pinerc")) {
    client.readFile(now, *fh);
  }
  u.session.lastSeenMtime = -1;
  withLock(client, now, u, [&](MicroTime& inner) {
    rescanInbox(client, inner, u, &u.session.lastSeenMtime);
  });

  MicroTime length = static_cast<MicroTime>(
      rng_.exponential(static_cast<double>(config_.sessionMeanLength)));
  length = std::clamp<MicroTime>(length, minutes(5), hours(2));
  u.session.active = true;
  u.session.endTime = now + length;
  u.session.nextRescan = now + config_.rescanInterval;
  u.session.nextExpunge =
      now + static_cast<MicroTime>(rng_.exponential(
                static_cast<double>(config_.expungeInterval)));
  u.session.composePending =
      static_cast<int>(rng_.poisson(config_.composePerSession));
  ++sessions_;
  queue_.push({std::min({u.session.nextRescan, u.session.nextExpunge,
                         u.session.endTime}),
               EventType::SessionStep, user});
}

void CampusWorkload::doSessionStep(MicroTime t, int user) {
  User& u = users_[static_cast<std::size_t>(user)];
  if (!u.session.active) return;
  MicroTime now = t;
  NfsClient& client = login();
  client.setIdentity(2000 + static_cast<std::uint32_t>(user),
                     2000 + static_cast<std::uint32_t>(user));

  if (t >= u.session.endTime) {
    // Exit: final expunge (mailbox rewrite) under the lock, config saves,
    // then logout.
    withLock(client, now, u, [&](MicroTime& inner) {
      expungeInbox(client, inner, u);
    });
    saveDotFiles(client, now, u);
    u.session.active = false;
    return;
  }

  if (t >= u.session.nextExpunge) {
    withLock(client, now, u, [&](MicroTime& inner) {
      expungeInbox(client, inner, u);
    });
    u.session.nextExpunge =
        now + static_cast<MicroTime>(rng_.exponential(
                  static_cast<double>(config_.expungeInterval)));
  } else if (t >= u.session.nextRescan) {
    withLock(client, now, u, [&](MicroTime& inner) {
      rescanInbox(client, inner, u, &u.session.lastSeenMtime);
    });
    if (u.session.composePending > 0 && rng_.chance(0.35)) {
      composeMessage(client, now, u);
      --u.session.composePending;
    }
    // Users browse saved mail between inbox checks.
    if (rng_.chance(0.5)) readFolderMessage(client, now, u);
    // Viewing or extracting an attachment writes a whole new file into
    // the home directory (§6.1.2: "viewing or extracting attachments may
    // also create files") — an 'entire' write run.
    if (rng_.chance(0.12)) {
      char aname[40];
      std::snprintf(aname, sizeof(aname), "attach%05d.dat",
                    ++composeCounter_);
      if (auto afh = client.create(now, u.homeFh, aname, false)) {
        auto size = static_cast<std::uint64_t>(std::clamp(
            rng_.lognormal(std::log(14.0 * 1024), 1.0), 2048.0,
            1.5 * 1024 * 1024));
        client.writeRange(now, *afh, 0, size);
      }
    }
    u.session.nextRescan = now + config_.rescanInterval;
  }

  queue_.push({std::min({u.session.nextRescan, u.session.nextExpunge,
                         u.session.endTime}),
               EventType::SessionStep, user});
}

}  // namespace nfstrace
