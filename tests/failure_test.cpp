// Failure injection: the sniffer and its decode stack must survive
// corrupted, truncated, bit-flipped, and adversarial input without
// crashing and without fabricating records — a tap on a production
// network sees all of these.
#include <gtest/gtest.h>

#include "server/portmap.hpp"
#include "sniffer/sniffer.hpp"
#include "util/rng.hpp"
#include "workload/sim.hpp"

namespace nfstrace {
namespace {

CapturedPacket pkt(MicroTime ts, std::vector<std::uint8_t> data) {
  CapturedPacket p;
  p.ts = ts;
  p.origLen = static_cast<std::uint32_t>(data.size());
  p.data = std::move(data);
  return p;
}

std::vector<std::uint8_t> validNfsCallFrame(std::uint32_t xid) {
  XdrEncoder enc;
  AuthUnix cred;
  cred.uid = 1;
  cred.gid = 1;
  encodeRpcCall(enc, xid, kNfsProgram, 3,
                static_cast<std::uint32_t>(Proc3::Getattr), cred);
  encodeCall3(enc, GetattrArgs{FileHandle::make(1, 7, 1)});
  return buildUdpFrame(makeIp(10, 1, 0, 2), 1023, makeIp(10, 0, 0, 1), 2049,
                       enc.bytes());
}

TEST(FailureInjection, RandomBytesNeverCrashSniffer) {
  std::uint64_t emitted = 0;
  Sniffer sniffer({}, [&](const TraceRecord&) { ++emitted; });
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> junk(rng.below(300));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    sniffer.onFrame(pkt(i, std::move(junk)));
  }
  sniffer.flush();
  EXPECT_EQ(emitted, 0u);
  EXPECT_EQ(sniffer.stats().framesSeen, 2000u);
}

TEST(FailureInjection, BitFlippedFramesAreContained) {
  // Flip one byte at every position of a valid frame; the sniffer must
  // never crash, and any record it does emit must carry the right op or
  // none at all.
  auto frame = validNfsCallFrame(42);
  Rng rng(7);
  for (std::size_t flip = 0; flip < frame.size(); ++flip) {
    Sniffer sniffer({}, [&](const TraceRecord&) {});
    auto mutated = frame;
    mutated[flip] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    sniffer.onFrame(pkt(0, std::move(mutated)));
    sniffer.flush();
  }
  SUCCEED();
}

TEST(FailureInjection, TruncatedFramesAreContained) {
  auto frame = validNfsCallFrame(43);
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    Sniffer sniffer({}, [&](const TraceRecord&) {});
    std::vector<std::uint8_t> shortFrame(frame.begin(),
                                         frame.begin() +
                                             static_cast<std::ptrdiff_t>(cut));
    sniffer.onFrame(pkt(0, std::move(shortFrame)));
    sniffer.flush();
  }
  SUCCEED();
}

TEST(FailureInjection, DuplicatedCallIsOneRecord) {
  // Retransmitted calls (same xid) must not double-emit when the single
  // reply arrives.
  std::uint64_t emitted = 0;
  Sniffer sniffer({}, [&](const TraceRecord&) { ++emitted; });
  auto frame = validNfsCallFrame(77);
  sniffer.onFrame(pkt(0, frame));
  sniffer.onFrame(pkt(10, frame));  // retransmission

  XdrEncoder reply;
  encodeRpcReplySuccess(reply, 77);
  GetattrRes res;
  res.status = NfsStat::ErrStale;
  encodeReply3(reply, Proc3::Getattr, NfsReplyRes{res});
  auto replyFrame = buildUdpFrame(makeIp(10, 0, 0, 1), 2049,
                                  makeIp(10, 1, 0, 2), 1023, reply.bytes());
  sniffer.onFrame(pkt(20, replyFrame));
  sniffer.flush();
  EXPECT_EQ(emitted, 1u);
}

TEST(FailureInjection, PendingCallExpiresAfterTimeout) {
  std::vector<TraceRecord> out;
  Sniffer::Config cfg;
  cfg.pendingTimeout = seconds(5);
  Sniffer sniffer(cfg, [&](const TraceRecord& r) { out.push_back(r); });
  sniffer.onFrame(pkt(0, validNfsCallFrame(1)));
  // A later unrelated frame advances the clock past the timeout.
  sniffer.onFrame(pkt(seconds(10), validNfsCallFrame(2)));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].hasReply);
  EXPECT_EQ(out[0].xid, 1u);
  EXPECT_EQ(sniffer.stats().expiredCalls, 1u);
}

TEST(FailureInjection, TcpStreamLossResyncsAndRecovers) {
  // Drop a TCP segment mid-stream; later records must still decode after
  // the reassembler resynchronizes.
  SimEnvironment::Config cfg;
  cfg.clientHosts = 1;
  cfg.useMirror = true;
  cfg.mirrorConfig.bandwidthBitsPerSec = 80e6;
  cfg.mirrorConfig.bufferBytes = 128 * 1024;
  SimEnvironment env(cfg);
  env.fs().mkfile("/a", 2 << 20, 1, 1, 0);
  env.fs().mkfile("/b", 64 * 1024, 1, 1, 0);
  MicroTime now = seconds(1);
  NfsClient& c = env.client(0);
  auto fa = *c.lookupPath(now, "/a");
  c.readFile(now, fa);  // the burst that overflows the mirror
  now += seconds(30);   // quiet period: mirror drains
  auto fb = *c.lookupPath(now, "/b");
  c.readFile(now, fb);  // must be captured cleanly after resync
  env.finishCapture();

  ASSERT_GT(env.mirror()->dropped(), 0u);
  std::uint64_t lateReads = 0;
  for (const auto& r : env.records()) {
    if (r.op == NfsOp::Read && r.ts > seconds(25) && r.hasReply) ++lateReads;
  }
  EXPECT_EQ(lateReads, (64 * 1024) / 8192);
}

TEST(FailureInjection, PortmapRejectsGarbage) {
  Portmapper pm;
  XdrEncoder garbage;
  garbage.putUint32(1);  // too short for a GETPORT query
  XdrDecoder dec(garbage.bytes());
  XdrEncoder out;
  EXPECT_THROW(pm.handle(PortmapProc::Getport, dec, out), XdrError);
}

TEST(FailureInjection, PortmapLifecycle) {
  Portmapper pm;
  pm.set({kNfsProgram, 3, 17, 2049});
  EXPECT_EQ(pm.getport(kNfsProgram, 3, 17), 2049u);
  EXPECT_EQ(pm.getport(kNfsProgram, 3, 6), 0u);   // wrong proto
  EXPECT_EQ(pm.getport(kNfsProgram, 4, 17), 0u);  // wrong version
  pm.unset(kNfsProgram, 3);
  EXPECT_EQ(pm.getport(kNfsProgram, 3, 17), 0u);
}

TEST(FailureInjection, PortmapWireGetport) {
  InMemoryFs fs{InMemoryFs::Config{}};
  NfsServer server(fs);
  Portmapper pm;
  pm.set({kNfsProgram, 3, 17, 2049});
  NfsTransport transport({}, server, nullptr, 1, nullptr, &pm);
  MicroTime now = seconds(1);
  EXPECT_EQ(transport.getport(now, kNfsProgram, 3, 17), 2049u);
  EXPECT_EQ(transport.getport(now, kMountProgram, 3, 17), 0u);
}

TEST(FailureInjection, EnvironmentRegistersBootServices) {
  SimEnvironment::Config cfg;
  cfg.clientHosts = 1;
  SimEnvironment env(cfg);
  EXPECT_EQ(env.portmap().getport(kNfsProgram, 3, 6), 2049u);
  EXPECT_EQ(env.portmap().getport(kMountProgram, 3, 17), 635u);
}

TEST(FailureInjection, ServerErrorsSurfaceInTrace) {
  // A call that fails on the server must appear in the trace with its
  // error status, not vanish.
  SimEnvironment::Config cfg;
  cfg.clientHosts = 1;
  SimEnvironment env(cfg);
  MicroTime now = seconds(1);
  NfsClient& c = env.client(0);
  EXPECT_FALSE(c.lookupPath(now, "/no/such/path").has_value());
  env.finishCapture();
  bool sawError = false;
  for (const auto& r : env.records()) {
    if (r.op == NfsOp::Lookup && r.status == NfsStat::ErrNoEnt) {
      sawError = true;
    }
  }
  EXPECT_TRUE(sawError);
}

}  // namespace
}  // namespace nfstrace
