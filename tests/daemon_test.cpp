// Crash-recoverable continuous-capture daemon: the manifest must be
// atomic (a crash at any byte leaves a loadable state), rotation must be
// checkpoint-aligned and gap-free, startup recovery must salvage torn
// active segments with exact §4.1.4 loss accounting, and the invariant
//
//   captured == sealed + recovered + lost
//
// must hold at every durable instant — including across SIGKILL storms
// driven by the supervisor.  The truncation tests literally crash the
// on-disk state at every byte offset and require a resumable daemon.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "daemon/daemon.hpp"
#include "daemon/supervisor.hpp"
#include "fault/fault.hpp"
#include "net/packet.hpp"
#include "trace/tracefile.hpp"

namespace nfstrace::daemon {
namespace {

namespace fs = std::filesystem;

TraceRecord record(std::uint32_t i) {
  TraceRecord r;
  r.ts = 1000 * (static_cast<MicroTime>(i) + 1);
  r.client = makeIp(10, 1, 0, 5);
  r.server = makeIp(10, 0, 0, 1);
  r.xid = 0x100 + i;
  r.vers = 3;
  r.op = NfsOp::Getattr;
  r.uid = 2042;
  r.gid = 200;
  r.fh = FileHandle::make(2, i, 1);
  r.hasReply = true;
  r.replyTs = r.ts + 300;
  r.status = NfsStat::Ok;
  return r;
}

std::string readFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void writeFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// All records physically present in the daemon's sealed segments,
/// concatenated in seq order.
std::vector<TraceRecord> sealedRecords(const TraceDaemon& d) {
  std::vector<TraceRecord> out;
  for (const std::string& path : d.segmentPaths()) {
    for (const TraceRecord& r : TraceReader::readAll(path)) out.push_back(r);
  }
  return out;
}

/// The concatenated sealed stream must be exactly record(0..n-1): no
/// gaps, no duplicates, no reordering.
void expectExactStream(const std::vector<TraceRecord>& recs, std::uint32_t n) {
  ASSERT_EQ(recs.size(), n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ASSERT_EQ(recs[i].xid, 0x100u + i) << "at stream index " << i;
    ASSERT_EQ(recs[i].ts, 1000 * (static_cast<MicroTime>(i) + 1));
  }
}

class DaemonTest : public ::testing::Test {
 protected:
  std::string dir_ =
      (fs::temp_directory_path() /
       ("daemon_test_" + std::to_string(::getpid()) + "_" +
        ::testing::UnitTest::GetInstance()->current_test_info()->name()))
          .string();

  void SetUp() override { fs::remove_all(dir_); }
  void TearDown() override { fs::remove_all(dir_); }

  /// Small, fast defaults: v2 with short extents, no fsync (these tests
  /// crash on purpose hundreds of times).
  TraceDaemon::Config base() const {
    TraceDaemon::Config cfg;
    cfg.dir = dir_;
    cfg.prefix = "seg";
    cfg.format = TraceWriter::Format::V2;
    cfg.v2ExtentRecords = 8;
    cfg.checkpointEveryRecords = 8;
    cfg.fsyncOnSeal = false;
    cfg.backoffInitialUs = 1;
    cfg.backoffMaxUs = 2;
    return cfg;
  }
};

// ---------------------------------------------------------------------------
// Manifest: atomic round-trip and damage detection.

TEST(ManifestFile, RoundTripPreservesEverything) {
  std::string path =
      (fs::temp_directory_path() /
       ("daemon_manifest_rt_" + std::to_string(::getpid())))
          .string();
  Manifest m;
  m.nextSeq = 7;
  m.books = {500, 430, 50, 20};
  ASSERT_TRUE(m.books.balanced());
  m.segments.push_back({1, "seg-000001.trace", "v2", 400, 12345, 0, 1754650000});
  m.segments.push_back({6, "seg-000006.trace", "text", 80, 999, 400, 1754650060});
  m.save(path);

  Manifest got;
  ASSERT_EQ(Manifest::load(path, got), Manifest::LoadStatus::Ok);
  EXPECT_EQ(got.nextSeq, 7u);
  EXPECT_EQ(got.books.captured, 500u);
  EXPECT_EQ(got.books.sealed, 430u);
  EXPECT_EQ(got.books.recovered, 50u);
  EXPECT_EQ(got.books.lost, 20u);
  ASSERT_EQ(got.segments.size(), 2u);
  EXPECT_EQ(got.segments[0].seq, 1u);
  EXPECT_EQ(got.segments[0].file, "seg-000001.trace");
  EXPECT_EQ(got.segments[0].format, "v2");
  EXPECT_EQ(got.segments[0].records, 400u);
  EXPECT_EQ(got.segments[0].bytes, 12345u);
  EXPECT_EQ(got.segments[0].first, 0u);
  EXPECT_EQ(got.segments[0].sealedUnix, 1754650000);
  EXPECT_EQ(got.segments[1].seq, 6u);
  EXPECT_EQ(got.streamPos(), 480u);
  EXPECT_EQ(got.render(), m.render());
  std::remove(path.c_str());
}

TEST(ManifestFile, EveryTruncationAndBitflipReadsAsDamagedNeverGarbage) {
  std::string path =
      (fs::temp_directory_path() /
       ("daemon_manifest_dmg_" + std::to_string(::getpid())))
          .string();
  Manifest m;
  m.nextSeq = 3;
  m.books = {250, 200, 30, 20};
  m.segments.push_back({1, "seg-000001.trace", "v2", 120, 4096, 0, 1754650000});
  m.segments.push_back({2, "seg-000002.trace", "v2", 110, 4000, 120, 1754650060});
  std::string text = m.render();

  Manifest out;
  EXPECT_EQ(Manifest::load(path, out), Manifest::LoadStatus::Missing);

  // A crash can truncate a non-atomic write at any byte; the CRC trailer
  // must reject every prefix (only the complete file is Ok).
  for (std::size_t len = 0; len < text.size(); ++len) {
    writeFileBytes(path, text.substr(0, len));
    EXPECT_EQ(Manifest::load(path, out), Manifest::LoadStatus::Damaged)
        << "prefix of " << len << " bytes parsed as Ok";
  }
  writeFileBytes(path, text);
  EXPECT_EQ(Manifest::load(path, out), Manifest::LoadStatus::Ok);

  // Any single-bit corruption anywhere in the file must be caught.
  for (std::size_t i = 0; i < text.size(); ++i) {
    std::string bad = text;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    writeFileBytes(path, bad);
    EXPECT_EQ(Manifest::load(path, out), Manifest::LoadStatus::Damaged)
        << "bit flip at byte " << i << " parsed as Ok";
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Rotation and resume.

TEST_F(DaemonTest, RotationSealsCheckpointAlignedSegments) {
  auto cfg = base();
  cfg.rotateRecords = 100;
  TraceDaemon d(cfg);
  for (std::uint32_t i = 0; i < 350; ++i) d.submit(record(i));

  // Three segments sealed by rotation; 50 records still active.
  EXPECT_EQ(d.books().sealed, 300u);
  EXPECT_EQ(d.activeRecords(), 50u);
  d.stop();

  const Manifest& m = d.manifest();
  ASSERT_EQ(m.segments.size(), 4u);
  std::uint64_t first = 0;
  for (std::size_t i = 0; i < m.segments.size(); ++i) {
    EXPECT_EQ(m.segments[i].seq, i + 1) << "sealed seq must be gap-free";
    EXPECT_EQ(m.segments[i].first, first);
    EXPECT_EQ(m.segments[i].format, "v2");
    first += m.segments[i].records;
    EXPECT_TRUE(fs::exists(dir_ + "/" + m.segments[i].file));
  }
  EXPECT_EQ(m.segments[3].records, 50u);
  EXPECT_TRUE(d.books().balanced());
  EXPECT_EQ(d.books().captured, 350u);
  EXPECT_EQ(d.books().sealed, 350u);
  EXPECT_EQ(d.streamPos(), 350u);

  // No torn state left behind, and the journal on disk matches memory.
  for (const auto& e : fs::directory_iterator(dir_)) {
    EXPECT_NE(e.path().extension(), ".part");
    EXPECT_NE(e.path().extension(), ".recov");
  }
  Manifest onDisk;
  ASSERT_EQ(Manifest::load(d.manifestPath(), onDisk), Manifest::LoadStatus::Ok);
  EXPECT_EQ(onDisk.render(), m.render());

  expectExactStream(sealedRecords(d), 350);
}

TEST_F(DaemonTest, RestartResumesWithNoGapsOrDuplicates) {
  auto cfg = base();
  cfg.rotateRecords = 100;
  {
    TraceDaemon d(cfg);
    for (std::uint32_t i = 0; i < 250; ++i) d.submit(record(i));
    d.stop();
    EXPECT_EQ(d.streamPos(), 250u);
  }
  TraceDaemon d(cfg);
  EXPECT_EQ(d.recovery().manifestStatus, Manifest::LoadStatus::Ok);
  EXPECT_EQ(d.recovery().tornSegments, 0u);
  EXPECT_EQ(d.recovery().adoptedSegments, 0u);
  ASSERT_EQ(d.streamPos(), 250u);
  for (std::uint32_t i = 250; i < 400; ++i) d.submit(record(i));
  d.stop();

  EXPECT_TRUE(d.books().balanced());
  EXPECT_EQ(d.books().sealed, 400u);
  ASSERT_EQ(d.manifest().segments.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(d.manifest().segments[i].seq, i + 1);
  }
  expectExactStream(sealedRecords(d), 400);
}

// ---------------------------------------------------------------------------
// Crash matrix.

TEST_F(DaemonTest, TruncatedManifestAtEveryByteOffsetIsAlwaysResumable) {
  auto cfg = base();
  cfg.rotateRecords = 50;
  {
    TraceDaemon d(cfg);
    for (std::uint32_t i = 0; i < 100; ++i) d.submit(record(i));
    d.stop();
  }
  std::string manifestPath = TraceDaemon::manifestPathFor(dir_, "seg");
  std::string manifestText = readFileBytes(manifestPath);
  std::string seg1 = readFileBytes(dir_ + "/seg-000001.trace");
  std::string seg2 = readFileBytes(dir_ + "/seg-000002.trace");
  ASSERT_GT(manifestText.size(), 100u);

  for (std::size_t off = 0; off <= manifestText.size(); ++off) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    writeFileBytes(dir_ + "/seg-000001.trace", seg1);
    writeFileBytes(dir_ + "/seg-000002.trace", seg2);
    writeFileBytes(manifestPath, manifestText.substr(0, off));

    // Whatever the crash left of the manifest, the daemon must come back
    // with the exact stream position: the full file parses, any prefix
    // reads Damaged and the books are rebuilt from the directory scan.
    TraceDaemon d(cfg);
    EXPECT_TRUE(d.books().balanced()) << "manifest truncated at " << off;
    EXPECT_EQ(d.streamPos(), 100u) << "manifest truncated at " << off;
    EXPECT_EQ(d.manifest().segments.size(), 2u);
    if (off < manifestText.size()) {
      EXPECT_EQ(d.recovery().manifestStatus, Manifest::LoadStatus::Damaged);
      EXPECT_TRUE(d.recovery().rebuiltFromScan);
    } else {
      EXPECT_EQ(d.recovery().manifestStatus, Manifest::LoadStatus::Ok);
    }
    d.submit(record(100));
    d.stop();
    EXPECT_TRUE(d.books().balanced());
    EXPECT_EQ(d.streamPos(), 101u);
  }
}

TEST_F(DaemonTest, TruncatedActiveSegmentAtEveryByteOffsetIsAlwaysResumable) {
  // A fully written (but never renamed) part: crash-before-rename with
  // the tear at every possible byte.
  std::string whole =
      (fs::temp_directory_path() /
       ("daemon_part_bytes_" + std::to_string(::getpid())))
          .string();
  {
    TraceWriter::Options w;
    w.format = TraceWriter::Format::V2;
    w.v2ExtentRecords = 8;
    TraceWriter writer(whole, w);
    for (std::uint32_t i = 0; i < 24; ++i) writer.write(record(i));
    writer.finalize(false);
  }
  std::string bytes = readFileBytes(whole);
  std::remove(whole.c_str());
  ASSERT_GT(bytes.size(), 0u);

  auto cfg = base();
  for (std::size_t off = 0; off <= bytes.size(); ++off) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    writeFileBytes(dir_ + "/seg-000001.part", bytes.substr(0, off));

    TraceDaemon d(cfg);
    ASSERT_TRUE(d.books().balanced()) << "part truncated at " << off;
    std::uint64_t rec = d.books().recovered;
    EXPECT_LE(rec, 24u);
    EXPECT_EQ(d.streamPos(), rec);
    if (rec > 0) {
      // Whatever was salvaged is an exact prefix of the stream, sealed
      // under the same sequence number; the fresh active part moved on
      // to seq 2.
      EXPECT_EQ(d.recovery().tornSegments, 1u);
      EXPECT_FALSE(fs::exists(dir_ + "/seg-000001.part"));
      auto recs = TraceReader::readAll(dir_ + "/seg-000001.trace");
      ASSERT_EQ(recs.size(), rec);
      for (std::uint64_t i = 0; i < rec; ++i) {
        ASSERT_EQ(recs[i].xid, 0x100u + i) << "part truncated at " << off;
      }
    }
    // The daemon keeps capturing from the exact resume point.
    for (std::uint32_t i = static_cast<std::uint32_t>(rec); i < 30; ++i) {
      d.submit(record(i));
    }
    d.stop();
    EXPECT_TRUE(d.books().balanced());
    EXPECT_EQ(d.streamPos(), 30u) << "part truncated at " << off;
    expectExactStream(sealedRecords(d), 30);
  }
}

TEST_F(DaemonTest, AdoptsSealedSegmentMissingFromManifest) {
  auto cfg = base();
  cfg.rotateRecords = 50;
  {
    TraceDaemon d(cfg);
    for (std::uint32_t i = 0; i < 100; ++i) d.submit(record(i));
    d.stop();
  }
  // Crash window: segment 3 was renamed sealed but the journal write
  // never happened.
  {
    TraceWriter::Options w;
    w.format = TraceWriter::Format::V2;
    w.v2ExtentRecords = 8;
    TraceWriter writer(dir_ + "/seg-000003.trace", w);
    for (std::uint32_t i = 100; i < 125; ++i) writer.write(record(i));
    writer.finalize(false);
  }

  TraceDaemon d(cfg);
  EXPECT_EQ(d.recovery().adoptedSegments, 1u);
  EXPECT_TRUE(d.books().balanced());
  EXPECT_EQ(d.books().sealed, 125u);
  EXPECT_EQ(d.streamPos(), 125u);
  ASSERT_EQ(d.manifest().segments.size(), 3u);
  EXPECT_EQ(d.manifest().segments[2].seq, 3u);
  EXPECT_EQ(d.manifest().segments[2].records, 25u);
  EXPECT_GE(d.manifest().nextSeq, 4u);
  expectExactStream(sealedRecords(d), 125);
}

TEST_F(DaemonTest, RemovesStaleTemporariesWithoutDoubleCounting) {
  auto cfg = base();
  cfg.rotateRecords = 50;
  {
    TraceDaemon d(cfg);
    for (std::uint32_t i = 0; i < 50; ++i) d.submit(record(i));
    d.stop();
  }
  // A part left beside its already-sealed twin (crash between rename and
  // unlink is impossible — rename IS the unlink — but a confused restart
  // or copy can leave one), plus interrupted salvage/compaction temps.
  writeFileBytes(dir_ + "/seg-000001.part", "torn garbage");
  writeFileBytes(dir_ + "/seg-000001.recov", "half a salvage");
  writeFileBytes(dir_ + "/seg-000001.trace.compact", "half a compaction");

  TraceDaemon d(cfg);
  EXPECT_GE(d.recovery().staleFilesRemoved, 3u);
  EXPECT_TRUE(d.books().balanced());
  EXPECT_EQ(d.books().sealed, 50u);
  EXPECT_EQ(d.books().recovered, 0u) << "stale part must not be salvaged";
  EXPECT_EQ(d.streamPos(), 50u);
  EXPECT_FALSE(fs::exists(dir_ + "/seg-000001.part"));
  EXPECT_FALSE(fs::exists(dir_ + "/seg-000001.recov"));
  EXPECT_FALSE(fs::exists(dir_ + "/seg-000001.trace.compact"));
  d.stop();
}

// ---------------------------------------------------------------------------
// Degraded mode: the daemon survives a dead disk with exact accounting.

TEST_F(DaemonTest, PermanentEnospcDegradesToSheddingWithExactBooks) {
  FaultPlan plan;
  plan.seed = 5;
  plan.ioEnospcRate = 0.30;  // first writes land, then an endless episode
  plan.ioEnospcStreak = 1u << 30;
  IoFaultInjector inj(plan);

  auto cfg = base();
  cfg.faults = &inj;
  cfg.maxRetries = 2;
  cfg.reopenAfterSheds = 16;
  TraceDaemon d(cfg);
  for (std::uint32_t i = 0; i < 200; ++i) {
    d.submit(record(i));
    ASSERT_TRUE(d.books().balanced()) << "after record " << i;
  }
  EXPECT_TRUE(d.degraded());
  EXPECT_GT(d.recordsShed(), 0u);
  d.stop();

  // Every one of the 200 records has exactly one durable disposition.
  EXPECT_TRUE(d.books().balanced());
  EXPECT_EQ(d.books().captured, 200u);
  EXPECT_EQ(d.books().sealed + d.books().recovered + d.books().lost, 200u);
  Manifest onDisk;
  ASSERT_EQ(Manifest::load(d.manifestPath(), onDisk), Manifest::LoadStatus::Ok);
  EXPECT_TRUE(onDisk.books.balanced());
}

TEST_F(DaemonTest, TransientEnospcEpisodeRecoversAndKeepsCapturing) {
  FaultPlan plan;
  plan.seed = 9;
  plan.ioEnospcRate = 0.02;
  plan.ioEnospcStreak = 50;  // the disk drains after 50 failed attempts
  IoFaultInjector inj(plan);

  auto cfg = base();
  cfg.faults = &inj;
  cfg.maxRetries = 2;
  cfg.reopenAfterSheds = 8;
  cfg.rotateRecords = 64;
  TraceDaemon d(cfg);
  for (std::uint32_t i = 0; i < 600; ++i) {
    d.submit(record(i));
    ASSERT_TRUE(d.books().balanced()) << "after record " << i;
  }
  d.stop();

  EXPECT_GT(inj.stats().enospcEpisodes, 0u);
  // The books stay balanced no matter where the episodes landed.  If the
  // drain itself hit a dead disk, the in-flight records stay in the torn
  // part for the next incarnation — they are not silently double- or
  // zero-counted.
  EXPECT_TRUE(d.books().balanced());
  EXPECT_LE(d.books().captured, 600u);
  EXPECT_EQ(sealedRecords(d).size(), d.streamPos());

  // Restart on a healthy disk: startup recovery folds whatever the first
  // daemon left torn.  Mid-run sheds are holes a live capture can never
  // refill, so the contract here is weaker than the crash-only tests':
  // every sealed record appears exactly once, in order — losses are
  // gaps, never duplicates or reordering.
  cfg.faults = nullptr;
  TraceDaemon d2(cfg);
  EXPECT_TRUE(d2.books().balanced());
  auto recs = sealedRecords(d2);
  EXPECT_EQ(recs.size(), d2.streamPos());
  for (std::size_t i = 1; i < recs.size(); ++i) {
    ASSERT_LT(recs[i - 1].xid, recs[i].xid) << "duplicate or reordered";
  }
  d2.stop();
}

// ---------------------------------------------------------------------------
// Retention and compaction.

TEST_F(DaemonTest, RetentionRetiresOldestWithoutRewindingTheStream) {
  std::int64_t clock = 1'000'000;
  auto cfg = base();
  cfg.rotateRecords = 50;
  cfg.retention.maxSegments = 2;
  cfg.wallClock = [&clock] { return clock; };
  TraceDaemon d(cfg);
  for (std::uint32_t i = 0; i < 300; ++i) d.submit(record(i));
  d.stop();

  ASSERT_EQ(d.manifest().segments.size(), 2u);
  EXPECT_EQ(d.manifest().segments[0].seq, 5u);
  EXPECT_EQ(d.manifest().segments[1].seq, 6u);
  EXPECT_EQ(d.books().sealed, 300u) << "retirement is policy, not loss";
  EXPECT_EQ(d.streamPos(), 300u);
  EXPECT_TRUE(d.books().balanced());
  std::size_t sealedOnDisk = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    if (e.path().extension() == ".trace") ++sealedOnDisk;
  }
  EXPECT_EQ(sealedOnDisk, 2u);

  // Age-based retirement with an injected clock: everything ages out.
  clock += 10'000;
  auto cfg2 = base();
  cfg2.retention.maxAgeSec = 100;
  cfg2.wallClock = [&clock] { return clock; };
  TraceDaemon d2(cfg2);
  d2.maintain();
  EXPECT_EQ(d2.manifest().segments.size(), 0u);
  EXPECT_EQ(d2.streamPos(), 300u) << "age retirement must not rewind";
  EXPECT_TRUE(d2.books().balanced());
  d2.stop();
}

TEST_F(DaemonTest, CompactionRewritesV1SegmentsToV2Verified) {
  auto cfg = base();
  cfg.format = TraceWriter::Format::Text;
  cfg.rotateRecords = 100;
  cfg.retention.compactAfterSec = 0;  // cold tier starts immediately
  TraceDaemon d(cfg);
  for (std::uint32_t i = 0; i < 250; ++i) d.submit(record(i));
  d.stop();

  ASSERT_EQ(d.manifest().segments.size(), 3u);
  for (const SegmentInfo& s : d.manifest().segments) {
    EXPECT_EQ(s.format, "v2") << "segment " << s.seq;
    EXPECT_EQ(detectTraceFormat(dir_ + "/" + s.file), TraceWriter::Format::V2);
  }
  EXPECT_TRUE(d.books().balanced());
  EXPECT_EQ(d.books().sealed, 250u);
  // Compaction preserved the stream exactly (that is what the engine
  // report verification is for).
  expectExactStream(sealedRecords(d), 250);
  for (const auto& e : fs::directory_iterator(dir_)) {
    EXPECT_EQ(e.path().string().find(".compact"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Supervised SIGKILL storm: the end-to-end crash-recovery contract.

TEST_F(DaemonTest, SupervisorRidesThroughSigkillsWithExactResume) {
  const std::uint32_t kTotal = 500;
  const std::uint32_t kKillAt[3] = {137, 263, 401};
  std::string dir = dir_;

  Supervisor::Config scfg;
  scfg.manifestPath = TraceDaemon::manifestPathFor(dir, "seg");
  scfg.maxRestarts = 8;
  scfg.backoffInitialUs = 100;
  scfg.backoffMaxUs = 1000;

  auto body = [&](int incarnation) -> int {
    TraceDaemon::Config cfg;
    cfg.dir = dir;
    cfg.prefix = "seg";
    cfg.format = TraceWriter::Format::V2;
    cfg.v2ExtentRecords = 8;
    cfg.checkpointEveryRecords = 8;
    cfg.fsyncOnSeal = false;
    cfg.rotateRecords = 60;
    TraceDaemon d(cfg);
    if (!d.books().balanced()) return 2;
    // Deterministic source: resume exactly where the sealed stream ends.
    for (std::uint32_t i = static_cast<std::uint32_t>(d.streamPos());
         i < kTotal; ++i) {
      if (incarnation < 3 && i == kKillAt[incarnation]) {
        ::raise(SIGKILL);  // mid-capture, often mid-rotation
      }
      d.submit(record(i));
    }
    d.stop();
    return d.books().balanced() ? 0 : 3;
  };

  Supervisor::Result res = Supervisor::run(scfg, body);
  EXPECT_EQ(res.incarnations, 4);
  EXPECT_EQ(res.restarts, 3);
  EXPECT_TRUE(res.cleanExit);
  EXPECT_TRUE(res.booksBalanced);
  EXPECT_TRUE(res.finalBooks.balanced());

  // The surviving state: balanced books, gap-free seq, and a sealed
  // stream byte-for-byte equal to an uninterrupted run's.
  auto cfg = base();
  cfg.rotateRecords = 60;
  TraceDaemon d(cfg);
  EXPECT_EQ(d.recovery().manifestStatus, Manifest::LoadStatus::Ok);
  EXPECT_TRUE(d.books().balanced());
  EXPECT_EQ(d.streamPos(), kTotal);
  const auto& segs = d.manifest().segments;
  for (std::size_t i = 1; i < segs.size(); ++i) {
    EXPECT_EQ(segs[i].seq, segs[i - 1].seq + 1) << "sealed seq gap";
    EXPECT_EQ(segs[i].first, segs[i - 1].first + segs[i - 1].records);
  }
  expectExactStream(sealedRecords(d), kTotal);
  d.stop();
}

}  // namespace
}  // namespace nfstrace::daemon
