
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/trace_replay.cpp" "examples/CMakeFiles/trace_replay.dir/trace_replay.cpp.o" "gcc" "examples/CMakeFiles/trace_replay.dir/trace_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/nfstrace_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/nfstrace_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/anon/CMakeFiles/nfstrace_anon.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/nfstrace_client.dir/DependInfo.cmake"
  "/root/repo/build/src/sniffer/CMakeFiles/nfstrace_sniffer.dir/DependInfo.cmake"
  "/root/repo/build/src/netcap/CMakeFiles/nfstrace_netcap.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/nfstrace_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/pcap/CMakeFiles/nfstrace_pcap.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/nfstrace_server.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/nfstrace_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/nfstrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/nfs/CMakeFiles/nfstrace_nfs.dir/DependInfo.cmake"
  "/root/repo/build/src/xdr/CMakeFiles/nfstrace_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/nfstrace_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nfstrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
