#include "analysis/hourly.hpp"

namespace nfstrace {

void HourlyStats::observe(const TraceRecord& rec) {
  if (rec.ts < 0) return;
  auto hour = static_cast<std::size_t>(rec.ts / kMicrosPerHour);
  if (hour >= hours_.size()) hours_.resize(hour + 1);
  HourBucket& b = hours_[hour];
  ++b.totalOps;
  if (rec.op == NfsOp::Read) {
    ++b.readOps;
    b.bytesRead += rec.hasReply ? rec.retCount : rec.count;
  } else if (rec.op == NfsOp::Write) {
    ++b.writeOps;
    b.bytesWritten += rec.hasReply && rec.retCount ? rec.retCount : rec.count;
  } else {
    ++b.metadataOps;
  }
}

void HourlyStats::merge(const HourlyStats& other) {
  if (other.hours_.size() > hours_.size()) {
    hours_.resize(other.hours_.size());
  }
  for (std::size_t h = 0; h < other.hours_.size(); ++h) {
    const HourBucket& from = other.hours_[h];
    HourBucket& into = hours_[h];
    into.totalOps += from.totalOps;
    into.readOps += from.readOps;
    into.writeOps += from.writeOps;
    into.metadataOps += from.metadataOps;
    into.bytesRead += from.bytesRead;
    into.bytesWritten += from.bytesWritten;
  }
}

HourlyStats::VarianceRow HourlyStats::accumulate(bool peakOnly) const {
  VarianceRow row;
  for (std::size_t h = 0; h < hours_.size(); ++h) {
    MicroTime hourStart = static_cast<MicroTime>(h) * kMicrosPerHour;
    if (peakOnly && !isPeakHour(hourStart)) continue;
    const HourBucket& b = hours_[h];
    row.totalOps.add(static_cast<double>(b.totalOps));
    row.bytesRead.add(static_cast<double>(b.bytesRead));
    row.readOps.add(static_cast<double>(b.readOps));
    row.bytesWritten.add(static_cast<double>(b.bytesWritten));
    row.writeOps.add(static_cast<double>(b.writeOps));
    if (b.writeOps) row.rwRatio.add(b.readWriteOpRatio());
  }
  return row;
}

HourlyStats::VarianceRow HourlyStats::allHours() const {
  return accumulate(false);
}

HourlyStats::VarianceRow HourlyStats::peakHours() const {
  return accumulate(true);
}

RunningStats HourlyStats::windowStats(int startHour, int endHour) const {
  RunningStats s;
  for (std::size_t h = 0; h < hours_.size(); ++h) {
    MicroTime t = static_cast<MicroTime>(h) * kMicrosPerHour;
    int dow = dayOfWeek(t);
    int hod = hourOfDay(t);
    if (dow >= 1 && dow <= 5 && hod >= startHour && hod < endHour) {
      s.add(static_cast<double>(hours_[h].totalOps));
    }
  }
  return s;
}

HourlyStats::PeakWindow HourlyStats::findLeastVarianceWindow(
    int minLength) const {
  // Pass 1: the minimum achievable normalized stddev.
  double minV = -1.0;
  for (int start = 0; start < 24; ++start) {
    for (int end = start + minLength; end <= 24; ++end) {
      RunningStats s = windowStats(start, end);
      if (s.count() < 10 || s.mean() <= 0.0) continue;
      double v = s.stddevPercentOfMean();
      if (minV < 0.0 || v < minV) minV = v;
    }
  }
  // Pass 2: among windows statistically tied with the minimum (within
  // 10% relative), prefer the longest — the peak *period*, not a lucky
  // sub-slice of it.
  PeakWindow best;
  bool first = true;
  for (int start = 0; start < 24; ++start) {
    for (int end = start + minLength; end <= 24; ++end) {
      RunningStats s = windowStats(start, end);
      if (s.count() < 10 || s.mean() <= 0.0) continue;
      double v = s.stddevPercentOfMean();
      if (v > minV * 1.10 + 0.5) continue;
      int len = end - start;
      if (first || len > best.endHour - best.startHour ||
          (len == best.endHour - best.startHour && v < best.stddevPercent)) {
        best = {start, end, v};
        first = false;
      }
    }
  }
  return best;
}

}  // namespace nfstrace
