#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "xdr/xdr.hpp"

namespace nfstrace {
namespace {

TEST(Xdr, Uint32RoundTrip) {
  XdrEncoder enc;
  enc.putUint32(0);
  enc.putUint32(1);
  enc.putUint32(0xdeadbeef);
  enc.putUint32(0xffffffff);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.getUint32(), 0u);
  EXPECT_EQ(dec.getUint32(), 1u);
  EXPECT_EQ(dec.getUint32(), 0xdeadbeefu);
  EXPECT_EQ(dec.getUint32(), 0xffffffffu);
  EXPECT_TRUE(dec.atEnd());
}

TEST(Xdr, BigEndianOnWire) {
  XdrEncoder enc;
  enc.putUint32(0x01020304);
  ASSERT_EQ(enc.size(), 4u);
  EXPECT_EQ(enc.bytes()[0], 0x01);
  EXPECT_EQ(enc.bytes()[3], 0x04);
}

TEST(Xdr, Uint64RoundTrip) {
  XdrEncoder enc;
  enc.putUint64(0x0102030405060708ULL);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.getUint64(), 0x0102030405060708ULL);
}

TEST(Xdr, SignedRoundTrip) {
  XdrEncoder enc;
  enc.putInt32(-42);
  enc.putInt64(-1234567890123LL);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.getInt32(), -42);
  EXPECT_EQ(dec.getInt64(), -1234567890123LL);
}

TEST(Xdr, BoolRoundTrip) {
  XdrEncoder enc;
  enc.putBool(true);
  enc.putBool(false);
  XdrDecoder dec(enc.bytes());
  EXPECT_TRUE(dec.getBool());
  EXPECT_FALSE(dec.getBool());
}

TEST(Xdr, OpaquePadding) {
  XdrEncoder enc;
  std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  enc.putOpaque(data);
  // 4 length + 5 data + 3 pad.
  EXPECT_EQ(enc.size(), 12u);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.getOpaque(), data);
  EXPECT_TRUE(dec.atEnd());
}

TEST(Xdr, EmptyOpaque) {
  XdrEncoder enc;
  enc.putOpaque({});
  EXPECT_EQ(enc.size(), 4u);
  XdrDecoder dec(enc.bytes());
  EXPECT_TRUE(dec.getOpaque().empty());
}

TEST(Xdr, FixedOpaqueNoLengthWord) {
  XdrEncoder enc;
  std::vector<std::uint8_t> data{9, 8, 7};
  enc.putFixedOpaque(data);
  EXPECT_EQ(enc.size(), 4u);  // 3 + 1 pad
  XdrDecoder dec(enc.bytes());
  auto out = dec.getFixedOpaque(3);
  EXPECT_EQ(out, data);
  EXPECT_TRUE(dec.atEnd());
}

TEST(Xdr, StringRoundTrip) {
  XdrEncoder enc;
  enc.putString("hello world");
  enc.putString("");
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.getString(), "hello world");
  EXPECT_EQ(dec.getString(), "");
}

TEST(Xdr, SkipOpaqueReturnsLength) {
  XdrEncoder enc;
  std::vector<std::uint8_t> data(100, 0xaa);
  enc.putOpaque(data);
  enc.putUint32(7);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.skipOpaque(), 100u);
  EXPECT_EQ(dec.getUint32(), 7u);
}

TEST(Xdr, UnderrunThrows) {
  std::vector<std::uint8_t> two{0, 1};
  XdrDecoder dec(two);
  EXPECT_THROW(dec.getUint32(), XdrError);
}

TEST(Xdr, OpaqueLengthSanityCap) {
  XdrEncoder enc;
  enc.putUint32(0x7fffffff);  // absurd length word
  XdrDecoder dec(enc.bytes());
  EXPECT_THROW(dec.getOpaque(1024), XdrError);
}

TEST(Xdr, TruncatedOpaqueThrows) {
  XdrEncoder enc;
  enc.putUint32(100);  // claims 100 bytes but provides none
  XdrDecoder dec(enc.bytes());
  EXPECT_THROW(dec.getOpaque(), XdrError);
}

TEST(Xdr, PositionTracking) {
  XdrEncoder enc;
  enc.putUint32(1);
  enc.putUint64(2);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.position(), 0u);
  dec.getUint32();
  EXPECT_EQ(dec.position(), 4u);
  EXPECT_EQ(dec.remaining(), 8u);
}

TEST(Xdr, RawEmbedding) {
  XdrEncoder inner;
  inner.putUint32(0xabcd);
  XdrEncoder outer;
  outer.putUint32(1);
  outer.putRaw(inner.bytes());
  XdrDecoder dec(outer.bytes());
  EXPECT_EQ(dec.getUint32(), 1u);
  EXPECT_EQ(dec.getUint32(), 0xabcdu);
}

TEST(Xdr, TakeMovesBuffer) {
  XdrEncoder enc;
  enc.putUint32(5);
  auto buf = enc.take();
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(enc.size(), 0u);
}

// ---------------------------------------------------------------------------
// Seeded decode fuzzing.  The decoder's contract is value-or-XdrError with
// no overread: whatever a hostile capture does to length words and field
// boundaries, every accessor must either succeed inside the buffer or
// throw, and the cursor must never pass the end.

/// A representative message: fixed-width fields, variable opaques (empty,
/// short, long), strings, and a fixed opaque, so every accessor has a
/// boundary a mutation can break.
std::vector<std::uint8_t> fuzzMessage() {
  XdrEncoder enc;
  enc.putUint32(0xdeadbeef);
  enc.putOpaque(std::vector<std::uint8_t>(50, 0x5a));
  enc.putString("fuzzing the wire substrate");
  enc.putUint64(0x0102030405060708ULL);
  enc.putOpaque({});
  enc.putFixedOpaque(std::vector<std::uint8_t>(7, 0x11));
  enc.putString("");
  enc.putUint32(7);
  return enc.take();
}

/// Run the matching accessor sequence; returns true if it completed.
/// Throws only XdrError by contract — anything else fails the test.
bool decodeFuzzMessage(std::span<const std::uint8_t> bytes) {
  XdrDecoder dec(bytes);
  try {
    dec.getUint32();
    dec.getOpaque();
    dec.getString();
    dec.getUint64();
    dec.getOpaque();
    dec.getFixedOpaque(7);
    dec.getString();
    dec.getUint32();
  } catch (const XdrError&) {
    EXPECT_LE(dec.position(), bytes.size());
    return false;
  }
  EXPECT_LE(dec.position(), bytes.size());
  return true;
}

TEST(XdrFuzz, TruncationAtEveryByteIsContained) {
  auto msg = fuzzMessage();
  EXPECT_TRUE(decodeFuzzMessage(msg));
  for (std::size_t cut = 0; cut < msg.size(); ++cut) {
    // A strict prefix can never decode fully: some accessor must throw.
    EXPECT_FALSE(decodeFuzzMessage(std::span(msg.data(), cut))) << cut;
  }
}

TEST(XdrFuzz, OverlongLengthClaimsAreContained) {
  auto msg = fuzzMessage();
  // Overwrite every aligned word with adversarial length claims: huge,
  // just-past-the-end, and sign-bit values a naive cast would mangle.
  const std::uint32_t claims[] = {0xffffffffu, 0x7fffffffu,
                                  static_cast<std::uint32_t>(msg.size()),
                                  static_cast<std::uint32_t>(msg.size()) + 1};
  for (std::size_t at = 0; at + 4 <= msg.size(); at += 4) {
    for (std::uint32_t claim : claims) {
      auto mutated = msg;
      mutated[at] = static_cast<std::uint8_t>(claim >> 24);
      mutated[at + 1] = static_cast<std::uint8_t>(claim >> 16);
      mutated[at + 2] = static_cast<std::uint8_t>(claim >> 8);
      mutated[at + 3] = static_cast<std::uint8_t>(claim);
      decodeFuzzMessage(mutated);  // must not crash or overread
    }
  }
}

TEST(XdrFuzz, SeededRandomMutationsNeverEscapeTheContract) {
  auto msg = fuzzMessage();
  Rng rng(20031);
  for (int round = 0; round < 3000; ++round) {
    auto mutated = msg;
    // One to four byte-level mutations per round.
    std::uint64_t edits = 1 + rng.below(4);
    for (std::uint64_t e = 0; e < edits; ++e) {
      mutated[rng.below(mutated.size())] =
          static_cast<std::uint8_t>(rng.below(256));
    }
    // Random accessor order: the decoder's no-overread guarantee cannot
    // depend on callers asking for fields in the encoded order.
    XdrDecoder dec(mutated);
    try {
      for (int step = 0; step < 8; ++step) {
        switch (rng.below(6)) {
          case 0: dec.getUint32(); break;
          case 1: dec.getUint64(); break;
          case 2: dec.getOpaque(); break;
          case 3: dec.getString(); break;
          case 4: dec.skipOpaque(); break;
          default: dec.getFixedOpaque(rng.below(64)); break;
        }
        ASSERT_LE(dec.position(), mutated.size());
      }
    } catch (const XdrError&) {
      // Contained failure: the only acceptable outcome besides success.
    }
    ASSERT_LE(dec.position(), mutated.size());
    ASSERT_EQ(dec.remaining(), mutated.size() - dec.position());
  }
}

}  // namespace
}  // namespace nfstrace
