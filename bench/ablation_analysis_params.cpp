// Ablation of the §4.2 analysis parameters on one CAMPUS day:
//
//  * the reorder-window size — too small leaves nfsiod reordering in the
//    stream (inflated "random"); unbounded would launder genuine client
//    randomness into "sequential";
//  * the jump tolerance k — 0 reproduces the conventional (fragile)
//    taxonomy; the paper argues jumps under 10 blocks don't move the disk
//    arm; very large k degenerates the same way an unbounded window does.
//
// The table shows how the fraction of read runs classified "random" moves
// with each knob, holding the trace fixed.
#include "analysis/reorder.hpp"
#include "analysis/runs.hpp"
#include "bench_common.hpp"

using namespace nfstrace;
using namespace nfstrace::bench;

int main() {
  banner("Ablation (§4.2) -- reorder window and jump tolerance sensitivity");

  MicroTime start = days(1);
  auto campus = makeCampus(30, nullptr);
  campus.workload->setup(start);
  campus.workload->run(start, start + days(1));
  campus.env->finishCapture();
  auto& records = campus.env->records();

  {
    TextTable t({"Reorder window", "% read runs random (k=10)",
                 "% accesses swapped"});
    for (MicroTime w : {0L, 1'000L, 5'000L, 10'000L, 50'000L, 1'000'000L}) {
      auto sorted = sortWithReorderWindow(records, w);
      auto summary = summarizeRunPatterns(detectRuns(sorted.records));
      std::string label = w >= 1'000'000
                              ? TextTable::fixed(static_cast<double>(w) / 1e6, 0) + " s"
                              : TextTable::fixed(static_cast<double>(w) / 1e3, 0) + " ms";
      if (w == 10'000) label += "  <- paper (CAMPUS)";
      t.addRow({label, TextTable::fixed(100.0 * summary.readRandom, 1),
                TextTable::fixed(100.0 * sorted.swappedFraction(), 1)});
    }
    std::fputs(t.render().c_str(), stdout);
  }

  std::printf("\n");
  {
    auto sorted = sortWithReorderWindow(records, 10'000);
    TextTable t({"Jump tolerance k (blocks)", "% read runs random",
                 "% write runs random"});
    for (std::uint32_t k : {0u, 1u, 5u, 10u, 50u, 500u}) {
      RunDetectorConfig cfg;
      cfg.jumpTolerance = k;
      auto summary = summarizeRunPatterns(detectRuns(sorted.records, cfg));
      std::string label = std::to_string(k);
      if (k == 10) label += "  <- paper";
      t.addRow({label, TextTable::fixed(100.0 * summary.readRandom, 1),
                TextTable::fixed(100.0 * summary.writeRandom, 1)});
    }
    std::fputs(t.render().c_str(), stdout);
  }

  std::printf(
      "\nBoth knobs show the paper's reasoning: the window matters only up\n"
      "to the knee (a few ms) and then flattens — but never stops rising,\n"
      "which is why it must not be unbounded; k=10 removes the small-seek\n"
      "false randoms while k in the hundreds would start blessing genuine\n"
      "seeks (disk-arm-moving jumps) as sequential.\n");
  return 0;
}
