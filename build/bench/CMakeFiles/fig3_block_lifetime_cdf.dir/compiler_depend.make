# Empty compiler generated dependencies file for fig3_block_lifetime_cdf.
# This may be replaced when dependencies are built.
