#include "util/interner.hpp"

#include <stdexcept>

namespace nfstrace {

namespace {
constexpr std::uint64_t kMul = 0x9ddfea08eb382d69ULL;
}  // namespace

std::uint64_t StringInterner::hashBytes(std::string_view s) {
  // Word-at-a-time multiply-mix; the interned strings are short (file
  // handles, path components), so the 8-byte stride covers most in one
  // or two rounds.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ (s.size() * kMul);
  const char* p = s.data();
  std::size_t n = s.size();
  while (n >= 8) {
    std::uint64_t w;
    std::memcpy(&w, p, 8);
    h = (h ^ w) * kMul;
    h ^= h >> 29;
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    std::uint64_t w = 0;
    std::memcpy(&w, p, n);
    h = (h ^ w) * kMul;
    h ^= h >> 29;
  }
  return h;
}

StringInterner::StringInterner() {
  slots_.assign(1024, Slot{});
  mask_ = slots_.size() - 1;
  chunks_.push_back(std::make_unique<char[]>(kChunkBytes));
  chunkCap_ = kChunkBytes;
  intern({});  // reserve id 0 for the empty string
}

const char* StringInterner::store(std::string_view s) {
  if (chunkCap_ - chunkUsed_ < s.size()) {
    std::size_t cap = s.size() > kChunkBytes ? s.size() : kChunkBytes;
    chunks_.push_back(std::make_unique<char[]>(cap));
    chunkUsed_ = 0;
    chunkCap_ = cap;
  }
  char* p = chunks_.back().get() + chunkUsed_;
  if (!s.empty()) std::memcpy(p, s.data(), s.size());
  chunkUsed_ += s.size();
  return p;
}

void StringInterner::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  for (const Slot& sl : old) {
    if (sl.idPlus1 == 0) continue;
    std::size_t i = hashBytes(view(sl.idPlus1 - 1)) & mask_;
    while (slots_[i].idPlus1 != 0) i = (i + 1) & mask_;
    slots_[i] = sl;
  }
}

std::uint32_t StringInterner::intern(std::string_view s) {
  std::uint64_t h = hashBytes(s);
  std::uint32_t tag = static_cast<std::uint32_t>(h >> 32) | 1u;
  std::size_t i = h & mask_;
  for (;;) {
    const Slot& sl = slots_[i];
    if (sl.idPlus1 == 0) break;  // vacant: new string
    if (sl.tag == tag && view(sl.idPlus1 - 1) == s) return sl.idPlus1 - 1;
    i = (i + 1) & mask_;
  }
  if (next_ >= kMaxBlocks * kBlockEntries) {
    throw std::runtime_error("interner: table full");
  }
  std::uint32_t id = next_;
  auto& block = entryBlocks_[id >> kBlockShift];
  if (!block) block = std::make_unique<EntryBlock>();
  (*block)[id & (kBlockEntries - 1)] =
      Entry{store(s), static_cast<std::uint32_t>(s.size())};
  slots_[i] = Slot{id + 1, tag};
  bytes_ += s.size();
  ++next_;
  // Grow at 3/4 load so probe chains stay short.
  if ((static_cast<std::size_t>(next_) + 1) * 4 > slots_.size() * 3) grow();
  return id;
}

}  // namespace nfstrace
