// §4.1.5 experiment: call reordering as a function of the number of
// client-side nfsiods, on an isolated client and server.  The paper found
// no reordering with one nfsiod, and with more nfsiods up to ~10% of
// packets reordered with delays as long as one second — with no packet
// loss involved.
#include "bench_common.hpp"

using namespace nfstrace;
using namespace nfstrace::bench;

int main() {
  banner("Section 4.1.5 -- nfsiod count vs observed call reordering");

  TextTable t({"nfsiods", "calls", "% reordered", "max delay (ms)"});
  for (int iods : {1, 2, 4, 8, 16}) {
    SimEnvironment::Config cfg;
    cfg.clientHosts = 1;
    cfg.useTcp = false;  // UDP shows the effect most, as the paper notes
    cfg.mtu = kStandardMtu;
    cfg.clientConfig.nfsiods = iods;
    // Scheduler jitter grows with run-queue pressure (more nfsiods
    // contending for the CPU).
    cfg.clientConfig.iodJitterMean = 10 + 4 * iods;
    cfg.clientConfig.iodJitterTailChance = 0.004 * iods;
    cfg.clientConfig.iodJitterTailMean = 1500;
    // A loaded client occasionally deschedules an nfsiod entirely.
    cfg.clientConfig.iodStallChance = 0.0005;
    cfg.clientConfig.iodStallMax = kMicrosPerSecond;
    // The benchmark application reads at a steady rate that one iod can
    // sustain, so the single-iod case shows no queueing delay either.
    cfg.clientConfig.iodSubmitGap = 150;
    cfg.seed = 7 + static_cast<std::uint64_t>(iods);
    SimEnvironment env(cfg);
    env.fs().mkfile("/exp/stream.dat", 48 << 20, 1, 1, 0);

    MicroTime now = seconds(10);
    NfsClient& client = env.client(0);
    auto fh = *client.lookupPath(now, "/exp/stream.dat");
    client.readFile(now, fh);

    const auto& st = client.stats();
    double pct = st.callsIssued
                     ? 100.0 * static_cast<double>(st.reorderedCalls) /
                           static_cast<double>(st.callsIssued)
                     : 0.0;
    t.addRow({std::to_string(iods), TextTable::withCommas(st.callsIssued),
              TextTable::fixed(pct, 2),
              TextTable::fixed(static_cast<double>(st.maxIodDelay) / 1000.0,
                               1)});
  }
  std::fputs(t.render().c_str(), stdout);

  std::printf(
      "\nShape checks (paper §4.1.5): one nfsiod never reorders; adding\n"
      "nfsiods makes reordering increasingly frequent, reaching ~10%% in\n"
      "the extreme case, and individual calls can be delayed by as much\n"
      "as a second even though no packets are lost.\n");
  return 0;
}
