
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nfs/messages2.cpp" "src/nfs/CMakeFiles/nfstrace_nfs.dir/messages2.cpp.o" "gcc" "src/nfs/CMakeFiles/nfstrace_nfs.dir/messages2.cpp.o.d"
  "/root/repo/src/nfs/messages3.cpp" "src/nfs/CMakeFiles/nfstrace_nfs.dir/messages3.cpp.o" "gcc" "src/nfs/CMakeFiles/nfstrace_nfs.dir/messages3.cpp.o.d"
  "/root/repo/src/nfs/proc.cpp" "src/nfs/CMakeFiles/nfstrace_nfs.dir/proc.cpp.o" "gcc" "src/nfs/CMakeFiles/nfstrace_nfs.dir/proc.cpp.o.d"
  "/root/repo/src/nfs/types.cpp" "src/nfs/CMakeFiles/nfstrace_nfs.dir/types.cpp.o" "gcc" "src/nfs/CMakeFiles/nfstrace_nfs.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xdr/CMakeFiles/nfstrace_xdr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nfstrace_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
