# Empty dependencies file for anon_test.
# This may be replaced when dependencies are built.
