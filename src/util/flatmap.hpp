// Open-addressing hash containers for the capture hot path.
//
// std::unordered_map pays one heap allocation per node and a pointer chase
// per lookup; the sniffer does a lookup in two or three of these tables for
// every RPC message.  FlatMap stores key/value pairs inline in a single
// power-of-two slot array with linear probing and backward-shift deletion
// (no tombstones, so probe chains never rot).  The growth policy (double at
// 3/4 load) keeps probes short without the per-node malloc traffic.
//
// Semantics intentionally mirror the std::unordered_map subset the sniffer
// uses — find / operator[] / try_emplace / erase / size / clear / range
// iteration — so the LRU-bounded eviction logic built on top of it (PR 4)
// is unchanged.  Iteration order is unspecified, as before; all callers
// that need determinism already collect-and-sort keys.
//
// Invalidation: any insert or erase may move elements (rehash or backward
// shift), so iterators and references are invalidated by mutation.  The
// value_type is pair<Key, T> (key not const) because backward-shift
// deletion relocates pairs; callers must not mutate keys through iterators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iterator>
#include <new>
#include <utility>

namespace nfstrace {

template <class Key, class T, class Hash = std::hash<Key>,
          class KeyEqual = std::equal_to<Key>>
class FlatMap {
 public:
  using value_type = std::pair<Key, T>;

  FlatMap() = default;
  FlatMap(const FlatMap&) = delete;
  FlatMap& operator=(const FlatMap&) = delete;
  FlatMap(FlatMap&& o) noexcept { swap(o); }
  FlatMap& operator=(FlatMap&& o) noexcept {
    if (this != &o) {
      destroy();
      swap(o);
    }
    return *this;
  }
  ~FlatMap() { destroy(); }

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::pair<Key, T>;
    using difference_type = std::ptrdiff_t;
    using pointer = value_type*;
    using reference = value_type&;

    iterator() = default;
    value_type& operator*() const { return m_->slotAt(i_); }
    value_type* operator->() const { return &m_->slotAt(i_); }
    iterator& operator++() {
      i_ = m_->nextUsed(i_ + 1);
      return *this;
    }
    bool operator==(const iterator& o) const { return i_ == o.i_; }
    bool operator!=(const iterator& o) const { return i_ != o.i_; }

   private:
    friend class FlatMap;
    iterator(FlatMap* m, std::size_t i) : m_(m), i_(i) {}
    FlatMap* m_ = nullptr;
    std::size_t i_ = 0;
  };
  using const_iterator = iterator;  // shallow-const container, like a view

  iterator begin() { return {this, nextUsed(0)}; }
  iterator end() { return {this, cap_}; }
  iterator begin() const { return const_cast<FlatMap*>(this)->begin(); }
  iterator end() const { return const_cast<FlatMap*>(this)->end(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return cap_; }

  void reserve(std::size_t n) {
    std::size_t want = 16;
    while (want * 3 < n * 4) want <<= 1;  // keep load <= 3/4
    if (want > cap_) rehash(want);
  }

  iterator find(const Key& k) {
    if (size_ == 0) return end();
    std::size_t i = Hash{}(k)&mask_;
    while (used_[i]) {
      if (KeyEqual{}(slotAt(i).first, k)) return {this, i};
      i = (i + 1) & mask_;
    }
    return end();
  }
  const_iterator find(const Key& k) const {
    return const_cast<FlatMap*>(this)->find(k);
  }
  std::size_t count(const Key& k) const { return find(k) != end() ? 1 : 0; }
  bool contains(const Key& k) const { return find(k) != end(); }

  /// Insert default-constructed value if absent; args beyond the key are
  /// forwarded to T's constructor on insertion only.
  template <class... Args>
  std::pair<iterator, bool> try_emplace(const Key& k, Args&&... args) {
    growIfNeeded();
    std::size_t i = Hash{}(k)&mask_;
    while (used_[i]) {
      if (KeyEqual{}(slotAt(i).first, k)) return {{this, i}, false};
      i = (i + 1) & mask_;
    }
    ::new (slotPtr(i)) value_type(std::piecewise_construct,
                                  std::forward_as_tuple(k),
                                  std::forward_as_tuple(std::forward<Args>(args)...));
    used_[i] = true;
    ++size_;
    return {{this, i}, true};
  }

  T& operator[](const Key& k) { return try_emplace(k).first->second; }

  template <class V>
  std::pair<iterator, bool> insert_or_assign(const Key& k, V&& v) {
    auto [it, inserted] = try_emplace(k, std::forward<V>(v));
    if (!inserted) it->second = std::forward<V>(v);
    return {it, inserted};
  }

  std::size_t erase(const Key& k) {
    auto it = find(k);
    if (it == end()) return 0;
    erase(it);
    return 1;
  }

  /// Backward-shift removal.  Invalidates all iterators (including the
  /// argument); do not continue iterating after an erase.
  void erase(iterator it) {
    std::size_t hole = it.i_;
    std::size_t j = hole;
    for (;;) {
      j = (j + 1) & mask_;
      if (!used_[j]) break;
      std::size_t home = Hash{}(slotAt(j).first) & mask_;
      // The element at j may fill the hole iff its probe path from `home`
      // to j runs through the hole.
      if (((j - home) & mask_) >= ((j - hole) & mask_)) {
        slotAt(hole) = std::move(slotAt(j));
        hole = j;
      }
    }
    slotAt(hole).~value_type();
    used_[hole] = false;
    --size_;
  }

  void clear() {
    if (cap_ != 0) {
      for (std::size_t i = 0; i < cap_; ++i) {
        if (used_[i]) {
          slotAt(i).~value_type();
          used_[i] = false;
        }
      }
    }
    size_ = 0;
  }

 private:
  void swap(FlatMap& o) {
    std::swap(slots_, o.slots_);
    std::swap(used_, o.used_);
    std::swap(cap_, o.cap_);
    std::swap(mask_, o.mask_);
    std::swap(size_, o.size_);
  }

  value_type* slotPtr(std::size_t i) {
    return std::launder(reinterpret_cast<value_type*>(
        slots_ + i * sizeof(value_type)));
  }
  value_type& slotAt(std::size_t i) { return *slotPtr(i); }

  std::size_t nextUsed(std::size_t i) const {
    while (i < cap_ && !used_[i]) ++i;
    return i;
  }

  void growIfNeeded() {
    if ((size_ + 1) * 4 > cap_ * 3) rehash(cap_ == 0 ? 16 : cap_ * 2);
  }

  void rehash(std::size_t newCap) {
    auto* oldSlots = slots_;
    auto* oldUsed = used_;
    std::size_t oldCap = cap_;

    slots_ = static_cast<unsigned char*>(
        ::operator new(newCap * sizeof(value_type), std::align_val_t{alignof(value_type)}));
    used_ = new bool[newCap]();
    cap_ = newCap;
    mask_ = newCap - 1;

    for (std::size_t i = 0; i < oldCap; ++i) {
      if (!oldUsed[i]) continue;
      auto* old = std::launder(
          reinterpret_cast<value_type*>(oldSlots + i * sizeof(value_type)));
      std::size_t j = Hash{}(old->first) & mask_;
      while (used_[j]) j = (j + 1) & mask_;
      ::new (slotPtr(j)) value_type(std::move(*old));
      used_[j] = true;
      old->~value_type();
    }
    if (oldSlots) {
      ::operator delete(oldSlots, std::align_val_t{alignof(value_type)});
      delete[] oldUsed;
    }
  }

  void destroy() {
    clear();
    if (slots_) {
      ::operator delete(slots_, std::align_val_t{alignof(value_type)});
      delete[] used_;
    }
    slots_ = nullptr;
    used_ = nullptr;
    cap_ = 0;
    mask_ = 0;
  }

  unsigned char* slots_ = nullptr;
  bool* used_ = nullptr;
  std::size_t cap_ = 0;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Set facade over FlatMap for membership tables (e.g. ignored XIDs).
template <class Key, class Hash = std::hash<Key>,
          class KeyEqual = std::equal_to<Key>>
class FlatSet {
 public:
  bool insert(const Key& k) { return m_.try_emplace(k).second; }
  std::size_t erase(const Key& k) { return m_.erase(k); }
  std::size_t count(const Key& k) const { return m_.count(k); }
  bool contains(const Key& k) const { return m_.contains(k); }
  std::size_t size() const { return m_.size(); }
  bool empty() const { return m_.empty(); }
  void clear() { m_.clear(); }
  void reserve(std::size_t n) { m_.reserve(n); }

 private:
  struct Unit {};
  FlatMap<Key, Unit, Hash, KeyEqual> m_;
};

}  // namespace nfstrace
