file(REMOVE_RECURSE
  "CMakeFiles/sniffer_test.dir/sniffer_test.cpp.o"
  "CMakeFiles/sniffer_test.dir/sniffer_test.cpp.o.d"
  "sniffer_test"
  "sniffer_test.pdb"
  "sniffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sniffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
