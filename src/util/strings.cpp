#include "util/strings.hpp"

#include <cctype>

namespace nfstrace {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, char delim) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.push_back(delim);
    out += parts[i];
  }
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view filenameSuffix(std::string_view name) {
  std::size_t pos = name.rfind('.');
  if (pos == std::string_view::npos || pos == 0) return {};
  return name.substr(pos);
}

std::string toLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace nfstrace
