// Time-bucketed load statistics (§6.2): hourly operation counts, data
// volumes, read/write ratios, and the peak-vs-all-hours variance table
// (Table 5) plus the weekly series behind Figure 4.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.hpp"
#include "util/stats.hpp"

namespace nfstrace {

struct HourBucket {
  std::uint64_t totalOps = 0;
  std::uint64_t readOps = 0;
  std::uint64_t writeOps = 0;
  std::uint64_t metadataOps = 0;
  std::uint64_t bytesRead = 0;
  std::uint64_t bytesWritten = 0;

  double readWriteOpRatio() const {
    return writeOps ? static_cast<double>(readOps) /
                          static_cast<double>(writeOps)
                    : 0.0;
  }
  double readWriteByteRatio() const {
    return bytesWritten ? static_cast<double>(bytesRead) /
                              static_cast<double>(bytesWritten)
                        : 0.0;
  }
};

class HourlyStats {
 public:
  void observe(const TraceRecord& rec);

  /// Fold another partial into this one (bucket-wise sums), so sharded
  /// accumulation merges to exactly the serial result.
  void merge(const HourlyStats& other);

  /// Buckets indexed by absolute hour since the simulation epoch.
  const std::vector<HourBucket>& hours() const { return hours_; }

  struct VarianceRow {
    RunningStats totalOps, bytesRead, readOps, bytesWritten, writeOps,
        rwRatio;
  };
  /// Hourly means/stddevs over all hours and over peak hours only
  /// (Mon-Fri 9am-6pm), the two halves of Table 5.  Hours with zero
  /// activity are included in "all hours", as the paper's averages are.
  VarianceRow allHours() const;
  VarianceRow peakHours() const;

  struct PeakWindow {
    int startHour = 9;
    int endHour = 18;  // exclusive
    double stddevPercent = 0.0;
  };
  /// Reproduce the paper's §6.2 methodology: scan candidate weekday
  /// windows and return the one minimizing the normalized stddev of
  /// hourly total ops.  (The paper found 9am-6pm.)
  PeakWindow findLeastVarianceWindow(int minLength = 4) const;

 private:
  VarianceRow accumulate(bool peakOnly) const;
  RunningStats windowStats(int startHour, int endHour) const;
  std::vector<HourBucket> hours_;
};

}  // namespace nfstrace
