// Deterministic pseudo-random source for the simulators.
//
// Everything in this repository that needs randomness draws from Rng so that
// runs are reproducible given a seed.  The generator is xoshiro256++ (public
// domain construction by Blackman & Vigna); the distribution helpers cover
// what the workload models need: uniform, exponential inter-arrivals,
// Poisson counts, lognormal file sizes, Zipf user popularity and normals.
#pragma once

#include <cstdint>
#include <vector>

namespace nfstrace {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 random bits.
  std::uint64_t next();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);
  /// True with probability p.
  bool chance(double p);

  /// Exponential with the given mean (inter-arrival times).
  double exponential(double mean);
  /// Poisson-distributed count with the given mean.
  std::uint64_t poisson(double mean);
  /// Standard normal via Marsaglia polar method.
  double normal();
  /// Normal with mean/stddev.
  double normal(double mean, double stddev);
  /// Lognormal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Pareto with scale xm and shape alpha (heavy-tailed sizes).
  double pareto(double xm, double alpha);

  /// Derive an independent generator (for per-entity streams).
  Rng fork();

  /// Shuffle a vector in place (Fisher-Yates).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// Zipf sampler over ranks 1..n with exponent s, using the rejection-
/// inversion method of Hörmann & Derflinger; O(1) per sample after O(1)
/// setup, exact for all n.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s);

  /// A rank in [1, n]; rank 1 is the most popular.
  std::uint64_t sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double h(double x) const;
  double hInv(double x) const;

  std::uint64_t n_;
  double s_;
  double hX1_;
  double hN_;
  double base_;
};

}  // namespace nfstrace
