file(REMOVE_RECURSE
  "CMakeFiles/nfstrace_workload.dir/campus.cpp.o"
  "CMakeFiles/nfstrace_workload.dir/campus.cpp.o.d"
  "CMakeFiles/nfstrace_workload.dir/eecs.cpp.o"
  "CMakeFiles/nfstrace_workload.dir/eecs.cpp.o.d"
  "CMakeFiles/nfstrace_workload.dir/schedule.cpp.o"
  "CMakeFiles/nfstrace_workload.dir/schedule.cpp.o.d"
  "CMakeFiles/nfstrace_workload.dir/sim.cpp.o"
  "CMakeFiles/nfstrace_workload.dir/sim.cpp.o.d"
  "libnfstrace_workload.a"
  "libnfstrace_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfstrace_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
