// Whole-trace summary statistics (Table 2) and workload characterization
// (Table 1): operation mix, data volumes, read/write ratios, and the
// data-vs-metadata split that separates CAMPUS from EECS.
#pragma once

#include <array>
#include <cstdint>

#include "nfs/proc.hpp"
#include "trace/record.hpp"

namespace nfstrace {

struct TraceSummary {
  std::uint64_t totalOps = 0;
  std::array<std::uint64_t, kNfsOpCount> opCounts{};
  std::uint64_t readOps = 0;
  std::uint64_t writeOps = 0;
  std::uint64_t bytesRead = 0;
  std::uint64_t bytesWritten = 0;
  std::uint64_t dataOps = 0;      // read + write
  std::uint64_t metadataOps = 0;  // everything else
  std::uint64_t repliesMissing = 0;
  MicroTime firstTs = 0;
  MicroTime lastTs = 0;

  double days() const {
    return lastTs > firstTs
               ? toSeconds(lastTs - firstTs) / (24.0 * 3600.0)
               : 0.0;
  }
  double readWriteByteRatio() const {
    return bytesWritten ? static_cast<double>(bytesRead) /
                              static_cast<double>(bytesWritten)
                        : 0.0;
  }
  double readWriteOpRatio() const {
    return writeOps ? static_cast<double>(readOps) /
                          static_cast<double>(writeOps)
                    : 0.0;
  }
  double dataOpFraction() const {
    return totalOps ? static_cast<double>(dataOps) /
                          static_cast<double>(totalOps)
                    : 0.0;
  }
};

TraceSummary summarize(const std::vector<TraceRecord>& records);

/// Incremental accumulation (the engine's single-pass path).  An empty
/// summary (totalOps == 0) is a valid identity element for merging.
void summaryObserve(TraceSummary& s, const TraceRecord& rec);
/// Fold `from` into `into`; order-independent for commutative fields and
/// min/max for the timestamp span, so sharded partials merge exactly.
void summaryMerge(TraceSummary& into, const TraceSummary& from);

}  // namespace nfstrace
