# Empty dependencies file for nfstrace_nfs.
# This may be replaced when dependencies are built.
