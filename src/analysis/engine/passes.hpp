// The eight standard analyses as engine passes: one scan of the trace
// feeds every table and figure the repo produces.
//
// Mergeable (per-worker shards, exact fold at finalize):
//   summary, hourly, users — pure integer accumulation.
//
// Sequential (single state, sees every batch in stream order):
//   reorder, runs   — buffer only the READ/WRITE data accesses (the only
//                     records those analyses derive anything from; the
//                     legacy functions pass everything else through) and
//                     run the legacy algorithms at finalize, so results
//                     are bit-identical to the whole-vector path;
//   blocklife       — needs the trace's time span before it can observe
//                     (phase boundaries), so records are deferred as
//                     CompactRecords — every string/handle replaced by
//                     its interned 32-bit id, ~1/3 the footprint of a
//                     TraceRecord and zero heap per record — and
//                     replayed at finalize;
//   names, pathrec  — incremental order-dependent observers.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/blocklife.hpp"
#include "analysis/engine/pass.hpp"
#include "analysis/hourly.hpp"
#include "analysis/names.hpp"
#include "analysis/pathrec.hpp"
#include "analysis/reorder.hpp"
#include "analysis/runs.hpp"
#include "analysis/summary.hpp"
#include "analysis/users.hpp"

namespace nfstrace {

// ----------------------------------------------------------- mergeable

class SummaryPass final : public AnalysisPass {
 public:
  std::string_view name() const override { return "summary"; }
  bool mergeable() const override { return true; }
  void prepare(std::size_t shards) override;
  void observe(const TraceBatch& batch, std::size_t shard) override;
  void finalize() override;
  const TraceSummary& result() const { return result_; }

 private:
  struct alignas(64) Shard {
    TraceSummary s;
  };
  std::vector<Shard> shards_;
  TraceSummary result_;
};

class HourlyPass final : public AnalysisPass {
 public:
  std::string_view name() const override { return "hourly"; }
  bool mergeable() const override { return true; }
  void prepare(std::size_t shards) override;
  void observe(const TraceBatch& batch, std::size_t shard) override;
  void finalize() override;
  const HourlyStats& result() const { return result_; }

 private:
  struct alignas(64) Shard {
    HourlyStats s;
  };
  std::vector<Shard> shards_;
  HourlyStats result_;
};

class UsersPass final : public AnalysisPass {
 public:
  std::string_view name() const override { return "users"; }
  bool mergeable() const override { return true; }
  void prepare(std::size_t shards) override;
  void observe(const TraceBatch& batch, std::size_t shard) override;
  void finalize() override;
  const UserStats& result() const { return result_; }

 private:
  struct alignas(64) Shard {
    UserStats s;
  };
  std::vector<Shard> shards_;
  UserStats result_;
};

// ---------------------------------------------------------- sequential

/// Figure 1: reorder-window sweep (fraction of accesses swapped per
/// window size).
class ReorderPass final : public AnalysisPass {
 public:
  explicit ReorderPass(std::vector<MicroTime> sweepWindows = {
                           0, 1'000, 5'000, 10'000, 50'000, 100'000,
                           1'000'000});
  std::string_view name() const override { return "reorder"; }
  bool mergeable() const override { return false; }
  /// Buffers only READ/WRITE data accesses; everything else is ignored
  /// record by record, so extents without them can be skipped wholesale.
  std::uint32_t opMask() const override {
    return opMaskBit(NfsOp::Read) | opMaskBit(NfsOp::Write);
  }
  void prepare(std::size_t shards) override;
  void observe(const TraceBatch& batch, std::size_t shard) override;
  void finalize() override;
  const std::vector<std::pair<MicroTime, double>>& sweep() const {
    return sweep_;
  }

 private:
  std::vector<MicroTime> sweepWindows_;
  std::vector<TraceRecord> accesses_;
  std::vector<std::pair<MicroTime, double>> sweep_;
};

/// Table 3 / Figures 2 and 5: reorder-sorted run detection, pattern
/// classification, and the size-bucketed aggregates.
class RunsPass final : public AnalysisPass {
 public:
  explicit RunsPass(MicroTime reorderWindowUs = 10'000);
  std::string_view name() const override { return "runs"; }
  bool mergeable() const override { return false; }
  /// Like ReorderPass: derives everything from READ/WRITE accesses only.
  std::uint32_t opMask() const override {
    return opMaskBit(NfsOp::Read) | opMaskBit(NfsOp::Write);
  }
  void prepare(std::size_t shards) override;
  void observe(const TraceBatch& batch, std::size_t shard) override;
  void finalize() override;

  const std::vector<Run>& runs() const { return runs_; }
  const RunPatternSummary& patterns() const { return patterns_; }
  double reorderSwappedFraction() const { return swappedFraction_; }
  const SizeBucketedBytes& bytesBySize() const { return bytesBySize_; }
  const SeqMetricBySize& readSeqBySize() const { return readSeq_; }
  const SeqMetricBySize& writeSeqBySize() const { return writeSeq_; }

 private:
  MicroTime reorderWindowUs_;
  std::vector<TraceRecord> accesses_;
  std::vector<Run> runs_;
  RunPatternSummary patterns_;
  double swappedFraction_ = 0.0;
  SizeBucketedBytes bytesBySize_;
  SeqMetricBySize readSeq_, writeSeq_;
};

/// Table 4 / Figure 3: block birth/death accounting.  The phase
/// boundaries depend on the trace's span, so records are compacted
/// (interned ids instead of strings/handles) and replayed at finalize.
class BlockLifePass final : public AnalysisPass {
 public:
  std::string_view name() const override { return "blocklife"; }
  bool mergeable() const override { return false; }
  // No opMask() narrowing: beyond writes, this pass consumes
  // Setattr/Create (truncate deaths), Remove (delete deaths) and feeds
  // its embedded PathReconstructor from *every* record.
  void prepare(std::size_t shards) override;
  void observe(const TraceBatch& batch, std::size_t shard) override;
  void finalize() override;

  const BlockLifeStats& stats() const { return stats_; }
  const EmpiricalCdf& lifetimes() const { return lifetimes_; }
  std::size_t deferredRecords() const { return compact_.size(); }

 private:
  /// A TraceRecord with every variable-length field interned: flat,
  /// trivially copyable, no heap.
  struct CompactRecord {
    MicroTime ts = 0, replyTs = 0;
    IpAddr client = 0, server = 0;
    std::uint32_t xid = 0;
    std::uint64_t offset = 0;
    std::uint64_t fileSize = 0, fileId = 0, preSize = 0;
    MicroTime fileMtime = 0, preMtime = 0;
    std::uint32_t uid = 0, gid = 0, count = 0, retCount = 0;
    std::uint32_t fhId = 0, fh2Id = 0, resFhId = 0, nameId = 0,
                  name2Id = 0;
    NfsOp op = NfsOp::Unknown;
    NfsStat status = NfsStat::Ok;
    FileType ftype = FileType::Regular;
    std::uint8_t vers = 3;
    bool overTcp = false, hasReply = false, eof = false, hasResFh = false,
         hasAttrs = false, hasPre = false;
  };

  std::vector<CompactRecord> compact_;
  const StringInterner* names_ = nullptr;
  const StringInterner* handles_ = nullptr;
  MicroTime firstTs_ = 0, lastTs_ = 0;
  bool sawAny_ = false;
  BlockLifeStats stats_;
  EmpiricalCdf lifetimes_;
};

/// §6.3: file churn census by name category.
class NamesPass final : public AnalysisPass {
 public:
  std::string_view name() const override { return "names"; }
  bool mergeable() const override { return false; }
  void prepare(std::size_t shards) override;
  void observe(const TraceBatch& batch, std::size_t shard) override;
  void finalize() override;
  const FileLifeCensus& census() const { return census_; }

 private:
  FileLifeCensus census_;
};

/// §4.1.1: hierarchy reconstruction coverage.
class PathRecPass final : public AnalysisPass {
 public:
  std::string_view name() const override { return "pathrec"; }
  bool mergeable() const override { return false; }
  void prepare(std::size_t shards) override;
  void observe(const TraceBatch& batch, std::size_t shard) override;
  void finalize() override;
  const PathReconstructor& reconstructor() const { return pathrec_; }

 private:
  PathReconstructor pathrec_;
};

/// The full standard bundle, in a fixed order (the order also spreads
/// sequential passes round-robin across workers).
struct StandardAnalyses {
  SummaryPass summary;
  HourlyPass hourly;
  UsersPass users;
  ReorderPass reorder;
  RunsPass runs;
  BlockLifePass blocklife;
  NamesPass names;
  PathRecPass pathrec;

  std::vector<AnalysisPass*> all() {
    return {&summary, &hourly, &users,     &reorder,
            &runs,    &names,  &blocklife, &pathrec};
  }
};

}  // namespace nfstrace
