// Table 1: the qualitative characterization of CAMPUS vs EECS, regenerated
// quantitatively from one simulated day of each system.
#include "analysis/blocklife.hpp"
#include "analysis/names.hpp"
#include "analysis/pathrec.hpp"
#include "analysis/summary.hpp"
#include "bench_common.hpp"

using namespace nfstrace;
using namespace nfstrace::bench;

namespace {

struct SystemProfile {
  TraceSummary summary;
  double mailboxByteShare = 0;   // share of data bytes touching mailboxes
  double mailboxFileShare = 0;   // share of accessed files that are inboxes
  double lockFileShare = 0;      // share of accessed files that are locks
  double blockMedianLifeSec = 0;
  double overwriteDeathShare = 0;
  double deleteDeathShare = 0;
};

SystemProfile profile(const std::vector<TraceRecord>& records,
                      MicroTime phase1Start) {
  SystemProfile p;
  p.summary = summarize(records);

  PathReconstructor paths;
  std::uint64_t mailboxBytes = 0, totalBytes = 0;
  std::unordered_map<std::string, NameCategory> accessedFiles;
  for (const auto& r : records) {
    paths.observe(r);
    if (r.op == NfsOp::Read || r.op == NfsOp::Write) {
      std::uint64_t n = r.hasReply ? r.retCount : r.count;
      totalBytes += n;
      auto name = paths.nameOf(r.fh);
      if (name) {
        auto cat = classifyName(*name);
        if (cat == NameCategory::Mailbox) mailboxBytes += n;
        accessedFiles.emplace(r.fh.toHex(), cat);
      }
    } else if (r.hasName() && !r.name.empty()) {
      accessedFiles.emplace(r.fh.toHex() + "/" + r.name,
                            classifyName(r.name));
    }
  }
  std::uint64_t mailboxFiles = 0, lockFiles = 0;
  for (const auto& [key, cat] : accessedFiles) {
    if (cat == NameCategory::Mailbox) ++mailboxFiles;
    if (cat == NameCategory::LockFile) ++lockFiles;
  }
  if (totalBytes) {
    p.mailboxByteShare =
        static_cast<double>(mailboxBytes) / static_cast<double>(totalBytes);
  }
  if (!accessedFiles.empty()) {
    p.mailboxFileShare = static_cast<double>(mailboxFiles) /
                         static_cast<double>(accessedFiles.size());
    p.lockFileShare = static_cast<double>(lockFiles) /
                      static_cast<double>(accessedFiles.size());
  }

  BlockLifeConfig blCfg;
  blCfg.phase1Start = phase1Start;
  blCfg.phase1Length = hours(12);
  blCfg.phase2Length = hours(12);
  EmpiricalCdf lifetimes;
  auto bl = analyzeBlockLife(records, blCfg, &lifetimes);
  if (!lifetimes.empty()) p.blockMedianLifeSec = lifetimes.quantile(0.5);
  if (bl.deaths) {
    p.overwriteDeathShare = static_cast<double>(bl.deathsOverwrite) /
                            static_cast<double>(bl.deaths);
    p.deleteDeathShare = static_cast<double>(bl.deathsDelete) /
                         static_cast<double>(bl.deaths);
  }
  return p;
}

}  // namespace

int main() {
  banner("Table 1 -- characteristics of CAMPUS and EECS");

  MicroTime start = days(1);  // Monday 00:00
  auto campus = makeCampus(30, nullptr);
  campus.workload->setup(start);
  campus.workload->run(start, start + days(1));
  campus.env->finishCapture();
  auto pc = profile(campus.env->records(), start + hours(6));

  auto eecs = makeEecs(20, nullptr);
  eecs.workload->setup(start);
  eecs.workload->run(start, start + days(1));
  eecs.env->finishCapture();
  auto pe = profile(eecs.env->records(), start + hours(6));

  TextTable t({"Characteristic", "CAMPUS (paper)", "CAMPUS (sim)",
               "EECS (paper)", "EECS (sim)"});
  t.addRow({"Data-op share of calls", "most calls are data",
            TextTable::percent(pc.summary.dataOpFraction()),
            "most calls are metadata",
            TextTable::percent(pe.summary.dataOpFraction())});
  t.addRow({"Read/write byte ratio", "3.0",
            TextTable::fixed(pc.summary.readWriteByteRatio(), 2), "0.7 (W>R)",
            TextTable::fixed(pe.summary.readWriteByteRatio(), 2)});
  t.addRow({"Mailbox share of data bytes", ">95%",
            TextTable::percent(pc.mailboxByteShare), "no mailboxes",
            TextTable::percent(pe.mailboxByteShare)});
  t.addRow({"Mailboxes among accessed files", "~20%",
            TextTable::percent(pc.mailboxFileShare), "none",
            TextTable::percent(pe.mailboxFileShare)});
  t.addRow({"Lock files among accessed files", "~50%",
            TextTable::percent(pc.lockFileShare), "some",
            TextTable::percent(pe.lockFileShare)});
  t.addRow({"Median block lifetime", ">= 10 min",
            TextTable::fixed(pc.blockMedianLifeSec / 60.0, 1) + " min",
            "< 1 second",
            TextTable::fixed(pe.blockMedianLifeSec, 2) + " s"});
  t.addRow({"Block deaths by overwrite", "~99%",
            TextTable::percent(pc.overwriteDeathShare), "mixed (42%)",
            TextTable::percent(pe.overwriteDeathShare)});
  t.addRow({"Block deaths by deletion", "~0.3%",
            TextTable::percent(pc.deleteDeathShare), "mixed (52%)",
            TextTable::percent(pe.deleteDeathShare)});
  std::fputs(t.render().c_str(), stdout);

  std::printf(
      "\nPaper (Table 1) in words: CAMPUS stores the campus SMTP/POP/login\n"
      "servers' data, is read-dominated (3:1), >95%% of bytes are mailbox\n"
      "traffic, half of accessed files are mailbox locks, blocks live >=10\n"
      "minutes and die almost only by overwriting.  EECS is the department\n"
      "home-directory server: metadata-dominated, writes outnumber reads,\n"
      "most blocks die within a second, deaths split between overwrites\n"
      "and deletion.\n");
  return 0;
}
