// XDR (External Data Representation, RFC 4506) encoding and decoding.
//
// This is the wire substrate for ONC RPC and the NFS protocol codecs.  All
// quantities are big-endian; opaque and string data are padded to 4-byte
// boundaries.  The decoder never reads past its buffer: all accessors
// either succeed or throw XdrError, so callers (the sniffer in particular,
// which decodes possibly-truncated packets) can treat a throw as "not
// decodable" without undefined behaviour.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace nfstrace {

class XdrError : public std::runtime_error {
 public:
  explicit XdrError(const std::string& what) : std::runtime_error(what) {}
};

class XdrEncoder {
 public:
  void putUint32(std::uint32_t v);
  void putInt32(std::int32_t v) { putUint32(static_cast<std::uint32_t>(v)); }
  void putUint64(std::uint64_t v);
  void putInt64(std::int64_t v) { putUint64(static_cast<std::uint64_t>(v)); }
  void putBool(bool v) { putUint32(v ? 1 : 0); }
  /// Variable-length opaque: length word then padded bytes.
  void putOpaque(std::span<const std::uint8_t> data);
  /// Fixed-length opaque: padded bytes, no length word.
  void putFixedOpaque(std::span<const std::uint8_t> data);
  void putString(std::string_view s);

  /// Raw access for embedding pre-encoded bodies.
  void putRaw(std::span<const std::uint8_t> data);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void pad();
  std::vector<std::uint8_t> buf_;
};

class XdrDecoder {
 public:
  explicit XdrDecoder(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint32_t getUint32();
  std::int32_t getInt32() { return static_cast<std::int32_t>(getUint32()); }
  std::uint64_t getUint64();
  std::int64_t getInt64() { return static_cast<std::int64_t>(getUint64()); }
  bool getBool() { return getUint32() != 0; }
  /// Variable-length opaque with a sanity cap on the length word.
  std::vector<std::uint8_t> getOpaque(std::uint32_t maxLen = 1 << 22);
  std::vector<std::uint8_t> getFixedOpaque(std::size_t len);
  std::string getString(std::uint32_t maxLen = 1 << 16);
  /// Skip a variable-length opaque without copying (e.g. WRITE payloads).
  std::uint32_t skipOpaque(std::uint32_t maxLen = 1 << 22);

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool atEnd() const { return pos_ == data_.size(); }

 private:
  void need(std::size_t n) const;
  static std::size_t padded(std::size_t n) { return (n + 3) & ~std::size_t{3}; }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace nfstrace
