#include <gtest/gtest.h>

#include "xdr/xdr.hpp"

namespace nfstrace {
namespace {

TEST(Xdr, Uint32RoundTrip) {
  XdrEncoder enc;
  enc.putUint32(0);
  enc.putUint32(1);
  enc.putUint32(0xdeadbeef);
  enc.putUint32(0xffffffff);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.getUint32(), 0u);
  EXPECT_EQ(dec.getUint32(), 1u);
  EXPECT_EQ(dec.getUint32(), 0xdeadbeefu);
  EXPECT_EQ(dec.getUint32(), 0xffffffffu);
  EXPECT_TRUE(dec.atEnd());
}

TEST(Xdr, BigEndianOnWire) {
  XdrEncoder enc;
  enc.putUint32(0x01020304);
  ASSERT_EQ(enc.size(), 4u);
  EXPECT_EQ(enc.bytes()[0], 0x01);
  EXPECT_EQ(enc.bytes()[3], 0x04);
}

TEST(Xdr, Uint64RoundTrip) {
  XdrEncoder enc;
  enc.putUint64(0x0102030405060708ULL);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.getUint64(), 0x0102030405060708ULL);
}

TEST(Xdr, SignedRoundTrip) {
  XdrEncoder enc;
  enc.putInt32(-42);
  enc.putInt64(-1234567890123LL);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.getInt32(), -42);
  EXPECT_EQ(dec.getInt64(), -1234567890123LL);
}

TEST(Xdr, BoolRoundTrip) {
  XdrEncoder enc;
  enc.putBool(true);
  enc.putBool(false);
  XdrDecoder dec(enc.bytes());
  EXPECT_TRUE(dec.getBool());
  EXPECT_FALSE(dec.getBool());
}

TEST(Xdr, OpaquePadding) {
  XdrEncoder enc;
  std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  enc.putOpaque(data);
  // 4 length + 5 data + 3 pad.
  EXPECT_EQ(enc.size(), 12u);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.getOpaque(), data);
  EXPECT_TRUE(dec.atEnd());
}

TEST(Xdr, EmptyOpaque) {
  XdrEncoder enc;
  enc.putOpaque({});
  EXPECT_EQ(enc.size(), 4u);
  XdrDecoder dec(enc.bytes());
  EXPECT_TRUE(dec.getOpaque().empty());
}

TEST(Xdr, FixedOpaqueNoLengthWord) {
  XdrEncoder enc;
  std::vector<std::uint8_t> data{9, 8, 7};
  enc.putFixedOpaque(data);
  EXPECT_EQ(enc.size(), 4u);  // 3 + 1 pad
  XdrDecoder dec(enc.bytes());
  auto out = dec.getFixedOpaque(3);
  EXPECT_EQ(out, data);
  EXPECT_TRUE(dec.atEnd());
}

TEST(Xdr, StringRoundTrip) {
  XdrEncoder enc;
  enc.putString("hello world");
  enc.putString("");
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.getString(), "hello world");
  EXPECT_EQ(dec.getString(), "");
}

TEST(Xdr, SkipOpaqueReturnsLength) {
  XdrEncoder enc;
  std::vector<std::uint8_t> data(100, 0xaa);
  enc.putOpaque(data);
  enc.putUint32(7);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.skipOpaque(), 100u);
  EXPECT_EQ(dec.getUint32(), 7u);
}

TEST(Xdr, UnderrunThrows) {
  std::vector<std::uint8_t> two{0, 1};
  XdrDecoder dec(two);
  EXPECT_THROW(dec.getUint32(), XdrError);
}

TEST(Xdr, OpaqueLengthSanityCap) {
  XdrEncoder enc;
  enc.putUint32(0x7fffffff);  // absurd length word
  XdrDecoder dec(enc.bytes());
  EXPECT_THROW(dec.getOpaque(1024), XdrError);
}

TEST(Xdr, TruncatedOpaqueThrows) {
  XdrEncoder enc;
  enc.putUint32(100);  // claims 100 bytes but provides none
  XdrDecoder dec(enc.bytes());
  EXPECT_THROW(dec.getOpaque(), XdrError);
}

TEST(Xdr, PositionTracking) {
  XdrEncoder enc;
  enc.putUint32(1);
  enc.putUint64(2);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.position(), 0u);
  dec.getUint32();
  EXPECT_EQ(dec.position(), 4u);
  EXPECT_EQ(dec.remaining(), 8u);
}

TEST(Xdr, RawEmbedding) {
  XdrEncoder inner;
  inner.putUint32(0xabcd);
  XdrEncoder outer;
  outer.putUint32(1);
  outer.putRaw(inner.bytes());
  XdrDecoder dec(outer.bytes());
  EXPECT_EQ(dec.getUint32(), 1u);
  EXPECT_EQ(dec.getUint32(), 0xabcdu);
}

TEST(Xdr, TakeMovesBuffer) {
  XdrEncoder enc;
  enc.putUint32(5);
  auto buf = enc.take();
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(enc.size(), 0u);
}

}  // namespace
}  // namespace nfstrace
