#include <gtest/gtest.h>

#include "server/readahead.hpp"
#include "server/server.hpp"

namespace nfstrace {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : fs_(InMemoryFs::Config{}), server_(fs_) {}

  NfsReplyRes call(const NfsCallArgs& args) {
    return server_.handle(args, 100, 100, t_ += 1000);
  }

  FileHandle createFile(const std::string& name, std::uint64_t size = 0) {
    CreateArgs args;
    args.dir = fs_.rootHandle();
    args.name = name;
    args.attrs.setSize = size > 0;
    args.attrs.size = size;
    auto res = std::get<CreateRes>(call(NfsCallArgs{args}));
    EXPECT_EQ(res.status, NfsStat::Ok);
    EXPECT_TRUE(res.hasFh);
    return res.fh;
  }

  InMemoryFs fs_;
  NfsServer server_;
  MicroTime t_ = seconds(10);
};

TEST_F(ServerTest, NullOp) {
  auto res = call(NullArgs{});
  EXPECT_TRUE(std::holds_alternative<NullRes>(res));
}

TEST_F(ServerTest, GetattrAfterCreate) {
  FileHandle fh = createFile("f", 1234);
  auto res = std::get<GetattrRes>(call(GetattrArgs{fh}));
  EXPECT_EQ(res.status, NfsStat::Ok);
  EXPECT_EQ(res.attrs.size, 1234u);
  EXPECT_EQ(res.attrs.uid, 100u);  // from the AUTH_UNIX credential
}

TEST_F(ServerTest, LookupReturnsDirAttrsEvenOnMiss) {
  auto res = std::get<LookupRes>(call(LookupArgs{fs_.rootHandle(), "nope"}));
  EXPECT_EQ(res.status, NfsStat::ErrNoEnt);
  EXPECT_TRUE(res.hasDirAttrs);
  EXPECT_EQ(res.dirAttrs.type, FileType::Directory);
}

TEST_F(ServerTest, WriteProducesWccPair) {
  FileHandle fh = createFile("f", 1000);
  auto res = std::get<WriteRes>(
      call(WriteArgs{fh, 1000, 500, StableHow::Unstable}));
  ASSERT_EQ(res.status, NfsStat::Ok);
  ASSERT_TRUE(res.wcc.hasPre);
  ASSERT_TRUE(res.wcc.hasPost);
  EXPECT_EQ(res.wcc.pre.size, 1000u);
  EXPECT_EQ(res.wcc.post.size, 1500u);
  EXPECT_EQ(res.count, 500u);
  EXPECT_EQ(res.committed, StableHow::Unstable);
}

TEST_F(ServerTest, ReadReturnsEof) {
  FileHandle fh = createFile("f", 100);
  auto res = std::get<ReadRes>(call(ReadArgs{fh, 0, 8192}));
  EXPECT_EQ(res.status, NfsStat::Ok);
  EXPECT_EQ(res.count, 100u);
  EXPECT_TRUE(res.eof);
  EXPECT_TRUE(res.hasAttrs);
}

TEST_F(ServerTest, ExclusiveCreateConflict) {
  createFile("lock");
  CreateArgs args;
  args.dir = fs_.rootHandle();
  args.name = "lock";
  args.mode = CreateMode::Exclusive;
  auto res = std::get<CreateRes>(call(NfsCallArgs{args}));
  EXPECT_EQ(res.status, NfsStat::ErrExist);
  EXPECT_TRUE(res.dirWcc.hasPost);  // dir wcc present even on failure
}

TEST_F(ServerTest, RemoveAndStale) {
  FileHandle fh = createFile("f");
  auto rm = std::get<RemoveRes>(call(RemoveArgs{fs_.rootHandle(), "f"}));
  EXPECT_EQ(rm.status, NfsStat::Ok);
  auto ga = std::get<GetattrRes>(call(GetattrArgs{fh}));
  EXPECT_EQ(ga.status, NfsStat::ErrStale);
}

TEST_F(ServerTest, RenameWccBothDirs) {
  createFile("a");
  auto res = std::get<RenameRes>(
      call(RenameArgs{fs_.rootHandle(), "a", fs_.rootHandle(), "b"}));
  EXPECT_EQ(res.status, NfsStat::Ok);
  EXPECT_TRUE(res.fromDirWcc.hasPost);
  EXPECT_TRUE(res.toDirWcc.hasPost);
}

TEST_F(ServerTest, ReaddirPlusCarriesHandles) {
  createFile("x");
  createFile("y");
  ReaddirplusArgs args;
  args.dir = fs_.rootHandle();
  auto res = std::get<ReaddirRes>(call(NfsCallArgs{args}));
  ASSERT_EQ(res.status, NfsStat::Ok);
  ASSERT_GE(res.entries.size(), 4u);  // . .. x y
  bool sawX = false;
  for (const auto& e : res.entries) {
    if (e.name == "x") {
      sawX = true;
      EXPECT_TRUE(e.hasFh);
      EXPECT_TRUE(e.hasAttrs);
    }
  }
  EXPECT_TRUE(sawX);
}

TEST_F(ServerTest, ReaddirPlainHasNoHandles) {
  createFile("x");
  ReaddirArgs args;
  args.dir = fs_.rootHandle();
  auto res = std::get<ReaddirRes>(call(NfsCallArgs{args}));
  ASSERT_EQ(res.status, NfsStat::Ok);
  for (const auto& e : res.entries) {
    EXPECT_FALSE(e.hasFh);
    EXPECT_FALSE(e.hasAttrs);
  }
}

TEST_F(ServerTest, CommitOnLiveAndStale) {
  FileHandle fh = createFile("f", 100);
  auto ok = std::get<CommitRes>(call(CommitArgs{fh, 0, 100}));
  EXPECT_EQ(ok.status, NfsStat::Ok);
  call(RemoveArgs{fs_.rootHandle(), "f"});
  auto stale = std::get<CommitRes>(call(CommitArgs{fh, 0, 100}));
  EXPECT_EQ(stale.status, NfsStat::ErrStale);
}

TEST_F(ServerTest, MknodUnsupported) {
  MknodArgs args;
  args.dir = fs_.rootHandle();
  args.name = "fifo";
  auto res = std::get<CreateRes>(call(NfsCallArgs{args}));
  EXPECT_EQ(res.status, NfsStat::ErrNotSupp);
}

TEST_F(ServerTest, OpCounters) {
  createFile("f");
  call(GetattrArgs{fs_.rootHandle()});
  call(GetattrArgs{fs_.rootHandle()});
  EXPECT_EQ(server_.callCount(NfsOp::Getattr), 2u);
  EXPECT_EQ(server_.callCount(NfsOp::Create), 1u);
  EXPECT_EQ(server_.totalCalls(), 3u);
}

// ------------------------------------------------------------ read-ahead

TEST(DiskModel, SeekVsSequentialCosts) {
  DiskModel disk;
  // First access: seek + transfer.
  std::int64_t c1 = disk.read(1, 0, 0);
  // Adjacent block: transfer only.
  std::int64_t c2 = disk.read(1, 1, 0);
  EXPECT_GT(c1, c2);
  // Far block: seek again.
  std::int64_t c3 = disk.read(1, 1000, 0);
  EXPECT_GT(c3, c2);
}

TEST(DiskModel, CacheHitsAreCheap) {
  DiskModel disk;
  disk.read(1, 0, 4);  // prefetch blocks 1..4
  std::int64_t hit = disk.read(1, 1, 0);
  EXPECT_EQ(disk.cacheHits(), 1u);
  EXPECT_LT(hit, 200);
}

TEST(ReadAhead, StrictGrowsOnSequential) {
  ReadAheadEngine engine({ReadAheadPolicy::StrictSequential, 8, 16, 0.6, 10});
  EXPECT_EQ(engine.onRead(1, 0, 1), 0u);  // no history yet
  EXPECT_GE(engine.onRead(1, 1, 1), 1u);
  EXPECT_GE(engine.onRead(1, 2, 1), 2u);
}

TEST(ReadAhead, StrictResetsOnReorder) {
  ReadAheadEngine engine({ReadAheadPolicy::StrictSequential, 8, 16, 0.6, 10});
  engine.onRead(1, 0, 1);
  engine.onRead(1, 1, 1);
  engine.onRead(1, 2, 1);
  // A single out-of-order request relegates the stream to "random".
  EXPECT_EQ(engine.onRead(1, 1, 1), 0u);
}

TEST(ReadAhead, MetricSurvivesIsolatedReorder) {
  ReadAheadEngine engine(
      {ReadAheadPolicy::SequentialityMetric, 8, 16, 0.6, 10});
  // Warm up with a sequential stream.
  for (std::uint64_t b = 0; b < 10; ++b) engine.onRead(1, b, 1);
  EXPECT_GT(engine.onRead(1, 10, 1), 0u);
  // One swapped pair must not kill the prefetch.
  engine.onRead(1, 12, 1);
  EXPECT_GT(engine.onRead(1, 11, 1), 0u);
}

TEST(ReadAhead, PerFileState) {
  ReadAheadEngine engine({ReadAheadPolicy::StrictSequential, 8, 16, 0.6, 10});
  engine.onRead(1, 0, 1);
  engine.onRead(1, 1, 1);
  // A different file starts fresh.
  EXPECT_EQ(engine.onRead(2, 0, 1), 0u);
}

}  // namespace
}  // namespace nfstrace
