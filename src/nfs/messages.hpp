// Typed NFS call arguments and reply results, with XDR codecs for both
// NFSv3 (full) and NFSv2 (the procedures that exist there).
//
// The simulated client encodes calls, the simulated server decodes them and
// encodes replies, and the sniffer decodes both directions.  WRITE and READ
// payloads are synthetic: the codec carries only the byte count, and the
// encoder emits that many zero bytes so the on-wire sizes (and therefore
// the monitor-port loss model) are faithful.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "nfs/proc.hpp"
#include "nfs/types.hpp"
#include "xdr/xdr.hpp"

namespace nfstrace {

// ---------------------------------------------------------------- call args

struct NullArgs {};

struct GetattrArgs {
  FileHandle fh;
};

struct SetattrArgs {
  FileHandle fh;
  Sattr attrs;
};

struct LookupArgs {
  FileHandle dir;
  std::string name;
};

struct AccessArgs {
  FileHandle fh;
  std::uint32_t access = 0x3f;  // request all bits by default
};

struct ReadlinkArgs {
  FileHandle fh;
};

struct ReadArgs {
  FileHandle fh;
  std::uint64_t offset = 0;
  std::uint32_t count = 0;
};

/// v3 stable_how values.
enum class StableHow : std::uint32_t { Unstable = 0, DataSync = 1, FileSync = 2 };

struct WriteArgs {
  FileHandle fh;
  std::uint64_t offset = 0;
  std::uint32_t count = 0;  // bytes carried (payload is synthetic zeros)
  StableHow stable = StableHow::Unstable;
};

/// v3 createmode3.
enum class CreateMode : std::uint32_t { Unchecked = 0, Guarded = 1, Exclusive = 2 };

struct CreateArgs {
  FileHandle dir;
  std::string name;
  CreateMode mode = CreateMode::Unchecked;
  Sattr attrs;      // for UNCHECKED/GUARDED
  std::uint64_t verifier = 0;  // for EXCLUSIVE
};

struct MkdirArgs {
  FileHandle dir;
  std::string name;
  Sattr attrs;
};

struct SymlinkArgs {
  FileHandle dir;
  std::string name;
  Sattr attrs;
  std::string target;
};

struct MknodArgs {
  FileHandle dir;
  std::string name;
  FileType type = FileType::Fifo;
  Sattr attrs;
};

struct RemoveArgs {
  FileHandle dir;
  std::string name;
};

struct RmdirArgs {
  FileHandle dir;
  std::string name;
};

struct RenameArgs {
  FileHandle fromDir;
  std::string fromName;
  FileHandle toDir;
  std::string toName;
};

struct LinkArgs {
  FileHandle fh;
  FileHandle dir;
  std::string name;
};

struct ReaddirArgs {
  FileHandle dir;
  std::uint64_t cookie = 0;
  std::uint64_t cookieVerf = 0;
  std::uint32_t count = 4096;
};

struct ReaddirplusArgs {
  FileHandle dir;
  std::uint64_t cookie = 0;
  std::uint64_t cookieVerf = 0;
  std::uint32_t dirCount = 1024;
  std::uint32_t maxCount = 8192;
};

struct FsstatArgs {
  FileHandle fh;
};

struct FsinfoArgs {
  FileHandle fh;
};

struct PathconfArgs {
  FileHandle fh;
};

struct CommitArgs {
  FileHandle fh;
  std::uint64_t offset = 0;
  std::uint32_t count = 0;
};

using NfsCallArgs =
    std::variant<NullArgs, GetattrArgs, SetattrArgs, LookupArgs, AccessArgs,
                 ReadlinkArgs, ReadArgs, WriteArgs, CreateArgs, MkdirArgs,
                 SymlinkArgs, MknodArgs, RemoveArgs, RmdirArgs, RenameArgs,
                 LinkArgs, ReaddirArgs, ReaddirplusArgs, FsstatArgs,
                 FsinfoArgs, PathconfArgs, CommitArgs>;

/// The version-independent operation for a set of call args.
NfsOp opOf(const NfsCallArgs& args);

// ------------------------------------------------------------ reply results

struct NullRes {};

struct GetattrRes {
  NfsStat status = NfsStat::Ok;
  Fattr attrs;  // valid iff status == Ok
};

struct SetattrRes {
  NfsStat status = NfsStat::Ok;
  WccData wcc;
};

struct LookupRes {
  NfsStat status = NfsStat::Ok;
  FileHandle fh;        // valid iff Ok
  bool hasObjAttrs = false;
  Fattr objAttrs;
  bool hasDirAttrs = false;
  Fattr dirAttrs;
};

struct AccessRes {
  NfsStat status = NfsStat::Ok;
  bool hasAttrs = false;
  Fattr attrs;
  std::uint32_t access = 0;
};

struct ReadlinkRes {
  NfsStat status = NfsStat::Ok;
  bool hasAttrs = false;
  Fattr attrs;
  std::string target;
};

struct ReadRes {
  NfsStat status = NfsStat::Ok;
  bool hasAttrs = false;
  Fattr attrs;
  std::uint32_t count = 0;  // bytes returned (payload synthetic)
  bool eof = false;
};

struct WriteRes {
  NfsStat status = NfsStat::Ok;
  WccData wcc;
  std::uint32_t count = 0;
  StableHow committed = StableHow::FileSync;
  std::uint64_t verifier = 0;
};

struct CreateRes {
  NfsStat status = NfsStat::Ok;
  bool hasFh = false;
  FileHandle fh;
  bool hasAttrs = false;
  Fattr attrs;
  WccData dirWcc;
};

using MkdirRes = CreateRes;
using SymlinkRes = CreateRes;
using MknodRes = CreateRes;

struct RemoveRes {
  NfsStat status = NfsStat::Ok;
  WccData dirWcc;
};

using RmdirRes = RemoveRes;

struct RenameRes {
  NfsStat status = NfsStat::Ok;
  WccData fromDirWcc;
  WccData toDirWcc;
};

struct LinkRes {
  NfsStat status = NfsStat::Ok;
  bool hasAttrs = false;
  Fattr attrs;
  WccData dirWcc;
};

struct DirEntry {
  std::uint64_t fileid = 0;
  std::string name;
  std::uint64_t cookie = 0;
  // READDIRPLUS extras:
  bool hasAttrs = false;
  Fattr attrs;
  bool hasFh = false;
  FileHandle fh;
};

struct ReaddirRes {
  NfsStat status = NfsStat::Ok;
  bool hasDirAttrs = false;
  Fattr dirAttrs;
  std::uint64_t cookieVerf = 0;
  std::vector<DirEntry> entries;
  bool eof = true;
  bool plus = false;  // READDIRPLUS reply shape
};

struct FsstatRes {
  NfsStat status = NfsStat::Ok;
  bool hasAttrs = false;
  Fattr attrs;
  std::uint64_t totalBytes = 0;
  std::uint64_t freeBytes = 0;
  std::uint64_t availBytes = 0;
  std::uint64_t totalFiles = 0;
  std::uint64_t freeFiles = 0;
  std::uint64_t availFiles = 0;
  std::uint32_t invarsec = 0;
};

struct FsinfoRes {
  NfsStat status = NfsStat::Ok;
  bool hasAttrs = false;
  Fattr attrs;
  std::uint32_t rtmax = 32768, rtpref = 32768, rtmult = 512;
  std::uint32_t wtmax = 32768, wtpref = 32768, wtmult = 512;
  std::uint32_t dtpref = 8192;
  std::uint64_t maxFileSize = 1ULL << 40;
  NfsTime timeDelta{0, 1000};
  std::uint32_t properties = 0x1b;  // FSF3_LINK|SYMLINK|HOMOGENEOUS|CANSETTIME
};

struct PathconfRes {
  NfsStat status = NfsStat::Ok;
  bool hasAttrs = false;
  Fattr attrs;
  std::uint32_t linkMax = 32767;
  std::uint32_t nameMax = 255;
  bool noTrunc = true;
  bool chownRestricted = true;
  bool caseInsensitive = false;
  bool casePreserving = true;
};

struct CommitRes {
  NfsStat status = NfsStat::Ok;
  WccData wcc;
  std::uint64_t verifier = 0;
};

using NfsReplyRes =
    std::variant<NullRes, GetattrRes, SetattrRes, LookupRes, AccessRes,
                 ReadlinkRes, ReadRes, WriteRes, CreateRes, RemoveRes,
                 RenameRes, LinkRes, ReaddirRes, FsstatRes, FsinfoRes,
                 PathconfRes, CommitRes>;

NfsStat statusOf(const NfsReplyRes& res);

// ------------------------------------------------------------------- codecs

/// Encode v3 call arguments (everything after the RPC call header).
void encodeCall3(XdrEncoder& enc, const NfsCallArgs& args);
/// Decode v3 call arguments for the given procedure.
NfsCallArgs decodeCall3(Proc3 proc, XdrDecoder& dec);

/// Encode v3 reply results (everything after the RPC accepted-reply header).
void encodeReply3(XdrEncoder& enc, Proc3 proc, const NfsReplyRes& res);
/// Decode v3 reply results for the given procedure.
NfsReplyRes decodeReply3(Proc3 proc, XdrDecoder& dec);

/// NFSv2 codecs for procedures that exist in v2.  Calls/replies are mapped
/// to and from the shared (v3-shaped) structures; v2's 32-bit sizes and
/// fixed 32-byte handles are handled internally.  Throws XdrError if the
/// args have no v2 representation.
void encodeCall2(XdrEncoder& enc, const NfsCallArgs& args);
NfsCallArgs decodeCall2(Proc2 proc, XdrDecoder& dec);
void encodeReply2(XdrEncoder& enc, Proc2 proc, const NfsReplyRes& res);
NfsReplyRes decodeReply2(Proc2 proc, XdrDecoder& dec);

/// Handle codec helpers shared by v2/v3.
void encodeFh3(XdrEncoder& enc, const FileHandle& fh);
FileHandle decodeFh3(XdrDecoder& dec);
void encodeFh2(XdrEncoder& enc, const FileHandle& fh);
FileHandle decodeFh2(XdrDecoder& dec);

}  // namespace nfstrace
