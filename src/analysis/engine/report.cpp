#include "analysis/engine/report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "obs/json.hpp"
#include "util/table.hpp"

namespace nfstrace {
namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n), sizeof(buf) - 1));
}

}  // namespace

std::string renderReportText(const std::string& input, StandardAnalyses& a) {
  std::string out;
  const TraceSummary& s = a.summary.result();
  appendf(out, "%s: %" PRIu64 " records, %.2f simulated days\n\n",
          input.c_str(), s.totalOps, s.days());

  // Operation mix (Table 2).
  {
    TextTable t({"Operation", "Calls", "% of total"});
    for (std::size_t i = 0; i < kNfsOpCount; ++i) {
      if (s.opCounts[i] == 0) continue;
      t.addRow({std::string(nfsOpName(static_cast<NfsOp>(i))),
                TextTable::withCommas(s.opCounts[i]),
                TextTable::percent(static_cast<double>(s.opCounts[i]) /
                                   static_cast<double>(s.totalOps))});
    }
    out += t.render();
  }
  appendf(out,
          "\ndata: %.1f MB read (%" PRIu64 " ops), %.1f MB written (%" PRIu64
          " ops)\nR/W ratios: bytes %.2f, ops %.2f; replies missing: %" PRIu64
          "\n",
          static_cast<double>(s.bytesRead) / 1e6, s.readOps,
          static_cast<double>(s.bytesWritten) / 1e6, s.writeOps,
          s.readWriteByteRatio(), s.readWriteOpRatio(), s.repliesMissing);

  // Hourly load (Table 5 flavor): all-hours vs peak-hours variance.
  {
    auto all = a.hourly.result().allHours();
    auto peak = a.hourly.result().peakHours();
    auto win = a.hourly.result().findLeastVarianceWindow();
    appendf(out,
            "\nhourly load: %zu hours; ops/hour mean %.0f (stddev %.0f%%), "
            "peak-hours mean %.0f (stddev %.0f%%)\n"
            "least-variance weekday window: %02d:00-%02d:00 (stddev %.0f%%)\n",
            a.hourly.result().hours().size(), all.totalOps.mean(),
            all.totalOps.stddevPercentOfMean(), peak.totalOps.mean(),
            peak.totalOps.stddevPercentOfMean(), win.startHour, win.endHour,
            win.stddevPercent);
  }

  // Reorder sweep (Figure 1).
  if (!a.reorder.sweep().empty()) {
    out += "\nreorder windows (fraction of accesses swapped):\n";
    TextTable t({"window (ms)", "swapped"});
    for (const auto& [w, frac] : a.reorder.sweep()) {
      t.addRow({TextTable::fixed(static_cast<double>(w) / 1000.0, 1),
                TextTable::percent(frac, 2)});
    }
    out += t.render();
  }

  // Run patterns (Table 3, with the standard 10 ms reorder window).
  {
    const auto& rp = a.runs.patterns();
    appendf(out, "\nruns: %zu total (%.2f%% of accesses reorder-swapped)\n",
            a.runs.runs().size(), 100.0 * a.runs.reorderSwappedFraction());
    TextTable t({"Type", "% of runs", "entire", "sequential", "random"});
    t.addRow({"read", TextTable::percent(rp.readFrac),
              TextTable::percent(rp.readEntire),
              TextTable::percent(rp.readSeq),
              TextTable::percent(rp.readRandom)});
    t.addRow({"write", TextTable::percent(rp.writeFrac),
              TextTable::percent(rp.writeEntire),
              TextTable::percent(rp.writeSeq),
              TextTable::percent(rp.writeRandom)});
    t.addRow({"read-write", TextTable::percent(rp.rwFrac),
              TextTable::percent(rp.rwEntire), TextTable::percent(rp.rwSeq),
              TextTable::percent(rp.rwRandom)});
    out += t.render();
  }

  // Block lifetimes over the trace's own span (Table 4).
  {
    const auto& bl = a.blocklife.stats();
    auto pct = [](std::uint64_t n, std::uint64_t d) {
      return d ? 100.0 * static_cast<double>(n) / static_cast<double>(d)
               : 0.0;
    };
    appendf(out,
            "\nblock life: %" PRIu64 " births (%.1f%% writes), %" PRIu64
            " deaths (%.1f%% overwrite, %.1f%% truncate, %.1f%% delete)\n",
            bl.births, pct(bl.birthsWrite, bl.births), bl.deaths,
            pct(bl.deathsOverwrite, bl.deaths),
            pct(bl.deathsTruncate, bl.deaths),
            pct(bl.deathsDelete, bl.deaths));
    auto lifetimes = a.blocklife.lifetimes();  // copy: quantile sorts
    if (!lifetimes.empty()) {
      appendf(out, "median block lifetime: %.1f s\n",
              lifetimes.quantile(0.5));
    }
  }

  // Per-user activity.
  {
    const UserStats& us = a.users.result();
    if (us.userCount() > 1) {
      appendf(out,
              "\nusers: %zu distinct UIDs; top 10%% generate %.1f%% of "
              "calls (imbalance %.2f)\n",
              us.userCount(), 100.0 * us.topUserShare(0.10), us.imbalance());
      auto top = us.byActivity();
      TextTable t({"UID", "ops", "MB read", "MB written", "active hours"});
      for (std::size_t i = 0; i < std::min<std::size_t>(5, top.size());
           ++i) {
        t.addRow({std::to_string(top[i].uid),
                  TextTable::withCommas(top[i].totalOps),
                  TextTable::fixed(
                      static_cast<double>(top[i].bytesRead) / 1e6, 1),
                  TextTable::fixed(
                      static_cast<double>(top[i].bytesWritten) / 1e6, 1),
                  std::to_string(top[i].activeHours)});
      }
      out += t.render();
    }
  }

  // Name census (§6.3).
  {
    const FileLifeCensus& census = a.names.census();
    if (census.totalCreated()) {
      appendf(out,
              "\nfile churn: %" PRIu64 " created, %" PRIu64
              " deleted (%.1f%% locks)\n",
              census.totalCreated(), census.totalDeleted(),
              100.0 * census.lockFractionOfDeleted());
      TextTable t({"Category", "created", "deleted", "p50 life (s)"});
      for (const auto& [cat, cs] : census.byCategory()) {
        auto lt = cs.lifetimesSec;  // copy: quantile sorts
        t.addRow({std::string(nameCategoryLabel(cat)),
                  TextTable::withCommas(cs.created),
                  TextTable::withCommas(cs.deleted),
                  lt.empty() ? "-" : TextTable::fixed(lt.quantile(0.5), 3)});
      }
      out += t.render();
    }
  }

  // Hierarchy reconstruction coverage (§4.1.1).
  appendf(out,
          "\nhierarchy: %zu known files, parent coverage %.1f%%\n",
          a.pathrec.reconstructor().knownFiles(),
          100.0 * a.pathrec.reconstructor().parentCoverage());
  return out;
}

std::string renderReportJson(const std::string& input, StandardAnalyses& a) {
  const TraceSummary& s = a.summary.result();
  obs::JsonWriter w;
  w.beginObject();
  w.field("input", input);
  w.field("records", s.totalOps);
  w.field("days", s.days());

  w.key("op_mix").beginArray();
  for (std::size_t i = 0; i < kNfsOpCount; ++i) {
    if (s.opCounts[i] == 0) continue;
    w.beginObject();
    w.field("op", nfsOpName(static_cast<NfsOp>(i)));
    w.field("calls", s.opCounts[i]);
    w.field("fraction", static_cast<double>(s.opCounts[i]) /
                            static_cast<double>(s.totalOps));
    w.endObject();
  }
  w.endArray();

  w.key("data").beginObject();
  w.field("bytes_read", s.bytesRead);
  w.field("read_ops", s.readOps);
  w.field("bytes_written", s.bytesWritten);
  w.field("write_ops", s.writeOps);
  w.field("rw_byte_ratio", s.readWriteByteRatio());
  w.field("rw_op_ratio", s.readWriteOpRatio());
  w.field("replies_missing", s.repliesMissing);
  w.endObject();

  {
    auto all = a.hourly.result().allHours();
    auto peak = a.hourly.result().peakHours();
    w.key("hourly").beginObject();
    w.field("hours", static_cast<std::uint64_t>(
                         a.hourly.result().hours().size()));
    w.field("ops_mean", all.totalOps.mean());
    w.field("ops_stddev_pct", all.totalOps.stddevPercentOfMean());
    w.field("peak_ops_mean", peak.totalOps.mean());
    w.field("peak_ops_stddev_pct", peak.totalOps.stddevPercentOfMean());
    w.endObject();
  }

  w.key("reorder_sweep").beginArray();
  for (const auto& [win, frac] : a.reorder.sweep()) {
    w.beginObject();
    w.field("window_us", static_cast<std::int64_t>(win));
    w.field("swapped_fraction", frac);
    w.endObject();
  }
  w.endArray();

  {
    const auto& rp = a.runs.patterns();
    w.key("runs").beginObject();
    w.field("total", static_cast<std::uint64_t>(a.runs.runs().size()));
    w.field("reorder_swapped_fraction", a.runs.reorderSwappedFraction());
    auto pattern = [&w](const char* name, double frac, double entire,
                        double seq, double random) {
      w.key(name).beginObject();
      w.field("fraction", frac);
      w.field("entire", entire);
      w.field("sequential", seq);
      w.field("random", random);
      w.endObject();
    };
    pattern("read", rp.readFrac, rp.readEntire, rp.readSeq, rp.readRandom);
    pattern("write", rp.writeFrac, rp.writeEntire, rp.writeSeq,
            rp.writeRandom);
    pattern("read_write", rp.rwFrac, rp.rwEntire, rp.rwSeq, rp.rwRandom);
    w.endObject();
  }

  {
    const auto& bl = a.blocklife.stats();
    w.key("block_life").beginObject();
    w.field("births", bl.births);
    w.field("deaths", bl.deaths);
    w.field("births_write", bl.birthsWrite);
    w.field("deaths_overwrite", bl.deathsOverwrite);
    w.field("deaths_truncate", bl.deathsTruncate);
    w.field("deaths_delete", bl.deathsDelete);
    auto lifetimes = a.blocklife.lifetimes();  // copy: quantile sorts
    if (lifetimes.empty()) {
      w.key("median_lifetime_s").valueNull();
    } else {
      w.field("median_lifetime_s", lifetimes.quantile(0.5));
    }
    w.endObject();
  }

  {
    const UserStats& us = a.users.result();
    w.key("users").beginObject();
    w.field("count", static_cast<std::uint64_t>(us.userCount()));
    w.field("top_decile_share", us.topUserShare(0.10));
    w.field("imbalance", us.imbalance());
    w.endObject();
  }

  {
    const FileLifeCensus& census = a.names.census();
    w.key("file_churn").beginObject();
    w.field("created", census.totalCreated());
    w.field("deleted", census.totalDeleted());
    w.field("lock_fraction_of_deleted", census.lockFractionOfDeleted());
    w.endObject();
  }

  w.key("hierarchy").beginObject();
  w.field("known_files", static_cast<std::uint64_t>(
                             a.pathrec.reconstructor().knownFiles()));
  w.field("parent_coverage", a.pathrec.reconstructor().parentCoverage());
  w.endObject();

  w.endObject();
  return w.str() + "\n";
}

}  // namespace nfstrace
