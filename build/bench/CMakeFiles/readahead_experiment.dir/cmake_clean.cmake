file(REMOVE_RECURSE
  "CMakeFiles/readahead_experiment.dir/readahead_experiment.cpp.o"
  "CMakeFiles/readahead_experiment.dir/readahead_experiment.cpp.o.d"
  "readahead_experiment"
  "readahead_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/readahead_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
