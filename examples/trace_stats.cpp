// Trace statistics tool: run the paper's analyses over any trace file —
// the `nfsscan` counterpart to capture_to_trace's `nfsdump`.
//
//   trace_stats [--json] [--recover] [trace-file]
//
// Prints the operation mix, data volumes, hourly activity, run pattern
// classification, block-lifetime summary, and name-category census.
// With --json the summary is emitted as one JSON object on stdout (via
// the obs JSON exporter) for scripting; progress goes to stderr.
// With --recover a damaged trace is read end-to-end anyway: corrupt
// regions are skipped to the next parseable boundary and a recovery
// summary (records recovered / skipped / resync count) goes to stderr.
// With no input argument it generates a demo trace first.
#include <cstdio>
#include <string>

#include "analysis/blocklife.hpp"
#include "analysis/names.hpp"
#include "analysis/reorder.hpp"
#include "analysis/runs.hpp"
#include "analysis/summary.hpp"
#include "analysis/users.hpp"
#include "obs/json.hpp"
#include "trace/tracefile.hpp"
#include "util/table.hpp"
#include "workload/campus.hpp"
#include "workload/sim.hpp"

using namespace nfstrace;

namespace {

std::string makeDemoTrace(bool toStderr) {
  std::string path = "/tmp/trace_stats_demo.trace";
  std::fprintf(toStderr ? stderr : stdout,
               "no input given; generating a demo trace at %s\n\n",
               path.c_str());
  SimEnvironment::Config cfg;
  cfg.fsConfig.fsid = 2;
  cfg.clientHosts = 3;
  SimEnvironment env(cfg);
  CampusConfig wl;
  wl.users = 12;
  CampusWorkload workload(wl, env);
  MicroTime start = days(1) + hours(9);
  workload.setup(start);
  workload.run(start, start + hours(2));
  env.finishCapture();
  TraceWriter writer(path);
  for (const auto& rec : env.records()) writer.write(rec);
  return path;
}

/// --json: the whole summary as one machine-readable object on stdout,
/// built with the obs JSON exporter instead of hand-rolled printf.
void emitJson(const std::string& input,
              const std::vector<TraceRecord>& records) {
  auto s = summarize(records);
  obs::JsonWriter w;
  w.beginObject();
  w.field("input", input);
  w.field("records", s.totalOps);
  w.field("days", s.days());

  w.key("op_mix").beginArray();
  for (std::size_t i = 0; i < kNfsOpCount; ++i) {
    if (s.opCounts[i] == 0) continue;
    w.beginObject();
    w.field("op", nfsOpName(static_cast<NfsOp>(i)));
    w.field("calls", s.opCounts[i]);
    w.field("fraction", static_cast<double>(s.opCounts[i]) /
                            static_cast<double>(s.totalOps));
    w.endObject();
  }
  w.endArray();

  w.key("data").beginObject();
  w.field("bytes_read", s.bytesRead);
  w.field("read_ops", s.readOps);
  w.field("bytes_written", s.bytesWritten);
  w.field("write_ops", s.writeOps);
  w.field("rw_byte_ratio", s.readWriteByteRatio());
  w.field("rw_op_ratio", s.readWriteOpRatio());
  w.field("replies_missing", s.repliesMissing);
  w.endObject();

  {
    auto sorted = sortWithReorderWindow(records, 10'000);
    auto runs = detectRuns(sorted.records);
    auto rp = summarizeRunPatterns(runs);
    w.key("runs").beginObject();
    w.field("total", static_cast<std::uint64_t>(runs.size()));
    w.field("reorder_swapped_fraction", sorted.swappedFraction());
    auto pattern = [&w](const char* name, double frac, double entire,
                        double seq, double random) {
      w.key(name).beginObject();
      w.field("fraction", frac);
      w.field("entire", entire);
      w.field("sequential", seq);
      w.field("random", random);
      w.endObject();
    };
    pattern("read", rp.readFrac, rp.readEntire, rp.readSeq, rp.readRandom);
    pattern("write", rp.writeFrac, rp.writeEntire, rp.writeSeq,
            rp.writeRandom);
    pattern("read_write", rp.rwFrac, rp.rwEntire, rp.rwSeq, rp.rwRandom);
    w.endObject();
  }

  {
    BlockLifeConfig cfg;
    cfg.phase1Start = s.firstTs;
    cfg.phase1Length = std::max<MicroTime>((s.lastTs - s.firstTs) / 2, 1);
    cfg.phase2Length = cfg.phase1Length;
    EmpiricalCdf lifetimes;
    auto bl = analyzeBlockLife(records, cfg, &lifetimes);
    w.key("block_life").beginObject();
    w.field("births", bl.births);
    w.field("deaths", bl.deaths);
    w.field("births_write", bl.birthsWrite);
    w.field("deaths_overwrite", bl.deathsOverwrite);
    w.field("deaths_truncate", bl.deathsTruncate);
    w.field("deaths_delete", bl.deathsDelete);
    if (lifetimes.empty()) {
      w.key("median_lifetime_s").valueNull();
    } else {
      w.field("median_lifetime_s", lifetimes.quantile(0.5));
    }
    w.endObject();
  }

  {
    UserStats us;
    for (const auto& r : records) us.observe(r);
    w.key("users").beginObject();
    w.field("count", static_cast<std::uint64_t>(us.userCount()));
    w.field("top_decile_share", us.topUserShare(0.10));
    w.field("imbalance", us.imbalance());
    w.endObject();
  }

  {
    FileLifeCensus census;
    for (const auto& r : records) census.observe(r);
    census.finish();
    w.key("file_churn").beginObject();
    w.field("created", census.totalCreated());
    w.field("deleted", census.totalDeleted());
    w.field("lock_fraction_of_deleted", census.lockFractionOfDeleted());
    w.endObject();
  }

  w.endObject();
  std::printf("%s\n", w.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool recover = false;
  std::string input;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--recover") {
      recover = true;
    } else {
      input = arg;
    }
  }
  if (input.empty()) input = makeDemoTrace(json);
  std::vector<TraceRecord> records;
  if (recover) {
    TraceReader::RecoverStats rs;
    records = TraceReader::recoverAll(input, &rs);
    std::fprintf(stderr,
                 "recovery: %llu records recovered, %llu skipped "
                 "(%llu resyncs, %llu checkpoints)\n",
                 static_cast<unsigned long long>(rs.recovered),
                 static_cast<unsigned long long>(rs.skipped),
                 static_cast<unsigned long long>(rs.resyncs),
                 static_cast<unsigned long long>(rs.checkpoints));
  } else {
    records = TraceReader::readAll(input);
  }
  if (records.empty()) {
    std::fprintf(stderr, "%s: no records\n", input.c_str());
    return 1;
  }
  if (json) {
    emitJson(input, records);
    return 0;
  }

  auto s = summarize(records);
  std::printf("%s: %llu records, %.2f simulated days\n\n", input.c_str(),
              static_cast<unsigned long long>(s.totalOps), s.days());

  // Operation mix.
  {
    TextTable t({"Operation", "Calls", "% of total"});
    for (std::size_t i = 0; i < kNfsOpCount; ++i) {
      if (s.opCounts[i] == 0) continue;
      t.addRow({std::string(nfsOpName(static_cast<NfsOp>(i))),
                TextTable::withCommas(s.opCounts[i]),
                TextTable::percent(static_cast<double>(s.opCounts[i]) /
                                   static_cast<double>(s.totalOps))});
    }
    std::fputs(t.render().c_str(), stdout);
  }
  std::printf(
      "\ndata: %.1f MB read (%llu ops), %.1f MB written (%llu ops)\n"
      "R/W ratios: bytes %.2f, ops %.2f; replies missing: %llu\n\n",
      static_cast<double>(s.bytesRead) / 1e6,
      static_cast<unsigned long long>(s.readOps),
      static_cast<double>(s.bytesWritten) / 1e6,
      static_cast<unsigned long long>(s.writeOps), s.readWriteByteRatio(),
      s.readWriteOpRatio(),
      static_cast<unsigned long long>(s.repliesMissing));

  // Run patterns (with the standard 10 ms reorder window).
  {
    auto sorted = sortWithReorderWindow(records, 10'000);
    auto runs = detectRuns(sorted.records);
    auto rp = summarizeRunPatterns(runs);
    std::printf("runs: %zu total (%.2f%% of accesses reorder-swapped)\n",
                runs.size(), 100.0 * sorted.swappedFraction());
    TextTable t({"Type", "% of runs", "entire", "sequential", "random"});
    t.addRow({"read", TextTable::percent(rp.readFrac),
              TextTable::percent(rp.readEntire),
              TextTable::percent(rp.readSeq),
              TextTable::percent(rp.readRandom)});
    t.addRow({"write", TextTable::percent(rp.writeFrac),
              TextTable::percent(rp.writeEntire),
              TextTable::percent(rp.writeSeq),
              TextTable::percent(rp.writeRandom)});
    t.addRow({"read-write", TextTable::percent(rp.rwFrac),
              TextTable::percent(rp.rwEntire), TextTable::percent(rp.rwSeq),
              TextTable::percent(rp.rwRandom)});
    std::fputs(t.render().c_str(), stdout);
  }

  // Block lifetimes over the trace's own span.
  {
    BlockLifeConfig cfg;
    cfg.phase1Start = s.firstTs;
    cfg.phase1Length = std::max<MicroTime>((s.lastTs - s.firstTs) / 2, 1);
    cfg.phase2Length = cfg.phase1Length;
    EmpiricalCdf lifetimes;
    auto bl = analyzeBlockLife(records, cfg, &lifetimes);
    std::printf(
        "\nblock life: %llu births (%.1f%% writes), %llu deaths "
        "(%.1f%% overwrite, %.1f%% truncate, %.1f%% delete)\n",
        static_cast<unsigned long long>(bl.births),
        bl.births ? 100.0 * static_cast<double>(bl.birthsWrite) /
                        static_cast<double>(bl.births)
                  : 0.0,
        static_cast<unsigned long long>(bl.deaths),
        bl.deaths ? 100.0 * static_cast<double>(bl.deathsOverwrite) /
                        static_cast<double>(bl.deaths)
                  : 0.0,
        bl.deaths ? 100.0 * static_cast<double>(bl.deathsTruncate) /
                        static_cast<double>(bl.deaths)
                  : 0.0,
        bl.deaths ? 100.0 * static_cast<double>(bl.deathsDelete) /
                        static_cast<double>(bl.deaths)
                  : 0.0);
    if (!lifetimes.empty()) {
      std::printf("median block lifetime: %.1f s\n",
                  lifetimes.quantile(0.5));
    }
  }

  // Per-user activity (possible because the anonymizer keeps UIDs
  // consistent).
  {
    UserStats us;
    for (const auto& r : records) us.observe(r);
    if (us.userCount() > 1) {
      std::printf("\nusers: %zu distinct UIDs; top 10%% generate %.1f%% of "
                  "calls (imbalance %.2f)\n",
                  us.userCount(), 100.0 * us.topUserShare(0.10),
                  us.imbalance());
      auto top = us.byActivity();
      TextTable t({"UID", "ops", "MB read", "MB written", "active hours"});
      for (std::size_t i = 0; i < std::min<std::size_t>(5, top.size()); ++i) {
        t.addRow({std::to_string(top[i].uid),
                  TextTable::withCommas(top[i].totalOps),
                  TextTable::fixed(static_cast<double>(top[i].bytesRead) / 1e6, 1),
                  TextTable::fixed(static_cast<double>(top[i].bytesWritten) / 1e6, 1),
                  std::to_string(top[i].activeHours)});
      }
      std::fputs(t.render().c_str(), stdout);
    }
  }

  // Name census.
  {
    FileLifeCensus census;
    for (const auto& r : records) census.observe(r);
    census.finish();
    if (census.totalCreated()) {
      std::printf(
          "\nfile churn: %llu created, %llu deleted (%.1f%% locks)\n",
          static_cast<unsigned long long>(census.totalCreated()),
          static_cast<unsigned long long>(census.totalDeleted()),
          100.0 * census.lockFractionOfDeleted());
      TextTable t({"Category", "created", "deleted", "p50 life (s)"});
      for (const auto& [cat, cs] : census.byCategory()) {
        auto& lt = const_cast<CategoryStats&>(cs).lifetimesSec;
        t.addRow({std::string(nameCategoryLabel(cat)),
                  TextTable::withCommas(cs.created),
                  TextTable::withCommas(cs.deleted),
                  lt.empty() ? "-" : TextTable::fixed(lt.quantile(0.5), 3)});
      }
      std::fputs(t.render().c_str(), stdout);
    }
  }
  return 0;
}
