#include "util/interner.hpp"

#include <stdexcept>

namespace nfstrace {

StringInterner::StringInterner() {
  intern({});  // reserve id 0 for the empty string
}

std::uint32_t StringInterner::intern(std::string_view s) {
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  if (next_ >= kMaxBlocks * kBlockEntries) {
    throw std::runtime_error("interner: table full");
  }
  std::uint32_t id = next_;
  auto& block = blocks_[id >> kBlockShift];
  if (!block) block = std::make_unique<Block>();
  std::string& stored = block->items[id & (kBlockEntries - 1)];
  stored.assign(s);
  // Key the map by a view of the stored copy, which never moves.
  ids_.emplace(std::string_view(stored), id);
  bytes_ += stored.size();
  ++next_;
  return id;
}

}  // namespace nfstrace
