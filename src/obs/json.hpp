// Minimal streaming JSON writer: comma placement and string escaping
// handled by a container stack, output appended to one growable string.
// Used by the snapshot exporter's JSON-lines stream and by tools that
// emit machine-readable summaries (trace_stats --json).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nfstrace::obs {

class JsonWriter {
 public:
  JsonWriter& beginObject();
  JsonWriter& endObject();
  JsonWriter& beginArray();
  JsonWriter& endArray();

  /// Member key inside an object; follow with a value or begin*().
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& valueNull();

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  const std::string& str() const { return out_; }
  void clear();

  /// Escape a string for inclusion in a JSON document.  The output is
  /// always valid JSON *and* valid UTF-8 for arbitrary input bytes:
  /// control characters use the standard short escapes or \u00XX,
  /// well-formed UTF-8 sequences pass through untouched, and bytes that
  /// are not valid UTF-8 (overlong forms, surrogates, stray continuation
  /// bytes, raw binary) become \u00XX escapes of the byte value.
  static std::string escape(std::string_view s);

 private:
  /// Emit the separator a new element needs at the current position.
  void elem();

  std::string out_;
  std::vector<bool> first_;    // per open container: no element written yet
  bool afterKey_ = false;      // next value completes a key
};

/// Decode the body of a JSON string literal (the part between the
/// quotes): standard short escapes, \uXXXX (with UTF-16 surrogate
/// pairs), everything else verbatim.  Inverse of JsonWriter::escape for
/// valid-UTF-8 input, which the obs tests round-trip-fuzz.
std::string jsonUnescape(std::string_view s);

/// Strict RFC 8259 check of a whole document: balanced structure, legal
/// escapes, no raw control characters, well-formed UTF-8 in strings,
/// nothing but whitespace after the top-level value.  Used by tests and
/// benches to gate every emitted JSON-lines / Chrome-trace document.
bool isValidJson(std::string_view doc);

}  // namespace nfstrace::obs
