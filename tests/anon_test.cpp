#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "anon/anon.hpp"

namespace nfstrace {
namespace {

Anonymizer makeAnon() { return Anonymizer{Anonymizer::Config{}}; }

TEST(Anon, ComponentConsistent) {
  auto anon = makeAnon();
  auto a1 = anon.anonymizeComponent("thesis.tex");
  auto a2 = anon.anonymizeComponent("thesis.tex");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, "thesis.tex");
}

TEST(Anon, DistinctNamesStayDistinct) {
  auto anon = makeAnon();
  EXPECT_NE(anon.anonymizeComponent("alpha.c"),
            anon.anonymizeComponent("beta.c"));
}

TEST(Anon, SharedSuffixSharedAnonForm) {
  auto anon = makeAnon();
  auto a = anon.anonymizeComponent("alpha.c");
  auto b = anon.anonymizeComponent("beta.c");
  // "all files that share the same suffix will have anonymized names that
  // end in the anonymized form of that suffix"
  auto suffixOf = [](const std::string& s) {
    return s.substr(s.rfind('.'));
  };
  EXPECT_EQ(suffixOf(a), suffixOf(b));
  auto c = anon.anonymizeComponent("gamma.h");
  EXPECT_NE(suffixOf(a), suffixOf(c));
}

TEST(Anon, SameStemDifferentSuffix) {
  auto anon = makeAnon();
  auto c = anon.anonymizeComponent("module.c");
  auto h = anon.anonymizeComponent("module.h");
  auto stemOf = [](const std::string& s) {
    return s.substr(0, s.rfind('.'));
  };
  EXPECT_EQ(stemOf(c), stemOf(h));
}

TEST(Anon, KeepListPassesThrough) {
  auto anon = makeAnon();
  EXPECT_EQ(anon.anonymizeComponent("CVS"), "CVS");
  EXPECT_EQ(anon.anonymizeComponent(".inbox"), ".inbox");
  EXPECT_EQ(anon.anonymizeComponent(".pinerc"), ".pinerc");
  EXPECT_EQ(anon.anonymizeComponent("lock"), "lock");
}

TEST(Anon, DotDotAndDotUnchanged) {
  auto anon = makeAnon();
  EXPECT_EQ(anon.anonymizeComponent("."), ".");
  EXPECT_EQ(anon.anonymizeComponent(".."), "..");
  EXPECT_EQ(anon.anonymizeComponent(""), "");
}

TEST(Anon, BackupSuffixRelationPreserved) {
  auto anon = makeAnon();
  auto plain = anon.anonymizeComponent("draft.txt");
  auto backup = anon.anonymizeComponent("draft.txt~");
  EXPECT_EQ(backup, plain + "~");
}

TEST(Anon, RcsSuffixRelationPreserved) {
  auto anon = makeAnon();
  auto plain = anon.anonymizeComponent("file.c");
  auto rcs = anon.anonymizeComponent("file.c,v");
  EXPECT_EQ(rcs, plain + ",v");
}

TEST(Anon, AutosavePrefixRelationPreserved) {
  auto anon = makeAnon();
  auto plain = anon.anonymizeComponent("notes.txt");
  auto autosave = anon.anonymizeComponent("#notes.txt#");
  EXPECT_EQ(autosave, "#" + plain + "#");
}

TEST(Anon, DotFilesKeepLeadingDot) {
  auto anon = makeAnon();
  auto a = anon.anonymizeComponent(".customrc");
  EXPECT_EQ(a[0], '.');
  EXPECT_NE(a, ".customrc");
}

TEST(Anon, KeepSuffixConfig) {
  auto anon = makeAnon();
  auto a = anon.anonymizeComponent("mailbox.lock");
  // The ".lock" suffix is on the keep list; the stem is anonymized.
  EXPECT_TRUE(a.size() > 5 && a.substr(a.size() - 5) == ".lock");
  EXPECT_NE(a, "mailbox.lock");
}

TEST(Anon, UidMappingConsistentAndKeepsRoot) {
  auto anon = makeAnon();
  EXPECT_EQ(anon.anonymizeUid(0), 0u);  // root kept
  EXPECT_EQ(anon.anonymizeUid(1), 1u);  // daemon kept
  auto u = anon.anonymizeUid(4242);
  EXPECT_NE(u, 4242u);
  EXPECT_EQ(anon.anonymizeUid(4242), u);
  EXPECT_NE(anon.anonymizeUid(4243), u);
}

TEST(Anon, IpMappingConsistent) {
  auto anon = makeAnon();
  IpAddr ip = makeIp(128, 103, 60, 15);
  auto a = anon.anonymizeIp(ip);
  EXPECT_NE(a, ip);
  EXPECT_EQ(anon.anonymizeIp(ip), a);
}

TEST(Anon, HandleMappingConsistentAndLengthPreserving) {
  auto anon = makeAnon();
  auto fh = FileHandle::make(1, 42, 7);
  auto a = anon.anonymizeHandle(fh);
  EXPECT_EQ(a.len, fh.len);
  EXPECT_FALSE(a == fh);
  EXPECT_EQ(anon.anonymizeHandle(fh), a);
}

TEST(Anon, NotDeterministicAcrossSeeds) {
  // Different seeds (different sites) must produce different mappings, so
  // traces cannot be cross-correlated — the reason hashing is not used.
  Anonymizer::Config c1, c2;
  c1.seed = 1;
  c2.seed = 2;
  Anonymizer a1{c1}, a2{c2};
  EXPECT_NE(a1.anonymizeComponent("secret.doc"),
            a2.anonymizeComponent("secret.doc"));
  EXPECT_NE(a1.anonymizeUid(5000), a2.anonymizeUid(5000));
}

TEST(Anon, RecordAnonymization) {
  auto anon = makeAnon();
  TraceRecord rec;
  rec.ts = 1000;
  rec.client = makeIp(128, 103, 1, 2);
  rec.server = makeIp(128, 103, 1, 3);
  rec.uid = 777;
  rec.gid = 88;
  rec.op = NfsOp::Lookup;
  rec.fh = FileHandle::make(1, 10, 1);
  rec.name = "secrets.xls";
  rec.hasReply = true;
  rec.hasResFh = true;
  rec.resFh = FileHandle::make(1, 11, 1);

  auto out = anon.anonymize(rec);
  EXPECT_EQ(out.ts, rec.ts);            // times untouched
  EXPECT_EQ(out.op, rec.op);            // semantics untouched
  EXPECT_NE(out.uid, rec.uid);
  EXPECT_NE(out.client, rec.client);
  EXPECT_NE(out.name, rec.name);
  EXPECT_FALSE(out.fh == rec.fh);
  EXPECT_FALSE(out.resFh == rec.resFh);

  // Same inputs -> same outputs on a second record.
  auto out2 = anon.anonymize(rec);
  EXPECT_EQ(out2.name, out.name);
  EXPECT_EQ(out2.uid, out.uid);
  EXPECT_TRUE(out2.fh == out.fh);
}

TEST(Anon, SymlinkTargetAnonymizedPerComponent) {
  auto anon = makeAnon();
  TraceRecord rec;
  rec.ts = 1;
  rec.op = NfsOp::Symlink;
  rec.fh = FileHandle::make(1, 1, 1);
  rec.name = "link";
  rec.name2 = "projects/secret/file.txt";
  auto out = anon.anonymize(rec);
  auto parts = out.name2;
  EXPECT_EQ(std::count(parts.begin(), parts.end(), '/'), 2);
  EXPECT_NE(out.name2, rec.name2);
}

TEST(Anon, OmissionMode) {
  Anonymizer::Config cfg;
  cfg.omitIdentities = true;
  Anonymizer anon{cfg};
  TraceRecord rec;
  rec.ts = 5;
  rec.op = NfsOp::Lookup;
  rec.uid = 777;
  rec.client = makeIp(1, 2, 3, 4);
  rec.name = "secret";
  auto out = anon.anonymize(rec);
  EXPECT_EQ(out.uid, 0u);
  EXPECT_EQ(out.client, 0u);
  EXPECT_TRUE(out.name.empty());
  EXPECT_EQ(out.op, NfsOp::Lookup);  // op preserved for analysis
}

TEST(Anon, SaveLoadMapRoundTrip) {
  std::string path = (std::filesystem::temp_directory_path() /
                      ("anon_map_" + std::to_string(::getpid())))
                         .string();
  Anonymizer::Config cfg;
  cfg.seed = 42;
  std::string nameMapped;
  std::uint32_t uidMapped;
  {
    Anonymizer anon{cfg};
    nameMapped = anon.anonymizeComponent("research.dat");
    uidMapped = anon.anonymizeUid(1234);
    anon.saveMap(path);
  }
  {
    // A fresh anonymizer with a different seed but the saved map must
    // reproduce the earlier mapping (consistent continued captures).
    Anonymizer::Config cfg2;
    cfg2.seed = 999;
    Anonymizer anon{cfg2};
    anon.loadMap(path);
    EXPECT_EQ(anon.anonymizeComponent("research.dat"), nameMapped);
    EXPECT_EQ(anon.anonymizeUid(1234), uidMapped);
  }
  std::remove(path.c_str());
}

TEST(Anon, ConfigFromPolicyFile) {
  auto file = ConfigFile::parse(
      "keep_name = special.dat\n"
      "keep_name = .procmailrc\n"
      "keep_suffix = .mbox\n"
      "keep_uid = 0\n"
      "omit_identities = false\n"
      "seed = 777\n");
  auto cfg = Anonymizer::Config::fromConfig(file);
  EXPECT_EQ(cfg.seed, 777u);
  ASSERT_EQ(cfg.keepNames.size(), 2u);
  EXPECT_EQ(cfg.keepNames[0], "special.dat");
  ASSERT_EQ(cfg.keepSuffixes.size(), 1u);
  ASSERT_EQ(cfg.keepUids.size(), 1u);

  Anonymizer anon{cfg};
  EXPECT_EQ(anon.anonymizeComponent("special.dat"), "special.dat");
  EXPECT_EQ(anon.anonymizeComponent(".procmailrc"), ".procmailrc");
  auto mboxName = anon.anonymizeComponent("archive.mbox");
  EXPECT_TRUE(mboxName.size() > 5 &&
              mboxName.substr(mboxName.size() - 5) == ".mbox");
  EXPECT_NE(mboxName, "archive.mbox");
  // The default keep-list is replaced, so CVS is now anonymized.
  EXPECT_NE(anon.anonymizeComponent("CVS"), "CVS");
}

}  // namespace
}  // namespace nfstrace
