// Batched trace decode (the analysis engine's unit of work).
//
// TraceReader::nextBatch() decodes up to `TraceBatch::capacity` records
// into a caller-owned batch whose record slots are reused from fill to
// fill, so the steady-state decode loop performs no per-record heap
// allocation: string fields reuse their capacity and every path / file
// handle is additionally interned into dense 32-bit ids (parallel arrays
// alongside the records).  The interners are owned by the reader and
// shared by every batch it fills; ids are assigned in first-appearance
// order, making them deterministic for a given trace.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.hpp"
#include "util/interner.hpp"

namespace nfstrace {

struct TraceBatch {
  /// Default batch size: large enough to amortize refill/queue costs,
  /// small enough that a handful of in-flight batches stay cache-warm.
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// Sequence number of this batch within the reader's stream (0-based).
  std::uint64_t seq = 0;
  /// Number of valid records; `records[0..n)` and the id arrays are live.
  std::size_t n = 0;
  /// Record slots (capacity-reused across fills; only [0, n) is valid).
  std::vector<TraceRecord> records;
  /// Interned ids, parallel to `records`: handles in `handles()`,
  /// names in `names()`.
  std::vector<std::uint32_t> fhId, fh2Id, resFhId;
  std::vector<std::uint32_t> nameId, name2Id;
  /// True when the batch was cut short because the reader resynchronized
  /// past a corrupt region (recover mode): a batch never straddles one.
  bool endedAtResync = false;

  /// Interner for name/name2 strings (set by the reader; reader-owned).
  const StringInterner* nameInterner = nullptr;
  /// Interner for file-handle bytes (set by the reader; reader-owned).
  const StringInterner* handleInterner = nullptr;

  std::size_t size() const { return n; }
  bool empty() const { return n == 0; }
};

}  // namespace nfstrace
