#include "analysis/summary.hpp"

namespace nfstrace {

TraceSummary summarize(const std::vector<TraceRecord>& records) {
  TraceSummary s;
  bool first = true;
  for (const auto& rec : records) {
    ++s.totalOps;
    s.opCounts[static_cast<std::size_t>(rec.op)]++;
    if (first) {
      s.firstTs = s.lastTs = rec.ts;
      first = false;
    } else {
      s.firstTs = std::min(s.firstTs, rec.ts);
      s.lastTs = std::max(s.lastTs, rec.ts);
    }
    if (!rec.hasReply) ++s.repliesMissing;
    if (rec.op == NfsOp::Read) {
      ++s.readOps;
      ++s.dataOps;
      s.bytesRead += rec.hasReply ? rec.retCount : rec.count;
    } else if (rec.op == NfsOp::Write) {
      ++s.writeOps;
      ++s.dataOps;
      s.bytesWritten += rec.hasReply && rec.retCount ? rec.retCount
                                                      : rec.count;
    } else {
      ++s.metadataOps;
    }
  }
  return s;
}

}  // namespace nfstrace
