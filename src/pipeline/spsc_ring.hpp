// Bounded lock-free single-producer / single-consumer ring buffer.
//
// The classic Lamport queue with the two standard refinements:
//
//  * head (consumer cursor) and tail (producer cursor) live on their own
//    cache lines, so the producer and consumer never false-share;
//  * each side keeps a cached copy of the other side's cursor and only
//    reloads it (an acquire load, i.e. a cache-line transfer) when the
//    cached value says the ring looks full/empty.  A push or pop in
//    steady state therefore touches no shared cache line at all.
//
// Batched push/pop amortize even those occasional reloads and the release
// stores across whole bursts of frames, which is what the trace pipeline
// feeds it.  Single producer thread, single consumer thread — exactly the
// shape of one partitioner → worker or worker → merger edge.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace nfstrace {

inline constexpr std::size_t kCacheLineSize = 64;

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity)
      : slots_(std::bit_ceil(capacity < 2 ? 2 : capacity)),
        mask_(slots_.size() - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Approximate occupancy from racy cursor reads — for monitoring
  /// gauges only, never for flow control.
  std::size_t sizeApprox() const {
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  /// Producer side.  Moves from `v` on success; returns false when full.
  bool tryPush(T& v) {
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cachedHead_ >= slots_.size()) {
      cachedHead_ = head_.load(std::memory_order_acquire);
      if (tail - cachedHead_ >= slots_.size()) return false;
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side: move as many items from `vs` as fit, in order, with a
  /// single release store.  Returns the number consumed from `vs`.
  std::size_t tryPushBatch(std::span<T> vs) {
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = slots_.size() - (tail - cachedHead_);
    if (free < vs.size()) {
      cachedHead_ = head_.load(std::memory_order_acquire);
      free = slots_.size() - (tail - cachedHead_);
    }
    std::size_t n = free < vs.size() ? free : vs.size();
    for (std::size_t i = 0; i < n; ++i) {
      slots_[(tail + i) & mask_] = std::move(vs[i]);
    }
    if (n) tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Consumer side.  Returns false when empty.
  bool tryPop(T& out) {
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cachedTail_) {
      cachedTail_ = tail_.load(std::memory_order_acquire);
      if (head == cachedTail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: move up to `max` items into `out` (appended), with a
  /// single release store.  Returns the number popped.
  std::size_t tryPopBatch(std::vector<T>& out, std::size_t max) {
    std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = cachedTail_ - head;
    if (avail < max) {
      cachedTail_ = tail_.load(std::memory_order_acquire);
      avail = cachedTail_ - head;
    }
    std::size_t n = avail < max ? avail : max;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(std::move(slots_[(head + i) & mask_]));
    }
    if (n) head_.store(head + n, std::memory_order_release);
    return n;
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  alignas(kCacheLineSize) std::atomic<std::uint64_t> head_{0};
  alignas(kCacheLineSize) std::uint64_t cachedHead_{0};   // producer-owned
  alignas(kCacheLineSize) std::atomic<std::uint64_t> tail_{0};
  alignas(kCacheLineSize) std::uint64_t cachedTail_{0};   // consumer-owned
};

}  // namespace nfstrace
