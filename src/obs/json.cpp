#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace nfstrace::obs {

void JsonWriter::elem() {
  if (afterKey_) {
    afterKey_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) out_.push_back(',');
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::beginObject() {
  elem();
  out_.push_back('{');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::endObject() {
  out_.push_back('}');
  if (!first_.empty()) first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::beginArray() {
  elem();
  out_.push_back('[');
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::endArray() {
  out_.push_back(']');
  if (!first_.empty()) first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  elem();
  out_.push_back('"');
  out_ += escape(k);
  out_ += "\":";
  afterKey_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  elem();
  out_.push_back('"');
  out_ += escape(s);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return valueNull();
  elem();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  elem();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  elem();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  elem();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::valueNull() {
  elem();
  out_ += "null";
  return *this;
}

void JsonWriter::clear() {
  out_.clear();
  first_.clear();
  afterKey_ = false;
}

namespace {

/// Length and decoded code point of a valid UTF-8 sequence starting at
/// s[i]; 0 if the bytes there are not well-formed UTF-8 (truncated,
/// bad continuation, overlong, surrogate, or past U+10FFFF).
std::size_t utf8SequenceAt(std::string_view s, std::size_t i) {
  unsigned char c = static_cast<unsigned char>(s[i]);
  std::size_t len;
  std::uint32_t cp;
  if (c < 0x80) return 1;
  if ((c & 0xe0) == 0xc0) {
    len = 2;
    cp = c & 0x1f;
  } else if ((c & 0xf0) == 0xe0) {
    len = 3;
    cp = c & 0x0f;
  } else if ((c & 0xf8) == 0xf0) {
    len = 4;
    cp = c & 0x07;
  } else {
    return 0;  // continuation byte or 0xf8..0xff lead
  }
  if (i + len > s.size()) return 0;
  for (std::size_t k = 1; k < len; ++k) {
    unsigned char cc = static_cast<unsigned char>(s[i + k]);
    if ((cc & 0xc0) != 0x80) return 0;
    cp = (cp << 6) | (cc & 0x3f);
  }
  // Overlong encodings, UTF-16 surrogates, and out-of-range are all
  // ill-formed UTF-8 even though the byte pattern parses.
  if (len == 2 && cp < 0x80) return 0;
  if (len == 3 && cp < 0x800) return 0;
  if (len == 4 && cp < 0x10000) return 0;
  if (cp >= 0xd800 && cp <= 0xdfff) return 0;
  if (cp > 0x10ffff) return 0;
  return len;
}

}  // namespace

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  std::size_t i = 0;
  auto hex = [&out](unsigned char c) {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
    out += buf;
  };
  while (i < s.size()) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    if (c < 0x80) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (c < 0x20) {
            hex(c);
          } else {
            out.push_back(static_cast<char>(c));
          }
      }
      ++i;
      continue;
    }
    std::size_t len = utf8SequenceAt(s, i);
    if (len == 0) {
      // Not UTF-8 (raw filehandle bytes, a truncated name from a corrupt
      // capture, ...): escape the byte so the output stays valid JSON
      // and valid UTF-8 while preserving the value losslessly.
      hex(c);
      ++i;
    } else {
      out.append(s, i, len);
      i += len;
    }
  }
  return out;
}

std::string jsonUnescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  std::size_t i = 0;
  auto hexVal = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  while (i < s.size()) {
    char c = s[i];
    if (c != '\\') {
      out.push_back(c);
      ++i;
      continue;
    }
    if (i + 1 >= s.size()) break;  // dangling backslash: drop
    char e = s[i + 1];
    i += 2;
    switch (e) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'u': {
        if (i + 4 > s.size()) return out;
        std::uint32_t cp = 0;
        for (int k = 0; k < 4; ++k) {
          int v = hexVal(s[i + static_cast<std::size_t>(k)]);
          if (v < 0) return out;
          cp = (cp << 4) | static_cast<std::uint32_t>(v);
        }
        i += 4;
        // Surrogate pair: \uD800-\uDBFF must be followed by \uDC00-\uDFFF.
        if (cp >= 0xd800 && cp <= 0xdbff && i + 6 <= s.size() &&
            s[i] == '\\' && s[i + 1] == 'u') {
          std::uint32_t lo = 0;
          bool ok = true;
          for (int k = 0; k < 4; ++k) {
            int v = hexVal(s[i + 2 + static_cast<std::size_t>(k)]);
            if (v < 0) {
              ok = false;
              break;
            }
            lo = (lo << 4) | static_cast<std::uint32_t>(v);
          }
          if (ok && lo >= 0xdc00 && lo <= 0xdfff) {
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
            i += 6;
          }
        }
        // Encode the code point as UTF-8.  The escape/unescape round
        // trip is byte-exact for valid-UTF-8 input; a byte escape()
        // hex-escaped because it was NOT valid UTF-8 comes back as the
        // UTF-8 encoding of U+00XX (still lossless, not byte-identical).
        if (cp < 0x80) {
          out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
          out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
          out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else if (cp < 0x10000) {
          out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
          out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
          out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        } else {
          out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
          out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
          out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
          out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
        }
        break;
      }
      default:
        // Unknown escape: keep the escaped character.
        out.push_back(e);
    }
  }
  return out;
}

namespace {

/// Recursive-descent JSON validator (RFC 8259 subset check used by the
/// tests and the chrome-trace bench gate).  No allocation, no throw.
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view s) : s_(s) {}

  bool validate() {
    skipWs();
    if (!value(0)) return false;
    skipWs();
    return i_ == s_.size();
  }

 private:
  static constexpr int kMaxDepth = 256;

  bool value(int depth) {
    if (depth > kMaxDepth || i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object(int depth) {
    ++i_;  // '{'
    skipWs();
    if (peek() == '}') {
      ++i_;
      return true;
    }
    for (;;) {
      skipWs();
      if (peek() != '"' || !string()) return false;
      skipWs();
      if (peek() != ':') return false;
      ++i_;
      skipWs();
      if (!value(depth + 1)) return false;
      skipWs();
      char c = peek();
      if (c == ',') {
        ++i_;
        continue;
      }
      if (c == '}') {
        ++i_;
        return true;
      }
      return false;
    }
  }

  bool array(int depth) {
    ++i_;  // '['
    skipWs();
    if (peek() == ']') {
      ++i_;
      return true;
    }
    for (;;) {
      skipWs();
      if (!value(depth + 1)) return false;
      skipWs();
      char c = peek();
      if (c == ',') {
        ++i_;
        continue;
      }
      if (c == ']') {
        ++i_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    ++i_;  // '"'
    while (i_ < s_.size()) {
      unsigned char c = static_cast<unsigned char>(s_[i_]);
      if (c == '"') {
        ++i_;
        return true;
      }
      if (c == '\\') {
        if (i_ + 1 >= s_.size()) return false;
        char e = s_[i_ + 1];
        if (e == 'u') {
          if (i_ + 6 > s_.size()) return false;
          for (std::size_t k = 2; k < 6; ++k) {
            if (!isHex(s_[i_ + k])) return false;
          }
          i_ += 6;
        } else if (e == '"' || e == '\\' || e == '/' || e == 'b' ||
                   e == 'f' || e == 'n' || e == 'r' || e == 't') {
          i_ += 2;
        } else {
          return false;
        }
        continue;
      }
      if (c < 0x20) return false;  // raw control character
      if (c < 0x80) {
        ++i_;
        continue;
      }
      std::size_t len = utf8SequenceAt(s_, i_);
      if (len == 0) return false;  // invalid UTF-8 inside a string
      i_ += len;
    }
    return false;  // unterminated
  }

  bool number() {
    std::size_t start = i_;
    if (peek() == '-') ++i_;
    if (peek() == '0') {
      ++i_;
    } else if (isDigit(peek())) {
      while (isDigit(peek())) ++i_;
    } else {
      return false;
    }
    if (peek() == '.') {
      ++i_;
      if (!isDigit(peek())) return false;
      while (isDigit(peek())) ++i_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++i_;
      if (peek() == '+' || peek() == '-') ++i_;
      if (!isDigit(peek())) return false;
      while (isDigit(peek())) ++i_;
    }
    return i_ > start;
  }

  bool literal(std::string_view word) {
    if (s_.substr(i_, word.size()) != word) return false;
    i_ += word.size();
    return true;
  }

  void skipWs() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }
  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }
  static bool isDigit(char c) { return c >= '0' && c <= '9'; }
  static bool isHex(char c) {
    return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
  }

  std::string_view s_;
  std::size_t i_ = 0;
};

}  // namespace

bool isValidJson(std::string_view doc) {
  return JsonValidator(doc).validate();
}

}  // namespace nfstrace::obs
