#include "server/portmap.hpp"

namespace nfstrace {

bool Portmapper::handle(PortmapProc proc, XdrDecoder& dec, XdrEncoder& enc) {
  switch (proc) {
    case PortmapProc::Null:
      return true;
    case PortmapProc::Set: {
      Mapping m;
      m.prog = dec.getUint32();
      m.vers = dec.getUint32();
      m.proto = dec.getUint32();
      m.port = dec.getUint32();
      bool fresh = !table_.count(key(m.prog, m.vers, m.proto));
      if (fresh) set(m);
      enc.putBool(fresh);
      return true;
    }
    case PortmapProc::Unset: {
      std::uint32_t prog = dec.getUint32();
      std::uint32_t vers = dec.getUint32();
      dec.getUint32();  // proto, ignored per the protocol
      dec.getUint32();  // port, ignored
      unset(prog, vers);
      enc.putBool(true);
      return true;
    }
    case PortmapProc::Getport: {
      std::uint32_t prog = dec.getUint32();
      std::uint32_t vers = dec.getUint32();
      std::uint32_t proto = dec.getUint32();
      dec.getUint32();  // port, ignored in the query
      enc.putUint32(getport(prog, vers, proto));
      return true;
    }
    case PortmapProc::Dump: {
      for (const auto& [k, m] : table_) {
        enc.putBool(true);
        enc.putUint32(m.prog);
        enc.putUint32(m.vers);
        enc.putUint32(m.proto);
        enc.putUint32(m.port);
      }
      enc.putBool(false);
      return true;
    }
    case PortmapProc::Callit:
      return false;  // indirect calls are not modelled
  }
  return false;
}

}  // namespace nfstrace
