#include "server/server.hpp"

#include "obs/timer.hpp"

namespace nfstrace {
namespace {

WccData wccFrom(const Fattr& pre, const Fattr& post) {
  WccData w;
  w.hasPre = true;
  w.pre = WccAttr::fromFattr(pre);
  w.hasPost = true;
  w.post = post;
  return w;
}

WccData wccPostOnly(const InMemoryFs& fs, const FileHandle& fh) {
  WccData w;
  Fattr attrs;
  if (fs.getattr(fh, attrs) == NfsStat::Ok) {
    w.hasPost = true;
    w.post = attrs;
  }
  return w;
}

}  // namespace

void NfsServer::attachMetrics(obs::Registry& registry) {
  for (std::size_t i = 0; i < kNfsOpCount; ++i) {
    std::string name = "server.op_ns.";
    name += nfsOpName(static_cast<NfsOp>(i));
    opLatency_[i] = registry.histogramHandle(name, 0);
  }
}

NfsReplyRes NfsServer::handle(const NfsCallArgs& args, std::uint32_t uid,
                              std::uint32_t gid, MicroTime now) {
  std::size_t op = static_cast<std::size_t>(opOf(args));
  counts_[op]++;
  ++total_;
  obs::TimerSpan span(opLatency_[op]);

  return std::visit(
      [&](const auto& a) -> NfsReplyRes {
        using T = std::decay_t<decltype(a)>;
        if constexpr (std::is_same_v<T, NullArgs>) {
          return NullRes{};
        } else if constexpr (std::is_same_v<T, GetattrArgs>) {
          GetattrRes r;
          r.status = fs_.getattr(a.fh, r.attrs);
          return r;
        } else if constexpr (std::is_same_v<T, SetattrArgs>) {
          SetattrRes r;
          Fattr pre;
          bool hadPre = fs_.getattr(a.fh, pre) == NfsStat::Ok;
          Fattr post;
          r.status = fs_.setattr(a.fh, a.attrs, now, post);
          if (r.status == NfsStat::Ok && hadPre) {
            r.wcc = wccFrom(pre, post);
          } else if (hadPre) {
            r.wcc.hasPre = true;
            r.wcc.pre = WccAttr::fromFattr(pre);
          }
          return r;
        } else if constexpr (std::is_same_v<T, LookupArgs>) {
          LookupRes r;
          FsNode node;
          r.status = fs_.lookup(a.dir, a.name, node);
          if (r.status == NfsStat::Ok) {
            r.fh = node.fh;
            r.objAttrs = node.attrs;
            r.hasObjAttrs = true;
          }
          Fattr dirAttrs;
          if (fs_.getattr(a.dir, dirAttrs) == NfsStat::Ok) {
            r.hasDirAttrs = true;
            r.dirAttrs = dirAttrs;
          }
          return r;
        } else if constexpr (std::is_same_v<T, AccessArgs>) {
          AccessRes r;
          r.status = fs_.getattr(a.fh, r.attrs);
          r.hasAttrs = r.status == NfsStat::Ok;
          // Permissive model: grant whatever was asked.  The study never
          // analyzes permission failures, only the call mix.
          r.access = a.access;
          return r;
        } else if constexpr (std::is_same_v<T, ReadlinkArgs>) {
          ReadlinkRes r;
          r.status = fs_.readlink(a.fh, r.target);
          Fattr attrs;
          if (fs_.getattr(a.fh, attrs) == NfsStat::Ok) {
            r.hasAttrs = true;
            r.attrs = attrs;
          }
          return r;
        } else if constexpr (std::is_same_v<T, ReadArgs>) {
          ReadRes r;
          r.status = fs_.read(a.fh, a.offset, a.count, now, r.count, r.eof,
                              r.attrs);
          r.hasAttrs = r.status == NfsStat::Ok;
          return r;
        } else if constexpr (std::is_same_v<T, WriteArgs>) {
          WriteRes r;
          Fattr pre, post;
          r.status = fs_.write(a.fh, a.offset, a.count, now, pre, post);
          if (r.status == NfsStat::Ok) {
            r.wcc = wccFrom(pre, post);
            r.count = a.count;
            // UNSTABLE writes are acknowledged as such; COMMIT makes them
            // durable.  v2 callers set FileSync.
            r.committed = a.stable == StableHow::Unstable ? StableHow::Unstable
                                                          : StableHow::FileSync;
            r.verifier = 0x6e667374;  // constant per server boot
          }
          return r;
        } else if constexpr (std::is_same_v<T, CreateArgs>) {
          CreateRes r;
          FsNode node;
          r.status = fs_.create(a.dir, a.name, a.attrs,
                                a.mode == CreateMode::Exclusive ||
                                    a.mode == CreateMode::Guarded,
                                uid, gid, now, node);
          if (r.status == NfsStat::Ok) {
            r.hasFh = true;
            r.fh = node.fh;
            r.hasAttrs = true;
            r.attrs = node.attrs;
          }
          r.dirWcc = wccPostOnly(fs_, a.dir);
          return r;
        } else if constexpr (std::is_same_v<T, MkdirArgs>) {
          CreateRes r;
          FsNode node;
          r.status = fs_.mkdir(a.dir, a.name, a.attrs, uid, gid, now, node);
          if (r.status == NfsStat::Ok) {
            r.hasFh = true;
            r.fh = node.fh;
            r.hasAttrs = true;
            r.attrs = node.attrs;
          }
          r.dirWcc = wccPostOnly(fs_, a.dir);
          return r;
        } else if constexpr (std::is_same_v<T, SymlinkArgs>) {
          CreateRes r;
          FsNode node;
          r.status =
              fs_.symlink(a.dir, a.name, a.target, uid, gid, now, node);
          if (r.status == NfsStat::Ok) {
            r.hasFh = true;
            r.fh = node.fh;
            r.hasAttrs = true;
            r.attrs = node.attrs;
          }
          r.dirWcc = wccPostOnly(fs_, a.dir);
          return r;
        } else if constexpr (std::is_same_v<T, MknodArgs>) {
          CreateRes r;
          r.status = NfsStat::ErrNotSupp;  // no device nodes in this study
          r.dirWcc = wccPostOnly(fs_, a.dir);
          return r;
        } else if constexpr (std::is_same_v<T, RemoveArgs>) {
          RemoveRes r;
          r.status = fs_.remove(a.dir, a.name, now);
          r.dirWcc = wccPostOnly(fs_, a.dir);
          return r;
        } else if constexpr (std::is_same_v<T, RmdirArgs>) {
          RemoveRes r;
          r.status = fs_.rmdir(a.dir, a.name, now);
          r.dirWcc = wccPostOnly(fs_, a.dir);
          return r;
        } else if constexpr (std::is_same_v<T, RenameArgs>) {
          RenameRes r;
          r.status = fs_.rename(a.fromDir, a.fromName, a.toDir, a.toName, now);
          r.fromDirWcc = wccPostOnly(fs_, a.fromDir);
          r.toDirWcc = wccPostOnly(fs_, a.toDir);
          return r;
        } else if constexpr (std::is_same_v<T, LinkArgs>) {
          LinkRes r;
          r.status = fs_.link(a.fh, a.dir, a.name, now);
          Fattr attrs;
          if (fs_.getattr(a.fh, attrs) == NfsStat::Ok) {
            r.hasAttrs = true;
            r.attrs = attrs;
          }
          r.dirWcc = wccPostOnly(fs_, a.dir);
          return r;
        } else if constexpr (std::is_same_v<T, ReaddirArgs>) {
          ReaddirRes r;
          std::uint32_t maxEntries = std::max<std::uint32_t>(1, a.count / 32);
          r.status = fs_.readdir(a.dir, a.cookie, maxEntries, r.entries, r.eof);
          Fattr attrs;
          if (fs_.getattr(a.dir, attrs) == NfsStat::Ok) {
            r.hasDirAttrs = true;
            r.dirAttrs = attrs;
          }
          // Plain READDIR carries no per-entry attrs/handles.
          for (auto& e : r.entries) {
            e.hasAttrs = false;
            e.hasFh = false;
          }
          return r;
        } else if constexpr (std::is_same_v<T, ReaddirplusArgs>) {
          ReaddirRes r;
          r.plus = true;
          std::uint32_t maxEntries = std::max<std::uint32_t>(1, a.maxCount / 128);
          r.status = fs_.readdir(a.dir, a.cookie, maxEntries, r.entries, r.eof);
          Fattr attrs;
          if (fs_.getattr(a.dir, attrs) == NfsStat::Ok) {
            r.hasDirAttrs = true;
            r.dirAttrs = attrs;
          }
          return r;
        } else if constexpr (std::is_same_v<T, FsstatArgs>) {
          FsstatRes r;
          r.status = fs_.fsstat(r);
          Fattr attrs;
          if (fs_.getattr(a.fh, attrs) == NfsStat::Ok) {
            r.hasAttrs = true;
            r.attrs = attrs;
          }
          return r;
        } else if constexpr (std::is_same_v<T, FsinfoArgs>) {
          FsinfoRes r;
          Fattr attrs;
          if (fs_.getattr(a.fh, attrs) == NfsStat::Ok) {
            r.hasAttrs = true;
            r.attrs = attrs;
          }
          return r;
        } else if constexpr (std::is_same_v<T, PathconfArgs>) {
          PathconfRes r;
          Fattr attrs;
          if (fs_.getattr(a.fh, attrs) == NfsStat::Ok) {
            r.hasAttrs = true;
            r.attrs = attrs;
          }
          return r;
        } else if constexpr (std::is_same_v<T, CommitArgs>) {
          CommitRes r;
          r.wcc = wccPostOnly(fs_, a.fh);
          r.status = r.wcc.hasPost ? NfsStat::Ok : NfsStat::ErrStale;
          r.verifier = 0x6e667374;
          return r;
        } else {
          return NullRes{};
        }
      },
      args);
}

}  // namespace nfstrace
