#include "obs/flight.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "obs/json.hpp"
#include "util/table.hpp"

namespace nfstrace::obs {
namespace {

/// Static stage catalogue: name, wait flag, and — for wait stages — the
/// attribution edge (which work stage is stalled, and which work stage
/// it is blocked on).  This table is the stall-attribution method: every
/// stalled nanosecond lands on a named blocking stage.
struct StageInfo {
  const char* name;
  bool wait;
  Stage waiter;   // meaningful when wait
  Stage blocker;  // meaningful when wait
};

constexpr StageInfo kStages[kStageCount] = {
    // Pipeline.
    {"pipeline.partition", false, Stage::kStageCount, Stage::kStageCount},
    {"pipeline.partition_wait", true, Stage::PartitionDispatch, Stage::Sniff},
    {"pipeline.frame_ring_wait", true, Stage::Sniff,
     Stage::PartitionDispatch},
    {"pipeline.sniff", false, Stage::kStageCount, Stage::kStageCount},
    {"pipeline.record_ring_wait", true, Stage::Sniff, Stage::MergeRelease},
    {"pipeline.merge_wait", true, Stage::MergeRelease, Stage::Sniff},
    {"pipeline.merge", false, Stage::kStageCount, Stage::kStageCount},
    // Sniffer.
    {"sniffer.expiry_scan", false, Stage::kStageCount, Stage::kStageCount},
    {"sniffer.call_evicted", false, Stage::kStageCount, Stage::kStageCount},
    {"sniffer.flow_evicted", false, Stage::kStageCount, Stage::kStageCount},
    // Trace writer.
    {"trace.flush", false, Stage::kStageCount, Stage::kStageCount},
    {"trace.write_retry", false, Stage::kStageCount, Stage::kStageCount},
    {"trace.checkpoint", false, Stage::kStageCount, Stage::kStageCount},
    // Analysis engine.
    {"engine.reader_decode", false, Stage::kStageCount, Stage::kStageCount},
    {"engine.batch_pool_wait", true, Stage::ReaderDecode, Stage::PassObserve},
    {"engine.worker_batch_wait", true, Stage::PassObserve,
     Stage::ReaderDecode},
    {"engine.pass_observe", false, Stage::kStageCount, Stage::kStageCount},
    {"engine.finalize", false, Stage::kStageCount, Stage::kStageCount},
    // Degradation / fault decisions.
    {"fault.drop", false, Stage::kStageCount, Stage::kStageCount},
    {"fault.corrupt", false, Stage::kStageCount, Stage::kStageCount},
    {"pipeline.frames_shed", false, Stage::kStageCount, Stage::kStageCount},
    {"engine.recovery_cut", false, Stage::kStageCount, Stage::kStageCount},
    // Daemon.
    {"daemon.rotate", false, Stage::kStageCount, Stage::kStageCount},
    {"daemon.recover", false, Stage::kStageCount, Stage::kStageCount},
    {"daemon.compact", false, Stage::kStageCount, Stage::kStageCount},
    {"daemon.records_shed", false, Stage::kStageCount, Stage::kStageCount},
    // Extent-parallel scan.  Dictionary-ticket waits block on the
    // previous extent's decode; the in-order consumer's reorder waits
    // block on whichever decode owes the next batch.
    {"engine.extent_claim", false, Stage::kStageCount, Stage::kStageCount},
    {"engine.extent_decode", false, Stage::kStageCount, Stage::kStageCount},
    {"engine.extent_dict_wait", true, Stage::ExtentDecode,
     Stage::ExtentDecode},
    {"engine.reorder_wait", true, Stage::PassObserve, Stage::ExtentDecode},
};

const StageInfo& info(Stage s) {
  return kStages[static_cast<std::size_t>(s)];
}

std::string msString(std::uint64_t ns) {
  return TextTable::fixed(static_cast<double>(ns) / 1e6, 3);
}

}  // namespace

const char* stageName(Stage s) { return info(s).name; }
bool stageIsWait(Stage s) { return info(s).wait; }
Stage stageWaiter(Stage s) { return info(s).waiter; }
Stage stageBlocker(Stage s) { return info(s).blocker; }

// ---------------------------------------------------------------- ThreadLog

ThreadLog::ThreadLog(FlightRecorder* rec, std::string name,
                     std::size_t capacity)
    : slots_(std::bit_ceil(capacity < 2 ? 2 : capacity)),
      mask_(slots_.size() - 1),
      name_(std::move(name)),
      rec_(rec) {}

std::uint64_t ThreadLog::nowNs() const { return rec_->nowNs(); }

void ThreadLog::emit(Stage s, EventKind kind, std::uint64_t arg,
                     std::uint32_t aux) {
  FlightEvent ev;
  ev.tsNs = rec_->nowNs();
  ev.arg = arg;
  ev.aux = aux;
  ev.stage = static_cast<std::uint16_t>(s);
  ev.kind = static_cast<std::uint8_t>(kind);
  push(ev);
}

void ThreadLog::complete(Stage s, std::uint64_t startNs, std::uint32_t aux) {
  FlightEvent ev;
  std::uint64_t now = rec_->nowNs();
  ev.tsNs = startNs;
  ev.arg = now > startNs ? now - startNs : 0;  // duration
  ev.aux = aux;
  ev.stage = static_cast<std::uint16_t>(s);
  ev.kind = static_cast<std::uint8_t>(EventKind::SpanComplete);
  push(ev);
}

void ThreadLog::counterSample(std::uint16_t track, double value) {
  FlightEvent ev;
  ev.tsNs = rec_->nowNs();
  ev.arg = std::bit_cast<std::uint64_t>(value);
  ev.stage = track;
  ev.kind = static_cast<std::uint8_t>(EventKind::Counter);
  push(ev);
}

void ThreadLog::push(const FlightEvent& ev) {
  emitted_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  std::uint64_t head = head_.load(std::memory_order_acquire);
  if (tail - head >= slots_.size()) {
    // Ring full: drop-and-count.  The hot path never blocks on its own
    // instrumentation.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slots_[tail & mask_] = ev;
  tail_.store(tail + 1, std::memory_order_release);
  written_.fetch_add(1, std::memory_order_relaxed);
}

// ------------------------------------------------------------ FlightRecorder

FlightRecorder::FlightRecorder(Config config)
    : config_(config), epoch_(std::chrono::steady_clock::now()) {}

std::uint64_t FlightRecorder::nowNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

ThreadLog* FlightRecorder::attachThread(std::string_view name) {
  std::lock_guard lock(mu_);
  logs_.push_back(std::unique_ptr<ThreadLog>(
      new ThreadLog(this, std::string(name), config_.ringCapacity)));
  return logs_.back().get();
}

std::uint16_t FlightRecorder::counterTrack(std::string_view name) {
  std::lock_guard lock(mu_);
  for (std::size_t i = 0; i < counterNames_.size(); ++i) {
    if (counterNames_[i] == name) return static_cast<std::uint16_t>(i);
  }
  counterNames_.emplace_back(name);
  return static_cast<std::uint16_t>(counterNames_.size() - 1);
}

FlightRecorder::Totals FlightRecorder::totals() const {
  std::lock_guard lock(mu_);
  Totals t;
  for (const auto& log : logs_) {
    t.emitted += log->eventsEmitted();
    t.written += log->eventsWritten();
    t.dropped += log->eventsDropped();
  }
  return t;
}

void FlightRecorder::drain() {
  std::lock_guard lock(mu_);
  for (auto& log : logs_) {
    std::uint64_t head = log->head_.load(std::memory_order_relaxed);
    std::uint64_t tail = log->tail_.load(std::memory_order_acquire);
    while (head != tail) {
      log->collected_.push_back(log->slots_[head & log->mask_]);
      ++head;
    }
    log->head_.store(head, std::memory_order_release);
  }
}

std::string FlightRecorder::chromeTraceJson(std::uint64_t* eventsOut) {
  drain();
  std::lock_guard lock(mu_);
  std::uint64_t rendered = 0;
  JsonWriter w;
  w.beginObject();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents").beginArray();
  for (std::size_t t = 0; t < logs_.size(); ++t) {
    const ThreadLog& log = *logs_[t];
    std::int64_t tid = static_cast<std::int64_t>(t) + 1;
    // Track metadata: name the thread so Perfetto labels the track.
    w.beginObject();
    w.field("ph", "M");
    w.field("pid", 1);
    w.field("tid", tid);
    w.field("name", "thread_name");
    w.key("args").beginObject().field("name", log.name_).endObject();
    w.endObject();
    for (const FlightEvent& ev : log.collected_) {
      double tsUs = static_cast<double>(ev.tsNs) / 1e3;
      auto kind = static_cast<EventKind>(ev.kind);
      w.beginObject();
      w.field("pid", 1);
      w.field("tid", tid);
      w.field("ts", tsUs);
      switch (kind) {
        case EventKind::SpanBegin:
          w.field("ph", "B");
          w.field("name", stageName(static_cast<Stage>(ev.stage)));
          if (ev.aux) {
            w.key("args").beginObject()
                .field("n", static_cast<std::uint64_t>(ev.aux))
                .endObject();
          }
          break;
        case EventKind::SpanEnd:
          w.field("ph", "E");
          w.field("name", stageName(static_cast<Stage>(ev.stage)));
          if (ev.aux) {
            w.key("args").beginObject()
                .field("n", static_cast<std::uint64_t>(ev.aux))
                .endObject();
          }
          break;
        case EventKind::SpanComplete:
          w.field("ph", "X");
          w.field("name", stageName(static_cast<Stage>(ev.stage)));
          w.field("dur", static_cast<double>(ev.arg) / 1e3);
          if (ev.aux) {
            w.key("args").beginObject()
                .field("n", static_cast<std::uint64_t>(ev.aux))
                .endObject();
          }
          break;
        case EventKind::Instant:
          w.field("ph", "i");
          w.field("name", stageName(static_cast<Stage>(ev.stage)));
          w.field("s", "t");
          w.key("args").beginObject()
              .field("arg", ev.arg)
              .field("n", static_cast<std::uint64_t>(ev.aux))
              .endObject();
          break;
        case EventKind::Counter: {
          w.field("ph", "C");
          std::size_t track = ev.stage;
          w.field("name", track < counterNames_.size()
                              ? std::string_view(counterNames_[track])
                              : std::string_view("counter"));
          w.key("args").beginObject()
              .field("value", std::bit_cast<double>(ev.arg))
              .endObject();
          break;
        }
      }
      w.endObject();
      ++rendered;
    }
  }
  w.endArray();
  w.endObject();
  if (eventsOut) *eventsOut = rendered;
  return w.str();
}

bool FlightRecorder::writeChromeTrace(const std::string& path,
                                      std::uint64_t* eventsOut) {
  std::string doc = chromeTraceJson(eventsOut);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  std::size_t n = std::fwrite(doc.data(), 1, doc.size(), f);
  bool ok = n == doc.size() && std::fclose(f) == 0;
  if (n != doc.size()) std::fclose(f);
  return ok;
}

std::vector<StageTally> FlightRecorder::stageTallies() {
  drain();
  std::lock_guard lock(mu_);
  std::vector<StageTally> tally(kStageCount);
  // Per-track, per-stage begin stacks: events in a track are in emit
  // (= timestamp) order, so a simple stack matches B/E pairs even when
  // the same stage nests.  Drops can orphan a Begin or an End; orphans
  // are ignored rather than inventing time.
  std::vector<std::vector<std::uint64_t>> open(kStageCount);
  for (const auto& log : logs_) {
    for (auto& st : open) st.clear();
    for (const FlightEvent& ev : log->collected_) {
      if (ev.stage >= kStageCount) continue;  // counter track ids
      auto kind = static_cast<EventKind>(ev.kind);
      StageTally& t = tally[ev.stage];
      switch (kind) {
        case EventKind::SpanBegin:
          open[ev.stage].push_back(ev.tsNs);
          break;
        case EventKind::SpanEnd:
          if (!open[ev.stage].empty()) {
            std::uint64_t startNs = open[ev.stage].back();
            open[ev.stage].pop_back();
            ++t.spans;
            t.totalNs += ev.tsNs > startNs ? ev.tsNs - startNs : 0;
          }
          break;
        case EventKind::SpanComplete:
          ++t.spans;
          t.totalNs += ev.arg;
          break;
        case EventKind::Instant:
          ++t.spans;
          break;
        case EventKind::Counter:
          break;
      }
    }
  }
  return tally;
}

std::string FlightRecorder::stallReport() {
  std::vector<StageTally> tally = stageTallies();
  std::lock_guard lock(mu_);

  std::string out = "---- flight recorder: stall attribution ----\n";
  // Work stages: service time.  Wait stages: stall time with the blocking
  // edge spelled out.  stall% is each wait's share of (busy + wait) for
  // its stalled stage — "sniff spent 32% of its life waiting on merge".
  std::uint64_t busyBy[kStageCount] = {};
  std::uint64_t waitBy[kStageCount] = {};  // total waiting charged to waiter
  for (std::size_t i = 0; i < kStageCount; ++i) {
    Stage s = static_cast<Stage>(i);
    if (stageIsWait(s)) {
      waitBy[static_cast<std::size_t>(stageWaiter(s))] += tally[i].totalNs;
    } else {
      busyBy[i] += tally[i].totalNs;
    }
  }

  TextTable work({"stage", "spans", "busy_ms", "wait_ms", "stall_pct"});
  bool any = false;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    Stage s = static_cast<Stage>(i);
    if (stageIsWait(s) || tally[i].spans == 0) continue;
    std::uint64_t busy = busyBy[i];
    std::uint64_t wait = waitBy[i];
    double stallPct =
        busy + wait ? 100.0 * static_cast<double>(wait) /
                          static_cast<double>(busy + wait)
                    : 0.0;
    work.addRow({stageName(s), TextTable::withCommas(tally[i].spans),
                 msString(busy), msString(wait),
                 TextTable::fixed(stallPct, 1)});
    any = true;
  }
  if (any) out += work.render();

  // Top blocking edges, most stalled first.
  struct Edge {
    Stage wait;
    std::uint64_t ns;
    std::uint64_t n;
  };
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    Stage s = static_cast<Stage>(i);
    if (!stageIsWait(s) || tally[i].spans == 0) continue;
    edges.push_back({s, tally[i].totalNs, tally[i].spans});
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& a, const Edge& b) { return a.ns > b.ns; });
  if (!edges.empty()) {
    TextTable et({"blocked stage", "waits on", "episodes", "stalled_ms",
                  "via"});
    for (const Edge& e : edges) {
      et.addRow({stageName(stageWaiter(e.wait)),
                 stageName(stageBlocker(e.wait)), TextTable::withCommas(e.n),
                 msString(e.ns), stageName(e.wait)});
    }
    out += "top blocking edges:\n";
    out += et.render();
  }

  TextTable tracks({"track", "emitted", "written", "dropped"});
  std::uint64_t emitted = 0, written = 0, dropped = 0;
  for (const auto& log : logs_) {
    std::uint64_t e = log->eventsEmitted(), w = log->eventsWritten(),
                  d = log->eventsDropped();
    emitted += e;
    written += w;
    dropped += d;
    tracks.addRow({log->name_, TextTable::withCommas(e),
                   TextTable::withCommas(w), TextTable::withCommas(d)});
  }
  out += tracks.render();
  char foot[128];
  std::snprintf(foot, sizeof(foot),
                "events: %llu emitted == %llu written + %llu dropped\n",
                static_cast<unsigned long long>(emitted),
                static_cast<unsigned long long>(written),
                static_cast<unsigned long long>(dropped));
  out += foot;
  return out;
}

}  // namespace nfstrace::obs
