file(REMOVE_RECURSE
  "CMakeFiles/ablation_analysis_params.dir/ablation_analysis_params.cpp.o"
  "CMakeFiles/ablation_analysis_params.dir/ablation_analysis_params.cpp.o.d"
  "ablation_analysis_params"
  "ablation_analysis_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_analysis_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
