#include "obs/exporter.hpp"

#include "obs/json.hpp"
#include "util/table.hpp"

namespace nfstrace::obs {

std::vector<std::string> defaultAlertCounters() {
  return {
      "netcap.mirror_dropped",
      "sniffer.evicted_calls",
      "sniffer.evicted_flows",
      "sniffer.malformed_rpc",
      "sniffer.orphan_replies",
      "pipeline.frames_shed",
      "pipeline.pop_stalls",
      "pipeline.push_stalls",
      "pipeline.record_push_stalls",
      "trace.write_retries",
      "trace.short_writes",
      "engine.resync_cuts",
      "engine.merge_skew",
      "engine.intern_high_water",
  };
}

SnapshotExporter::SnapshotExporter(Registry& registry, Config config)
    : registry_(registry),
      config_(std::move(config)),
      start_(std::chrono::steady_clock::now()) {
  if (!config_.jsonlPath.empty()) {
    jsonl_ = std::fopen(config_.jsonlPath.c_str(), "ab");
  }
  if (config_.intervalUs > 0) {
    thread_ = std::thread([this] { threadLoop(); });
  }
}

SnapshotExporter::~SnapshotExporter() { stop(); }

void SnapshotExporter::threadLoop() {
  std::unique_lock lock(stopMu_);
  for (;;) {
    if (stopCv_.wait_for(lock, std::chrono::microseconds(config_.intervalUs),
                         [this] { return stopping_; })) {
      return;  // final snapshot is emitted by stop()
    }
    lock.unlock();
    emit();
    lock.lock();
  }
}

void SnapshotExporter::exportOnce() { emit(); }

void SnapshotExporter::stop() {
  {
    std::lock_guard lock(stopMu_);
    if (stopped_) return;
    stopping_ = true;
  }
  stopCv_.notify_all();
  if (thread_.joinable()) thread_.join();
  emit();  // end-of-run snapshot: final counter totals always land
  {
    std::lock_guard lock(stopMu_);
    stopped_ = true;
  }
  if (jsonl_) {
    std::fclose(jsonl_);
    jsonl_ = nullptr;
  }
}

void SnapshotExporter::emit() {
  Snapshot snap = registry_.scrape();
  auto uptime = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start_)
                    .count();
  std::lock_guard lock(emitMu_);
  std::uint64_t seqNo = seq_++;
  if (config_.statusStream) {
    std::string table = renderStatusTable(snap, seqNo, uptime);
    table += renderAlerts(snap, config_.alertCounters);
    std::fwrite(table.data(), 1, table.size(), config_.statusStream);
    std::fflush(config_.statusStream);
  }
  if (jsonl_) {
    std::string line = renderJsonLine(snap, seqNo, uptime);
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), jsonl_);
    std::fflush(jsonl_);
  }
  written_.fetch_add(1, std::memory_order_relaxed);
}

std::string SnapshotExporter::renderStatusTable(const Snapshot& snap,
                                                std::uint64_t seqNo,
                                                std::int64_t uptimeUs) {
  std::string out;
  char head[96];
  std::snprintf(head, sizeof(head),
                "---- obs snapshot #%llu  (uptime %.3f s) ----\n",
                static_cast<unsigned long long>(seqNo),
                static_cast<double>(uptimeUs) / 1e6);
  out += head;

  if (!snap.counters.empty() || !snap.gauges.empty()) {
    TextTable t({"metric", "value"});
    for (const auto& [name, v] : snap.counters) {
      t.addRow({name, TextTable::withCommas(v)});
    }
    if (!snap.counters.empty() && !snap.gauges.empty()) t.addRule();
    for (const auto& [name, v] : snap.gauges) {
      t.addRow({name, TextTable::fixed(v, 3)});
    }
    out += t.render();
  }
  if (!snap.histograms.empty()) {
    TextTable t({"histogram", "count", "mean", "p50", "p95", "p99", "max"});
    for (const auto& [name, h] : snap.histograms) {
      t.addRow({name, TextTable::withCommas(h.count),
                TextTable::fixed(h.mean(), 1), TextTable::fixed(h.quantile(0.5), 1),
                TextTable::fixed(h.quantile(0.95), 1),
                TextTable::fixed(h.quantile(0.99), 1),
                TextTable::fixed(h.max(), 0)});
    }
    out += t.render();
  }
  return out;
}

std::string SnapshotExporter::renderAlerts(
    const Snapshot& snap, const std::vector<std::string>& names) {
  std::string out;
  for (const auto& name : names) {
    for (const auto& [counter, v] : snap.counters) {
      if (counter != name || v == 0) continue;
      out += out.empty() ? "DEGRADED:" : "";
      out += ' ';
      out += name;
      out += '=';
      out += TextTable::withCommas(v);
    }
  }
  if (!out.empty()) out += '\n';
  return out;
}

std::string SnapshotExporter::renderJsonLine(const Snapshot& snap,
                                             std::uint64_t seqNo,
                                             std::int64_t uptimeUs) {
  JsonWriter w;
  w.beginObject();
  w.field("snapshot", seqNo);
  w.field("uptime_us", static_cast<std::int64_t>(uptimeUs));
  w.key("counters").beginObject();
  for (const auto& [name, v] : snap.counters) w.field(name, v);
  w.endObject();
  w.key("gauges").beginObject();
  for (const auto& [name, v] : snap.gauges) w.field(name, v);
  w.endObject();
  w.key("histograms").beginObject();
  for (const auto& [name, h] : snap.histograms) {
    w.key(name).beginObject();
    w.field("count", h.count);
    w.field("sum", h.sum);
    w.field("mean", h.mean());
    w.field("p50", h.quantile(0.5));
    w.field("p95", h.quantile(0.95));
    w.field("p99", h.quantile(0.99));
    w.field("max", h.max());
    // Sparse buckets: [low_edge, high_edge, count] triples, non-empty only.
    w.key("buckets").beginArray();
    for (std::size_t i = 0; i < HistogramSnapshot::kBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      w.beginArray();
      w.value(HistogramSnapshot::bucketLow(i));
      w.value(HistogramSnapshot::bucketHigh(i));
      w.value(h.buckets[i]);
      w.endArray();
    }
    w.endArray();
    w.endObject();
  }
  w.endObject();
  w.endObject();
  return w.str();
}

}  // namespace nfstrace::obs
