file(REMOVE_RECURSE
  "CMakeFiles/nfstrace_client.dir/client.cpp.o"
  "CMakeFiles/nfstrace_client.dir/client.cpp.o.d"
  "libnfstrace_client.a"
  "libnfstrace_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfstrace_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
