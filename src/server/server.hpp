// Simulated NFS server: executes decoded NFS calls against an InMemoryFs
// and produces protocol-correct replies (including weak-cache-consistency
// data), exactly as the traced Network Appliance filer / CAMPUS arrays
// would appear on the wire.
#pragma once

#include <array>
#include <cstdint>

#include "fs/fs.hpp"
#include "nfs/messages.hpp"
#include "obs/metrics.hpp"

namespace nfstrace {

class NfsServer {
 public:
  explicit NfsServer(InMemoryFs& fs) : fs_(fs) {}

  /// Handle one call.  `uid`/`gid` come from the RPC AUTH_UNIX credential.
  NfsReplyRes handle(const NfsCallArgs& args, std::uint32_t uid,
                     std::uint32_t gid, MicroTime now);

  /// Per-operation call counter (server-side accounting).
  std::uint64_t callCount(NfsOp op) const {
    return counts_[static_cast<std::size_t>(op)];
  }
  std::uint64_t totalCalls() const { return total_; }

  /// Bind self-monitoring: per-procedure execution-latency histograms
  /// (server.op_ns.<proc>) recorded around every handle() call.
  void attachMetrics(obs::Registry& registry);

 private:
  InMemoryFs& fs_;
  std::array<std::uint64_t, kNfsOpCount> counts_{};
  std::uint64_t total_ = 0;
  std::array<obs::HistogramHandle, kNfsOpCount> opLatency_{};
};

}  // namespace nfstrace
