// Periodic snapshot exporter: a background thread scrapes the registry
// every `intervalUs` of wall time and emits each snapshot as
//
//  * a human-readable status table on a stdio stream (typically stderr),
//    for watching a live capture, and/or
//  * one JSON object per line appended to a file (JSON-lines), for
//    offline plotting of queue depths, stall counts, and loss estimates
//    over the life of a run.
//
// stop() (also run by the destructor) emits one final snapshot so short
// runs still leave a complete end-of-run record.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "util/time.hpp"

namespace nfstrace::obs {

/// The standard degradation watch-list: every counter in the repo that is
/// zero in a healthy run, across capture (mirror drops, evictions,
/// malformed RPCs), the pipeline (sheds, stalls), the trace writer
/// (retries, short writes), and the analysis engine (merge skew,
/// intern-table high water).  Pass as Config::alertCounters so a soak
/// over any subset of the system reports degradation the same way.
std::vector<std::string> defaultAlertCounters();

class SnapshotExporter {
 public:
  struct Config {
    /// Wall-clock scrape period.  <= 0 disables the thread (snapshots
    /// then come only from exportOnce()/stop()).
    MicroTime intervalUs = kMicrosPerSecond;
    /// Stream for the human-readable status table; null = off.
    std::FILE* statusStream = nullptr;
    /// Path for the JSON-lines file (appended); empty = off.
    std::string jsonlPath;
    /// Degradation alerts: counters that are zero in a healthy run
    /// (evictions, sheds, write retries, ...).  Any nonzero total adds a
    /// DEGRADED line to the status stream, so graceful degradation is
    /// loud even when the capture keeps running.
    std::vector<std::string> alertCounters;
    /// Path for a Prometheus text-exposition file, rewritten whole on
    /// every scrape (node_exporter textfile-collector style); empty =
    /// off.
    std::string promPath;
    /// Optional flight recorder: every scrape also samples each counter
    /// and gauge into a Chrome-trace counter series on an "obs.exporter"
    /// track, so Perfetto shows metric timelines next to the spans.
    FlightRecorder* flight = nullptr;
  };

  SnapshotExporter(Registry& registry, Config config);
  ~SnapshotExporter();

  SnapshotExporter(const SnapshotExporter&) = delete;
  SnapshotExporter& operator=(const SnapshotExporter&) = delete;

  /// Scrape and emit one snapshot right now (thread-safe).
  void exportOnce();

  /// Emit a final snapshot, stop the thread, close the file.  Idempotent.
  void stop();

  std::uint64_t snapshotsWritten() const {
    return written_.load(std::memory_order_relaxed);
  }

  /// Rendering, exposed for tests and one-shot tooling.
  static std::string renderStatusTable(const Snapshot& snap,
                                       std::uint64_t seqNo,
                                       std::int64_t uptimeUs);
  static std::string renderJsonLine(const Snapshot& snap, std::uint64_t seqNo,
                                    std::int64_t uptimeUs);
  /// One "DEGRADED: name=value ..." line listing the alert counters with
  /// nonzero totals; empty string when all are zero (or absent).
  static std::string renderAlerts(const Snapshot& snap,
                                  const std::vector<std::string>& names);
  /// Prometheus text exposition format: counters as `_total` counters,
  /// gauges as gauges, histograms as summaries (p50/p95/p99 quantiles
  /// from the log2 buckets plus _sum/_count).  Metric names are
  /// sanitized (dots become underscores) under an `nfstrace_` prefix.
  static std::string renderPrometheus(const Snapshot& snap);

 private:
  void threadLoop();
  void emit();
  void sampleFlight(const Snapshot& snap);

  Registry& registry_;
  Config config_;
  /// JSON-lines sink, opened in append mode for the exporter's lifetime:
  /// one fwrite+fflush per emit, O(1) per snapshot no matter how long
  /// the daemon runs.  At worst a crash leaves a torn final line, which
  /// JSONL readers tolerate.
  std::FILE* jsonlFile_ = nullptr;
  ThreadLog* flog_ = nullptr;  // lazily attached on first flight sample
  /// Metric name -> flight counter-track id, in first-seen order.
  std::vector<std::pair<std::string, std::uint16_t>> flightTracks_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::uint64_t> written_{0};
  std::uint64_t seq_ = 0;  // guarded by emitMu_
  std::mutex emitMu_;
  std::mutex stopMu_;
  std::condition_variable stopCv_;
  bool stopping_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace nfstrace::obs
