#include "nfs/proc.hpp"

#include <array>

namespace nfstrace {

namespace {
constexpr std::array<std::string_view, kNfsOpCount> kOpNames = {
    "null",     "getattr", "setattr",  "lookup",      "access", "readlink",
    "read",     "write",   "create",   "mkdir",       "symlink", "mknod",
    "remove",   "rmdir",   "rename",   "link",        "readdir",
    "readdirplus", "fsstat", "fsinfo",  "pathconf",    "commit",  "unknown",
};
}  // namespace

std::string_view nfsOpName(NfsOp op) {
  auto i = static_cast<std::size_t>(op);
  return i < kOpNames.size() ? kOpNames[i] : "unknown";
}

NfsOp nfsOpFromName(std::string_view name) {
  // Per-record on the trace decode path: narrow by first letter before the
  // (rarely more than one) string compare.
  if (name.empty()) return NfsOp::Unknown;
  switch (name[0]) {
    case 'a':
      if (name == "access") return NfsOp::Access;
      break;
    case 'c':
      if (name == "create") return NfsOp::Create;
      if (name == "commit") return NfsOp::Commit;
      break;
    case 'f':
      if (name == "fsstat") return NfsOp::Fsstat;
      if (name == "fsinfo") return NfsOp::Fsinfo;
      break;
    case 'g':
      if (name == "getattr") return NfsOp::Getattr;
      break;
    case 'l':
      if (name == "lookup") return NfsOp::Lookup;
      if (name == "link") return NfsOp::Link;
      break;
    case 'm':
      if (name == "mkdir") return NfsOp::Mkdir;
      if (name == "mknod") return NfsOp::Mknod;
      break;
    case 'n':
      if (name == "null") return NfsOp::Null;
      break;
    case 'p':
      if (name == "pathconf") return NfsOp::Pathconf;
      break;
    case 'r':
      if (name == "read") return NfsOp::Read;
      if (name == "remove") return NfsOp::Remove;
      if (name == "rename") return NfsOp::Rename;
      if (name == "readdir") return NfsOp::Readdir;
      if (name == "readdirplus") return NfsOp::Readdirplus;
      if (name == "readlink") return NfsOp::Readlink;
      if (name == "rmdir") return NfsOp::Rmdir;
      break;
    case 's':
      if (name == "setattr") return NfsOp::Setattr;
      if (name == "symlink") return NfsOp::Symlink;
      break;
    case 'w':
      if (name == "write") return NfsOp::Write;
      break;
    default:
      break;
  }
  return NfsOp::Unknown;
}

NfsOp opFromProc3(Proc3 p) {
  switch (p) {
    case Proc3::Null: return NfsOp::Null;
    case Proc3::Getattr: return NfsOp::Getattr;
    case Proc3::Setattr: return NfsOp::Setattr;
    case Proc3::Lookup: return NfsOp::Lookup;
    case Proc3::Access: return NfsOp::Access;
    case Proc3::Readlink: return NfsOp::Readlink;
    case Proc3::Read: return NfsOp::Read;
    case Proc3::Write: return NfsOp::Write;
    case Proc3::Create: return NfsOp::Create;
    case Proc3::Mkdir: return NfsOp::Mkdir;
    case Proc3::Symlink: return NfsOp::Symlink;
    case Proc3::Mknod: return NfsOp::Mknod;
    case Proc3::Remove: return NfsOp::Remove;
    case Proc3::Rmdir: return NfsOp::Rmdir;
    case Proc3::Rename: return NfsOp::Rename;
    case Proc3::Link: return NfsOp::Link;
    case Proc3::Readdir: return NfsOp::Readdir;
    case Proc3::Readdirplus: return NfsOp::Readdirplus;
    case Proc3::Fsstat: return NfsOp::Fsstat;
    case Proc3::Fsinfo: return NfsOp::Fsinfo;
    case Proc3::Pathconf: return NfsOp::Pathconf;
    case Proc3::Commit: return NfsOp::Commit;
  }
  return NfsOp::Unknown;
}

NfsOp opFromProc2(Proc2 p) {
  switch (p) {
    case Proc2::Null: return NfsOp::Null;
    case Proc2::Getattr: return NfsOp::Getattr;
    case Proc2::Setattr: return NfsOp::Setattr;
    case Proc2::Root: return NfsOp::Unknown;
    case Proc2::Lookup: return NfsOp::Lookup;
    case Proc2::Readlink: return NfsOp::Readlink;
    case Proc2::Read: return NfsOp::Read;
    case Proc2::Writecache: return NfsOp::Unknown;
    case Proc2::Write: return NfsOp::Write;
    case Proc2::Create: return NfsOp::Create;
    case Proc2::Remove: return NfsOp::Remove;
    case Proc2::Rename: return NfsOp::Rename;
    case Proc2::Link: return NfsOp::Link;
    case Proc2::Symlink: return NfsOp::Symlink;
    case Proc2::Mkdir: return NfsOp::Mkdir;
    case Proc2::Rmdir: return NfsOp::Rmdir;
    case Proc2::Readdir: return NfsOp::Readdir;
    case Proc2::Statfs: return NfsOp::Fsstat;
  }
  return NfsOp::Unknown;
}

bool procForOp3(NfsOp op, Proc3& out) {
  switch (op) {
    case NfsOp::Null: out = Proc3::Null; return true;
    case NfsOp::Getattr: out = Proc3::Getattr; return true;
    case NfsOp::Setattr: out = Proc3::Setattr; return true;
    case NfsOp::Lookup: out = Proc3::Lookup; return true;
    case NfsOp::Access: out = Proc3::Access; return true;
    case NfsOp::Readlink: out = Proc3::Readlink; return true;
    case NfsOp::Read: out = Proc3::Read; return true;
    case NfsOp::Write: out = Proc3::Write; return true;
    case NfsOp::Create: out = Proc3::Create; return true;
    case NfsOp::Mkdir: out = Proc3::Mkdir; return true;
    case NfsOp::Symlink: out = Proc3::Symlink; return true;
    case NfsOp::Mknod: out = Proc3::Mknod; return true;
    case NfsOp::Remove: out = Proc3::Remove; return true;
    case NfsOp::Rmdir: out = Proc3::Rmdir; return true;
    case NfsOp::Rename: out = Proc3::Rename; return true;
    case NfsOp::Link: out = Proc3::Link; return true;
    case NfsOp::Readdir: out = Proc3::Readdir; return true;
    case NfsOp::Readdirplus: out = Proc3::Readdirplus; return true;
    case NfsOp::Fsstat: out = Proc3::Fsstat; return true;
    case NfsOp::Fsinfo: out = Proc3::Fsinfo; return true;
    case NfsOp::Pathconf: out = Proc3::Pathconf; return true;
    case NfsOp::Commit: out = Proc3::Commit; return true;
    case NfsOp::Unknown: return false;
  }
  return false;
}

bool procForOp2(NfsOp op, Proc2& out) {
  switch (op) {
    case NfsOp::Null: out = Proc2::Null; return true;
    case NfsOp::Getattr: out = Proc2::Getattr; return true;
    case NfsOp::Setattr: out = Proc2::Setattr; return true;
    case NfsOp::Lookup: out = Proc2::Lookup; return true;
    case NfsOp::Readlink: out = Proc2::Readlink; return true;
    case NfsOp::Read: out = Proc2::Read; return true;
    case NfsOp::Write: out = Proc2::Write; return true;
    case NfsOp::Create: out = Proc2::Create; return true;
    case NfsOp::Remove: out = Proc2::Remove; return true;
    case NfsOp::Rename: out = Proc2::Rename; return true;
    case NfsOp::Link: out = Proc2::Link; return true;
    case NfsOp::Symlink: out = Proc2::Symlink; return true;
    case NfsOp::Mkdir: out = Proc2::Mkdir; return true;
    case NfsOp::Rmdir: out = Proc2::Rmdir; return true;
    case NfsOp::Readdir: out = Proc2::Readdir; return true;
    case NfsOp::Fsstat: out = Proc2::Statfs; return true;
    default: return false;  // ACCESS, READDIRPLUS, etc. have no v2 form
  }
}

}  // namespace nfstrace
