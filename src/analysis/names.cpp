#include "analysis/names.hpp"

#include "util/strings.hpp"

namespace nfstrace {

std::string_view nameCategoryLabel(NameCategory c) {
  switch (c) {
    case NameCategory::Mailbox: return "mailbox";
    case NameCategory::LockFile: return "lock";
    case NameCategory::MailComposer: return "mail-composer";
    case NameCategory::DotFile: return "dot-file";
    case NameCategory::AppletFile: return "applet";
    case NameCategory::BrowserCache: return "browser-cache";
    case NameCategory::LogFile: return "log";
    case NameCategory::IndexFile: return "index";
    case NameCategory::ObjectFile: return "object";
    case NameCategory::SourceFile: return "source";
    case NameCategory::TempFile: return "temp";
    case NameCategory::CoreOrCvs: return "cvs";
    case NameCategory::Other: return "other";
  }
  return "other";
}

NameCategory classifyName(std::string_view name) {
  if (name.empty()) return NameCategory::Other;

  // Lock files first: they dominate CAMPUS creations.
  if (endsWith(name, ".lock") || name == "lock" ||
      startsWith(name, ".lk") || endsWith(name, ".lck")) {
    return NameCategory::LockFile;
  }
  if (name == ".inbox" || name == "mbox" || name == "inbox" ||
      endsWith(name, ".mbox") || startsWith(name, "mbox-")) {
    return NameCategory::Mailbox;
  }
  if (startsWith(name, "pico.") || startsWith(name, ".article") ||
      startsWith(name, ".letter") || startsWith(name, "compose-")) {
    return NameCategory::MailComposer;
  }
  if (startsWith(name, "Applet_") && endsWith(name, "_Extern")) {
    return NameCategory::AppletFile;
  }
  if (startsWith(name, "cache") && name.size() > 5) {
    return NameCategory::BrowserCache;
  }
  if (name == "CVS" || name == "Entries" || name == "Repository" ||
      endsWith(name, ",v")) {
    return NameCategory::CoreOrCvs;
  }
  if (name.front() == '#' || name.back() == '~' || endsWith(name, ".tmp") ||
      startsWith(name, "tmp")) {
    return NameCategory::TempFile;
  }
  auto suffix = filenameSuffix(name);
  if (name.front() == '.' && suffix.empty()) return NameCategory::DotFile;
  if (name.front() == '.' &&
      (endsWith(name, "rc") || name == ".login" || name == ".profile" ||
       name == ".newsrc" || name == ".signature" || name == ".addressbook")) {
    return NameCategory::DotFile;
  }
  if (suffix == ".log") return NameCategory::LogFile;
  if (suffix == ".idx" || suffix == ".db" || suffix == ".pag" ||
      suffix == ".dir") {
    return NameCategory::IndexFile;
  }
  if (suffix == ".o" || suffix == ".a" || suffix == ".so") {
    return NameCategory::ObjectFile;
  }
  if (suffix == ".c" || suffix == ".h" || suffix == ".cc" || suffix == ".cpp" ||
      suffix == ".hpp" || suffix == ".java" || suffix == ".py" ||
      suffix == ".tex" || suffix == ".bib" || suffix == ".ps" ||
      suffix == ".html") {
    return NameCategory::SourceFile;
  }
  if (name.front() == '.') return NameCategory::DotFile;
  return NameCategory::Other;
}

NamePrediction predictionFor(NameCategory c) {
  switch (c) {
    case NameCategory::LockFile:
      return {.zeroLength = true, .maxLifetimeSec = 1.0, .maxSizeBytes = 0,
              .neverDeleted = false};
    case NameCategory::MailComposer:
      return {.zeroLength = false, .maxLifetimeSec = 3600.0,
              .maxSizeBytes = 40 * 1024, .neverDeleted = false};
    case NameCategory::DotFile:
      return {.zeroLength = false, .maxLifetimeSec = 0.0,
              .maxSizeBytes = 32 * 1024, .neverDeleted = true};
    case NameCategory::Mailbox:
      return {.zeroLength = false, .maxLifetimeSec = 0.0, .maxSizeBytes = 0,
              .neverDeleted = true};
    case NameCategory::AppletFile:
      return {.zeroLength = false, .maxLifetimeSec = 24.0 * 3600.0,
              .maxSizeBytes = 8 * 1024, .neverDeleted = false};
    case NameCategory::TempFile:
      return {.zeroLength = false, .maxLifetimeSec = 24.0 * 3600.0,
              .maxSizeBytes = 0, .neverDeleted = false};
    case NameCategory::ObjectFile:
      return {.zeroLength = false, .maxLifetimeSec = 0.0, .maxSizeBytes = 0,
              .neverDeleted = false};
    default:
      return {};
  }
}

double FileLifeCensus::lockFractionOfDeleted() const {
  std::uint64_t lockDeleted = 0;
  auto it = stats_.find(NameCategory::LockFile);
  if (it != stats_.end()) lockDeleted = it->second.deleted;
  return totalDeleted_ ? static_cast<double>(lockDeleted) /
                             static_cast<double>(totalDeleted_)
                       : 0.0;
}

void FileLifeCensus::observe(const TraceRecord& rec) {
  if (rec.hasReply && rec.status == NfsStat::Ok) {
    switch (rec.op) {
      case NfsOp::Create:
      case NfsOp::Mknod: {
        if (rec.hasResFh) {
          NameCategory cat = classifyName(rec.name);
          LiveFile lf;
          lf.category = cat;
          lf.created = rec.ts;
          lf.lastSize = rec.hasAttrs ? rec.fileSize : 0;
          lf.maxSize = lf.lastSize;
          live_[rec.resFh] = lf;
          auto& cs = stats_[cat];
          ++cs.created;
          ++totalCreated_;
        }
        break;
      }
      case NfsOp::Write:
      case NfsOp::Setattr:
      case NfsOp::Getattr:
      case NfsOp::Read: {
        auto it = live_.find(rec.fh);
        if (it != live_.end() && rec.hasAttrs) {
          it->second.lastSize = rec.fileSize;
          it->second.maxSize = std::max(it->second.maxSize, rec.fileSize);
        }
        break;
      }
      case NfsOp::Remove: {
        auto victim = pathrec_.childOf(rec.fh, rec.name);
        if (victim) {
          auto it = live_.find(*victim);
          if (it != live_.end()) {
            auto& cs = stats_[it->second.category];
            ++cs.deleted;
            ++totalDeleted_;
            double lifeSec = toSeconds(rec.ts - it->second.created);
            cs.lifetimesSec.add(lifeSec);
            cs.sizesAtDeath.add(static_cast<double>(it->second.lastSize));
            cs.maxSizes.add(static_cast<double>(it->second.maxSize));
            if (it->second.maxSize == 0) ++cs.zeroLength;

            // Score the create-time prediction against the outcome.
            NamePrediction pred = predictionFor(it->second.category);
            bool correct = true;
            ++cs.predictionsChecked;
            if (pred.zeroLength && it->second.maxSize > 0) correct = false;
            if (pred.maxLifetimeSec > 0 && lifeSec > pred.maxLifetimeSec) {
              correct = false;
            }
            if (pred.maxSizeBytes > 0 &&
                it->second.maxSize > pred.maxSizeBytes) {
              correct = false;
            }
            if (pred.neverDeleted) correct = false;  // it *was* deleted
            if (correct) ++cs.predictionsCorrect;

            live_.erase(it);
          }
        }
        break;
      }
      default:
        break;
    }
  }
  pathrec_.observe(rec);
}

void FileLifeCensus::finish() {
  if (finished_) return;
  finished_ = true;
  // Files still alive at the end validate the "never deleted" prediction.
  for (const auto& [fh, lf] : live_) {
    NamePrediction pred = predictionFor(lf.category);
    auto& cs = stats_[lf.category];
    if (pred.neverDeleted) {
      ++cs.predictionsChecked;
      ++cs.predictionsCorrect;
    }
    cs.maxSizes.add(static_cast<double>(lf.maxSize));
  }
}

}  // namespace nfstrace
