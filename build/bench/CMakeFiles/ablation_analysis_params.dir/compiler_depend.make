# Empty compiler generated dependencies file for ablation_analysis_params.
# This may be replaced when dependencies are built.
