// Self-monitoring layer tests: wait-free counter cells under concurrent
// increments with live scrapes, histogram slot merging, gauge fns, JSON
// escaping, and the snapshot exporter's two output formats.  Runs under
// the `tsan` ctest label (ThreadSanitizer preset).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/exporter.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timer.hpp"

namespace nfstrace::obs {
namespace {

TEST(Counter, SlotsAggregateAtScrape) {
  Counter c;
  c.inc(0, 5);
  c.inc(1, 7);
  c.inc(kMetricSlots, 1);  // wraps onto slot 0
  EXPECT_EQ(c.total(), 13u);
}

TEST(Counter, ConcurrentIncrementsWithLiveScrapes) {
  Registry reg;
  Counter& c = reg.counter("test.hits");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 200'000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, t] {
      CounterHandle h(c, static_cast<std::size_t>(t));
      for (std::uint64_t i = 0; i < kPerThread; ++i) h.inc();
    });
  }
  // Scrape while the increments are in flight: totals must be readable
  // (no torn/invalid values) and monotically bounded by the final count.
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    Snapshot snap = reg.scrape();
    ASSERT_EQ(snap.counters.size(), 1u);
    EXPECT_GE(snap.counters[0].second, last);
    last = snap.counters[0].second;
    EXPECT_LE(last, kThreads * kPerThread);
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.total(), kThreads * kPerThread);
}

TEST(Histogram, ConcurrentRecordsMergeAtScrape) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      HistogramHandle handle(h, static_cast<std::size_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        handle.record(static_cast<std::uint64_t>(1) << (i % 16));
      }
    });
  }
  for (auto& t : threads) t.join();
  HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  // 2^k lands in bucket k+1 ([2^k, 2^(k+1))); 16 distinct values, evenly.
  for (int k = 0; k < 16; ++k) {
    EXPECT_EQ(snap.buckets[static_cast<std::size_t>(k) + 1],
              static_cast<std::uint64_t>(kThreads) * kPerThread / 16);
  }
}

TEST(Histogram, SnapshotMergeAndQuantiles) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.record(0, 10);     // bucket [8,16)
  for (int i = 0; i < 100; ++i) b.record(1, 1000);   // bucket [512,1024)
  HistogramSnapshot sa = a.snapshot();
  HistogramSnapshot sb = b.snapshot();
  sa.merge(sb);
  EXPECT_EQ(sa.count, 200u);
  EXPECT_EQ(sa.sum, 100u * 10 + 100u * 1000);
  double p25 = sa.quantile(0.25);
  double p75 = sa.quantile(0.75);
  EXPECT_GE(p25, 8.0);
  EXPECT_LE(p25, 16.0);
  EXPECT_GE(p75, 512.0);
  EXPECT_LE(p75, 1024.0);
  EXPECT_LE(sa.quantile(0.0), sa.quantile(1.0));
  EXPECT_DOUBLE_EQ(sa.mean(), (100.0 * 10 + 100.0 * 1000) / 200.0);
  EXPECT_EQ(sa.max(), 1024.0);
}

TEST(Histogram, ZeroAndEmptyEdgeCases) {
  Histogram h;
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_EQ(h.snapshot().quantile(0.5), 0.0);
  h.record(0, 0);
  HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.buckets[0], 1u);
  EXPECT_EQ(snap.quantile(0.5), 0.0);
}

TEST(Registry, CreateOrGetReturnsSameMetric) {
  Registry reg;
  Counter& a = reg.counter("x");
  Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc(0, 3);
  EXPECT_EQ(b.total(), 3u);
}

TEST(Registry, GaugesAndGaugeFns) {
  Registry reg;
  reg.gauge("g.set").set(2.5);
  reg.gaugeFn("g.fn", [] { return 7.0; });
  reg.gaugeFn("g.fn", [] { return 99.0; });  // keep-first
  Snapshot snap = reg.scrape();
  ASSERT_EQ(snap.gauges.size(), 2u);
  // Name-sorted: g.fn before g.set.
  EXPECT_EQ(snap.gauges[0].first, "g.fn");
  EXPECT_EQ(snap.gauges[0].second, 7.0);
  EXPECT_EQ(snap.gauges[1].first, "g.set");
  EXPECT_EQ(snap.gauges[1].second, 2.5);
  reg.unregisterGaugeFn("g.fn");
  EXPECT_EQ(reg.scrape().gauges.size(), 1u);
}

TEST(Registry, ScrapeIsNameSorted) {
  Registry reg;
  reg.counter("z.last");
  reg.counter("a.first");
  reg.counter("m.middle");
  Snapshot snap = reg.scrape();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "a.first");
  EXPECT_EQ(snap.counters[1].first, "m.middle");
  EXPECT_EQ(snap.counters[2].first, "z.last");
}

TEST(TimerSpan, RecordsElapsedNanos) {
  Registry reg;
  HistogramHandle h = reg.histogramHandle("t.span_ns", 0);
  {
    TimerSpan span(h);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  HistogramSnapshot snap = reg.histogram("t.span_ns").snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_GE(snap.sum, 2'000'000u);  // at least the 2 ms we slept
}

TEST(TimerSpan, UnboundHandleIsNoop) {
  HistogramHandle unbound;
  TimerSpan span(unbound);  // must not crash; records nothing
  CounterHandle c;
  c.inc();  // same for counters
  GaugeHandle g;
  g.set(1.0);  // and gauges
}

TEST(Json, WriterNestingAndEscaping) {
  JsonWriter w;
  w.beginObject();
  w.field("a", std::uint64_t{1});
  w.key("s").value("quote\" back\\slash\nnewline\ttab\x01");
  w.key("arr").beginArray().value(std::int64_t{-2}).value(true).valueNull().endArray();
  w.key("nested").beginObject().field("pi", 3.5).endObject();
  w.endObject();
  EXPECT_EQ(w.str(),
            "{\"a\":1,"
            "\"s\":\"quote\\\" back\\\\slash\\nnewline\\ttab\\u0001\","
            "\"arr\":[-2,true,null],"
            "\"nested\":{\"pi\":3.5}}");
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.beginArray();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.endArray();
  EXPECT_EQ(w.str(), "[null,null]");
}

/// Wrap an escaped string body in quotes to form a JSON document.
/// (Plain concatenation, not operator+ chains: GCC 12's -Wrestrict
/// false-positives on `"lit" + std::string&&` in this translation unit.)
std::string quotedDoc(const std::string& body) {
  std::string doc = "\"";
  doc += body;
  doc += '"';
  return doc;
}

TEST(Json, EscapeHandlesUtf8AndInvalidBytes) {
  // Well-formed UTF-8 passes through untouched.
  std::string utf8 = "caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x98\x80";
  EXPECT_EQ(JsonWriter::escape(utf8), utf8);
  // Invalid bytes (stray continuation, overlong, surrogate encodings,
  // truncated sequences, raw binary) become \u00XX escapes so the output
  // is always valid JSON and valid UTF-8.
  EXPECT_EQ(JsonWriter::escape("\x80"), "\\u0080");
  EXPECT_EQ(JsonWriter::escape("\xc0\xaf"), "\\u00c0\\u00af");  // overlong /
  EXPECT_EQ(JsonWriter::escape("\xed\xa0\x80"),
            "\\u00ed\\u00a0\\u0080");  // UTF-16 surrogate as UTF-8
  EXPECT_EQ(JsonWriter::escape("\xf0\x9f\x98"),
            "\\u00f0\\u009f\\u0098");  // truncated 4-byte sequence
  EXPECT_EQ(JsonWriter::escape("\xff\xfe"), "\\u00ff\\u00fe");
  // Escaped output always embeds into a valid document.
  for (const std::string& s :
       {std::string("\x80\xc3"), std::string("a\x01\xc3\xa9\xf5z"),
        std::string("\xed\xbf\xbf tail")}) {
    EXPECT_TRUE(isValidJson(quotedDoc(JsonWriter::escape(s)))) << s;
  }
}

TEST(Json, UnescapeInvertsEscapeOnValidUtf8) {
  for (const std::string& s :
       {std::string("plain"), std::string("tabs\tand\nnewlines"),
        std::string("quote\"back\\slash"), std::string("caf\xc3\xa9"),
        std::string("\xe2\x82\xac\xf0\x9f\x98\x80"),
        std::string("ctrl\x01\x1f")}) {
    EXPECT_EQ(jsonUnescape(JsonWriter::escape(s)), s) << s;
  }
  // Surrogate pairs decode to the astral code point.
  EXPECT_EQ(jsonUnescape("\\ud83d\\ude00"), "\xf0\x9f\x98\x80");
  EXPECT_EQ(jsonUnescape("\\u20ac"), "\xe2\x82\xac");
}

TEST(Json, EscapeRoundTripFuzz) {
  // Deterministic xorshift fuzz: random valid-UTF-8 strings round-trip
  // byte-exactly; arbitrary byte strings always escape to valid JSON.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int iter = 0; iter < 200; ++iter) {
    std::string utf8;
    for (int n = 0; n < 40; ++n) {
      std::uint32_t cp = static_cast<std::uint32_t>(next() % 0x110000);
      if (cp >= 0xd800 && cp <= 0xdfff) cp = 0x20;  // skip surrogates
      if (cp < 0x80) {
        utf8.push_back(static_cast<char>(cp));
      } else if (cp < 0x800) {
        utf8.push_back(static_cast<char>(0xc0 | (cp >> 6)));
        utf8.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
      } else if (cp < 0x10000) {
        utf8.push_back(static_cast<char>(0xe0 | (cp >> 12)));
        utf8.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
        utf8.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
      } else {
        utf8.push_back(static_cast<char>(0xf0 | (cp >> 18)));
        utf8.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
        utf8.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
        utf8.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
      }
    }
    std::string escaped = JsonWriter::escape(utf8);
    ASSERT_TRUE(isValidJson(quotedDoc(escaped))) << iter;
    ASSERT_EQ(jsonUnescape(escaped), utf8) << iter;

    std::string raw;
    for (int n = 0; n < 64; ++n) {
      raw.push_back(static_cast<char>(next() & 0xff));
    }
    ASSERT_TRUE(isValidJson(quotedDoc(JsonWriter::escape(raw)))) << iter;
  }
}

TEST(Json, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(isValidJson("{}"));
  EXPECT_TRUE(isValidJson("  [1, -2.5e3, true, null, \"x\\u0041\"] "));
  EXPECT_TRUE(isValidJson("\"just a string\""));
  EXPECT_TRUE(isValidJson("{\"a\":{\"b\":[{}]}}"));
  EXPECT_TRUE(isValidJson("0.5"));

  EXPECT_FALSE(isValidJson(""));
  EXPECT_FALSE(isValidJson("{"));
  EXPECT_FALSE(isValidJson("[1,]"));
  EXPECT_FALSE(isValidJson("{\"a\":1,}"));
  EXPECT_FALSE(isValidJson("{\"a\" 1}"));
  EXPECT_FALSE(isValidJson("01"));
  EXPECT_FALSE(isValidJson("1.e3"));
  EXPECT_FALSE(isValidJson("nul"));
  EXPECT_FALSE(isValidJson("{} trailing"));
  EXPECT_FALSE(isValidJson("\"raw \x01 control\""));
  EXPECT_FALSE(isValidJson("\"bad \x80 byte\""));
  EXPECT_FALSE(isValidJson("\"bad escape \\x\""));
  EXPECT_FALSE(isValidJson("\"unterminated"));
}

TEST(Exporter, PercentilesInTableAndJson) {
  Registry reg;
  Histogram& h = reg.histogram("t.lat_ns");
  for (int i = 0; i < 95; ++i) h.record(0, 10);     // bucket [8,16)
  for (int i = 0; i < 5; ++i) h.record(0, 100000);  // tail
  Snapshot snap = reg.scrape();

  std::string table = SnapshotExporter::renderStatusTable(snap, 0, 1000);
  EXPECT_NE(table.find("p50"), std::string::npos);
  EXPECT_NE(table.find("p95"), std::string::npos);
  EXPECT_NE(table.find("p99"), std::string::npos);

  std::string line = SnapshotExporter::renderJsonLine(snap, 0, 1000);
  EXPECT_TRUE(isValidJson(line));
  EXPECT_NE(line.find("\"p50\":"), std::string::npos);
  EXPECT_NE(line.find("\"p99\":"), std::string::npos);
  // p50 falls in the dominant [8,16) bucket; p99 lands in the tail.
  ASSERT_EQ(snap.histograms.size(), 1u);
  const HistogramSnapshot& hs = snap.histograms[0].second;
  EXPECT_GE(hs.quantile(0.5), 8.0);
  EXPECT_LE(hs.quantile(0.5), 16.0);
  EXPECT_GT(hs.quantile(0.99), 16.0);
}

TEST(Exporter, RenderPrometheusExposition) {
  Registry reg;
  reg.counter("pipeline.records_released").inc(0, 42);
  reg.gauge("pipeline.merge_watermark_lag").set(2.5);
  Histogram& h = reg.histogram("trace.flush_ns");
  for (int i = 0; i < 10; ++i) h.record(0, 5000);
  Snapshot snap = reg.scrape();

  std::string prom = SnapshotExporter::renderPrometheus(snap);
  EXPECT_NE(
      prom.find("# TYPE nfstrace_pipeline_records_released_total counter"),
      std::string::npos);
  EXPECT_NE(prom.find("nfstrace_pipeline_records_released_total 42"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE nfstrace_pipeline_merge_watermark_lag gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("nfstrace_pipeline_merge_watermark_lag 2.5"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE nfstrace_trace_flush_ns summary"),
            std::string::npos);
  EXPECT_NE(prom.find("nfstrace_trace_flush_ns{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("nfstrace_trace_flush_ns_sum 50000"),
            std::string::npos);
  EXPECT_NE(prom.find("nfstrace_trace_flush_ns_count 10"),
            std::string::npos);
  // Every line is either a comment or name{labels} value.
  std::istringstream in(prom);
  std::string lineStr;
  while (std::getline(in, lineStr)) {
    ASSERT_FALSE(lineStr.empty());
    EXPECT_TRUE(lineStr[0] == '#' || lineStr.rfind("nfstrace_", 0) == 0)
        << lineStr;
  }
}

TEST(Exporter, PromFileScrape) {
  Registry reg;
  reg.counter("c.hits").inc(0, 3);
  std::string path = "/tmp/obs_test_prom.txt";
  std::remove(path.c_str());
  {
    SnapshotExporter::Config cfg;
    cfg.intervalUs = 0;
    cfg.promPath = path;
    SnapshotExporter exporter(reg, cfg);
    exporter.exportOnce();
    exporter.stop();
  }
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  // The file is rewritten whole per scrape: exactly one exposition.
  EXPECT_NE(ss.str().find("nfstrace_c_hits_total 3"), std::string::npos);
  EXPECT_EQ(ss.str().find("nfstrace_c_hits_total 3"),
            ss.str().rfind("nfstrace_c_hits_total 3"));
  std::remove(path.c_str());
}

TEST(Exporter, FileOutputsAreAtomicAndAppendAcrossRestarts) {
  Registry reg;
  reg.counter("c.hits").inc(0, 1);
  std::string prom = "/tmp/obs_test_atomic_prom.txt";
  std::string jsonl = "/tmp/obs_test_atomic.jsonl";
  std::remove(prom.c_str());
  std::remove(jsonl.c_str());

  // Two exporter lifetimes over the same files, as a restarted daemon
  // produces: the jsonl history must accumulate, not truncate.
  for (int run = 0; run < 2; ++run) {
    SnapshotExporter::Config cfg;
    cfg.intervalUs = 0;
    cfg.promPath = prom;
    cfg.jsonlPath = jsonl;
    SnapshotExporter exporter(reg, cfg);
    exporter.exportOnce();
    exporter.stop();
  }

  // The prom exposition goes through tmp + rename (a scrape must never
  // see a partial file); jsonl is a plain O(1) append.  Neither may
  // leave a temporary behind.
  EXPECT_FALSE(std::ifstream(prom + ".tmp").good());
  EXPECT_FALSE(std::ifstream(jsonl + ".tmp").good());

  std::ostringstream promSs;
  promSs << std::ifstream(prom).rdbuf();
  EXPECT_NE(promSs.str().find("nfstrace_c_hits_total 1"), std::string::npos);

  std::ostringstream jsonlSs;
  jsonlSs << std::ifstream(jsonl).rdbuf();
  std::istringstream lines(jsonlSs.str());
  std::string lineStr;
  std::size_t count = 0;
  while (std::getline(lines, lineStr)) {
    EXPECT_TRUE(isValidJson(lineStr)) << lineStr;
    ++count;
  }
  // Each run emits one snapshot from exportOnce and one from stop.
  EXPECT_EQ(count, 4u);
  std::remove(prom.c_str());
  std::remove(jsonl.c_str());
}

TEST(Exporter, JsonLinesAndStatusTable) {
  Registry reg;
  reg.counter("pipeline.records_released").inc(0, 42);
  reg.gauge("pipeline.merge_watermark_lag").set(3);
  reg.histogram("trace.flush_ns").record(0, 5000);

  Snapshot snap = reg.scrape();
  std::string table = SnapshotExporter::renderStatusTable(snap, 0, 1000);
  EXPECT_NE(table.find("pipeline.records_released"), std::string::npos);
  EXPECT_NE(table.find("42"), std::string::npos);
  EXPECT_NE(table.find("trace.flush_ns"), std::string::npos);

  std::string line = SnapshotExporter::renderJsonLine(snap, 0, 1000);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"pipeline.records_released\":42"), std::string::npos);
  EXPECT_NE(line.find("\"pipeline.merge_watermark_lag\":3"), std::string::npos);
  EXPECT_NE(line.find("\"trace.flush_ns\""), std::string::npos);
}

TEST(Exporter, WritesJsonlFileWithFinalSnapshot) {
  Registry reg;
  reg.counter("c").inc(0, 1);
  std::string path = "/tmp/obs_test_snapshots.jsonl";
  std::remove(path.c_str());
  {
    SnapshotExporter::Config cfg;
    cfg.intervalUs = 0;  // no thread; snapshots only via exportOnce/stop
    cfg.jsonlPath = path;
    SnapshotExporter exporter(reg, cfg);
    exporter.exportOnce();
    exporter.stop();  // emits the final snapshot
    EXPECT_EQ(exporter.snapshotsWritten(), 2u);
  }
  std::ifstream in(path);
  std::string lineStr;
  int lines = 0;
  while (std::getline(in, lineStr)) {
    EXPECT_EQ(lineStr.front(), '{');
    EXPECT_EQ(lineStr.back(), '}');
    EXPECT_NE(lineStr.find("\"c\":1"), std::string::npos);
    ++lines;
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(Exporter, BackgroundThreadScrapesWhileCountersMove) {
  Registry reg;
  Counter& c = reg.counter("bg.hits");
  std::string path = "/tmp/obs_test_bg.jsonl";
  std::remove(path.c_str());
  {
    SnapshotExporter::Config cfg;
    cfg.intervalUs = 2000;  // 2 ms
    cfg.jsonlPath = path;
    SnapshotExporter exporter(reg, cfg);
    std::thread worker([&c] {
      CounterHandle h(c, 1);
      for (int i = 0; i < 100'000; ++i) h.inc();
    });
    worker.join();
    exporter.stop();
    EXPECT_GE(exporter.snapshotsWritten(), 1u);
  }
  // Final line must carry the complete total.
  std::ifstream in(path);
  std::string lineStr, last;
  while (std::getline(in, lineStr)) last = lineStr;
  EXPECT_NE(last.find("\"bg.hits\":100000"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nfstrace::obs
