// Table 2: summary of average daily activity — total ops, data read and
// written, read/write ratios — for CAMPUS and EECS over the analysis week,
// with the paper's values (both its 2001 traces and the historical INS /
// RES / NT / Sprite numbers) printed alongside.
#include "analysis/summary.hpp"
#include "bench_common.hpp"

using namespace nfstrace;
using namespace nfstrace::bench;

namespace {

struct Tally {
  TraceSummary summary;
  void onRecord(const TraceRecord& r) {
    // Incremental version of summarize() for streaming week-long runs.
    ++summary.totalOps;
    summary.opCounts[static_cast<std::size_t>(r.op)]++;
    if (r.op == NfsOp::Read) {
      ++summary.readOps;
      ++summary.dataOps;
      summary.bytesRead += r.hasReply ? r.retCount : r.count;
    } else if (r.op == NfsOp::Write) {
      ++summary.writeOps;
      ++summary.dataOps;
      summary.bytesWritten += r.hasReply && r.retCount ? r.retCount : r.count;
    } else {
      ++summary.metadataOps;
    }
  }
};

}  // namespace

int main() {
  banner("Table 2 -- summary of average daily activity (per-day averages)");

  const double simDays = 7.0;
  Tally campusTally, eecsTally;

  {
    auto campus = makeCampus(36, [&](const TraceRecord& r) {
      campusTally.onRecord(r);
    });
    campus.workload->setup(kWeekStart);
    campus.workload->run(kWeekStart, kWeekStart + days(simDays));
    campus.env->finishCapture();
  }
  {
    auto eecs = makeEecs(24, [&](const TraceRecord& r) {
      eecsTally.onRecord(r);
    });
    eecs.workload->setup(kWeekStart);
    eecs.workload->run(kWeekStart, kWeekStart + days(simDays));
    eecs.env->finishCapture();
  }

  auto row = [&](const TraceSummary& s, const char* name) {
    double opsM = static_cast<double>(s.totalOps) / simDays / 1e6;
    double readGb = static_cast<double>(s.bytesRead) / simDays / 1e9;
    double readOpsM = static_cast<double>(s.readOps) / simDays / 1e6;
    double writeGb = static_cast<double>(s.bytesWritten) / simDays / 1e9;
    double writeOpsM = static_cast<double>(s.writeOps) / simDays / 1e6;
    std::printf(
        "%-10s ops/day=%.3fM  read=%.3fGB (%.3fM ops)  "
        "written=%.3fGB (%.3fM ops)\n"
        "           R/W bytes=%.2f  R/W ops=%.2f  data-op share=%.1f%%\n",
        name, opsM, readGb, readOpsM, writeGb, writeOpsM,
        s.readWriteByteRatio(), s.readWriteOpRatio(),
        100.0 * s.dataOpFraction());
  };

  std::printf("--- measured (simulated week 10/21-10/27, scaled population)\n");
  row(campusTally.summary, "CAMPUS");
  row(eecsTally.summary, "EECS");

  std::printf(
      "\n--- paper (Table 2, 10/21-10/27/2001 columns; full population)\n"
      "CAMPUS     ops/day=26.7M   read=119.6GB (17.29M ops)  "
      "written=44.57GB (5.73M ops)\n"
      "           R/W bytes=2.68  R/W ops=3.01\n"
      "EECS       ops/day=4.44M   read=5.10GB (0.461M ops)   "
      "written=9.086GB (0.667M ops)\n"
      "           R/W bytes=0.56  R/W ops=0.69\n"
      "\n--- paper (historical traces, for context)\n"
      "INS  (2000)  ops/day=8.30M  read=3.05GB  R/W bytes=5.6  R/W ops=15.4\n"
      "RES  (2000)  ops/day=3.20M  read=1.70GB  R/W bytes=3.7  R/W ops=4.27\n"
      "NT   (2000)  ops/day=3.87M  read=4.04GB  R/W bytes=6.3  R/W ops=4.49\n"
      "Sprite(1991) ops/day=0.43M  read=5.36GB  R/W bytes=4.6  R/W ops=3.61\n");

  std::printf(
      "\nShape checks: CAMPUS R/W byte ratio ~3 vs EECS < 1; CAMPUS is an\n"
      "order of magnitude busier per user-population unit; EECS write ops\n"
      "exceed read ops (unlike every historical trace).\n");
  return 0;
}
