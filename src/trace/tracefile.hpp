// Trace file I/O.
//
// Text format: one record per line of space-separated key=value pairs,
// nfsdump-style, human-greppable:
//
//   t=0.013202 r=0.013514 c=10.1.0.5 s=10.0.0.1 xid=1a2b v=3 p=udp op=read
//   fh=0001...:  off=0 cnt=8192 st=OK ret=8192 eof=1 sz=123456 mt=999.0
//
// Unknown keys are skipped on read, so the format can grow.  A compact
// binary format (magic "NFST") is also provided for large traces.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace nfstrace {

/// Render one record as a text line (no trailing newline).
std::string formatRecord(const TraceRecord& rec);
/// Parse a text line; nullopt for blank/comment lines; throws
/// std::runtime_error on malformed records.
std::optional<TraceRecord> parseRecord(const std::string& line);

class TraceWriter {
 public:
  enum class Format { Text, Binary };

  TraceWriter(const std::string& path, Format format = Format::Text);
  ~TraceWriter();
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write(const TraceRecord& rec);
  std::uint64_t recordsWritten() const { return count_; }

 private:
  std::FILE* f_ = nullptr;
  Format format_;
  std::uint64_t count_ = 0;
};

class TraceReader {
 public:
  explicit TraceReader(const std::string& path);
  ~TraceReader();
  TraceReader(const TraceReader&) = delete;
  TraceReader& operator=(const TraceReader&) = delete;

  std::optional<TraceRecord> next();

  /// Convenience: read a whole trace file into memory.
  static std::vector<TraceRecord> readAll(const std::string& path);

 private:
  std::FILE* f_ = nullptr;
  bool binary_ = false;
};

}  // namespace nfstrace
