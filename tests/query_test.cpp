// Query pushdown and extent-parallel decode: the zone-map-pruned scan
// must produce byte-identical reports to the record-filter-only oracle
// on randomized traces and predicates, the extent scheduler must be
// byte-identical to the serial reader at any thread count, legacy
// schema-2/3 files must decode identically through the new path, and
// concatenated sealed segments must chain (with a sequential fallback
// when a footer is missing).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "analysis/engine/engine.hpp"
#include "analysis/engine/passes.hpp"
#include "analysis/engine/report.hpp"
#include "trace/predicate.hpp"
#include "trace/tracefile.hpp"
#include "trace/v2.hpp"
#include "util/rng.hpp"

namespace nfstrace {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "query_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".trace";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

/// Randomized record with the field population the sniffer can actually
/// produce, so every decode path round-trips it identically.  With
/// `inEnumFtypes`, ftype stays < 0x80 — required by the legacy-schema
/// tests, where schema 2's raw-byte ftype column must equal the varint.
TraceRecord randomRecord(Rng& rng, MicroTime ts, bool inEnumFtypes) {
  static const NfsOp kOps[] = {
      NfsOp::Getattr, NfsOp::Setattr, NfsOp::Lookup, NfsOp::Access,
      NfsOp::Read,    NfsOp::Write,   NfsOp::Create, NfsOp::Remove,
      NfsOp::Rename,  NfsOp::Readdir, NfsOp::Commit, NfsOp::Fsstat,
  };
  TraceRecord r;
  r.ts = ts;
  r.client = makeIp(10, 1, 0, static_cast<int>(rng.below(20)) + 1);
  r.server = makeIp(10, 0, 0, 1);
  r.xid = static_cast<std::uint32_t>(rng.next());
  r.vers = rng.chance(0.1) ? 2 : 3;
  r.overTcp = rng.chance(0.5);
  r.op = kOps[rng.below(std::size(kOps))];
  r.uid = 2000 + static_cast<std::uint32_t>(rng.below(40));
  r.gid = 200 + static_cast<std::uint32_t>(rng.below(4));
  r.fh = FileHandle::make(2, rng.below(500), 7);
  if (r.op == NfsOp::Rename) {
    r.fh2 = FileHandle::make(2, rng.below(500), 7);
    r.name = "from" + std::to_string(rng.below(100));
    r.name2 = "to" + std::to_string(rng.below(100));
  } else if (r.hasName()) {
    r.name = "file" + std::to_string(rng.below(200)) + ".txt";
  }
  if (r.hasOffset()) {
    r.offset = rng.below(1 << 20) * 8192;
    r.count = 8192;
  }
  if (rng.chance(0.9)) {
    r.hasReply = true;
    r.replyTs = r.ts + static_cast<MicroTime>(rng.below(5000)) + 1;
    r.status = rng.chance(0.05) ? NfsStat::ErrNoEnt : NfsStat::Ok;
    if (r.op == NfsOp::Read || r.op == NfsOp::Write) {
      r.retCount = r.count;
      r.eof = r.op == NfsOp::Read && rng.chance(0.3);
    }
    if ((r.op == NfsOp::Lookup || r.op == NfsOp::Create) &&
        r.status == NfsStat::Ok) {
      r.resFh = FileHandle::make(2, rng.below(500), 7);
      r.hasResFh = true;
    }
    if (rng.chance(0.8)) {
      r.hasAttrs = true;
      r.ftype = !inEnumFtypes && rng.chance(0.02)
                    ? static_cast<FileType>(rng.below(1u << 16) + 8)
                    : rng.chance(0.2) ? FileType::Directory
                                      : FileType::Regular;
      r.fileSize = rng.below(1 << 22);
      r.fileMtime = r.ts - static_cast<MicroTime>(rng.below(kMicrosPerHour));
      r.fileId = rng.below(100000);
    }
    if (r.op == NfsOp::Write && rng.chance(0.7)) {
      r.hasPre = true;
      r.preSize = rng.below(1 << 22);
      r.preMtime = r.ts - static_cast<MicroTime>(rng.below(kMicrosPerHour));
    }
  }
  return r;
}

std::vector<TraceRecord> randomRecords(std::size_t n, std::uint64_t seed,
                                       bool inEnumFtypes = false) {
  Rng rng(seed);
  std::vector<TraceRecord> out;
  out.reserve(n);
  MicroTime ts = 86400 * kMicrosPerSecond;
  for (std::size_t i = 0; i < n; ++i) {
    ts += static_cast<MicroTime>(rng.below(20000));
    out.push_back(randomRecord(rng, ts, inEnumFtypes));
  }
  return out;
}

void writeV2(const std::string& path, const std::vector<TraceRecord>& recs,
             std::uint64_t extentRecords) {
  TraceWriter::Options opts;
  opts.format = TraceWriter::Format::V2;
  opts.v2ExtentRecords = extentRecords;
  TraceWriter w(path, opts);
  for (const auto& r : recs) w.write(r);
}

/// The oracle: classic reader scan, record-level filtering only (no
/// zone-map pruning, no extent parallelism).
std::string reportClassic(const std::string& path,
                          const ScanPredicate& pred = {}) {
  StandardAnalyses analyses;
  AnalysisEngine::Config cfg;
  cfg.predicate = pred;
  AnalysisEngine engine(cfg);
  engine.addPasses(analyses.all());
  TraceReader reader(path);
  engine.run(reader);
  return renderReportText("q", analyses);
}

/// The path under test: runFile dispatches to the extent scanner when
/// threads > 1 or the predicate is non-trivial.
std::string reportExtent(const std::string& path, std::size_t threads,
                         const ScanPredicate& pred = {},
                         AnalysisEngine::Stats* statsOut = nullptr) {
  StandardAnalyses analyses;
  AnalysisEngine::Config cfg;
  cfg.decodeThreads = threads;
  cfg.predicate = pred;
  AnalysisEngine engine(cfg);
  engine.addPasses(analyses.all());
  engine.runFile(path);
  if (statsOut) *statsOut = engine.stats();
  return renderReportText("q", analyses);
}

/// Patch the one schema digit in the header block ("schema 4" ->
/// "schema <d>"), turning a current-writer file into what a pre-bump
/// writer produced.
void patchSchemaDigit(const std::string& path, char digit) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  char head[128];
  std::size_t got = std::fread(head, 1, sizeof(head), f);
  std::string h(head, got);
  std::size_t pos = h.find("schema 4");
  ASSERT_NE(pos, std::string::npos);
  ASSERT_EQ(std::fseek(f, static_cast<long>(pos + 7), SEEK_SET), 0);
  std::fputc(digit, f);
  std::fclose(f);
}

TEST_F(QueryTest, PrunedMatchesUnprunedOnRandomizedPredicates) {
  // The differential: for random traces and random predicates, the
  // zone-map-pruned extent scan must render exactly the report the
  // record-filter-only oracle renders.  Across the rounds at least one
  // extent must actually get pruned, or the test is vacuous.
  static const NfsOp kPredOps[] = {NfsOp::Read,   NfsOp::Write,
                                   NfsOp::Lookup, NfsOp::Getattr,
                                   NfsOp::Create, NfsOp::Remove};
  std::uint64_t prunedTotal = 0;
  for (std::uint64_t round = 0; round < 6; ++round) {
    auto recs = randomRecords(1200, 100 + round);
    writeV2(path_, recs, /*extentRecords=*/128);
    Rng rng(900 + round);
    ScanPredicate pred;
    MicroTime lo = recs.front().ts, hi = recs.back().ts;
    if (rng.chance(0.7)) {
      MicroTime a = lo + static_cast<MicroTime>(
                             rng.below(static_cast<std::uint64_t>(hi - lo)));
      MicroTime b = lo + static_cast<MicroTime>(
                             rng.below(static_cast<std::uint64_t>(hi - lo)));
      pred.from = std::min(a, b);
      pred.to = std::max(a, b);
    }
    if (rng.chance(0.5)) {
      std::uint32_t ops = 0;
      for (NfsOp op : kPredOps) {
        if (rng.chance(0.4)) ops |= opMaskBit(op);
      }
      if (ops != 0) pred.ops = ops;
    }
    if (rng.chance(0.3)) {
      pred.uid = 2000 + static_cast<std::uint32_t>(rng.below(40));
    }
    if (pred.trivial()) {
      pred.from = lo + (hi - lo) / 4;
      pred.to = hi - (hi - lo) / 4;
    }
    SCOPED_TRACE("round " + std::to_string(round));
    std::string oracle = reportClassic(path_, pred);
    AnalysisEngine::Stats st;
    EXPECT_EQ(reportExtent(path_, 1, pred, &st), oracle);
    EXPECT_EQ(reportExtent(path_, 3, pred, &st), oracle);
    EXPECT_GT(st.extentsTotal, 0u);
    prunedTotal += st.extentsPruned;
  }
  EXPECT_GT(prunedTotal, 0u);
}

TEST_F(QueryTest, TimeWindowPrunesWholeExtents) {
  // A window covering exactly one extent's time range must prune nearly
  // everything else before decode (adjacent extents can share a
  // boundary timestamp, so allow the two neighbours to survive) and
  // still keep exactly the records the record-level filter keeps.
  auto recs = randomRecords(1500, 21);
  writeV2(path_, recs, /*extentRecords=*/128);
  auto index = tracev2::loadExtentIndex(path_);
  ASSERT_TRUE(index.has_value());
  ASSERT_GE(index->size(), 8u);
  const auto& mid = (*index)[index->size() / 2];
  ScanPredicate pred;
  pred.from = mid.tsMin;
  pred.to = mid.tsMax;
  std::uint64_t expectKept = 0;
  for (const auto& r : recs) {
    if (r.ts >= pred.from && r.ts <= pred.to) ++expectKept;
  }
  AnalysisEngine::Stats st;
  std::string pruned = reportExtent(path_, 2, pred, &st);
  EXPECT_EQ(pruned, reportClassic(path_, pred));
  EXPECT_EQ(st.records, expectKept);
  EXPECT_EQ(st.extentsTotal, index->size());
  EXPECT_GE(st.extentsPruned, index->size() - 3);
}

TEST_F(QueryTest, ParallelDecodeByteIdenticalAcrossThreadCounts) {
  auto recs = randomRecords(2000, 33);
  writeV2(path_, recs, /*extentRecords=*/256);
  std::string oracle = reportClassic(path_);
  for (std::size_t threads : {2, 3, 4, 8}) {
    SCOPED_TRACE("decodeThreads " + std::to_string(threads));
    AnalysisEngine::Stats st;
    EXPECT_EQ(reportExtent(path_, threads, {}, &st), oracle);
    EXPECT_EQ(st.records, recs.size());
    EXPECT_EQ(st.extentsPruned, 0u);
  }
}

TEST_F(QueryTest, LegacySchemaFilesDecodeIdenticallyThroughExtentPath) {
  // Pre-bump files (schema 2: raw-byte ftype column; schema 3: varint
  // ftype, 32-byte footer era) must decode through the extent scanner
  // exactly as through the classic reader.  The writer emits schema 4;
  // patching the digit back reproduces a legacy file because the column
  // encodings agree for in-enum ftypes and footer-entry width is
  // CRC-disambiguated, not schema-gated.
  for (char digit : {'2', '3'}) {
    SCOPED_TRACE(std::string("schema ") + digit);
    auto recs = randomRecords(900, 55, /*inEnumFtypes=*/true);
    writeV2(path_, recs, /*extentRecords=*/128);
    patchSchemaDigit(path_, digit);
    auto back = TraceReader::readAll(path_);
    ASSERT_EQ(back.size(), recs.size());
    std::string oracle = reportClassic(path_);
    AnalysisEngine::Stats st;
    EXPECT_EQ(reportExtent(path_, 4, {}, &st), oracle);
    EXPECT_EQ(st.records, recs.size());
    ScanPredicate pred;
    pred.ops = opMaskBit(NfsOp::Read) | opMaskBit(NfsOp::Write);
    EXPECT_EQ(reportExtent(path_, 2, pred), reportClassic(path_, pred));
  }
}

TEST_F(QueryTest, ChainedSegmentsIndexAndScanIdentically) {
  // Concatenated sealed segments — what the daemon's retention window
  // looks like as one byte stream.  The chained index must cover every
  // extent of every segment (offsets rebased), and both the sequential
  // reader and the extent scanner must see all records.
  auto all = randomRecords(1800, 77);
  std::vector<std::string> parts;
  for (int s = 0; s < 3; ++s) {
    std::string part = path_ + ".seg" + std::to_string(s);
    std::vector<TraceRecord> slice(all.begin() + s * 600,
                                   all.begin() + (s + 1) * 600);
    writeV2(part, slice, /*extentRecords=*/128);
    parts.push_back(part);
  }
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    for (const auto& part : parts) {
      std::ifstream in(part, std::ios::binary);
      out << in.rdbuf();
    }
  }
  std::size_t singleExtents = 0;
  for (const auto& part : parts) {
    auto idx = tracev2::loadExtentIndex(part);
    ASSERT_TRUE(idx.has_value());
    singleExtents += idx->size();
    std::remove(part.c_str());
  }
  auto chained = tracev2::loadChainedIndex(path_);
  ASSERT_TRUE(chained.has_value());
  EXPECT_EQ(chained->size(), singleExtents);
  auto back = TraceReader::readAll(path_);
  ASSERT_EQ(back.size(), all.size());
  std::string oracle = reportClassic(path_);
  AnalysisEngine::Stats st;
  EXPECT_EQ(reportExtent(path_, 4, {}, &st), oracle);
  EXPECT_EQ(st.records, all.size());
  EXPECT_EQ(st.extentsTotal, singleExtents);
}

TEST_F(QueryTest, MissingFooterFallsBackToSequentialScan) {
  // Chop the index-offset + trailer off the end: the footer no longer
  // verifies, so the chained index must refuse (nullopt) and runFile
  // must fall back to the classic scan — which still reads every extent
  // (they sit before the footer) and still applies record filtering.
  auto recs = randomRecords(1000, 88);
  writeV2(path_, recs, /*extentRecords=*/128);
  std::string fullOracle = reportClassic(path_);
  ScanPredicate pred;
  pred.from = recs[200].ts;
  pred.to = recs[700].ts;
  std::string filteredOracle = reportClassic(path_, pred);

  std::uintmax_t size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, size - 16);
  EXPECT_FALSE(tracev2::loadChainedIndex(path_).has_value());
  auto back = TraceReader::readAll(path_);
  EXPECT_EQ(back.size(), recs.size());
  AnalysisEngine::Stats st;
  EXPECT_EQ(reportExtent(path_, 4, {}, &st), fullOracle);
  EXPECT_EQ(st.records, recs.size());
  EXPECT_EQ(st.extentsTotal, 0u);  // fallback path: no index consulted
  EXPECT_EQ(reportExtent(path_, 4, pred), filteredOracle);
}

}  // namespace
}  // namespace nfstrace
