// Simulation harness: wires file system -> server -> per-host transports
// -> (optional mirror port) -> sniffer, and exposes either a collected
// trace or a streaming record callback for week-long runs that would not
// fit in memory as full records.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "client/client.hpp"
#include "fs/fs.hpp"
#include "netcap/netcap.hpp"
#include "server/mountd.hpp"
#include "server/server.hpp"
#include "sniffer/sniffer.hpp"

namespace nfstrace {

class SimEnvironment {
 public:
  struct Config {
    InMemoryFs::Config fsConfig;
    /// Number of distinct client hosts (POP/SMTP/login servers on CAMPUS;
    /// workstations on EECS).
    int clientHosts = 4;
    std::uint8_t nfsVers = 3;
    /// Optional per-host NFS version override (EECS: "most clients use
    /// NFSv3, but many use NFSv2").  Hosts beyond the vector use nfsVers.
    std::vector<std::uint8_t> hostVersions;
    bool useTcp = true;
    std::size_t mtu = kJumboMtu;
    NfsClient::Config clientConfig;
    /// Mirror port between the wire and the sniffer; disabled => lossless
    /// tap (the EECS setup).
    bool useMirror = false;
    MirrorPort::Config mirrorConfig;
    std::uint64_t seed = 42;
  };

  using RecordCallback = std::function<void(const TraceRecord&)>;

  /// `callback` receives every trace record as the sniffer emits it; pass
  /// nullptr to collect into records() instead.
  explicit SimEnvironment(Config config, RecordCallback callback = nullptr);

  InMemoryFs& fs() { return *fs_; }
  NfsServer& server() { return *server_; }
  MountServer& mountd() { return *mountd_; }
  Portmapper& portmap() { return *portmap_; }
  NfsClient& client(int host) { return *clients_.at(static_cast<std::size_t>(host)); }
  int clientHostCount() const { return static_cast<int>(clients_.size()); }
  Sniffer& sniffer() { return *sniffer_; }
  const MirrorPort* mirror() const { return mirror_.get(); }
  Rng& rng() { return rng_; }

  /// Attach an extra frame sink to the tap (a pcap writer, a frame
  /// collector for replay through another pipeline, ...).  Sees the raw
  /// pre-mirror frames.  Must outlive the simulation.
  void addTapSink(FrameSink* sink) { tap_.addSink(sink); }

  /// Collected records (only when no callback was given).  Sorted by call
  /// timestamp on access.
  std::vector<TraceRecord>& records();

  /// Flush sniffer state (pending reply-less calls) at end of run.
  void finishCapture() { sniffer_->flush(); }

 private:
  Config config_;
  Rng rng_;
  std::unique_ptr<InMemoryFs> fs_;
  std::unique_ptr<NfsServer> server_;
  std::unique_ptr<MountServer> mountd_;
  std::unique_ptr<Portmapper> portmap_;
  std::unique_ptr<Sniffer> sniffer_;
  std::unique_ptr<MirrorPort> mirror_;
  FrameTee tap_;
  std::vector<std::unique_ptr<NfsTransport>> transports_;
  std::vector<std::unique_ptr<NfsClient>> clients_;
  std::vector<TraceRecord> records_;
  bool recordsSorted_ = false;
};

}  // namespace nfstrace
