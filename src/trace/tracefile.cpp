#include "trace/tracefile.hpp"

#include <cinttypes>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace nfstrace {
namespace {

std::string encodeField(const std::string& s) {
  // Percent-encode the characters that would break the line format.
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (c <= ' ' || c == '%' || c == '=' || c == 0x7f) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x", c);
      out += buf;
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
  return out;
}

std::string decodeField(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

std::string timeField(MicroTime t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%06" PRId64,
                t / kMicrosPerSecond, t % kMicrosPerSecond);
  return buf;
}

MicroTime parseTimeField(std::string_view v) {
  auto dot = v.find('.');
  std::int64_t sec = 0, usec = 0;
  sec = std::strtoll(std::string(v.substr(0, dot)).c_str(), nullptr, 10);
  if (dot != std::string_view::npos) {
    std::string frac(v.substr(dot + 1));
    frac.resize(6, '0');
    usec = std::strtoll(frac.c_str(), nullptr, 10);
  }
  return sec * kMicrosPerSecond + usec;
}

}  // namespace

std::string formatRecord(const TraceRecord& rec) {
  std::ostringstream o;
  o << "t=" << timeField(rec.ts);
  if (rec.hasReply) o << " r=" << timeField(rec.replyTs);
  o << " c=" << ipToString(rec.client) << " s=" << ipToString(rec.server);
  char xidBuf[12];
  std::snprintf(xidBuf, sizeof(xidBuf), "%08x", rec.xid);
  o << " xid=" << xidBuf << " v=" << static_cast<int>(rec.vers)
    << " p=" << (rec.overTcp ? "tcp" : "udp") << " op=" << nfsOpName(rec.op)
    << " uid=" << rec.uid << " gid=" << rec.gid;
  if (rec.fh.len) o << " fh=" << rec.fh.toHex();
  if (!rec.name.empty()) o << " nm=" << encodeField(rec.name);
  if (!rec.name2.empty()) o << " nm2=" << encodeField(rec.name2);
  if (rec.fh2.len) o << " fh2=" << rec.fh2.toHex();
  if (rec.op == NfsOp::Read || rec.op == NfsOp::Write ||
      rec.op == NfsOp::Commit) {
    o << " off=" << rec.offset << " cnt=" << rec.count;
  }
  if (rec.hasReply) {
    o << " st=" << nfsStatName(rec.status);
    if (rec.op == NfsOp::Read || rec.op == NfsOp::Write) {
      o << " ret=" << rec.retCount;
    }
    if (rec.op == NfsOp::Read) o << " eof=" << (rec.eof ? 1 : 0);
    if (rec.hasResFh) o << " rfh=" << rec.resFh.toHex();
    if (rec.hasAttrs) {
      o << " ft=" << static_cast<std::uint32_t>(rec.ftype)
        << " sz=" << rec.fileSize << " mt=" << timeField(rec.fileMtime)
        << " fid=" << rec.fileId;
    }
    if (rec.hasPre) {
      o << " psz=" << rec.preSize << " pmt=" << timeField(rec.preMtime);
    }
  }
  return o.str();
}

std::optional<TraceRecord> parseRecord(const std::string& line) {
  if (line.empty() || line[0] == '#') return std::nullopt;
  TraceRecord rec;
  bool sawTime = false;
  for (const auto& tok : split(line, ' ')) {
    if (tok.empty()) continue;
    auto eq = tok.find('=');
    if (eq == std::string::npos) continue;
    std::string_view key(tok.data(), eq);
    std::string_view val(tok.data() + eq + 1, tok.size() - eq - 1);
    if (key == "t") {
      rec.ts = parseTimeField(val);
      sawTime = true;
    } else if (key == "r") {
      rec.replyTs = parseTimeField(val);
      rec.hasReply = true;
    } else if (key == "c") {
      auto ip = ipFromString(val);
      if (!ip) throw std::runtime_error("trace: bad client ip");
      rec.client = *ip;
    } else if (key == "s") {
      auto ip = ipFromString(val);
      if (!ip) throw std::runtime_error("trace: bad server ip");
      rec.server = *ip;
    } else if (key == "xid") {
      rec.xid = static_cast<std::uint32_t>(
          std::strtoul(std::string(val).c_str(), nullptr, 16));
    } else if (key == "v") {
      rec.vers = static_cast<std::uint8_t>(std::strtoul(std::string(val).c_str(), nullptr, 10));
    } else if (key == "p") {
      rec.overTcp = val == "tcp";
    } else if (key == "op") {
      rec.op = nfsOpFromName(val);
    } else if (key == "uid") {
      rec.uid = static_cast<std::uint32_t>(std::strtoul(std::string(val).c_str(), nullptr, 10));
    } else if (key == "gid") {
      rec.gid = static_cast<std::uint32_t>(std::strtoul(std::string(val).c_str(), nullptr, 10));
    } else if (key == "fh") {
      rec.fh = FileHandle::fromHex(val);
    } else if (key == "nm") {
      rec.name = decodeField(val);
    } else if (key == "nm2") {
      rec.name2 = decodeField(val);
    } else if (key == "fh2") {
      rec.fh2 = FileHandle::fromHex(val);
    } else if (key == "off") {
      rec.offset = std::strtoull(std::string(val).c_str(), nullptr, 10);
    } else if (key == "cnt") {
      rec.count = static_cast<std::uint32_t>(std::strtoul(std::string(val).c_str(), nullptr, 10));
    } else if (key == "st") {
      // Match by name; unknown statuses parse as ServerFault.
      rec.status = NfsStat::ErrServerFault;
      for (auto cand : {NfsStat::Ok, NfsStat::ErrPerm, NfsStat::ErrNoEnt,
                        NfsStat::ErrIo, NfsStat::ErrAcces, NfsStat::ErrExist,
                        NfsStat::ErrNotDir, NfsStat::ErrIsDir,
                        NfsStat::ErrInval, NfsStat::ErrFBig, NfsStat::ErrNoSpc,
                        NfsStat::ErrRoFs, NfsStat::ErrNameTooLong,
                        NfsStat::ErrNotEmpty, NfsStat::ErrDQuot,
                        NfsStat::ErrStale, NfsStat::ErrNotSupp}) {
        if (val == nfsStatName(cand)) {
          rec.status = cand;
          break;
        }
      }
    } else if (key == "ret") {
      rec.retCount = static_cast<std::uint32_t>(std::strtoul(std::string(val).c_str(), nullptr, 10));
    } else if (key == "eof") {
      rec.eof = val == "1";
    } else if (key == "rfh") {
      rec.resFh = FileHandle::fromHex(val);
      rec.hasResFh = true;
    } else if (key == "ft") {
      rec.ftype = static_cast<FileType>(std::strtoul(std::string(val).c_str(), nullptr, 10));
      rec.hasAttrs = true;
    } else if (key == "sz") {
      rec.fileSize = std::strtoull(std::string(val).c_str(), nullptr, 10);
      rec.hasAttrs = true;
    } else if (key == "mt") {
      rec.fileMtime = parseTimeField(val);
      rec.hasAttrs = true;
    } else if (key == "fid") {
      rec.fileId = std::strtoull(std::string(val).c_str(), nullptr, 10);
    } else if (key == "psz") {
      rec.preSize = std::strtoull(std::string(val).c_str(), nullptr, 10);
      rec.hasPre = true;
    } else if (key == "pmt") {
      rec.preMtime = parseTimeField(val);
      rec.hasPre = true;
    }
    // Unknown keys are intentionally ignored.
  }
  if (!sawTime) throw std::runtime_error("trace: record missing timestamp");
  return rec;
}

// ------------------------------------------------------------ binary format

namespace {

constexpr char kBinMagic[6] = {'N', 'F', 'S', 'T', '1', '\n'};

void putU(std::string& b, std::uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) b.push_back(static_cast<char>(v >> (8 * i)));
}

std::uint64_t getU(const std::uint8_t* p, int bytes) {
  std::uint64_t v = 0;
  for (int i = bytes - 1; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::string packBinary(const TraceRecord& r) {
  std::string b;
  putU(b, static_cast<std::uint64_t>(r.ts), 8);
  putU(b, static_cast<std::uint64_t>(r.replyTs), 8);
  putU(b, r.client, 4);
  putU(b, r.server, 4);
  putU(b, r.xid, 4);
  std::uint8_t flags = (r.hasReply ? 1 : 0) | (r.overTcp ? 2 : 0) |
                       (r.eof ? 4 : 0) | (r.hasResFh ? 8 : 0) |
                       (r.hasAttrs ? 16 : 0) | (r.hasPre ? 32 : 0);
  putU(b, flags, 1);
  putU(b, r.vers, 1);
  putU(b, static_cast<std::uint8_t>(r.op), 1);
  putU(b, r.uid, 4);
  putU(b, r.gid, 4);
  putU(b, r.fh.len, 1);
  b.append(reinterpret_cast<const char*>(r.fh.data.data()), r.fh.len);
  putU(b, r.fh2.len, 1);
  b.append(reinterpret_cast<const char*>(r.fh2.data.data()), r.fh2.len);
  putU(b, r.resFh.len, 1);
  b.append(reinterpret_cast<const char*>(r.resFh.data.data()), r.resFh.len);
  putU(b, r.name.size(), 2);
  b += r.name;
  putU(b, r.name2.size(), 2);
  b += r.name2;
  putU(b, r.offset, 8);
  putU(b, r.count, 4);
  putU(b, static_cast<std::uint32_t>(r.status), 4);
  putU(b, r.retCount, 4);
  putU(b, static_cast<std::uint32_t>(r.ftype), 1);
  putU(b, r.fileSize, 8);
  putU(b, static_cast<std::uint64_t>(r.fileMtime), 8);
  putU(b, r.fileId, 8);
  putU(b, r.preSize, 8);
  putU(b, static_cast<std::uint64_t>(r.preMtime), 8);
  std::string out;
  putU(out, b.size(), 4);
  out += b;
  return out;
}

std::optional<TraceRecord> unpackBinary(std::FILE* f) {
  std::uint8_t lenBuf[4];
  std::size_t got = std::fread(lenBuf, 1, 4, f);
  if (got == 0) return std::nullopt;
  if (got != 4) throw std::runtime_error("trace: truncated binary record");
  std::size_t len = static_cast<std::size_t>(getU(lenBuf, 4));
  if (len > 1 << 20) throw std::runtime_error("trace: absurd binary record");
  std::vector<std::uint8_t> buf(len);
  if (std::fread(buf.data(), 1, len, f) != len) {
    throw std::runtime_error("trace: truncated binary record body");
  }
  const std::uint8_t* p = buf.data();
  const std::uint8_t* end = buf.data() + buf.size();
  auto need = [&](std::size_t n) {
    if (static_cast<std::size_t>(end - p) < n) {
      throw std::runtime_error("trace: binary record underrun");
    }
  };
  TraceRecord r;
  need(8 + 8 + 4 + 4 + 4 + 1 + 1 + 1 + 4 + 4);
  r.ts = static_cast<MicroTime>(getU(p, 8)); p += 8;
  r.replyTs = static_cast<MicroTime>(getU(p, 8)); p += 8;
  r.client = static_cast<IpAddr>(getU(p, 4)); p += 4;
  r.server = static_cast<IpAddr>(getU(p, 4)); p += 4;
  r.xid = static_cast<std::uint32_t>(getU(p, 4)); p += 4;
  std::uint8_t flags = *p++;
  r.hasReply = flags & 1;
  r.overTcp = flags & 2;
  r.eof = flags & 4;
  r.hasResFh = flags & 8;
  r.hasAttrs = flags & 16;
  r.hasPre = flags & 32;
  r.vers = *p++;
  r.op = static_cast<NfsOp>(*p++);
  r.uid = static_cast<std::uint32_t>(getU(p, 4)); p += 4;
  r.gid = static_cast<std::uint32_t>(getU(p, 4)); p += 4;
  auto readFh = [&](FileHandle& fh) {
    need(1);
    std::uint8_t n = *p++;
    need(n);
    fh = FileHandle::fromBytes({p, n});
    p += n;
  };
  readFh(r.fh);
  readFh(r.fh2);
  readFh(r.resFh);
  auto readStr = [&](std::string& s) {
    need(2);
    std::size_t n = static_cast<std::size_t>(getU(p, 2));
    p += 2;
    need(n);
    s.assign(reinterpret_cast<const char*>(p), n);
    p += n;
  };
  readStr(r.name);
  readStr(r.name2);
  need(8 + 4 + 4 + 4 + 1 + 8 + 8 + 8 + 8 + 8);
  r.offset = getU(p, 8); p += 8;
  r.count = static_cast<std::uint32_t>(getU(p, 4)); p += 4;
  r.status = static_cast<NfsStat>(getU(p, 4)); p += 4;
  r.retCount = static_cast<std::uint32_t>(getU(p, 4)); p += 4;
  r.ftype = static_cast<FileType>(*p++);
  r.fileSize = getU(p, 8); p += 8;
  r.fileMtime = static_cast<MicroTime>(getU(p, 8)); p += 8;
  r.fileId = getU(p, 8); p += 8;
  r.preSize = getU(p, 8); p += 8;
  r.preMtime = static_cast<MicroTime>(getU(p, 8)); p += 8;
  return r;
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path, Format format)
    : format_(format) {
  f_ = std::fopen(path.c_str(), "wb");
  if (!f_) throw std::runtime_error("trace: cannot open for write: " + path);
  if (format_ == Format::Binary) {
    std::fwrite(kBinMagic, 1, sizeof(kBinMagic), f_);
  }
}

TraceWriter::~TraceWriter() {
  if (f_) std::fclose(f_);
}

void TraceWriter::write(const TraceRecord& rec) {
  if (format_ == Format::Text) {
    std::string line = formatRecord(rec);
    line.push_back('\n');
    if (std::fwrite(line.data(), 1, line.size(), f_) != line.size()) {
      throw std::runtime_error("trace: write failed");
    }
  } else {
    std::string packed = packBinary(rec);
    if (std::fwrite(packed.data(), 1, packed.size(), f_) != packed.size()) {
      throw std::runtime_error("trace: write failed");
    }
  }
  ++count_;
}

TraceReader::TraceReader(const std::string& path) {
  f_ = std::fopen(path.c_str(), "rb");
  if (!f_) throw std::runtime_error("trace: cannot open for read: " + path);
  char magic[sizeof(kBinMagic)];
  std::size_t got = std::fread(magic, 1, sizeof(magic), f_);
  if (got == sizeof(magic) && std::memcmp(magic, kBinMagic, sizeof(magic)) == 0) {
    binary_ = true;
  } else {
    std::rewind(f_);
  }
}

TraceReader::~TraceReader() {
  if (f_) std::fclose(f_);
}

std::optional<TraceRecord> TraceReader::next() {
  if (binary_) return unpackBinary(f_);
  std::string line;
  int c;
  while ((c = std::fgetc(f_)) != EOF) {
    if (c == '\n') {
      auto rec = parseRecord(line);
      if (rec) return rec;
      line.clear();
      continue;
    }
    line.push_back(static_cast<char>(c));
  }
  if (!line.empty()) return parseRecord(line);
  return std::nullopt;
}

std::vector<TraceRecord> TraceReader::readAll(const std::string& path) {
  TraceReader reader(path);
  std::vector<TraceRecord> out;
  while (auto rec = reader.next()) out.push_back(std::move(*rec));
  return out;
}

}  // namespace nfstrace
