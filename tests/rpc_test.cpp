#include <gtest/gtest.h>

#include "rpc/rpc.hpp"

namespace nfstrace {
namespace {

TEST(Rpc, CallHeaderRoundTrip) {
  AuthUnix cred;
  cred.stamp = 99;
  cred.machineName = "wks17";
  cred.uid = 1042;
  cred.gid = 30;
  cred.gids = {30, 31};

  XdrEncoder enc;
  encodeRpcCall(enc, 0xabcd1234, kNfsProgram, 3, 6, cred);
  enc.putUint32(77);  // pretend argument

  auto msg = decodeRpcMessage(enc.bytes());
  ASSERT_EQ(msg.type, RpcMsgType::Call);
  EXPECT_EQ(msg.call.xid, 0xabcd1234u);
  EXPECT_EQ(msg.call.prog, kNfsProgram);
  EXPECT_EQ(msg.call.vers, 3u);
  EXPECT_EQ(msg.call.proc, 6u);
  ASSERT_TRUE(msg.call.cred.has_value());
  EXPECT_EQ(msg.call.cred->uid, 1042u);
  EXPECT_EQ(msg.call.cred->gid, 30u);
  EXPECT_EQ(msg.call.cred->machineName, "wks17");
  ASSERT_EQ(msg.call.cred->gids.size(), 2u);

  XdrDecoder args(std::span<const std::uint8_t>(enc.bytes())
                      .subspan(msg.call.argsOffset));
  EXPECT_EQ(args.getUint32(), 77u);
}

TEST(Rpc, CallWithAuthNone) {
  XdrEncoder enc;
  encodeRpcCall(enc, 1, kNfsProgram, 2, 0, std::nullopt);
  auto msg = decodeRpcMessage(enc.bytes());
  EXPECT_FALSE(msg.call.cred.has_value());
  EXPECT_EQ(msg.call.vers, 2u);
}

TEST(Rpc, ReplyHeaderRoundTrip) {
  XdrEncoder enc;
  encodeRpcReplySuccess(enc, 0x55aa55aa);
  enc.putUint32(123);
  auto msg = decodeRpcMessage(enc.bytes());
  ASSERT_EQ(msg.type, RpcMsgType::Reply);
  EXPECT_EQ(msg.reply.xid, 0x55aa55aau);
  EXPECT_EQ(msg.reply.acceptStat, RpcAcceptStat::Success);
  XdrDecoder res(std::span<const std::uint8_t>(enc.bytes())
                     .subspan(msg.reply.resultsOffset));
  EXPECT_EQ(res.getUint32(), 123u);
}

TEST(Rpc, ErrorReply) {
  XdrEncoder enc;
  encodeRpcReplyError(enc, 9, RpcAcceptStat::GarbageArgs);
  auto msg = decodeRpcMessage(enc.bytes());
  EXPECT_EQ(msg.reply.acceptStat, RpcAcceptStat::GarbageArgs);
}

TEST(Rpc, BadVersionThrows) {
  XdrEncoder enc;
  enc.putUint32(1);  // xid
  enc.putUint32(0);  // CALL
  enc.putUint32(3);  // rpc version 3 does not exist
  EXPECT_THROW(decodeRpcMessage(enc.bytes()), XdrError);
}

TEST(Rpc, GarbageThrows) {
  std::vector<std::uint8_t> junk{1, 2, 3};
  EXPECT_THROW(decodeRpcMessage(junk), XdrError);
}

TEST(RecordMark, SingleRecord) {
  std::vector<std::uint8_t> body{1, 2, 3, 4, 5};
  auto marked = recordMark(body);
  ASSERT_EQ(marked.size(), 9u);
  EXPECT_EQ(marked[0], 0x80);  // last-fragment bit
  EXPECT_EQ(marked[3], 5);

  RecordMarkReader reader;
  reader.feed(marked);
  auto out = reader.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, body);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(RecordMark, ByteAtATimeFeeding) {
  std::vector<std::uint8_t> body{9, 9, 9, 9};
  auto marked = recordMark(body);
  RecordMarkReader reader;
  for (auto b : marked) {
    reader.feed(std::span<const std::uint8_t>(&b, 1));
  }
  auto out = reader.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, body);
}

TEST(RecordMark, CoalescedRecords) {
  // Two records in one TCP segment — the coalescing case the paper's
  // tracer had to handle.
  std::vector<std::uint8_t> a{1, 2, 3};
  std::vector<std::uint8_t> b{4, 5, 6, 7};
  auto stream = recordMark(a);
  auto mb = recordMark(b);
  stream.insert(stream.end(), mb.begin(), mb.end());

  RecordMarkReader reader;
  reader.feed(stream);
  EXPECT_EQ(*reader.next(), a);
  EXPECT_EQ(*reader.next(), b);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(RecordMark, MultiFragmentRecord) {
  // A record split across two fragments (non-final then final).
  std::vector<std::uint8_t> stream;
  auto pushFrag = [&](std::vector<std::uint8_t> frag, bool last) {
    std::uint32_t hdr = static_cast<std::uint32_t>(frag.size()) |
                        (last ? 0x80000000u : 0u);
    stream.push_back(static_cast<std::uint8_t>(hdr >> 24));
    stream.push_back(static_cast<std::uint8_t>(hdr >> 16));
    stream.push_back(static_cast<std::uint8_t>(hdr >> 8));
    stream.push_back(static_cast<std::uint8_t>(hdr));
    stream.insert(stream.end(), frag.begin(), frag.end());
  };
  pushFrag({1, 2}, false);
  pushFrag({3, 4, 5}, true);

  RecordMarkReader reader;
  reader.feed(stream);
  auto out = reader.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
}

TEST(RecordMark, ResetDiscardsPartialState) {
  RecordMarkReader reader;
  std::vector<std::uint8_t> partial{0x80, 0, 0, 10, 1, 2};  // incomplete
  reader.feed(partial);
  reader.reset();
  std::vector<std::uint8_t> body{7};
  reader.feed(recordMark(body));
  EXPECT_EQ(*reader.next(), body);
}

TEST(Rpc, AuthUnixGidListCap) {
  XdrEncoder enc;
  enc.putUint32(0);
  enc.putString("m");
  enc.putUint32(1);
  enc.putUint32(2);
  enc.putUint32(200);  // absurd gid count
  XdrDecoder dec(enc.bytes());
  EXPECT_THROW(AuthUnix::decode(dec), XdrError);
}

}  // namespace
}  // namespace nfstrace
