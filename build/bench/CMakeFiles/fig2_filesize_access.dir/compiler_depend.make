# Empty compiler generated dependencies file for fig2_filesize_access.
# This may be replaced when dependencies are built.
