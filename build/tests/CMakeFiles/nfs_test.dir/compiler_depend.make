# Empty compiler generated dependencies file for nfs_test.
# This may be replaced when dependencies are built.
