file(REMOVE_RECURSE
  "libnfstrace_anon.a"
)
