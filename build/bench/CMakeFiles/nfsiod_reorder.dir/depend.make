# Empty dependencies file for nfsiod_reorder.
# This may be replaced when dependencies are built.
