// Filename-based classification and the name -> attribute prediction
// analysis (§6.3).
//
// The paper's observation: on CAMPUS nearly every file falls into one of
// four name-recognizable categories (mailboxes, lock files, mail-composer
// temporaries, dot files), and the category predicts size, lifespan, and
// access pattern almost perfectly; on EECS names are also strong
// predictors (browser caches, Applet_*_Extern window-manager files,
// object files, logs).  Renames are rare, so the prediction available at
// create time stays valid.
#pragma once

#include <cstdint>
#include <map>
#include <string_view>
#include <unordered_map>

#include "analysis/pathrec.hpp"
#include "trace/record.hpp"
#include "util/histogram.hpp"

namespace nfstrace {

enum class NameCategory : std::uint8_t {
  Mailbox,       // .inbox, mbox, folders/*
  LockFile,      // *.lock, lock components
  MailComposer,  // pico.NNNN and similar composition temporaries
  DotFile,       // .pinerc, .cshrc, ... (config files)
  AppletFile,    // Applet_*_Extern window-manager droppings
  BrowserCache,  // cache* under browser cache dirs
  LogFile,       // *.log
  IndexFile,     // *.idx, *.db
  ObjectFile,    // *.o, *.a
  SourceFile,    // *.c, *.h, *.cc, *.java, *.tex ...
  TempFile,      // *.tmp, #...#, *~
  CoreOrCvs,     // CVS plumbing
  Other,
};
inline constexpr std::size_t kNameCategoryCount =
    static_cast<std::size_t>(NameCategory::Other) + 1;

std::string_view nameCategoryLabel(NameCategory c);
NameCategory classifyName(std::string_view name);

/// What the file system could predict at create time, per category.
struct NamePrediction {
  bool zeroLength = false;       // predicted to stay empty
  double maxLifetimeSec = 0.0;   // 0 = no lifetime prediction
  std::uint64_t maxSizeBytes = 0;  // 0 = no size prediction
  bool neverDeleted = false;
};
NamePrediction predictionFor(NameCategory c);

/// Per-category outcome statistics for files created during the trace.
struct CategoryStats {
  std::uint64_t created = 0;
  std::uint64_t deleted = 0;       // created AND deleted in the trace
  std::uint64_t zeroLength = 0;    // deleted while still empty
  EmpiricalCdf lifetimesSec;       // create -> remove
  EmpiricalCdf sizesAtDeath;
  EmpiricalCdf maxSizes;           // max size ever observed
  // Prediction scoring:
  std::uint64_t predictionsChecked = 0;
  std::uint64_t predictionsCorrect = 0;
};

/// Tracks file creations and deletions (resolving REMOVE targets through
/// the reconstructed hierarchy), sizes, and per-category statistics.
class FileLifeCensus {
 public:
  void observe(const TraceRecord& rec);
  void finish();

  const std::map<NameCategory, CategoryStats>& byCategory() const {
    return stats_;
  }
  std::uint64_t totalCreated() const { return totalCreated_; }
  std::uint64_t totalDeleted() const { return totalDeleted_; }
  /// Fraction of created-and-deleted files that are lock files — the
  /// paper's 96% (CAMPUS) vs 8% (EECS) headline.
  double lockFractionOfDeleted() const;

 private:
  struct LiveFile {
    NameCategory category = NameCategory::Other;
    MicroTime created = 0;
    std::uint64_t lastSize = 0;
    std::uint64_t maxSize = 0;
  };

  std::map<NameCategory, CategoryStats> stats_;
  std::unordered_map<FileHandle, LiveFile, FileHandleHash> live_;
  PathReconstructor pathrec_;
  std::uint64_t totalCreated_ = 0;
  std::uint64_t totalDeleted_ = 0;
  bool finished_ = false;
};

}  // namespace nfstrace
