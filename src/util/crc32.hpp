// CRC-32 (IEEE 802.3 polynomial, the zlib/gzip convention) for trace
// extent integrity checks.  Header-only: the tables are built at compile
// time.  The inner loop uses slicing-by-8 — eight parallel table lookups
// consume eight bytes per iteration — because the v2 reader checksums
// every extent payload on load, putting this on the scan hot path.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace nfstrace {

namespace detail {

constexpr std::array<std::array<std::uint32_t, 256>, 8> makeCrc32Tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    t[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = t[0][i];
    for (std::size_t s = 1; s < 8; ++s) {
      c = t[0][c & 0xFF] ^ (c >> 8);
      t[s][i] = c;
    }
  }
  return t;
}

inline constexpr std::array<std::array<std::uint32_t, 256>, 8> kCrc32Tables =
    makeCrc32Tables();

}  // namespace detail

/// CRC-32 of `n` bytes.  Pass a previous result as `seed` to continue an
/// incremental computation across buffers.
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) {
  const auto& t = detail::kCrc32Tables;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  // The sliced loop folds whole little-endian words into the running
  // CRC; on a big-endian host fall through to the bytewise loop.
  while (std::endian::native == std::endian::little && n >= 8) {
    std::uint32_t lo, hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
        t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n--) {
    c = t[0][(c ^ *p++) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace nfstrace
