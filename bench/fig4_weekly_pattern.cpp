// Figure 4: hourly operation counts and hourly read/write ratios across
// the full trace week, showing CAMPUS's strong diurnal/weekly cycle and
// the off-peak ratio spikes.
#include "analysis/hourly.hpp"
#include "bench_common.hpp"

using namespace nfstrace;
using namespace nfstrace::bench;

namespace {

HourlyStats runWeek(bool campusSystem) {
  HourlyStats hs;
  auto cb = [&](const TraceRecord& r) { hs.observe(r); };
  if (campusSystem) {
    auto s = makeCampus(30, cb);
    s.workload->setup(kWeekStart);
    s.workload->run(kWeekStart, kWeekStart + days(7));
    s.env->finishCapture();
  } else {
    auto s = makeEecs(20, cb);
    s.workload->setup(kWeekStart);
    s.workload->run(kWeekStart, kWeekStart + days(7));
    s.env->finishCapture();
  }
  return hs;
}

void sparkline(const char* label, const HourlyStats& hs,
               std::function<double(const HourBucket&)> metric) {
  // Render each day as 24 glyphs scaled to the week's maximum.
  double maxV = 0;
  for (const auto& b : hs.hours()) maxV = std::max(maxV, metric(b));
  static const char* kGlyphs = " .:-=+*#%@";
  std::printf("%s (max %.0f):\n", label, maxV);
  std::printf("        hour 0         6         12        18       23\n");
  for (int day = 0; day < 7; ++day) {
    std::string line;
    for (int h = 0; h < 24; ++h) {
      std::size_t idx = static_cast<std::size_t>(day) * 24 +
                        static_cast<std::size_t>(h);
      double v = idx < hs.hours().size() ? metric(hs.hours()[idx]) : 0.0;
      int g = maxV > 0 ? static_cast<int>(9.0 * v / maxV) : 0;
      line.push_back(kGlyphs[g]);
    }
    std::printf("  %s   [%s]\n", weekdayName(day), line.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  banner("Figure 4 -- hourly op counts and R/W ratios across the week");

  auto campus = runWeek(true);
  auto eecs = runWeek(false);

  sparkline("CAMPUS hourly total operations", campus,
            [](const HourBucket& b) { return static_cast<double>(b.totalOps); });
  sparkline("EECS hourly total operations", eecs,
            [](const HourBucket& b) { return static_cast<double>(b.totalOps); });
  sparkline("CAMPUS hourly read:write op ratio", campus,
            [](const HourBucket& b) { return b.readWriteOpRatio(); });
  sparkline("EECS hourly read:write op ratio", eecs,
            [](const HourBucket& b) { return b.readWriteOpRatio(); });

  // Quantified cycle: peak-hour vs off-peak means.
  auto meanOps = [](const HourlyStats& hs, bool peak) {
    RunningStats s;
    for (std::size_t h = 0; h < hs.hours().size(); ++h) {
      bool isPeak = isPeakHour(static_cast<MicroTime>(h) * kMicrosPerHour);
      if (isPeak == peak) {
        s.add(static_cast<double>(hs.hours()[h].totalOps));
      }
    }
    return s.mean();
  };
  std::printf("CAMPUS peak-hour mean ops %.0f vs off-peak %.0f (x%.1f)\n",
              meanOps(campus, true), meanOps(campus, false),
              meanOps(campus, true) / std::max(meanOps(campus, false), 1.0));
  std::printf("EECS   peak-hour mean ops %.0f vs off-peak %.0f (x%.1f)\n",
              meanOps(eecs, true), meanOps(eecs, false),
              meanOps(eecs, true) / std::max(meanOps(eecs, false), 1.0));

  std::printf(
      "\nShape checks (paper Figure 4): CAMPUS shows a clean weekday\n"
      "9am-6pm plateau repeating five times with quiet weekend days; the\n"
      "CAMPUS R/W ratio is steady during peak hours and spikes off-peak\n"
      "when a few accesses skew it; EECS is burstier with night activity\n"
      "(cron builds/experiments).\n");
  return 0;
}
