#include "net/packet.hpp"

#include <algorithm>
#include <cstdio>

namespace nfstrace {
namespace {

void put16be(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v));
}

void put32be(std::vector<std::uint8_t>& b, std::uint32_t v) {
  b.push_back(static_cast<std::uint8_t>(v >> 24));
  b.push_back(static_cast<std::uint8_t>(v >> 16));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
  b.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t get16be(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t get32be(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
}

void appendEthHeader(std::vector<std::uint8_t>& f, IpAddr src, IpAddr dst) {
  // Locally-administered MACs derived from the IPs; enough for a tap to
  // distinguish hosts.
  f.push_back(0x02);
  f.push_back(0x00);
  put32be(f, dst);
  f.push_back(0x02);
  f.push_back(0x00);
  put32be(f, src);
  put16be(f, kEtherTypeIpv4);
}

void appendIpv4Header(std::vector<std::uint8_t>& f, IpAddr src, IpAddr dst,
                      IpProto proto, std::size_t payloadLen,
                      std::uint16_t ipId = 0, bool moreFrags = false,
                      std::uint16_t fragOffsetBytes = 0) {
  std::size_t start = f.size();
  f.push_back(0x45);  // version 4, IHL 5
  f.push_back(0);     // DSCP/ECN
  put16be(f, static_cast<std::uint16_t>(20 + payloadLen));
  put16be(f, ipId);
  std::uint16_t flagsFrag =
      static_cast<std::uint16_t>((moreFrags ? 0x2000 : 0) |
                                 ((fragOffsetBytes / 8) & 0x1fff));
  if (!moreFrags && fragOffsetBytes == 0) flagsFrag |= 0x4000;  // DF
  put16be(f, flagsFrag);
  f.push_back(64);    // TTL
  f.push_back(static_cast<std::uint8_t>(proto));
  put16be(f, 0);      // checksum placeholder
  put32be(f, src);
  put32be(f, dst);
  std::uint16_t csum = internetChecksum({f.data() + start, 20});
  f[start + 10] = static_cast<std::uint8_t>(csum >> 8);
  f[start + 11] = static_cast<std::uint8_t>(csum);
}

}  // namespace

std::string ipToString(IpAddr ip) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xff,
                (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

std::optional<IpAddr> ipFromString(std::string_view s) {
  // Hand-rolled dotted-quad parse: this sits on the per-record trace
  // decode path, where sscanf (and its string copy) dominated the profile.
  IpAddr ip = 0;
  std::size_t i = 0;
  for (int octet = 0; octet < 4; ++octet) {
    if (i >= s.size() || s[i] < '0' || s[i] > '9') return std::nullopt;
    std::uint32_t v = 0;
    std::size_t start = i;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
      v = v * 10 + static_cast<std::uint32_t>(s[i] - '0');
      if (v > 255 || i - start >= 3) return std::nullopt;
      ++i;
    }
    ip = (ip << 8) | v;
    if (octet < 3) {
      if (i >= s.size() || s[i] != '.') return std::nullopt;
      ++i;
    }
  }
  if (i != s.size()) return std::nullopt;
  return ip;
}

std::uint16_t internetChecksum(std::span<const std::uint8_t> data) {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(get16be(data.data() + i));
  }
  if (i < data.size()) sum += static_cast<std::uint32_t>(data[i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::vector<std::uint8_t> buildUdpFrame(IpAddr src, std::uint16_t srcPort,
                                        IpAddr dst, std::uint16_t dstPort,
                                        std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> f;
  f.reserve(kEthHeaderLen + 20 + 8 + payload.size());
  appendEthHeader(f, src, dst);
  appendIpv4Header(f, src, dst, IpProto::Udp, 8 + payload.size());
  put16be(f, srcPort);
  put16be(f, dstPort);
  put16be(f, static_cast<std::uint16_t>(8 + payload.size()));
  put16be(f, 0);  // UDP checksum optional over IPv4
  f.insert(f.end(), payload.begin(), payload.end());
  return f;
}

std::vector<std::uint8_t> buildTcpFrame(IpAddr src, std::uint16_t srcPort,
                                        IpAddr dst, std::uint16_t dstPort,
                                        std::uint32_t seq, std::uint32_t ack,
                                        bool syn, bool fin, bool ackFlag,
                                        std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> f;
  f.reserve(kEthHeaderLen + 20 + 20 + payload.size());
  appendEthHeader(f, src, dst);
  appendIpv4Header(f, src, dst, IpProto::Tcp, 20 + payload.size());
  put16be(f, srcPort);
  put16be(f, dstPort);
  put32be(f, seq);
  put32be(f, ack);
  std::uint8_t flags = 0;
  if (fin) flags |= 0x01;
  if (syn) flags |= 0x02;
  if (ackFlag) flags |= 0x10;
  f.push_back(0x50);  // data offset 5 words
  f.push_back(flags);
  put16be(f, 65535);  // window
  put16be(f, 0);      // checksum (not verified by the sniffer)
  put16be(f, 0);      // urgent pointer
  f.insert(f.end(), payload.begin(), payload.end());
  return f;
}

std::vector<std::vector<std::uint8_t>> buildUdpFrames(
    IpAddr src, std::uint16_t srcPort, IpAddr dst, std::uint16_t dstPort,
    std::uint16_t ipId, std::span<const std::uint8_t> payload,
    std::size_t mtu) {
  // Assemble the full UDP datagram (header + payload), then slice it into
  // IP fragments of at most mtu-20 bytes (multiples of 8 except the last).
  std::vector<std::uint8_t> datagram;
  put16be(datagram, srcPort);
  put16be(datagram, dstPort);
  put16be(datagram, static_cast<std::uint16_t>(8 + payload.size()));
  put16be(datagram, 0);
  datagram.insert(datagram.end(), payload.begin(), payload.end());

  std::size_t maxIpPayload = mtu - 20;
  std::vector<std::vector<std::uint8_t>> frames;
  if (datagram.size() <= maxIpPayload) {
    std::vector<std::uint8_t> f;
    appendEthHeader(f, src, dst);
    appendIpv4Header(f, src, dst, IpProto::Udp, datagram.size(), ipId);
    f.insert(f.end(), datagram.begin(), datagram.end());
    frames.push_back(std::move(f));
    return frames;
  }

  std::size_t chunk = maxIpPayload & ~std::size_t{7};  // 8-byte aligned
  std::size_t off = 0;
  while (off < datagram.size()) {
    std::size_t n = std::min(chunk, datagram.size() - off);
    bool more = off + n < datagram.size();
    std::vector<std::uint8_t> f;
    appendEthHeader(f, src, dst);
    appendIpv4Header(f, src, dst, IpProto::Udp, n, ipId, more,
                     static_cast<std::uint16_t>(off));
    f.insert(f.end(), datagram.begin() + static_cast<std::ptrdiff_t>(off),
             datagram.begin() + static_cast<std::ptrdiff_t>(off + n));
    frames.push_back(std::move(f));
    off += n;
  }
  return frames;
}

void IpReassembler::recycle(Pending&& p) {
  // Keep a handful of warmed buffers; under tap loss several datagrams
  // reassemble concurrently and each holds one.
  if (sparePool_.size() < 16 && p.data.capacity() != 0) {
    p.data.clear();
    sparePool_.push_back(std::move(p.data));
  }
  if (spareExtents_.size() < 16 && p.extents.capacity() != 0) {
    p.extents.clear();
    spareExtents_.push_back(std::move(p.extents));
  }
}

IpReassembler::Pending IpReassembler::makePending(std::int64_t now) {
  Pending p;
  p.firstSeen = now;
  if (!sparePool_.empty()) {
    p.data = std::move(sparePool_.back());
    sparePool_.pop_back();
  }
  if (!spareExtents_.empty()) {
    p.extents = std::move(spareExtents_.back());
    spareExtents_.pop_back();
  }
  return p;
}

void IpReassembler::sweep(std::int64_t now) {
  lastSweepUs_ = now;
  // erase() invalidates iterators, so collect stale keys first.
  std::vector<Key> stale;
  for (auto& [k, p] : pending_) {
    if (now - p.firstSeen > timeoutUs_) stale.push_back(k);
  }
  for (const Key& k : stale) {
    auto it = pending_.find(k);
    recycle(std::move(it->second));
    pending_.erase(it);
    ++expired_;
  }
}

std::optional<std::span<const std::uint8_t>> IpReassembler::feed(
    const ParsedFrame& frame, std::int64_t now) {
  if (!frame.isFragment()) {
    return frame.payload;
  }
  // The buffer handed out last time is consumable again; recycle it.
  if (completed_.capacity() != 0 && sparePool_.size() < 16) {
    completed_.clear();
    sparePool_.push_back(std::move(completed_));
  }

  // Reclaim state for keys that never recur.  A per-feed scan would be
  // O(pending) on every fragment — the dominant cost under loss — so stale
  // entries are instead caught here periodically and at same-key lookup.
  if (now - lastSweepUs_ >= sweepIntervalUs_) sweep(now);

  Key key{frame.src, frame.dst, frame.ipId};
  auto [it, inserted] = pending_.try_emplace(key);
  Pending* entry = &it->second;
  if (inserted) {
    *entry = makePending(now);
  } else if (now - entry->firstSeen > timeoutUs_) {
    // Same key, but the old datagram timed out: exactly what the per-feed
    // expiry scan would have removed before this fragment arrived.
    Pending fresh = makePending(now);
    recycle(std::move(*entry));
    *entry = std::move(fresh);
    ++expired_;
  }

  std::uint32_t off = frame.fragOffsetBytes;
  std::uint32_t end = off + static_cast<std::uint32_t>(frame.payload.size());
  if (off == entry->data.size()) {
    // In-order arrival (the overwhelmingly common case): append without
    // the zero-fill a resize-past-end would do.
    entry->data.insert(entry->data.end(), frame.payload.begin(),
                       frame.payload.end());
  } else {
    if (end > entry->data.size()) {
      if (end > entry->data.capacity()) {
        entry->data.reserve(std::max<std::size_t>(2 * end, 4096));
      }
      entry->data.resize(end);
    }
    std::copy(frame.payload.begin(), frame.payload.end(),
              entry->data.begin() + off);
  }
  entry->extents.emplace_back(off, end);
  if (!frame.moreFragments) {
    entry->haveLast = true;
    entry->totalLen = end;
  }
  if (!entry->haveLast) return std::nullopt;

  // Check for completeness by merging the covered extents.
  std::sort(entry->extents.begin(), entry->extents.end());
  std::uint32_t pos = 0;
  for (const auto& [b, e] : entry->extents) {
    if (b > pos) return std::nullopt;  // hole
    pos = std::max(pos, e);
  }
  if (pos < entry->totalLen) return std::nullopt;

  // Strip the UDP header so the result matches parseFrame's payload for
  // unfragmented datagrams.  The data stays in place; the returned view
  // just skips the header, so completion does no copy or memmove.
  if (entry->totalLen < 8) return std::nullopt;
  completed_ = std::move(entry->data);
  std::size_t payloadLen = entry->totalLen - 8;

  recycle(std::move(*entry));
  pending_.erase(it);
  return std::span<const std::uint8_t>{completed_.data() + 8, payloadLen};
}

std::vector<std::vector<std::uint8_t>> segmentTcpStream(
    IpAddr src, std::uint16_t srcPort, IpAddr dst, std::uint16_t dstPort,
    std::uint32_t& seq, std::span<const std::uint8_t> stream,
    std::size_t mss) {
  std::vector<std::vector<std::uint8_t>> frames;
  std::size_t off = 0;
  while (off < stream.size()) {
    std::size_t n = std::min(mss, stream.size() - off);
    frames.push_back(buildTcpFrame(src, srcPort, dst, dstPort, seq, 0, false,
                                   false, true, stream.subspan(off, n)));
    seq += static_cast<std::uint32_t>(n);
    off += n;
  }
  return frames;
}

std::optional<ParsedFrame> parseFrame(std::span<const std::uint8_t> frame) {
  if (frame.size() < kEthHeaderLen + 20) return std::nullopt;
  if (get16be(frame.data() + 12) != kEtherTypeIpv4) return std::nullopt;

  auto ip = frame.subspan(kEthHeaderLen);
  if ((ip[0] >> 4) != 4) return std::nullopt;
  std::size_t ihl = static_cast<std::size_t>(ip[0] & 0x0f) * 4;
  if (ihl < 20 || ip.size() < ihl) return std::nullopt;
  std::size_t totalLen = get16be(ip.data() + 2);
  if (totalLen < ihl || totalLen > ip.size()) return std::nullopt;

  ParsedFrame out;
  out.src = get32be(ip.data() + 12);
  out.dst = get32be(ip.data() + 16);
  out.ipId = get16be(ip.data() + 4);
  std::uint16_t flagsFrag = get16be(ip.data() + 6);
  out.moreFragments = (flagsFrag & 0x2000) != 0;
  out.fragOffsetBytes = static_cast<std::uint16_t>((flagsFrag & 0x1fff) * 8);
  std::uint8_t proto = ip[9];
  auto transport = ip.subspan(ihl, totalLen - ihl);

  if (out.fragOffsetBytes != 0) {
    // Non-first fragment: raw IP payload continuation, no transport header.
    out.proto = static_cast<IpProto>(proto);
    out.payload = transport;
    return out;
  }
  if (out.moreFragments) {
    // First fragment: report the transport header fields but hand the
    // whole IP payload (header included) to the reassembler.
    if (proto == static_cast<std::uint8_t>(IpProto::Udp) &&
        transport.size() >= 8) {
      out.proto = IpProto::Udp;
      out.srcPort = get16be(transport.data());
      out.dstPort = get16be(transport.data() + 2);
    }
    out.payload = transport;
    return out;
  }

  if (proto == static_cast<std::uint8_t>(IpProto::Udp)) {
    if (transport.size() < 8) return std::nullopt;
    out.proto = IpProto::Udp;
    out.srcPort = get16be(transport.data());
    out.dstPort = get16be(transport.data() + 2);
    std::size_t udpLen = get16be(transport.data() + 4);
    if (udpLen < 8 || udpLen > transport.size()) return std::nullopt;
    out.payload = transport.subspan(8, udpLen - 8);
    return out;
  }
  if (proto == static_cast<std::uint8_t>(IpProto::Tcp)) {
    if (transport.size() < 20) return std::nullopt;
    out.proto = IpProto::Tcp;
    out.srcPort = get16be(transport.data());
    out.dstPort = get16be(transport.data() + 2);
    out.tcpSeq = get32be(transport.data() + 4);
    out.tcpAck = get32be(transport.data() + 8);
    std::size_t dataOff = static_cast<std::size_t>(transport[12] >> 4) * 4;
    if (dataOff < 20 || dataOff > transport.size()) return std::nullopt;
    std::uint8_t flags = transport[13];
    out.tcpFin = flags & 0x01;
    out.tcpSyn = flags & 0x02;
    out.tcpAckFlag = flags & 0x10;
    out.payload = transport.subspan(dataOff);
    return out;
  }
  return std::nullopt;
}

std::vector<std::uint8_t> TcpReassembler::feed(
    std::uint32_t seq, std::span<const std::uint8_t> payload, bool syn) {
  if (syn) {
    initialized_ = true;
    expected_ = seq + 1;  // SYN consumes one sequence number
    pending_.clear();
    return {};
  }
  if (!initialized_) {
    // Mid-stream capture: adopt the first seen segment's position.
    initialized_ = true;
    expected_ = seq;
  }
  if (payload.empty()) return {};

  // Discard stale retransmissions; trim partially-old segments.
  std::int32_t delta = static_cast<std::int32_t>(seq - expected_);
  if (delta < 0) {
    std::size_t overlap = static_cast<std::size_t>(-delta);
    if (overlap >= payload.size()) return {};
    payload = payload.subspan(overlap);
    seq = expected_;
    delta = 0;
  }
  if (delta > 0) {
    pending_.emplace_back(seq, std::vector<std::uint8_t>(payload.begin(),
                                                         payload.end()));
    return {};
  }

  std::vector<std::uint8_t> out(payload.begin(), payload.end());
  expected_ += static_cast<std::uint32_t>(payload.size());

  // Drain any buffered segments that are now contiguous.
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
      std::int32_t d = static_cast<std::int32_t>(pending_[i].first - expected_);
      if (d <= 0) {
        auto& seg = pending_[i].second;
        std::size_t skip = static_cast<std::size_t>(-d);
        if (skip < seg.size()) {
          out.insert(out.end(), seg.begin() + static_cast<std::ptrdiff_t>(skip),
                     seg.end());
          expected_ += static_cast<std::uint32_t>(seg.size() - skip);
        }
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        progressed = true;
        break;
      }
    }
  }
  delivered_ += out.size();
  return out;
}

bool TcpReassembler::resyncTo(std::uint32_t seq) {
  if (!initialized_ || seq == expected_) return false;
  expected_ = seq;
  pending_.clear();
  return true;
}

}  // namespace nfstrace
