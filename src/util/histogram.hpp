// Histograms and empirical CDFs used throughout the analysis suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nfstrace {

/// Log-spaced histogram over positive values; bucket i covers
/// [base * ratio^i, base * ratio^(i+1)).  Used for block lifetimes and
/// run-size distributions (which span microseconds to days and bytes to
/// hundreds of megabytes).
class LogHistogram {
 public:
  /// base: lower edge of bucket 0; ratio: geometric bucket growth (> 1).
  LogHistogram(double base, double ratio, std::size_t buckets);

  void add(double value, double weight = 1.0);

  double totalWeight() const { return total_; }
  std::size_t bucketCount() const { return counts_.size(); }
  double bucketLow(std::size_t i) const;
  double bucketHigh(std::size_t i) const { return bucketLow(i + 1); }
  double bucketWeight(std::size_t i) const { return counts_[i]; }

  /// Cumulative fraction of weight at values <= x (interpreted at bucket
  /// upper edges; monotone in x).
  double cumulativeAt(double x) const;

  /// Value below which `fraction` of the weight lies (inverse CDF,
  /// linearly interpolated within a bucket).
  double quantile(double fraction) const;

 private:
  std::size_t bucketFor(double value) const;

  double base_;
  double logRatio_;
  std::vector<double> counts_;
  double underflow_ = 0.0;
  double total_ = 0.0;
};

/// Exact empirical distribution; stores all samples.  Fine for per-day
/// simulation volumes; gives exact quantiles for the figures.
class EmpiricalCdf {
 public:
  void add(double v) { values_.push_back(v); sorted_ = false; }
  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  /// Fraction of samples <= x.
  double fractionAtOrBelow(double x);
  /// q-quantile, q in [0, 1].
  double quantile(double q);
  double mean() const;

 private:
  void ensureSorted();
  std::vector<double> values_;
  bool sorted_ = true;
};

}  // namespace nfstrace
