// Weekly activity schedules (§6.2).
//
// CAMPUS load is "utterly dominated by the daily rhythms of user
// activity": strong 9am-6pm weekday peaks, an evening shoulder, quiet
// nights, and lighter weekends.  EECS shows the same peak hours but with
// far more variance, plus cron-driven night spikes (builds, experiments,
// data processing).
#pragma once

#include <array>

#include "util/rng.hpp"
#include "util/time.hpp"

namespace nfstrace {

class WeeklySchedule {
 public:
  /// Relative activity weight (0..1] for a point in time.
  double weight(MicroTime t) const;

  /// Draw the next event time for a Poisson process whose *peak* rate is
  /// `peakEventsPerHour`, thinned by the schedule weight.
  MicroTime nextEvent(Rng& rng, MicroTime now,
                      double peakEventsPerHour) const;

  static WeeklySchedule campus();
  static WeeklySchedule eecs();

 private:
  std::array<double, 168> hourWeight_{};  // indexed by hour-of-week
};

}  // namespace nfstrace
