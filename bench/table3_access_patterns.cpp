// Table 3: file access patterns under the entire/sequential/random
// taxonomy, in two variants:
//   raw       — runs split with the reorder-window sort only, and *no*
//               small-jump tolerance (the paper's leftmost columns);
//   processed — the complete §4.2 methodology: reorder-window sort plus
//               forward jumps of < 10 blocks tolerated (rightmost columns).
#include "analysis/reorder.hpp"
#include "analysis/runs.hpp"
#include "bench_common.hpp"

using namespace nfstrace;
using namespace nfstrace::bench;

namespace {

struct Columns {
  RunPatternSummary raw;
  RunPatternSummary processed;
};

Columns analyze(std::vector<TraceRecord>& records, MicroTime window) {
  auto sorted = sortWithReorderWindow(records, window);
  RunDetectorConfig rawCfg;
  rawCfg.jumpTolerance = 0;
  Columns c;
  c.raw = summarizeRunPatterns(detectRuns(sorted.records, rawCfg));
  RunDetectorConfig procCfg;  // default tolerance: 10 blocks
  c.processed = summarizeRunPatterns(detectRuns(sorted.records, procCfg));
  return c;
}

std::string pct(double f) { return TextTable::fixed(100.0 * f, 1); }

}  // namespace

int main() {
  banner("Table 3 -- access patterns (entire/sequential/random), raw vs processed");

  MicroTime start = days(1);
  auto campus = makeCampus(30, nullptr);
  campus.workload->setup(start);
  campus.workload->run(start, start + days(1));
  campus.env->finishCapture();
  auto cc = analyze(campus.env->records(), 10'000);  // 10 ms window

  auto eecs = makeEecs(20, nullptr);
  eecs.workload->setup(start);
  eecs.workload->run(start, start + days(1));
  eecs.env->finishCapture();
  auto ce = analyze(eecs.env->records(), 5'000);  // 5 ms window

  TextTable t({"Access pattern", "CAMPUS raw", "EECS raw", "CAMPUS proc",
               "EECS proc", "paper C-raw", "paper E-raw", "paper C-proc",
               "paper E-proc"});
  auto rows = [&](const char* label, auto sel, const char* pcr,
                  const char* per, const char* pcp, const char* pep) {
    t.addRow({label, pct(sel(cc.raw)), pct(sel(ce.raw)), pct(sel(cc.processed)),
              pct(sel(ce.processed)), pcr, per, pcp, pep});
  };
  rows("Reads (% total)", [](const RunPatternSummary& s) { return s.readFrac; },
       "53.1", "16.6", "53.1", "16.5");
  rows("  Entire (% read)", [](const RunPatternSummary& s) { return s.readEntire; },
       "47.7", "53.9", "57.6", "57.2");
  rows("  Sequential (% read)", [](const RunPatternSummary& s) { return s.readSeq; },
       "29.3", "36.8", "33.9", "39.0");
  rows("  Random (% read)", [](const RunPatternSummary& s) { return s.readRandom; },
       "23.0", "9.3", "8.6", "3.8");
  t.addRule();
  rows("Writes (% total)", [](const RunPatternSummary& s) { return s.writeFrac; },
       "43.8", "82.3", "43.9", "82.3");
  rows("  Entire (% write)", [](const RunPatternSummary& s) { return s.writeEntire; },
       "37.2", "19.6", "37.8", "19.6");
  rows("  Sequential (% write)", [](const RunPatternSummary& s) { return s.writeSeq; },
       "52.3", "76.2", "53.2", "78.3");
  rows("  Random (% write)", [](const RunPatternSummary& s) { return s.writeRandom; },
       "10.5", "4.1", "9.0", "2.1");
  t.addRule();
  rows("Read-write (% total)", [](const RunPatternSummary& s) { return s.rwFrac; },
       "3.1", "1.1", "3.0", "1.1");
  rows("  Random (% r-w)", [](const RunPatternSummary& s) { return s.rwRandom; },
       "97.8", "93.9", "94.3", "86.8");
  std::fputs(t.render().c_str(), stdout);

  std::printf(
      "\nShape checks: both systems show far more write runs than the\n"
      "historical traces (EECS dominated by write runs); processing with\n"
      "the jump tolerance moves a large slice of reads from 'random' to\n"
      "'sequential'/'entire', confirming that the conventional taxonomy\n"
      "overstates randomness for NFS traces.\n");
  return 0;
}
