// Figure 5: average sequentiality metric vs bytes accessed in the run,
// for reads and writes on both systems, with small jumps allowed (k = 10
// blocks) and not allowed (k = 0); plus the cumulative run-size
// distributions from the bottom panels.
#include "analysis/reorder.hpp"
#include "analysis/runs.hpp"
#include "bench_common.hpp"

using namespace nfstrace;
using namespace nfstrace::bench;

namespace {

void metricPanel(const char* title, const std::vector<Run>& runs,
                 bool writes) {
  auto data = sequentialityBySize(runs, writes, !writes);
  std::printf("%s\n", title);
  TextTable t({"Run size <=", "metric (jumps ok)", "metric (no jumps)",
               "runs"});
  for (std::size_t i = 0; i < data.bucketTopBytes.size(); ++i) {
    if (data.runCount[i] == 0) continue;
    double top = data.bucketTopBytes[i];
    std::string label = top >= 1 << 20
                            ? TextTable::fixed(top / (1 << 20), 0) + "M"
                            : TextTable::fixed(top / 1024, 0) + "k";
    t.addRow({label, TextTable::fixed(data.meanLoose[i], 2),
              TextTable::fixed(data.meanStrict[i], 2),
              TextTable::withCommas(data.runCount[i])});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\n");
}

void cumulativePanel(const char* title, const std::vector<Run>& runs) {
  // Bottom panels: cumulative % of runs by bytes accessed.
  std::vector<double> tops;
  for (double b = 16.0 * 1024; b <= 64.0 * 1024 * 1024; b *= 4.0) {
    tops.push_back(b);
  }
  auto frac = [&](RunType type, double top, bool all) {
    std::uint64_t n = 0, total = 0;
    for (const auto& r : runs) {
      bool match = all || r.type == type;
      if (!match) continue;
      ++total;
      (void)total;
      if (static_cast<double>(r.bytesAccessed) <= top) ++n;
    }
    return runs.empty() ? 0.0
                        : 100.0 * static_cast<double>(n) /
                              static_cast<double>(runs.size());
  };
  std::printf("%s: cumulative %% of all runs by run size\n", title);
  TextTable t({"Run size <=", "Total", "Read runs", "Write runs"});
  for (double top : tops) {
    std::string label = top >= 1 << 20
                            ? TextTable::fixed(top / (1 << 20), 0) + "M"
                            : TextTable::fixed(top / 1024, 0) + "k";
    t.addRow({label, TextTable::fixed(frac(RunType::Read, top, true), 1),
              TextTable::fixed(frac(RunType::Read, top, false), 1),
              TextTable::fixed(frac(RunType::Write, top, false), 1)});
  }
  std::fputs(t.render().c_str(), stdout);
  std::printf("\n");
}

std::vector<Run> capture(bool campusSystem, MicroTime window) {
  MicroTime start = days(1);
  std::vector<TraceRecord>* records = nullptr;
  std::unique_ptr<SimEnvironment> env;
  if (campusSystem) {
    auto s = makeCampus(30, nullptr);
    s.workload->setup(start);
    s.workload->run(start, start + days(1));
    s.env->finishCapture();
    records = &s.env->records();
    auto sorted = sortWithReorderWindow(*records, window);
    return detectRuns(sorted.records);
  }
  auto s = makeEecs(20, nullptr);
  s.workload->setup(start);
  s.workload->run(start, start + days(1));
  s.env->finishCapture();
  records = &s.env->records();
  auto sorted = sortWithReorderWindow(*records, window);
  return detectRuns(sorted.records);
}

}  // namespace

int main() {
  banner("Figure 5 -- sequentiality metric vs run size (k=10 vs k=0)");

  auto campusRuns = capture(true, 10'000);
  auto eecsRuns = capture(false, 5'000);

  metricPanel("CAMPUS reads", campusRuns, false);
  metricPanel("CAMPUS writes", campusRuns, true);
  metricPanel("EECS reads", eecsRuns, false);
  metricPanel("EECS writes", eecsRuns, true);
  cumulativePanel("CAMPUS", campusRuns);
  cumulativePanel("EECS", eecsRuns);

  std::printf(
      "Shape checks (paper Figure 5 + §6.4): long CAMPUS reads are highly\n"
      "sequential (metric near 1.0); long CAMPUS writes hover around 0.6\n"
      "(sequential stretches separated by seeks); long EECS reads are\n"
      "sequential but less so than CAMPUS; EECS writes are the most\n"
      "seek-prone; allowing k=10 jumps lifts every curve, which is the\n"
      "argument for seek-tolerant server heuristics.\n");
  return 0;
}
