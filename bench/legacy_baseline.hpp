// Frozen copy of the pre-optimization serial hot path, kept verbatim so
// pipeline_throughput has a stable baseline to measure against:
//   - std::map/std::set flow and pending-call tables (the seed sniffer),
//   - an O(pending) expiry scan on *every* frame,
//   - ostringstream record formatting with a fresh string per record,
//   - one fwrite per record, no write buffering.
// Decode helpers (parseFrame, RPC/NFS decoding, record semantics) are
// shared with the live code — only the hot-path structure is frozen.
// Do not "fix" anything here; improvements belong in src/.
#pragma once

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>

#include "net/packet.hpp"
#include "netcap/netcap.hpp"
#include "nfs/messages.hpp"
#include "rpc/rpc.hpp"
#include "trace/record.hpp"

namespace nfstrace::legacy {

inline std::string encodeField(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (c <= ' ' || c == '%' || c == '=' || c == 0x7f) {
      char buf[4];
      std::snprintf(buf, sizeof(buf), "%%%02x", c);
      out += buf;
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
  return out;
}

inline std::string timeField(MicroTime t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%06" PRId64,
                t / kMicrosPerSecond, t % kMicrosPerSecond);
  return buf;
}

inline std::string formatRecord(const TraceRecord& rec) {
  std::ostringstream o;
  o << "t=" << timeField(rec.ts);
  if (rec.hasReply) o << " r=" << timeField(rec.replyTs);
  o << " c=" << ipToString(rec.client) << " s=" << ipToString(rec.server);
  char xidBuf[12];
  std::snprintf(xidBuf, sizeof(xidBuf), "%08x", rec.xid);
  o << " xid=" << xidBuf << " v=" << static_cast<int>(rec.vers)
    << " p=" << (rec.overTcp ? "tcp" : "udp") << " op=" << nfsOpName(rec.op)
    << " uid=" << rec.uid << " gid=" << rec.gid;
  if (rec.fh.len) o << " fh=" << rec.fh.toHex();
  if (!rec.name.empty()) o << " nm=" << encodeField(rec.name);
  if (!rec.name2.empty()) o << " nm2=" << encodeField(rec.name2);
  if (rec.fh2.len) o << " fh2=" << rec.fh2.toHex();
  if (rec.op == NfsOp::Read || rec.op == NfsOp::Write ||
      rec.op == NfsOp::Commit) {
    o << " off=" << rec.offset << " cnt=" << rec.count;
  }
  if (rec.hasReply) {
    o << " st=" << nfsStatName(rec.status);
    if (rec.op == NfsOp::Read || rec.op == NfsOp::Write) {
      o << " ret=" << rec.retCount;
    }
    if (rec.op == NfsOp::Read) o << " eof=" << (rec.eof ? 1 : 0);
    if (rec.hasResFh) o << " rfh=" << rec.resFh.toHex();
    if (rec.hasAttrs) {
      o << " ft=" << static_cast<std::uint32_t>(rec.ftype)
        << " sz=" << rec.fileSize << " mt=" << timeField(rec.fileMtime)
        << " fid=" << rec.fileId;
    }
    if (rec.hasPre) {
      o << " psz=" << rec.preSize << " pmt=" << timeField(rec.preMtime);
    }
  }
  return o.str();
}

/// The seed's IP reassembler: buffers one payload copy per fragment, then
/// concatenates into a fresh vector and copies again to strip the UDP
/// header (the live one assembles in place).
class IpReassembler {
 public:
  explicit IpReassembler(std::int64_t timeoutUs = 30'000'000)
      : timeoutUs_(timeoutUs) {}

  std::optional<std::vector<std::uint8_t>> feed(const ParsedFrame& frame,
                                                std::int64_t now) {
    if (!frame.isFragment()) {
      return std::vector<std::uint8_t>(frame.payload.begin(),
                                       frame.payload.end());
    }

    for (std::size_t i = 0; i < pending_.size();) {
      if (now - pending_[i].second.firstSeen > timeoutUs_) {
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        ++expired_;
      } else {
        ++i;
      }
    }

    Key key{frame.src, frame.dst, frame.ipId};
    Pending* entry = nullptr;
    for (auto& [k, p] : pending_) {
      if (k == key) {
        entry = &p;
        break;
      }
    }
    if (!entry) {
      pending_.emplace_back(key, Pending{});
      entry = &pending_.back().second;
      entry->firstSeen = now;
    }

    entry->parts.emplace_back(
        frame.fragOffsetBytes,
        std::vector<std::uint8_t>(frame.payload.begin(), frame.payload.end()));
    if (!frame.moreFragments) {
      entry->haveLast = true;
      entry->totalLen = frame.fragOffsetBytes +
                        static_cast<std::uint32_t>(frame.payload.size());
    }
    if (!entry->haveLast) return std::nullopt;

    std::sort(entry->parts.begin(), entry->parts.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::uint32_t pos = 0;
    for (const auto& [off, bytes] : entry->parts) {
      if (off > pos) return std::nullopt;  // hole
      pos = std::max(pos, off + static_cast<std::uint32_t>(bytes.size()));
    }
    if (pos < entry->totalLen) return std::nullopt;

    std::vector<std::uint8_t> full(entry->totalLen);
    for (const auto& [off, bytes] : entry->parts) {
      std::size_t n = std::min<std::size_t>(bytes.size(), full.size() - off);
      std::copy_n(bytes.begin(), n, full.begin() + off);
    }
    if (full.size() < 8) return std::nullopt;
    std::vector<std::uint8_t> udpPayload(full.begin() + 8, full.end());

    for (std::size_t i = 0; i < pending_.size(); ++i) {
      if (pending_[i].first == key) {
        pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    return udpPayload;
  }

  std::uint64_t expired() const { return expired_; }

 private:
  struct Key {
    IpAddr src, dst;
    std::uint16_t id;
    bool operator==(const Key&) const = default;
  };
  struct Pending {
    std::int64_t firstSeen = 0;
    std::vector<std::pair<std::uint16_t, std::vector<std::uint8_t>>> parts;
    bool haveLast = false;
    std::uint32_t totalLen = 0;
  };

  std::vector<std::pair<Key, Pending>> pending_;
  std::int64_t timeoutUs_;
  std::uint64_t expired_ = 0;
};

/// One formatRecord + one fwrite per record, exactly like the seed writer.
class TraceWriter {
 public:
  explicit TraceWriter(const std::string& path) {
    f_ = std::fopen(path.c_str(), "wb");
    if (!f_) throw std::runtime_error("legacy: cannot open: " + path);
  }
  ~TraceWriter() {
    if (f_) std::fclose(f_);
  }
  void write(const TraceRecord& rec) {
    std::string line = formatRecord(rec);
    line.push_back('\n');
    if (std::fwrite(line.data(), 1, line.size(), f_) != line.size()) {
      throw std::runtime_error("legacy: write failed");
    }
  }

 private:
  std::FILE* f_ = nullptr;
};

class Sniffer : public FrameSink {
 public:
  struct Config {
    std::uint16_t nfsPort = 2049;
    MicroTime pendingTimeout = 60 * kMicrosPerSecond;
  };

  struct Stats {
    std::uint64_t framesSeen = 0;
    std::uint64_t framesUndecodable = 0;
    std::uint64_t rpcCalls = 0;
    std::uint64_t rpcReplies = 0;
    std::uint64_t nonNfsCalls = 0;
    std::uint64_t orphanReplies = 0;
    std::uint64_t expiredCalls = 0;
    std::uint64_t fragmentsExpired = 0;
  };

  using RecordCallback = std::function<void(const TraceRecord&)>;

  Sniffer(Config config, RecordCallback callback)
      : config_(config), callback_(std::move(callback)) {}

  void onFrame(const CapturedPacket& pkt) override {
    ++stats_.framesSeen;
    auto parsed = parseFrame(pkt.data);
    if (!parsed) {
      ++stats_.framesUndecodable;
      return;
    }

    expirePending(pkt.ts);

    bool toServer = parsed->dstPort == config_.nfsPort;
    bool fromServer = parsed->srcPort == config_.nfsPort;

    if (parsed->proto == IpProto::Udp || parsed->isFragment()) {
      auto payload = ipReassembler_.feed(*parsed, pkt.ts);
      stats_.fragmentsExpired = ipReassembler_.expired();
      if (!payload) return;
      if (!parsed->isFragment() && !toServer && !fromServer) return;
      onRpcBytes(pkt.ts, parsed->src, parsed->dst, false, *payload,
                 parsed->isFragment() ? true : toServer);
      return;
    }

    if (!toServer && !fromServer) return;
    FlowKey key{parsed->src, parsed->dst, parsed->srcPort, parsed->dstPort};
    TcpFlow& flow = tcpFlows_[key];
    auto bytes =
        flow.reassembler.feed(parsed->tcpSeq, parsed->payload, parsed->tcpSyn);
    if (bytes.empty()) {
      if (flow.reassembler.hasGap() && !parsed->payload.empty()) {
        flow.reassembler.resyncTo(parsed->tcpSeq);
        flow.records.reset();
        bytes = flow.reassembler.feed(parsed->tcpSeq, parsed->payload, false);
      }
      if (bytes.empty()) return;
    }
    flow.records.feed(bytes);
    while (auto body = flow.records.next()) {
      onRpcBytes(pkt.ts, parsed->src, parsed->dst, true, *body, toServer);
    }
  }

  void flush() {
    for (auto& [key, pc] : pending_) {
      TraceRecord rec = recordFromCall(key.second, pc);
      ++stats_.expiredCalls;
      callback_(rec);
    }
    pending_.clear();
  }

  const Stats& stats() const { return stats_; }

 private:
  struct FlowKey {
    IpAddr src, dst;
    std::uint16_t srcPort, dstPort;
    bool operator<(const FlowKey& o) const {
      return std::tie(src, dst, srcPort, dstPort) <
             std::tie(o.src, o.dst, o.srcPort, o.dstPort);
    }
  };
  struct TcpFlow {
    TcpReassembler reassembler;
    RecordMarkReader records;
  };
  struct PendingCall {
    MicroTime ts = 0;
    IpAddr client = 0;
    IpAddr server = 0;
    std::uint32_t vers = 3;
    std::uint32_t proc = 0;
    bool overTcp = false;
    std::uint32_t uid = 0;
    std::uint32_t gid = 0;
    NfsCallArgs args;
  };

  void onRpcBytes(MicroTime ts, IpAddr src, IpAddr dst, bool overTcp,
                  std::span<const std::uint8_t> body, bool toServer) {
    (void)toServer;
    RpcMessage msg;
    try {
      msg = decodeRpcMessage(body);
    } catch (const XdrError&) {
      ++stats_.framesUndecodable;
      return;
    }

    if (msg.type == RpcMsgType::Call) {
      handleCall(ts, src, dst, overTcp, msg.call, body);
    } else {
      if (!pending_.count({dst, msg.reply.xid}) &&
          pending_.count({src, msg.reply.xid})) {
        handleReply(ts, src, msg.reply, body);
      } else {
        handleReply(ts, dst, msg.reply, body);
      }
    }
  }

  void handleCall(MicroTime ts, IpAddr client, IpAddr server, bool overTcp,
                  const RpcCall& call, std::span<const std::uint8_t> body) {
    if (call.prog != kNfsProgram) {
      ++stats_.nonNfsCalls;
      ignoredXids_.insert({client, call.xid});
      return;
    }
    ++stats_.rpcCalls;

    PendingCall pc;
    pc.ts = ts;
    pc.client = client;
    pc.server = server;
    pc.vers = call.vers;
    pc.proc = call.proc;
    pc.overTcp = overTcp;
    if (call.cred) {
      pc.uid = call.cred->uid;
      pc.gid = call.cred->gid;
    }

    XdrDecoder dec(body.subspan(call.argsOffset));
    try {
      if (call.vers == 3) {
        pc.args = decodeCall3(static_cast<Proc3>(call.proc), dec);
      } else if (call.vers == 2) {
        pc.args = decodeCall2(static_cast<Proc2>(call.proc), dec);
      } else {
        return;
      }
    } catch (const XdrError&) {
      ++stats_.framesUndecodable;
      return;
    }

    pending_[{client, call.xid}] = std::move(pc);
  }

  void handleReply(MicroTime ts, IpAddr client, const RpcReply& reply,
                   std::span<const std::uint8_t> body) {
    ++stats_.rpcReplies;
    auto it = pending_.find({client, reply.xid});
    if (it == pending_.end()) {
      if (ignoredXids_.erase({client, reply.xid})) return;
      ++stats_.orphanReplies;
      return;
    }
    const PendingCall& pc = it->second;

    TraceRecord rec = recordFromCall(reply.xid, pc);
    rec.hasReply = true;
    rec.replyTs = ts;

    if (reply.acceptStat == RpcAcceptStat::Success) {
      XdrDecoder dec(body.subspan(reply.resultsOffset));
      try {
        NfsReplyRes res;
        if (pc.vers == 3) {
          res = decodeReply3(static_cast<Proc3>(pc.proc), dec);
        } else {
          res = decodeReply2(static_cast<Proc2>(pc.proc), dec);
        }
        fillReply(rec, pc, res);
      } catch (const XdrError&) {
        rec.status = NfsStat::ErrServerFault;
      }
    } else {
      rec.status = NfsStat::ErrServerFault;
    }

    pending_.erase(it);
    callback_(rec);
  }

  void expirePending(MicroTime now) {
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (now - it->second.ts > config_.pendingTimeout) {
        TraceRecord rec = recordFromCall(it->first.second, it->second);
        ++stats_.expiredCalls;
        callback_(rec);
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
  }

  TraceRecord recordFromCall(std::uint32_t xid, const PendingCall& pc) const {
    TraceRecord rec;
    rec.ts = pc.ts;
    rec.client = pc.client;
    rec.server = pc.server;
    rec.xid = xid;
    rec.vers = static_cast<std::uint8_t>(pc.vers);
    rec.overTcp = pc.overTcp;
    rec.op = pc.vers == 3 ? opFromProc3(static_cast<Proc3>(pc.proc))
                          : opFromProc2(static_cast<Proc2>(pc.proc));
    rec.uid = pc.uid;
    rec.gid = pc.gid;

    std::visit(
        [&](const auto& a) {
          using T = std::decay_t<decltype(a)>;
          if constexpr (std::is_same_v<T, GetattrArgs> ||
                        std::is_same_v<T, ReadlinkArgs> ||
                        std::is_same_v<T, FsstatArgs> ||
                        std::is_same_v<T, FsinfoArgs> ||
                        std::is_same_v<T, PathconfArgs>) {
            rec.fh = a.fh;
          } else if constexpr (std::is_same_v<T, SetattrArgs> ||
                               std::is_same_v<T, AccessArgs>) {
            rec.fh = a.fh;
          } else if constexpr (std::is_same_v<T, LookupArgs> ||
                               std::is_same_v<T, RemoveArgs> ||
                               std::is_same_v<T, RmdirArgs>) {
            rec.fh = a.dir;
            rec.name = a.name;
          } else if constexpr (std::is_same_v<T, CreateArgs> ||
                               std::is_same_v<T, MkdirArgs> ||
                               std::is_same_v<T, MknodArgs>) {
            rec.fh = a.dir;
            rec.name = a.name;
          } else if constexpr (std::is_same_v<T, SymlinkArgs>) {
            rec.fh = a.dir;
            rec.name = a.name;
            rec.name2 = a.target;
          } else if constexpr (std::is_same_v<T, ReadArgs>) {
            rec.fh = a.fh;
            rec.offset = a.offset;
            rec.count = a.count;
          } else if constexpr (std::is_same_v<T, WriteArgs>) {
            rec.fh = a.fh;
            rec.offset = a.offset;
            rec.count = a.count;
          } else if constexpr (std::is_same_v<T, CommitArgs>) {
            rec.fh = a.fh;
            rec.offset = a.offset;
            rec.count = a.count;
          } else if constexpr (std::is_same_v<T, RenameArgs>) {
            rec.fh = a.fromDir;
            rec.name = a.fromName;
            rec.fh2 = a.toDir;
            rec.name2 = a.toName;
          } else if constexpr (std::is_same_v<T, LinkArgs>) {
            rec.fh = a.fh;
            rec.fh2 = a.dir;
            rec.name = a.name;
          } else if constexpr (std::is_same_v<T, ReaddirArgs> ||
                               std::is_same_v<T, ReaddirplusArgs>) {
            rec.fh = a.dir;
          }
        },
        pc.args);
    return rec;
  }

  void fillReply(TraceRecord& rec, const PendingCall& pc,
                 const NfsReplyRes& res) const {
    (void)pc;
    rec.status = statusOf(res);

    auto takeAttrs = [&](const Fattr& a) {
      rec.hasAttrs = true;
      rec.ftype = a.type;
      rec.fileSize = a.size;
      rec.fileMtime = a.mtime.toMicro();
      rec.fileId = a.fileid;
    };

    std::visit(
        [&](const auto& r) {
          using T = std::decay_t<decltype(r)>;
          if constexpr (std::is_same_v<T, GetattrRes>) {
            if (r.status == NfsStat::Ok) takeAttrs(r.attrs);
          } else if constexpr (std::is_same_v<T, SetattrRes>) {
            if (r.wcc.hasPost) takeAttrs(r.wcc.post);
            if (r.wcc.hasPre) {
              rec.hasPre = true;
              rec.preSize = r.wcc.pre.size;
              rec.preMtime = r.wcc.pre.mtime.toMicro();
            }
          } else if constexpr (std::is_same_v<T, LookupRes>) {
            if (r.status == NfsStat::Ok) {
              rec.resFh = r.fh;
              rec.hasResFh = true;
              if (r.hasObjAttrs) takeAttrs(r.objAttrs);
            }
          } else if constexpr (std::is_same_v<T, AccessRes> ||
                               std::is_same_v<T, ReadlinkRes>) {
            if (r.hasAttrs) takeAttrs(r.attrs);
          } else if constexpr (std::is_same_v<T, ReadRes>) {
            if (r.hasAttrs) takeAttrs(r.attrs);
            rec.retCount = r.count;
            rec.eof = r.eof;
            if (rec.vers == 2 && r.hasAttrs) {
              rec.eof = rec.offset + r.count >= r.attrs.size;
            }
          } else if constexpr (std::is_same_v<T, WriteRes>) {
            if (r.wcc.hasPost) takeAttrs(r.wcc.post);
            if (r.wcc.hasPre) {
              rec.hasPre = true;
              rec.preSize = r.wcc.pre.size;
              rec.preMtime = r.wcc.pre.mtime.toMicro();
            }
            rec.retCount = r.count ? r.count : rec.count;
          } else if constexpr (std::is_same_v<T, CreateRes>) {
            if (r.hasFh) {
              rec.resFh = r.fh;
              rec.hasResFh = true;
            }
            if (r.hasAttrs) takeAttrs(r.attrs);
          } else if constexpr (std::is_same_v<T, LinkRes>) {
            if (r.hasAttrs) takeAttrs(r.attrs);
          } else if constexpr (std::is_same_v<T, ReaddirRes>) {
            if (r.hasDirAttrs) takeAttrs(r.dirAttrs);
          } else if constexpr (std::is_same_v<T, FsstatRes> ||
                               std::is_same_v<T, FsinfoRes> ||
                               std::is_same_v<T, PathconfRes>) {
            if (r.hasAttrs) takeAttrs(r.attrs);
          } else if constexpr (std::is_same_v<T, CommitRes>) {
            if (r.wcc.hasPost) takeAttrs(r.wcc.post);
          }
        },
        res);
  }

  Config config_;
  RecordCallback callback_;
  Stats stats_;
  IpReassembler ipReassembler_;
  std::map<FlowKey, TcpFlow> tcpFlows_;
  std::map<std::pair<IpAddr, std::uint32_t>, PendingCall> pending_;
  std::set<std::pair<IpAddr, std::uint32_t>> ignoredXids_;
};

}  // namespace nfstrace::legacy
