file(REMOVE_RECURSE
  "CMakeFiles/nfstrace_sniffer.dir/sniffer.cpp.o"
  "CMakeFiles/nfstrace_sniffer.dir/sniffer.cpp.o.d"
  "libnfstrace_sniffer.a"
  "libnfstrace_sniffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nfstrace_sniffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
