#include "workload/schedule.hpp"

#include <algorithm>
#include <cmath>

namespace nfstrace {

double WeeklySchedule::weight(MicroTime t) const {
  return hourWeight_[static_cast<std::size_t>(hourOfWeek(t))];
}

MicroTime WeeklySchedule::nextEvent(Rng& rng, MicroTime now,
                                    double peakEventsPerHour) const {
  // Thinning (Lewis & Shedler): draw from the peak-rate process and accept
  // with probability weight(t).
  MicroTime t = now;
  double meanGapUs =
      static_cast<double>(kMicrosPerHour) / std::max(peakEventsPerHour, 1e-9);
  for (int guard = 0; guard < 100000; ++guard) {
    t += static_cast<MicroTime>(rng.exponential(meanGapUs)) + 1;
    if (rng.uniform() < weight(t)) return t;
  }
  return t;
}

namespace {

double diurnalShape(int hour, bool weekend, double nightFloor,
                    double eveningShoulder) {
  // Peak plateau 9-18, shoulder until 23, floor overnight.
  double w;
  if (hour >= 9 && hour < 18) {
    w = 1.0;
  } else if (hour >= 18 && hour < 23) {
    w = eveningShoulder;
  } else if (hour >= 7 && hour < 9) {
    w = 0.5;
  } else {
    w = nightFloor;
  }
  if (weekend) w *= 0.35;
  return w;
}

}  // namespace

WeeklySchedule WeeklySchedule::campus() {
  WeeklySchedule s;
  for (int h = 0; h < 168; ++h) {
    int dow = h / 24;
    bool weekend = dow == 0 || dow == 6;
    s.hourWeight_[static_cast<std::size_t>(h)] =
        diurnalShape(h % 24, weekend, 0.06, 0.55);
  }
  return s;
}

WeeklySchedule WeeklySchedule::eecs() {
  WeeklySchedule s;
  for (int h = 0; h < 168; ++h) {
    int dow = h / 24;
    bool weekend = dow == 0 || dow == 6;
    double w = diurnalShape(h % 24, weekend, 0.15, 0.7);
    // CS grad students: the evening is nearly as busy as the afternoon.
    if (!weekend && (h % 24) >= 20) w = std::max(w, 0.45);
    s.hourWeight_[static_cast<std::size_t>(h)] = w;
  }
  return s;
}

}  // namespace nfstrace
