// Cross-module integration: live capture vs pcap-replay equivalence,
// anonymization invariance of analyses, and reorder-window + run analysis
// on captured (not synthetic) traffic.
#include <gtest/gtest.h>

#include <cstdio>

#include "analysis/blocklife.hpp"
#include "analysis/reorder.hpp"
#include "analysis/runs.hpp"
#include "analysis/summary.hpp"
#include "anon/anon.hpp"
#include "trace/tracefile.hpp"
#include "workload/campus.hpp"
#include "workload/sim.hpp"

namespace nfstrace {
namespace {

TEST(Integration, PcapReplayMatchesLiveCapture) {
  const std::string path = "/tmp/integration_replay.pcap";
  std::vector<TraceRecord> live;
  {
    // One environment with both a live sniffer and a pcap writer on the
    // same tap.
    InMemoryFs fs{InMemoryFs::Config{}};
    fs.mkfile("/home/u/file", 200 * 1024, 1, 1, 0);
    NfsServer server(fs);
    Sniffer sniffer({}, [&](const TraceRecord& r) { live.push_back(r); });
    struct PcapSink : FrameSink {
      explicit PcapSink(const std::string& p) : writer(p) {}
      PcapWriter writer;
      void onFrame(const CapturedPacket& pkt) override { writer.write(pkt); }
    };
    PcapSink pcapSink(path);
    FrameTee tee;
    tee.addSink(&sniffer);
    tee.addSink(&pcapSink);

    NfsTransport transport({}, server, &tee, 7);
    NfsClient client({}, transport, 8);
    client.setRootHandle(fs.rootHandle());
    MicroTime now = seconds(3);
    auto fh = *client.lookupPath(now, "/home/u/file");
    client.readFile(now, fh);
    client.writeRange(now, fh, 0, 64 * 1024);
    sniffer.flush();
  }

  auto replayed = sniffPcap(path);
  ASSERT_EQ(replayed.size(), live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(replayed[i].op, live[i].op);
    EXPECT_EQ(replayed[i].ts, live[i].ts);
    EXPECT_EQ(replayed[i].xid, live[i].xid);
    EXPECT_EQ(replayed[i].offset, live[i].offset);
    EXPECT_TRUE(replayed[i].fh == live[i].fh);
  }
  std::remove(path.c_str());
}

class CampusIntegration : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    SimEnvironment::Config simCfg;
    simCfg.fsConfig.fsid = 2;
    simCfg.clientHosts = 3;
    env_ = new SimEnvironment(simCfg);
    CampusConfig cfg;
    cfg.users = 25;
    CampusWorkload wl(cfg, *env_);
    MicroTime start = days(1) + hours(9);
    wl.setup(start);
    wl.run(start, start + hours(3));
    env_->finishCapture();
  }
  static void TearDownTestSuite() {
    delete env_;
    env_ = nullptr;
  }
  static SimEnvironment* env_;
};

SimEnvironment* CampusIntegration::env_ = nullptr;

TEST_F(CampusIntegration, AnonymizationPreservesAnalyses) {
  auto& records = env_->records();
  Anonymizer anon{Anonymizer::Config{}};
  std::vector<TraceRecord> anonymized;
  anonymized.reserve(records.size());
  for (const auto& r : records) anonymized.push_back(anon.anonymize(r));

  // Summary statistics are identical: anonymization never touches
  // operations, sizes, offsets, or timing.
  auto s1 = summarize(records);
  auto s2 = summarize(anonymized);
  EXPECT_EQ(s1.totalOps, s2.totalOps);
  EXPECT_EQ(s1.bytesRead, s2.bytesRead);
  EXPECT_EQ(s1.bytesWritten, s2.bytesWritten);

  // Run analysis is identical because handles are remapped consistently.
  auto runs1 = detectRuns(sortWithReorderWindow(records, 10000).records);
  auto runs2 = detectRuns(sortWithReorderWindow(anonymized, 10000).records);
  ASSERT_EQ(runs1.size(), runs2.size());
  auto sum1 = summarizeRunPatterns(runs1);
  auto sum2 = summarizeRunPatterns(runs2);
  EXPECT_DOUBLE_EQ(sum1.readEntire, sum2.readEntire);
  EXPECT_DOUBLE_EQ(sum1.writeSeq, sum2.writeSeq);

  // Block lifetimes are identical too.
  BlockLifeConfig blCfg;
  blCfg.phase1Start = days(1);
  auto bl1 = analyzeBlockLife(records, blCfg);
  auto bl2 = analyzeBlockLife(anonymized, blCfg);
  EXPECT_EQ(bl1.births, bl2.births);
  EXPECT_EQ(bl1.deathsOverwrite, bl2.deathsOverwrite);
  EXPECT_EQ(bl1.deathsDelete, bl2.deathsDelete);
}

TEST_F(CampusIntegration, TraceFileRoundTripPreservesAnalyses) {
  const std::string path = "/tmp/integration_trace.txt";
  auto& records = env_->records();
  {
    TraceWriter w(path);
    for (const auto& r : records) w.write(r);
  }
  auto back = TraceReader::readAll(path);
  ASSERT_EQ(back.size(), records.size());
  auto s1 = summarize(records);
  auto s2 = summarize(back);
  EXPECT_EQ(s1.bytesRead, s2.bytesRead);
  EXPECT_EQ(s1.opCounts, s2.opCounts);
  std::remove(path.c_str());
}

TEST_F(CampusIntegration, BlockDeathsAreOverwhelminglyOverwrites) {
  BlockLifeConfig cfg;
  cfg.phase1Start = days(1) + hours(9);  // the traced window's start
  cfg.phase1Length = minutes(90);
  cfg.phase2Length = minutes(90);
  auto stats = analyzeBlockLife(env_->records(), cfg);
  ASSERT_GT(stats.deaths, 0u);
  // Paper: >99% of CAMPUS block deaths are overwrites (mailbox rewrites).
  EXPECT_GT(static_cast<double>(stats.deathsOverwrite) /
                static_cast<double>(stats.deaths),
            0.9);
}

TEST_F(CampusIntegration, RunsAreLargelySequentialOrEntire) {
  auto sorted = sortWithReorderWindow(env_->records(), 10'000);
  auto runs = detectRuns(sorted.records);
  ASSERT_GT(runs.size(), 10u);
  auto summary = summarizeRunPatterns(runs);
  // Mailbox scans are sequential whole-file reads.
  EXPECT_GT(summary.readEntire + summary.readSeq, 0.6);
}

TEST_F(CampusIntegration, ReorderWindowReducesApparentRandomness) {
  // With reordering client iods, the raw stream shows more random runs
  // than the reorder-window-sorted stream.
  RunDetectorConfig rawCfg;
  rawCfg.jumpTolerance = 0;
  auto rawRuns = detectRuns(sortWithReorderWindow(env_->records(), 0).records,
                            rawCfg);
  auto sortedRuns = detectRuns(
      sortWithReorderWindow(env_->records(), 10'000).records, rawCfg);
  auto rawSummary = summarizeRunPatterns(rawRuns);
  auto sortedSummary = summarizeRunPatterns(sortedRuns);
  EXPECT_LE(sortedSummary.readRandom, rawSummary.readRandom);
}

}  // namespace
}  // namespace nfstrace
