// Throughput microbenchmarks (google-benchmark) for the tracing pipeline
// components: XDR codecs, frame building/parsing, RPC record marking, the
// sniffer's full decode path, the anonymizer, the analyses, and the
// per-stage decode breakdown (frame parse, XDR cursor, RPC decode, table
// lookup, record format/parse, interner, batch decode).  These bound how
// fast a capture can be processed — the tracer had to keep up with a
// gigabit mirror port.
//
// JSON output: pass the standard google-benchmark flags, e.g.
//   micro_perf --benchmark_filter='BM_Stage'
//              --benchmark_format=json --benchmark_out=BENCH_micro.json
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <unordered_map>

#include "analysis/engine/extent_scan.hpp"
#include "analysis/reorder.hpp"
#include "analysis/runs.hpp"
#include "anon/anon.hpp"
#include "net/packet.hpp"
#include "nfs/messages.hpp"
#include "rpc/rpc.hpp"
#include "sniffer/sniffer.hpp"
#include "trace/tracefile.hpp"
#include "trace/v2.hpp"
#include "util/flatmap.hpp"
#include "util/interner.hpp"
#include "util/rng.hpp"

namespace nfstrace {
namespace {

void BM_XdrEncodeRead(benchmark::State& state) {
  auto fh = FileHandle::make(1, 42, 7);
  for (auto _ : state) {
    XdrEncoder enc;
    encodeCall3(enc, ReadArgs{fh, 8192, 8192});
    benchmark::DoNotOptimize(enc.bytes().data());
  }
}
BENCHMARK(BM_XdrEncodeRead);

void BM_XdrDecodeRead(benchmark::State& state) {
  XdrEncoder enc;
  encodeCall3(enc, ReadArgs{FileHandle::make(1, 42, 7), 8192, 8192});
  for (auto _ : state) {
    XdrDecoder dec(enc.bytes());
    auto args = decodeCall3(Proc3::Read, dec);
    benchmark::DoNotOptimize(&args);
  }
}
BENCHMARK(BM_XdrDecodeRead);

void BM_Fattr3RoundTrip(benchmark::State& state) {
  Fattr a;
  a.size = 123456;
  for (auto _ : state) {
    XdrEncoder enc;
    a.encode3(enc);
    XdrDecoder dec(enc.bytes());
    auto back = Fattr::decode3(dec);
    benchmark::DoNotOptimize(&back);
  }
}
BENCHMARK(BM_Fattr3RoundTrip);

void BM_BuildUdpFrame(benchmark::State& state) {
  std::vector<std::uint8_t> payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto f = buildUdpFrame(makeIp(10, 0, 0, 1), 1023, makeIp(10, 0, 0, 2),
                           2049, payload);
    benchmark::DoNotOptimize(f.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildUdpFrame)->Arg(128)->Arg(8192);

void BM_ParseFrame(benchmark::State& state) {
  std::vector<std::uint8_t> payload(8192, 0xab);
  auto frame = buildUdpFrame(makeIp(10, 0, 0, 1), 1023, makeIp(10, 0, 0, 2),
                             2049, payload);
  for (auto _ : state) {
    auto parsed = parseFrame(frame);
    benchmark::DoNotOptimize(&parsed);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(frame.size()));
}
BENCHMARK(BM_ParseFrame);

void BM_RecordMarkReader(benchmark::State& state) {
  std::vector<std::uint8_t> body(1024, 0x55);
  auto marked = recordMark(body);
  for (auto _ : state) {
    RecordMarkReader reader;
    reader.feed(marked);
    auto out = reader.next();
    benchmark::DoNotOptimize(&out);
  }
}
BENCHMARK(BM_RecordMarkReader);

/// Full sniffer decode: one READ call frame + one reply frame.
void BM_SnifferDecodePair(benchmark::State& state) {
  auto fh = FileHandle::make(1, 42, 7);
  AuthUnix cred;
  cred.uid = 100;
  cred.gid = 100;

  XdrEncoder callEnc;
  encodeRpcCall(callEnc, 1, kNfsProgram, 3,
                static_cast<std::uint32_t>(Proc3::Read), cred);
  encodeCall3(callEnc, ReadArgs{fh, 0, 8192});
  auto callFrame = buildUdpFrame(makeIp(10, 1, 0, 2), 1023,
                                 makeIp(10, 0, 0, 1), 2049, callEnc.bytes());

  ReadRes res;
  res.status = NfsStat::Ok;
  res.count = 8192;
  res.eof = false;
  XdrEncoder replyEnc;
  encodeRpcReplySuccess(replyEnc, 1);
  encodeReply3(replyEnc, Proc3::Read, res);
  auto replyFrames =
      buildUdpFrames(makeIp(10, 0, 0, 1), 2049, makeIp(10, 1, 0, 2), 1023, 1,
                     replyEnc.bytes(), kJumboMtu);

  std::uint64_t emitted = 0;
  Sniffer sniffer({}, [&](const TraceRecord&) { ++emitted; });
  CapturedPacket callPkt{0, 0, callFrame};
  std::int64_t bytes = 0;
  for (auto _ : state) {
    sniffer.onFrame(callPkt);
    bytes += static_cast<std::int64_t>(callFrame.size());
    for (const auto& f : replyFrames) {
      CapturedPacket pkt{1, 0, f};
      sniffer.onFrame(pkt);
      bytes += static_cast<std::int64_t>(f.size());
    }
  }
  benchmark::DoNotOptimize(emitted);
  state.SetBytesProcessed(bytes);
}
BENCHMARK(BM_SnifferDecodePair);

void BM_AnonymizeRecord(benchmark::State& state) {
  Anonymizer anon{Anonymizer::Config{}};
  Rng rng(1);
  std::vector<TraceRecord> recs;
  for (int i = 0; i < 256; ++i) {
    TraceRecord r;
    r.ts = i;
    r.op = NfsOp::Lookup;
    r.uid = 100 + static_cast<std::uint32_t>(rng.below(50));
    r.client = makeIp(10, 1, 0, static_cast<int>(rng.below(20)) + 2);
    r.fh = FileHandle::make(1, rng.below(500), 1);
    r.name = "file" + std::to_string(rng.below(200)) + ".c";
    recs.push_back(r);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto out = anon.anonymize(recs[i++ % recs.size()]);
    benchmark::DoNotOptimize(&out);
  }
}
BENCHMARK(BM_AnonymizeRecord);

std::vector<TraceRecord> syntheticDataRecords(std::size_t n) {
  Rng rng(7);
  std::vector<TraceRecord> recs;
  recs.reserve(n);
  MicroTime ts = 0;
  for (std::size_t i = 0; i < n; ++i) {
    TraceRecord r;
    ts += 500 + static_cast<MicroTime>(rng.below(1500));
    r.ts = ts;
    r.op = rng.chance(0.7) ? NfsOp::Read : NfsOp::Write;
    r.fh = FileHandle::make(1, rng.below(64), 1);
    r.offset = rng.below(256) * 8192;
    r.count = 8192;
    r.hasReply = true;
    r.retCount = 8192;
    r.hasAttrs = true;
    r.fileSize = 2 << 20;
    recs.push_back(r);
  }
  return recs;
}

TraceRecord sampleTraceRecord() {
  TraceRecord r;
  r.ts = 123456789;
  r.replyTs = 123457000;
  r.hasReply = true;
  r.client = makeIp(10, 1, 0, 5);
  r.server = makeIp(10, 0, 0, 1);
  r.xid = 0xabcd1234;
  r.op = NfsOp::Read;
  r.uid = 2042;
  r.gid = 2042;
  r.fh = FileHandle::make(2, 998877, 3);
  r.offset = 1 << 20;
  r.count = 8192;
  r.retCount = 8192;
  r.hasAttrs = true;
  r.fileSize = 2 << 20;
  r.fileMtime = 123000000;
  r.fileId = 998877;
  return r;
}

void BM_TraceTextFormat(benchmark::State& state) {
  auto rec = sampleTraceRecord();
  for (auto _ : state) {
    auto line = formatRecord(rec);
    benchmark::DoNotOptimize(line.data());
  }
}
BENCHMARK(BM_TraceTextFormat);

void BM_TraceTextParse(benchmark::State& state) {
  auto line = formatRecord(sampleTraceRecord());
  for (auto _ : state) {
    auto rec = parseRecord(line);
    benchmark::DoNotOptimize(&rec);
  }
}
BENCHMARK(BM_TraceTextParse);

// ---------------------------------------------------------------------
// Per-stage decode breakdown (BM_Stage*): one benchmark per hot-path
// stage of the frame -> record pipeline, so a regression can be pinned to
// a stage without re-profiling the whole sniffer.

/// Stage 1: ethernet/IP/UDP frame parse (headers only, zero copy).
void BM_StageFrameParse(benchmark::State& state) {
  std::vector<std::uint8_t> payload(256, 0xab);
  auto frame = buildUdpFrame(makeIp(10, 1, 0, 2), 1023, makeIp(10, 0, 0, 1),
                             2049, payload);
  for (auto _ : state) {
    auto parsed = parseFrame(frame);
    benchmark::DoNotOptimize(&parsed);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StageFrameParse);

/// Stage 2: raw XDR cursor throughput (the loads every decoder sits on).
void BM_StageXdrCursor(benchmark::State& state) {
  XdrEncoder enc;
  for (int i = 0; i < 64; ++i) enc.putUint32(static_cast<std::uint32_t>(i));
  auto bytes = enc.bytes();
  for (auto _ : state) {
    XdrDecoder dec(bytes);
    std::uint32_t acc = 0;
    for (int i = 0; i < 64; ++i) acc += dec.getUint32();
    benchmark::DoNotOptimize(acc);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_StageXdrCursor);

/// Stage 3: RPC call header decode, trimmed (RpcMessageLite) vs full.
void BM_StageRpcDecodeLite(benchmark::State& state) {
  AuthUnix cred;
  cred.uid = 100;
  cred.gid = 100;
  XdrEncoder enc;
  encodeRpcCall(enc, 7, kNfsProgram, 3,
                static_cast<std::uint32_t>(Proc3::Lookup), cred);
  auto bytes = enc.bytes();
  for (auto _ : state) {
    auto msg = decodeRpcMessageLite(bytes);
    benchmark::DoNotOptimize(&msg);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StageRpcDecodeLite);

void BM_StageRpcDecodeFull(benchmark::State& state) {
  AuthUnix cred;
  cred.uid = 100;
  cred.gid = 100;
  XdrEncoder enc;
  encodeRpcCall(enc, 7, kNfsProgram, 3,
                static_cast<std::uint32_t>(Proc3::Lookup), cred);
  auto bytes = enc.bytes();
  for (auto _ : state) {
    auto msg = decodeRpcMessage(bytes);
    benchmark::DoNotOptimize(&msg);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StageRpcDecodeFull);

/// Stage 4: XID table lookup — FlatMap vs the std::unordered_map it
/// replaced, on the sniffer's hit-heavy mix.
template <class Map>
void tableLookupMix(benchmark::State& state) {
  Rng rng(3);
  Map m;
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 4096; ++i) {
    std::uint64_t k = rng.below(1u << 30);
    m[k] = k;
    keys.push_back(k);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    auto it = m.find(keys[i++ & 4095]);
    benchmark::DoNotOptimize(&*it);
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_StageTableLookupFlat(benchmark::State& state) {
  tableLookupMix<FlatMap<std::uint64_t, std::uint64_t>>(state);
}
BENCHMARK(BM_StageTableLookupFlat);
void BM_StageTableLookupStd(benchmark::State& state) {
  tableLookupMix<std::unordered_map<std::uint64_t, std::uint64_t>>(state);
}
BENCHMARK(BM_StageTableLookupStd);

/// Stage 5: record formatting into a reused buffer (the writer hot path).
void BM_StageRecordFormat(benchmark::State& state) {
  auto rec = sampleTraceRecord();
  std::string buf;
  for (auto _ : state) {
    buf.clear();
    appendRecord(buf, rec);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StageRecordFormat);

/// Stage 6: text record parse into a reused record (the reader hot path).
void BM_StageRecordParse(benchmark::State& state) {
  auto line = formatRecord(sampleTraceRecord());
  TraceRecord rec;
  for (auto _ : state) {
    parseRecordInto(line, rec);
    benchmark::DoNotOptimize(&rec);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StageRecordParse);

/// Stage 7: interner hit path (5 intern() calls per record in nextBatch).
void BM_StageInternerHit(benchmark::State& state) {
  StringInterner interner;
  Rng rng(11);
  std::vector<std::string> names;
  for (int i = 0; i < 512; ++i) {
    names.push_back("dir/file" + std::to_string(rng.below(400)) + ".c");
    interner.intern(names.back());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(interner.intern(names[i++ & 511]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StageInternerHit);

/// Stage 8: end-to-end batch decode — TraceReader::nextBatch over a text
/// trace (parse + intern), records per second.
void BM_StageBatchDecode(benchmark::State& state) {
  const std::string path = "bench_micro_batch.trace";
  const std::size_t n = 20000;
  {
    TraceWriter writer(path, TraceWriter::Format::Text);
    Rng rng(5);
    auto rec = sampleTraceRecord();
    for (std::size_t i = 0; i < n; ++i) {
      rec.ts += 100;
      rec.xid = static_cast<std::uint32_t>(rng.below(1u << 20));
      rec.fh = FileHandle::make(1, rng.below(300), 1);
      writer.write(rec);
    }
  }
  std::uint64_t records = 0;
  for (auto _ : state) {
    TraceReader reader(path);
    TraceBatch batch;
    while (reader.nextBatch(batch)) records += batch.n;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  std::remove(path.c_str());
}
BENCHMARK(BM_StageBatchDecode);

/// Extent-parallel scan stage: one extent's full decode — header parse,
/// dictionary load into fresh interners, bulk take into batch arrays.
/// This is the unit of work a decode worker claims from the footer
/// index, minus the file I/O.
void BM_ExtentDecode(benchmark::State& state) {
  const std::string path = "bench_micro_extent.trace";
  const std::size_t n = 8192;
  {
    TraceWriter::Options opts;
    opts.format = TraceWriter::Format::V2;
    opts.v2ExtentRecords = 4096;
    TraceWriter writer(path, opts);
    Rng rng(7);
    auto rec = sampleTraceRecord();
    for (std::size_t i = 0; i < n; ++i) {
      rec.ts += 100;
      rec.xid = static_cast<std::uint32_t>(rng.below(1u << 20));
      rec.fh = FileHandle::make(1, rng.below(300), 1);
      writer.write(rec);
    }
  }
  auto index = tracev2::loadExtentIndex(path);
  tracev2::ExtentHeader hdr;
  std::vector<std::uint8_t> payload;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    std::fseek(f, static_cast<long>((*index)[0].offset), SEEK_SET);
    unsigned char hdrBytes[tracev2::kExtentHeaderBytes];
    if (std::fread(hdrBytes, 1, sizeof hdrBytes, f) != sizeof hdrBytes ||
        !tracev2::parseExtentHeader(hdrBytes, hdr)) {
      std::fclose(f);
      state.SkipWithError("bad extent header");
      return;
    }
    payload.resize(hdr.payloadBytes);
    if (std::fread(payload.data(), 1, payload.size(), f) != payload.size()) {
      std::fclose(f);
      state.SkipWithError("short extent payload");
      return;
    }
    std::fclose(f);
  }
  std::vector<TraceRecord> recs(hdr.records);
  std::vector<std::uint32_t> fh(hdr.records), fh2(hdr.records),
      resFh(hdr.records), name(hdr.records), name2(hdr.records);
  std::uint64_t records = 0;
  for (auto _ : state) {
    tracev2::ExtentDecoder dec;
    dec.buffer() = payload;
    StringInterner names, handles;
    dec.load(hdr, names, handles);
    tracev2::ExtentDecoder::BatchOut out{recs.data(),  fh.data(),
                                         fh2.data(),   resFh.data(),
                                         name.data(),  name2.data()};
    records += dec.take(out, hdr.records);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  std::remove(path.c_str());
}
BENCHMARK(BM_ExtentDecode);

/// Reorder stage between out-of-order extent decoders and the in-order
/// consumer: acquire a window of slots, publish them in reverse order,
/// drain in order.  Single-threaded and always in-window, so it times
/// the queue bookkeeping, never a blocked wait.
void BM_ReorderStage(benchmark::State& state) {
  BatchReorderQueue<int> q(std::vector<int>{1, 2, 3, 4});
  std::uint64_t seq = 0;
  std::uint64_t items = 0;
  for (auto _ : state) {
    int slots[4];
    for (int i = 0; i < 4; ++i) slots[i] = q.acquire(seq + i);
    for (int i = 3; i >= 0; --i) q.publish(seq + i, slots[i]);
    for (int i = 0; i < 4; ++i) {
      int s = 0;
      q.popNext(s);
      q.recycle(s);
    }
    seq += 4;
    items += 4;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(items));
}
BENCHMARK(BM_ReorderStage);

void BM_ReorderWindowSort(benchmark::State& state) {
  auto recs = syntheticDataRecords(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto result = sortWithReorderWindow(recs, 10'000);
    benchmark::DoNotOptimize(&result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ReorderWindowSort)->Arg(1000)->Arg(10000);

void BM_DetectRuns(benchmark::State& state) {
  auto recs = syntheticDataRecords(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto runs = detectRuns(recs);
    benchmark::DoNotOptimize(&runs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DetectRuns)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace nfstrace

BENCHMARK_MAIN();
